#!/usr/bin/env bash
# bench.sh — record the repository's performance trajectory.
#
#   scripts/bench.sh              # full calibrated run, writes BENCH_9.json
#   scripts/bench.sh -quick       # CI smoke: fixed small iteration counts,
#                                 # writes to a throwaway file and validates it
#   scripts/bench.sh -out F.json  # full run to a custom path
#
# The record (see internal/benchrec) captures ns/op, allocs/op and
# bytes/op for the kernel, emulator and serving benchmarks, plus the
# emulator's sim-ps-per-wall-second and events-per-wall-second gauges.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_9.json
quick=""
while [ $# -gt 0 ]; do
	case "$1" in
	-quick)
		quick="-bench-quick"
		out=$(mktemp)
		trap 'rm -f "$out"' EXIT
		;;
	-out)
		out=$2
		shift
		;;
	*)
		echo "bench.sh: unknown argument $1" >&2
		exit 2
		;;
	esac
	shift
done

go run ./cmd/segbus-bench -bench-json "$out" $quick
go run ./cmd/segbus-bench -bench-validate "$out"
