#!/usr/bin/env bash
# update-vet-exact.sh — regenerate testdata/scenarios/vet-exact.golden,
# the concatenated segbus-vet -why SB050 reports over every checked-in
# scenario that scripts/check.sh diffs against. Run after a deliberate
# analyzer or rendering change, then review the diff before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

out=testdata/scenarios/vet-exact.golden
: >"$out"
for f in testdata/scenarios/*.sbd testdata/scenarios/deadlock/*.sbd; do
	echo "== $f" >>"$out"
	go run ./cmd/segbus-vet -model "$f" -why SB050 >>"$out" || true
done
echo "wrote $out"
