#!/usr/bin/env bash
# check.sh — the repo's CI gate: formatting, vet, build, the full
# race-enabled test suite, an order-shuffled re-run (catches
# inter-test coupling), the segbus-conform differential smoke sweep
# and extra race rounds of the segbus-served stress test. Run from
# anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -shuffle=on -count=1 ./...

# Bench smoke: every benchmark must still run (one iteration each) —
# catches bit-rot in the bench harnesses without paying for stable
# timings.
go test -bench=. -benchtime=1x -run '^$' ./...

# Trajectory-recorder smoke: the battery runs end to end in quick mode
# and its output passes the schema gate; then every committed point of
# the trajectory — across all record schema versions — must still
# satisfy the gate.
scripts/bench.sh -quick
for rec in BENCH_*.json; do
	go run ./cmd/segbus-bench -bench-validate "$rec"
done

# The event kernel is the hottest shared state in the tree; give its
# suite (dispatch-order replay, alloc regression, pending bookkeeping)
# extra race-enabled rounds in fresh processes.
go test -race -count=2 ./internal/engine

# The exact reachability explorer expands frontier levels in parallel;
# give its suite (deadlock gallery, reduced-vs-product cross-check)
# extra race-enabled rounds in fresh processes too.
go test -race -count=2 ./internal/automata

# Metrics golden diff: segbus-emu -metrics-json over the MP3 scenario
# must stay byte-identical to the reviewed golden (deterministic
# counters only; rates are excluded from this export by design).
metrics_tmp=$(mktemp)
vet_exact_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp" "$vet_exact_tmp"' EXIT
go run ./cmd/segbus-emu \
	-psdf testdata/golden/mp3-psdf.xsd -psm testdata/golden/mp3-psm.xsd \
	-metrics-json "$metrics_tmp" >/dev/null
diff -u testdata/golden/mp3-metrics.json "$metrics_tmp"

# Exact-reachability smoke: vet every scenario — the deadlocking ones
# included — with the SB050 counterexample expanded, and diff the
# concatenated reports against the reviewed golden. Regenerate after a
# deliberate change with scripts/update-vet-exact.sh.
for f in testdata/scenarios/*.sbd testdata/scenarios/deadlock/*.sbd; do
	echo "== $f" >>"$vet_exact_tmp"
	go run ./cmd/segbus-vet -model "$f" -why SB050 >>"$vet_exact_tmp" || true
done
diff -u testdata/scenarios/vet-exact.golden "$vet_exact_tmp"

# Differential conformance smoke sweep: 200 deterministic cases (seed
# 1, scenario-corpus seeded) through the full oracle battery. The JSON
# summary goes to stdout for CI artifact collection; a non-zero exit
# means an oracle failed and a shrunk reproducer was written under
# testdata/conform/repros/.
go run ./cmd/segbus-conform -n 200 -seed 1 -corpus testdata/scenarios -json

# Request-tracing gates. The span pool and the flight-recorder ring
# are lock-free/pool-backed shared state on the request path: give
# their suite extra race-enabled rounds in fresh processes. The
# /debug/requests document must stay byte-identical to the reviewed
# golden (timings zeroed; regenerate a deliberate change with
# UPDATE_GOLDEN=1), and the unsampled hot path must stay within 5% of
# a server with tracing disabled (in-process A/B, built out under
# -race, so run it separately here).
go test -race -count=2 ./internal/obs/reqtrace
go test -count=1 -run TestDebugRequestsGolden ./internal/serve
go test -count=1 -run TestTracingOverheadSmoke ./internal/serve

# Serve stress under the race detector, extra rounds: the suite above
# already ran it once; repeating it in fresh processes varies the
# goroutine schedules the shared cache/pool/flight/drain state is
# exposed to. The single-flight, batch-saturation and machine-pool
# stress suites ride along for the same reason — the pool hands one
# arena to many goroutines in sequence, which is exactly the handoff
# the race detector is for.
go test -race -count=2 -run 'TestServeStress|TestSingleFlight|TestBatchSaturatedPool|TestMachinePoolStress' ./internal/serve

# Machine-reuse correctness gates, race-enabled: the conform-driven
# differential battery (hundreds of generated cases through ONE pooled
# machine, byte-compared against fresh runs) and the dirty-machine
# property test (Reset after failed/aborted/deadlocked runs restores a
# machine byte-for-byte).
go test -race -count=1 -run 'TestPooledReuseBattery' ./internal/conform
go test -race -count=1 -run 'TestMachineReuse' ./internal/emulator

# Differential load smoke: the traffic generator drives the full
# in-process HTTP stack with a mixed warm/cold corpus (batches of 4,
# seeded, scenario-corpus mutations included), diffing every served
# report against the CLI pipeline and proving that a concurrent
# identical burst coalesces to a single emulation. Non-zero exit on
# any byte mismatch, an unproven proof, or a warm run that emulates
# as often as it serves. -slowest exercises the tracing round trip:
# every request carries a forced traceparent and the report ends with
# server-side stage breakdowns read back from /debug/requests.
go run ./cmd/segbus-load -seed 1 -models 12 -requests 300 -concurrency 8 \
	-hit-ratio 0.6 -batch 4 -corpus testdata/scenarios -diff -prove-coalescing \
	-slowest 5 -json

# Explorer determinism smoke: the same space through segbus-explore at
# -workers 1 and -workers 8 (different seeds, too) must produce
# byte-identical stdout and JSON reports — the work-stealing schedule
# may differ, the merged output may not. The diff is the CLI-level
# twin of TestReferenceSpaceDeterminism's library assertion.
explore_dir=$(mktemp -d)
trap 'rm -f "$metrics_tmp" "$vet_exact_tmp"; rm -rf "$explore_dir"' EXIT
mkdir "$explore_dir/a" "$explore_dir/b"
go run ./cmd/segbus-explore -app mp3 -segments 1,2,3,4 -sizes 9,18,36,72 \
	-headers 0,25,100 -cahops 0,100 -wave 8 -workers 1 -seed 7 \
	-json "$explore_dir/a/report.json" >"$explore_dir/a/stdout"
go run ./cmd/segbus-explore -app mp3 -segments 1,2,3,4 -sizes 9,18,36,72 \
	-headers 0,25,100 -cahops 0,100 -wave 8 -workers 8 -seed 13 \
	-json "$explore_dir/b/report.json" >"$explore_dir/b/stdout"
# stdout ends with "wrote <path>"; the paths legitimately differ, the
# summary and front table above them may not.
diff -u <(grep -v '^wrote ' "$explore_dir/a/stdout") \
	<(grep -v '^wrote ' "$explore_dir/b/stdout")
diff -u "$explore_dir/a/report.json" "$explore_dir/b/report.json"

# The work-stealing scheduler and the explorer's wave loop hand deques
# and pooled machines between goroutines; give both suites extra
# race-enabled rounds in fresh processes.
go test -race -count=2 ./internal/parallel
go test -race -short -count=2 ./internal/explore

# Warm-hit latency gate: a single-worker warm-mix run (queueing would
# measure the client, not the server) must land its hit p50 under the
# BENCH_8-era serve/cache_hit cost — the regression fence around the
# raw-index fast path that replaced per-hit key derivation with a
# byte-level probe.
go run ./cmd/segbus-load -seed 2 -models 8 -requests 200 -concurrency 1 \
	-hit-ratio 0.8 -batch 1 -corpus testdata/scenarios -diff \
	-hit-p50-baseline BENCH_8.json -json
