#!/usr/bin/env bash
# check.sh — the repo's CI gate: formatting, vet, build and the full
# race-enabled test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
