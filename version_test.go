package segbus_test

// Every command shares the diagnostics flags of internal/obs/profflag;
// this table pins that -version works — and exits zero without doing
// any work — across all eight mains. Kept at the module root next to
// the example smoke tests for the same `go run` treatment.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestVersionFlagAllTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the command binaries")
	}
	tools := []string{
		"segbus-bench",
		"segbus-codegen",
		"segbus-conform",
		"segbus-emu",
		"segbus-m2t",
		"segbus-place",
		"segbus-sweep",
		"segbus-vet",
	}
	for _, tool := range tools {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./cmd/"+tool, "-version").CombinedOutput()
			if err != nil {
				t.Fatalf("%s -version failed: %v\n%s", tool, err, out)
			}
			line := strings.TrimSpace(string(out))
			if !strings.HasPrefix(line, tool+" ") {
				t.Errorf("%s -version = %q, want prefix %q", tool, line, tool+" ")
			}
			if !strings.Contains(line, "go1.") {
				t.Errorf("%s -version lacks the toolchain version: %q", tool, line)
			}
			if strings.Count(line, "\n") != 0 {
				t.Errorf("%s -version printed more than one line:\n%s", tool, out)
			}
		})
	}
}
