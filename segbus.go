// Package segbus is the public API of the SegBus performance
// estimation library — a from-scratch implementation of the technique
// published as "A Performance Estimation Technique for the SegBus
// Distributed Architecture" (Niazi, Seceleanu, Tenhunen; TUCS TR 980,
// 2010).
//
// The library models applications as Packet Synchronous Data Flow
// (PSDF) graphs, platforms as segmented-bus instances (segments with
// local arbiters, a central arbiter, and FIFO border units between
// adjacent segments), and estimates the performance of any
// (application, configuration) pair by emulation, before any RTL
// exists.
//
// # Quick start
//
//	m := segbus.NewModel("app")
//	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 144, Order: 1, Ticks: 90})
//	m.AddFlow(segbus.Flow{Source: 1, Target: 2, Items: 144, Order: 2, Ticks: 50})
//
//	p := segbus.NewPlatform("demo", 100*segbus.MHz, 36)
//	p.AddSegment(90*segbus.MHz, 0, 1)
//	p.AddSegment(95*segbus.MHz, 2)
//
//	est, err := segbus.Estimate(m, p, segbus.Options{})
//	if err != nil { ... }
//	fmt.Println(est.Report)
//
// The full design flow of the paper — textual DSL, validation,
// model-to-text transformation to XML schemes, parsing, placement and
// design-space exploration — is exposed through the corresponding
// functions below; the implementation lives in the internal packages.
package segbus

import (
	"io"

	"segbus/internal/core"
	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/place"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/realplat"
	"segbus/internal/stats"
	"segbus/internal/trace"
)

// Application modeling (PSDF).
type (
	// Model is a PSDF application model.
	Model = psdf.Model
	// Flow is one packet flow (Pt, D, T, C).
	Flow = psdf.Flow
	// ProcessID identifies an application process.
	ProcessID = psdf.ProcessID
	// CommMatrix is a device-to-device communication matrix.
	CommMatrix = psdf.CommMatrix
)

// SystemOutput is the pseudo-target of flows leaving the system.
const SystemOutput = psdf.SystemOutput

// NewModel returns an empty PSDF model.
func NewModel(name string) *Model { return psdf.NewModel(name) }

// ParseFlowName decodes the "P1_576_1_250" flow encoding.
func ParseFlowName(source ProcessID, name string) (Flow, error) {
	return psdf.ParseFlowName(source, name)
}

// Repeat returns a model executing m's schedule n times back to back
// (the steady-state view of a streaming application processing n
// frames).
func Repeat(m *Model, n int) (*Model, error) { return psdf.Repeat(m, n) }

// Platform modeling (PSM).
type (
	// Platform is a SegBus platform instance.
	Platform = platform.Platform
	// Segment is one bus segment.
	Segment = platform.Segment
	// FU is a functional unit.
	FU = platform.FU
	// BU identifies a border unit.
	BU = platform.BU
	// Hz is a clock frequency.
	Hz = platform.Hz
	// FUKind is a functional unit's bus interface role.
	FUKind = platform.FUKind
)

// Frequency units.
const (
	KHz = platform.KHz
	MHz = platform.MHz
	GHz = platform.GHz
)

// Functional-unit kinds.
const (
	MasterSlave = platform.MasterSlave
	MasterOnly  = platform.MasterOnly
	SlaveOnly   = platform.SlaveOnly
)

// Segment-arbiter selection policies.
const (
	PolicyBUFirst       = emulator.PolicyBUFirst
	PolicyFIFO          = emulator.PolicyFIFO
	PolicyFixedPriority = emulator.PolicyFixedPriority
)

// NewPlatform returns a platform with no segments yet.
func NewPlatform(name string, caClock Hz, packageSize int) *Platform {
	return platform.New(name, caClock, packageSize)
}

// Emulation.
type (
	// Report is the monitoring result of one emulation run.
	Report = emulator.Report
	// SAStats, CAStats, BUStats and ProcessStats are report rows.
	SAStats = emulator.SAStats
	// CAStats are the central arbiter's counters.
	CAStats = emulator.CAStats
	// BUStats are one border unit's counters.
	BUStats = emulator.BUStats
	// ProcessStats are one process's timing and package counters.
	ProcessStats = emulator.ProcessStats
	// StageStats are one schedule stage's timing.
	StageStats = emulator.StageStats
	// Overheads are the refined model's timing factors.
	Overheads = emulator.Overheads
	// Policy selects the segment arbiters' selection rule.
	Policy = emulator.Policy
	// Observer receives emulation events as they happen.
	Observer = emulator.Observer
	// Trace records busy intervals and point events.
	Trace = trace.Trace
	// Options tunes an estimation.
	Options = core.Options
	// Estimation is an estimation result.
	Estimation = core.Estimation
	// Accuracy is an estimated-versus-actual comparison.
	Accuracy = stats.Accuracy
	// BUAnalysis is the UP/WP decomposition of a border unit.
	BUAnalysis = stats.BUAnalysis
	// Candidate is a configuration entering exploration.
	Candidate = core.Candidate
	// Ranked is one exploration outcome.
	Ranked = core.Ranked
)

// Estimate runs the estimation technique on in-memory models.
func Estimate(m *Model, p *Platform, opts Options) (*Estimation, error) {
	return core.Estimate(m, p, opts)
}

// EstimateXML runs the paper's exact flow from generated XML schemes.
func EstimateXML(psdfXML, psmXML []byte, packageSize int, opts Options) (*Estimation, error) {
	return core.EstimateXML(psdfXML, psmXML, packageSize, opts)
}

// Transform renders both models as XML schemes (model-to-text).
func Transform(m *Model, p *Platform) (psdfXML, psmXML []byte, err error) {
	return core.Transform(m, p)
}

// RoundTrip transforms to XML and estimates from the generated
// schemes, exercising the full pipeline.
func RoundTrip(m *Model, p *Platform, opts Options) (*Estimation, error) {
	return core.RoundTrip(m, p, opts)
}

// RunRefined executes the refined (ground-truth) timing model.
func RunRefined(m *Model, p *Platform) (*Report, error) {
	return realplat.Run(m, p, realplat.Config{})
}

// AccuracyExperiment compares the estimation model against the
// refined model on one configuration.
func AccuracyExperiment(label string, m *Model, p *Platform) (Accuracy, error) {
	return core.AccuracyExperiment(label, m, p)
}

// Explore estimates every candidate concurrently and returns the
// outcomes plus a rendered ranking table.
func Explore(m *Model, candidates []Candidate, workers int) ([]Ranked, string) {
	return core.Explore(m, candidates, workers)
}

// Best picks the fastest successful exploration outcome.
func Best(ranked []Ranked) (Ranked, error) { return core.Best(ranked) }

// Placement (the PlaceTool step).
type (
	// Allocation maps processes to segments.
	Allocation = place.Allocation
	// PlaceOptions tunes the placement optimizer.
	PlaceOptions = place.Options
)

// Place solves the allocation of the matrix's processes onto the
// given number of segments.
func Place(cm *CommMatrix, segments int, opts PlaceOptions) (Allocation, error) {
	return place.Solve(cm, segments, opts)
}

// PlacementCost returns the hop-weighted inter-segment traffic of an
// allocation.
func PlacementCost(cm *CommMatrix, a Allocation) int64 { return place.Cost(cm, a) }

// PlatformFromAllocation builds a platform from a placement result.
func PlatformFromAllocation(name string, a Allocation, clocks []Hz, caClock Hz, packageSize, headerTicks, caHopTicks int) (*Platform, error) {
	return core.PlatformFromAllocation(name, a, clocks, caClock, packageSize, headerTicks, caHopTicks)
}

// AutoPlace derives the matrix from the model, solves the placement
// and builds the platform in one step.
func AutoPlace(name string, m *Model, clocks []Hz, caClock Hz, packageSize, headerTicks, caHopTicks int) (*Platform, error) {
	return core.AutoPlace(name, m, clocks, caClock, packageSize, headerTicks, caHopTicks)
}

// DSL (textual model descriptions).
type (
	// Document is a parsed model description.
	Document = dsl.Document
	// Diagnostic is one validation finding.
	Diagnostic = dsl.Diagnostic
	// Diagnostics aggregates validation findings.
	Diagnostics = dsl.Diagnostics
)

// ParseDSL reads a textual SegBus model description.
func ParseDSL(r io.Reader) (*Document, error) { return dsl.Parse(r) }

// AnalyzeBUs decomposes every border unit of a report into useful and
// waiting periods (the paper's section-4 analysis).
func AnalyzeBUs(r *Report) []BUAnalysis { return stats.AnalyzeBUs(r) }

// StageTable renders a report's schedule-stage timing breakdown.
func StageTable(r *Report) string { return stats.StageTable(r) }
