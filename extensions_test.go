package segbus_test

import (
	"strings"
	"testing"

	"segbus"
)

func TestPublicGenerateArbiters(t *testing.T) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	prog, err := segbus.GenerateArbiters(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.SAs) != 3 || len(prog.CA) != 33 {
		t.Errorf("program shape: %d SAs, %d CA slots", len(prog.SAs), len(prog.CA))
	}
	if !strings.Contains(prog.Listing(), "SA1:") {
		t.Error("listing broken")
	}
	if !strings.Contains(prog.VHDL(), "entity ca_scheduler is") {
		t.Error("VHDL broken")
	}
}

func TestPublicEstimateEnergy(t *testing.T) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	est, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	en, err := segbus.EstimateEnergy(m, p, est.Report, segbus.EnergyParams{})
	if err != nil {
		t.Fatal(err)
	}
	if en.TotalPJ <= 0 {
		t.Error("no energy estimate")
	}
}

func TestPublicMP3Reference(t *testing.T) {
	m := segbus.MP3Decoder()
	if m.NumProcesses() != 15 || m.NumFlows() != 20 {
		t.Errorf("MP3 model shape %d/%d", m.NumProcesses(), m.NumFlows())
	}
	roles := segbus.MP3DecoderRoles()
	if roles[0] == "" || roles[14] == "" {
		t.Error("roles incomplete")
	}
	for _, p := range []*segbus.Platform{
		segbus.MP3Platform1(36), segbus.MP3Platform2(36),
		segbus.MP3Platform3(36), segbus.MP3Platform3MovedP9(36),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPublicGenerators(t *testing.T) {
	if m := segbus.Pipeline(4, 72, 10); m.NumFlows() != 3 {
		t.Error("Pipeline broken")
	}
	if m := segbus.ForkJoin(3, 36, 10); m.NumProcesses() != 5 {
		t.Error("ForkJoin broken")
	}
}

func TestPublicFrequencies(t *testing.T) {
	if segbus.MHz*1000 != segbus.GHz || segbus.KHz*1000 != segbus.MHz {
		t.Error("frequency unit relations broken")
	}
	if (91 * segbus.MHz).PeriodPs() != 10989 {
		t.Error("period conversion broken")
	}
}

func TestPublicFUKinds(t *testing.T) {
	if segbus.MasterSlave == segbus.MasterOnly || segbus.MasterOnly == segbus.SlaveOnly {
		t.Error("kind constants collide")
	}
	p := segbus.NewPlatform("k", 100*segbus.MHz, 36)
	s := p.AddSegment(90 * segbus.MHz)
	s.FUs = append(s.FUs, segbus.FU{Process: 0, Kind: segbus.MasterOnly})
	if !p.MasterCapable(0) || p.SlaveCapable(0) {
		t.Error("kind plumbing broken")
	}
}

func TestPublicSystemOutput(t *testing.T) {
	m := segbus.NewModel("out")
	m.AddFlow(segbus.Flow{Source: 0, Target: segbus.SystemOutput, Items: 36, Order: 1, Ticks: 1})
	p := segbus.NewPlatform("one", 100*segbus.MHz, 36)
	p.AddSegment(100*segbus.MHz, 0)
	est, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Report.Process(0).SentPackages != 1 {
		t.Error("system-output flow not sent")
	}
}

func TestPublicPolicyOption(t *testing.T) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	for _, pol := range []segbus.Policy{segbus.PolicyBUFirst, segbus.PolicyFIFO, segbus.PolicyFixedPriority} {
		if _, err := segbus.Estimate(m, p, segbus.Options{Policy: pol}); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

func TestPublicJPEGReference(t *testing.T) {
	m := segbus.JPEGEncoder()
	if m.NumProcesses() != 11 {
		t.Errorf("JPEG model shape: %d processes", m.NumProcesses())
	}
	if segbus.JPEGEncoderRoles()[10] == "" {
		t.Error("roles incomplete")
	}
	for _, p := range []*segbus.Platform{
		segbus.JPEGPlatform1(segbus.JPEGPackageSize),
		segbus.JPEGPlatform3(segbus.JPEGPackageSize),
	} {
		est, err := segbus.Estimate(m, p, segbus.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if est.ExecutionTimePs() <= 0 {
			t.Errorf("%s: no execution time", p.Name)
		}
	}
}

func TestPublicRepeat(t *testing.T) {
	m, err := segbus.Repeat(segbus.MP3Decoder(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFlows() != 40 {
		t.Errorf("flows = %d, want 40", m.NumFlows())
	}
	if _, err := segbus.Estimate(m, segbus.MP3Platform3(36), segbus.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSweepAndCongestion(t *testing.T) {
	m := segbus.MP3Decoder()
	base := segbus.MP3Platform3(36)
	c := segbus.SweepPackageSizes(m, base, []int{18, 36})
	if len(c.Points) != 2 || c.Points[0].Err != nil {
		t.Fatalf("curve = %+v", c)
	}
	if c.Points[0].ExecPs <= c.Points[1].ExecPs {
		t.Error("s=18 should run longer than s=36")
	}
	if _, err := segbus.SweepSegmentClock(m, base, 2, []segbus.Hz{90 * segbus.MHz}); err != nil {
		t.Fatal(err)
	}
	if len(segbus.SweepHeaderTicks(m, base, []int{0, 10}).Points) != 2 {
		t.Error("header sweep wrong")
	}
	if len(segbus.SweepCAHopTicks(m, base, []int{0, 10}).Points) != 2 {
		t.Error("hop sweep wrong")
	}

	est, err := segbus.Estimate(m, base, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := segbus.Congestions(est.Report)
	if len(cs) != 2 {
		t.Fatalf("congestions = %d", len(cs))
	}
	if !strings.Contains(segbus.CongestionReport(est.Report), "verdict") {
		t.Error("congestion report wrong")
	}
}

func TestPublicStageTable(t *testing.T) {
	est, err := segbus.Estimate(segbus.MP3Decoder(), segbus.MP3Platform3(36), segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Report.Stages) != 16 {
		t.Errorf("stages = %d", len(est.Report.Stages))
	}
	if !strings.Contains(segbus.StageTable(est.Report), "span (us)") {
		t.Error("stage table broken")
	}
}

// probe implements segbus.Observer.
type probe struct{ deliveries int }

func (p *probe) StageStarted(order int, at int64)             {}
func (p *probe) TransferGranted(segment int, at int64)        {}
func (p *probe) PackageDelivered(src, dst, pkg int, at int64) { p.deliveries++ }

func TestPublicObserver(t *testing.T) {
	var ob probe
	if _, err := segbus.Estimate(segbus.MP3Decoder(), segbus.MP3Platform3(36), segbus.Options{Observer: &ob}); err != nil {
		t.Fatal(err)
	}
	if ob.deliveries != 224 {
		t.Errorf("observed %d deliveries, want 224", ob.deliveries)
	}
}
