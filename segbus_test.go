package segbus_test

import (
	"fmt"
	"strings"
	"testing"

	"segbus"
)

// quickModel is a three-stage pipeline split across two segments.
func quickModel() (*segbus.Model, *segbus.Platform) {
	m := segbus.NewModel("quick")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 144, Order: 1, Ticks: 90})
	m.AddFlow(segbus.Flow{Source: 1, Target: 2, Items: 144, Order: 2, Ticks: 50})
	p := segbus.NewPlatform("demo", 100*segbus.MHz, 36)
	p.AddSegment(90*segbus.MHz, 0, 1)
	p.AddSegment(95*segbus.MHz, 2)
	return m, p
}

func TestPublicEstimate(t *testing.T) {
	m, p := quickModel()
	est, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.ExecutionTimePs() <= 0 {
		t.Error("no execution time")
	}
	if est.Report.Process(2).RecvPackages != 4 {
		t.Errorf("P2 received %d packages", est.Report.Process(2).RecvPackages)
	}
}

func TestPublicTransformEstimateXML(t *testing.T) {
	m, p := quickModel()
	psdfXML, psmXML, err := segbus.Transform(m, p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := segbus.EstimateXML(psdfXML, psmXML, 0, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.ExecutionTimePs() != direct.ExecutionTimePs() {
		t.Error("XML path diverges from direct path")
	}
}

func TestPublicRoundTrip(t *testing.T) {
	m, p := quickModel()
	if _, err := segbus.RoundTrip(m, p, segbus.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAccuracyExperiment(t *testing.T) {
	m, p := quickModel()
	acc, err := segbus.AccuracyExperiment("quick", m, p)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Percent() <= 0 || acc.Percent() > 100 {
		t.Errorf("accuracy = %v", acc.Percent())
	}
	if _, err := segbus.RunRefined(m, p); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPlacement(t *testing.T) {
	m, _ := quickModel()
	cm := m.CommunicationMatrix()
	alloc, err := segbus.Place(cm, 2, segbus.PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Valid() {
		t.Errorf("allocation %v invalid", alloc)
	}
	if segbus.PlacementCost(cm, alloc) < 0 {
		t.Error("negative cost")
	}
	p, err := segbus.PlatformFromAllocation("auto", alloc,
		[]segbus.Hz{90 * segbus.MHz, 95 * segbus.MHz}, 100*segbus.MHz, 36, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := segbus.Estimate(m, p, segbus.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAutoPlace(t *testing.T) {
	m, _ := quickModel()
	p, err := segbus.AutoPlace("auto", m, []segbus.Hz{90 * segbus.MHz, 95 * segbus.MHz},
		100*segbus.MHz, 36, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 2 {
		t.Errorf("segments = %d", p.NumSegments())
	}
}

func TestPublicExplore(t *testing.T) {
	m, p2 := quickModel()
	p1 := segbus.NewPlatform("one", 100*segbus.MHz, 36)
	p1.AddSegment(90*segbus.MHz, 0, 1, 2)
	ranked, table := segbus.Explore(m, []segbus.Candidate{
		{Label: "one", Platform: p1},
		{Label: "two", Platform: p2},
	}, 2)
	if len(ranked) != 2 {
		t.Fatal("ranked size")
	}
	best, err := segbus.Best(ranked)
	if err != nil {
		t.Fatal(err)
	}
	if best.Report == nil {
		t.Error("best has no report")
	}
	if !strings.Contains(table, "one") || !strings.Contains(table, "two") {
		t.Errorf("table:\n%s", table)
	}
}

func TestPublicDSL(t *testing.T) {
	text := `
application quick
flow P0 -> P1 items=144 order=1 ticks=90
flow P1 -> P2 items=144 order=2 ticks=50
platform demo
ca-clock 100MHz
package-size 36
segment 1 clock=90MHz processes=P0,P1
segment 2 clock=95MHz processes=P2
`
	doc, err := segbus.ParseDSL(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		t.Fatalf("diagnostics: %v", ds)
	}
	if _, err := segbus.Estimate(doc.Model, doc.Platform, segbus.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAnalyzeBUs(t *testing.T) {
	m, p := quickModel()
	est, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	as := segbus.AnalyzeBUs(est.Report)
	if len(as) != 1 || as[0].Name != "BU12" {
		t.Errorf("analyses = %v", as)
	}
	// 4 packages crossed: UP = 2 * 4 * 36.
	if as[0].UP != 288 {
		t.Errorf("UP = %d, want 288", as[0].UP)
	}
}

func TestPublicFlowNameParsing(t *testing.T) {
	f, err := segbus.ParseFlowName(0, "P1_576_1_250")
	if err != nil {
		t.Fatal(err)
	}
	if f.Target != 1 || f.Items != 576 {
		t.Errorf("flow = %+v", f)
	}
}

// ExampleEstimate demonstrates the quick-start flow from the package
// documentation.
func ExampleEstimate() {
	m := segbus.NewModel("example")
	m.AddFlow(segbus.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 10})

	p := segbus.NewPlatform("demo", 100*segbus.MHz, 36)
	p.AddSegment(100*segbus.MHz, 0)
	p.AddSegment(100*segbus.MHz, 1)

	est, err := segbus.Estimate(m, p, segbus.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("packages crossed: %d\n", est.Report.BU("BU12").InPackages)
	fmt.Printf("inter-segment requests at the CA: %d\n", est.Report.CA.InterRequests)
	// Output:
	// packages crossed: 2
	// inter-segment requests at the CA: 2
}

// ExamplePlace demonstrates the PlaceTool step: derive the
// communication matrix and let the optimizer allocate processes.
func ExamplePlace() {
	m := segbus.NewModel("chain")
	for i := 0; i < 5; i++ {
		m.AddFlow(segbus.Flow{
			Source: segbus.ProcessID(i), Target: segbus.ProcessID(i + 1),
			Items: 36, Order: i + 1, Ticks: 10,
		})
	}
	alloc, err := segbus.Place(m.CommunicationMatrix(), 2, segbus.PlaceOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(alloc)
	// Output:
	// 0 1 2 || 3 4 5
}
