package segbus_test

// One benchmark per table/figure of the paper's evaluation (see the
// experiment index in DESIGN.md) plus the ablation benches for the
// design choices called out there. Each bench reports the headline
// quantity of its experiment as a custom metric so that
// `go test -bench . -benchmem` regenerates the paper's numbers:
//
//	exec_us      estimated total execution time
//	actual_us    refined-model execution time
//	accuracy_pct estimation accuracy
//
// Absolute tick counts of the original Java emulator are not
// recoverable; EXPERIMENTS.md records the measured-versus-published
// comparison produced by cmd/segbus-bench, whose pass criteria these
// benches share through internal/paper.

import (
	"testing"

	"segbus"

	"segbus/internal/obs"
	"segbus/internal/paper"
)

// E1 — Figure 8: the communication matrix extracted from the PSDF
// model.
func BenchmarkCommMatrix(b *testing.B) {
	m := segbus.MP3Decoder()
	for i := 0; i < b.N; i++ {
		cm := m.CommunicationMatrix()
		if cm.Total() == 0 {
			b.Fatal("empty matrix")
		}
	}
}

// E2 — Figure 9: placement of the MP3 processes onto three segments.
func BenchmarkPlacement(b *testing.B) {
	cm := segbus.MP3Decoder().CommunicationMatrix()
	for i := 0; i < b.N; i++ {
		if _, err := segbus.Place(cm, 3, segbus.PlaceOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — the section-4 results block: the three-segment, package-size-36
// emulation.
func BenchmarkEmulate3Seg(b *testing.B) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	var execUs float64
	for i := 0; i < b.N; i++ {
		est, err := segbus.Estimate(m, p, segbus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		execUs = float64(est.ExecutionTimePs()) / 1e6
	}
	b.ReportMetric(execUs, "exec_us")
}

// E4 — Figure 10: the per-process progress timeline (trace-enabled
// emulation plus rendering).
func BenchmarkTimeline(b *testing.B) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	for i := 0; i < b.N; i++ {
		est, err := segbus.Estimate(m, p, segbus.Options{Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		if est.Trace.Timeline() == "" {
			b.Fatal("empty timeline")
		}
	}
}

// E5 — Figure 11: activity graphs for package sizes 18 and 36.
func BenchmarkActivityGraph(b *testing.B) {
	m := segbus.MP3Decoder()
	var ratio float64
	for i := 0; i < b.N; i++ {
		est36, err := segbus.Estimate(m, segbus.MP3Platform3(36), segbus.Options{Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		est18, err := segbus.Estimate(m, segbus.MP3Platform3(18), segbus.Options{Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		if est36.Trace.Gantt(96) == "" || est18.Trace.Gantt(96) == "" {
			b.Fatal("empty gantt")
		}
		ratio = float64(est18.ExecutionTimePs()) / float64(est36.ExecutionTimePs())
	}
	b.ReportMetric(ratio, "s18_over_s36")
}

// benchAccuracy runs one estimation-versus-refined experiment and
// reports its metrics.
func benchAccuracy(b *testing.B, p *segbus.Platform) {
	b.Helper()
	m := segbus.MP3Decoder()
	var acc segbus.Accuracy
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = segbus.AccuracyExperiment("bench", m, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(acc.EstimatedPs)/1e6, "exec_us")
	b.ReportMetric(float64(acc.ActualPs)/1e6, "actual_us")
	b.ReportMetric(acc.Percent(), "accuracy_pct")
}

// E6 — accuracy at package size 36 (paper: 489.79 vs 515.2 µs, ~95%).
func BenchmarkAccuracy36(b *testing.B) { benchAccuracy(b, segbus.MP3Platform3(36)) }

// E7 — accuracy at package size 18 (paper: 560.16 vs 600.02 µs, ~93%).
func BenchmarkAccuracy18(b *testing.B) { benchAccuracy(b, segbus.MP3Platform3(18)) }

// E8 — accuracy with P9 moved to segment 3 (paper: 540.4 vs 570.12 µs).
func BenchmarkAccuracyP9Moved(b *testing.B) { benchAccuracy(b, segbus.MP3Platform3MovedP9(36)) }

// E9 — the border-unit UP/WP analysis.
func BenchmarkBUAnalysis(b *testing.B) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	var meanWP float64
	for i := 0; i < b.N; i++ {
		est, err := segbus.Estimate(m, p, segbus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		as := segbus.AnalyzeBUs(est.Report)
		meanWP = as[0].MeanWP
	}
	b.ReportMetric(meanWP, "bu12_mean_wp")
}

// E10 — the one/two/three segment configuration sweep.
func BenchmarkConfigSweep(b *testing.B) {
	m := segbus.MP3Decoder()
	cands := []segbus.Candidate{
		{Label: "1seg", Platform: segbus.MP3Platform1(36)},
		{Label: "2seg", Platform: segbus.MP3Platform2(36)},
		{Label: "3seg", Platform: segbus.MP3Platform3(36)},
	}
	for i := 0; i < b.N; i++ {
		ranked, _ := segbus.Explore(m, cands, 0)
		if _, err := segbus.Best(ranked); err != nil {
			b.Fatal(err)
		}
	}
}

// A1 — exploration parallelism: the same 12-candidate sweep on one
// worker versus all cores. Compare ns/op between the two benches.
func benchExplore(b *testing.B, workers int) {
	b.Helper()
	m := segbus.MP3Decoder()
	var cands []segbus.Candidate
	for _, s := range []int{9, 12, 18, 24, 36, 48, 72, 96, 108, 144, 192, 288} {
		cands = append(cands, segbus.Candidate{Label: segbus.MP3Platform3(s).Name, Platform: segbus.MP3Platform3(s)})
	}
	for i := 0; i < b.N; i++ {
		ranked, _ := segbus.Explore(m, cands, workers)
		for _, r := range ranked {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkExploreSerial(b *testing.B)   { benchExplore(b, 1) }
func BenchmarkExploreParallel(b *testing.B) { benchExplore(b, 0) }

// A2 — placement quality: optimizer versus the naive round-robin
// baseline, measured by emulated execution time on the resulting
// platforms.
func BenchmarkPlacementQuality(b *testing.B) {
	m := segbus.MP3Decoder()
	cm := m.CommunicationMatrix()
	clocks := []segbus.Hz{91 * segbus.MHz, 98 * segbus.MHz, 89 * segbus.MHz}
	var optUs, rrUs float64
	for i := 0; i < b.N; i++ {
		opt, err := segbus.Place(cm, 3, segbus.PlaceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		optPlat, err := segbus.PlatformFromAllocation("opt", opt, clocks, 111*segbus.MHz, 36, 25, 25)
		if err != nil {
			b.Fatal(err)
		}
		optEst, err := segbus.Estimate(m, optPlat, segbus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		optUs = float64(optEst.ExecutionTimePs()) / 1e6

		// Round-robin baseline on the same structure.
		rr := segbus.Allocation{Segments: 3, Of: map[segbus.ProcessID]int{}}
		for idx, proc := range m.Processes() {
			rr.Of[proc] = idx % 3
		}
		rrPlat, err := segbus.PlatformFromAllocation("rr", rr, clocks, 111*segbus.MHz, 36, 25, 25)
		if err != nil {
			b.Fatal(err)
		}
		rrEst, err := segbus.Estimate(m, rrPlat, segbus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rrUs = float64(rrEst.ExecutionTimePs()) / 1e6
	}
	b.ReportMetric(optUs, "optimized_us")
	b.ReportMetric(rrUs, "roundrobin_us")
}

// A3 — package-size sweep on the three-segment configuration: the
// execution-time and accuracy trend behind the paper's discussion
// ("the higher the data package, the less impact of these figures").
func BenchmarkPackageSizeSweep(b *testing.B) {
	m := segbus.MP3Decoder()
	sizes := []int{9, 18, 36, 72, 144}
	accs := make([]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for j, s := range sizes {
			acc, err := segbus.AccuracyExperiment("sweep", m, segbus.MP3Platform3(s))
			if err != nil {
				b.Fatal(err)
			}
			accs[j] = acc.Percent()
		}
	}
	b.ReportMetric(accs[0], "acc_s9_pct")
	b.ReportMetric(accs[2], "acc_s36_pct")
	b.ReportMetric(accs[4], "acc_s144_pct")
}

// A4 — schedule ablation: the contribution of the T-ordering barriers.
// The flattened variant gives every flow the same ordering number, so
// only data dependencies sequence the application; the measured gap is
// the serialisation the schedule imposes.
func BenchmarkScheduleAblation(b *testing.B) {
	ordered := segbus.MP3Decoder()
	flat := segbus.NewModel("mp3-flat")
	flat.SetNominalPackageSize(ordered.NominalPackageSize())
	for _, f := range ordered.Flows() {
		f.Order = 1
		flat.AddFlow(f)
	}
	p := segbus.MP3Platform3(36)
	var orderedUs, flatUs float64
	for i := 0; i < b.N; i++ {
		a, err := segbus.Estimate(ordered, p, segbus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		c, err := segbus.Estimate(flat, p, segbus.Options{})
		if err != nil {
			b.Fatal(err)
		}
		orderedUs = float64(a.ExecutionTimePs()) / 1e6
		flatUs = float64(c.ExecutionTimePs()) / 1e6
	}
	b.ReportMetric(orderedUs, "ordered_us")
	b.ReportMetric(flatUs, "flat_us")
}

// BenchmarkPaperGate runs the full experiment battery once per
// iteration — the end-to-end cost of regenerating the whole
// evaluation.
func BenchmarkPaperGate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range paper.All() {
			res, err := e.Run()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Pass() {
				b.Fatalf("%s failed", e.ID)
			}
		}
	}
}

// A5 — arbitration-policy ablation: the MP3 run under each SA
// selection rule.
func BenchmarkArbitrationPolicies(b *testing.B) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	execs := map[segbus.Policy]float64{}
	for i := 0; i < b.N; i++ {
		for _, pol := range []segbus.Policy{
			segbus.PolicyBUFirst, segbus.PolicyFIFO, segbus.PolicyFixedPriority,
		} {
			est, err := segbus.Estimate(m, p, segbus.Options{Policy: pol})
			if err != nil {
				b.Fatal(err)
			}
			execs[pol] = float64(est.ExecutionTimePs()) / 1e6
		}
	}
	b.ReportMetric(execs[segbus.PolicyBUFirst], "bufirst_us")
	b.ReportMetric(execs[segbus.PolicyFIFO], "fifo_us")
	b.ReportMetric(execs[segbus.PolicyFixedPriority], "fixedprio_us")
}

// Ablation — observability cost: the same three-segment emulation with
// a live metrics registry. Comparing against BenchmarkEmulate3Seg
// (whose nil registry is the disabled hot path) bounds the
// instrumentation overhead; the acceptance bar is no regression beyond
// noise when metrics are off and modest single-digit cost when on.
func BenchmarkEmulate3SegMetrics(b *testing.B) {
	m := segbus.MP3Decoder()
	p := segbus.MP3Platform3(36)
	reg := obs.NewRegistry()
	for i := 0; i < b.N; i++ {
		if _, err := segbus.Estimate(m, p, segbus.Options{Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}
