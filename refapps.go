package segbus

import (
	"segbus/internal/apps"
)

// Reference applications and platform configurations. MP3Decoder and
// the MP3Platform* constructors reproduce the paper's section-4
// example (a simplified stereo MP3 decoder on one-, two- and
// three-segment SegBus instances); Pipeline and ForkJoin generate
// synthetic workloads for experiments of your own.

// MP3Decoder returns the PSDF model of the paper's simplified stereo
// MP3 decoder (Figures 7 and 8: 15 processes, 20 flows, communication
// matrix identical to the publication).
func MP3Decoder() *Model { return apps.MP3Model() }

// MP3DecoderRoles maps each MP3 decoder process to its function
// (P0 frame decoding, P1/P8 scaling, ...).
func MP3DecoderRoles() map[ProcessID]string {
	out := make(map[ProcessID]string, len(apps.MP3ProcessRoles))
	for p, r := range apps.MP3ProcessRoles {
		out[p] = r
	}
	return out
}

// MP3Platform1 returns the paper's single-segment configuration with
// the given package size.
func MP3Platform1(packageSize int) *Platform { return apps.MP3Platform1(packageSize) }

// MP3Platform2 returns the paper's two-segment configuration
// (Figure 9).
func MP3Platform2(packageSize int) *Platform { return apps.MP3Platform2(packageSize) }

// MP3Platform3 returns the paper's three-segment configuration
// (Figure 9), the main evaluation target.
func MP3Platform3(packageSize int) *Platform { return apps.MP3Platform3(packageSize) }

// MP3Platform3MovedP9 returns the modified configuration of the
// paper's third accuracy experiment: P9 shifted from segment 1 to
// segment 3.
func MP3Platform3MovedP9(packageSize int) *Platform { return apps.MP3Platform3MovedP9(packageSize) }

// JPEGEncoder returns the library's second case study: a baseline
// JPEG encoder (one MCU row, 4:2:0) with three component pipelines
// that may run concurrently.
func JPEGEncoder() *Model { return apps.JPEGModel() }

// JPEGEncoderRoles maps each JPEG encoder process to its function.
func JPEGEncoderRoles() map[ProcessID]string {
	out := make(map[ProcessID]string, len(apps.JPEGProcessRoles))
	for p, r := range apps.JPEGProcessRoles {
		out[p] = r
	}
	return out
}

// JPEGPlatform1 returns the encoder's single-segment baseline
// configuration.
func JPEGPlatform1(packageSize int) *Platform { return apps.JPEGPlatform1(packageSize) }

// JPEGPlatform3 returns the encoder's three-segment configuration
// (luma pipeline, chroma pipelines, entropy back end).
func JPEGPlatform3(packageSize int) *Platform { return apps.JPEGPlatform3(packageSize) }

// JPEGPackageSize is the encoder's natural package size: one 8x8
// block.
const JPEGPackageSize = apps.JPEGPackageSize

// Pipeline returns a linear pipeline application of n processes with
// the given per-hop data items and per-package tick cost.
func Pipeline(n, items, ticks int) *Model { return apps.Pipeline(n, items, ticks) }

// ForkJoin returns a scatter/gather application: one source, width
// concurrent workers, one sink.
func ForkJoin(width, items, ticks int) *Model { return apps.ForkJoin(width, items, ticks) }
