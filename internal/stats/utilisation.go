package stats

import (
	"fmt"
	"strings"

	"segbus/internal/emulator"
	"segbus/internal/trace"
)

// Utilisation summarises how busy each platform element was over the
// run: the fraction of the total execution time the element spent
// active. Segment figures come from the trace's bus-occupancy
// intervals; arbiter figures from the TCT monitoring counters.
type Utilisation struct {
	Element     string
	BusyPs      int64
	TotalPs     int64
	BusyPercent float64
}

// Utilisations derives the per-element utilisation table from a
// report and its trace. Elements with no recorded activity are
// reported at zero rather than omitted, so bottleneck analysis sees
// the idle elements too.
func Utilisations(r *emulator.Report, tr *trace.Trace) []Utilisation {
	total := int64(r.ExecutionTimePs)
	if total <= 0 {
		return nil
	}
	var out []Utilisation
	add := func(element string, busy int64) {
		u := Utilisation{Element: element, BusyPs: busy, TotalPs: total}
		if busy > 0 {
			u.BusyPercent = 100 * float64(busy) / float64(total)
			// The denominator is the TCT-derived execution time
			// (section 4's formula), which trace activity can slightly
			// exceed — e.g. the monitor's detection latency falls after
			// the last counted tick. Clamp so no element ever reads
			// more than fully busy; BusyPs keeps the raw figure.
			if u.BusyPercent > 100 {
				u.BusyPercent = 100
			}
		}
		out = append(out, u)
	}
	for _, sa := range r.SAs {
		add(fmt.Sprintf("Segment %d", sa.Segment), tr.BusyTime(fmt.Sprintf("Segment %d", sa.Segment)))
	}
	for _, bu := range r.BUs {
		add(bu.Name, tr.BusyTime(bu.Name))
	}
	for _, ps := range r.Processes {
		add(ps.Process.String(), tr.BusyTime(ps.Process.String()))
	}
	return out
}

// UtilisationTable renders the utilisation rows as fixed-width text,
// busiest first.
func UtilisationTable(us []Utilisation) string {
	rows := make([]Utilisation, len(us))
	copy(rows, us)
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].BusyPercent > rows[i].BusyPercent ||
				(rows[j].BusyPercent == rows[i].BusyPercent && rows[j].Element < rows[i].Element) {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %8s\n", "element", "busy (us)", "busy%")
	for _, u := range rows {
		fmt.Fprintf(&b, "%-12s %12.2f %8.1f\n", u.Element, float64(u.BusyPs)/1e6, u.BusyPercent)
	}
	return b.String()
}
