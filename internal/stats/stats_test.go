package stats

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
)

func TestAnalyzeBU(t *testing.T) {
	bu := emulator.BUStats{
		Name:        "BU12",
		InPackages:  32,
		LoadTicks:   1152,
		UnloadTicks: 1152,
		WaitTicks:   32,
		TCT:         2336,
	}
	a := AnalyzeBU(bu)
	if a.UP != 2304 {
		t.Errorf("UP = %d", a.UP)
	}
	if a.MeanWP != 1.0 {
		t.Errorf("MeanWP = %v", a.MeanWP)
	}
	if a.UtilPercent < 98 || a.UtilPercent > 99 {
		t.Errorf("UtilPercent = %v", a.UtilPercent)
	}
}

func TestAnalyzeBUEmpty(t *testing.T) {
	a := AnalyzeBU(emulator.BUStats{Name: "BU12"})
	if a.MeanWP != 0 || a.UtilPercent != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestAccuracyPercent(t *testing.T) {
	a := Accuracy{Label: "x", EstimatedPs: 489_792_303, ActualPs: 515_200_000}
	if got := a.Percent(); got < 95.0 || got > 95.2 {
		t.Errorf("Percent() = %v, want ~95.07 (the paper's headline)", got)
	}
	if got := a.ErrorPs(); got != 25_407_697 {
		t.Errorf("ErrorPs() = %d", got)
	}
	// Over-estimation folds symmetrically.
	b := Accuracy{EstimatedPs: 110, ActualPs: 100}
	if got := b.Percent(); got < 90.8 || got > 91.0 {
		t.Errorf("over-estimate Percent() = %v", got)
	}
	if (Accuracy{}).Percent() != 0 {
		t.Error("zero accuracy not handled")
	}
}

func TestAccuracyString(t *testing.T) {
	a := Accuracy{Label: "3seg/s36", EstimatedPs: 489_790_000, ActualPs: 515_200_000}
	s := a.String()
	for _, want := range []string{"3seg/s36", "489.79us", "515.20us", "95."} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func run3seg(t *testing.T) *emulator.Report {
	t.Helper()
	r, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeBUsFromReport(t *testing.T) {
	r := run3seg(t)
	as := AnalyzeBUs(r)
	if len(as) != 2 || as[0].Name != "BU12" || as[1].Name != "BU23" {
		t.Fatalf("AnalyzeBUs = %v", as)
	}
	if as[0].UP != 2304 || as[1].UP != 144 {
		t.Errorf("UP values = %d/%d, want 2304/144 (paper section 4)", as[0].UP, as[1].UP)
	}
}

func TestCompare(t *testing.T) {
	est := run3seg(t)
	a := Compare("x", est, est)
	if a.Percent() != 100 {
		t.Errorf("self-comparison = %v%%", a.Percent())
	}
}

func TestRowFromReportAndRankTable(t *testing.T) {
	r := run3seg(t)
	row := RowFromReport("3seg", r)
	if row.Segments != 3 || row.PackageSize != 36 {
		t.Errorf("row = %+v", row)
	}
	if row.InterSegmentPkg != 33 { // 32 rightward from seg1 + 1 leftward from seg3
		t.Errorf("InterSegmentPkg = %d, want 33", row.InterSegmentPkg)
	}
	rows := []ConfigResult{
		{Label: "slow", ExecutionTimePs: 900e6},
		{Label: "fast", ExecutionTimePs: 100e6},
		{Label: "mid", ExecutionTimePs: 500e6},
	}
	table := RankTable(rows)
	iFast := strings.Index(table, "fast")
	iMid := strings.Index(table, "mid")
	iSlow := strings.Index(table, "slow")
	if !(iFast < iMid && iMid < iSlow) {
		t.Errorf("RankTable not sorted:\n%s", table)
	}
}

func TestBUTable(t *testing.T) {
	r := run3seg(t)
	table := BUTable(AnalyzeBUs(r))
	for _, want := range []string{"BU12", "BU23", "2304", "144", "meanWP"} {
		if !strings.Contains(table, want) {
			t.Errorf("BUTable missing %q:\n%s", want, table)
		}
	}
}

func TestStageTable(t *testing.T) {
	r := run3seg(t)
	table := StageTable(r)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 17 { // header + 16 stages
		t.Fatalf("rows = %d:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[0], "span") {
		t.Error("header missing")
	}
}
