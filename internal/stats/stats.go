// Package stats analyses emulation reports: the border-unit
// useful-period / waiting-period decomposition of section 4, the
// estimation-accuracy computation of the paper's three experiments,
// and tabular renderings of configuration comparisons.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/emulator"
)

// BUAnalysis is the section-4 decomposition of a border unit's total
// clock ticks: the useful period UP (loading plus unloading every
// package, 2·s ticks per full package), the accumulated waiting
// period, and the mean waiting period per transfer.
type BUAnalysis struct {
	Name        string
	Packages    int   // packages that crossed the unit
	UP          int64 // useful period: load + unload ticks
	TCT         int64 // total clock ticks (UP + waiting)
	WaitTicks   int64 // total waiting ticks (WP accumulated)
	MeanWP      float64
	UtilPercent float64 // UP / TCT
}

// AnalyzeBU decomposes one border unit's counters.
func AnalyzeBU(bu emulator.BUStats) BUAnalysis {
	a := BUAnalysis{
		Name:      bu.Name,
		Packages:  bu.InPackages,
		UP:        bu.LoadTicks + bu.UnloadTicks,
		TCT:       bu.TCT,
		WaitTicks: bu.WaitTicks,
	}
	if bu.InPackages > 0 {
		a.MeanWP = float64(bu.WaitTicks) / float64(bu.InPackages)
	}
	if a.TCT > 0 {
		a.UtilPercent = 100 * float64(a.UP) / float64(a.TCT)
	}
	return a
}

// AnalyzeBUs decomposes every border unit of a report, left to right.
func AnalyzeBUs(r *emulator.Report) []BUAnalysis {
	out := make([]BUAnalysis, 0, len(r.BUs))
	for _, bu := range r.BUs {
		out = append(out, AnalyzeBU(bu))
	}
	return out
}

// Accuracy is one estimated-versus-actual comparison, as the paper
// reports for its three experiments.
type Accuracy struct {
	Label       string
	EstimatedPs int64
	ActualPs    int64
}

// Percent returns the estimation accuracy as a percentage: the ratio
// of the smaller to the larger execution time × 100 (the emulator
// normally under-estimates).
func (a Accuracy) Percent() float64 {
	if a.ActualPs == 0 || a.EstimatedPs == 0 {
		return 0
	}
	r := float64(a.EstimatedPs) / float64(a.ActualPs)
	if r > 1 {
		r = 1 / r
	}
	return 100 * r
}

// ErrorPs returns the absolute estimation error in picoseconds.
func (a Accuracy) ErrorPs() int64 {
	d := a.ActualPs - a.EstimatedPs
	if d < 0 {
		d = -d
	}
	return d
}

// String renders one comparison line in the paper's style.
func (a Accuracy) String() string {
	return fmt.Sprintf("%s: estimated %.2fus, actual %.2fus, accuracy %.1f%%",
		a.Label, float64(a.EstimatedPs)/1e6, float64(a.ActualPs)/1e6, a.Percent())
}

// Compare builds the Accuracy record for a pair of reports of the
// same configuration (estimation model and refined model).
func Compare(label string, estimated, actual *emulator.Report) Accuracy {
	return Accuracy{
		Label:       label,
		EstimatedPs: int64(estimated.ExecutionTimePs),
		ActualPs:    int64(actual.ExecutionTimePs),
	}
}

// ConfigResult is one row of a configuration-ranking table.
type ConfigResult struct {
	Label           string
	Allocation      string
	Segments        int
	PackageSize     int
	ExecutionTimePs int64
	InterSegmentPkg int // packages that crossed at least one border unit
}

// RowFromReport extracts a ranking row from an emulation report.
func RowFromReport(label string, r *emulator.Report) ConfigResult {
	inter := 0
	for _, s := range r.Segments {
		inter += s.ToLeft + s.ToRight
	}
	return ConfigResult{
		Label:           label,
		Allocation:      r.Platform,
		Segments:        len(r.SAs),
		PackageSize:     r.PackageSize,
		ExecutionTimePs: int64(r.ExecutionTimePs),
		InterSegmentPkg: inter,
	}
}

// RankTable renders configuration results sorted by execution time
// (fastest first) as a fixed-width text table for the designer's
// configuration decision.
func RankTable(rows []ConfigResult) string {
	sorted := make([]ConfigResult, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ExecutionTimePs != sorted[j].ExecutionTimePs {
			return sorted[i].ExecutionTimePs < sorted[j].ExecutionTimePs
		}
		return sorted[i].Label < sorted[j].Label
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %4s %5s %12s %10s  %s\n", "configuration", "segs", "pkg", "exec (us)", "inter-pkgs", "allocation")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-24s %4d %5d %12.2f %10d  %s\n",
			r.Label, r.Segments, r.PackageSize, float64(r.ExecutionTimePs)/1e6, r.InterSegmentPkg, r.Allocation)
	}
	return b.String()
}

// BUTable renders the border-unit analysis in the section-4 layout
// (UP, TCT, mean WP per unit).
func BUTable(as []BUAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %8s %8s\n", "BU", "pkgs", "UP", "TCT", "meanWP", "util%")
	for _, a := range as {
		fmt.Fprintf(&b, "%-6s %8d %10d %10d %8.1f %8.1f\n", a.Name, a.Packages, a.UP, a.TCT, a.MeanWP, a.UtilPercent)
	}
	return b.String()
}

// StageTable renders the schedule-stage timing of a report: when each
// ordering number's flows became eligible, how long the stage ran and
// how many packages it delivered — the breakdown behind the Figure 10
// timeline.
func StageTable(r *emulator.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %8s %12s %12s %12s\n", "order", "pkgs", "start (us)", "end (us)", "span (us)")
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "%-7d %8d %12.2f %12.2f %12.2f\n",
			st.Order, st.Packages,
			float64(st.StartPs)/1e6, float64(st.EndPs)/1e6,
			float64(st.EndPs-st.StartPs)/1e6)
	}
	return b.String()
}
