package stats

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func TestCongestionsMP3IsHealthy(t *testing.T) {
	r := run3seg(t)
	cs := Congestions(r)
	if len(cs) != 2 {
		t.Fatalf("units = %d", len(cs))
	}
	// The paper's configuration has mean waiting periods of ~1 tick
	// against a 36-item package: nothing congested.
	for _, c := range cs {
		if c.Congested {
			t.Errorf("%s flagged congested with meanWP %.1f", c.Name, c.MeanWP)
		}
		if c.WPOverSize > 0.1 {
			t.Errorf("%s WP/size = %.2f, expected tiny", c.Name, c.WPOverSize)
		}
	}
}

func TestCongestionsDetectContention(t *testing.T) {
	// Saturate segment 2's bus with local traffic while segment 1
	// streams packages into BU12 concurrently: loaded packages must
	// wait out the residual of whatever transaction occupies the slow
	// downstream bus. The clock domains differ so the two streams
	// cannot fall into lockstep.
	m := psdf.NewModel("congest")
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 360, Order: 1, Ticks: 0})
	m.AddFlow(psdf.Flow{Source: 3, Target: 4, Items: 1440, Order: 1, Ticks: 0})
	p := platform.New("two", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	p.AddSegment(50*platform.MHz, 2, 3, 4)
	// P1 needs something to do so it is part of the application.
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 2, Ticks: 0})
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cs := Congestions(r)
	if len(cs) != 1 {
		t.Fatalf("units = %d", len(cs))
	}
	if !cs[0].Congested {
		t.Errorf("saturated downstream bus not flagged: %+v", cs[0])
	}
	if cs[0].MeanWP < float64(r.PackageSize)*congestionThreshold {
		t.Errorf("meanWP %.1f below threshold yet expected congestion", cs[0].MeanWP)
	}
}

func TestCongestionsRankedWorstFirst(t *testing.T) {
	r := run3seg(t)
	cs := Congestions(r)
	for i := 1; i < len(cs); i++ {
		if cs[i].WaitShare > cs[i-1].WaitShare {
			t.Error("not ranked by wait share")
		}
	}
}

func TestCongestionReportRendering(t *testing.T) {
	r := run3seg(t)
	s := CongestionReport(r)
	for _, want := range []string{"BU12", "BU23", "verdict", "ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	one, err := emulator.Run(apps.MP3Model(), apps.MP3Platform1(36), emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(CongestionReport(one), "no border units") {
		t.Error("single-segment case not handled")
	}
}
