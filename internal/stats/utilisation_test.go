package stats

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/trace"
)

func TestUtilisations(t *testing.T) {
	tr := &trace.Trace{}
	r, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	us := Utilisations(r, tr)
	byName := map[string]Utilisation{}
	for _, u := range us {
		byName[u.Element] = u
		if u.BusyPercent < 0 || u.BusyPercent > 100 {
			t.Errorf("%s: %v%% out of range", u.Element, u.BusyPercent)
		}
		if u.TotalPs != int64(r.ExecutionTimePs) {
			t.Errorf("%s: total mismatch", u.Element)
		}
	}
	// All three segments, both BUs and all fifteen processes appear.
	if len(us) != 3+2+15 {
		t.Fatalf("rows = %d, want 20", len(us))
	}
	// Segment 2 hosts the long output chain: it must be the busiest
	// segment.
	if byName["Segment 2"].BusyPercent <= byName["Segment 3"].BusyPercent {
		t.Error("segment business ordering surprising")
	}
	// P3 (stereo processing, 32 output packages) works more than P4
	// (one package).
	if byName["P3"].BusyPs <= byName["P4"].BusyPs {
		t.Error("process business ordering surprising")
	}
}

func TestUtilisationsEmpty(t *testing.T) {
	if got := Utilisations(&emulator.Report{}, nil); got != nil {
		t.Errorf("empty report produced rows: %v", got)
	}
	// Zero ExecutionTimePs means no denominator: nil, not NaN rows —
	// even when the report carries elements.
	r := &emulator.Report{SAs: []emulator.SAStats{{Segment: 1}}}
	if got := Utilisations(r, &trace.Trace{}); got != nil {
		t.Errorf("zero-time report produced rows: %v", got)
	}
}

// TestUtilisationsMergesOverlaps: an element's busy time merges
// overlapping and adjacent intervals through trace.BusyTime instead of
// double-counting them.
func TestUtilisationsMergesOverlaps(t *testing.T) {
	tr := &trace.Trace{}
	// Overlapping [0,100) and [50,150), adjacent [150,200): 200 busy.
	tr.AddInterval("Segment 1", trace.Transfer, 0, 100, "")
	tr.AddInterval("Segment 1", trace.Transfer, 50, 150, "")
	tr.AddInterval("Segment 1", trace.Transfer, 150, 200, "")
	r := &emulator.Report{
		ExecutionTimePs: 400,
		SAs:             []emulator.SAStats{{Segment: 1}},
	}
	us := Utilisations(r, tr)
	if len(us) != 1 {
		t.Fatalf("rows = %d", len(us))
	}
	if us[0].BusyPs != 200 {
		t.Errorf("BusyPs = %d, want 200 (merged)", us[0].BusyPs)
	}
	if us[0].BusyPercent != 50 {
		t.Errorf("BusyPercent = %v, want 50", us[0].BusyPercent)
	}
}

// TestUtilisationsClamped: trace activity past the TCT-derived
// execution time (the monitor's detection latency falls outside the
// counted ticks) clamps at 100%, with BusyPs keeping the raw figure.
func TestUtilisationsClamped(t *testing.T) {
	tr := &trace.Trace{}
	tr.AddInterval("Segment 1", trace.Transfer, 0, 500, "")
	r := &emulator.Report{
		ExecutionTimePs: 400,
		SAs:             []emulator.SAStats{{Segment: 1}},
	}
	us := Utilisations(r, tr)
	if us[0].BusyPercent != 100 {
		t.Errorf("BusyPercent = %v, want clamp at 100", us[0].BusyPercent)
	}
	if us[0].BusyPs != 500 {
		t.Errorf("BusyPs = %d, want the raw 500", us[0].BusyPs)
	}
}

func TestUtilisationTable(t *testing.T) {
	us := []Utilisation{
		{Element: "idle", BusyPs: 0, TotalPs: 100, BusyPercent: 0},
		{Element: "busy", BusyPs: 90, TotalPs: 100, BusyPercent: 90},
	}
	table := UtilisationTable(us)
	if !strings.Contains(table, "busy%") {
		t.Error("header missing")
	}
	if strings.Index(table, "busy") > strings.Index(table, "idle") {
		t.Errorf("not sorted busiest-first:\n%s", table)
	}
}
