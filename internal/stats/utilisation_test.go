package stats

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/trace"
)

func TestUtilisations(t *testing.T) {
	tr := &trace.Trace{}
	r, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	us := Utilisations(r, tr)
	byName := map[string]Utilisation{}
	for _, u := range us {
		byName[u.Element] = u
		if u.BusyPercent < 0 || u.BusyPercent > 100 {
			t.Errorf("%s: %v%% out of range", u.Element, u.BusyPercent)
		}
		if u.TotalPs != int64(r.ExecutionTimePs) {
			t.Errorf("%s: total mismatch", u.Element)
		}
	}
	// All three segments, both BUs and all fifteen processes appear.
	if len(us) != 3+2+15 {
		t.Fatalf("rows = %d, want 20", len(us))
	}
	// Segment 2 hosts the long output chain: it must be the busiest
	// segment.
	if byName["Segment 2"].BusyPercent <= byName["Segment 3"].BusyPercent {
		t.Error("segment business ordering surprising")
	}
	// P3 (stereo processing, 32 output packages) works more than P4
	// (one package).
	if byName["P3"].BusyPs <= byName["P4"].BusyPs {
		t.Error("process business ordering surprising")
	}
}

func TestUtilisationsEmpty(t *testing.T) {
	if got := Utilisations(&emulator.Report{}, nil); got != nil {
		t.Errorf("empty report produced rows: %v", got)
	}
}

func TestUtilisationTable(t *testing.T) {
	us := []Utilisation{
		{Element: "idle", BusyPs: 0, TotalPs: 100, BusyPercent: 0},
		{Element: "busy", BusyPs: 90, TotalPs: 100, BusyPercent: 90},
	}
	table := UtilisationTable(us)
	if !strings.Contains(table, "busy%") {
		t.Error("header missing")
	}
	if strings.Index(table, "busy") > strings.Index(table, "idle") {
		t.Errorf("not sorted busiest-first:\n%s", table)
	}
}
