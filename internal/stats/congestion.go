package stats

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/emulator"
)

// Congestion quantifies a border unit as a communication bottleneck,
// the analysis the paper's conclusion asks the designer to perform
// ("the granularity level of application components can be balanced
// in order to eliminate the traffic congestion located at certain
// BUs"): the waiting period share of the unit's total ticks, and how
// the mean wait compares to the package size.
type Congestion struct {
	Name       string
	Packages   int
	MeanWP     float64 // mean waiting period per package (ticks)
	WaitShare  float64 // WaitTicks / TCT
	WPOverSize float64 // MeanWP / package size: 1.0 is the paper's worst case
	Congested  bool    // heuristic flag: waiting rivals transferring
}

// congestionThreshold marks a unit congested when its packages wait,
// on average, at least a quarter of a package transfer.
const congestionThreshold = 0.25

// Congestions ranks the report's border units by waiting share,
// worst first.
func Congestions(r *emulator.Report) []Congestion {
	out := make([]Congestion, 0, len(r.BUs))
	for _, bu := range r.BUs {
		c := Congestion{Name: bu.Name, Packages: bu.InPackages}
		if bu.InPackages > 0 {
			c.MeanWP = float64(bu.WaitTicks) / float64(bu.InPackages)
		}
		if bu.TCT > 0 {
			c.WaitShare = float64(bu.WaitTicks) / float64(bu.TCT)
		}
		if r.PackageSize > 0 {
			c.WPOverSize = c.MeanWP / float64(r.PackageSize)
		}
		c.Congested = c.WPOverSize >= congestionThreshold
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WaitShare != out[j].WaitShare {
			return out[i].WaitShare > out[j].WaitShare
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CongestionReport renders the ranking with a verdict line per unit.
func CongestionReport(r *emulator.Report) string {
	cs := Congestions(r)
	if len(cs) == 0 {
		return "no border units (single-segment platform)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s  %s\n", "BU", "pkgs", "meanWP", "wait%", "WP/size", "verdict")
	for _, c := range cs {
		verdict := "ok"
		if c.Congested {
			verdict = "CONGESTED — consider rebalancing the processes around this unit"
		}
		fmt.Fprintf(&b, "%-6s %8d %10.1f %10.1f %10.2f  %s\n",
			c.Name, c.Packages, c.MeanWP, 100*c.WaitShare, c.WPOverSize, verdict)
	}
	return b.String()
}
