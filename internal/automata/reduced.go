package automata

// reducedOutcome is the result of one greedy maximal run.
type reducedOutcome struct {
	terminated bool     // every stage completed
	exhausted  bool     // step budget ran out first
	final      []byte   // last state reached (the stuck state when !terminated)
	trace      []Action // the full action history of the run
	steps      int
}

// runReduced drives one greedy maximal run of the product: at every
// state it fires the first enabled transition, preferring to flush
// in-flight work (deliver, then grant, then request) before starting
// new computations. Because the firing gates are monotone in the
// delivered-package counts — delivering a package never disables
// another transition for good — the product is persistent, and every
// maximal run delivers the same package set. One greedy run therefore
// decides deadlock-versus-termination exactly, visiting a number of
// states linear in the package count instead of the product's
// breadth. The breadth-first explorer cross-checks this reduction
// (TestReducedMatchesProduct, FuzzProduct).
func (s *System) runReduced(budget int) reducedOutcome {
	st := s.initial()
	out := reducedOutcome{}
	// Flush priority: later phases first, so traces read like a
	// serialised schedule and the bus is free whenever a grant fires.
	prio := []Phase{Transferring, RequestingBus, Computing, Waiting}
	for {
		if s.done(st) {
			out.terminated = true
			out.final = st
			return out
		}
		if out.steps >= budget {
			out.exhausted = true
			out.final = st
			return out
		}
		fired := false
		for _, ph := range prio {
			for ei := range s.emitters {
				if s.phase(st, ei) != ph || !s.enabled(st, ei) {
					continue
				}
				a, ns := s.step(st, ei)
				out.trace = append(out.trace, a)
				st = ns
				out.steps++
				fired = true
				break
			}
			if fired {
				break
			}
		}
		if !fired {
			out.final = st // stuck: a reachable deadlock state
			return out
		}
	}
}
