package automata_test

import (
	"strings"
	"testing"

	"segbus/internal/automata"
	"segbus/internal/conform"
	"segbus/internal/dsl"
)

// FuzzProduct cross-checks the persistence reduction against the
// exhaustive product exploration on arbitrary documents, seeded from
// the conformance generator's model family. Wherever both conclude
// within budget they must agree, and every deadlock verdict must ship
// a trace that replays into a stuck state.
func FuzzProduct(f *testing.F) {
	gen := conform.NewGenerator(1, nil)
	for i := 0; i < 12; i++ {
		f.Add(gen.Next().Doc.Print())
	}
	const budget = 1 << 12

	f.Fuzz(func(t *testing.T, text string) {
		doc, err := dsl.Parse(strings.NewReader(text))
		if err != nil || doc.Model == nil {
			t.Skip()
		}
		sys, err := automata.Compile(doc.Model, doc.Platform)
		if err != nil {
			t.Skip() // invalid or oversized input
		}
		res := sys.Check(automata.Options{StateBudget: budget})
		if res.Verdict == automata.Deadlocks {
			stuck, err := sys.Replay(res.Trace)
			if err != nil {
				t.Fatalf("counterexample does not replay: %v", err)
			}
			if !stuck {
				t.Fatalf("counterexample replays to a live state:\n%s", automata.FormatTrace(res.Trace))
			}
		}

		terminated, exhausted, _ := sys.RunReduced(budget)
		verdict, _ := sys.ExploreProduct(budget, 2)
		if exhausted || verdict == automata.Inconclusive {
			return // one side ran out of budget; nothing to compare
		}
		if terminated != (verdict == automata.Terminates) {
			t.Fatalf("reduced run terminated=%v but product verdict=%v", terminated, verdict)
		}
		if res.Verdict != verdict {
			t.Fatalf("Check verdict %v disagrees with product verdict %v", res.Verdict, verdict)
		}
	})
}
