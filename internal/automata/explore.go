package automata

import (
	"runtime"
	"sync"
)

// productOutcome is the result of one breadth-first product
// exploration.
type productOutcome struct {
	verdict Verdict  // Terminates, Deadlocks or Inconclusive (budget)
	states  int      // distinct states visited
	trace   []Action // shortest path into the stuck state (Deadlocks)
	stuck   []byte   // the stuck state itself (Deadlocks)
}

// stateRec is one discovered state of the exploration graph: its
// encoded form plus the predecessor edge used for trace
// reconstruction.
type stateRec struct {
	key  string
	pred int32 // index of the predecessor state (-1 for the root)
	act  Action
}

// expansion is one frontier state's expansion, computed by a worker.
type expansion struct {
	succs []succRec
	stuck bool // zero successors and stages incomplete
}

type succRec struct {
	key string
	act Action
}

// minParallelFrontier is the frontier size below which level
// expansion stays serial; smaller levels are cheaper than the
// hand-off to workers.
const minParallelFrontier = 64

// exploreProduct runs the exhaustive breadth-first exploration of the
// product: an iterative worklist (frontier levels) with hashed state
// deduplication, stopping at the first stuck state (which, in level
// order, is one of minimal depth — its predecessor chain is a
// shortest counterexample trace) or when the distinct-state budget is
// exhausted. Frontier levels are expanded by workers in parallel;
// the merge walks the frontier in order and the per-state successor
// enumeration is fixed, so the discovery order — and therefore the
// reported trace — is identical for any worker count.
func (s *System) exploreProduct(budget, workers int) productOutcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	root := s.initial()
	visited := make(map[string]int32, 1024)
	states := []stateRec{{key: string(root), pred: -1}}
	visited[states[0].key] = 0

	frontier := []int32{0}
	for len(frontier) > 0 {
		keys := make([]string, len(frontier))
		for fi, id := range frontier {
			keys[fi] = states[id].key
		}
		exps := s.expandLevel(keys, workers)

		var next []int32
		for fi, exp := range exps {
			if exp.stuck {
				id := frontier[fi]
				return productOutcome{
					verdict: Deadlocks,
					states:  len(states),
					trace:   s.rebuildTrace(states, id),
					stuck:   []byte(states[id].key),
				}
			}
			for _, sr := range exp.succs {
				if _, ok := visited[sr.key]; ok {
					continue
				}
				if len(states) >= budget {
					return productOutcome{verdict: Inconclusive, states: len(states)}
				}
				id := int32(len(states))
				visited[sr.key] = id
				states = append(states, stateRec{key: sr.key, pred: frontier[fi], act: sr.act})
				next = append(next, id)
			}
		}
		frontier = next
	}
	return productOutcome{verdict: Terminates, states: len(states)}
}

// expandLevel computes the expansion of every frontier state (given
// by its encoded key), fanning the work out to workers when the level
// is large enough. Workers write disjoint slots of the result slice,
// so no locking is needed; dedup against the visited set happens in
// the caller's deterministic in-order merge.
func (s *System) expandLevel(keys []string, workers int) []expansion {
	exps := make([]expansion, len(keys))
	expand := func(fi int) {
		st := []byte(keys[fi])
		n := s.succ(st, func(a Action, ns []byte) {
			exps[fi].succs = append(exps[fi].succs, succRec{key: string(ns), act: a})
		})
		exps[fi].stuck = n == 0 && !s.done(st)
	}
	if workers <= 1 || len(keys) < minParallelFrontier {
		for fi := range keys {
			expand(fi)
		}
		return exps
	}
	var wg sync.WaitGroup
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(keys) {
			break
		}
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for fi := lo; fi < hi; fi++ {
				expand(fi)
			}
		}(lo, hi)
	}
	wg.Wait()
	return exps
}

// rebuildTrace walks the predecessor chain from state id back to the
// root and returns the action sequence in forward order.
func (s *System) rebuildTrace(states []stateRec, id int32) []Action {
	var rev []Action
	for cur := id; states[cur].pred >= 0; cur = states[cur].pred {
		rev = append(rev, states[cur].act)
	}
	out := make([]Action, len(rev))
	for i, a := range rev {
		out[len(rev)-1-i] = a
	}
	return out
}
