package automata_test

import (
	"errors"
	"testing"

	"segbus/internal/automata"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func model(name string, flows ...psdf.Flow) *psdf.Model {
	m := psdf.NewModel(name)
	for _, f := range flows {
		m.AddFlow(f)
	}
	return m
}

func plat(segs ...[]psdf.ProcessID) *platform.Platform {
	p := platform.New("test", 100*platform.MHz, 4)
	for _, procs := range segs {
		p.AddSegment(90*platform.MHz, procs...)
	}
	return p
}

// TestDeadlockGallery drives the exact checker over the canonical
// stuck and almost-stuck schedule shapes, asserting the verdict, the
// counterexample bookkeeping, agreement with the emulator's outcome,
// and that every deadlock trace replays into a stuck product state.
func TestDeadlockGallery(t *testing.T) {
	cases := []struct {
		name       string
		m          *psdf.Model
		p          *platform.Platform
		verdict    automata.Verdict
		traceLen   int // -1: don't check
		neverFired []psdf.ProcessID
		blocked    []psdf.ProcessID
	}{
		{
			// Two processes on different segments feed each other at
			// one ordering number: once the seed stage drains, each
			// member's gate waits on the other and nothing ever fires.
			name: "cyclic-wait-across-two-segments",
			m: model("cyclic",
				psdf.Flow{Source: 3, Target: 0, Items: 4, Order: 1, Ticks: 5},
				psdf.Flow{Source: 0, Target: 1, Items: 4, Order: 2, Ticks: 5},
				psdf.Flow{Source: 1, Target: 0, Items: 4, Order: 2, Ticks: 5},
			),
			p:          plat([]psdf.ProcessID{0, 3}, []psdf.ProcessID{1}),
			verdict:    automata.Deadlocks,
			traceLen:   4, // the seed package's four actions
			neverFired: []psdf.ProcessID{0, 1},
			blocked:    []psdf.ProcessID{0, 1},
		},
		{
			// An open cycle that makes partial progress and then
			// starves: P2 needs both of P1's packages, but P1's second
			// emission waits on P2's answer.
			name: "starved-ordering",
			m: model("starved",
				psdf.Flow{Source: 0, Target: 1, Items: 4, Order: 1, Ticks: 5},
				psdf.Flow{Source: 1, Target: 2, Items: 8, Order: 1, Ticks: 5},
				psdf.Flow{Source: 2, Target: 1, Items: 4, Order: 1, Ticks: 5},
			),
			p:          plat([]psdf.ProcessID{0, 1}, []psdf.ProcessID{2}),
			verdict:    automata.Deadlocks,
			traceLen:   8, // two delivered packages, four actions each
			neverFired: []psdf.ProcessID{2},
			blocked:    []psdf.ProcessID{1, 2},
		},
		{
			// A self-consistent feedback loop: P0's side output to P3
			// dilutes its firing gates enough that the seed lets the
			// cycle hand packages back and forth until it drains. The
			// SB101 heuristic grades this shape a warning; the exact
			// checker proves it terminates.
			name: "self-consistent-cycle-terminates",
			m: model("feedback",
				psdf.Flow{Source: 2, Target: 0, Items: 4, Order: 1, Ticks: 5},
				psdf.Flow{Source: 0, Target: 1, Items: 4, Order: 1, Ticks: 5},
				psdf.Flow{Source: 0, Target: 3, Items: 8, Order: 1, Ticks: 5},
				psdf.Flow{Source: 1, Target: 0, Items: 4, Order: 1, Ticks: 5},
			),
			p:        plat([]psdf.ProcessID{0, 1}, []psdf.ProcessID{2, 3}),
			verdict:  automata.Terminates,
			traceLen: -1,
		},
		{
			// The same loop with the return flow halved: P1's gate
			// then demands both of P0's packages before answering, so
			// the loop stalls after consuming the seed — the
			// livelock-shaped variant of the feedback cycle.
			name: "self-consistent-livelock-stalls",
			m: model("livelock",
				psdf.Flow{Source: 2, Target: 0, Items: 4, Order: 1, Ticks: 5},
				psdf.Flow{Source: 0, Target: 1, Items: 8, Order: 1, Ticks: 5},
				psdf.Flow{Source: 1, Target: 0, Items: 4, Order: 1, Ticks: 5},
			),
			p:          plat([]psdf.ProcessID{0, 1}, []psdf.ProcessID{2}),
			verdict:    automata.Deadlocks,
			traceLen:   8, // seed plus P0's first package
			neverFired: []psdf.ProcessID{1},
			blocked:    []psdf.ProcessID{0, 1},
		},
		{
			// Plain pipeline across segments: terminates; the sink's
			// segment hosts no emitter and is pruned from the product.
			name: "chain-terminates",
			m: model("chain",
				psdf.Flow{Source: 0, Target: 1, Items: 8, Order: 1, Ticks: 5},
				psdf.Flow{Source: 1, Target: 2, Items: 8, Order: 2, Ticks: 5},
			),
			p:        plat([]psdf.ProcessID{0, 1}, []psdf.ProcessID{2}),
			verdict:  automata.Terminates,
			traceLen: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := automata.Compile(tc.m, tc.p)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			res := sys.Check(automata.Options{})
			if res.Verdict != tc.verdict {
				t.Fatalf("verdict = %v, want %v", res.Verdict, tc.verdict)
			}

			// The emulator must agree with the exact verdict.
			_, emuErr := emulator.Run(tc.m, tc.p, emulator.Config{})
			var dl *emulator.DeadlockError
			emuDeadlock := errors.As(emuErr, &dl)
			if emuErr != nil && !emuDeadlock {
				t.Fatalf("emulator failed for a non-deadlock reason: %v", emuErr)
			}
			if emuDeadlock != (tc.verdict == automata.Deadlocks) {
				t.Fatalf("emulator deadlock = %v, checker verdict %v", emuDeadlock, res.Verdict)
			}

			if tc.verdict != automata.Deadlocks {
				if len(res.Trace) != 0 || len(res.Blocked) != 0 || len(res.NeverFired) != 0 {
					t.Fatalf("terminating result carries deadlock detail: %+v", res)
				}
				return
			}

			if !res.Minimal {
				t.Errorf("expected a minimal trace from the product exploration")
			}
			if tc.traceLen >= 0 && len(res.Trace) != tc.traceLen {
				t.Errorf("trace length = %d, want %d\n%s", len(res.Trace), tc.traceLen, automata.FormatTrace(res.Trace))
			}
			stuck, err := sys.Replay(res.Trace)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if !stuck {
				t.Errorf("counterexample trace does not replay to a stuck state")
			}
			if got := procsOf(res.NeverFired); !equalProcs(got, tc.neverFired) {
				t.Errorf("NeverFired = %v, want %v", got, tc.neverFired)
			}
			if got := procsOf(res.Blocked); !equalProcs(got, tc.blocked) {
				t.Errorf("Blocked = %v, want %v", got, tc.blocked)
			}
			if dl != nil && dl.Order != res.StuckOrder {
				t.Errorf("emulator stalls at order %d, checker at order %d", dl.Order, res.StuckOrder)
			}
		})
	}
}

func procsOf(bs []automata.Blocked) []psdf.ProcessID {
	out := make([]psdf.ProcessID, len(bs))
	for i, b := range bs {
		out[i] = b.Proc
	}
	return out
}

func equalProcs(a, b []psdf.ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSymmetryReduction pins the inert-segment pruning: segments
// hosting only receivers contribute no product states.
func TestSymmetryReduction(t *testing.T) {
	m := model("chain",
		psdf.Flow{Source: 0, Target: 1, Items: 8, Order: 1, Ticks: 5},
		psdf.Flow{Source: 1, Target: 2, Items: 8, Order: 2, Ticks: 5},
	)
	sys, err := automata.Compile(m, plat([]psdf.ProcessID{0, 1}, []psdf.ProcessID{2}))
	if err != nil {
		t.Fatal(err)
	}
	if sys.PrunedSegments() != 1 {
		t.Errorf("PrunedSegments = %d, want 1 (the sink-only segment)", sys.PrunedSegments())
	}
	if sys.NumEmitters() != 2 {
		t.Errorf("NumEmitters = %d, want 2", sys.NumEmitters())
	}
}

// TestNilPlatform checks the bare-model fallback: one implicit
// segment, nominal (or unit) package size, same verdicts.
func TestNilPlatform(t *testing.T) {
	dead := model("cyclic",
		psdf.Flow{Source: 2, Target: 0, Items: 4, Order: 1, Ticks: 5},
		psdf.Flow{Source: 0, Target: 1, Items: 4, Order: 2, Ticks: 5},
		psdf.Flow{Source: 1, Target: 0, Items: 4, Order: 2, Ticks: 5},
	)
	sys, err := automata.Compile(dead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Check(automata.Options{}); res.Verdict != automata.Deadlocks {
		t.Errorf("bare-model verdict = %v, want deadlocks", res.Verdict)
	}

	ok := model("chain", psdf.Flow{Source: 0, Target: 1, Items: 4, Order: 1, Ticks: 5})
	sys, err = automata.Compile(ok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := sys.Check(automata.Options{}); res.Verdict != automata.Terminates {
		t.Errorf("bare-model verdict = %v, want terminates", res.Verdict)
	}
}

// TestInvalidModelRejected: Compile must refuse unvalidated inputs
// (the analyze glue depends on this to skip broken models silently).
func TestInvalidModelRejected(t *testing.T) {
	bad := model("bad", psdf.Flow{Source: 0, Target: 0, Items: 4, Order: 1, Ticks: 5})
	if _, err := automata.Compile(bad, nil); err == nil {
		t.Fatal("Compile accepted a self-loop model")
	}
}

// TestBudgetExhaustion: a tiny budget must yield Inconclusive, never
// a wrong verdict.
func TestBudgetExhaustion(t *testing.T) {
	m := model("chain", psdf.Flow{Source: 0, Target: 1, Items: 64, Order: 1, Ticks: 5})
	sys, err := automata.Compile(m, plat([]psdf.ProcessID{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Check(automata.Options{StateBudget: 3})
	if res.Verdict != automata.Inconclusive {
		t.Errorf("verdict = %v, want inconclusive at budget 3", res.Verdict)
	}
}

// TestProductMatchesReduced cross-checks the persistence reduction on
// the gallery shapes: the exhaustive product explorer and the greedy
// run must agree wherever both conclude.
func TestProductMatchesReduced(t *testing.T) {
	shapes := []*psdf.Model{
		model("a",
			psdf.Flow{Source: 2, Target: 0, Items: 8, Order: 1, Ticks: 5},
			psdf.Flow{Source: 0, Target: 1, Items: 8, Order: 2, Ticks: 5},
			psdf.Flow{Source: 1, Target: 0, Items: 8, Order: 2, Ticks: 5},
		),
		model("b",
			psdf.Flow{Source: 0, Target: 1, Items: 8, Order: 1, Ticks: 5},
			psdf.Flow{Source: 1, Target: 2, Items: 8, Order: 1, Ticks: 5},
			psdf.Flow{Source: 2, Target: psdf.SystemOutput, Items: 8, Order: 2, Ticks: 5},
		),
		model("c",
			psdf.Flow{Source: 2, Target: 0, Items: 4, Order: 1, Ticks: 5},
			psdf.Flow{Source: 0, Target: 1, Items: 8, Order: 1, Ticks: 5},
			psdf.Flow{Source: 1, Target: 0, Items: 4, Order: 1, Ticks: 5},
		),
	}
	for _, m := range shapes {
		sys, err := automata.Compile(m, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		terminated, exhausted, _ := sys.RunReduced(automata.DefaultStateBudget)
		verdict, states := sys.ExploreProduct(automata.DefaultStateBudget, 4)
		if exhausted || verdict == automata.Inconclusive {
			t.Fatalf("%s: unexpected budget exhaustion", m.Name())
		}
		if terminated != (verdict == automata.Terminates) {
			t.Errorf("%s: reduced terminated=%v, product verdict=%v (%d states)",
				m.Name(), terminated, verdict, states)
		}
		// Parallel and serial exploration must agree exactly.
		sv, ss := sys.ExploreProduct(automata.DefaultStateBudget, 1)
		if sv != verdict || ss != states {
			t.Errorf("%s: serial explore (%v, %d) != parallel (%v, %d)", m.Name(), sv, ss, verdict, states)
		}
	}
}
