package automata

import (
	"errors"
	"fmt"
	"sort"

	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// ErrTooLarge marks a model whose product encoding would overflow the
// compact state layout; exact analysis is skipped for it and callers
// fall back to heuristics.
var ErrTooLarge = errors.New("automata: model too large for exact analysis")

// Encoding capacity limits: counters are packed as uint16, so the
// package and stage counts must fit, with generous headroom below the
// representable maximum (a model near these limits exhausts any
// reasonable state budget long before the encoding matters).
const (
	maxPackages = 1 << 15
	maxStages   = 1 << 14
	maxProcs    = 1 << 12
)

// Compile builds the product system for model m mapped onto plat.
// Both inputs are validated first; a validation error is returned
// as-is, so callers can distinguish broken models (skip silently —
// the structural analyzers own those findings) from oversized ones
// (ErrTooLarge). plat may be nil to check a bare application model:
// every process then shares one implicit segment and the package
// size falls back to the model's nominal (or 1 when unset) —
// deadlock is a property of the firing gates, not of the platform
// timing, so the verdict is meaningful either way.
func Compile(m *psdf.Model, plat *platform.Platform) (*System, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	packageSize := 0
	if plat != nil {
		if err := plat.Validate(); err != nil {
			return nil, err
		}
		if err := plat.ValidateMapping(m); err != nil {
			return nil, err
		}
		if err := plat.ValidateRoles(m); err != nil {
			return nil, err
		}
		packageSize = plat.PackageSize
	} else {
		packageSize = m.NominalPackageSize()
		if packageSize <= 0 {
			packageSize = 1
		}
	}
	sch, err := sched.Extract(m, packageSize)
	if err != nil {
		return nil, err
	}
	if t := sch.TotalPackages(); t > maxPackages {
		return nil, fmt.Errorf("%w: %d packages (max %d)", ErrTooLarge, t, maxPackages)
	}
	if n := sch.NumStages(); n > maxStages {
		return nil, fmt.Errorf("%w: %d stages (max %d)", ErrTooLarge, n, maxStages)
	}
	procs := m.Processes()
	if len(procs) > maxProcs {
		return nil, fmt.Errorf("%w: %d processes (max %d)", ErrTooLarge, len(procs), maxProcs)
	}

	s := &System{
		sch:     sch,
		procs:   procs,
		procIdx: make(map[psdf.ProcessID]int, len(procs)),
		segOf:   make([]int, len(procs)),
	}
	for i, p := range procs {
		s.procIdx[p] = i
		if plat != nil {
			s.segOf[i] = plat.SegmentOf(p)
		} else {
			s.segOf[i] = 1
		}
	}

	// Emission programs, built exactly the way the emulator builds its
	// per-FU programs: the flows in canonical order, one entry per
	// package, gated by inputs-before-this-order plus the proportional
	// same-order share ceil(k·is/os).
	s.programs = make([][]Entry, len(procs))
	inBefore := func(p psdf.ProcessID, order int) int {
		n := 0
		for i, f := range sch.Flows() {
			if f.Target == p && f.Order < order {
				n += sch.Packages(sched.FlowID(i))
			}
		}
		return n
	}
	inSame := func(p psdf.ProcessID, order int) int {
		n := 0
		for i, f := range sch.Flows() {
			if f.Target == p && f.Order == order {
				n += sch.Packages(sched.FlowID(i))
			}
		}
		return n
	}
	outSame := make(map[psdf.ProcessID]map[int]int)
	for i, f := range sch.Flows() {
		if outSame[f.Source] == nil {
			outSame[f.Source] = make(map[int]int)
		}
		outSame[f.Source][f.Order] += sch.Packages(sched.FlowID(i))
	}
	kSame := make(map[psdf.ProcessID]map[int]int)
	for i, f := range sch.Flows() {
		pi, ok := s.procIdx[f.Source]
		if !ok {
			return nil, fmt.Errorf("automata: flow %v source not a model process", f)
		}
		if kSame[f.Source] == nil {
			kSame[f.Source] = make(map[int]int)
		}
		ib := inBefore(f.Source, f.Order)
		is := inSame(f.Source, f.Order)
		os := outSame[f.Source][f.Order]
		for pkg := 1; pkg <= sch.Packages(sched.FlowID(i)); pkg++ {
			kSame[f.Source][f.Order]++
			k := kSame[f.Source][f.Order]
			need := ib
			if is > 0 && os > 0 {
				need = ib + (k*is+os-1)/os
			}
			s.programs[pi] = append(s.programs[pi], Entry{Flow: sched.FlowID(i), Pkg: pkg, Need: need})
		}
	}
	for i := range procs {
		if len(s.programs[i]) > 0 {
			s.emitters = append(s.emitters, i)
		}
	}
	sort.Ints(s.emitters)

	s.numStages = sch.NumStages()
	s.stageTotal = make([]int, s.numStages)
	s.stageOfFlw = make([]int, sch.NumFlows())
	for si, st := range sch.Stages() {
		for _, id := range st.Flows {
			s.stageTotal[si] += sch.Packages(id)
			s.stageOfFlw[id] = si
		}
	}

	// Symmetry reduction: a segment hosting no emitter is inert — its
	// bus automaton never leaves its initial state — so it contributes
	// nothing to the product. The grant rule below only ever inspects
	// emitters, which prunes such segments implicitly; record how many
	// for the result's accounting.
	active := make(map[int]bool)
	for _, e := range s.emitters {
		active[s.segOf[e]] = true
	}
	if plat != nil {
		s.pruned = plat.NumSegments() - len(active)
	}
	return s, nil
}

// Program returns process p's emission program (nil for pure sinks).
// The slice must not be mutated.
func (s *System) Program(p psdf.ProcessID) []Entry {
	i, ok := s.procIdx[p]
	if !ok {
		return nil
	}
	return s.programs[i]
}
