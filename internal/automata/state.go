package automata

import "segbus/internal/psdf"

// Product-state byte layout. All counters are uint16 big-endian (the
// compile-time capacity guards keep them in range):
//
//	[0:2]                  current stage index (== numStages when done)
//	[2:4]                  packages left undelivered in the current stage
//	[4 : 4+2P]             per-process received-package counters
//	[4+2P : 4+2P+3E]       per-emitter {program counter u16, phase u8}
//
// The string conversion of this byte slice is the dedup hash key of
// the explorers. stage and left (and in fact the received counters)
// are functions of the emitter vector, so including them does not
// enlarge the reachable state count — it only makes decoding O(1).
const (
	offStage = 0
	offLeft  = 2
	offRecv  = 4
)

func getU16(st []byte, off int) int {
	return int(st[off])<<8 | int(st[off+1])
}

func setU16(st []byte, off, v int) {
	st[off] = byte(v >> 8)
	st[off+1] = byte(v)
}

func (s *System) stateLen() int {
	return offRecv + 2*len(s.procs) + 3*len(s.emitters)
}

func (s *System) emitterOff(ei int) int {
	return offRecv + 2*len(s.procs) + 3*ei
}

func (s *System) stage(st []byte) int { return getU16(st, offStage) }
func (s *System) left(st []byte) int  { return getU16(st, offLeft) }
func (s *System) received(st []byte, procIdx int) int {
	return getU16(st, offRecv+2*procIdx)
}
func (s *System) pc(st []byte, ei int) int { return getU16(st, s.emitterOff(ei)) }
func (s *System) phase(st []byte, ei int) Phase {
	return Phase(st[s.emitterOff(ei)+2])
}

// done reports whether every stage has completed in st.
func (s *System) done(st []byte) bool { return s.stage(st) >= s.numStages }

// initial returns the product's initial state: stage zero armed, all
// counters zero, every emitter Waiting at program entry zero.
func (s *System) initial() []byte {
	st := make([]byte, s.stateLen())
	if s.numStages > 0 {
		setU16(st, offLeft, s.stageTotal[0])
	}
	return st
}

// segBusy reports whether an emitter other than ei is Transferring on
// segment seg — the bus-automaton synchronisation of the grant
// action.
func (s *System) segBusy(st []byte, seg, ei int) bool {
	for j, pj := range s.emitters {
		if j == ei {
			continue
		}
		if s.segOf[pj] == seg && s.phase(st, j) == Transferring {
			return true
		}
	}
	return false
}

// action builds the trace action for emitter ei taking kind on the
// program entry e.
func (s *System) action(kind ActionKind, ei int, e Entry) Action {
	pi := s.emitters[ei]
	return Action{
		Kind: kind,
		Proc: s.procs[pi],
		Flow: s.sch.Flow(e.Flow),
		Pkg:  e.Pkg,
		Pkgs: s.sch.Packages(e.Flow),
		Seg:  s.segOf[pi],
	}
}

// enabled reports whether emitter ei has its (unique) next transition
// enabled in st, without materialising the successor.
func (s *System) enabled(st []byte, ei int) bool {
	pi := s.emitters[ei]
	pc := s.pc(st, ei)
	if pc >= len(s.programs[pi]) {
		return false
	}
	switch s.phase(st, ei) {
	case Waiting:
		e := s.programs[pi][pc]
		return !s.done(st) &&
			s.stageOfFlw[e.Flow] == s.stage(st) &&
			s.received(st, pi) >= e.Need
	case RequestingBus:
		return !s.segBusy(st, s.segOf[pi], ei)
	default: // Computing, Transferring: always enabled
		return true
	}
}

// step applies emitter ei's next transition to a copy of st and
// returns the action and successor. It must only be called when
// enabled(st, ei) holds.
func (s *System) step(st []byte, ei int) (Action, []byte) {
	pi := s.emitters[ei]
	pc := s.pc(st, ei)
	e := s.programs[pi][pc]
	ns := make([]byte, len(st))
	copy(ns, st)
	off := s.emitterOff(ei)
	switch s.phase(st, ei) {
	case Waiting:
		ns[off+2] = byte(Computing)
		return s.action(ActStart, ei, e), ns
	case Computing:
		ns[off+2] = byte(RequestingBus)
		return s.action(ActRequest, ei, e), ns
	case RequestingBus:
		ns[off+2] = byte(Transferring)
		return s.action(ActGrant, ei, e), ns
	}
	// Transferring: deliver the package, advance the program, bump
	// the receiver and the stage accounting.
	setU16(ns, off, pc+1)
	ns[off+2] = byte(Waiting)
	f := s.sch.Flow(e.Flow)
	if f.Target != psdf.SystemOutput {
		ti := s.procIdx[f.Target]
		setU16(ns, offRecv+2*ti, s.received(st, ti)+1)
	}
	left := s.left(st) - 1
	if left == 0 {
		stage := s.stage(st) + 1
		setU16(ns, offStage, stage)
		if stage < s.numStages {
			left = s.stageTotal[stage]
		}
	}
	setU16(ns, offLeft, left)
	return s.action(ActDeliver, ei, e), ns
}

// succ enumerates the successors of st in the fixed deterministic
// order (ascending emitter index) and returns how many transitions
// were enabled. A state with zero successors is either done (every
// stage complete) or stuck — a reachable deadlock.
func (s *System) succ(st []byte, yield func(a Action, ns []byte)) int {
	n := 0
	for ei := range s.emitters {
		if !s.enabled(st, ei) {
			continue
		}
		n++
		if yield != nil {
			a, ns := s.step(st, ei)
			yield(a, ns)
		}
	}
	return n
}
