package automata

import (
	"bytes"
	"fmt"
)

// Check decides, exactly, whether the compiled product can deadlock.
//
// The reduced (greedy maximal) run delivers the verdict: by the
// persistence argument in runReduced's comment it terminates if and
// only if every run does. When it sticks, the breadth-first product
// exploration is launched to find a shortest action trace into the
// stuck configuration; if that search exhausts the state budget the
// reduced run's own trace is kept (Minimal=false). A reduced run that
// exhausts the budget — possible only for models near the encoding
// limits — yields Inconclusive, and callers fall back to heuristics.
func (s *System) Check(opts Options) *Result {
	budget := opts.StateBudget
	if budget <= 0 {
		budget = DefaultStateBudget
	}
	res := &Result{Budget: budget, PrunedSegments: s.pruned}

	red := s.runReduced(budget)
	res.States = red.steps + 1
	switch {
	case red.exhausted:
		res.Verdict = Inconclusive
		return res
	case red.terminated:
		res.Verdict = Terminates
		return res
	}

	res.Verdict = Deadlocks
	res.Trace = red.trace
	res.NeverFired = s.neverFired(red.final)
	s.fillStuck(res, red.final)

	if prod := s.exploreProduct(budget, opts.Workers); prod.verdict == Deadlocks {
		res.Trace = prod.trace
		res.Minimal = true
		res.States += prod.states
		s.fillStuck(res, prod.stuck)
	} else {
		res.States += prod.states
	}
	return res
}

// fillStuck records the stuck-state detail — the stalled stage and
// the emitters blocked in it — mirroring the emulator's deadlock
// report so the two diagnose identically.
func (s *System) fillStuck(res *Result, st []byte) {
	stage := s.stage(st)
	res.StuckStage = stage
	res.StuckOrder = s.sch.Stages()[stage].Order
	res.Undelivered = s.left(st)
	res.Blocked = nil
	for ei, pi := range s.emitters {
		pc := s.pc(st, ei)
		if pc >= len(s.programs[pi]) || s.phase(st, ei) != Waiting {
			continue
		}
		e := s.programs[pi][pc]
		if s.stageOfFlw[e.Flow] != stage {
			continue
		}
		res.Blocked = append(res.Blocked, Blocked{
			Proc: s.procs[pi],
			Flow: s.sch.Flow(e.Flow),
			Pkg:  e.Pkg,
			Need: e.Need,
			Have: s.received(st, pi),
		})
	}
}

// neverFired lists the emitters still at program entry zero in the
// maximal run's final state: the gates are monotone, so a process
// that never started its first emission there can never fire in any
// run.
func (s *System) neverFired(final []byte) []Blocked {
	var out []Blocked
	for ei, pi := range s.emitters {
		if s.pc(final, ei) != 0 || s.phase(final, ei) != Waiting {
			continue
		}
		e := s.programs[pi][0]
		out = append(out, Blocked{
			Proc: s.procs[pi],
			Flow: s.sch.Flow(e.Flow),
			Pkg:  e.Pkg,
			Need: e.Need,
			Have: s.received(final, pi),
		})
	}
	return out
}

// Replay applies a counterexample trace to the initial state,
// checking every action is the enabled transition it claims to be,
// and reports whether the final state is stuck (no transition
// enabled, stages incomplete). It validates exported traces: a
// Deadlocks result's trace must replay to stuck == true.
func (s *System) Replay(trace []Action) (stuck bool, err error) {
	st := s.initial()
	for i, a := range trace {
		fired := false
		for ei, pi := range s.emitters {
			if s.procs[pi] != a.Proc || !s.enabled(st, ei) {
				continue
			}
			got, ns := s.step(st, ei)
			if got != a {
				return false, fmt.Errorf("automata: replay step %d: %s's enabled transition is %q, trace says %q", i, a.Proc, got, a)
			}
			st = ns
			fired = true
			break
		}
		if !fired {
			return false, fmt.Errorf("automata: replay step %d: no enabled transition for %s (%q)", i, a.Proc, a)
		}
	}
	return s.succ(st, nil) == 0 && !s.done(st), nil
}

// FormatTrace renders a trace as numbered lines, one action each,
// the way segbus-vet -why prints counterexamples.
func FormatTrace(trace []Action) string {
	var b bytes.Buffer
	for i, a := range trace {
		fmt.Fprintf(&b, "%4d. %s\n", i+1, a)
	}
	return b.String()
}
