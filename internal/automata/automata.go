// Package automata compiles a PSDF application model plus its
// platform mapping into a composition of communicating finite
// automata and decides schedule liveness by exact reachability over
// their product — the "compositional model semantics" step of the
// roadmap: liveness becomes a decidable question with counterexample
// traces instead of a lint guess.
//
// # Automata encoding
//
// Every emitting process (a functional-unit master) is one automaton
// cycling through four phases per emission program entry:
//
//	Waiting ──start──▶ Computing ──request──▶ RequestingBus
//	   ▲                                           │ grant
//	   └───────────── deliver ◀── Transferring ◀───┘
//
// The emission program is the same one the emulator builds: the
// model's flows in canonical order, one entry per package, each gated
// by the proportional packet-SDF firing rule (a package may start
// only when its stage is active and the process has received `need`
// input packages). Per-segment bus automata synchronise on the grant
// action — at most one master per segment holds the bus between its
// grant and its delivery — and deliveries synchronise the sender's
// automaton with the receiver's package counter and with the global
// stage automaton, which advances when a stage's package count
// reaches zero.
//
// A product state is therefore (stage, packages left in stage,
// per-process received counters, per-emitter program counter and
// phase), packed into a compact byte string whose hash deduplicates
// visited states.
//
// # Exact exploration
//
// Two explorers run over the product:
//
//   - a reduced run: bus arbitration order and border-unit buffering
//     only affect timing, never progress — the firing gates are
//     monotone in the delivered-package counts, so the system is
//     persistent and every maximal run delivers the same package set
//     (a Kahn least fixpoint). One greedy maximal run therefore
//     decides deadlock-versus-termination exactly, in time linear in
//     the package count;
//   - a breadth-first product exploration: an iterative worklist with
//     hashed state deduplication and a configurable state budget,
//     used to find a shortest action trace into the stuck
//     configuration and as the ground truth the reduced run is
//     cross-checked against (see FuzzProduct). Frontier levels are
//     expanded by parallel workers with a deterministic in-order
//     merge, so the reported trace never depends on scheduling.
//
// Segments hosting no emitting process are inert — their bus
// automaton has a single state — and are pruned from the product
// before exploration (the symmetry reduction for identical idle
// segments; the count of pruned segments is reported in Result).
package automata

import (
	"fmt"

	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// Phase is the control location of one emitter automaton.
type Phase uint8

// Emitter phases, in the order they cycle.
const (
	Waiting       Phase = iota // gated on stage activation and received inputs
	Computing                  // processing the package (C ticks in the emulator)
	RequestingBus              // compute done, bus request raised at the SA
	Transferring               // bus granted, package in flight to its target
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Waiting:
		return "waiting-on-flow"
	case Computing:
		return "computing"
	case RequestingBus:
		return "requesting-bus"
	case Transferring:
		return "transferring"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// ActionKind labels one product transition.
type ActionKind uint8

// Product actions.
const (
	ActStart   ActionKind = iota // Waiting -> Computing (firing gate satisfied)
	ActRequest                   // Computing -> RequestingBus (compute done)
	ActGrant                     // RequestingBus -> Transferring (SA grant)
	ActDeliver                   // Transferring -> Waiting (package delivered)
)

// Action is one step of a counterexample trace: a transition of one
// emitter automaton, synchronised with the bus and stage automata as
// described in the package comment. It is self-contained so traces
// render without the System that produced them.
type Action struct {
	Kind ActionKind
	Proc psdf.ProcessID // the emitting process
	Flow psdf.Flow      // the flow the package belongs to
	Pkg  int            // 1-based package index within the flow
	Pkgs int            // total packages of the flow
	Seg  int            // the emitter's segment (1-based)
}

// String renders the action as one human-readable trace line.
func (a Action) String() string {
	switch a.Kind {
	case ActStart:
		return fmt.Sprintf("%s starts computing package %d/%d of %s->%s (order %d)",
			a.Proc, a.Pkg, a.Pkgs, a.Flow.Source, a.Flow.Target, a.Flow.Order)
	case ActRequest:
		return fmt.Sprintf("%s finishes package %d/%d of %s->%s and requests the segment %d bus",
			a.Proc, a.Pkg, a.Pkgs, a.Flow.Source, a.Flow.Target, a.Seg)
	case ActGrant:
		return fmt.Sprintf("SA%d grants the segment %d bus to %s", a.Seg, a.Seg, a.Proc)
	case ActDeliver:
		return fmt.Sprintf("%s delivers package %d/%d of %s->%s", a.Proc, a.Pkg, a.Pkgs, a.Flow.Source, a.Flow.Target)
	}
	return fmt.Sprintf("Action(%d)", int(a.Kind))
}

// Verdict is the outcome of an exact reachability check.
type Verdict int

// Check outcomes.
const (
	// Terminates: every maximal run of the product delivers all
	// packages; no deadlock state is reachable.
	Terminates Verdict = iota

	// Deadlocks: a stuck state — no transition enabled, packages
	// undelivered — is reachable. Result.Trace leads into it.
	Deadlocks

	// Inconclusive: the state budget was exhausted before a verdict;
	// callers should fall back to heuristic analysis.
	Inconclusive
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Terminates:
		return "terminates"
	case Deadlocks:
		return "deadlocks"
	case Inconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Blocked describes one emitter that cannot make progress in the
// stuck configuration: its next program entry and the firing-gate
// arithmetic that keeps it waiting.
type Blocked struct {
	Proc psdf.ProcessID
	Flow psdf.Flow // flow of the blocked program entry
	Pkg  int       // 1-based package index of the blocked entry
	Need int       // input packages required by the firing gate
	Have int       // input packages actually received
}

// DefaultStateBudget is the product-state budget of a Check when
// Options.StateBudget is zero: large enough for every model the
// conform generator emits, small enough to stay interactive.
const DefaultStateBudget = 1 << 17

// Options tunes an exact reachability check.
type Options struct {
	// StateBudget caps the number of distinct product states visited
	// across both explorers; zero selects DefaultStateBudget. When
	// the budget is exhausted the verdict is Inconclusive.
	StateBudget int

	// Workers is the parallelism of the breadth-first explorer's
	// frontier expansion; zero selects min(GOMAXPROCS, 8), one runs
	// serially. Results are identical for any worker count.
	Workers int
}

// Result is the outcome of an exact reachability check.
type Result struct {
	Verdict Verdict

	// States is the number of distinct product states visited across
	// the reduced run and the breadth-first exploration; Budget is
	// the cap that applied.
	States int
	Budget int

	// Trace is the action sequence from the initial state into a
	// stuck state (Deadlocks only). Minimal marks a shortest trace
	// found by the exhaustive product exploration; when the budget
	// ran out mid-search the trace of the reduced maximal run is kept
	// and Minimal is false.
	Trace   []Action
	Minimal bool

	// Stuck-state detail (Deadlocks only): the stage the schedule
	// stalls in and the emitters blocked there.
	StuckStage  int
	StuckOrder  int
	Undelivered int
	Blocked     []Blocked

	// NeverFired lists emitters that cannot start even their first
	// emission in any run (the gates are monotone, so a process that
	// never fires in the maximal run never fires at all). Each entry
	// carries the first program entry's gate arithmetic.
	NeverFired []Blocked

	// PrunedSegments counts the inert segments removed from the
	// product by the symmetry reduction (segments hosting no
	// emitting process).
	PrunedSegments int
}

// TraceStrings renders the counterexample trace one line per action.
func (r *Result) TraceStrings() []string {
	if len(r.Trace) == 0 {
		return nil
	}
	out := make([]string, len(r.Trace))
	for i, a := range r.Trace {
		out[i] = a.String()
	}
	return out
}

// Entry is one package emission of an emitter's program, mirroring
// the emulator's per-FU program construction.
type Entry struct {
	Flow sched.FlowID
	Pkg  int // 1-based package index within the flow
	Need int // input packages the firing gate requires first
}

// System is a compiled product: the per-process automata programs,
// the segment mapping and the stage structure, ready for
// exploration. Compile builds one; a System is immutable and safe
// for concurrent use.
type System struct {
	sch        *sched.Schedule
	procs      []psdf.ProcessID // ascending; index is the state slot
	procIdx    map[psdf.ProcessID]int
	segOf      []int // per proc index, 1-based hosting segment
	programs   [][]Entry
	emitters   []int // proc indices with non-empty programs, ascending
	numStages  int
	stageTotal []int // packages per stage
	stageOfFlw []int // per FlowID, its stage index (precomputed StageOf)
	pruned     int   // inert segments removed by the symmetry reduction
}

// NumEmitters returns the number of non-trivial process automata in
// the product.
func (s *System) NumEmitters() int { return len(s.emitters) }

// PrunedSegments returns the number of inert segments the symmetry
// reduction removed from the product.
func (s *System) PrunedSegments() int { return s.pruned }

// Schedule returns the extracted schedule the system was compiled
// against.
func (s *System) Schedule() *sched.Schedule { return s.sch }
