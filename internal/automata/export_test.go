package automata

// ExploreProduct exposes the breadth-first product explorer to the
// external test package, so the reduced run's verdict can be
// cross-checked against the exhaustive ground truth.
func (s *System) ExploreProduct(budget, workers int) (Verdict, int) {
	p := s.exploreProduct(budget, workers)
	return p.verdict, p.states
}

// RunReduced exposes the greedy maximal run's raw outcome.
func (s *System) RunReduced(budget int) (terminated, exhausted bool, steps int) {
	out := s.runReduced(budget)
	return out.terminated, out.exhausted, out.steps
}
