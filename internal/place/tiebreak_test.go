package place

// Regression coverage for the solver's documented deterministic
// order: lower Score first, ties broken towards the lexicographically
// smallest canonical assignment vector. The explorer enumerates
// mappings through Solve, so any tie-induced drift here would leak
// into its "byte-identical across worker counts" guarantee.

import (
	"math/rand"
	"reflect"
	"testing"

	"segbus/internal/psdf"
)

func TestBetterOrder(t *testing.T) {
	cm := psdf.NewCommMatrix(4)
	// Uniform all-to-all traffic: every balanced 2+2 split scores the
	// same, so comparisons exercise the tie-break path.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				cm.Set(psdf.ProcessID(i), psdf.ProcessID(j), 10)
			}
		}
	}
	procs := activeProcesses(cm)
	alloc := func(v ...int) Allocation {
		a := Allocation{Segments: 2, Of: make(map[psdf.ProcessID]int)}
		for i, s := range v {
			a.Of[procs[i]] = s
		}
		return a
	}
	a0011 := alloc(0, 0, 1, 1)
	a0101 := alloc(0, 1, 0, 1)
	if Score(cm, a0011) != Score(cm, a0101) {
		t.Fatal("test premise broken: balanced splits should tie on score")
	}
	if !better(cm, procs, a0011, a0101) {
		t.Error("[0 0 1 1] must beat [0 1 0 1] on the tie-break")
	}
	if better(cm, procs, a0101, a0011) {
		t.Error("tie-break order is not antisymmetric")
	}
	if better(cm, procs, a0011, a0011) {
		t.Error("an allocation beats itself; order is not strict")
	}
	// A strictly better score wins even against a lexicographically
	// smaller vector: make the heavy pair 0↔2, so keeping it local
	// means the lex-larger vector [0 1 0 1].
	skew := psdf.NewCommMatrix(4)
	skew.Set(0, 2, 100)
	skew.Set(2, 0, 100)
	skew.Set(1, 3, 1)
	skew.Set(3, 1, 1)
	together := alloc(0, 1, 0, 1)  // heavy 0↔2 pair local, lex-larger
	separated := alloc(0, 0, 1, 1) // splits it, lex-smaller
	if Score(skew, together) >= Score(skew, separated) {
		t.Fatal("test premise broken: separating the heavy pair should score worse")
	}
	if !better(skew, procs, together, separated) {
		t.Error("lower score lost the race to a lex-smaller vector")
	}
	if better(skew, procs, separated, together) {
		t.Error("higher score won the race on its lex-smaller vector")
	}
}

// TestExhaustiveTieBreakCanonical pins the exhaustive path: among all
// optimal assignments it returns the lexicographically smallest
// vector, verified against an in-test brute force.
func TestExhaustiveTieBreakCanonical(t *testing.T) {
	cm := psdf.NewCommMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				cm.Set(psdf.ProcessID(i), psdf.ProcessID(j), 7)
			}
		}
	}
	a, err := Solve(cm, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	procs := activeProcesses(cm)

	// Brute force: every assignment with v[0]=0 (the solver's mirror
	// symmetry pin), both segments populated.
	bestScore := int64(-1)
	var bestVec []int
	var walk func(i int, v []int)
	walk = func(i int, v []int) {
		if i == len(procs) {
			seen := [2]bool{}
			for _, s := range v {
				seen[s] = true
			}
			if !seen[0] || !seen[1] {
				return
			}
			b := Allocation{Segments: 2, Of: make(map[psdf.ProcessID]int)}
			for k, p := range procs {
				b.Of[p] = v[k]
			}
			if sc := Score(cm, b); bestScore < 0 || sc < bestScore {
				bestScore = sc
				bestVec = append([]int(nil), v...)
			}
			return
		}
		hi := 2
		if i == 0 {
			hi = 1
		}
		for s := 0; s < hi; s++ {
			v[i] = s
			walk(i+1, v)
		}
	}
	walk(0, make([]int, len(procs)))

	if got := canonicalVector(procs, a); !reflect.DeepEqual(got, bestVec) {
		t.Errorf("Solve returned vector %v, want lexicographically-smallest optimum %v", got, bestVec)
	}
	if Score(cm, a) != bestScore {
		t.Errorf("Solve score %d, brute-force optimum %d", Score(cm, a), bestScore)
	}
}

// TestSolveHeuristicDeterministic hammers the heuristic path (above
// MaxExhaustive) with repeated solves of tie-rich inputs: symmetric
// block-structured traffic where many distinct placements share a
// score. Every repetition must return the identical allocation.
func TestSolveHeuristicDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		n := 12 + trial
		cm := psdf.NewCommMatrix(n)
		// Symmetric clusters of 3 with uniform intra-cluster weight and
		// a lighter uniform inter-cluster mesh — score ties abound.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				w := 2
				if i/3 == j/3 {
					w = 20
				}
				cm.Set(psdf.ProcessID(i), psdf.ProcessID(j), w)
			}
		}
		segments := 2 + rng.Intn(3)
		first, err := Solve(cm, segments, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 10; rep++ {
			again, err := Solve(cm, segments, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.Of, again.Of) {
				t.Fatalf("trial %d rep %d: Solve drifted:\n%v\nvs\n%v", trial, rep, first.Of, again.Of)
			}
		}
	}
}
