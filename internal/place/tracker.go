package place

import (
	"segbus/internal/psdf"
)

// loadTracker maintains the per-segment bus loads of an allocation
// incrementally, so the local search can evaluate relocations and
// swaps in O(degree × segments) instead of recomputing the full
// O(n² × segments) objective per move. Score(cm, a) remains the pure
// specification; the tracker is property-tested against it.
type loadTracker struct {
	cm    *psdf.CommMatrix
	a     *Allocation
	loads []int64
	// neighbours[p] lists (q, out, in) with out = items p sends to q
	// and in = items p receives from q, for q != p with any traffic.
	neighbours map[psdf.ProcessID][]neighbour
}

type neighbour struct {
	q       psdf.ProcessID
	out, in int
}

// newLoadTracker builds the tracker for the current allocation.
func newLoadTracker(cm *psdf.CommMatrix, a *Allocation) *loadTracker {
	t := &loadTracker{
		cm:         cm,
		a:          a,
		loads:      BusLoads(cm, *a),
		neighbours: make(map[psdf.ProcessID][]neighbour),
	}
	n := cm.Size()
	for i := 0; i < n; i++ {
		p := psdf.ProcessID(i)
		if _, placed := a.Of[p]; !placed {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			q := psdf.ProcessID(j)
			if _, placed := a.Of[q]; !placed {
				continue
			}
			out := cm.At(p, q)
			in := cm.At(q, p)
			if out != 0 || in != 0 {
				t.neighbours[p] = append(t.neighbours[p], neighbour{q: q, out: out, in: in})
			}
		}
	}
	return t
}

// score returns the current objective value.
func (t *loadTracker) score() int64 {
	var s int64
	for _, l := range t.loads {
		s += l * l
	}
	return s
}

// applyRoute adds sign × items to every segment on the inclusive
// route [min(a,b), max(a,b)].
func (t *loadTracker) applyRoute(a, b int, items int, sign int64) {
	if items == 0 {
		return
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	for s := lo; s <= hi; s++ {
		t.loads[s] += sign * int64(items)
	}
}

// move relocates process p to segment to, updating the loads and the
// allocation. Self-loops in the matrix are ignored (the model forbids
// them anyway).
func (t *loadTracker) move(p psdf.ProcessID, to int) {
	from := t.a.Of[p]
	if from == to {
		return
	}
	for _, nb := range t.neighbours[p] {
		sq := t.a.Of[nb.q]
		t.applyRoute(from, sq, nb.out+nb.in, -1)
		t.applyRoute(to, sq, nb.out+nb.in, +1)
	}
	t.a.Of[p] = to
}

// swap exchanges the segments of p and q.
func (t *loadTracker) swap(p, q psdf.ProcessID) {
	sp, sq := t.a.Of[p], t.a.Of[q]
	if sp == sq {
		return
	}
	// Move p out of the way first, then q, then p into place; the
	// pairwise p<->q traffic is handled correctly because move always
	// reads the *current* position of the neighbour.
	t.move(p, sq)
	t.move(q, sp)
}
