// Package place is the PlaceTool substitute of the tool-chain: given
// an application's communication matrix and a segment count, it finds
// a device allocation for the linear SegBus topology (section 3.5 of
// the paper; the original tool is the paper's reference [16],
// "Improving the Performance of Bus Platforms by Means of Segmentation
// and Optimized Resource Allocation").
//
// The objective (Score) is the sum of squared per-segment bus loads:
// an intra-segment data item occupies one bus, an inter-segment item
// occupies every bus on its route, and squaring drives the optimizer
// towards balanced segments — segmentation only pays off when local
// traffic proceeds in parallel. The hop-weighted inter-segment traffic
// (Cost) is reported as a secondary metric. Small instances are solved
// exactly by exhaustive enumeration; larger ones by local search
// (relocations and pairwise swaps to a fixed point) from two seeds, a
// traffic-greedy construction and a balanced round-robin deal.
package place

import (
	"fmt"
	"math/rand"
	"sort"

	"segbus/internal/psdf"
)

// Allocation maps each process to a segment index in [0, Segments).
// Segment indices here are zero-based; platform construction shifts
// them to the platform's 1-based convention.
type Allocation struct {
	Segments int
	Of       map[psdf.ProcessID]int
}

// Clone returns a deep copy of the allocation.
func (a Allocation) Clone() Allocation {
	c := Allocation{Segments: a.Segments, Of: make(map[psdf.ProcessID]int, len(a.Of))}
	for p, s := range a.Of {
		c.Of[p] = s
	}
	return c
}

// Valid reports whether every process maps into range and every
// segment hosts at least one process.
func (a Allocation) Valid() bool {
	if a.Segments < 1 {
		return false
	}
	used := make([]bool, a.Segments)
	for _, s := range a.Of {
		if s < 0 || s >= a.Segments {
			return false
		}
		used[s] = true
	}
	for _, u := range used {
		if !u {
			return false
		}
	}
	return len(used) > 0 && len(a.Of) >= a.Segments
}

// ProcessesOn returns the processes mapped to segment s, ascending.
func (a Allocation) ProcessesOn(s int) []psdf.ProcessID {
	var out []psdf.ProcessID
	for p, seg := range a.Of {
		if seg == s {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the allocation Figure 9 style: processes per segment
// separated by "||".
func (a Allocation) String() string {
	s := ""
	for seg := 0; seg < a.Segments; seg++ {
		if seg > 0 {
			s += " || "
		}
		for i, p := range a.ProcessesOn(seg) {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("%d", int(p))
		}
	}
	return s
}

// BusLoads returns the per-segment bus occupancy of the allocation in
// data items: an intra-segment item occupies its own segment's bus
// once, while an inter-segment item occupies the bus of every segment
// on its route (fill on the source, one forward per transit segment,
// delivery on the destination).
func BusLoads(cm *psdf.CommMatrix, a Allocation) []int64 {
	loads := make([]int64, a.Segments)
	n := cm.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := cm.At(psdf.ProcessID(i), psdf.ProcessID(j))
			if v == 0 {
				continue
			}
			si, oki := a.Of[psdf.ProcessID(i)]
			sj, okj := a.Of[psdf.ProcessID(j)]
			if !oki || !okj {
				continue
			}
			lo, hi := si, sj
			if lo > hi {
				lo, hi = hi, lo
			}
			for s := lo; s <= hi; s++ {
				loads[s] += int64(v)
			}
		}
	}
	return loads
}

// Score is the optimizer's objective: the sum of squared per-segment
// bus loads. Squaring pushes towards balanced segments (the point of
// segmenting the bus is parallel local traffic) while still penalising
// inter-segment transfers, which occupy every bus along their route.
// Lower is better.
func Score(cm *psdf.CommMatrix, a Allocation) int64 {
	var score int64
	for _, l := range BusLoads(cm, a) {
		score += l * l
	}
	return score
}

// Cost returns the hop-weighted inter-segment traffic of the
// allocation: for every matrix entry, items × |seg(src) − seg(dst)|
// (the number of border units the data crosses on the linear
// topology). It is the secondary quality metric reported alongside
// Score.
func Cost(cm *psdf.CommMatrix, a Allocation) int64 {
	var cost int64
	n := cm.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := cm.At(psdf.ProcessID(i), psdf.ProcessID(j))
			if v == 0 {
				continue
			}
			si, oki := a.Of[psdf.ProcessID(i)]
			sj, okj := a.Of[psdf.ProcessID(j)]
			if !oki || !okj {
				continue
			}
			d := si - sj
			if d < 0 {
				d = -d
			}
			cost += int64(v) * int64(d)
		}
	}
	return cost
}

// Options tunes the optimizer.
type Options struct {
	// MaxExhaustive is the largest number of processes solved by
	// exhaustive enumeration (the search space is segments^processes,
	// cut by symmetry). Above it the greedy + local-search heuristic
	// runs. Zero selects a default of 10.
	MaxExhaustive int

	// MaxLoad caps the number of processes per segment; zero means
	// no cap beyond "every segment non-empty".
	MaxLoad int

	// Pinned fixes processes to segments before optimization: the
	// solver places only the remaining processes. Pins to
	// out-of-range segments are rejected by Solve.
	Pinned map[psdf.ProcessID]int
}

// Solve finds a low-cost allocation of the matrix's communicating
// processes onto the given number of segments. Only processes that
// send or receive at least one data item are placed; fully silent
// process slots in the matrix are ignored.
func Solve(cm *psdf.CommMatrix, segments int, opts Options) (Allocation, error) {
	if segments < 1 {
		return Allocation{}, fmt.Errorf("place: need at least one segment, got %d", segments)
	}
	procs := activeProcesses(cm)
	if len(procs) == 0 {
		return Allocation{}, fmt.Errorf("place: communication matrix has no traffic")
	}
	if len(procs) < segments {
		return Allocation{}, fmt.Errorf("place: %d processes cannot populate %d segments", len(procs), segments)
	}
	if opts.MaxExhaustive == 0 {
		opts.MaxExhaustive = 10
	}
	if opts.MaxLoad > 0 && opts.MaxLoad*segments < len(procs) {
		return Allocation{}, fmt.Errorf("place: load cap %d too small for %d processes on %d segments",
			opts.MaxLoad, len(procs), segments)
	}
	for p, s := range opts.Pinned {
		if s < 0 || s >= segments {
			return Allocation{}, fmt.Errorf("place: %s pinned to segment %d, out of range [0,%d)", p, s, segments)
		}
	}
	if segments == 1 {
		a := Allocation{Segments: 1, Of: make(map[psdf.ProcessID]int)}
		for _, p := range procs {
			a.Of[p] = 0
		}
		return a, nil
	}
	if len(procs) <= opts.MaxExhaustive {
		return exhaustive(cm, procs, segments, opts), nil
	}
	// Heuristic path: local search from several seeds — the
	// traffic-greedy construction, the balanced round-robin deal, and
	// a handful of deterministic pseudo-random restarts — keeping the
	// best fixed point. The restart PRNG is fixed-seeded and the race
	// winner is picked by the documented deterministic order (see
	// better), so Solve is a pure function of its inputs: equal-score
	// fixed points can never make the result drift across runs, Go
	// versions or map-iteration orders, which the design-space
	// explorer's byte-stable output depends on.
	a := greedy(cm, procs, segments, opts)
	localSearch(cm, &a, opts)
	// The round-robin seed ignores pins, so it only enters the race
	// when no process is pinned.
	if len(opts.Pinned) == 0 {
		if rr, err := RoundRobin(cm, segments); err == nil {
			localSearch(cm, &rr, opts)
			if better(cm, procs, rr, a) {
				a = rr
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	for restart := 0; restart < 8; restart++ {
		r := randomAllocation(rng, procs, segments, opts)
		if !r.Valid() {
			continue
		}
		localSearch(cm, &r, opts)
		if better(cm, procs, r, a) {
			a = r
		}
	}
	return a, nil
}

// canonicalVector renders an allocation as its assignment vector over
// the ascending active process ids — the tie-break key of the solver:
// two allocations compare by their vectors exactly when their scores
// are equal.
func canonicalVector(procs []psdf.ProcessID, a Allocation) []int {
	v := make([]int, len(procs))
	for i, p := range procs {
		v[i] = a.Of[p]
	}
	return v
}

// better reports whether a beats b under the solver's documented
// deterministic total order: strictly lower Score wins; equal scores
// break towards the lexicographically smaller canonical assignment
// vector (matching the exhaustive path's first-found-is-smallest
// enumeration order). procs must be the ascending active process ids
// both allocations were built over.
func better(cm *psdf.CommMatrix, procs []psdf.ProcessID, a, b Allocation) bool {
	sa, sb := Score(cm, a), Score(cm, b)
	if sa != sb {
		return sa < sb
	}
	va, vb := canonicalVector(procs, a), canonicalVector(procs, b)
	for i := range va {
		if va[i] != vb[i] {
			return va[i] < vb[i]
		}
	}
	return false
}

// randomAllocation deals processes to segments uniformly, guaranteeing
// every segment at least one process and honouring the load cap.
func randomAllocation(rng *rand.Rand, procs []psdf.ProcessID, segments int, opts Options) Allocation {
	a := Allocation{Segments: segments, Of: make(map[psdf.ProcessID]int, len(procs))}
	counts := make([]int, segments)
	var free []psdf.ProcessID
	for _, p := range procs {
		if pin, ok := opts.Pinned[p]; ok {
			a.Of[p] = pin
			counts[pin]++
		} else {
			free = append(free, p)
		}
	}
	perm := rng.Perm(len(free))
	// Seed the still-empty segments first.
	next := 0
	for s := 0; s < segments && next < len(perm); s++ {
		if counts[s] > 0 {
			continue
		}
		a.Of[free[perm[next]]] = s
		counts[s]++
		next++
	}
	for _, pi := range perm[next:] {
		for {
			s := rng.Intn(segments)
			if opts.MaxLoad > 0 && counts[s] >= opts.MaxLoad {
				continue
			}
			a.Of[free[pi]] = s
			counts[s]++
			break
		}
	}
	return a
}

// activeProcesses returns the process ids with any traffic, ascending.
func activeProcesses(cm *psdf.CommMatrix) []psdf.ProcessID {
	var out []psdf.ProcessID
	for i := 0; i < cm.Size(); i++ {
		p := psdf.ProcessID(i)
		if cm.RowSum(p) > 0 || cm.ColSum(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// exhaustive enumerates every assignment (with the first process
// pinned to segment 0 — reversal symmetry of the linear topology) and
// returns the cheapest valid one. Ties break towards the
// lexicographically smallest assignment vector, making the result
// deterministic.
func exhaustive(cm *psdf.CommMatrix, procs []psdf.ProcessID, segments int, opts Options) Allocation {
	n := len(procs)
	assign := make([]int, n)
	best := make([]int, n)
	bestCost := int64(-1)
	counts := make([]int, segments)

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, c := range counts {
				if c == 0 {
					return
				}
			}
			a := Allocation{Segments: segments, Of: make(map[psdf.ProcessID]int, n)}
			for k, p := range procs {
				a.Of[p] = assign[k]
			}
			c := Score(cm, a)
			if bestCost < 0 || c < bestCost {
				bestCost = c
				copy(best, assign)
			}
			return
		}
		lo, hi := 0, segments
		if pin, ok := opts.Pinned[procs[i]]; ok {
			lo, hi = pin, pin+1
		} else if i == 0 && len(opts.Pinned) == 0 {
			hi = 1 // pin first process: mirror symmetry (only without user pins)
		}
		for s := lo; s < hi; s++ {
			if opts.MaxLoad > 0 && counts[s] >= opts.MaxLoad {
				continue
			}
			// Prune: remaining processes must be able to fill the
			// still-empty segments.
			assign[i] = s
			counts[s]++
			empty := 0
			for _, c := range counts {
				if c == 0 {
					empty++
				}
			}
			if n-i-1 >= empty {
				rec(i + 1)
			}
			counts[s]--
		}
	}
	rec(0)

	a := Allocation{Segments: segments, Of: make(map[psdf.ProcessID]int, n)}
	for k, p := range procs {
		a.Of[p] = best[k]
	}
	return a
}

// greedy seeds each segment with the heaviest-communicating unplaced
// processes and then assigns every remaining process to the segment
// minimising the marginal cost.
func greedy(cm *psdf.CommMatrix, procs []psdf.ProcessID, segments int, opts Options) Allocation {
	// Order processes by total traffic, heaviest first; ties by id.
	order := make([]psdf.ProcessID, len(procs))
	copy(order, procs)
	weight := func(p psdf.ProcessID) int { return cm.RowSum(p) + cm.ColSum(p) }
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := weight(order[i]), weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	a := Allocation{Segments: segments, Of: make(map[psdf.ProcessID]int, len(procs))}
	counts := make([]int, segments)
	for _, p := range order {
		if pin, ok := opts.Pinned[p]; ok {
			a.Of[p] = pin
			counts[pin]++
		}
	}
	for _, p := range order {
		if _, ok := opts.Pinned[p]; ok {
			continue
		}
		bestSeg, bestCost := -1, int64(-1)
		for s := 0; s < segments; s++ {
			if opts.MaxLoad > 0 && counts[s] >= opts.MaxLoad {
				continue
			}
			a.Of[p] = s
			c := Score(cm, a)
			// Prefer spreading over empty segments early so every
			// segment ends up populated.
			if counts[s] == 0 {
				c -= 1 // nudge towards empty segments on ties
			}
			if bestCost < 0 || c < bestCost {
				bestCost, bestSeg = c, s
			}
		}
		a.Of[p] = bestSeg
		counts[bestSeg]++
	}
	// Ensure no segment is empty: pull the lightest process from the
	// fullest segment into each empty one.
	for s := 0; s < segments; s++ {
		if counts[s] > 0 {
			continue
		}
		fullest := 0
		for t := 1; t < segments; t++ {
			if counts[t] > counts[fullest] {
				fullest = t
			}
		}
		moved := false
		for _, p := range order {
			if _, ok := opts.Pinned[p]; ok {
				continue
			}
			if a.Of[p] == fullest && counts[fullest] > 1 {
				a.Of[p] = s
				counts[fullest]--
				counts[s]++
				moved = true
				break
			}
		}
		if !moved {
			break // cannot fix; caller's Valid check will fail loudly
		}
	}
	return a
}

// localSearch improves the allocation to a fixed point with
// single-process relocations and pairwise swaps. Move evaluation is
// incremental (see loadTracker); each candidate move is applied,
// scored, and rolled back unless it improves.
func localSearch(cm *psdf.CommMatrix, a *Allocation, opts Options) {
	procs := make([]psdf.ProcessID, 0, len(a.Of))
	for p := range a.Of {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	counts := make([]int, a.Segments)
	for _, s := range a.Of {
		counts[s]++
	}
	t := newLoadTracker(cm, a)
	cur := t.score()
	for improved := true; improved; {
		improved = false
		// Relocations.
		for _, p := range procs {
			if _, ok := opts.Pinned[p]; ok {
				continue
			}
			from := a.Of[p]
			if counts[from] == 1 {
				continue // would empty the segment
			}
			for s := 0; s < a.Segments; s++ {
				if s == from || (opts.MaxLoad > 0 && counts[s] >= opts.MaxLoad) {
					continue
				}
				t.move(p, s)
				if c := t.score(); c < cur {
					cur = c
					counts[from]--
					counts[s]++
					from = s
					improved = true
				} else {
					t.move(p, from)
				}
			}
		}
		// Swaps.
		for i, p := range procs {
			if _, ok := opts.Pinned[p]; ok {
				continue
			}
			for _, q := range procs[i+1:] {
				if _, ok := opts.Pinned[q]; ok {
					continue
				}
				if a.Of[p] == a.Of[q] {
					continue
				}
				t.swap(p, q)
				if c := t.score(); c < cur {
					cur = c
					improved = true
				} else {
					t.swap(p, q)
				}
			}
		}
	}
}

// RoundRobin returns the naive baseline allocation: processes dealt to
// segments in id order, round-robin. Used by the placement-quality
// ablation.
func RoundRobin(cm *psdf.CommMatrix, segments int) (Allocation, error) {
	if segments < 1 {
		return Allocation{}, fmt.Errorf("place: need at least one segment, got %d", segments)
	}
	procs := activeProcesses(cm)
	if len(procs) < segments {
		return Allocation{}, fmt.Errorf("place: %d processes cannot populate %d segments", len(procs), segments)
	}
	a := Allocation{Segments: segments, Of: make(map[psdf.ProcessID]int, len(procs))}
	for i, p := range procs {
		a.Of[p] = i % segments
	}
	return a, nil
}
