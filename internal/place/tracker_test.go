package place

import (
	"math/rand"
	"testing"

	"segbus/internal/psdf"
)

// TestTrackerMatchesSpecification drives the incremental tracker
// through random move/swap sequences and checks it against the pure
// Score/BusLoads specification after every step.
func TestTrackerMatchesSpecification(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		segs := 2 + rng.Intn(3)
		cm := psdf.NewCommMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(3) == 0 {
					cm.Set(psdf.ProcessID(i), psdf.ProcessID(j), rng.Intn(200))
				}
			}
		}
		a := Allocation{Segments: segs, Of: make(map[psdf.ProcessID]int)}
		for i := 0; i < n; i++ {
			a.Of[psdf.ProcessID(i)] = rng.Intn(segs)
		}
		tr := newLoadTracker(cm, &a)
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				tr.move(psdf.ProcessID(rng.Intn(n)), rng.Intn(segs))
			} else {
				tr.swap(psdf.ProcessID(rng.Intn(n)), psdf.ProcessID(rng.Intn(n)))
			}
			wantLoads := BusLoads(cm, a)
			for s := range wantLoads {
				if tr.loads[s] != wantLoads[s] {
					t.Fatalf("trial %d step %d: loads[%d] = %d, want %d",
						trial, step, s, tr.loads[s], wantLoads[s])
				}
			}
			if got, want := tr.score(), Score(cm, a); got != want {
				t.Fatalf("trial %d step %d: score %d, want %d", trial, step, got, want)
			}
		}
	}
}

// TestTrackerSelfSwapAndNoopMove covers the degenerate operations.
func TestTrackerSelfSwapAndNoopMove(t *testing.T) {
	cm := pipelineMatrix(4, 10)
	a := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 0, 2: 1, 3: 1}}
	tr := newLoadTracker(cm, &a)
	before := tr.score()
	tr.move(0, 0) // no-op
	tr.swap(0, 1) // same segment: no-op
	tr.swap(2, 2) // identity
	if tr.score() != before {
		t.Error("no-op operations changed the score")
	}
	if got, want := tr.score(), Score(cm, a); got != want {
		t.Errorf("score %d, want %d", got, want)
	}
}

// TestLocalSearchStillReachesChainOptimum guards the rewrite: the
// incremental search must find the same single-cut optimum on a chain
// as the pure-specification version did.
func TestLocalSearchStillReachesChainOptimum(t *testing.T) {
	cm := pipelineMatrix(12, 10) // heuristic path (12 > MaxExhaustive)
	a, err := Solve(cm, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Cost(cm, a); got != 10 {
		t.Errorf("chain cut cost = %d, want 10 (%v)", got, a)
	}
}
