package place

import (
	"math/rand"
	"testing"

	"segbus/internal/psdf"
)

// pipelineMatrix returns a 1->2->...->n chain matrix with the given
// per-hop traffic.
func pipelineMatrix(n, items int) *psdf.CommMatrix {
	cm := psdf.NewCommMatrix(n)
	for i := 0; i < n-1; i++ {
		cm.Set(psdf.ProcessID(i), psdf.ProcessID(i+1), items)
	}
	return cm
}

func TestAllocationValid(t *testing.T) {
	a := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 1}}
	if !a.Valid() {
		t.Error("valid allocation rejected")
	}
	empty := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 0}}
	if empty.Valid() {
		t.Error("allocation with an empty segment accepted")
	}
	oor := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 5}}
	if oor.Valid() {
		t.Error("out-of-range allocation accepted")
	}
	if (Allocation{}).Valid() {
		t.Error("zero allocation accepted")
	}
}

func TestAllocationString(t *testing.T) {
	a := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 2: 0, 1: 1}}
	if got, want := a.String(), "0 2 || 1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAllocationClone(t *testing.T) {
	a := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 1}}
	c := a.Clone()
	c.Of[0] = 1
	if a.Of[0] != 0 {
		t.Error("Clone() shares map storage")
	}
}

func TestCostHopWeighted(t *testing.T) {
	cm := psdf.NewCommMatrix(3)
	cm.Set(0, 2, 10)
	a := Allocation{Segments: 3, Of: map[psdf.ProcessID]int{0: 0, 1: 1, 2: 2}}
	if got := Cost(cm, a); got != 20 {
		t.Errorf("Cost = %d, want 20 (10 items x 2 hops)", got)
	}
	b := Allocation{Segments: 3, Of: map[psdf.ProcessID]int{0: 0, 1: 2, 2: 0}}
	if got := Cost(cm, b); got != 0 {
		t.Errorf("Cost = %d, want 0 for co-located endpoints", got)
	}
}

func TestBusLoads(t *testing.T) {
	cm := psdf.NewCommMatrix(3)
	cm.Set(0, 1, 10) // intra segment 0
	cm.Set(0, 2, 5)  // crosses 0 -> 1
	a := Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 0, 2: 1}}
	loads := BusLoads(cm, a)
	if loads[0] != 15 || loads[1] != 5 {
		t.Errorf("BusLoads = %v, want [15 5]", loads)
	}
	if got := Score(cm, a); got != 15*15+5*5 {
		t.Errorf("Score = %d", got)
	}
}

func TestSolveErrors(t *testing.T) {
	cm := pipelineMatrix(4, 10)
	if _, err := Solve(cm, 0, Options{}); err == nil {
		t.Error("segments=0 accepted")
	}
	if _, err := Solve(psdf.NewCommMatrix(4), 2, Options{}); err == nil {
		t.Error("silent matrix accepted")
	}
	if _, err := Solve(cm, 9, Options{}); err == nil {
		t.Error("more segments than processes accepted")
	}
	if _, err := Solve(cm, 2, Options{MaxLoad: 1}); err == nil {
		t.Error("infeasible load cap accepted")
	}
}

func TestSolveSingleSegment(t *testing.T) {
	cm := pipelineMatrix(5, 10)
	a, err := Solve(cm, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid() || a.Segments != 1 || len(a.Of) != 5 {
		t.Errorf("single-segment allocation = %v", a)
	}
	if got := Cost(cm, a); got != 0 {
		t.Errorf("single-segment cost = %d", got)
	}
}

func TestSolveExhaustiveOptimalOnChain(t *testing.T) {
	// A 6-process chain with uniform traffic split into 2 segments:
	// the optimum cuts the chain once (cost = one hop's items) and
	// balances loads. Exhaustive search must find a single-cut split.
	cm := pipelineMatrix(6, 10)
	a, err := Solve(cm, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid() {
		t.Fatalf("invalid allocation %v", a)
	}
	if got := Cost(cm, a); got != 10 {
		t.Errorf("chain cut cost = %d, want 10 (%v)", got, a)
	}
	// Contiguity: a chain's optimal 2-split keeps each side contiguous.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 6; j++ {
			for k := j + 1; k < 6; k++ {
				si, sj, sk := a.Of[psdf.ProcessID(i)], a.Of[psdf.ProcessID(j)], a.Of[psdf.ProcessID(k)]
				if si == sk && si != sj {
					t.Errorf("non-contiguous optimal split %v", a)
				}
			}
		}
	}
}

func TestSolveRespectsMaxLoad(t *testing.T) {
	cm := pipelineMatrix(6, 10)
	a, err := Solve(cm, 2, Options{MaxLoad: 3})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if got := len(a.ProcessesOn(s)); got > 3 {
			t.Errorf("segment %d hosts %d processes, cap 3", s, got)
		}
	}
}

func TestSolveHeuristicValidAndStable(t *testing.T) {
	// 20 processes forces the heuristic path; results must be valid
	// and deterministic.
	rng := rand.New(rand.NewSource(9))
	cm := psdf.NewCommMatrix(20)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i != j && rng.Intn(4) == 0 {
				cm.Set(psdf.ProcessID(i), psdf.ProcessID(j), 1+rng.Intn(500))
			}
		}
	}
	a, err := Solve(cm, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid() {
		t.Fatalf("heuristic produced invalid allocation %v", a)
	}
	b, err := Solve(cm, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("Solve is nondeterministic:\n%v\n%v", a, b)
	}
}

func TestSolveHeuristicBeatsRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 12 + rng.Intn(10)
		cm := psdf.NewCommMatrix(n)
		for i := 0; i < n-1; i++ {
			cm.Set(psdf.ProcessID(i), psdf.ProcessID(i+1), 1+rng.Intn(600))
		}
		segs := 2 + rng.Intn(3)
		opt, err := Solve(cm, segs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RoundRobin(cm, segs)
		if err != nil {
			t.Fatal(err)
		}
		if Score(cm, opt) > Score(cm, rr) {
			t.Errorf("trial %d: optimizer (%d) worse than round-robin (%d)",
				trial, Score(cm, opt), Score(cm, rr))
		}
	}
}

func TestRoundRobin(t *testing.T) {
	cm := pipelineMatrix(7, 10)
	a, err := RoundRobin(cm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid() {
		t.Fatalf("round-robin invalid: %v", a)
	}
	// Balanced: 3/2/2.
	sizes := []int{len(a.ProcessesOn(0)), len(a.ProcessesOn(1)), len(a.ProcessesOn(2))}
	for _, s := range sizes {
		if s < 2 || s > 3 {
			t.Errorf("round-robin unbalanced: %v", sizes)
		}
	}
	if _, err := RoundRobin(cm, 0); err == nil {
		t.Error("RoundRobin(0) accepted")
	}
	if _, err := RoundRobin(pipelineMatrix(2, 1), 5); err == nil {
		t.Error("RoundRobin with too many segments accepted")
	}
}

func TestExhaustivePinsFirstProcess(t *testing.T) {
	// Mirror symmetry: the first active process always lands on
	// segment 0, making results canonical.
	cm := pipelineMatrix(5, 10)
	a, err := Solve(cm, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Of[0] != 0 {
		t.Errorf("first process on segment %d, want 0", a.Of[0])
	}
}

func TestIgnoresSilentProcesses(t *testing.T) {
	cm := psdf.NewCommMatrix(10)
	cm.Set(0, 1, 10)
	cm.Set(1, 2, 10)
	a, err := Solve(cm, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Of) != 3 {
		t.Errorf("placed %d processes, want 3 (silent slots ignored)", len(a.Of))
	}
}

func TestSolveRespectsPins(t *testing.T) {
	// Exhaustive path.
	cm := pipelineMatrix(6, 10)
	a, err := Solve(cm, 2, Options{Pinned: map[psdf.ProcessID]int{0: 1, 5: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Of[0] != 1 || a.Of[5] != 0 {
		t.Errorf("pins violated: %v", a)
	}
	if !a.Valid() {
		t.Errorf("invalid pinned allocation: %v", a)
	}

	// Heuristic path (12 processes).
	cm12 := pipelineMatrix(12, 10)
	pins := map[psdf.ProcessID]int{3: 2, 9: 0}
	b, err := Solve(cm12, 3, Options{Pinned: pins})
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range pins {
		if b.Of[p] != s {
			t.Errorf("heuristic pin violated: %v at %d, want %d", p, b.Of[p], s)
		}
	}
	if !b.Valid() {
		t.Errorf("invalid pinned allocation: %v", b)
	}
}

func TestSolveRejectsBadPins(t *testing.T) {
	cm := pipelineMatrix(6, 10)
	if _, err := Solve(cm, 2, Options{Pinned: map[psdf.ProcessID]int{0: 7}}); err == nil {
		t.Error("out-of-range pin accepted")
	}
}

func TestPinnedSolveNoWorseThanPinnedBaseline(t *testing.T) {
	// The optimizer with pins must still beat a round-robin deal that
	// honours the same pins.
	rng := rand.New(rand.NewSource(8))
	cm := psdf.NewCommMatrix(14)
	for i := 0; i < 13; i++ {
		cm.Set(psdf.ProcessID(i), psdf.ProcessID(i+1), 1+rng.Intn(400))
	}
	pins := map[psdf.ProcessID]int{0: 0, 13: 2}
	opt, err := Solve(cm, 3, Options{Pinned: pins})
	if err != nil {
		t.Fatal(err)
	}
	base := Allocation{Segments: 3, Of: map[psdf.ProcessID]int{}}
	for i := 0; i < 14; i++ {
		base.Of[psdf.ProcessID(i)] = i % 3
	}
	for p, s := range pins {
		base.Of[p] = s
	}
	if Score(cm, opt) > Score(cm, base) {
		t.Errorf("pinned optimizer (%d) worse than pinned round-robin (%d)",
			Score(cm, opt), Score(cm, base))
	}
}
