package place

import (
	"math/rand"
	"testing"

	"segbus/internal/psdf"
)

// BenchmarkSolveExhaustive measures the exact solver on the largest
// instance it handles by default (10 processes).
func BenchmarkSolveExhaustive(b *testing.B) {
	cm := pipelineMatrix(10, 100)
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cm, 3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHeuristic measures the multi-seed local search on a
// 30-process instance.
func BenchmarkSolveHeuristic(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cm := psdf.NewCommMatrix(30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if i != j && rng.Intn(5) == 0 {
				cm.Set(psdf.ProcessID(i), psdf.ProcessID(j), 1+rng.Intn(500))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cm, 4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScore measures the objective evaluation, the inner loop of
// the local search.
func BenchmarkScore(b *testing.B) {
	cm := pipelineMatrix(20, 100)
	a, err := RoundRobin(cm, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if Score(cm, a) <= 0 {
			b.Fatal("degenerate score")
		}
	}
}
