package dsl

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the DSL parser: it must never
// panic, errors must carry line numbers, and any accepted document
// must survive a Print/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("application a\nflow P0 -> P1 items=36 order=1 ticks=5\n")
	f.Add("process P0 InitialNode\n")
	f.Add("platform p\nca-clock 100MHz\npackage-size 36\nsegment 1 clock=90MHz processes=P0\n")
	f.Add("# just a comment\n\n")
	f.Add("flow P0 -> out items=1 order=1\n")
	f.Add("segment 1 clock=90MHz\n")
	f.Add("fu P0 kind=master\n")
	f.Add("nonsense directive here\n")
	f.Fuzz(func(t *testing.T, text string) {
		doc, err := Parse(strings.NewReader(text))
		if err != nil {
			if pe, ok := err.(*ParseError); ok && pe.Line <= 0 {
				t.Fatalf("error without a line number: %v", err)
			}
			return
		}
		// Round trip: printing and re-parsing must succeed and be a
		// fixed point.
		printed := doc.Print()
		doc2, err := Parse(strings.NewReader(printed))
		if err != nil {
			t.Fatalf("Print produced unparseable text: %v\n%s", err, printed)
		}
		if doc2.Print() != printed {
			t.Fatalf("Print/Parse not a fixed point:\n%q\nvs\n%q", printed, doc2.Print())
		}
	})
}
