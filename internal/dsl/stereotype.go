// Package dsl implements the Domain Specific Language layer of the
// SegBus design flow (section 2.2 of the paper): the UML-profile
// stereotypes that classify model elements, a textual model
// description format standing in for the graphical MagicDraw
// environment, and the OCL-style validation pass that reports every
// constraint breach with a reference to the offending element.
package dsl

import (
	"fmt"
	"sort"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Stereotype is a UML-profile classification of a model element. The
// PSDF stereotypes (InitialNode, ProcessNode, FinalNode) are the ones
// this paper adds to the profile; the platform stereotypes come from
// the earlier DSL work the paper builds on.
type Stereotype int

// The profile's stereotypes.
const (
	StereotypeInvalid Stereotype = iota
	InitialNode                  // PSDF process with no incoming flows
	ProcessNode                  // PSDF process with both inputs and outputs
	FinalNode                    // PSDF process with no outgoing flows
	SegBusPlatform
	SegmentElement
	FunctionalUnit
	SegmentArbiter
	CentralArbiter
	BorderUnit
	MasterInterface
	SlaveInterface
)

// String implements fmt.Stringer with the profile names.
func (s Stereotype) String() string {
	switch s {
	case InitialNode:
		return "InitialNode"
	case ProcessNode:
		return "ProcessNode"
	case FinalNode:
		return "FinalNode"
	case SegBusPlatform:
		return "SegBusPlatform"
	case SegmentElement:
		return "Segment"
	case FunctionalUnit:
		return "FU"
	case SegmentArbiter:
		return "SA"
	case CentralArbiter:
		return "CA"
	case BorderUnit:
		return "BU"
	case MasterInterface:
		return "Master"
	case SlaveInterface:
		return "Slave"
	}
	return fmt.Sprintf("Stereotype(%d)", int(s))
}

// Metaclass returns the UML metaclass the stereotype extends, as
// declared in the profile (the PSDF stereotypes are generalisations
// of UML2's Kernel::Class).
func (s Stereotype) Metaclass() string {
	switch s {
	case InitialNode, ProcessNode, FinalNode:
		return "UML Standard Profile::UML2MetaModel::Classes::Kernel::Class"
	case SegBusPlatform, SegmentElement, FunctionalUnit,
		SegmentArbiter, CentralArbiter, BorderUnit,
		MasterInterface, SlaveInterface:
		return "UML Standard Profile::UML2MetaModel::Classes::Kernel::Class"
	}
	return ""
}

// ParseStereotype decodes a profile name, accepting the PSDF node
// stereotypes used by the textual format.
func ParseStereotype(name string) (Stereotype, error) {
	switch name {
	case "InitialNode":
		return InitialNode, nil
	case "ProcessNode":
		return ProcessNode, nil
	case "FinalNode":
		return FinalNode, nil
	}
	return StereotypeInvalid, fmt.Errorf("dsl: unknown stereotype %q", name)
}

// InferStereotypes classifies every process of the model by its flow
// structure: no inputs — InitialNode; no outputs — FinalNode; both —
// ProcessNode. Processes with neither (isolated) are reported as
// ProcessNode; model validation flags them separately.
func InferStereotypes(m *psdf.Model) map[psdf.ProcessID]Stereotype {
	out := make(map[psdf.ProcessID]Stereotype, m.NumProcesses())
	sources := make(map[psdf.ProcessID]bool)
	for _, p := range m.Sources() {
		sources[p] = true
	}
	sinks := make(map[psdf.ProcessID]bool)
	for _, p := range m.Sinks() {
		sinks[p] = true
	}
	for _, p := range m.Processes() {
		switch {
		case sources[p] && !sinks[p]:
			out[p] = InitialNode
		case sinks[p] && !sources[p]:
			out[p] = FinalNode
		default:
			out[p] = ProcessNode
		}
	}
	return out
}

// PlatformStereotypes lists each platform element with its stereotype
// in the Figure 5 hierarchy order: the platform, its segments, the
// CA, the BUs, and each segment's FUs and SA.
func PlatformStereotypes(p *platform.Platform) []ElementStereotype {
	var out []ElementStereotype
	out = append(out, ElementStereotype{Element: p.Name, Stereotype: SegBusPlatform})
	for _, s := range p.Segments {
		out = append(out, ElementStereotype{Element: s.Name(), Stereotype: SegmentElement})
	}
	out = append(out, ElementStereotype{Element: "CA", Stereotype: CentralArbiter})
	for _, bu := range p.BUs() {
		out = append(out, ElementStereotype{Element: bu.Name(), Stereotype: BorderUnit})
	}
	for _, s := range p.Segments {
		out = append(out, ElementStereotype{Element: s.SAName(), Stereotype: SegmentArbiter})
		procs := make([]psdf.ProcessID, 0, len(s.FUs))
		for _, fu := range s.FUs {
			procs = append(procs, fu.Process)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		for _, proc := range procs {
			out = append(out, ElementStereotype{Element: proc.String(), Stereotype: FunctionalUnit})
		}
	}
	return out
}

// ElementStereotype pairs a model element name with its stereotype.
type ElementStereotype struct {
	Element    string
	Stereotype Stereotype
}
