package dsl

import (
	"fmt"
	"strings"

	"segbus/internal/platform"
)

// Print renders the document back to the textual model format so that
// Parse(Print(doc)) reproduces the same models (round-trip property).
func (doc *Document) Print() string {
	var b strings.Builder
	m := doc.Model
	if m.Name() != "" {
		fmt.Fprintf(&b, "application %s\n", m.Name())
	}
	if m.NominalPackageSize() > 0 {
		fmt.Fprintf(&b, "nominal-package-size %d\n", m.NominalPackageSize())
	}
	for _, p := range m.Processes() {
		if st, ok := doc.Stereotype[p]; ok {
			fmt.Fprintf(&b, "process %s %s\n", p, st)
		} else {
			fmt.Fprintf(&b, "process %s\n", p)
		}
	}
	for _, f := range m.Flows() {
		target := f.Target.String()
		if f.Target < 0 {
			target = "out"
		}
		fmt.Fprintf(&b, "flow %s -> %s items=%d order=%d ticks=%d\n", f.Source, target, f.Items, f.Order, f.Ticks)
	}
	if doc.Platform == nil {
		return b.String()
	}
	p := doc.Platform
	fmt.Fprintf(&b, "platform %s\n", p.Name)
	// Unset (zero) values are omitted rather than rendered: a partial
	// document must still round-trip through Parse.
	if p.CAClock > 0 {
		fmt.Fprintf(&b, "ca-clock %s\n", formatHz(p.CAClock))
	}
	if p.PackageSize != 0 {
		fmt.Fprintf(&b, "package-size %d\n", p.PackageSize)
	}
	if p.HeaderTicks > 0 {
		fmt.Fprintf(&b, "header-ticks %d\n", p.HeaderTicks)
	}
	if p.CAHopTicks > 0 {
		fmt.Fprintf(&b, "ca-hop-ticks %d\n", p.CAHopTicks)
	}
	for _, s := range p.Segments {
		names := make([]string, 0, len(s.FUs))
		for _, fu := range s.FUs {
			names = append(names, fu.Process.String())
		}
		if len(names) == 0 {
			fmt.Fprintf(&b, "segment %d clock=%s\n", s.Index, formatHz(s.Clock))
			continue
		}
		fmt.Fprintf(&b, "segment %d clock=%s processes=%s\n", s.Index, formatHz(s.Clock), strings.Join(names, ","))
	}
	for _, s := range p.Segments {
		for _, fu := range s.FUs {
			switch fu.Kind {
			case platform.MasterOnly:
				fmt.Fprintf(&b, "fu %s kind=master\n", fu.Process)
			case platform.SlaveOnly:
				fmt.Fprintf(&b, "fu %s kind=slave\n", fu.Process)
			}
		}
	}
	return b.String()
}

// formatHz renders a frequency as an exact integer with the largest
// suffix that loses no precision, so Print/Parse round-trips exactly.
func formatHz(f platform.Hz) string {
	v := int64(f)
	switch {
	case v%1e9 == 0:
		return fmt.Sprintf("%dGHz", v/1e9)
	case v%1e6 == 0:
		return fmt.Sprintf("%dMHz", v/1e6)
	case v%1e3 == 0:
		return fmt.Sprintf("%dkHz", v/1e3)
	}
	return fmt.Sprintf("%dHz", v)
}
