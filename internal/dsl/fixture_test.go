package dsl_test

import (
	"os"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/dsl"
)

// TestFixtureMatchesApps keeps testdata/mp3.sbd — the checked-in model
// description used by the CLI tests and the examples — in sync with
// the canonical MP3 model of internal/apps. Regenerate the fixture
// with dsl.Document.Print if this fails.
func TestFixtureMatchesApps(t *testing.T) {
	data, err := os.ReadFile("../../testdata/mp3.sbd")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dsl.Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		t.Fatalf("fixture invalid: %v", ds)
	}

	want := apps.MP3Model()
	if doc.Model.Name() != want.Name() {
		t.Errorf("name %q vs %q", doc.Model.Name(), want.Name())
	}
	gf, wf := doc.Model.Flows(), want.Flows()
	if len(gf) != len(wf) {
		t.Fatalf("flows %d vs %d", len(gf), len(wf))
	}
	for i := range gf {
		if gf[i] != wf[i] {
			t.Errorf("flow %d: %v vs %v", i, gf[i], wf[i])
		}
	}
	wantPlat := apps.MP3Platform3(36)
	if doc.Platform == nil || doc.Platform.String() != wantPlat.String() {
		t.Errorf("platform allocation differs from MP3Platform3")
	}
	if doc.Platform.HeaderTicks != wantPlat.HeaderTicks || doc.Platform.CAHopTicks != wantPlat.CAHopTicks {
		t.Error("protocol constants differ")
	}
	if doc.Platform.CAClock != wantPlat.CAClock {
		t.Error("CA clock differs")
	}
}
