package dsl

import (
	"fmt"
	"strings"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Severity classifies a diagnostic.
type Severity int

// Diagnostic severities.
const (
	SeverityError Severity = iota
	SeverityWarning
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one finding of the validation pass. Element names the
// model element to highlight, as the DSL tool highlights the offending
// element in the diagram on an OCL breach. Code is the stable SB0xx
// diagnostic code of the violated rule, carried over from the psdf and
// platform validators (see internal/analyze for the full table).
type Diagnostic struct {
	Severity Severity
	Code     string
	Element  string
	Message  string
}

// Stable diagnostic codes of the DSL-level consistency rules.
const (
	CodeStereotype          = "SB040" // declared stereotype contradicts flows
	CodePackageSizeMismatch = "SB041" // platform vs nominal package size
)

// String implements fmt.Stringer.
func (d Diagnostic) String() string {
	if d.Code != "" {
		return fmt.Sprintf("%s: %s: %s: %s", d.Severity, d.Element, d.Code, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Severity, d.Element, d.Message)
}

// Diagnostics aggregates validation findings.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic has error severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// String renders one diagnostic per line.
func (ds Diagnostics) String() string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate runs the full DSL validation pass over the document: PSDF
// well-formedness, platform structural constraints, the
// application-to-platform mapping, FU interface roles, and stereotype
// consistency (a declared stereotype must match the flow structure).
// It returns every finding; an empty slice means the model is a
// correct PSDF/PSM pair ready for transformation.
func (doc *Document) Validate() Diagnostics {
	var ds Diagnostics

	if err := doc.Model.Validate(); err != nil {
		if verrs, ok := err.(psdf.ValidationErrors); ok {
			for _, v := range verrs {
				el := doc.Model.Name()
				if v.Flow != nil {
					el = v.Flow.String()
				}
				ds = append(ds, Diagnostic{SeverityError, v.Code, el, v.Message})
			}
		} else {
			ds = append(ds, Diagnostic{SeverityError, "", doc.Model.Name(), err.Error()})
		}
	}

	inferred := InferStereotypes(doc.Model)
	for p, declared := range doc.Stereotype {
		if want, ok := inferred[p]; ok && want != declared {
			ds = append(ds, Diagnostic{
				SeverityError, CodeStereotype, p.String(),
				fmt.Sprintf("declared stereotype %s contradicts the flow structure (expected %s)", declared, want),
			})
		}
	}

	if doc.Platform == nil {
		return ds
	}
	appendViolations := func(err error) {
		if err == nil {
			return
		}
		if vs, ok := err.(platform.ConstraintViolations); ok {
			for _, v := range vs {
				ds = append(ds, Diagnostic{SeverityError, v.Code, v.Element, v.Message})
			}
			return
		}
		ds = append(ds, Diagnostic{SeverityError, "", doc.Platform.Name, err.Error()})
	}
	appendViolations(doc.Platform.Validate())
	appendViolations(doc.Platform.ValidateMapping(doc.Model))
	appendViolations(doc.Platform.ValidateRoles(doc.Model))

	// Advisory findings.
	if doc.Platform.PackageSize > 0 && doc.Model.NominalPackageSize() > 0 &&
		doc.Platform.PackageSize != doc.Model.NominalPackageSize() {
		ds = append(ds, Diagnostic{
			SeverityWarning, CodePackageSizeMismatch, doc.Platform.Name,
			fmt.Sprintf("platform package size %d differs from the model's nominal %d: per-package processing costs will be rescaled",
				doc.Platform.PackageSize, doc.Model.NominalPackageSize()),
		})
	}
	return ds
}
