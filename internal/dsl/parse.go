package dsl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Document is a parsed model description: the application's PSDF
// model, optionally a platform with its mapping, and any stereotype
// declarations the author made explicitly.
type Document struct {
	Model      *psdf.Model
	Platform   *platform.Platform // nil when the description has no platform section
	Stereotype map[psdf.ProcessID]Stereotype
}

// ParseError is a syntax or semantic error in a model description,
// carrying the line it occurred on.
type ParseError struct {
	Line    int
	Message string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dsl: line %d: %s", e.Line, e.Message)
}

// Parse reads a textual SegBus model description. The format is
// line-based; '#' starts a comment. Directives:
//
//	application <name>
//	nominal-package-size <n>
//	process <P#> [stereotype]
//	flow <P#> -> <P#|out> items=<n> order=<n> ticks=<n>
//	platform <name>
//	ca-clock <freq>            (e.g. 111MHz)
//	package-size <n>
//	header-ticks <n>
//	ca-hop-ticks <n>
//	segment <i> clock=<freq> processes=<P#,P#,...>
//	fu <P#> kind=<master|slave|master+slave>
//
// The application section must precede the platform section. Clock
// frequencies accept Hz, kHz, MHz and GHz suffixes.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{
		Model:      psdf.NewModel(""),
		Stereotype: make(map[psdf.ProcessID]Stereotype),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	named := false
	fuKinds := make(map[psdf.ProcessID]platform.FUKind)

	fail := func(format string, args ...interface{}) error {
		return &ParseError{Line: lineNo, Message: fmt.Sprintf(format, args...)}
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "application":
			if len(fields) != 2 {
				return nil, fail("application takes exactly one name")
			}
			if named {
				return nil, fail("duplicate application directive")
			}
			named = true
			renamed := psdf.NewModel(fields[1])
			renamed.SetNominalPackageSize(doc.Model.NominalPackageSize())
			for _, p := range doc.Model.Processes() {
				renamed.AddProcess(p)
			}
			for _, f := range doc.Model.Flows() {
				renamed.AddFlow(f)
			}
			doc.Model = renamed

		case "nominal-package-size":
			if len(fields) != 2 {
				return nil, fail("nominal-package-size takes exactly one integer")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fail("bad nominal package size %q", fields[1])
			}
			doc.Model.SetNominalPackageSize(n)

		case "process":
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fail("process takes a name and an optional stereotype")
			}
			p, err := psdf.ParseProcessName(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			doc.Model.AddProcess(p)
			if len(fields) == 3 {
				st, err := ParseStereotype(fields[2])
				if err != nil {
					return nil, fail("%v", err)
				}
				doc.Stereotype[p] = st
			}

		case "flow":
			// flow P0 -> P1 items=576 order=1 ticks=250
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fail(`flow syntax: flow P0 -> P1 items=N order=N ticks=N`)
			}
			src, err := psdf.ParseProcessName(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			var dst psdf.ProcessID
			if fields[3] == "out" {
				dst = psdf.SystemOutput
			} else {
				dst, err = psdf.ParseProcessName(fields[3])
				if err != nil {
					return nil, fail("%v", err)
				}
			}
			f := psdf.Flow{Source: src, Target: dst}
			seen := map[string]bool{}
			for _, kv := range fields[4:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fail("bad flow attribute %q (want key=value)", kv)
				}
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fail("flow attribute %s: bad integer %q", k, v)
				}
				if seen[k] {
					return nil, fail("duplicate flow attribute %q", k)
				}
				seen[k] = true
				switch k {
				case "items":
					f.Items = n
				case "order":
					f.Order = n
				case "ticks":
					f.Ticks = n
				default:
					return nil, fail("unknown flow attribute %q", k)
				}
			}
			if !seen["items"] || !seen["order"] {
				return nil, fail("flow needs items= and order= attributes")
			}
			doc.Model.AddFlow(f)

		case "platform":
			if len(fields) != 2 {
				return nil, fail("platform takes exactly one name")
			}
			if doc.Platform != nil {
				return nil, fail("duplicate platform directive")
			}
			doc.Platform = platform.New(fields[1], 0, 0)

		case "ca-clock":
			if doc.Platform == nil {
				return nil, fail("ca-clock before platform directive")
			}
			if len(fields) != 2 {
				return nil, fail("ca-clock takes exactly one frequency")
			}
			hz, err := ParseHz(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			doc.Platform.CAClock = hz

		case "package-size":
			if doc.Platform == nil {
				return nil, fail("package-size before platform directive")
			}
			if len(fields) != 2 {
				return nil, fail("package-size takes exactly one integer")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("package-size takes exactly one integer")
			}
			doc.Platform.PackageSize = n

		case "header-ticks":
			if doc.Platform == nil {
				return nil, fail("header-ticks before platform directive")
			}
			if len(fields) != 2 {
				return nil, fail("header-ticks takes exactly one integer")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("header-ticks takes exactly one integer")
			}
			doc.Platform.HeaderTicks = n

		case "ca-hop-ticks":
			if doc.Platform == nil {
				return nil, fail("ca-hop-ticks before platform directive")
			}
			if len(fields) != 2 {
				return nil, fail("ca-hop-ticks takes exactly one integer")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("ca-hop-ticks takes exactly one integer")
			}
			doc.Platform.CAHopTicks = n

		case "segment":
			if doc.Platform == nil {
				return nil, fail("segment before platform directive")
			}
			if len(fields) < 3 {
				return nil, fail("segment syntax: segment N clock=<freq> processes=P0,P1")
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad segment index %q", fields[1])
			}
			if idx != doc.Platform.NumSegments()+1 {
				return nil, fail("segment index %d out of order (want %d)", idx, doc.Platform.NumSegments()+1)
			}
			var clock platform.Hz
			var procs []psdf.ProcessID
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fail("bad segment attribute %q", kv)
				}
				switch k {
				case "clock":
					clock, err = ParseHz(v)
					if err != nil {
						return nil, fail("%v", err)
					}
				case "processes":
					for _, name := range strings.Split(v, ",") {
						p, err := psdf.ParseProcessName(strings.TrimSpace(name))
						if err != nil {
							return nil, fail("%v", err)
						}
						procs = append(procs, p)
					}
				default:
					return nil, fail("unknown segment attribute %q", k)
				}
			}
			doc.Platform.AddSegment(clock, procs...)

		case "fu":
			if doc.Platform == nil {
				return nil, fail("fu before platform directive")
			}
			if len(fields) != 3 {
				return nil, fail("fu syntax: fu P0 kind=<master|slave|master+slave>")
			}
			p, err := psdf.ParseProcessName(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			k, v, ok := strings.Cut(fields[2], "=")
			if !ok || k != "kind" {
				return nil, fail("fu syntax: fu P0 kind=<master|slave|master+slave>")
			}
			switch v {
			case "master":
				fuKinds[p] = platform.MasterOnly
			case "slave":
				fuKinds[p] = platform.SlaveOnly
			case "master+slave":
				fuKinds[p] = platform.MasterSlave
			default:
				return nil, fail("unknown fu kind %q", v)
			}

		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dsl: reading model description: %w", err)
	}
	if doc.Platform != nil {
		for _, s := range doc.Platform.Segments {
			for i := range s.FUs {
				if k, ok := fuKinds[s.FUs[i].Process]; ok {
					s.FUs[i].Kind = k
				}
			}
		}
	}
	return doc, nil
}

// ParseHz decodes a frequency literal with an optional Hz/kHz/MHz/GHz
// suffix ("91MHz", "1.5GHz", "250000").
func ParseHz(s string) (platform.Hz, error) {
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "GHz"):
		mult, num = 1e9, strings.TrimSuffix(s, "GHz")
	case strings.HasSuffix(s, "MHz"):
		mult, num = 1e6, strings.TrimSuffix(s, "MHz")
	case strings.HasSuffix(s, "kHz"):
		mult, num = 1e3, strings.TrimSuffix(s, "kHz")
	case strings.HasSuffix(s, "Hz"):
		num = strings.TrimSuffix(s, "Hz")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("dsl: bad frequency %q", s)
	}
	return platform.Hz(v * mult), nil
}
