package dsl

import (
	"strings"
	"testing"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

const mp3Text = `
# The paper's example application on the three-segment platform.
application mp3-decoder
nominal-package-size 36

flow P0 -> P1 items=576 order=1 ticks=250
flow P0 -> P8 items=576 order=2 ticks=30
flow P8 -> P9 items=540 order=3 ticks=290
flow P8 -> P3 items=36  order=3 ticks=290
flow P1 -> P2 items=540 order=4 ticks=130

platform SBP-3seg
ca-clock 111MHz
package-size 36
header-ticks 25
ca-hop-ticks 25
segment 1 clock=91MHz processes=P0,P1,P2,P3,P8
segment 2 clock=98MHz processes=P9
`

func TestParseBasics(t *testing.T) {
	doc, err := Parse(strings.NewReader(mp3Text))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Model.Name() != "mp3-decoder" {
		t.Errorf("name = %q", doc.Model.Name())
	}
	if doc.Model.NominalPackageSize() != 36 {
		t.Errorf("nominal = %d", doc.Model.NominalPackageSize())
	}
	if doc.Model.NumFlows() != 5 {
		t.Errorf("flows = %d", doc.Model.NumFlows())
	}
	f := doc.Model.FlowsFrom(0)[0]
	if f.Target != 1 || f.Items != 576 || f.Order != 1 || f.Ticks != 250 {
		t.Errorf("flow = %+v", f)
	}
	if doc.Platform == nil {
		t.Fatal("platform missing")
	}
	if doc.Platform.CAClock != 111*platform.MHz || doc.Platform.PackageSize != 36 {
		t.Errorf("platform = %+v", doc.Platform)
	}
	if doc.Platform.HeaderTicks != 25 || doc.Platform.CAHopTicks != 25 {
		t.Errorf("protocol ticks = %d/%d", doc.Platform.HeaderTicks, doc.Platform.CAHopTicks)
	}
	if doc.Platform.Segment(1).Clock != 91*platform.MHz {
		t.Errorf("segment clock = %v", doc.Platform.Segment(1).Clock)
	}
}

func TestParseStereotypeDeclaration(t *testing.T) {
	text := `
process P0 InitialNode
process P1 ProcessNode
process P2 FinalNode
flow P0 -> P1 items=36 order=1 ticks=0
flow P1 -> P2 items=36 order=2 ticks=0
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Stereotype[0] != InitialNode || doc.Stereotype[1] != ProcessNode || doc.Stereotype[2] != FinalNode {
		t.Errorf("stereotypes = %v", doc.Stereotype)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		t.Errorf("consistent stereotypes rejected: %v", ds)
	}
}

func TestParseSystemOutput(t *testing.T) {
	doc, err := Parse(strings.NewReader("flow P0 -> out items=36 order=1 ticks=5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Model.Flows()[0].Target != psdf.SystemOutput {
		t.Error("out target not parsed")
	}
}

func TestParseFUKinds(t *testing.T) {
	text := `
flow P0 -> P1 items=36 order=1 ticks=0
platform x
ca-clock 100MHz
package-size 36
segment 1 clock=90MHz processes=P0,P1
fu P0 kind=master
fu P1 kind=slave
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	fus := doc.Platform.Segment(1).FUs
	if fus[0].Kind != platform.MasterOnly || fus[1].Kind != platform.SlaveOnly {
		t.Errorf("kinds = %v/%v", fus[0].Kind, fus[1].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":     "frobnicate x\n",
		"bad process":           "process Q9\n",
		"bad stereotype":        "process P0 MagicNode\n",
		"flow syntax":           "flow P0 P1 items=1\n",
		"flow bad attr":         "flow P0 -> P1 wat=1 items=1 order=1\n",
		"flow dup attr":         "flow P0 -> P1 items=1 items=2 order=1\n",
		"flow missing items":    "flow P0 -> P1 order=1\n",
		"double application":    "application a\napplication b\n",
		"platform-less segment": "segment 1 clock=90MHz processes=P0\n",
		"double platform":       "platform a\nplatform b\n",
		"segment out of order":  "platform a\nsegment 2 clock=90MHz processes=P0\n",
		"bad frequency":         "platform a\nca-clock fast\n",
		"bad fu":                "platform a\nfu P0 kind=wizard\n",
		"bad nominal":           "nominal-package-size -2\n",
	}
	for name, text := range cases {
		_, err := Parse(strings.NewReader(text))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if pe, ok := err.(*ParseError); ok && pe.Line == 0 {
			t.Errorf("%s: error lacks line number", name)
		}
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse(strings.NewReader("process P0\n\nbadness here\n"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestParseHz(t *testing.T) {
	cases := map[string]platform.Hz{
		"91MHz":  91 * platform.MHz,
		"1.5GHz": 1500 * platform.MHz,
		"250kHz": 250 * platform.KHz,
		"100Hz":  100,
		"12345":  12345,
	}
	for in, want := range cases {
		got, err := ParseHz(in)
		if err != nil {
			t.Errorf("ParseHz(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseHz(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "fast", "-3MHz", "0"} {
		if _, err := ParseHz(bad); err == nil {
			t.Errorf("ParseHz(%q) accepted", bad)
		}
	}
}

func TestInferStereotypes(t *testing.T) {
	m := psdf.NewModel("st")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2})
	got := InferStereotypes(m)
	if got[0] != InitialNode || got[1] != ProcessNode || got[2] != FinalNode {
		t.Errorf("stereotypes = %v", got)
	}
}

func TestStereotypeMetaclass(t *testing.T) {
	for _, s := range []Stereotype{InitialNode, ProcessNode, FinalNode, SegBusPlatform, BorderUnit} {
		if !strings.Contains(s.Metaclass(), "Kernel::Class") {
			t.Errorf("%v metaclass = %q", s, s.Metaclass())
		}
	}
	if StereotypeInvalid.Metaclass() != "" {
		t.Error("invalid stereotype has a metaclass")
	}
}

func TestPlatformStereotypes(t *testing.T) {
	p := platform.New("SBP", 100*platform.MHz, 36)
	p.AddSegment(90*platform.MHz, 0, 1)
	p.AddSegment(95*platform.MHz, 2)
	els := PlatformStereotypes(p)
	byName := map[string]Stereotype{}
	for _, e := range els {
		byName[e.Element] = e.Stereotype
	}
	checks := map[string]Stereotype{
		"SBP": SegBusPlatform, "Segment 1": SegmentElement, "CA": CentralArbiter,
		"BU12": BorderUnit, "SA2": SegmentArbiter, "P0": FunctionalUnit,
	}
	for name, want := range checks {
		if byName[name] != want {
			t.Errorf("%s stereotype = %v, want %v", name, byName[name], want)
		}
	}
}

func TestValidateReportsEverything(t *testing.T) {
	text := `
flow P0 -> P1 items=36 order=1 ticks=0
platform broken
ca-clock 100MHz
package-size 36
segment 1 clock=90MHz processes=P0
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	ds := doc.Validate()
	if !ds.HasErrors() {
		t.Fatal("unmapped P1 not reported")
	}
	if !strings.Contains(ds.String(), "P1") {
		t.Errorf("diagnostics don't name P1: %v", ds)
	}
}

func TestValidateStereotypeConflict(t *testing.T) {
	text := `
process P0 FinalNode
flow P0 -> P1 items=36 order=1 ticks=0
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	ds := doc.Validate()
	found := false
	for _, d := range ds {
		if d.Element == "P0" && strings.Contains(d.Message, "stereotype") {
			found = true
		}
	}
	if !found {
		t.Errorf("stereotype conflict not reported: %v", ds)
	}
}

func TestValidatePackageSizeWarning(t *testing.T) {
	text := `
nominal-package-size 36
flow P0 -> P1 items=36 order=1 ticks=0
platform p
ca-clock 100MHz
package-size 18
segment 1 clock=90MHz processes=P0,P1
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	ds := doc.Validate()
	if ds.HasErrors() {
		t.Fatalf("unexpected errors: %v", ds)
	}
	if len(ds) == 0 || ds[0].Severity != SeverityWarning {
		t.Errorf("expected a rescale warning, got %v", ds)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(mp3Text))
	if err != nil {
		t.Fatal(err)
	}
	// Add FU kind variety.
	doc.Platform.Segment(1).FUs[0].Kind = platform.MasterOnly
	text := doc.Print()
	doc2, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if doc2.Print() != text {
		t.Errorf("Print/Parse not a fixed point:\n%s\nvs\n%s", text, doc2.Print())
	}
	if doc2.Model.NumFlows() != doc.Model.NumFlows() {
		t.Error("flows lost in round trip")
	}
	if doc2.Platform.String() != doc.Platform.String() {
		t.Error("allocation lost in round trip")
	}
	if doc2.Platform.Segment(1).FUs[0].Kind != platform.MasterOnly {
		t.Error("FU kind lost in round trip")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: SeverityError, Element: "P3", Message: "broken"}
	if got := d.String(); !strings.Contains(got, "error") || !strings.Contains(got, "P3") {
		t.Errorf("String() = %q", got)
	}
	d.Code = "SB099"
	if got := d.String(); !strings.Contains(got, "SB099") || !strings.Contains(got, "broken") {
		t.Errorf("String() with code = %q", got)
	}
	if SeverityWarning.String() != "warning" {
		t.Error("warning severity name")
	}
}

func TestStereotypeStringAll(t *testing.T) {
	names := map[Stereotype]string{
		InitialNode: "InitialNode", ProcessNode: "ProcessNode", FinalNode: "FinalNode",
		SegBusPlatform: "SegBusPlatform", SegmentElement: "Segment", FunctionalUnit: "FU",
		SegmentArbiter: "SA", CentralArbiter: "CA", BorderUnit: "BU",
		MasterInterface: "Master", SlaveInterface: "Slave",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
	if !strings.Contains(Stereotype(99).String(), "99") {
		t.Error("unknown stereotype rendering")
	}
}

func TestFormatHzVariants(t *testing.T) {
	cases := map[platform.Hz]string{
		2 * platform.GHz:   "2GHz",
		91 * platform.MHz:  "91MHz",
		250 * platform.KHz: "250kHz",
		12345:              "12345Hz",
	}
	for hz, want := range cases {
		if got := formatHz(hz); got != want {
			t.Errorf("formatHz(%v) = %q, want %q", float64(hz), got, want)
		}
		// Round trip through the parser.
		back, err := ParseHz(formatHz(hz))
		if err != nil || back != hz {
			t.Errorf("formatHz(%v) does not round-trip: %v %v", float64(hz), back, err)
		}
	}
}

func TestValidateModelOnlyDocument(t *testing.T) {
	doc, err := Parse(strings.NewReader("flow P0 -> P1 items=36 order=1 ticks=0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds := doc.Validate(); len(ds) != 0 {
		t.Errorf("platform-less valid model produced diagnostics: %v", ds)
	}
}

func TestValidateBrokenModelDiagnostics(t *testing.T) {
	// A model-level violation (no flows) names the application.
	doc := &Document{Model: psdf.NewModel("hollow"), Stereotype: map[psdf.ProcessID]Stereotype{}}
	doc.Model.AddProcess(3)
	ds := doc.Validate()
	if !ds.HasErrors() {
		t.Fatal("hollow model accepted")
	}
}
