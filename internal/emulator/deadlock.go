package emulator

import (
	"fmt"
	"strings"

	"segbus/internal/psdf"
)

// BlockedProc is one process stalled in a deadlocked stage: its next
// emission's firing gate against the packages it actually received.
type BlockedProc struct {
	Proc psdf.ProcessID `json:"proc"`
	Need int            `json:"need"`
	Have int            `json:"have"`
}

// DeadlockError reports an emulation that stalled before delivering
// every package: no eligible functional unit could fire in the stage
// it stopped at. It unwraps from the error returned by Run, letting
// callers (analyze.FromError, the conform reachability oracle)
// distinguish a genuine deadlock from configuration problems.
type DeadlockError struct {
	Stage       int           `json:"stage"`       // index of the stalled stage
	Order       int           `json:"order"`       // the stage's ordering number
	Undelivered int           `json:"undelivered"` // packages the stage still owes
	Blocked     []BlockedProc `json:"blocked"`     // stalled emitters, by process order
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "emulator: deadlock at stage %d (order %d) with %d package(s) undelivered;",
		e.Stage, e.Order, e.Undelivered)
	for _, bp := range e.Blocked {
		fmt.Fprintf(&b, " %s blocked (needs %d input packages, has %d);", bp.Proc, bp.Need, bp.Have)
	}
	return strings.TrimSuffix(b.String(), ";")
}
