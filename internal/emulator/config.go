// Package emulator implements the SegBus emulator: it executes a PSDF
// application model on a SegBus platform instance and reports the
// performance figures of section 4 of the paper — per-arbiter total
// clock ticks (TCT), intra/inter-segment request counts, border-unit
// package counts and tick totals, per-process start/end times, and the
// estimated total execution time.
//
// The emulator follows the basic concepts of section 3.3:
//
//   - the application schedule is extracted from the PSDF and enforced
//     by the arbiters (package sched);
//   - functional units are modeled as counters that "process" for the
//     flow's C ticks before each package send;
//   - execution times are measured from the start of the emulation;
//   - an array of process status flags marks process completion, and
//     the run ends when all flags are set and no arbiter has pending
//     activity;
//   - monitoring counters at the SAs, the CA and the BUs record clock
//     ticks and request counts.
//
// Timing factors the paper's emulator deliberately skips (clock-domain
// synchronisation at the BUs, SA grant setup, CA set/reset) are
// represented as a configurable Overheads value that defaults to zero.
// The refined model of package realplat re-enables them to act as the
// accuracy ground truth.
package emulator

import (
	"segbus/internal/obs"
	"segbus/internal/trace"
)

// Overheads configures the fine-grained timing factors of the bus
// protocol. The estimation model (the paper's emulator) runs with the
// zero value: those factors are skipped because they are small (2–3
// ticks) against a package transfer and largely overlap ongoing
// activity. The refined model charges them explicitly.
type Overheads struct {
	// GrantTicks is charged at the start of every granted bus
	// transaction: the SA setting the grant signal and the master
	// responding (segment clock domain).
	GrantTicks int

	// SyncTicks is the clock-domain synchronisation cost at a border
	// unit, charged once when a package has been loaded (writer-side
	// domain) and once before it is unloaded (reader-side domain).
	// The paper parameterises this at two clock ticks per crossing.
	SyncTicks int

	// CASetTicks is charged on the CA clock for setting the grant
	// signal of an inter-segment transfer; requests serialise on the
	// CA while it is charged.
	CASetTicks int

	// CAResetTicks is charged on the CA clock for resetting the grant
	// signal when the source segment finishes its part of an
	// inter-segment transfer.
	CAResetTicks int
}

// Zero reports whether no overhead is charged (the estimation model).
func (o Overheads) Zero() bool {
	return o == Overheads{}
}

// Policy selects how a segment arbiter picks among simultaneous bus
// requests. The platform's SAs are implementation-defined in this
// respect ("the SA decides which device will get access in the
// following transfer burst"); the emulator exposes the choice so its
// impact can be measured.
type Policy int

// Arbitration policies.
const (
	// PolicyBUFirst (the default) serves border-unit forwards before
	// master requests, then FIFO by request time: in-flight packages
	// drain before new ones enter, which keeps the BU waiting periods
	// minimal.
	PolicyBUFirst Policy = iota

	// PolicyFIFO serves strictly by request time regardless of the
	// requester kind.
	PolicyFIFO

	// PolicyFixedPriority emulates a daisy-chain arbiter: the
	// requester with the lowest identity wins (border units outrank
	// masters, then lower process ids), ties broken by request time.
	PolicyFixedPriority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBUFirst:
		return "bu-first"
	case PolicyFIFO:
		return "fifo"
	case PolicyFixedPriority:
		return "fixed-priority"
	}
	return "Policy(?)"
}

// Config tunes an emulation run.
type Config struct {
	// Overheads selects the timing model; the zero value is the
	// paper's estimation model.
	Overheads Overheads

	// Policy selects the segment arbiters' selection rule among
	// simultaneous requests; the zero value is PolicyBUFirst.
	Policy Policy

	// DetectTicks is the number of CA clock ticks the monitor takes to
	// detect end of emulation after the last platform activity (the
	// MonitorClass scanning the process status flags). It is included
	// in the CA's total clock ticks.
	DetectTicks int64

	// Trace, when non-nil, records per-element busy intervals and
	// point events for the Figure 10/11 renderings.
	Trace *trace.Trace

	// Metrics, when non-nil, receives the run's monitoring counters:
	// arbiter grants/denials by policy, border-unit occupancy ticks,
	// per-segment contention-wait histograms, engine events and the
	// simulated-time rate. Handles are resolved once per run; a nil
	// registry costs one branch per update (see internal/obs). The
	// registry may be shared across runs (values accumulate) and
	// across concurrent workers.
	Metrics *obs.Registry

	// Observer, when non-nil, receives emulation events as they
	// happen (see Observer).
	Observer Observer

	// StepLimit bounds the number of simulation events as a livelock
	// guard. Zero selects a generous default proportional to the
	// workload.
	StepLimit uint64
}

// DefaultDetectTicks is the monitor detection latency used when
// Config.DetectTicks is zero.
const DefaultDetectTicks = 4

// Event-ordering priorities within one picosecond: transaction effects
// land first, then FU compute completions, then grant decisions — so a
// grant decision always observes every request raised at that instant.
const (
	prioEffect  = 0
	prioCompute = 1
	prioGrant   = 2
)

// Observer receives emulation events as they happen, for custom
// instrumentation beyond the built-in trace (statistics collectors,
// live visualisation, protocol checkers). All callbacks run on the
// simulation goroutine in deterministic order; implementations must
// not retain the emulator's internal state. A nil Observer field
// disables the hooks at zero cost.
type Observer interface {
	// StageStarted fires when a schedule stage becomes eligible.
	StageStarted(order int, atPs int64)
	// TransferGranted fires when a segment arbiter grants its bus
	// (master transfers, border-unit fills and forwards alike).
	TransferGranted(segment int, atPs int64)
	// PackageDelivered fires when a package reaches its destination.
	PackageDelivered(source, target int, pkg int, atPs int64)
}
