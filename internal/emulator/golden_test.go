package emulator_test

// Golden regression values for the paper's main run. These pin the
// calibrated timing model: any change to the emulator's semantics or
// to the MP3 model's constants that shifts these numbers is a
// deliberate recalibration and must update both this test and
// EXPERIMENTS.md.

import (
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/realplat"
)

func TestGoldenThreeSegmentRun(t *testing.T) {
	r, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int64(r.ExecutionTimePs), int64(490386897); got != want {
		t.Errorf("execution time = %dps, want %dps", got, want)
	}
	if got, want := r.CA.TCT, int64(54433); got != want {
		t.Errorf("CA TCT = %d, want %d", got, want)
	}
	wantSA := map[int]int64{1: 26647, 2: 48054, 3: 18720}
	for seg, want := range wantSA {
		if got := r.SA(seg).TCT; got != want {
			t.Errorf("SA%d TCT = %d, want %d", seg, got, want)
		}
	}
	if got, want := int64(r.Process(0).EndPs), int64(70681248); got != want {
		t.Errorf("P0 end = %dps, want %dps", got, want)
	}
	if got, want := int64(r.Process(14).LastReceivePs), int64(490343016); got != want {
		t.Errorf("P14 last receive = %dps, want %dps", got, want)
	}
	if r.BU("BU12").TCT != 2336 || r.BU("BU23").TCT != 146 {
		t.Errorf("BU TCTs = %d/%d, want 2336/146 (exact paper values)",
			r.BU("BU12").TCT, r.BU("BU23").TCT)
	}
}

func TestGoldenAccuracyTriple(t *testing.T) {
	cases := []struct {
		name      string
		s         int
		moveP9    bool
		wantEstPs int64
		wantActPs int64
	}{
		{"s36", 36, false, 490386897, 513008496},
		{"s18", 18, false, 562621059, 608341734},
		{"s36-p9", 36, true, 544981437, 574449876},
	}
	m := apps.MP3Model()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plat := apps.MP3Platform3(c.s)
			if c.moveP9 {
				plat = apps.MP3Platform3MovedP9(c.s)
			}
			est, err := emulator.Run(m, plat, emulator.Config{})
			if err != nil {
				t.Fatal(err)
			}
			act, err := realplat.Run(m, plat, realplat.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if int64(est.ExecutionTimePs) != c.wantEstPs {
				t.Errorf("estimate = %dps, want %dps", int64(est.ExecutionTimePs), c.wantEstPs)
			}
			if int64(act.ExecutionTimePs) != c.wantActPs {
				t.Errorf("actual = %dps, want %dps", int64(act.ExecutionTimePs), c.wantActPs)
			}
		})
	}
}
