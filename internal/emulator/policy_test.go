package emulator_test

import (
	"math/rand"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// contendedModel builds a workload with heavy same-order contention on
// one bus so arbitration decisions matter: four masters streaming to
// four local slaves concurrently.
func contendedModel() (*psdf.Model, *platform.Platform) {
	m := psdf.NewModel("contended")
	for i := 0; i < 4; i++ {
		m.AddFlow(psdf.Flow{
			Source: psdf.ProcessID(i), Target: psdf.ProcessID(i + 4),
			Items: 360, Order: 1, Ticks: 5,
		})
	}
	p := platform.New("one", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2, 3, 4, 5, 6, 7)
	return m, p
}

func TestPoliciesAllComplete(t *testing.T) {
	m, p := contendedModel()
	for _, pol := range []emulator.Policy{
		emulator.PolicyBUFirst, emulator.PolicyFIFO, emulator.PolicyFixedPriority,
	} {
		r, err := emulator.Run(m, p, emulator.Config{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		total := 0
		for _, ps := range r.Processes {
			total += ps.RecvPackages
		}
		if total != 40 {
			t.Errorf("%v: delivered %d packages, want 40", pol, total)
		}
	}
}

func TestFixedPriorityFavoursLowIDs(t *testing.T) {
	m, p := contendedModel()
	fair, err := emulator.Run(m, p, emulator.Config{Policy: emulator.PolicyFIFO})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := emulator.Run(m, p, emulator.Config{Policy: emulator.PolicyFixedPriority})
	if err != nil {
		t.Fatal(err)
	}
	// Under fixed priority, P0's stream finishes no later than under
	// FIFO, and P3 (lowest priority) finishes no earlier.
	if fixed.Process(0).EndPs > fair.Process(0).EndPs {
		t.Errorf("fixed priority delayed the top-priority master: %v vs %v",
			fixed.Process(0).EndPs, fair.Process(0).EndPs)
	}
	if fixed.Process(3).EndPs < fair.Process(3).EndPs {
		t.Errorf("fixed priority advanced the bottom-priority master: %v vs %v",
			fixed.Process(3).EndPs, fair.Process(3).EndPs)
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	m, p := contendedModel()
	for _, pol := range []emulator.Policy{emulator.PolicyFIFO, emulator.PolicyFixedPriority} {
		a, err := emulator.Run(m, p, emulator.Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		b, err := emulator.Run(m, p, emulator.Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%v nondeterministic", pol)
		}
	}
}

func TestPoliciesSatisfyInvariantsOnRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		m := apps.RandomModel(rng, 4, 3, 36)
		p := apps.RandomPlatform(rng, m, 3, 36)
		pol := []emulator.Policy{
			emulator.PolicyBUFirst, emulator.PolicyFIFO, emulator.PolicyFixedPriority,
		}[trial%3]
		r, err := emulator.Run(m, p, emulator.Config{Policy: pol})
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, pol, err)
		}
		invariants(t, pol.String(), m, p, r)
	}
}

func TestDefaultPolicyPreservesGoldenRun(t *testing.T) {
	// The golden three-segment numbers were produced under the default
	// policy; an explicit PolicyBUFirst must match them bit for bit.
	a, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{Policy: emulator.PolicyBUFirst})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("explicit default policy diverges")
	}
}

func TestPolicyString(t *testing.T) {
	if emulator.PolicyBUFirst.String() != "bu-first" ||
		emulator.PolicyFIFO.String() != "fifo" ||
		emulator.PolicyFixedPriority.String() != "fixed-priority" {
		t.Error("policy names wrong")
	}
}
