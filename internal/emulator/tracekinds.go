package emulator

import "segbus/internal/trace"

// Local aliases keep the machine code terse.
const (
	traceCompute  = trace.Compute
	traceTransfer = trace.Transfer
	traceBULoad   = trace.BULoad
	traceBUUnload = trace.BUUnload
	traceBUWait   = trace.BUWait
	traceOverhead = trace.Overhead
)
