package emulator

import (
	"strconv"

	"segbus/internal/obs"
	"segbus/internal/platform"
)

// Metric families recorded by an emulation run. The catalogue is
// documented in DESIGN.md ("Observability"); names follow the
// Prometheus conventions (unit-suffixed, _total for counters).
const (
	metricRuns        = "segbus_emu_runs_total"
	metricEvents      = "segbus_emu_engine_events_total"
	metricGrants      = "segbus_emu_arbiter_grants_total"
	metricDenials     = "segbus_emu_arbiter_denials_total"
	metricContention  = "segbus_emu_bus_contention_wait_ps"
	metricBULoad      = "segbus_emu_bu_load_ticks_total"
	metricBUUnload    = "segbus_emu_bu_unload_ticks_total"
	metricBUWait      = "segbus_emu_bu_wait_ticks_total"
	metricCARequests  = "segbus_emu_ca_requests_total"
	metricDelivered   = "segbus_emu_packages_delivered_total"
	metricSimPsPerSec = "segbus_emu_sim_ps_per_wall_second"
	metricEvPerSec    = "segbus_emu_events_per_wall_second"
)

// contentionBoundsPs buckets the arbitration waiting time (request
// raised to bus granted) in picoseconds: sub-tick, a few ticks, one
// package, several packages — spanning the ~10ns clock periods and
// ~µs package transfers of the paper's platforms.
var contentionBoundsPs = []int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
}

// machineMetrics holds the per-run metric handles, resolved at prime
// so the simulation loop never touches the registry. With a nil
// registry every handle is nil and each update is a single predictable
// branch (the *Trace no-op idiom). The handle slices are reused across
// primes — a pooled machine running without a registry re-primes its
// metrics with zero allocations once the slices reached the platform's
// size.
type machineMetrics struct {
	enabled bool

	runs       *obs.Counter
	events     *obs.Counter
	caRequests *obs.Counter
	delivered  *obs.Counter
	simRate    *obs.Gauge
	evRate     *obs.Gauge

	grants     []*obs.Counter // index 0 = segment 1
	denials    []*obs.Counter
	contention []*obs.Histogram

	buLoad   []*obs.Counter // index 0 = BU.Left 1
	buUnload []*obs.Counter
	buWait   []*obs.Counter
}

// init resolves every handle the machine updates. reg may be nil
// (metrics disabled).
func (mm *machineMetrics) init(reg *obs.Registry, plat *platform.Platform, policy Policy) {
	mm.enabled = reg != nil
	mm.runs = reg.Counter(metricRuns)
	mm.events = reg.Counter(metricEvents)
	mm.caRequests = reg.Counter(metricCARequests)
	mm.delivered = reg.Counter(metricDelivered)
	mm.simRate = reg.VolatileGauge(metricSimPsPerSec)
	mm.evRate = reg.VolatileGauge(metricEvPerSec)
	if reg != nil {
		reg.Describe(metricRuns, "emulation runs recorded into this registry")
		reg.Describe(metricEvents, "discrete events processed by the simulation kernel")
		reg.Describe(metricGrants, "bus grants issued by the segment arbiters")
		reg.Describe(metricDenials, "arbitration rounds deferred because the segment bus was busy")
		reg.Describe(metricContention, "waiting time from bus request to grant, picoseconds")
		reg.Describe(metricBULoad, "border-unit buffer load occupancy, segment clock ticks")
		reg.Describe(metricBUUnload, "border-unit buffer unload occupancy, segment clock ticks")
		reg.Describe(metricBUWait, "border-unit waiting periods (WP), receiving-clock ticks")
		reg.Describe(metricCARequests, "inter-segment transfer requests received by the central arbiter")
		reg.Describe(metricDelivered, "packages delivered to their destination")
		reg.Describe(metricSimPsPerSec, "simulated picoseconds advanced per wall-clock second (volatile)")
		reg.Describe(metricEvPerSec, "kernel events dispatched per wall-clock second (volatile)")
	}
	pol := policy.String()
	nSeg := plat.NumSegments()
	mm.grants = grown(mm.grants, nSeg)
	mm.denials = grown(mm.denials, nSeg)
	mm.contention = grown(mm.contention, nSeg)
	for i, seg := range plat.Segments {
		if reg == nil {
			mm.grants[i], mm.denials[i], mm.contention[i] = nil, nil, nil
			continue
		}
		segLabel := strconv.Itoa(seg.Index)
		mm.grants[i] = reg.Counter(metricGrants, "policy", pol, "segment", segLabel)
		mm.denials[i] = reg.Counter(metricDenials, "policy", pol, "segment", segLabel)
		mm.contention[i] = reg.Histogram(metricContention, contentionBoundsPs, "segment", segLabel)
	}
	bus := plat.BUs()
	mm.buLoad = grown(mm.buLoad, len(bus))
	mm.buUnload = grown(mm.buUnload, len(bus))
	mm.buWait = grown(mm.buWait, len(bus))
	for i, bu := range bus {
		if reg == nil {
			mm.buLoad[i], mm.buUnload[i], mm.buWait[i] = nil, nil, nil
			continue
		}
		mm.buLoad[i] = reg.Counter(metricBULoad, "bu", bu.Name())
		mm.buUnload[i] = reg.Counter(metricBUUnload, "bu", bu.Name())
		mm.buWait[i] = reg.Counter(metricBUWait, "bu", bu.Name())
	}
}
