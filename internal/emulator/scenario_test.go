package emulator_test

// Edge-case scenarios exercising corners of the platform protocol.

import (
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// TestBidirectionalBUTraffic drives packages through the same border
// unit in both directions within one stage: the two depth-one buffers
// are independent, so neither direction can block the other.
func TestBidirectionalBUTraffic(t *testing.T) {
	m := psdf.NewModel("bidir")
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 360, Order: 1, Ticks: 10})
	m.AddFlow(psdf.Flow{Source: 3, Target: 1, Items: 360, Order: 1, Ticks: 10})
	p := platform.New("two", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	p.AddSegment(100*platform.MHz, 2, 3)
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bu := r.BU("BU12")
	if bu.RecvFromLeft != 10 || bu.RecvFromRight != 10 {
		t.Errorf("directional counts = %d/%d, want 10/10", bu.RecvFromLeft, bu.RecvFromRight)
	}
	if bu.SentToRight != 10 || bu.SentToLeft != 10 {
		t.Errorf("directional sends = %d/%d", bu.SentToRight, bu.SentToLeft)
	}
	if r.Process(1).RecvPackages != 10 || r.Process(2).RecvPackages != 10 {
		t.Error("deliveries incomplete")
	}
}

// TestZeroTickFlows run back-to-back transfers with no processing
// time: pure bus saturation.
func TestZeroTickFlows(t *testing.T) {
	m := psdf.NewModel("zero")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 360, Order: 1, Ticks: 0})
	m.AddFlow(psdf.Flow{Source: 2, Target: 3, Items: 360, Order: 1, Ticks: 0})
	p := platform.New("one", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2, 3)
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 20 transfers of 36 ticks on one 100 MHz bus: the bus is the
	// only resource, so the end cannot be earlier than 720 ticks.
	if r.EndPs < 720*10000 {
		t.Errorf("end %v earlier than bus capacity allows", r.EndPs)
	}
	if r.Process(1).RecvPackages != 10 || r.Process(3).RecvPackages != 10 {
		t.Error("deliveries incomplete")
	}
}

// TestPackageLargerThanFlow uses a package size exceeding every
// flow's item count: every flow is one (partial) package.
func TestPackageLargerThanFlow(t *testing.T) {
	m := psdf.NewModel("big-pkg")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 7, Order: 1, Ticks: 4})
	p := platform.New("two", 100*platform.MHz, 1024)
	p.AddSegment(100*platform.MHz, 0)
	p.AddSegment(100*platform.MHz, 1)
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bu := r.BU("BU12")
	if bu.InPackages != 1 || bu.LoadTicks != 7 || bu.UnloadTicks != 7 {
		t.Errorf("partial package accounting: %+v", bu)
	}
}

// TestManySegmentsChain pushes one flow across a seven-segment chain:
// six hops, each border unit carries the package exactly once.
func TestManySegmentsChain(t *testing.T) {
	m := psdf.NewModel("long")
	m.AddFlow(psdf.Flow{Source: 0, Target: 6, Items: 36, Order: 1, Ticks: 5})
	for i := 1; i < 6; i++ {
		// Keep intermediate processes meaningful: each receives a
		// trickle from the source in an earlier stage... simpler: give
		// each a later flow from P6 so every process participates.
		m.AddFlow(psdf.Flow{Source: 6, Target: psdf.ProcessID(i), Items: 36, Order: 1 + i, Ticks: 2})
	}
	p := platform.New("chain", 100*platform.MHz, 36)
	for i := 0; i < 7; i++ {
		p.AddSegment(100*platform.MHz, psdf.ProcessID(i))
	}
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BU12", "BU23", "BU34", "BU45", "BU56", "BU67"} {
		bu := r.BU(name)
		if bu == nil {
			t.Fatalf("missing %s", name)
		}
		if bu.InPackages < 1 {
			t.Errorf("%s carried nothing", name)
		}
	}
	// The P0 -> P6 package crossed every unit rightward exactly once.
	if got := r.BU("BU34").RecvFromLeft; got != 1 {
		t.Errorf("BU34 rightward = %d, want 1", got)
	}
	if r.Process(6).RecvPackages != 1 {
		t.Error("P6 never received")
	}
}

// TestSlowCAClock runs the CA far slower than the segments: the
// execution-time formula (max over arbiters) must still hold, with
// the CA dominating by construction.
func TestSlowCAClock(t *testing.T) {
	m := psdf.NewModel("slow-ca")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 10})
	p := platform.New("p", 1*platform.MHz, 36) // 1 MHz CA
	p.AddSegment(500*platform.MHz, 0)
	p.AddSegment(500*platform.MHz, 1)
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExecutionTimePs != r.CA.ExecTimePs {
		t.Errorf("slow CA must dominate: %v vs %v", r.ExecutionTimePs, r.CA.ExecTimePs)
	}
	for _, sa := range r.SAs {
		if sa.ExecTimePs > r.ExecutionTimePs {
			t.Error("execution time below an SA's")
		}
	}
}

// TestFastCAHopCost checks the CA chain set-up scales with hop count.
func TestFastCAHopCost(t *testing.T) {
	build := func(nseg int) (*psdf.Model, *platform.Platform) {
		m := psdf.NewModel("hops")
		m.AddFlow(psdf.Flow{Source: 0, Target: psdf.ProcessID(nseg - 1), Items: 36, Order: 1, Ticks: 5})
		for i := 1; i < nseg-1; i++ {
			m.AddFlow(psdf.Flow{Source: 0, Target: psdf.ProcessID(i), Items: 36, Order: 1 + i, Ticks: 5})
		}
		p := platform.New("p", 100*platform.MHz, 36)
		p.CAHopTicks = 40
		for i := 0; i < nseg; i++ {
			p.AddSegment(100*platform.MHz, psdf.ProcessID(i))
		}
		return m, p
	}
	m2, p2 := build(2)
	m4, p4 := build(4)
	r2, err := emulator.Run(m2, p2, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := emulator.Run(m4, p4, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The long-haul flow's delivery in the 4-segment platform pays 3
	// hops of CA set-up plus 3 forwards; its delivery time must
	// exceed the 2-segment one's by at least those costs.
	d2 := r2.Process(1).LastReceivePs
	d4 := r4.Process(3).LastReceivePs
	if d4 <= d2 {
		t.Errorf("multi-hop delivery %v not later than single-hop %v", d4, d2)
	}
}

// TestTwoFlowsSameTargetSameOrder exercises slave-side merging: two
// masters feed one slave concurrently.
func TestTwoFlowsSameTargetSameOrder(t *testing.T) {
	m := psdf.NewModel("merge")
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 180, Order: 1, Ticks: 20})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 180, Order: 1, Ticks: 20})
	p := platform.New("one", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2)
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Process(2).RecvPackages != 10 {
		t.Errorf("merged %d packages, want 10", r.Process(2).RecvPackages)
	}
}

// TestNegativeConfigRejected guards the Config surface.
func TestRefinedFlagOnlyWhenOverheadsSet(t *testing.T) {
	m := psdf.NewModel("r")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 1})
	p := platform.New("one", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	a, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Refined {
		t.Error("estimation run flagged refined")
	}
}

// TestRepeatedFramesScaleLinearly emulates one, two and four frames of
// the MP3 decoder: with frame-serial schedules, execution time scales
// close to linearly (small constant offsets from the start-up and the
// monitor's detection latency).
func TestRepeatedFramesScaleLinearly(t *testing.T) {
	m1 := apps.MP3Model()
	p := apps.MP3Platform3(36)
	r1, err := emulator.Run(m1, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		mn, err := psdf.Repeat(m1, n)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := emulator.Run(mn, p, emulator.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(rn.ExecutionTimePs) / float64(r1.ExecutionTimePs)
		if ratio < 0.95*float64(n) || ratio > 1.05*float64(n) {
			t.Errorf("%d frames scaled %.3fx, want ~%dx", n, ratio, n)
		}
		if got, want := rn.CA.InterRequests, n*r1.CA.InterRequests; got != want {
			t.Errorf("%d frames: CA requests %d, want %d", n, got, want)
		}
	}
}

// TestStageStatsMP3 checks the 16 stages of the paper's schedule are
// contiguous and ordered.
func TestStageStatsMP3(t *testing.T) {
	r, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 16 {
		t.Fatalf("stages = %d, want 16", len(r.Stages))
	}
	total := 0
	for i, st := range r.Stages {
		total += st.Packages
		if st.EndPs <= st.StartPs && st.Packages > 0 {
			t.Errorf("stage %d has no duration", i)
		}
		if i > 0 && st.StartPs != r.Stages[i-1].EndPs {
			t.Errorf("stage %d not contiguous", i)
		}
	}
	if total != 224 {
		t.Errorf("stage packages sum to %d, want 224", total)
	}
}
