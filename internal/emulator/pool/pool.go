// Package pool keeps warm emulator machines between runs so repeated
// emulations skip per-run machine construction: a checkout returns a
// machine whose flat element arrays, bound handlers, kernel slots and
// queues are already sized for a similar platform shape, and
// Machine.Run reconfigures it in place.
//
// The pool began life inside internal/serve as the leader path's
// construction-cost killer; it lives here so every repeated-emulation
// workload — the serving stack, the design-space explorer, the sweep
// curves — shares one implementation instead of constructing fresh
// machines per candidate.
//
// Correctness never depends on the pool: Machine.Run rebuilds every
// piece of run-affecting state from the request's own models, and the
// reuse battery (emulator reuse tests, the conform `pooled` oracle,
// the serve differential) pins warm output byte-identical to fresh.
// The pool therefore only decides how often storage is reused, which
// is why machines are binned by a cheap structural shape key — a
// checkout for a matching shape reuses allocations at their final
// size instead of re-growing them.
//
// Machines are Reset on the way in (Put), not the way out, so a
// checkout is a slice pop and the pool never stores a dirty machine —
// a run that failed, deadlocked or hit its step limit returns through
// the same Reset as a clean one.
package pool

import (
	"strconv"
	"sync"

	"segbus/internal/emulator"
	"segbus/internal/obs"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// DefaultPerKey bounds the free list of one shape: enough to keep
// every worker of a typical pool warm on a hot shape without
// hoarding.
const DefaultPerKey = 4

// DefaultMaxShapes bounds the number of distinct shapes binned at
// once; a design-space sweep touches a handful of platform shapes, so
// 64 covers real workloads while capping worst-case retained memory.
const DefaultMaxShapes = 64

// Options tunes a Pool. The counter handles are nil-safe; a zero
// Options selects the default bounds with no metrics.
type Options struct {
	// PerKey bounds the free machines kept per shape; <= 0 selects
	// DefaultPerKey.
	PerKey int

	// MaxShapes bounds the distinct shapes binned before new ones are
	// discarded; <= 0 selects DefaultMaxShapes.
	MaxShapes int

	// Hits / Misses / Discards receive the checkout accounting:
	// hits + misses equals machines handed out, discards counts
	// returned machines dropped because a bound was reached.
	Hits, Misses, Discards *obs.Counter
}

// Pool is a bounded free list of warm emulator machines binned by
// platform shape. Safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	free   map[string][]*emulator.Machine
	shapes int // distinct keys currently binned

	perKey    int
	maxShapes int

	hits, misses, discards *obs.Counter // nil-safe handles
}

// New returns an empty pool with the given bounds and metric handles.
func New(o Options) *Pool {
	if o.PerKey <= 0 {
		o.PerKey = DefaultPerKey
	}
	if o.MaxShapes <= 0 {
		o.MaxShapes = DefaultMaxShapes
	}
	return &Pool{
		free:      make(map[string][]*emulator.Machine),
		perKey:    o.PerKey,
		maxShapes: o.MaxShapes,
		hits:      o.Hits,
		misses:    o.Misses,
		discards:  o.Discards,
	}
}

// ShapeKey bins a request by the structural sizes that drive the
// machine's storage: segment count, per-segment FU counts and flow
// count. Two requests with equal keys allocate identically-shaped
// arenas, so reusing across them is maximally effective; unequal keys
// still reuse correctly (Machine.Run regrows in place), they just
// share no bin.
func ShapeKey(m *psdf.Model, plat *platform.Platform) string {
	b := make([]byte, 0, 48)
	b = strconv.AppendInt(b, int64(plat.NumSegments()), 10)
	for _, seg := range plat.Segments {
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(len(seg.FUs)), 10)
	}
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(m.NumFlows()), 10)
	return string(b)
}

// Get checks out a machine for the given shape, reporting whether it
// was a pool hit (warm machine) or a miss (freshly constructed).
func (p *Pool) Get(key string) (*emulator.Machine, bool) {
	p.mu.Lock()
	if ms := p.free[key]; len(ms) > 0 {
		mc := ms[len(ms)-1]
		ms[len(ms)-1] = nil
		p.free[key] = ms[:len(ms)-1]
		p.mu.Unlock()
		p.hits.Inc()
		return mc, true
	}
	p.mu.Unlock()
	p.misses.Inc()
	return emulator.NewMachine(), false
}

// Put returns a machine to its shape's free list, resetting it first
// so the pool only ever holds clean machines. A full free list or an
// exhausted shape budget discards the machine to the GC instead.
func (p *Pool) Put(key string, mc *emulator.Machine) {
	mc.Reset()
	p.mu.Lock()
	ms, ok := p.free[key]
	if !ok && p.shapes >= p.maxShapes {
		p.mu.Unlock()
		p.discards.Inc()
		return
	}
	if len(ms) >= p.perKey {
		p.mu.Unlock()
		p.discards.Inc()
		return
	}
	if !ok {
		p.shapes++
	}
	p.free[key] = append(ms, mc)
	p.mu.Unlock()
}

// Stats returns the pool's current occupancy (shapes binned, machines
// free) for tests and health endpoints.
func (p *Pool) Stats() (shapes, machines int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ms := range p.free {
		machines += len(ms)
	}
	return p.shapes, machines
}
