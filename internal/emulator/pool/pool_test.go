package pool

// Contract tests for the extracted machine pool: checkout accounting
// with raw counter handles, nil-safe metrics, default bounds and the
// shape-budget discard path. The serving-layer behavior (byte
// identity under concurrency, reconciliation against emulations) stays
// pinned by internal/serve's pool tests.

import (
	"sync"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/obs"
)

func TestDefaults(t *testing.T) {
	p := New(Options{})
	if p.perKey != DefaultPerKey || p.maxShapes != DefaultMaxShapes {
		t.Errorf("zero Options gave bounds %d/%d, want defaults %d/%d",
			p.perKey, p.maxShapes, DefaultPerKey, DefaultMaxShapes)
	}
	// Nil counter handles must be safe: a full get/put cycle with no
	// metrics wired may not panic.
	mc, warm := p.Get("k")
	if warm {
		t.Fatal("empty pool reported a hit")
	}
	p.Put("k", mc)
	if _, warm := p.Get("k"); !warm {
		t.Fatal("pooled machine not returned")
	}
}

func TestShapeKeyStructural(t *testing.T) {
	m := apps.MP3Model()
	k3 := ShapeKey(m, apps.MP3Platform3(36))
	if k2 := ShapeKey(m, apps.MP3Platform2(36)); k2 == k3 {
		t.Errorf("different platform shapes share key %q", k3)
	}
	if k := ShapeKey(m, apps.MP3Platform3(48)); k != k3 {
		t.Error("package size changed the shape key; storage shape is size-independent")
	}
}

func TestCountersAndBounds(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter("pool_hits")
	misses := reg.Counter("pool_misses")
	discards := reg.Counter("pool_discards")
	p := New(Options{PerKey: 2, MaxShapes: 1, Hits: hits, Misses: misses, Discards: discards})

	// Fill shape "a" to its per-key cap, then overflow it by one.
	a1, _ := p.Get("a")
	a2, _ := p.Get("a")
	a3, _ := p.Get("a")
	p.Put("a", a1)
	p.Put("a", a2)
	p.Put("a", a3) // over PerKey → discard
	if got := discards.Value(); got != 1 {
		t.Errorf("discards after per-key overflow = %d, want 1", got)
	}

	// A second shape exceeds MaxShapes → discard, shape not binned.
	b1, _ := p.Get("b")
	p.Put("b", b1)
	if got := discards.Value(); got != 2 {
		t.Errorf("discards after shape-budget overflow = %d, want 2", got)
	}
	shapes, machines := p.Stats()
	if shapes != 1 || machines != 2 {
		t.Errorf("Stats() = (%d shapes, %d machines), want (1, 2)", shapes, machines)
	}
	if hits.Value() != 0 || misses.Value() != 4 {
		t.Errorf("hits=%d misses=%d after four cold checkouts", hits.Value(), misses.Value())
	}
	if _, warm := p.Get("a"); !warm {
		t.Fatal("warm checkout missed")
	}
	if hits.Value() != 1 {
		t.Errorf("hits=%d after one warm checkout", hits.Value())
	}
}

// TestConcurrentCheckout exercises the lock under contention; run
// under -race by the suite.
func TestConcurrentCheckout(t *testing.T) {
	p := New(Options{PerKey: 4, MaxShapes: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := []string{"x", "y"}[g%2]
			for i := 0; i < 50; i++ {
				mc, _ := p.Get(key)
				p.Put(key, mc)
			}
		}(g)
	}
	wg.Wait()
	shapes, _ := p.Stats()
	if shapes > 8 {
		t.Errorf("shape budget exceeded: %d", shapes)
	}
}
