package emulator_test

// Property tests: randomly generated layered applications on randomly
// generated platforms must run to completion and satisfy the
// conservation laws of the platform protocol.

import (
	"fmt"
	"math/rand"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// invariants checks the conservation laws one report must satisfy for
// its model and platform.
func invariants(t *testing.T, label string, m *psdf.Model, plat *platform.Platform, r *emulator.Report) {
	t.Helper()
	sch, err := sched.Extract(m, plat.PackageSize)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}

	// Every package sent, exactly once per flow package.
	wantSent := make(map[psdf.ProcessID]int)
	wantRecv := make(map[psdf.ProcessID]int)
	for i := range sch.Flows() {
		f := sch.Flow(sched.FlowID(i))
		pk := sch.Packages(sched.FlowID(i))
		wantSent[f.Source] += pk
		if f.Target != psdf.SystemOutput {
			wantRecv[f.Target] += pk
		}
	}
	for _, ps := range r.Processes {
		if ps.SentPackages != wantSent[ps.Process] {
			t.Errorf("%s: %v sent %d packages, want %d", label, ps.Process, ps.SentPackages, wantSent[ps.Process])
		}
		if ps.RecvPackages != wantRecv[ps.Process] {
			t.Errorf("%s: %v received %d packages, want %d", label, ps.Process, ps.RecvPackages, wantRecv[ps.Process])
		}
	}

	// Border units conserve packages and account UP <= TCT.
	for _, bu := range r.BUs {
		if bu.InPackages != bu.OutPackages {
			t.Errorf("%s: %s in %d != out %d", label, bu.Name, bu.InPackages, bu.OutPackages)
		}
		if bu.RecvFromLeft != bu.SentToRight || bu.RecvFromRight != bu.SentToLeft {
			t.Errorf("%s: %s direction counters inconsistent: %+v", label, bu.Name, bu)
		}
		if got := bu.LoadTicks + bu.UnloadTicks + bu.WaitTicks; got != bu.TCT {
			t.Errorf("%s: %s TCT %d != load+unload+wait %d", label, bu.Name, bu.TCT, got)
		}
		if bu.WaitTicks < 0 {
			t.Errorf("%s: %s negative wait", label, bu.Name)
		}
	}

	// Expected border-unit crossings per flow route.
	wantCross := make(map[string]int)
	for i := range sch.Flows() {
		f := sch.Flow(sched.FlowID(i))
		if f.Target == psdf.SystemOutput {
			continue
		}
		src, dst := plat.SegmentOf(f.Source), plat.SegmentOf(f.Target)
		route, _ := plat.Route(src, dst)
		for _, bu := range route {
			wantCross[bu.Name()] += sch.Packages(sched.FlowID(i))
		}
	}
	for _, bu := range r.BUs {
		if bu.InPackages != wantCross[bu.Name] {
			t.Errorf("%s: %s carried %d packages, route analysis says %d", label, bu.Name, bu.InPackages, wantCross[bu.Name])
		}
	}

	// The CA saw one request per inter-segment package.
	wantInter := 0
	for i := range sch.Flows() {
		f := sch.Flow(sched.FlowID(i))
		if f.Target == psdf.SystemOutput {
			continue
		}
		if plat.SegmentOf(f.Source) != plat.SegmentOf(f.Target) {
			wantInter += sch.Packages(sched.FlowID(i))
		}
	}
	if r.CA.InterRequests != wantInter {
		t.Errorf("%s: CA requests %d, want %d", label, r.CA.InterRequests, wantInter)
	}

	// Segment origin counters match inter-segment sends by direction.
	var sumDir int
	for _, s := range r.Segments {
		sumDir += s.ToLeft + s.ToRight
	}
	if sumDir != wantInter {
		t.Errorf("%s: segment direction counters sum %d, want %d", label, sumDir, wantInter)
	}

	// Execution time is the max over arbiters and at least the CA's.
	if r.ExecutionTimePs < r.CA.ExecTimePs {
		t.Errorf("%s: execution %v below CA %v", label, r.ExecutionTimePs, r.CA.ExecTimePs)
	}
	for _, sa := range r.SAs {
		if r.ExecutionTimePs < sa.ExecTimePs {
			t.Errorf("%s: execution %v below SA%d %v", label, r.ExecutionTimePs, sa.Segment, sa.ExecTimePs)
		}
		if sa.TCT < 0 {
			t.Errorf("%s: SA%d negative TCT", label, sa.Segment)
		}
	}
	if r.EndPs <= 0 {
		t.Errorf("%s: empty execution", label)
	}
}

func TestRandomModelsSatisfyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		pkg := []int{9, 18, 36, 72}[rng.Intn(4)]
		m := apps.RandomModel(rng, 5, 4, pkg)
		plat := apps.RandomPlatform(rng, m, 4, pkg)
		plat.HeaderTicks = rng.Intn(20)
		plat.CAHopTicks = rng.Intn(20)
		label := fmt.Sprintf("trial %d (s=%d, %d procs, %d segs)", trial, pkg, m.NumProcesses(), plat.NumSegments())
		r, err := emulator.Run(m, plat, emulator.Config{})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		invariants(t, label, m, plat, r)
	}
}

func TestRandomModelsRefinedNeverFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	ov := emulator.Overheads{GrantTicks: 3, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2}
	for trial := 0; trial < 40; trial++ {
		m := apps.RandomModel(rng, 4, 3, 36)
		plat := apps.RandomPlatform(rng, m, 3, 36)
		base, err := emulator.Run(m, plat, emulator.Config{})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := emulator.Run(m, plat, emulator.Config{Overheads: ov})
		if err != nil {
			t.Fatal(err)
		}
		if refined.ExecutionTimePs < base.ExecutionTimePs {
			t.Errorf("trial %d: refined %v faster than estimation %v", trial, refined.ExecutionTimePs, base.ExecutionTimePs)
		}
	}
}

func TestRandomModelsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		m := apps.RandomModel(rng, 4, 3, 18)
		plat := apps.RandomPlatform(rng, m, 3, 18)
		a, err := emulator.Run(m, plat, emulator.Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := emulator.Run(m, plat, emulator.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() || a.Steps != b.Steps {
			t.Fatalf("trial %d: nondeterministic emulation", trial)
		}
	}
}

func TestSingleSegmentHasNoInterTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := apps.RandomModel(rng, 4, 3, 36)
		plat := apps.RandomPlatform(rng, m, 1, 36)
		r, err := emulator.Run(m, plat, emulator.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.BUs) != 0 {
			t.Fatal("single-segment platform has border units")
		}
		if r.CA.InterRequests != 0 {
			t.Errorf("trial %d: single segment saw %d CA requests", trial, r.CA.InterRequests)
		}
	}
}

// TestLargeStress runs a big synthetic system through the emulator:
// dozens of processes across six segments with thousands of packages.
func TestLargeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(4242))
	m := psdf.NewModel("stress")
	// Ten layers of five processes, densely connected layer to layer.
	const layers, width = 10, 5
	order := 1
	for l := 1; l < layers; l++ {
		for w := 0; w < width; w++ {
			dst := psdf.ProcessID(l*width + w)
			for k := 0; k < 2; k++ {
				src := psdf.ProcessID((l-1)*width + rng.Intn(width))
				m.AddFlow(psdf.Flow{
					Source: src, Target: dst,
					Items: 36 * (1 + rng.Intn(8)),
					Order: order, Ticks: rng.Intn(100),
				})
				order++
			}
		}
	}
	plat := apps.RandomPlatform(rng, m, 6, 36)
	plat.HeaderTicks = 10
	plat.CAHopTicks = 10
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	invariants(t, "stress", m, plat, r)
	if r.Steps < 1000 {
		t.Errorf("suspiciously small run: %d steps", r.Steps)
	}
}
