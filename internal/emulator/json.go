package emulator

import (
	"encoding/json"
	"fmt"
)

// reportJSON is the stable JSON export shape of a Report, for
// consumption by external dashboards and regression tooling. Times are
// integer picoseconds; the structure is versioned so consumers can
// detect format changes.
type reportJSON struct {
	Version         int         `json:"version"`
	Platform        string      `json:"platform"`
	PackageSize     int         `json:"package_size"`
	Refined         bool        `json:"refined"`
	ExecutionTimePs int64       `json:"execution_time_ps"`
	EndPs           int64       `json:"end_ps"`
	CA              caJSON      `json:"ca"`
	SAs             []saJSON    `json:"sas"`
	BUs             []buJSON    `json:"bus"`
	Segments        []segJSON   `json:"segments"`
	Processes       []procJSON  `json:"processes"`
	Stages          []stageJSON `json:"stages"`
}

type caJSON struct {
	ClockHz       int64 `json:"clock_hz"`
	TCT           int64 `json:"tct"`
	InterRequests int   `json:"inter_requests"`
	ExecTimePs    int64 `json:"exec_time_ps"`
}

type saJSON struct {
	Segment       int   `json:"segment"`
	ClockHz       int64 `json:"clock_hz"`
	TCT           int64 `json:"tct"`
	IntraRequests int   `json:"intra_requests"`
	InterRequests int   `json:"inter_requests"`
	ExecTimePs    int64 `json:"exec_time_ps"`
}

type buJSON struct {
	Name          string `json:"name"`
	InPackages    int    `json:"in_packages"`
	OutPackages   int    `json:"out_packages"`
	RecvFromLeft  int    `json:"recv_from_left"`
	SentToLeft    int    `json:"sent_to_left"`
	RecvFromRight int    `json:"recv_from_right"`
	SentToRight   int    `json:"sent_to_right"`
	TCT           int64  `json:"tct"`
	LoadTicks     int64  `json:"load_ticks"`
	UnloadTicks   int64  `json:"unload_ticks"`
	WaitTicks     int64  `json:"wait_ticks"`
}

type segJSON struct {
	Segment int `json:"segment"`
	ToLeft  int `json:"to_left"`
	ToRight int `json:"to_right"`
}

type procJSON struct {
	Process       string `json:"process"`
	Segment       int    `json:"segment"`
	StartPs       int64  `json:"start_ps"`
	EndPs         int64  `json:"end_ps"`
	SentPackages  int    `json:"sent_packages"`
	RecvPackages  int    `json:"recv_packages"`
	LastReceivePs int64  `json:"last_receive_ps"`
}

type stageJSON struct {
	Order    int   `json:"order"`
	Packages int   `json:"packages"`
	StartPs  int64 `json:"start_ps"`
	EndPs    int64 `json:"end_ps"`
}

// JSON renders the report as a versioned JSON document.
func (r *Report) JSON() ([]byte, error) {
	doc := reportJSON{
		Version:         1,
		Platform:        r.Platform,
		PackageSize:     r.PackageSize,
		Refined:         r.Refined,
		ExecutionTimePs: int64(r.ExecutionTimePs),
		EndPs:           int64(r.EndPs),
		CA: caJSON{
			ClockHz:       int64(r.CA.Clock),
			TCT:           r.CA.TCT,
			InterRequests: r.CA.InterRequests,
			ExecTimePs:    int64(r.CA.ExecTimePs),
		},
	}
	for _, sa := range r.SAs {
		doc.SAs = append(doc.SAs, saJSON{
			Segment:       sa.Segment,
			ClockHz:       int64(sa.Clock),
			TCT:           sa.TCT,
			IntraRequests: sa.IntraRequests,
			InterRequests: sa.InterRequests,
			ExecTimePs:    int64(sa.ExecTimePs),
		})
	}
	for _, bu := range r.BUs {
		doc.BUs = append(doc.BUs, buJSON{
			Name:          bu.Name,
			InPackages:    bu.InPackages,
			OutPackages:   bu.OutPackages,
			RecvFromLeft:  bu.RecvFromLeft,
			SentToLeft:    bu.SentToLeft,
			RecvFromRight: bu.RecvFromRight,
			SentToRight:   bu.SentToRight,
			TCT:           bu.TCT,
			LoadTicks:     bu.LoadTicks,
			UnloadTicks:   bu.UnloadTicks,
			WaitTicks:     bu.WaitTicks,
		})
	}
	for _, s := range r.Segments {
		doc.Segments = append(doc.Segments, segJSON{Segment: s.Segment, ToLeft: s.ToLeft, ToRight: s.ToRight})
	}
	for _, p := range r.Processes {
		doc.Processes = append(doc.Processes, procJSON{
			Process:       p.Process.String(),
			Segment:       p.Segment,
			StartPs:       int64(p.StartPs),
			EndPs:         int64(p.EndPs),
			SentPackages:  p.SentPackages,
			RecvPackages:  p.RecvPackages,
			LastReceivePs: int64(p.LastReceivePs),
		})
	}
	for _, st := range r.Stages {
		doc.Stages = append(doc.Stages, stageJSON{
			Order:    st.Order,
			Packages: st.Packages,
			StartPs:  int64(st.StartPs),
			EndPs:    int64(st.EndPs),
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("emulator: encoding report JSON: %w", err)
	}
	return data, nil
}
