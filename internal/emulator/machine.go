package emulator

import (
	"fmt"

	"time"

	"segbus/internal/engine"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// Run emulates application model m on platform plat and returns the
// monitoring report. The model, the platform and their mapping are
// validated first; any violation aborts the run.
//
// Run constructs a fresh machine per call. Callers that emulate
// repeatedly should hold a reusable Machine instead — same code path,
// but the arena storage survives between runs.
func Run(m *psdf.Model, plat *platform.Platform, cfg Config) (*Report, error) {
	return NewMachine().Run(m, plat, cfg)
}

// Machine is a reusable emulation arena. A Machine owns the flat
// element-state arrays, the event kernel and the bound handlers of one
// emulation instance; running a model primes those arrays in place, so
// a warm Machine emulates without rebuilding per-element storage or
// closures. The zero value is not usable; construct with NewMachine.
//
// A Machine is not safe for concurrent use: one emulation at a time.
// Reuse across runs is exact — a report produced by a warm Machine is
// byte-identical to one produced by a fresh machine for the same
// inputs (pinned by the conform `pooled` oracle and the reuse
// differential battery).
type Machine struct {
	mc machine
}

// NewMachine returns an empty machine arena. The first Run sizes the
// arrays to the model and platform; later runs reuse that storage,
// growing only when a larger shape arrives.
func NewMachine() *Machine {
	return &Machine{mc: machine{sim: engine.NewSim()}}
}

// Run emulates application model m on platform plat on this machine's
// arena and returns the monitoring report. Semantics are identical to
// the package-level Run; only the storage is reused. Run re-primes the
// machine from scratch, so it is total even after a previous run
// failed or was abandoned mid-flight.
func (x *Machine) Run(m *psdf.Model, plat *platform.Platform, cfg Config) (*Report, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := plat.ValidateMapping(m); err != nil {
		return nil, err
	}
	if err := plat.ValidateRoles(m); err != nil {
		return nil, err
	}
	sch, err := sched.Extract(m, plat.PackageSize)
	if err != nil {
		return nil, err
	}
	if err := x.mc.prime(plat, sch, m.NominalPackageSize(), cfg); err != nil {
		return nil, err
	}
	return x.mc.run()
}

// Reset returns the machine to its post-prime state — queues empty,
// counters zero, the event kernel at time zero — without touching the
// arena storage: once warm it performs no allocations (pinned by
// TestMachineResetAllocs). Reset is total: it restores a machine whose
// last run failed, deadlocked or was abandoned mid-flight just as well
// as one that completed. Resetting a machine that never ran is a
// no-op.
//
// Reset is not required before Run — priming subsumes it — but pools
// reset machines on check-in so a dirty run can never leak state into
// the next checkout.
func (x *Machine) Reset() { x.mc.reset() }

// validateConfig rejects configurations the machine cannot honour.
func validateConfig(cfg Config) error {
	o := cfg.Overheads
	if o.GrantTicks < 0 || o.SyncTicks < 0 || o.CASetTicks < 0 || o.CAResetTicks < 0 {
		return fmt.Errorf("emulator: negative overhead ticks in %+v", o)
	}
	if cfg.DetectTicks < 0 {
		return fmt.Errorf("emulator: negative detect ticks %d", cfg.DetectTicks)
	}
	switch cfg.Policy {
	case PolicyBUFirst, PolicyFIFO, PolicyFixedPriority:
	default:
		return fmt.Errorf("emulator: unknown arbitration policy %d", int(cfg.Policy))
	}
	return nil
}

// emitEntry is one package emission in a functional unit's program.
type emitEntry struct {
	flow sched.FlowID
	pkg  int // 1-based package index within the flow
	need int // input packages the process must have received first
}

// Element state lives in parallel flat slices — static configuration,
// dynamic run state and bound handlers — rather than one heap node per
// element. The split keeps the per-run mutable state contiguous and
// trivially zeroable (reset is a memclr sweep, not a pointer chase),
// and the handlers capture (machine, index) pairs instead of element
// pointers, so the arrays may be reallocated on growth without
// invalidating a single closure.

// fuStatic is the per-prime configuration of one functional unit (one
// hosted process). program keeps its capacity across primes.
type fuStatic struct {
	proc    psdf.ProcessID
	seg     int // hosting segment, 1-based
	program []emitEntry
}

// fuDyn is the per-run mutable state of one functional unit. The zero
// value is the post-prime state.
type fuDyn struct {
	next     int // next program entry (claimed when compute starts)
	received int
	sent     int
	busy     bool
	started  bool
	gotRecv  bool
	startPs  engine.Time
	endPs    engine.Time
	lastRecv engine.Time

	// In-flight emission context. An FU has at most one emission in
	// flight (busy gates advanceFU until deliver), so the bound
	// handlers read these fields at fire time instead of capturing
	// them — one closure set per FU slot for the machine's lifetime
	// rather than one per scheduled event. All three are only read
	// between requestTransfer setting them and the transfer
	// completing, so stale values after a reset are never observed.
	pending  emitEntry
	xferBuf  int // reserved first-hop buffer index (inter-segment only)
	xferDst  int // destination segment of the in-flight emission
	xferHops int // CA chain hops of the in-flight emission
}

// fuHooks are the bound event handlers of one FU slot, built once when
// the arena first grows to cover the slot.
type fuHooks struct {
	computeDone engine.Handler    // compute finished: raise the bus request
	attempt     func(engine.Time) // first-hop buffer free: reserve it and request the fill
	intraRun    func(engine.Time) // intra-segment transfer granted
	fillRun     func(engine.Time) // first-hop fill granted
	intraEnd    engine.Handler    // intra-segment transfer completed
	fillEnd     engine.Handler    // first-hop fill completed
}

// busReq is one pending request for a segment bus. Requests are queued
// by value — the per-segment queues keep their backing arrays across
// runs, so steady-state arbitration allocates nothing.
type busReq struct {
	at   engine.Time // earliest time the request may be granted
	prio int         // 0: border-unit unload, 1: master
	id   int         // requester identity for deterministic tie-breaks
	seq  uint64
	run  func(grantAt engine.Time)
}

// reqLess orders two eligible requests under the configured policy.
func reqLess(policy Policy, a, b *busReq) bool {
	switch policy {
	case PolicyFIFO:
		if a.at != b.at {
			return a.at < b.at
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
	case PolicyFixedPriority:
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.id != b.id {
			return a.id < b.id
		}
		if a.at != b.at {
			return a.at < b.at
		}
	default: // PolicyBUFirst
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.at != b.at {
			return a.at < b.at
		}
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.seq < b.seq
}

// segStatic is the per-prime configuration of one segment.
type segStatic struct {
	index int // 1-based segment id, as in the paper
	clock engine.Clock
}

// segDyn is the per-run state of one segment: its bus occupancy and
// its arbiter's counters. The zero value is the post-prime state.
type segDyn struct {
	busyUntil engine.Time
	intraReq  int
	interReq  int
	toLeft    int
	toRight   int
	lastBusy  engine.Time
}

// transitPkg is a package sitting in a border-unit buffer.
type transitPkg struct {
	flow   sched.FlowID
	pkg    int
	items  int // data items carried (the last package of a flow may be partial)
	srcSeg int
	dstSeg int
	fullAt engine.Time // loaded (incl. sync overhead); waiting starts here
}

// bufStatic is the per-prime route configuration of one border-unit
// buffer direction: the segment it unloads onto, the next buffer of
// the chain in its direction (-1 at the chain's end) and the
// deterministic requester identity.
type bufStatic struct {
	bu        platform.BU
	rightward bool
	nextSeg   int
	next      int
	id        int
}

// bufDyn is the per-run state of one border-unit buffer direction: a
// depth-one FIFO. The zero value is the post-prime state. forward and
// dataStartPs are in-flight package context for the bound handlers —
// the forward buffer chosen for the current package (-1: deliver onto
// nextSeg) and the unload data-phase start, recorded at grant time for
// the forward-load trace interval; depth-one buffering makes both
// stable from load to unload completion, and both are set before they
// are read.
type bufDyn struct {
	occupied    bool
	reserved    bool
	pkg         transitPkg
	forward     int
	dataStartPs engine.Time
}

// bufHooks are the bound event handlers of one buffer slot.
type bufHooks struct {
	startFn    engine.Handler    // buffer full: arrange the next hop
	fwdAttempt func(engine.Time) // forward buffer free: reserve it and queue the unload
	unloadRun  func(engine.Time) // unload granted on the next segment
	unloadEnd  engine.Handler    // unload completed
}

// buStats collects the monitoring counters of one border unit (both
// directions).
type buStats struct {
	bu            platform.BU
	in, out       int
	recvFromLeft  int
	sentToLeft    int
	recvFromRight int
	sentToRight   int
	loadTicks     int64
	unloadTicks   int64
	waitTicks     int64
}

// machine is one emulation arena. Every slice below is either per-prime
// configuration sized by prime, per-run state zeroed by reset, or a
// bound-handler array that only ever grows (handlers capture slot
// indices, never element pointers, so they survive both growth and
// re-priming with a different model).
type machine struct {
	cfg     Config
	plat    *platform.Platform
	sch     *sched.Schedule
	sim     *engine.Sim
	s       int   // package size
	nominal int   // C-value calibration package size (0: per-package C)
	header  int64 // per-package protocol ticks

	caClock engine.Clock

	fuStat []fuStatic
	fuDyn  []fuDyn
	fuHook []fuHooks // len only grows; active prefix is len(fuStat)
	fuOf   map[psdf.ProcessID]int

	segStat []segStatic // index 0 = segment 1
	segDyn  []segDyn
	segReq  [][]busReq       // per-segment pending requests
	segPump []engine.Handler // len only grows; the SA's arbitration step

	// Border-unit buffers, two directions per unit, indexed
	// (BU.Left-1)*2 for rightward and (BU.Left-1)*2+1 for leftward.
	bufStat []bufStatic
	bufDyn  []bufDyn
	bufWait [][]func(engine.Time)
	bufHook []bufHooks // len only grows

	busSt []buStats // index 0 = BU.Left 1

	stage      int
	stageLeft  []int
	stageStart []engine.Time
	stageEnd   []engine.Time

	caBusyUntil engine.Time
	caRequests  int
	reqSeq      uint64
	endPs       engine.Time

	// Emission-program derivation scratch, reused across primes:
	// per-(source, order) package tallies keyed by the packed pair.
	outSame map[uint64]int
	kSame   map[uint64]int

	met machineMetrics
}

// procOrderKey packs a (process, order) pair into one map key for the
// emission-program scratch tables.
func procOrderKey(p psdf.ProcessID, order int) uint64 {
	return uint64(uint32(p))<<32 | uint64(uint32(order))
}

// inBefore and inSame are the per-process input package totals the
// firing gates are derived from: packages a process receives on
// earlier orders, respectively on the same order.
func inBefore(sch *sched.Schedule, p psdf.ProcessID, order int) int {
	n := 0
	for i, f := range sch.Flows() {
		if f.Target == p && f.Order < order {
			n += sch.Packages(sched.FlowID(i))
		}
	}
	return n
}

func inSame(sch *sched.Schedule, p psdf.ProcessID, order int) int {
	n := 0
	for i, f := range sch.Flows() {
		if f.Target == p && f.Order == order {
			n += sch.Packages(sched.FlowID(i))
		}
	}
	return n
}

// sortFUs orders the FU slots by process id (insertion sort: FU counts
// are small, process ids unique, and unlike sort.Slice it does not
// allocate on the prime path).
func sortFUs(s []fuStatic) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 && s[j].proc > e.proc {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = e
	}
}

// grown extends s to length n, reusing its backing array and
// allocating only when the capacity is exceeded. Elements carried over
// from a previous prime are NOT cleared — callers overwrite or zero
// the active prefix themselves.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		s = append(s[:cap(s)], make([]T, n-cap(s))...)
	}
	return s[:n]
}

// bufIndex returns the arena slot of the given border-unit buffer
// direction.
func bufIndex(left int, rightward bool) int {
	i := (left - 1) * 2
	if !rightward {
		i++
	}
	return i
}

// buRequesterID gives border-unit buffers a deterministic requester
// identity disjoint from process ids (which are non-negative).
func buRequesterID(left int, rightward bool) int {
	id := -(left*2 + 1)
	if rightward {
		id--
	}
	return id
}

// prime configures the machine for one (model, platform, config)
// triple: the event kernel is reset, the element arrays are sized and
// their static configuration rebuilt, the per-run state zeroed and the
// emission programs derived. A warm machine re-primes without
// allocating except where the new shape outgrows the arena. prime is
// total over dirty machines — it never reads run state left by a
// previous (possibly failed) run.
func (mc *machine) prime(plat *platform.Platform, sch *sched.Schedule, nominal int, cfg Config) error {
	if cfg.DetectTicks == 0 {
		cfg.DetectTicks = DefaultDetectTicks
	}
	mc.cfg = cfg
	mc.plat = plat
	mc.sch = sch
	mc.s = plat.PackageSize
	mc.nominal = nominal
	mc.header = int64(plat.HeaderTicks)
	mc.caClock = engine.NewClock(plat.CAClock.PeriodPs())

	mc.sim.Reset()
	limit := cfg.StepLimit
	if limit == 0 {
		limit = 1000 + 64*uint64(sch.TotalPackages()+sch.NumFlows())*uint64(plat.NumSegments()+1)
	}
	mc.sim.SetStepLimit(limit)
	mc.met.init(cfg.Metrics, plat, cfg.Policy)
	mc.sim.SetEventCounter(mc.met.events)

	// Segments.
	nSeg := plat.NumSegments()
	mc.segStat = grown(mc.segStat, nSeg)
	mc.segDyn = grown(mc.segDyn, nSeg)
	mc.segReq = grown(mc.segReq, nSeg)
	for i, seg := range plat.Segments {
		mc.segStat[i] = segStatic{index: seg.Index, clock: engine.NewClock(seg.Clock.PeriodPs())}
		mc.segDyn[i] = segDyn{}
		mc.segReq[i] = mc.segReq[i][:0]
	}
	for len(mc.segPump) < nSeg {
		i := len(mc.segPump)
		mc.segPump = append(mc.segPump, func(now engine.Time) { mc.pumpSegment(i, now) })
	}

	// Border units: stats per unit, one buffer slot per direction.
	bus := plat.BUs()
	nBuf := 2 * len(bus)
	mc.busSt = grown(mc.busSt, len(bus))
	mc.bufStat = grown(mc.bufStat, nBuf)
	mc.bufDyn = grown(mc.bufDyn, nBuf)
	mc.bufWait = grown(mc.bufWait, nBuf)
	for i, bu := range bus {
		mc.busSt[i] = buStats{bu: bu}
		for _, rightward := range [2]bool{true, false} {
			b := bufIndex(bu.Left, rightward)
			next := -1
			nextSeg := bu.Left
			if rightward {
				nextSeg = bu.Right
				if bu.Left+1 <= len(bus) {
					next = bufIndex(bu.Left+1, true)
				}
			} else if bu.Left-1 >= 1 {
				next = bufIndex(bu.Left-1, false)
			}
			mc.bufStat[b] = bufStatic{
				bu: bu, rightward: rightward,
				nextSeg: nextSeg, next: next,
				id: buRequesterID(bu.Left, rightward),
			}
			mc.bufDyn[b] = bufDyn{forward: -1}
			mc.bufWait[b] = mc.bufWait[b][:0]
		}
	}
	for len(mc.bufHook) < nBuf {
		mc.bindBuffer(len(mc.bufHook))
	}

	// One FU per hosted process, sorted by process id.
	nFU := 0
	for _, seg := range plat.Segments {
		nFU += len(seg.FUs)
	}
	mc.fuStat = grown(mc.fuStat, nFU)
	mc.fuDyn = grown(mc.fuDyn, nFU)
	i := 0
	for _, seg := range plat.Segments {
		for _, pfu := range seg.FUs {
			st := &mc.fuStat[i]
			st.proc = pfu.Process
			st.seg = seg.Index
			st.program = st.program[:0]
			mc.fuDyn[i] = fuDyn{}
			i++
		}
	}
	sortFUs(mc.fuStat)
	if mc.fuOf == nil {
		mc.fuOf = make(map[psdf.ProcessID]int, nFU)
	} else {
		clear(mc.fuOf)
	}
	for i := range mc.fuStat {
		mc.fuOf[mc.fuStat[i].proc] = i
	}
	for len(mc.fuHook) < nFU {
		mc.bindFU(len(mc.fuHook))
	}

	// Emission programs follow the canonical flow order; the per-order
	// proportional gate interleaves same-order pipelines.
	if mc.outSame == nil {
		mc.outSame = make(map[uint64]int)
		mc.kSame = make(map[uint64]int)
	} else {
		clear(mc.outSame)
		clear(mc.kSame)
	}
	for i, f := range sch.Flows() {
		mc.outSame[procOrderKey(f.Source, f.Order)] += sch.Packages(sched.FlowID(i))
	}
	for i, f := range sch.Flows() {
		fi, ok := mc.fuOf[f.Source]
		if !ok {
			return fmt.Errorf("emulator: flow %v source not hosted", f)
		}
		fu := &mc.fuStat[fi]
		key := procOrderKey(f.Source, f.Order)
		ib := inBefore(sch, f.Source, f.Order)
		is := inSame(sch, f.Source, f.Order)
		os := mc.outSame[key]
		for pkg := 1; pkg <= sch.Packages(sched.FlowID(i)); pkg++ {
			mc.kSame[key]++
			k := mc.kSame[key]
			need := ib
			if is > 0 && os > 0 {
				need = ib + (k*is+os-1)/os
			}
			fu.program = append(fu.program, emitEntry{flow: sched.FlowID(i), pkg: pkg, need: need})
		}
	}

	// Stage accounting.
	ns := sch.NumStages()
	mc.stageLeft = grown(mc.stageLeft, ns)
	mc.stageStart = grown(mc.stageStart, ns)
	mc.stageEnd = grown(mc.stageEnd, ns)
	for i := 0; i < ns; i++ {
		mc.stageLeft[i] = 0
		mc.stageStart[i] = 0
		mc.stageEnd[i] = 0
	}
	for si, st := range sch.Stages() {
		for _, id := range st.Flows {
			mc.stageLeft[si] += sch.Packages(id)
		}
	}

	mc.stage = 0
	mc.caBusyUntil = 0
	mc.caRequests = 0
	mc.reqSeq = 0
	mc.endPs = 0
	return nil
}

// reset returns a primed machine to its post-prime state without
// touching the arena's static configuration: per-run state is zeroed,
// queues and waiter lists truncated, the kernel rewound to time zero.
// Zero allocations once warm. A machine that was never primed has
// nothing to reset.
func (mc *machine) reset() {
	if mc.sch == nil {
		return
	}
	mc.sim.Reset()
	for i := range mc.fuDyn {
		mc.fuDyn[i] = fuDyn{}
	}
	for i := range mc.segDyn {
		mc.segDyn[i] = segDyn{}
		mc.segReq[i] = mc.segReq[i][:0]
	}
	for i := range mc.bufDyn {
		mc.bufDyn[i] = bufDyn{forward: -1}
		mc.bufWait[i] = mc.bufWait[i][:0]
	}
	for i := range mc.busSt {
		mc.busSt[i] = buStats{bu: mc.busSt[i].bu}
	}
	for i := range mc.stageLeft {
		mc.stageLeft[i] = 0
		mc.stageStart[i] = 0
		mc.stageEnd[i] = 0
	}
	for si, st := range mc.sch.Stages() {
		for _, id := range st.Flows {
			mc.stageLeft[si] += mc.sch.Packages(id)
		}
	}
	mc.stage = 0
	mc.caBusyUntil = 0
	mc.caRequests = 0
	mc.reqSeq = 0
	mc.endPs = 0
}

// bindFU builds the bound event handlers of FU slot i and appends them
// to the hook array. The closures capture only (mc, i): they read the
// slot's state at fire time, so they survive arena growth and
// re-priming with a different model.
func (mc *machine) bindFU(i int) {
	mc.fuHook = append(mc.fuHook, fuHooks{
		computeDone: func(t engine.Time) { mc.requestTransfer(i, t) },
		intraRun: func(grantAt engine.Time) {
			mc.runIntra(i, grantAt)
		},
		fillRun: func(grantAt engine.Time) {
			mc.runFill(i, grantAt)
		},
		attempt: func(t engine.Time) {
			st, d := &mc.fuStat[i], &mc.fuDyn[i]
			mc.bufDyn[d.xferBuf].reserved = true
			grantT := mc.caGrant(t)
			if mc.plat.CAHopTicks > 0 {
				setup := mc.caClock.NextEdge(grantT) + mc.caClock.Ticks(int64(d.xferHops*mc.plat.CAHopTicks))
				if mc.cfg.Trace.Enabled() {
					mc.cfg.Trace.AddInterval("CA", traceOverhead, int64(grantT), int64(setup),
						fmt.Sprintf("chain setup %d->%d", st.seg, d.xferDst))
				}
				grantT = setup
			}
			mc.pushRequest(st.seg-1, busReq{at: grantT, prio: 1, id: int(st.proc)}, mc.fuHook[i].fillRun)
		},
		intraEnd: func(now engine.Time) {
			st, d := &mc.fuStat[i], &mc.fuDyn[i]
			e := d.pending
			d.sent++
			mc.deliver(e.flow, e.pkg, now)
			mc.pumpSegment(st.seg-1, now)
		},
		fillEnd: func(now engine.Time) { mc.finishFill(i, now) },
	})
}

// bindBuffer builds the bound event handlers of buffer slot b and
// appends them to the hook array.
func (mc *machine) bindBuffer(b int) {
	mc.bufHook = append(mc.bufHook, bufHooks{
		startFn: func(now engine.Time) {
			st, d := &mc.bufStat[b], &mc.bufDyn[b]
			if st.nextSeg == d.pkg.dstSeg {
				d.forward = -1
				mc.queueUnload(b, now)
				return
			}
			if mc.bufFree(st.next) {
				mc.bufHook[b].fwdAttempt(now)
			} else {
				mc.bufWait[st.next] = append(mc.bufWait[st.next], mc.bufHook[b].fwdAttempt)
			}
		},
		fwdAttempt: func(now engine.Time) {
			st, d := &mc.bufStat[b], &mc.bufDyn[b]
			mc.bufDyn[st.next].reserved = true
			d.forward = st.next
			mc.queueUnload(b, now)
		},
		unloadRun: func(grantAt engine.Time) {
			mc.runUnload(b, grantAt)
		},
		unloadEnd: func(now engine.Time) { mc.finishUnload(b, now) },
	})
}

func (mc *machine) bufFree(b int) bool {
	d := &mc.bufDyn[b]
	return !d.occupied && !d.reserved
}

func (mc *machine) grantTicks() int64 { return int64(mc.cfg.Overheads.GrantTicks) }
func (mc *machine) syncTicks() int64  { return int64(mc.cfg.Overheads.SyncTicks) }

// itemsInPackage returns the number of data items the pkg-th (1-based)
// package of flow id carries: the platform package size except for a
// possibly partial final package.
func (mc *machine) itemsInPackage(id sched.FlowID, pkg int) int {
	total := mc.sch.Flow(id).Items
	rest := total - (pkg-1)*mc.s
	if rest > mc.s {
		return mc.s
	}
	if rest < 0 {
		return 0
	}
	return rest
}

// computeTicks returns the FU processing cost for one package: the
// flow's C value, scaled by the package's item count relative to the
// model's nominal package size when one is declared (work is a
// property of the data, not of the packaging).
func (mc *machine) computeTicks(id sched.FlowID, pkg int) int64 {
	c := int64(mc.sch.Flow(id).Ticks)
	if mc.nominal <= 0 {
		return c
	}
	items := int64(mc.itemsInPackage(id, pkg))
	return (c*items + int64(mc.nominal) - 1) / int64(mc.nominal)
}

// run drives the simulation to completion and assembles the report.
func (mc *machine) run() (*Report, error) {
	mc.met.runs.Inc()
	if mc.cfg.Observer != nil && mc.sch.NumStages() > 0 {
		mc.cfg.Observer.StageStarted(mc.sch.Stages()[0].Order, 0)
	}
	for i := range mc.fuStat {
		mc.advanceFU(i, 0)
	}
	var wallStart time.Time
	if mc.met.enabled {
		wallStart = time.Now()
	}
	end, err := mc.sim.Run()
	if err != nil {
		return nil, err
	}
	if mc.met.enabled {
		if secs := time.Since(wallStart).Seconds(); secs > 0 {
			mc.met.simRate.Set(float64(end) / secs)
			mc.met.evRate.Set(float64(mc.sim.Steps()) / secs)
		}
	}
	if mc.stage < len(mc.stageLeft) {
		return nil, mc.deadlockError()
	}
	return mc.report(), nil
}

// deadlockError builds a diagnostic for a model that cannot make
// progress (e.g. a same-order dependency cycle).
func (mc *machine) deadlockError() error {
	de := &DeadlockError{
		Stage:       mc.stage,
		Order:       mc.sch.Stages()[mc.stage].Order,
		Undelivered: mc.stageLeft[mc.stage],
	}
	for i := range mc.fuStat {
		st, d := &mc.fuStat[i], &mc.fuDyn[i]
		if d.next >= len(st.program) || d.busy {
			continue
		}
		e := st.program[d.next]
		if mc.sch.StageOf(e.flow) != mc.stage {
			continue
		}
		de.Blocked = append(de.Blocked, BlockedProc{Proc: st.proc, Need: e.need, Have: d.received})
	}
	return de
}

// advanceFU starts the FU's next emission if it is eligible: the flow's
// stage is active and the firing gate is satisfied.
func (mc *machine) advanceFU(i int, now engine.Time) {
	st, d := &mc.fuStat[i], &mc.fuDyn[i]
	if d.busy || d.next >= len(st.program) || mc.stage >= len(mc.stageLeft) {
		return
	}
	e := st.program[d.next]
	if mc.sch.StageOf(e.flow) != mc.stage {
		return
	}
	if d.received < e.need {
		return
	}
	d.busy = true
	d.next++
	clock := mc.segStat[st.seg-1].clock
	start := clock.NextEdge(now)
	if !d.started {
		d.started = true
		d.startPs = start
	}
	compEnd := start + clock.Ticks(mc.computeTicks(e.flow, e.pkg))
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(e.flow)
		mc.cfg.Trace.AddInterval(st.proc.String(), traceCompute, int64(start), int64(compEnd),
			fmt.Sprintf("%s pkg %d/%d", flowLabel(f), e.pkg, mc.sch.Packages(e.flow)))
	}
	d.pending = e
	mc.sim.At(compEnd, prioCompute, mc.fuHook[i].computeDone)
}

func flowLabel(f psdf.Flow) string {
	return fmt.Sprintf("%s->%s", f.Source, f.Target)
}

// requestTransfer raises the bus request for a computed package:
// directly at the local SA for intra-segment targets, via the CA and
// the border-unit chain otherwise.
func (mc *machine) requestTransfer(i int, now engine.Time) {
	st, d := &mc.fuStat[i], &mc.fuDyn[i]
	e := d.pending
	f := mc.sch.Flow(e.flow)
	src := st.seg
	dst := src
	if f.Target != psdf.SystemOutput {
		dst = mc.plat.SegmentOf(f.Target)
	}
	if src == dst {
		mc.segDyn[src-1].intraReq++
		mc.pushRequest(src-1, busReq{at: now, prio: 1, id: int(st.proc)}, mc.fuHook[i].intraRun)
		return
	}

	mc.segDyn[src-1].interReq++
	rightward := dst > src
	d.xferDst = dst
	d.xferHops = mc.plat.Hops(src, dst)
	buf := mc.firstBuffer(src, rightward)
	d.xferBuf = buf
	if mc.bufFree(buf) {
		mc.fuHook[i].attempt(now)
	} else {
		mc.bufWait[buf] = append(mc.bufWait[buf], mc.fuHook[i].attempt)
	}
}

// firstBuffer returns the border-unit buffer slot a master on segment
// src streams into for the given direction.
func (mc *machine) firstBuffer(src int, rightward bool) int {
	if rightward {
		return bufIndex(src, true)
	}
	return bufIndex(src-1, false)
}

// caGrant records an inter-segment request at the CA and returns the
// time the grant becomes effective. The estimation model grants
// immediately; the refined model serialises requests over CASetTicks.
func (mc *machine) caGrant(now engine.Time) engine.Time {
	mc.caRequests++
	mc.met.caRequests.Inc()
	set := int64(mc.cfg.Overheads.CASetTicks)
	if set == 0 {
		return now
	}
	t := mc.caClock.NextEdge(maxTime(now, mc.caBusyUntil))
	grant := t + mc.caClock.Ticks(set)
	mc.caBusyUntil = grant
	mc.cfg.Trace.AddInterval("CA", traceOverhead, int64(t), int64(grant), "grant set")
	return grant
}

// caRelease charges the CA's grant-reset work after the source segment
// finished its part of an inter-segment transfer.
func (mc *machine) caRelease(end engine.Time) {
	reset := int64(mc.cfg.Overheads.CAResetTicks)
	if reset == 0 {
		return
	}
	t := mc.caClock.NextEdge(maxTime(end, mc.caBusyUntil))
	mc.caBusyUntil = t + mc.caClock.Ticks(reset)
	mc.cfg.Trace.AddInterval("CA", traceOverhead, int64(t), int64(mc.caBusyUntil), "grant reset")
}

// pushRequest queues a bus request on segment si (0-based) and
// schedules a grant decision.
func (mc *machine) pushRequest(si int, r busReq, run func(engine.Time)) {
	r.seq = mc.reqSeq
	mc.reqSeq++
	r.run = run
	mc.segReq[si] = append(mc.segReq[si], r)
	mc.scheduleGrant(si, maxTime(r.at, mc.sim.Now()))
}

func (mc *machine) scheduleGrant(si int, at engine.Time) {
	mc.sim.At(maxTime(at, mc.sim.Now()), prioGrant, mc.segPump[si])
}

// pumpSegment is the SA's arbitration step: when the bus is free it
// grants the best eligible pending request (border-unit unloads before
// masters, then request time, then requester id).
func (mc *machine) pumpSegment(si int, now engine.Time) {
	q := mc.segReq[si]
	if len(q) == 0 {
		return
	}
	if now < mc.segDyn[si].busyUntil {
		mc.met.denials[si].Inc()
		mc.scheduleGrant(si, mc.segDyn[si].busyUntil)
		return
	}
	best := -1
	for i := range q {
		if q[i].at > now {
			continue
		}
		if best < 0 || reqLess(mc.cfg.Policy, &q[i], &q[best]) {
			best = i
		}
	}
	if best < 0 {
		earliest := engine.MaxTime
		for i := range q {
			if q[i].at < earliest {
				earliest = q[i].at
			}
		}
		mc.scheduleGrant(si, earliest)
		return
	}
	r := q[best] // copy before the splice overwrites the slot
	mc.segReq[si] = append(q[:best], q[best+1:]...)
	mc.met.grants[si].Inc()
	mc.met.contention[si].Observe(int64(now - r.at))
	if mc.cfg.Observer != nil {
		mc.cfg.Observer.TransferGranted(mc.segStat[si].index, int64(now))
	}
	r.run(now)
}

// runIntra performs an intra-segment package transfer: the bus is
// occupied for GrantTicks + s ticks of the segment clock, and the
// package is delivered to the local slave at the end.
func (mc *machine) runIntra(i int, grantAt engine.Time) {
	st, d := &mc.fuStat[i], &mc.fuDyn[i]
	e := d.pending
	si := st.seg - 1
	g := &mc.segDyn[si]
	clock := mc.segStat[si].clock
	start := clock.NextEdge(grantAt)
	dataStart := start + clock.Ticks(mc.grantTicks()+mc.header)
	end := dataStart + clock.Ticks(int64(mc.itemsInPackage(e.flow, e.pkg)))
	g.busyUntil = end
	g.lastBusy = end
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(e.flow)
		mc.cfg.Trace.AddInterval(fmt.Sprintf("Segment %d", st.seg), traceTransfer, int64(start), int64(end),
			fmt.Sprintf("%s pkg %d", flowLabel(f), e.pkg))
	}
	mc.sim.At(end, prioEffect, mc.fuHook[i].intraEnd)
}

// runFill performs the first hop of an inter-segment transfer: the
// master streams the package into the reserved border-unit buffer over
// its own segment bus.
func (mc *machine) runFill(i int, grantAt engine.Time) {
	st, d := &mc.fuStat[i], &mc.fuDyn[i]
	e := d.pending
	si := st.seg - 1
	g := &mc.segDyn[si]
	clock := mc.segStat[si].clock
	buf := &mc.bufStat[d.xferBuf]
	items := mc.itemsInPackage(e.flow, e.pkg)
	start := clock.NextEdge(grantAt)
	dataStart := start + clock.Ticks(mc.grantTicks()+mc.header)
	end := dataStart + clock.Ticks(int64(items))
	g.busyUntil = end
	g.lastBusy = end
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(e.flow)
		mc.cfg.Trace.AddInterval(fmt.Sprintf("Segment %d", st.seg), traceTransfer, int64(start), int64(end),
			fmt.Sprintf("%s pkg %d fill %s", flowLabel(f), e.pkg, buf.bu.Name()))
		mc.cfg.Trace.AddInterval(buf.bu.Name(), traceBULoad, int64(dataStart), int64(end),
			fmt.Sprintf("%s pkg %d", flowLabel(f), e.pkg))
	}
	mc.sim.At(end, prioEffect, mc.fuHook[i].fillEnd)
}

// finishFill is the bound fill-completed handler body: the package is
// now sitting in the reserved border-unit buffer, the source segment
// is released and the next hop is arranged.
func (mc *machine) finishFill(i int, now engine.Time) {
	st, d := &mc.fuStat[i], &mc.fuDyn[i]
	e := d.pending
	b := d.xferBuf
	buf := &mc.bufStat[b]
	bd := &mc.bufDyn[b]
	si := st.seg - 1
	g := &mc.segDyn[si]
	items := mc.itemsInPackage(e.flow, e.pkg)
	bst := &mc.busSt[buf.bu.Left-1]
	mc.caRelease(now)
	fullAt := now + mc.segStat[si].clock.Ticks(mc.syncTicks())
	bd.reserved = false
	bd.occupied = true
	bd.pkg = transitPkg{flow: e.flow, pkg: e.pkg, items: items, srcSeg: st.seg, dstSeg: d.xferDst, fullAt: fullAt}
	bst.in++
	bst.loadTicks += int64(items)
	mc.met.buLoad[buf.bu.Left-1].Add(int64(items))
	if buf.rightward {
		bst.recvFromLeft++
		g.toRight++
	} else {
		bst.recvFromRight++
		g.toLeft++
	}
	// The master holds its circuit until the package reaches its
	// destination: it is released by the delivery, not here
	// (end-to-end, circuit-switched transfer semantics).
	d.sent++
	mc.pumpSegment(si, now)
	mc.startUnload(b, fullAt)
}

// startUnload arranges the next hop for a loaded buffer: either a
// delivery onto the destination segment, or a forward into the next
// border unit of the route (which must first be free).
func (mc *machine) startUnload(b int, t engine.Time) {
	mc.sim.At(maxTime(t, mc.sim.Now()), prioCompute, mc.bufHook[b].startFn)
}

// queueUnload raises the unload request on the buffer's next segment.
// The buffer's forward slot has been set by the caller: -1 for a
// delivery onto the destination segment, the next buffer of the chain
// otherwise.
func (mc *machine) queueUnload(b int, now engine.Time) {
	st := &mc.bufStat[b]
	ni := st.nextSeg - 1
	mc.segDyn[ni].intraReq++
	mc.pushRequest(ni, busReq{at: now, prio: 0, id: st.id}, mc.bufHook[b].unloadRun)
}

// runUnload performs one forwarding hop: the buffer's package crosses
// onto its next segment, either delivered to the target FU (forward
// == -1) or loaded into the next border unit.
func (mc *machine) runUnload(b int, grantAt engine.Time) {
	buf := &mc.bufStat[b]
	bd := &mc.bufDyn[b]
	pkg := bd.pkg
	ni := buf.nextSeg - 1
	ns := &mc.segDyn[ni]
	clock := mc.segStat[ni].clock
	start := clock.NextEdge(grantAt)
	dataStart := start + clock.Ticks(mc.grantTicks()+mc.syncTicks()+mc.header)
	end := dataStart + clock.Ticks(int64(pkg.items))
	ns.busyUntil = end
	ns.lastBusy = end
	bst := &mc.busSt[buf.bu.Left-1]
	// The waiting period (WP) of section 4: from the package being
	// loaded until the next segment's arbiter grants the unload,
	// rounded up to whole ticks of the receiving clock domain.
	if wait := int64(start - pkg.fullAt); wait > 0 {
		ticks := (wait + clock.PeriodPs() - 1) / clock.PeriodPs()
		bst.waitTicks += ticks
		mc.met.buWait[buf.bu.Left-1].Add(ticks)
		if mc.cfg.Trace.Enabled() {
			mc.cfg.Trace.AddInterval(buf.bu.Name(), traceBUWait, int64(pkg.fullAt), int64(start),
				fmt.Sprintf("%s pkg %d", flowLabel(mc.sch.Flow(pkg.flow)), pkg.pkg))
		}
	}
	bst.unloadTicks += int64(pkg.items)
	mc.met.buUnload[buf.bu.Left-1].Add(int64(pkg.items))
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(pkg.flow)
		mc.cfg.Trace.AddInterval(fmt.Sprintf("Segment %d", buf.nextSeg), traceTransfer, int64(start), int64(end),
			fmt.Sprintf("%s pkg %d unload %s", flowLabel(f), pkg.pkg, buf.bu.Name()))
		mc.cfg.Trace.AddInterval(buf.bu.Name(), traceBUUnload, int64(dataStart), int64(end),
			fmt.Sprintf("%s pkg %d", flowLabel(f), pkg.pkg))
	}
	bd.dataStartPs = dataStart
	mc.sim.At(end, prioEffect, mc.bufHook[b].unloadEnd)
}

// finishUnload is the bound unload-completed handler body: the
// package has crossed onto the next segment — deliver it or load it
// into the forward buffer, then hand the freed buffer to any waiter
// and pump the segment.
func (mc *machine) finishUnload(b int, now engine.Time) {
	buf := &mc.bufStat[b]
	bd := &mc.bufDyn[b]
	pkg := bd.pkg
	forward := bd.forward
	ni := buf.nextSeg - 1
	bst := &mc.busSt[buf.bu.Left-1]
	bst.out++
	if buf.rightward {
		bst.sentToRight++
	} else {
		bst.sentToLeft++
	}
	bd.occupied = false
	bd.pkg = transitPkg{}
	mc.serveWaiters(b, now)
	if forward < 0 {
		mc.deliver(pkg.flow, pkg.pkg, now)
	} else {
		fwd := &mc.bufStat[forward]
		fd := &mc.bufDyn[forward]
		fst := &mc.busSt[fwd.bu.Left-1]
		fullAt := now + mc.segStat[ni].clock.Ticks(mc.syncTicks())
		fd.reserved = false
		fd.occupied = true
		fd.pkg = transitPkg{flow: pkg.flow, pkg: pkg.pkg, items: pkg.items, srcSeg: pkg.srcSeg, dstSeg: pkg.dstSeg, fullAt: fullAt}
		fst.in++
		fst.loadTicks += int64(pkg.items)
		mc.met.buLoad[fwd.bu.Left-1].Add(int64(pkg.items))
		if fwd.rightward {
			fst.recvFromLeft++
		} else {
			fst.recvFromRight++
		}
		if mc.cfg.Trace.Enabled() {
			mc.cfg.Trace.AddInterval(fwd.bu.Name(), traceBULoad, int64(bd.dataStartPs), int64(now),
				fmt.Sprintf("%s pkg %d", flowLabel(mc.sch.Flow(pkg.flow)), pkg.pkg))
		}
		mc.startUnload(forward, fullAt)
	}
	mc.pumpSegment(ni, now)
}

// serveWaiters hands a freed buffer to the first registered waiter.
// The waiter list is drained front-first with a copy-down so its
// backing array is reused across the whole run.
func (mc *machine) serveWaiters(b int, now engine.Time) {
	ws := mc.bufWait[b]
	if !mc.bufFree(b) || len(ws) == 0 {
		return
	}
	w := ws[0]
	copy(ws, ws[1:])
	ws[len(ws)-1] = nil
	mc.bufWait[b] = ws[:len(ws)-1]
	w(now)
}

// deliver completes one package: the target process's receive counter
// advances, the stage accounting decrements, and blocked FUs are
// re-examined.
func (mc *machine) deliver(id sched.FlowID, pkg int, now engine.Time) {
	f := mc.sch.Flow(id)
	mc.met.delivered.Inc()
	if now > mc.endPs {
		mc.endPs = now
	}
	if mc.cfg.Observer != nil {
		mc.cfg.Observer.PackageDelivered(int(f.Source), int(f.Target), pkg, int64(now))
	}
	if si, ok := mc.fuOf[f.Source]; ok {
		sd := &mc.fuDyn[si]
		sd.endPs = now
		sd.busy = false
		mc.advanceFU(si, now)
	}
	if f.Target != psdf.SystemOutput {
		ti := mc.fuOf[f.Target]
		td := &mc.fuDyn[ti]
		td.received++
		td.lastRecv = now
		td.gotRecv = true
		mc.advanceFU(ti, now)
	}
	si := mc.sch.StageOf(id)
	mc.stageLeft[si]--
	if mc.stageLeft[si] < 0 {
		panic(fmt.Sprintf("emulator: stage %d over-delivered", si))
	}
	if now > mc.stageEnd[si] {
		mc.stageEnd[si] = now
	}
	if si == mc.stage && mc.stageLeft[si] == 0 {
		mc.stage++
		if mc.stage < len(mc.stageStart) {
			mc.stageStart[mc.stage] = now
			if mc.cfg.Observer != nil {
				mc.cfg.Observer.StageStarted(mc.sch.Stages()[mc.stage].Order, int64(now))
			}
		}
		for i := range mc.fuStat {
			mc.advanceFU(i, now)
		}
	}
}

// report assembles the monitoring results following the accounting
// rules of section 4: each arbiter's TCT counts ticks from the start
// of the emulation to its own last activity; the CA additionally
// counts until the monitor detects completion; and the total execution
// time is the maximum over the arbiters of TCT × clock period.
func (mc *machine) report() *Report {
	r := &Report{
		Platform:    mc.plat.String(),
		PackageSize: mc.s,
		Refined:     !mc.cfg.Overheads.Zero(),
		EndPs:       mc.endPs,
		Steps:       mc.sim.Steps(),
	}
	for i := range mc.segStat {
		st, g := &mc.segStat[i], &mc.segDyn[i]
		seg := mc.plat.Segment(st.index)
		tct := st.clock.TicksElapsed(g.lastBusy)
		sa := SAStats{
			Segment:       st.index,
			Clock:         seg.Clock,
			TCT:           tct,
			IntraRequests: g.intraReq,
			InterRequests: g.interReq,
			ExecTimePs:    engine.Time(tct * st.clock.PeriodPs()),
		}
		r.SAs = append(r.SAs, sa)
		r.Segments = append(r.Segments, SegmentStats{Segment: st.index, ToLeft: g.toLeft, ToRight: g.toRight, LastBusy: g.lastBusy})
	}
	caTCT := mc.caClock.TicksElapsed(mc.endPs) + mc.cfg.DetectTicks
	r.CA = CAStats{
		Clock:         mc.plat.CAClock,
		TCT:           caTCT,
		InterRequests: mc.caRequests,
		ExecTimePs:    engine.Time(caTCT * mc.caClock.PeriodPs()),
	}
	r.ExecutionTimePs = r.CA.ExecTimePs
	for _, sa := range r.SAs {
		if sa.ExecTimePs > r.ExecutionTimePs {
			r.ExecutionTimePs = sa.ExecTimePs
		}
	}
	for i := range mc.busSt {
		st := &mc.busSt[i]
		r.BUs = append(r.BUs, BUStats{
			Name:          st.bu.Name(),
			Left:          st.bu.Left,
			Right:         st.bu.Right,
			InPackages:    st.in,
			OutPackages:   st.out,
			RecvFromLeft:  st.recvFromLeft,
			SentToLeft:    st.sentToLeft,
			RecvFromRight: st.recvFromRight,
			SentToRight:   st.sentToRight,
			TCT:           st.loadTicks + st.unloadTicks + st.waitTicks,
			LoadTicks:     st.loadTicks,
			UnloadTicks:   st.unloadTicks,
			WaitTicks:     st.waitTicks,
		})
	}
	for si, st := range mc.sch.Stages() {
		pkgs := 0
		for _, id := range st.Flows {
			pkgs += mc.sch.Packages(id)
		}
		r.Stages = append(r.Stages, StageStats{
			Order:    st.Order,
			Packages: pkgs,
			StartPs:  mc.stageStart[si],
			EndPs:    mc.stageEnd[si],
		})
	}
	for i := range mc.fuStat {
		st, d := &mc.fuStat[i], &mc.fuDyn[i]
		ps := ProcessStats{
			Process:       st.proc,
			Segment:       st.seg,
			StartPs:       d.startPs,
			EndPs:         d.endPs,
			SentPackages:  d.sent,
			RecvPackages:  d.received,
			LastReceivePs: d.lastRecv,
		}
		if d.sent == 0 && d.gotRecv {
			ps.StartPs = d.lastRecv
			ps.EndPs = d.lastRecv
			mc.cfg.Trace.AddMark(st.proc.String(), "received last package", int64(d.lastRecv))
		}
		r.Processes = append(r.Processes, ps)
	}
	return r
}

func maxTime(a, b engine.Time) engine.Time {
	if a > b {
		return a
	}
	return b
}
