package emulator

import (
	"fmt"
	"sort"
	"time"

	"segbus/internal/engine"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// Run emulates application model m on platform plat and returns the
// monitoring report. The model, the platform and their mapping are
// validated first; any violation aborts the run.
func Run(m *psdf.Model, plat *platform.Platform, cfg Config) (*Report, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if err := plat.ValidateMapping(m); err != nil {
		return nil, err
	}
	if err := plat.ValidateRoles(m); err != nil {
		return nil, err
	}
	sch, err := sched.Extract(m, plat.PackageSize)
	if err != nil {
		return nil, err
	}
	mc, err := newMachine(plat, sch, m.NominalPackageSize(), cfg)
	if err != nil {
		return nil, err
	}
	return mc.run()
}

// validateConfig rejects configurations the machine cannot honour.
func validateConfig(cfg Config) error {
	o := cfg.Overheads
	if o.GrantTicks < 0 || o.SyncTicks < 0 || o.CASetTicks < 0 || o.CAResetTicks < 0 {
		return fmt.Errorf("emulator: negative overhead ticks in %+v", o)
	}
	if cfg.DetectTicks < 0 {
		return fmt.Errorf("emulator: negative detect ticks %d", cfg.DetectTicks)
	}
	switch cfg.Policy {
	case PolicyBUFirst, PolicyFIFO, PolicyFixedPriority:
	default:
		return fmt.Errorf("emulator: unknown arbitration policy %d", int(cfg.Policy))
	}
	return nil
}

// emitEntry is one package emission in a functional unit's program.
type emitEntry struct {
	flow sched.FlowID
	pkg  int // 1-based package index within the flow
	need int // input packages the process must have received first
}

// fuState is the runtime state of one functional unit (one hosted
// process).
type fuState struct {
	proc     psdf.ProcessID
	seg      int // hosting segment, 1-based
	program  []emitEntry
	next     int // next program entry (claimed when compute starts)
	received int
	sent     int
	busy     bool
	started  bool
	startPs  engine.Time
	endPs    engine.Time
	lastRecv engine.Time
	gotRecv  bool

	// In-flight emission context. An FU has at most one emission in
	// flight (busy gates advanceFU until deliver), so the bound
	// handlers below read these fields at fire time instead of
	// capturing them — one closure per FU for the whole run rather
	// than one per scheduled event.
	pending  emitEntry
	xferBuf  *buBuffer // reserved first-hop buffer (inter-segment only)
	xferDst  int       // destination segment of the in-flight emission
	xferHops int       // CA chain hops of the in-flight emission

	computeDone engine.Handler    // compute finished: raise the bus request
	attempt     func(engine.Time) // first-hop buffer free: reserve it and request the fill
	intraRun    func(engine.Time) // intra-segment transfer granted
	fillRun     func(engine.Time) // first-hop fill granted
	intraEnd    engine.Handler    // intra-segment transfer completed
	fillEnd     engine.Handler    // first-hop fill completed
}

// busReq is one pending request for a segment bus.
type busReq struct {
	at   engine.Time // earliest time the request may be granted
	prio int         // 0: border-unit unload, 1: master
	id   int         // requester identity for deterministic tie-breaks
	seq  uint64
	run  func(grantAt engine.Time)
}

// reqLess orders two eligible requests under the configured policy.
func reqLess(policy Policy, a, b *busReq) bool {
	switch policy {
	case PolicyFIFO:
		if a.at != b.at {
			return a.at < b.at
		}
		if a.prio != b.prio {
			return a.prio < b.prio
		}
	case PolicyFixedPriority:
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.id != b.id {
			return a.id < b.id
		}
		if a.at != b.at {
			return a.at < b.at
		}
	default: // PolicyBUFirst
		if a.prio != b.prio {
			return a.prio < b.prio
		}
		if a.at != b.at {
			return a.at < b.at
		}
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.seq < b.seq
}

// segState is the runtime state of one segment: its bus, its arbiter's
// counters and its clock domain.
type segState struct {
	index     int
	clock     engine.Clock
	busyUntil engine.Time
	queue     []*busReq
	intraReq  int
	interReq  int
	toLeft    int
	toRight   int
	lastBusy  engine.Time
	pump      engine.Handler // bound once: the SA's arbitration step
}

// transitPkg is a package sitting in a border-unit buffer.
type transitPkg struct {
	flow   sched.FlowID
	pkg    int
	items  int // data items carried (the last package of a flow may be partial)
	srcSeg int
	dstSeg int
	fullAt engine.Time // loaded (incl. sync overhead); waiting starts here
}

// buBuffer is one direction of a border unit: a depth-one FIFO.
type buBuffer struct {
	bu        platform.BU
	rightward bool
	occupied  bool
	reserved  bool
	pkg       transitPkg
	waiters   []func(now engine.Time)

	// Route constants, resolved once at machine construction: the
	// segment the buffer unloads onto, the next buffer of the chain in
	// its direction (nil at the chain's end) and the deterministic
	// requester identity.
	nextSeg int
	next    *buBuffer
	id      int

	// In-flight package context for the bound handlers: the forward
	// buffer chosen for the current package (nil: deliver onto
	// nextSeg) and the unload data-phase start, recorded at grant time
	// for the forward-load trace interval. Depth-one buffering makes
	// both stable from load to unload completion.
	forward     *buBuffer
	dataStartPs engine.Time

	startFn    engine.Handler    // buffer full: arrange the next hop
	fwdAttempt func(engine.Time) // forward buffer free: reserve it and queue the unload
	unloadRun  func(engine.Time) // unload granted on the next segment
	unloadEnd  engine.Handler    // unload completed
}

func (b *buBuffer) free() bool { return !b.occupied && !b.reserved }

// buStats collects the monitoring counters of one border unit (both
// directions).
type buStats struct {
	bu            platform.BU
	in, out       int
	recvFromLeft  int
	sentToLeft    int
	recvFromRight int
	sentToRight   int
	loadTicks     int64
	unloadTicks   int64
	waitTicks     int64
}

type buKey struct {
	left      int
	rightward bool
}

// machine is one emulation instance.
type machine struct {
	cfg     Config
	plat    *platform.Platform
	sch     *sched.Schedule
	sim     *engine.Sim
	s       int   // package size
	nominal int   // C-value calibration package size (0: per-package C)
	header  int64 // per-package protocol ticks

	caClock engine.Clock

	fus     []*fuState
	fuOf    map[psdf.ProcessID]*fuState
	segs    []*segState // index 0 = segment 1
	buffers map[buKey]*buBuffer
	bus     map[int]*buStats // keyed by BU.Left

	stage      int
	stageLeft  []int
	stageStart []engine.Time
	stageEnd   []engine.Time

	caBusyUntil engine.Time
	caRequests  int
	reqSeq      uint64
	endPs       engine.Time

	met *machineMetrics
}

func newMachine(plat *platform.Platform, sch *sched.Schedule, nominal int, cfg Config) (*machine, error) {
	if cfg.DetectTicks == 0 {
		cfg.DetectTicks = DefaultDetectTicks
	}
	mc := &machine{
		cfg:     cfg,
		plat:    plat,
		sch:     sch,
		sim:     engine.NewSim(),
		s:       plat.PackageSize,
		nominal: nominal,
		header:  int64(plat.HeaderTicks),
		caClock: engine.NewClock(plat.CAClock.PeriodPs()),
		fuOf:    make(map[psdf.ProcessID]*fuState),
		buffers: make(map[buKey]*buBuffer),
		bus:     make(map[int]*buStats),
	}
	limit := cfg.StepLimit
	if limit == 0 {
		limit = 1000 + 64*uint64(sch.TotalPackages()+sch.NumFlows())*uint64(plat.NumSegments()+1)
	}
	mc.sim.SetStepLimit(limit)
	mc.met = newMachineMetrics(cfg.Metrics, plat, cfg.Policy)
	mc.sim.SetEventCounter(mc.met.events)

	for _, seg := range plat.Segments {
		mc.segs = append(mc.segs, &segState{index: seg.Index, clock: engine.NewClock(seg.Clock.PeriodPs())})
	}
	for _, bu := range plat.BUs() {
		mc.bus[bu.Left] = &buStats{bu: bu}
		mc.buffers[buKey{bu.Left, true}] = &buBuffer{bu: bu, rightward: true}
		mc.buffers[buKey{bu.Left, false}] = &buBuffer{bu: bu, rightward: false}
	}

	// Per-process, per-order input package totals for the firing gates.
	inBefore := func(p psdf.ProcessID, order int) int {
		n := 0
		for i, f := range sch.Flows() {
			if f.Target == p && f.Order < order {
				n += sch.Packages(sched.FlowID(i))
			}
		}
		return n
	}
	inSame := func(p psdf.ProcessID, order int) int {
		n := 0
		for i, f := range sch.Flows() {
			if f.Target == p && f.Order == order {
				n += sch.Packages(sched.FlowID(i))
			}
		}
		return n
	}

	// Build one FU per hosted process with its emission program.
	for _, seg := range plat.Segments {
		for _, pfu := range seg.FUs {
			fu := &fuState{proc: pfu.Process, seg: seg.Index}
			mc.fus = append(mc.fus, fu)
			mc.fuOf[pfu.Process] = fu
		}
	}
	sort.Slice(mc.fus, func(i, j int) bool { return mc.fus[i].proc < mc.fus[j].proc })

	// Emission programs follow the canonical flow order; the per-order
	// proportional gate interleaves same-order pipelines.
	outSame := make(map[psdf.ProcessID]map[int]int)
	for i, f := range sch.Flows() {
		if outSame[f.Source] == nil {
			outSame[f.Source] = make(map[int]int)
		}
		outSame[f.Source][f.Order] += sch.Packages(sched.FlowID(i))
	}
	kSame := make(map[psdf.ProcessID]map[int]int)
	for i, f := range sch.Flows() {
		fu := mc.fuOf[f.Source]
		if fu == nil {
			return nil, fmt.Errorf("emulator: flow %v source not hosted", f)
		}
		if kSame[f.Source] == nil {
			kSame[f.Source] = make(map[int]int)
		}
		ib := inBefore(f.Source, f.Order)
		is := inSame(f.Source, f.Order)
		os := outSame[f.Source][f.Order]
		for pkg := 1; pkg <= sch.Packages(sched.FlowID(i)); pkg++ {
			kSame[f.Source][f.Order]++
			k := kSame[f.Source][f.Order]
			need := ib
			if is > 0 && os > 0 {
				need = ib + (k*is+os-1)/os
			}
			fu.program = append(fu.program, emitEntry{flow: sched.FlowID(i), pkg: pkg, need: need})
		}
	}

	mc.bindHandlers()

	mc.stageLeft = make([]int, sch.NumStages())
	mc.stageStart = make([]engine.Time, sch.NumStages())
	mc.stageEnd = make([]engine.Time, sch.NumStages())
	for si, st := range sch.Stages() {
		for _, id := range st.Flows {
			mc.stageLeft[si] += sch.Packages(id)
		}
	}
	return mc, nil
}

// bindHandlers builds the per-element event handlers once. The
// simulation loop then schedules these bound closures instead of
// allocating a fresh closure per event — the dominant allocation
// source of the dispatch path before the pooled kernel (the handlers
// read the owning element's in-flight state at fire time).
func (mc *machine) bindHandlers() {
	for _, g := range mc.segs {
		g := g
		g.pump = func(now engine.Time) { mc.pumpSegment(g, now) }
	}
	for _, fu := range mc.fus {
		fu := fu
		fu.computeDone = func(t engine.Time) { mc.requestTransfer(fu, fu.pending, t) }
		fu.intraRun = func(grantAt engine.Time) {
			mc.runIntra(fu, fu.pending, mc.segment(fu.seg), grantAt)
		}
		fu.fillRun = func(grantAt engine.Time) {
			mc.runFill(fu, fu.pending, mc.segment(fu.seg), fu.xferBuf, fu.xferDst, grantAt)
		}
		fu.attempt = func(t engine.Time) {
			buf := fu.xferBuf
			buf.reserved = true
			grantT := mc.caGrant(t)
			if mc.plat.CAHopTicks > 0 {
				setup := mc.caClock.NextEdge(grantT) + mc.caClock.Ticks(int64(fu.xferHops*mc.plat.CAHopTicks))
				if mc.cfg.Trace.Enabled() {
					mc.cfg.Trace.AddInterval("CA", traceOverhead, int64(grantT), int64(setup),
						fmt.Sprintf("chain setup %d->%d", fu.seg, fu.xferDst))
				}
				grantT = setup
			}
			g := mc.segment(fu.seg)
			mc.pushRequest(g, &busReq{at: grantT, prio: 1, id: int(fu.proc)}, fu.fillRun)
		}
		fu.intraEnd = func(now engine.Time) {
			e := fu.pending
			g := mc.segment(fu.seg)
			fu.sent++
			mc.deliver(e.flow, e.pkg, now)
			mc.pumpSegment(g, now)
		}
		fu.fillEnd = func(now engine.Time) { mc.finishFill(fu, now) }
	}
	for _, buf := range mc.buffers {
		buf := buf
		buf.nextSeg = buf.bu.Left
		if buf.rightward {
			buf.nextSeg = buf.bu.Right
		}
		if buf.rightward {
			buf.next = mc.buffers[buKey{buf.nextSeg, true}]
		} else {
			buf.next = mc.buffers[buKey{buf.nextSeg - 1, false}]
		}
		buf.id = buID(buf)
		buf.startFn = func(now engine.Time) {
			if buf.nextSeg == buf.pkg.dstSeg {
				buf.forward = nil
				mc.queueUnload(buf, now)
				return
			}
			if buf.next.free() {
				buf.fwdAttempt(now)
			} else {
				buf.next.waiters = append(buf.next.waiters, buf.fwdAttempt)
			}
		}
		buf.fwdAttempt = func(now engine.Time) {
			buf.next.reserved = true
			buf.forward = buf.next
			mc.queueUnload(buf, now)
		}
		buf.unloadRun = func(grantAt engine.Time) {
			mc.runUnload(buf, buf.forward, mc.segment(buf.nextSeg), grantAt)
		}
		buf.unloadEnd = func(now engine.Time) { mc.finishUnload(buf, now) }
	}
}

func (mc *machine) segment(index int) *segState { return mc.segs[index-1] }

func (mc *machine) grantTicks() int64 { return int64(mc.cfg.Overheads.GrantTicks) }
func (mc *machine) syncTicks() int64  { return int64(mc.cfg.Overheads.SyncTicks) }

// itemsInPackage returns the number of data items the pkg-th (1-based)
// package of flow id carries: the platform package size except for a
// possibly partial final package.
func (mc *machine) itemsInPackage(id sched.FlowID, pkg int) int {
	total := mc.sch.Flow(id).Items
	rest := total - (pkg-1)*mc.s
	if rest > mc.s {
		return mc.s
	}
	if rest < 0 {
		return 0
	}
	return rest
}

// computeTicks returns the FU processing cost for one package: the
// flow's C value, scaled by the package's item count relative to the
// model's nominal package size when one is declared (work is a
// property of the data, not of the packaging).
func (mc *machine) computeTicks(id sched.FlowID, pkg int) int64 {
	c := int64(mc.sch.Flow(id).Ticks)
	if mc.nominal <= 0 {
		return c
	}
	items := int64(mc.itemsInPackage(id, pkg))
	return (c*items + int64(mc.nominal) - 1) / int64(mc.nominal)
}

// run drives the simulation to completion and assembles the report.
func (mc *machine) run() (*Report, error) {
	mc.met.runs.Inc()
	if mc.cfg.Observer != nil && mc.sch.NumStages() > 0 {
		mc.cfg.Observer.StageStarted(mc.sch.Stages()[0].Order, 0)
	}
	for _, fu := range mc.fus {
		mc.advanceFU(fu, 0)
	}
	var wallStart time.Time
	if mc.met.enabled {
		wallStart = time.Now()
	}
	end, err := mc.sim.Run()
	if err != nil {
		return nil, err
	}
	if mc.met.enabled {
		if secs := time.Since(wallStart).Seconds(); secs > 0 {
			mc.met.simRate.Set(float64(end) / secs)
			mc.met.evRate.Set(float64(mc.sim.Steps()) / secs)
		}
	}
	if mc.stage < len(mc.stageLeft) {
		return nil, mc.deadlockError()
	}
	return mc.report(), nil
}

// deadlockError builds a diagnostic for a model that cannot make
// progress (e.g. a same-order dependency cycle).
func (mc *machine) deadlockError() error {
	de := &DeadlockError{
		Stage:       mc.stage,
		Order:       mc.sch.Stages()[mc.stage].Order,
		Undelivered: mc.stageLeft[mc.stage],
	}
	for _, fu := range mc.fus {
		if fu.next >= len(fu.program) || fu.busy {
			continue
		}
		e := fu.program[fu.next]
		if mc.sch.StageOf(e.flow) != mc.stage {
			continue
		}
		de.Blocked = append(de.Blocked, BlockedProc{Proc: fu.proc, Need: e.need, Have: fu.received})
	}
	return de
}

// advanceFU starts the FU's next emission if it is eligible: the flow's
// stage is active and the firing gate is satisfied.
func (mc *machine) advanceFU(fu *fuState, now engine.Time) {
	if fu.busy || fu.next >= len(fu.program) || mc.stage >= len(mc.stageLeft) {
		return
	}
	e := fu.program[fu.next]
	if mc.sch.StageOf(e.flow) != mc.stage {
		return
	}
	if fu.received < e.need {
		return
	}
	fu.busy = true
	fu.next++
	clock := mc.segment(fu.seg).clock
	start := clock.NextEdge(now)
	if !fu.started {
		fu.started = true
		fu.startPs = start
	}
	compEnd := start + clock.Ticks(mc.computeTicks(e.flow, e.pkg))
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(e.flow)
		mc.cfg.Trace.AddInterval(fu.proc.String(), traceCompute, int64(start), int64(compEnd),
			fmt.Sprintf("%s pkg %d/%d", flowLabel(f), e.pkg, mc.sch.Packages(e.flow)))
	}
	fu.pending = e
	mc.sim.At(compEnd, prioCompute, fu.computeDone)
}

func flowLabel(f psdf.Flow) string {
	return fmt.Sprintf("%s->%s", f.Source, f.Target)
}

// requestTransfer raises the bus request for a computed package:
// directly at the local SA for intra-segment targets, via the CA and
// the border-unit chain otherwise.
func (mc *machine) requestTransfer(fu *fuState, e emitEntry, now engine.Time) {
	f := mc.sch.Flow(e.flow)
	src := fu.seg
	dst := src
	if f.Target != psdf.SystemOutput {
		dst = mc.plat.SegmentOf(f.Target)
	}
	g := mc.segment(src)
	if src == dst {
		g.intraReq++
		mc.pushRequest(g, &busReq{at: now, prio: 1, id: int(fu.proc)}, fu.intraRun)
		return
	}

	g.interReq++
	rightward := dst > src
	fu.xferDst = dst
	fu.xferHops = mc.plat.Hops(src, dst)
	buf := mc.firstBuffer(src, rightward)
	fu.xferBuf = buf
	if buf.free() {
		fu.attempt(now)
	} else {
		buf.waiters = append(buf.waiters, fu.attempt)
	}
}

// firstBuffer returns the border-unit buffer a master on segment src
// streams into for the given direction.
func (mc *machine) firstBuffer(src int, rightward bool) *buBuffer {
	if rightward {
		return mc.buffers[buKey{src, true}]
	}
	return mc.buffers[buKey{src - 1, false}]
}

// caGrant records an inter-segment request at the CA and returns the
// time the grant becomes effective. The estimation model grants
// immediately; the refined model serialises requests over CASetTicks.
func (mc *machine) caGrant(now engine.Time) engine.Time {
	mc.caRequests++
	mc.met.caRequests.Inc()
	set := int64(mc.cfg.Overheads.CASetTicks)
	if set == 0 {
		return now
	}
	t := mc.caClock.NextEdge(maxTime(now, mc.caBusyUntil))
	grant := t + mc.caClock.Ticks(set)
	mc.caBusyUntil = grant
	mc.cfg.Trace.AddInterval("CA", traceOverhead, int64(t), int64(grant), "grant set")
	return grant
}

// caRelease charges the CA's grant-reset work after the source segment
// finished its part of an inter-segment transfer.
func (mc *machine) caRelease(end engine.Time) {
	reset := int64(mc.cfg.Overheads.CAResetTicks)
	if reset == 0 {
		return
	}
	t := mc.caClock.NextEdge(maxTime(end, mc.caBusyUntil))
	mc.caBusyUntil = t + mc.caClock.Ticks(reset)
	mc.cfg.Trace.AddInterval("CA", traceOverhead, int64(t), int64(mc.caBusyUntil), "grant reset")
}

// pushRequest queues a bus request on segment g and schedules a grant
// decision.
func (mc *machine) pushRequest(g *segState, r *busReq, run func(engine.Time)) {
	r.seq = mc.reqSeq
	mc.reqSeq++
	r.run = run
	g.queue = append(g.queue, r)
	mc.scheduleGrant(g, maxTime(r.at, mc.sim.Now()))
}

func (mc *machine) scheduleGrant(g *segState, at engine.Time) {
	mc.sim.At(maxTime(at, mc.sim.Now()), prioGrant, g.pump)
}

// pumpSegment is the SA's arbitration step: when the bus is free it
// grants the best eligible pending request (border-unit unloads before
// masters, then request time, then requester id).
func (mc *machine) pumpSegment(g *segState, now engine.Time) {
	if len(g.queue) == 0 {
		return
	}
	if now < g.busyUntil {
		mc.met.denials[g.index-1].Inc()
		mc.scheduleGrant(g, g.busyUntil)
		return
	}
	best := -1
	for i, r := range g.queue {
		if r.at > now {
			continue
		}
		if best < 0 || reqLess(mc.cfg.Policy, r, g.queue[best]) {
			best = i
		}
	}
	if best < 0 {
		earliest := engine.MaxTime
		for _, r := range g.queue {
			if r.at < earliest {
				earliest = r.at
			}
		}
		mc.scheduleGrant(g, earliest)
		return
	}
	r := g.queue[best]
	g.queue = append(g.queue[:best], g.queue[best+1:]...)
	mc.met.grants[g.index-1].Inc()
	mc.met.contention[g.index-1].Observe(int64(now - r.at))
	if mc.cfg.Observer != nil {
		mc.cfg.Observer.TransferGranted(g.index, int64(now))
	}
	r.run(now)
}

// runIntra performs an intra-segment package transfer: the bus is
// occupied for GrantTicks + s ticks of the segment clock, and the
// package is delivered to the local slave at the end.
func (mc *machine) runIntra(fu *fuState, e emitEntry, g *segState, grantAt engine.Time) {
	start := g.clock.NextEdge(grantAt)
	dataStart := start + g.clock.Ticks(mc.grantTicks()+mc.header)
	end := dataStart + g.clock.Ticks(int64(mc.itemsInPackage(e.flow, e.pkg)))
	g.busyUntil = end
	g.lastBusy = end
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(e.flow)
		mc.cfg.Trace.AddInterval(fmt.Sprintf("Segment %d", g.index), traceTransfer, int64(start), int64(end),
			fmt.Sprintf("%s pkg %d", flowLabel(f), e.pkg))
	}
	mc.sim.At(end, prioEffect, fu.intraEnd)
}

// runFill performs the first hop of an inter-segment transfer: the
// master streams the package into the reserved border-unit buffer over
// its own segment bus.
func (mc *machine) runFill(fu *fuState, e emitEntry, g *segState, buf *buBuffer, dstSeg int, grantAt engine.Time) {
	items := mc.itemsInPackage(e.flow, e.pkg)
	start := g.clock.NextEdge(grantAt)
	dataStart := start + g.clock.Ticks(mc.grantTicks()+mc.header)
	end := dataStart + g.clock.Ticks(int64(items))
	g.busyUntil = end
	g.lastBusy = end
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(e.flow)
		mc.cfg.Trace.AddInterval(fmt.Sprintf("Segment %d", g.index), traceTransfer, int64(start), int64(end),
			fmt.Sprintf("%s pkg %d fill %s", flowLabel(f), e.pkg, buf.bu.Name()))
		mc.cfg.Trace.AddInterval(buf.bu.Name(), traceBULoad, int64(dataStart), int64(end),
			fmt.Sprintf("%s pkg %d", flowLabel(f), e.pkg))
	}
	mc.sim.At(end, prioEffect, fu.fillEnd)
}

// finishFill is the bound fill-completed handler body: the package is
// now sitting in the reserved border-unit buffer, the source segment
// is released and the next hop is arranged.
func (mc *machine) finishFill(fu *fuState, now engine.Time) {
	e := fu.pending
	buf := fu.xferBuf
	g := mc.segment(fu.seg)
	items := mc.itemsInPackage(e.flow, e.pkg)
	st := mc.bus[buf.bu.Left]
	mc.caRelease(now)
	fullAt := now + g.clock.Ticks(mc.syncTicks())
	buf.reserved = false
	buf.occupied = true
	buf.pkg = transitPkg{flow: e.flow, pkg: e.pkg, items: items, srcSeg: fu.seg, dstSeg: fu.xferDst, fullAt: fullAt}
	st.in++
	st.loadTicks += int64(items)
	mc.met.buLoad[buf.bu.Left].Add(int64(items))
	if buf.rightward {
		st.recvFromLeft++
		g.toRight++
	} else {
		st.recvFromRight++
		g.toLeft++
	}
	// The master holds its circuit until the package reaches its
	// destination: it is released by the delivery, not here
	// (end-to-end, circuit-switched transfer semantics).
	fu.sent++
	mc.pumpSegment(g, now)
	mc.startUnload(buf, fullAt)
}

// startUnload arranges the next hop for a loaded buffer: either a
// delivery onto the destination segment, or a forward into the next
// border unit of the route (which must first be free).
func (mc *machine) startUnload(buf *buBuffer, t engine.Time) {
	mc.sim.At(maxTime(t, mc.sim.Now()), prioCompute, buf.startFn)
}

// queueUnload raises the unload request on the buffer's next segment.
// buf.forward has been set by the caller: nil for a delivery onto the
// destination segment, the next buffer of the chain otherwise.
func (mc *machine) queueUnload(buf *buBuffer, now engine.Time) {
	ns := mc.segment(buf.nextSeg)
	ns.intraReq++
	mc.pushRequest(ns, &busReq{at: now, prio: 0, id: buf.id}, buf.unloadRun)
}

// buID gives border-unit buffers a deterministic requester identity
// disjoint from process ids (which are non-negative).
func buID(buf *buBuffer) int {
	id := -(buf.bu.Left*2 + 1)
	if buf.rightward {
		id--
	}
	return id
}

// runUnload performs one forwarding hop: the buffer's package crosses
// onto segment ns, either delivered to the target FU (forward == nil)
// or loaded into the next border unit.
func (mc *machine) runUnload(buf *buBuffer, forward *buBuffer, ns *segState, grantAt engine.Time) {
	pkg := buf.pkg
	start := ns.clock.NextEdge(grantAt)
	dataStart := start + ns.clock.Ticks(mc.grantTicks()+mc.syncTicks()+mc.header)
	end := dataStart + ns.clock.Ticks(int64(pkg.items))
	ns.busyUntil = end
	ns.lastBusy = end
	st := mc.bus[buf.bu.Left]
	// The waiting period (WP) of section 4: from the package being
	// loaded until the next segment's arbiter grants the unload,
	// rounded up to whole ticks of the receiving clock domain.
	if wait := int64(start - pkg.fullAt); wait > 0 {
		ticks := (wait + ns.clock.PeriodPs() - 1) / ns.clock.PeriodPs()
		st.waitTicks += ticks
		mc.met.buWait[buf.bu.Left].Add(ticks)
		if mc.cfg.Trace.Enabled() {
			mc.cfg.Trace.AddInterval(buf.bu.Name(), traceBUWait, int64(pkg.fullAt), int64(start),
				fmt.Sprintf("%s pkg %d", flowLabel(mc.sch.Flow(pkg.flow)), pkg.pkg))
		}
	}
	st.unloadTicks += int64(pkg.items)
	mc.met.buUnload[buf.bu.Left].Add(int64(pkg.items))
	if mc.cfg.Trace.Enabled() {
		f := mc.sch.Flow(pkg.flow)
		mc.cfg.Trace.AddInterval(fmt.Sprintf("Segment %d", ns.index), traceTransfer, int64(start), int64(end),
			fmt.Sprintf("%s pkg %d unload %s", flowLabel(f), pkg.pkg, buf.bu.Name()))
		mc.cfg.Trace.AddInterval(buf.bu.Name(), traceBUUnload, int64(dataStart), int64(end),
			fmt.Sprintf("%s pkg %d", flowLabel(f), pkg.pkg))
	}
	buf.dataStartPs = dataStart
	mc.sim.At(end, prioEffect, buf.unloadEnd)
}

// finishUnload is the bound unload-completed handler body: the
// package has crossed onto the next segment — deliver it or load it
// into the forward buffer, then hand the freed buffer to any waiter
// and pump the segment.
func (mc *machine) finishUnload(buf *buBuffer, now engine.Time) {
	pkg := buf.pkg
	forward := buf.forward
	ns := mc.segment(buf.nextSeg)
	st := mc.bus[buf.bu.Left]
	st.out++
	if buf.rightward {
		st.sentToRight++
	} else {
		st.sentToLeft++
	}
	buf.occupied = false
	buf.pkg = transitPkg{}
	mc.serveWaiters(buf, now)
	if forward == nil {
		mc.deliver(pkg.flow, pkg.pkg, now)
	} else {
		fst := mc.bus[forward.bu.Left]
		fullAt := now + ns.clock.Ticks(mc.syncTicks())
		forward.reserved = false
		forward.occupied = true
		forward.pkg = transitPkg{flow: pkg.flow, pkg: pkg.pkg, items: pkg.items, srcSeg: pkg.srcSeg, dstSeg: pkg.dstSeg, fullAt: fullAt}
		fst.in++
		fst.loadTicks += int64(pkg.items)
		mc.met.buLoad[forward.bu.Left].Add(int64(pkg.items))
		if forward.rightward {
			fst.recvFromLeft++
		} else {
			fst.recvFromRight++
		}
		if mc.cfg.Trace.Enabled() {
			mc.cfg.Trace.AddInterval(forward.bu.Name(), traceBULoad, int64(buf.dataStartPs), int64(now),
				fmt.Sprintf("%s pkg %d", flowLabel(mc.sch.Flow(pkg.flow)), pkg.pkg))
		}
		mc.startUnload(forward, fullAt)
	}
	mc.pumpSegment(ns, now)
}

// serveWaiters hands a freed buffer to the first registered waiter.
func (mc *machine) serveWaiters(buf *buBuffer, now engine.Time) {
	if !buf.free() || len(buf.waiters) == 0 {
		return
	}
	w := buf.waiters[0]
	buf.waiters = buf.waiters[1:]
	w(now)
}

// deliver completes one package: the target process's receive counter
// advances, the stage accounting decrements, and blocked FUs are
// re-examined.
func (mc *machine) deliver(id sched.FlowID, pkg int, now engine.Time) {
	f := mc.sch.Flow(id)
	mc.met.delivered.Inc()
	if now > mc.endPs {
		mc.endPs = now
	}
	if mc.cfg.Observer != nil {
		mc.cfg.Observer.PackageDelivered(int(f.Source), int(f.Target), pkg, int64(now))
	}
	if sfu := mc.fuOf[f.Source]; sfu != nil {
		sfu.endPs = now
		sfu.busy = false
		mc.advanceFU(sfu, now)
	}
	if f.Target != psdf.SystemOutput {
		tfu := mc.fuOf[f.Target]
		tfu.received++
		tfu.lastRecv = now
		tfu.gotRecv = true
		mc.advanceFU(tfu, now)
	}
	si := mc.sch.StageOf(id)
	mc.stageLeft[si]--
	if mc.stageLeft[si] < 0 {
		panic(fmt.Sprintf("emulator: stage %d over-delivered", si))
	}
	if now > mc.stageEnd[si] {
		mc.stageEnd[si] = now
	}
	if si == mc.stage && mc.stageLeft[si] == 0 {
		mc.stage++
		if mc.stage < len(mc.stageStart) {
			mc.stageStart[mc.stage] = now
			if mc.cfg.Observer != nil {
				mc.cfg.Observer.StageStarted(mc.sch.Stages()[mc.stage].Order, int64(now))
			}
		}
		for _, fu := range mc.fus {
			mc.advanceFU(fu, now)
		}
	}
}

// report assembles the monitoring results following the accounting
// rules of section 4: each arbiter's TCT counts ticks from the start
// of the emulation to its own last activity; the CA additionally
// counts until the monitor detects completion; and the total execution
// time is the maximum over the arbiters of TCT × clock period.
func (mc *machine) report() *Report {
	r := &Report{
		Platform:    mc.plat.String(),
		PackageSize: mc.s,
		Refined:     !mc.cfg.Overheads.Zero(),
		EndPs:       mc.endPs,
		Steps:       mc.sim.Steps(),
	}
	for _, g := range mc.segs {
		seg := mc.plat.Segment(g.index)
		tct := g.clock.TicksElapsed(g.lastBusy)
		sa := SAStats{
			Segment:       g.index,
			Clock:         seg.Clock,
			TCT:           tct,
			IntraRequests: g.intraReq,
			InterRequests: g.interReq,
			ExecTimePs:    engine.Time(tct * g.clock.PeriodPs()),
		}
		r.SAs = append(r.SAs, sa)
		r.Segments = append(r.Segments, SegmentStats{Segment: g.index, ToLeft: g.toLeft, ToRight: g.toRight, LastBusy: g.lastBusy})
	}
	caTCT := mc.caClock.TicksElapsed(mc.endPs) + mc.cfg.DetectTicks
	r.CA = CAStats{
		Clock:         mc.plat.CAClock,
		TCT:           caTCT,
		InterRequests: mc.caRequests,
		ExecTimePs:    engine.Time(caTCT * mc.caClock.PeriodPs()),
	}
	r.ExecutionTimePs = r.CA.ExecTimePs
	for _, sa := range r.SAs {
		if sa.ExecTimePs > r.ExecutionTimePs {
			r.ExecutionTimePs = sa.ExecTimePs
		}
	}
	for _, bu := range mc.plat.BUs() {
		st := mc.bus[bu.Left]
		r.BUs = append(r.BUs, BUStats{
			Name:          bu.Name(),
			Left:          bu.Left,
			Right:         bu.Right,
			InPackages:    st.in,
			OutPackages:   st.out,
			RecvFromLeft:  st.recvFromLeft,
			SentToLeft:    st.sentToLeft,
			RecvFromRight: st.recvFromRight,
			SentToRight:   st.sentToRight,
			TCT:           st.loadTicks + st.unloadTicks + st.waitTicks,
			LoadTicks:     st.loadTicks,
			UnloadTicks:   st.unloadTicks,
			WaitTicks:     st.waitTicks,
		})
	}
	for si, st := range mc.sch.Stages() {
		pkgs := 0
		for _, id := range st.Flows {
			pkgs += mc.sch.Packages(id)
		}
		r.Stages = append(r.Stages, StageStats{
			Order:    st.Order,
			Packages: pkgs,
			StartPs:  mc.stageStart[si],
			EndPs:    mc.stageEnd[si],
		})
	}
	for _, fu := range mc.fus {
		ps := ProcessStats{
			Process:       fu.proc,
			Segment:       fu.seg,
			StartPs:       fu.startPs,
			EndPs:         fu.endPs,
			SentPackages:  fu.sent,
			RecvPackages:  fu.received,
			LastReceivePs: fu.lastRecv,
		}
		if fu.sent == 0 && fu.gotRecv {
			ps.StartPs = fu.lastRecv
			ps.EndPs = fu.lastRecv
			mc.cfg.Trace.AddMark(fu.proc.String(), "received last package", int64(fu.lastRecv))
		}
		r.Processes = append(r.Processes, ps)
	}
	return r
}

func maxTime(a, b engine.Time) engine.Time {
	if a > b {
		return a
	}
	return b
}
