package emulator_test

// Machine-reuse correctness: a warm (pooled) Machine must be
// indistinguishable from a fresh one — byte-identical reports,
// identical errors — no matter what ran on it before, including runs
// that failed, deadlocked or hit the step limit. These tests are the
// emulator-level half of the reuse battery; the conform `pooled`
// oracle and the serve pool stress cover the stack above.

import (
	"bytes"
	"math/rand"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// reuseCase is one (model, platform, config) triple of the mixed
// workload the reuse tests interleave on a single machine.
type reuseCase struct {
	name string
	m    *psdf.Model
	plat *platform.Platform
	cfg  emulator.Config
}

// reuseWorkload builds a diverse mix: the paper's applications on
// their platforms, synthetic shapes, random models, refined and
// estimation configs, different package sizes — so consecutive runs
// on the shared machine differ in segment count, FU count, program
// length and buffer topology.
func reuseWorkload(t *testing.T) []reuseCase {
	t.Helper()
	refined := emulator.Config{Overheads: emulator.Overheads{GrantTicks: 1, SyncTicks: 2, CASetTicks: 3, CAResetTicks: 1}}
	cases := []reuseCase{
		{"mp3-p3", apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{}},
		{"mp3-p2-refined", apps.MP3Model(), apps.MP3Platform2(36), refined},
		{"mp3-p1", apps.MP3Model(), apps.MP3Platform1(36), emulator.Config{}},
		{"mp3-moved", apps.MP3Model(), apps.MP3Platform3MovedP9(48), emulator.Config{}},
		{"jpeg", apps.JPEGModel(), apps.JPEGPlatform3(64), refined},
	}
	pipe := apps.Pipeline(4, 120, 7)
	pp := platform.New("pipe", 100*platform.MHz, 40)
	pp.AddSegment(100*platform.MHz, 0, 1)
	pp.AddSegment(50*platform.MHz, 2, 3, 4)
	cases = append(cases, reuseCase{"pipeline", pipe, pp, emulator.Config{}})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		m := apps.RandomModel(rng, 4, 3, 32)
		plat := apps.RandomPlatform(rng, m, 4, 32)
		cfg := emulator.Config{}
		if i%2 == 1 {
			cfg = refined
		}
		cases = append(cases, reuseCase{name: "random", m: m, plat: plat, cfg: cfg})
	}
	return cases
}

// reportBytes runs one case on the given runner and returns the report
// JSON (nil on error) and the error string ("" on success).
func reportBytes(t *testing.T, run func() (*emulator.Report, error)) ([]byte, string) {
	t.Helper()
	r, err := run()
	if err != nil {
		return nil, err.Error()
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b, ""
}

// TestMachineReuseByteIdentical interleaves the whole workload through
// one shared machine, twice, asserting every warm report is
// byte-identical to a fresh-machine run of the same case.
func TestMachineReuseByteIdentical(t *testing.T) {
	cases := reuseWorkload(t)
	mc := emulator.NewMachine()
	for pass := 0; pass < 2; pass++ {
		for i, c := range cases {
			fresh, freshErr := reportBytes(t, func() (*emulator.Report, error) {
				return emulator.Run(c.m, c.plat, c.cfg)
			})
			warm, warmErr := reportBytes(t, func() (*emulator.Report, error) {
				return mc.Run(c.m, c.plat, c.cfg)
			})
			if warmErr != freshErr {
				t.Fatalf("pass %d case %d (%s): warm err %q, fresh err %q", pass, i, c.name, warmErr, freshErr)
			}
			if !bytes.Equal(warm, fresh) {
				t.Fatalf("pass %d case %d (%s): warm report differs from fresh", pass, i, c.name)
			}
		}
	}
}

// dirtyOps is the op alphabet of the dirty-machine property test. Each
// op leaves the shared machine in some state — completed, aborted
// mid-run by the step limit, stuck in a deadlock, or explicitly reset
// — and the next op must be unaffected.
const (
	opRun = iota
	opAbort
	opDeadlock
	opReset
	numOps
)

// deadlockCase returns a model that passes static validation but
// cannot make progress at run time (a same-order firing cycle).
func deadlockCase() reuseCase {
	m := psdf.NewModel("cycle")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 2, Target: 1, Items: 36, Order: 2, Ticks: 5})
	p := platform.New("one-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2)
	return reuseCase{name: "deadlock", m: m, plat: p, cfg: emulator.Config{}}
}

// applyOp executes one op of a dirty-machine sequence on the shared
// machine and checks it against a fresh-machine reference.
func applyOp(t *testing.T, mc *emulator.Machine, op int, c reuseCase) {
	t.Helper()
	switch op % numOps {
	case opReset:
		mc.Reset()
		return
	case opAbort:
		// A tiny step limit aborts the emulation mid-flight, leaving
		// events queued, buffers occupied and requests pending.
		c.cfg.StepLimit = 7
	case opDeadlock:
		c = deadlockCase()
	}
	fresh, freshErr := reportBytes(t, func() (*emulator.Report, error) {
		return emulator.Run(c.m, c.plat, c.cfg)
	})
	warm, warmErr := reportBytes(t, func() (*emulator.Report, error) {
		return mc.Run(c.m, c.plat, c.cfg)
	})
	if warmErr != freshErr {
		t.Fatalf("op %d case %s: warm err %q, fresh err %q", op%numOps, c.name, warmErr, freshErr)
	}
	if !bytes.Equal(warm, fresh) {
		t.Fatalf("op %d case %s: warm report differs from fresh", op%numOps, c.name)
	}
}

// TestMachineReuseDirty drives random op sequences — runs, mid-run
// aborts, deadlocks, resets — through one shared machine, comparing
// every run against a fresh machine. Reset must be total: no op may
// observe anything a previous (possibly failed) op left behind.
func TestMachineReuseDirty(t *testing.T) {
	cases := reuseWorkload(t)
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mc := emulator.NewMachine()
		for step := 0; step < 24; step++ {
			applyOp(t, mc, rng.Intn(numOps), cases[rng.Intn(len(cases))])
		}
	}
}

// FuzzMachineReuse fuzzes dirty-machine op sequences: each input byte
// selects an (op, case) pair, and every run through the shared
// machine must match a fresh machine bit for bit.
func FuzzMachineReuse(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0})
	f.Add([]byte{1, 1, 1, 0})
	f.Add([]byte{2, 0, 2, 0})
	f.Add([]byte{3, 3, 0})
	f.Add([]byte{byte(opAbort), byte(opDeadlock), byte(opAbort), byte(opRun)})
	var cases []reuseCase
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 16 {
			ops = ops[:16]
		}
		if cases == nil {
			cases = reuseWorkload(t)
		}
		mc := emulator.NewMachine()
		for _, b := range ops {
			applyOp(t, mc, int(b)%numOps, cases[(int(b)/numOps)%len(cases)])
		}
	})
}

// TestMachineResetAllocs pins the arena guarantee: once warm, Reset
// performs zero heap allocations.
func TestMachineResetAllocs(t *testing.T) {
	mc := emulator.NewMachine()
	m, plat := apps.MP3Model(), apps.MP3Platform3(36)
	if _, err := mc.Run(m, plat, emulator.Config{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() { mc.Reset() })
	if allocs != 0 {
		t.Errorf("Reset allocates %v per call, want 0", allocs)
	}
}

// TestMachineWarmRunAllocs pins the construction-overhead win: a warm
// machine re-running the MP3 estimation allocates well under half of
// what a fresh machine spends per run (the flat arrays, bound
// handlers, kernel slots and queues are all reused; what remains is
// the emission-program derivation and the report assembly).
func TestMachineWarmRunAllocs(t *testing.T) {
	m, plat := apps.MP3Model(), apps.MP3Platform3(36)
	fresh := testing.AllocsPerRun(10, func() {
		if _, err := emulator.Run(m, plat, emulator.Config{}); err != nil {
			t.Fatal(err)
		}
	})
	mc := emulator.NewMachine()
	if _, err := mc.Run(m, plat, emulator.Config{}); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(10, func() {
		if _, err := mc.Run(m, plat, emulator.Config{}); err != nil {
			t.Fatal(err)
		}
	})
	if warm*2 > fresh {
		t.Errorf("warm run allocates %v, fresh %v — want warm < fresh/2", warm, fresh)
	}
}
