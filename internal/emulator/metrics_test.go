package emulator_test

import (
	"bytes"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/obs"
)

// TestRunMetrics checks the emulator's metric catalogue against the
// report counters of the paper's main run: the registry must agree
// with the monitoring results the report derives independently.
func TestRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	r, err := emulator.Run(m, p, emulator.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(false)

	if got := snap["segbus_emu_runs_total"]; got != 1 {
		t.Errorf("runs = %v", got)
	}
	if got := snap["segbus_emu_engine_events_total"]; got != float64(r.Steps) {
		t.Errorf("events = %v, report steps = %d", got, r.Steps)
	}
	if got := snap["segbus_emu_ca_requests_total"]; got != float64(r.CA.InterRequests) {
		t.Errorf("ca requests = %v, report = %d", got, r.CA.InterRequests)
	}
	if got := snap["segbus_emu_packages_delivered_total"]; got != float64(r.TotalPackagesSent()) {
		t.Errorf("delivered = %v, sent = %d", got, r.TotalPackagesSent())
	}
	for _, bu := range r.BUs {
		if got := snap[`segbus_emu_bu_load_ticks_total{bu="`+bu.Name+`"}`]; got != float64(bu.LoadTicks) {
			t.Errorf("%s load ticks = %v, report = %d", bu.Name, got, bu.LoadTicks)
		}
		if got := snap[`segbus_emu_bu_unload_ticks_total{bu="`+bu.Name+`"}`]; got != float64(bu.UnloadTicks) {
			t.Errorf("%s unload ticks = %v, report = %d", bu.Name, got, bu.UnloadTicks)
		}
		if got := snap[`segbus_emu_bu_wait_ticks_total{bu="`+bu.Name+`"}`]; got != float64(bu.WaitTicks) {
			t.Errorf("%s wait ticks = %v, report = %d", bu.Name, got, bu.WaitTicks)
		}
	}
	// One grant per intra-segment request plus one per BU-chain hop;
	// cheap lower bound: at least as many grants as packages sent.
	var grants float64
	for id, v := range snap {
		if strings.HasPrefix(id, "segbus_emu_arbiter_grants_total{") {
			if !strings.Contains(id, `policy="bu-first"`) {
				t.Errorf("grant metric missing policy label: %s", id)
			}
			grants += v
		}
	}
	if grants < float64(r.TotalPackagesSent()) {
		t.Errorf("grants = %v < packages sent %d", grants, r.TotalPackagesSent())
	}
	// The contention histogram saw every grant.
	var waits float64
	for id, v := range snap {
		if strings.HasPrefix(id, "segbus_emu_bus_contention_wait_ps{") && strings.HasSuffix(id, "_count") {
			waits += v
		}
	}
	if waits != grants {
		t.Errorf("contention observations = %v, grants = %v", waits, grants)
	}

	// The volatile rate gauges are set but excluded from the snapshot.
	for _, rate := range []string{"segbus_emu_sim_ps_per_wall_second", "segbus_emu_events_per_wall_second"} {
		if _, ok := snap[rate]; ok {
			t.Errorf("volatile gauge %s leaked into deterministic snapshot", rate)
		}
		if all := reg.Snapshot(true); all[rate] <= 0 {
			t.Errorf("%s = %v", rate, all[rate])
		}
	}
	// The events-per-second gauge derives from the kernel's step
	// counter: both rate gauges divide by the same wall time, so their
	// ratio must reproduce EndPs/Steps (up to float rounding).
	all := reg.Snapshot(true)
	if evs, sim := all["segbus_emu_events_per_wall_second"], all["segbus_emu_sim_ps_per_wall_second"]; evs > 0 && sim > 0 {
		got, want := sim/evs, float64(r.EndPs)/float64(r.Steps)
		if diff := (got - want) / want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("rate gauges disagree on steps: sim/ev = %v, EndPs/Steps = %v", got, want)
		}
	}

	// The exposition renders without error and carries the catalogue.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"segbus_emu_runs_total", "segbus_emu_engine_events_total",
		"segbus_emu_arbiter_grants_total", "segbus_emu_arbiter_denials_total",
		"segbus_emu_bus_contention_wait_ps", "segbus_emu_bu_load_ticks_total",
		"segbus_emu_ca_requests_total", "segbus_emu_packages_delivered_total",
	} {
		if !strings.Contains(buf.String(), "# TYPE "+fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
}

// TestRunMetricsDeterministic: the deterministic snapshot is
// identical across two runs of the same scenario.
func TestRunMetricsDeterministic(t *testing.T) {
	one := func() ([]byte, error) {
		reg := obs.NewRegistry()
		if _, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{Metrics: reg}); err != nil {
			return nil, err
		}
		return reg.JSON()
	}
	a, err := one()
	if err != nil {
		t.Fatal(err)
	}
	b, err := one()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("metrics JSON differs across identical runs")
	}
}

// TestRunMetricsAccumulate: a shared registry accumulates across runs
// (the sweep-harness usage).
func TestRunMetricsAccumulate(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 3; i++ {
		if _, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{Metrics: reg}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot(false)["segbus_emu_runs_total"]; got != 3 {
		t.Errorf("runs = %v", got)
	}
}

// TestRunMetricsPolicyLabel: the grant counters carry the configured
// policy name.
func TestRunMetricsPolicyLabel(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36),
		emulator.Config{Metrics: reg, Policy: emulator.PolicyFIFO}); err != nil {
		t.Fatal(err)
	}
	found := false
	for id := range reg.Snapshot(false) {
		if strings.HasPrefix(id, "segbus_emu_arbiter_grants_total{") {
			if !strings.Contains(id, `policy="fifo"`) {
				t.Errorf("wrong policy label: %s", id)
			}
			found = true
		}
	}
	if !found {
		t.Error("no grant metrics recorded")
	}
}
