package emulator_test

import (
	"math/rand"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
)

// BenchmarkMP3ThreeSegments is the cost of the paper's main run.
func BenchmarkMP3ThreeSegments(b *testing.B) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := emulator.Run(m, p, emulator.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMP3SmallPackages doubles the package count (s=18).
func BenchmarkMP3SmallPackages(b *testing.B) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(18)
	for i := 0; i < b.N; i++ {
		if _, err := emulator.Run(m, p, emulator.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMP3Refined adds the overhead charging of the refined model.
func BenchmarkMP3Refined(b *testing.B) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	ov := emulator.Overheads{GrantTicks: 8, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2}
	for i := 0; i < b.N; i++ {
		if _, err := emulator.Run(m, p, emulator.Config{Overheads: ov}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeRandomApp emulates a bigger synthetic application (a
// few hundred packages across four segments).
func BenchmarkLargeRandomApp(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	m := apps.RandomModel(rng, 6, 6, 36)
	p := apps.RandomPlatform(rng, m, 4, 36)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emulator.Run(m, p, emulator.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
