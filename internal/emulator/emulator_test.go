package emulator

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"segbus/internal/engine"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/trace"
)

// twoProc returns a one-segment platform hosting P0 and P1 plus a
// single-flow model: one 36-item package, 10 ticks of processing.
func twoProc() (*psdf.Model, *platform.Platform) {
	m := psdf.NewModel("two")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 10})
	p := platform.New("one-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	return m, p
}

func TestIntraSegmentTiming(t *testing.T) {
	m, p := twoProc()
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 100 MHz -> 10000 ps ticks. Compute: 10 ticks = 100000 ps.
	// Transfer: 36 ticks = 360000 ps. Delivery at 460000 ps.
	p0 := r.Process(0)
	if p0 == nil || p0.StartPs != 0 {
		t.Fatalf("P0 stats = %+v", p0)
	}
	if got := p0.EndPs; got != 460000 {
		t.Errorf("P0 end = %v, want 460000ps", got)
	}
	p1 := r.Process(1)
	if p1.RecvPackages != 1 || p1.LastReceivePs != 460000 {
		t.Errorf("P1 stats = %+v", p1)
	}
	sa := r.SA(1)
	if sa.TCT != 46 {
		t.Errorf("SA1 TCT = %d, want 46", sa.TCT)
	}
	if sa.IntraRequests != 1 || sa.InterRequests != 0 {
		t.Errorf("SA1 requests = %d/%d", sa.IntraRequests, sa.InterRequests)
	}
	if r.CA.InterRequests != 0 {
		t.Errorf("CA requests = %d", r.CA.InterRequests)
	}
	// Execution time: the CA (same 100 MHz here) counts until the end
	// plus the default detection latency.
	wantCA := int64(46) + DefaultDetectTicks
	if r.CA.TCT != wantCA {
		t.Errorf("CA TCT = %d, want %d", r.CA.TCT, wantCA)
	}
	if r.ExecutionTimePs != engine.Time(wantCA*10000) {
		t.Errorf("execution time = %v", r.ExecutionTimePs)
	}
}

func TestHeaderTicksExtendTransfers(t *testing.T) {
	m, p := twoProc()
	p.HeaderTicks = 4
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Process(0).EndPs; got != 500000 {
		t.Errorf("P0 end with 4 header ticks = %v, want 500000ps", got)
	}
}

func TestComputeTicksScaleWithNominal(t *testing.T) {
	m, p := twoProc()
	m.SetNominalPackageSize(36)
	p.PackageSize = 18 // two 18-item packages; 5 compute ticks each
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Per package: 5 ticks compute + 18 ticks transfer = 23 ticks.
	// Two packages back to back: 46 ticks = 460000 ps, same total as
	// one 36-item package (work is a property of the data).
	if got := r.Process(0).EndPs; got != 460000 {
		t.Errorf("P0 end with s=18 and nominal 36 = %v, want 460000ps", got)
	}
	if got := r.Process(1).RecvPackages; got != 2 {
		t.Errorf("P1 received %d packages, want 2", got)
	}
}

func TestWithoutNominalComputeIsPerPackage(t *testing.T) {
	m, p := twoProc() // nominal unset
	p.PackageSize = 18
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Per package: 10 ticks compute + 18 transfer = 28; two packages
	// = 56 ticks.
	if got := r.Process(0).EndPs; got != 560000 {
		t.Errorf("P0 end = %v, want 560000ps", got)
	}
}

func interModel() (*psdf.Model, *platform.Platform) {
	m := psdf.NewModel("inter")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 100})
	p := platform.New("two-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	p.AddSegment(100*platform.MHz, 1)
	return m, p
}

func TestInterSegmentCounters(t *testing.T) {
	m, p := interModel()
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bu := r.BU("BU12")
	if bu == nil {
		t.Fatal("no BU12 stats")
	}
	if bu.InPackages != 2 || bu.OutPackages != 2 {
		t.Errorf("BU12 in/out = %d/%d, want 2/2", bu.InPackages, bu.OutPackages)
	}
	if bu.RecvFromLeft != 2 || bu.SentToRight != 2 || bu.RecvFromRight != 0 || bu.SentToLeft != 0 {
		t.Errorf("BU12 direction counters = %+v", bu)
	}
	if bu.LoadTicks != 72 || bu.UnloadTicks != 72 {
		t.Errorf("BU12 load/unload = %d/%d, want 72/72 (UP = 2s per package)", bu.LoadTicks, bu.UnloadTicks)
	}
	if bu.TCT < 144 {
		t.Errorf("BU12 TCT = %d, want >= UP 144", bu.TCT)
	}
	if r.SA(1).InterRequests != 2 || r.SA(1).IntraRequests != 0 {
		t.Errorf("SA1 requests = %+v", r.SA(1))
	}
	// The receiving SA handles the two BU deliveries as intra work.
	if r.SA(2).IntraRequests != 2 {
		t.Errorf("SA2 intra = %d, want 2", r.SA(2).IntraRequests)
	}
	if r.CA.InterRequests != 2 {
		t.Errorf("CA requests = %d, want 2", r.CA.InterRequests)
	}
	if r.Segments[0].ToRight != 2 || r.Segments[0].ToLeft != 0 {
		t.Errorf("segment 1 direction counters = %+v", r.Segments[0])
	}
	if r.Process(1).RecvPackages != 2 {
		t.Errorf("P1 received %d", r.Process(1).RecvPackages)
	}
}

func TestLeftwardTransfer(t *testing.T) {
	m := psdf.NewModel("left")
	m.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 36, Order: 1, Ticks: 5})
	p := platform.New("two-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	p.AddSegment(100*platform.MHz, 1)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bu := r.BU("BU12")
	if bu.RecvFromRight != 1 || bu.SentToLeft != 1 || bu.RecvFromLeft != 0 || bu.SentToRight != 0 {
		t.Errorf("leftward counters = %+v", bu)
	}
	if r.Segments[1].ToLeft != 1 {
		t.Errorf("segment 2 toLeft = %d", r.Segments[1].ToLeft)
	}
}

func TestMultiHopTransit(t *testing.T) {
	// P0 (segment 1) sends one package through the transit segment 2
	// to P2 (segment 3); P1 merely occupies segment 2 with an earlier
	// local-input flow so the platform mapping is complete.
	m := psdf.NewModel("transit")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 36, Order: 2, Ticks: 5})
	p := platform.New("three-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	p.AddSegment(100*platform.MHz, 1)
	p.AddSegment(100*platform.MHz, 2)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bu12, bu23 := r.BU("BU12"), r.BU("BU23")
	// Both packages cross BU12; only the second reaches BU23.
	if bu12.InPackages != 2 || bu12.OutPackages != 2 {
		t.Errorf("BU12 = %+v", bu12)
	}
	if bu23.InPackages != 1 || bu23.OutPackages != 1 || bu23.RecvFromLeft != 1 || bu23.SentToRight != 1 {
		t.Errorf("BU23 = %+v", bu23)
	}
	// The transit segment forwards but originates nothing.
	if r.Segments[1].ToLeft != 0 || r.Segments[1].ToRight != 0 {
		t.Errorf("transit segment counters = %+v", r.Segments[1])
	}
	if r.Segments[0].ToRight != 2 {
		t.Errorf("source segment counters = %+v", r.Segments[0])
	}
	// The middle SA handled one delivery and one forward; the last SA
	// one delivery.
	if r.SA(2).IntraRequests != 2 || r.SA(3).IntraRequests != 1 {
		t.Errorf("forward requests: SA2=%d SA3=%d", r.SA(2).IntraRequests, r.SA(3).IntraRequests)
	}
	if r.Process(2).RecvPackages != 1 {
		t.Error("P2 never got the package")
	}
}

func TestCAHopTicksDelayInterTransfers(t *testing.T) {
	m := psdf.NewModel("hops")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	build := func(hop int) *platform.Platform {
		p := platform.New("two-seg", 100*platform.MHz, 36)
		p.CAHopTicks = hop
		p.AddSegment(100*platform.MHz, 0)
		p.AddSegment(100*platform.MHz, 1)
		return p
	}
	fast, err := Run(m, build(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(m, build(50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.ExecutionTimePs <= fast.ExecutionTimePs {
		t.Errorf("CAHopTicks had no effect: %v vs %v", slow.ExecutionTimePs, fast.ExecutionTimePs)
	}
}

func TestStageBarrierSerializesOrders(t *testing.T) {
	// Two flows with distinct orders from independent processes: the
	// second may not start before the first completes.
	m := psdf.NewModel("barrier")
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 36, Order: 1, Ticks: 50})
	m.AddFlow(psdf.Flow{Source: 1, Target: 3, Items: 36, Order: 2, Ticks: 50})
	p := platform.New("one-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2, 3)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Process(1).StartPs < r.Process(2).LastReceivePs {
		t.Errorf("order-2 flow started at %v before order-1 delivery at %v",
			r.Process(1).StartPs, r.Process(2).LastReceivePs)
	}
}

func TestSameOrderFlowsOverlap(t *testing.T) {
	// Two flows sharing one order from different segments run
	// concurrently: total time must be far below the serial sum.
	m := psdf.NewModel("concurrent")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 360, Order: 1, Ticks: 100})
	m.AddFlow(psdf.Flow{Source: 2, Target: 3, Items: 360, Order: 1, Ticks: 100})
	p := platform.New("two-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	p.AddSegment(100*platform.MHz, 2, 3)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One flow alone: 10 packages x (100 + 36) ticks = 1360 ticks.
	// Serial would be ~2720; concurrent should stay near 1360.
	if got := r.CA.TCT; got > 1600 {
		t.Errorf("same-order flows did not overlap: CA TCT = %d", got)
	}
}

func TestPipelinedGatingWithinStage(t *testing.T) {
	// P0 -> P1 -> P2 share one ordering number: P1 forwards packages
	// as they arrive (packet-SDF pipelining), so P1 starts before P0
	// finishes.
	m := psdf.NewModel("pipe")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 360, Order: 1, Ticks: 100})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 360, Order: 1, Ticks: 10})
	p := platform.New("one-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Process(1).StartPs >= r.Process(0).EndPs {
		t.Errorf("P1 did not pipeline: started %v, P0 ended %v", r.Process(1).StartPs, r.Process(0).EndPs)
	}
	if r.Process(2).RecvPackages != 10 {
		t.Errorf("P2 received %d packages", r.Process(2).RecvPackages)
	}
}

func TestSystemOutputFlow(t *testing.T) {
	m := psdf.NewModel("sysout")
	m.AddFlow(psdf.Flow{Source: 0, Target: psdf.SystemOutput, Items: 72, Order: 1, Ticks: 10})
	p := platform.New("one-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Process(0).SentPackages != 2 {
		t.Errorf("P0 sent %d", r.Process(0).SentPackages)
	}
	if r.TotalPackagesSent() != 2 {
		t.Errorf("total sent = %d", r.TotalPackagesSent())
	}
}

func TestPartialFinalPackage(t *testing.T) {
	m := psdf.NewModel("ragged")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 40, Order: 1, Ticks: 0})
	p := platform.New("two-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0)
	p.AddSegment(100*platform.MHz, 1)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bu := r.BU("BU12")
	if bu.InPackages != 2 {
		t.Fatalf("packages = %d, want 2", bu.InPackages)
	}
	// 36 + 4 items loaded and unloaded.
	if bu.LoadTicks != 40 || bu.UnloadTicks != 40 {
		t.Errorf("partial package ticks = %d/%d, want 40/40", bu.LoadTicks, bu.UnloadTicks)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// P1 and P2 feed each other within one ordering number: the model
	// passes static validation (both are reachable from P0 and no
	// flow precedes its source's earliest input) yet neither can fire
	// first at run time.
	m := psdf.NewModel("cycle")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 2, Target: 1, Items: 36, Order: 2, Ticks: 5})
	p := platform.New("one-seg", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2)
	_, err := Run(m, p, Config{})
	if err == nil {
		t.Fatal("deadlocked model completed")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q does not mention deadlock", err)
	}
}

func TestRunValidates(t *testing.T) {
	m, p := twoProc()
	bad := psdf.NewModel("bad")
	if _, err := Run(bad, p, Config{}); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := Run(m, platform.New("empty", 100*platform.MHz, 36), Config{}); err == nil {
		t.Error("empty platform accepted")
	}
	partial := platform.New("partial", 100*platform.MHz, 36)
	partial.AddSegment(100*platform.MHz, 0)
	if _, err := Run(m, partial, Config{}); err == nil {
		t.Error("unmapped process accepted")
	}
	roles := platform.New("roles", 100*platform.MHz, 36)
	s := roles.AddSegment(100 * platform.MHz)
	s.FUs = append(s.FUs, platform.FU{Process: 0, Kind: platform.SlaveOnly}, platform.FU{Process: 1})
	if _, err := Run(m, roles, Config{}); err == nil {
		t.Error("slave-only master accepted")
	}
}

func TestDeterminism(t *testing.T) {
	m := psdf.NewModel("det")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 144, Order: 1, Ticks: 30})
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 144, Order: 1, Ticks: 30})
	m.AddFlow(psdf.Flow{Source: 1, Target: 3, Items: 72, Order: 2, Ticks: 10})
	m.AddFlow(psdf.Flow{Source: 2, Target: 3, Items: 72, Order: 2, Ticks: 10})
	p := platform.New("det", 111*platform.MHz, 36)
	p.AddSegment(91*platform.MHz, 0, 1)
	p.AddSegment(98*platform.MHz, 2, 3)
	a, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestTraceRecording(t *testing.T) {
	m, p := twoProc()
	tr := &trace.Trace{}
	if _, err := Run(m, p, Config{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) == 0 {
		t.Fatal("no intervals recorded")
	}
	sawCompute, sawTransfer := false, false
	for _, iv := range tr.Intervals {
		switch iv.Kind {
		case trace.Compute:
			sawCompute = true
		case trace.Transfer:
			sawTransfer = true
		}
		if iv.End < iv.Start {
			t.Errorf("interval ends before it starts: %+v", iv)
		}
	}
	if !sawCompute || !sawTransfer {
		t.Errorf("missing interval kinds: compute=%v transfer=%v", sawCompute, sawTransfer)
	}
	foundMark := false
	for _, mk := range tr.Marks {
		if mk.Element == "P1" && strings.Contains(mk.Label, "received last package") {
			foundMark = true
		}
	}
	if !foundMark {
		t.Error("sink mark not recorded")
	}
}

func TestOverheadsSlowDown(t *testing.T) {
	m, p := interModel()
	base, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ov := range []Overheads{
		{GrantTicks: 5},
		{SyncTicks: 3},
		{CASetTicks: 4},
		{CASetTicks: 1, CAResetTicks: 9},
		{GrantTicks: 5, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2},
	} {
		r, err := Run(m, p, Config{Overheads: ov})
		if err != nil {
			t.Fatalf("%+v: %v", ov, err)
		}
		if r.ExecutionTimePs <= base.ExecutionTimePs {
			t.Errorf("overheads %+v did not slow the run: %v vs %v", ov, r.ExecutionTimePs, base.ExecutionTimePs)
		}
		if !r.Refined {
			t.Errorf("overheads %+v not flagged as refined", ov)
		}
	}
	if base.Refined {
		t.Error("zero overheads flagged as refined")
	}
}

func TestReportString(t *testing.T) {
	m, p := interModel()
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{
		"P0, Start Time =",
		"P1 received last package at",
		"CA TCT =",
		"Execution time =",
		"BU12:",
		"Packets transfered to Left",
		"SA1:",
		"SA2:",
		"Total intra-segment requests",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestStepLimitGuards(t *testing.T) {
	m, p := twoProc()
	if _, err := Run(m, p, Config{StepLimit: 1}); err == nil {
		t.Error("step limit 1 did not abort")
	}
}

func TestReportAccessorsReturnNilForUnknown(t *testing.T) {
	m, p := twoProc()
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SA(9) != nil || r.BU("BU99") != nil || r.Process(42) != nil {
		t.Error("unknown lookups must return nil")
	}
}

func TestConfigValidation(t *testing.T) {
	m, p := twoProc()
	bad := []Config{
		{Overheads: Overheads{GrantTicks: -1}},
		{Overheads: Overheads{SyncTicks: -2}},
		{Overheads: Overheads{CASetTicks: -1}},
		{Overheads: Overheads{CAResetTicks: -3}},
		{DetectTicks: -1},
		{Policy: Policy(99)},
	}
	for i, cfg := range bad {
		if _, err := Run(m, p, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStageStats(t *testing.T) {
	m := psdf.NewModel("stages")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 10})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 3, Ticks: 10})
	p := platform.New("one", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1, 2)
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 2 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	s0, s1 := r.Stages[0], r.Stages[1]
	if s0.Order != 1 || s0.Packages != 2 || s1.Order != 3 || s1.Packages != 1 {
		t.Errorf("stage shapes: %+v %+v", s0, s1)
	}
	if s0.StartPs != 0 {
		t.Errorf("first stage starts at %v", s0.StartPs)
	}
	// Stages are contiguous: the next stage activates exactly when the
	// previous drains.
	if s1.StartPs != s0.EndPs {
		t.Errorf("stage 2 start %v != stage 1 end %v", s1.StartPs, s0.EndPs)
	}
	if s1.EndPs != r.EndPs {
		t.Errorf("last stage end %v != run end %v", s1.EndPs, r.EndPs)
	}
}

// countingObserver tallies emulation events for the Observer tests.
type countingObserver struct {
	stages, grants, deliveries int
	lastAt                     int64
	ordered                    bool
}

func newCountingObserver() *countingObserver { return &countingObserver{ordered: true} }

func (o *countingObserver) see(at int64) {
	if at < o.lastAt {
		o.ordered = false
	}
	o.lastAt = at
}
func (o *countingObserver) StageStarted(order int, at int64)             { o.stages++; o.see(at) }
func (o *countingObserver) TransferGranted(segment int, at int64)        { o.grants++; o.see(at) }
func (o *countingObserver) PackageDelivered(src, dst, pkg int, at int64) { o.deliveries++; o.see(at) }

func TestObserverEvents(t *testing.T) {
	m := psdf.NewModel("obs")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 5})
	p := platform.New("two", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	p.AddSegment(100*platform.MHz, 2)
	obs := newCountingObserver()
	r, err := Run(m, p, Config{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.stages != 2 {
		t.Errorf("stage events = %d, want 2", obs.stages)
	}
	if obs.deliveries != 3 {
		t.Errorf("delivery events = %d, want 3", obs.deliveries)
	}
	// Grants: 2 intra + 1 fill + 1 unload = 4.
	if obs.grants != 4 {
		t.Errorf("grant events = %d, want 4", obs.grants)
	}
	if !obs.ordered {
		t.Error("observer events not time-ordered")
	}
	// The observer must not perturb the run.
	plain, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != r.String() {
		t.Error("observer changed the emulation result")
	}
}

func TestReportJSON(t *testing.T) {
	m, p := interModel()
	r, err := Run(m, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version         int   `json:"version"`
		ExecutionTimePs int64 `json:"execution_time_ps"`
		CA              struct {
			TCT int64 `json:"tct"`
		} `json:"ca"`
		SAs       []struct{ Segment int } `json:"sas"`
		BUs       []struct{ Name string } `json:"bus"`
		Processes []struct {
			Process string `json:"process"`
		} `json:"processes"`
		Stages []struct{ Packages int } `json:"stages"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Version != 1 || doc.ExecutionTimePs != int64(r.ExecutionTimePs) || doc.CA.TCT != r.CA.TCT {
		t.Errorf("header mismatch: %+v", doc)
	}
	if len(doc.SAs) != 2 || len(doc.BUs) != 1 || len(doc.Processes) != 2 || len(doc.Stages) != 1 {
		t.Errorf("shape mismatch: %+v", doc)
	}
	if doc.Processes[0].Process != "P0" {
		t.Errorf("process naming: %+v", doc.Processes)
	}
}
