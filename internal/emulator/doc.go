package emulator

// Timing model reference (the full rationale lives in DESIGN.md).
//
// Time base: integer picoseconds. Every element acts on edges of its
// own clock domain (segments and the CA each have one).
//
// Per package of a flow (Pt, D, T, C):
//
//	compute   C ticks on the hosting segment's clock; when the model
//	          declares a nominal package size, scaled by the package's
//	          actual item count (work belongs to the data, not to the
//	          packaging).
//	transfer  HeaderTicks + items ticks of bus occupancy per hop.
//
// Intra-segment: request -> SA grant -> one bus transaction -> local
// delivery.
//
// Inter-segment (circuit-switched, section 2.1 of the paper): the SA
// forwards the request to the CA, which charges CAHopTicks per hop for
// chain set-up; the master fills the first border unit's
// direction-specific depth-one buffer and its segment is released in
// cascade; each hop then forwards over the next segment's bus after
// that SA's grant (waiting periods are accounted to the BU); the
// initiating master is released by the final delivery.
//
// Schedule: flows run stage by stage in T order; all flows of the
// minimal uncompleted order may run concurrently; within a process,
// emission k of an order waits for earlier-order inputs plus
// ceil(k·I/O) same-order input packages.
//
// Monitoring (section 4 accounting): each SA's TCT counts clock ticks
// from emulation start to its last bus activity; the CA's counts to
// the global end plus the monitor's detection latency; BU TCT = load +
// waiting + unload ticks. Total execution time = max over arbiters of
// TCT x clock period.
//
// The estimation model charges none of the SA grant, clock-domain
// synchronisation or CA set/reset costs (the paper's emulator skips
// them); Config.Overheads re-enables them for the refined ground-truth
// model (package realplat).
