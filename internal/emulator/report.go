package emulator

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/engine"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// SAStats are the monitoring results of one segment arbiter.
type SAStats struct {
	Segment       int         // 1-based segment index
	Clock         platform.Hz // segment clock domain
	TCT           int64       // total clock ticks
	IntraRequests int         // package requests handled for intra-segment traffic (incl. BU deliveries/forwards)
	InterRequests int         // package requests forwarded to the CA
	ExecTimePs    engine.Time // TCT × clock period
}

// CAStats are the monitoring results of the central arbiter.
type CAStats struct {
	Clock         platform.Hz
	TCT           int64
	InterRequests int // inter-segment package requests received
	ExecTimePs    engine.Time
}

// BUStats are the monitoring results of one border unit. "Left" and
// "Right" refer to the two segments the unit bridges (Left+1 ==
// Right); package counts are split by the side they crossed.
type BUStats struct {
	Name          string // "BU12"
	Left, Right   int    // bridged segment indices
	InPackages    int    // total packages loaded
	OutPackages   int    // total packages unloaded
	RecvFromLeft  int    // loaded from the left segment (travelling right)
	SentToLeft    int    // unloaded onto the left segment (travelling left)
	RecvFromRight int    // loaded from the right segment (travelling left)
	SentToRight   int    // unloaded onto the right segment (travelling right)
	TCT           int64  // load + wait + unload ticks
	LoadTicks     int64
	UnloadTicks   int64
	WaitTicks     int64 // accumulated waiting periods (WP)
}

// SegmentStats are the per-segment package direction counters of the
// paper's report ("Packets transfered to Left/Right"): inter-segment
// packages originated by masters of the segment, by direction.
type SegmentStats struct {
	Segment  int
	ToLeft   int
	ToRight  int
	LastBusy engine.Time // end of the segment bus's last transaction
}

// StageStats are the timing of one schedule stage: when its flows
// became eligible and when its last package was delivered.
type StageStats struct {
	Order    int         // the stage's ordering number T
	Packages int         // package deliveries in the stage
	StartPs  engine.Time // stage activation (all earlier stages drained)
	EndPs    engine.Time // last delivery of the stage
}

// ProcessStats are the per-process results: the times the hosted FU
// first started processing and finally finished its sends, plus
// package counters. For pure sinks StartPs/EndPs describe the receive
// activity instead.
type ProcessStats struct {
	Process       psdf.ProcessID
	Segment       int // hosting segment (1-based)
	StartPs       engine.Time
	EndPs         engine.Time
	SentPackages  int
	RecvPackages  int
	LastReceivePs engine.Time // time of last delivery to this process (sinks: "received last package at")
}

// Report is the complete result of one emulation run.
type Report struct {
	Platform        string      // allocation rendering, Figure 9 style
	PackageSize     int         // s
	Refined         bool        // true when overheads were charged (ground-truth model)
	ExecutionTimePs engine.Time // max over arbiters of TCT × period (section 4 formula)
	EndPs           engine.Time // time of the last platform activity
	CA              CAStats
	SAs             []SAStats      // ascending by segment
	BUs             []BUStats      // left to right
	Segments        []SegmentStats // ascending by segment
	Processes       []ProcessStats // ascending by process id
	Stages          []StageStats   // schedule order
	Steps           uint64         // simulation events processed
}

// SA returns the stats of the 1-based segment arbiter, or nil.
func (r *Report) SA(segment int) *SAStats {
	for i := range r.SAs {
		if r.SAs[i].Segment == segment {
			return &r.SAs[i]
		}
	}
	return nil
}

// BU returns the stats of the named border unit ("BU12"), or nil.
func (r *Report) BU(name string) *BUStats {
	for i := range r.BUs {
		if r.BUs[i].Name == name {
			return &r.BUs[i]
		}
	}
	return nil
}

// Process returns the stats of the given process, or nil.
func (r *Report) Process(p psdf.ProcessID) *ProcessStats {
	for i := range r.Processes {
		if r.Processes[i].Process == p {
			return &r.Processes[i]
		}
	}
	return nil
}

// TotalPackagesSent sums the packages sent by all processes.
func (r *Report) TotalPackagesSent() int {
	n := 0
	for _, p := range r.Processes {
		n += p.SentPackages
	}
	return n
}

// String renders the report in the layout of the paper's section 4
// results block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Allocation: %s (package size %d)\n", r.Platform, r.PackageSize)

	procs := make([]ProcessStats, len(r.Processes))
	copy(procs, r.Processes)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Process < procs[j].Process })
	for _, p := range procs {
		if p.SentPackages > 0 {
			fmt.Fprintf(&b, "%s, Start Time = %dps, End Time = %dps\n", p.Process, int64(p.StartPs), int64(p.EndPs))
		}
	}
	for _, p := range procs {
		if p.SentPackages == 0 && p.RecvPackages > 0 {
			fmt.Fprintf(&b, "%s received last package at %dps\n", p.Process, int64(p.LastReceivePs))
		}
	}
	fmt.Fprintf(&b, "CA TCT = %d\n", r.CA.TCT)
	fmt.Fprintf(&b, "Execution time = %dps @ %v\n", int64(r.ExecutionTimePs), r.CA.Clock)
	for _, bu := range r.BUs {
		fmt.Fprintf(&b, "%s:\tTotal input packages = %d, Total output packages = %d\n", bu.Name, bu.InPackages, bu.OutPackages)
		fmt.Fprintf(&b, "\tPackage Received from Segment %d = %d, Package Transfered to Segment %d = %d\n", bu.Left, bu.RecvFromLeft, bu.Left, bu.SentToLeft)
		fmt.Fprintf(&b, "\tPackage Received from Segment %d = %d, Package Transfered to Segment %d = %d\n", bu.Right, bu.RecvFromRight, bu.Right, bu.SentToRight)
		fmt.Fprintf(&b, "\tTCT = %d\n", bu.TCT)
	}
	for _, s := range r.Segments {
		fmt.Fprintf(&b, "Segment %d:\tPackets transfered to Left = %d, Packets transfered to Right = %d\n", s.Segment, s.ToLeft, s.ToRight)
	}
	for _, sa := range r.SAs {
		fmt.Fprintf(&b, "SA%d:\tTCT = %d, Total intra-segment requests = %d, Total inter-segment requests = %d\n",
			sa.Segment, sa.TCT, sa.IntraRequests, sa.InterRequests)
		fmt.Fprintf(&b, "\tExecution Time = %dps @ %v\n", int64(sa.ExecTimePs), sa.Clock)
	}
	return b.String()
}
