package schema

import (
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
)

// BenchmarkParsePSDF measures the emulator set-up parse of the MP3
// scheme.
func BenchmarkParsePSDF(b *testing.B) {
	data, err := m2t.GeneratePSDF(apps.MP3Model())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePSDF(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParsePSM measures the platform reconstruction.
func BenchmarkParsePSM(b *testing.B) {
	data, err := m2t.GeneratePSM(apps.MP3Platform3(36))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePSM(data); err != nil {
			b.Fatal(err)
		}
	}
}
