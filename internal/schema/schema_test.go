package schema

import (
	"math/rand"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
	"segbus/internal/platform"
)

func TestParsePSDFRoundTrip(t *testing.T) {
	m := apps.MP3Model()
	data, err := m2t.GeneratePSDF(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePSDF(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcesses() != m.NumProcesses() {
		t.Errorf("processes: %d vs %d", got.NumProcesses(), m.NumProcesses())
	}
	if got.NominalPackageSize() != m.NominalPackageSize() {
		t.Errorf("nominal: %d vs %d", got.NominalPackageSize(), m.NominalPackageSize())
	}
	gf, mf := got.Flows(), m.Flows()
	if len(gf) != len(mf) {
		t.Fatalf("flows: %d vs %d", len(gf), len(mf))
	}
	for i := range gf {
		if gf[i] != mf[i] {
			t.Errorf("flow %d: %v vs %v", i, gf[i], mf[i])
		}
	}
	if !got.CommunicationMatrix().Equal(m.CommunicationMatrix()) {
		t.Error("communication matrices diverge after round trip")
	}
}

func TestParsePSMRoundTrip(t *testing.T) {
	for _, build := range []func(int) *platform.Platform{
		apps.MP3Platform1, apps.MP3Platform2, apps.MP3Platform3, apps.MP3Platform3MovedP9,
	} {
		p := build(36)
		data, err := m2t.GeneratePSM(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParsePSM(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumSegments() != p.NumSegments() {
			t.Errorf("%s: segments %d vs %d", p.Name, got.NumSegments(), p.NumSegments())
		}
		if got.String() != p.String() {
			t.Errorf("%s: allocation %q vs %q", p.Name, got.String(), p.String())
		}
		if got.PackageSize != p.PackageSize || got.HeaderTicks != p.HeaderTicks || got.CAHopTicks != p.CAHopTicks {
			t.Errorf("%s: protocol constants lost", p.Name)
		}
		if got.CAClock != p.CAClock {
			t.Errorf("%s: CA clock %v vs %v", p.Name, got.CAClock, p.CAClock)
		}
		for i := range p.Segments {
			if got.Segments[i].Clock != p.Segments[i].Clock {
				t.Errorf("%s: segment %d clock %v vs %v", p.Name, i+1, got.Segments[i].Clock, p.Segments[i].Clock)
			}
		}
	}
}

func TestParsePSMPreservesFUKinds(t *testing.T) {
	p := platform.New("kinds", 100*platform.MHz, 36)
	s := p.AddSegment(90 * platform.MHz)
	s.FUs = append(s.FUs,
		platform.FU{Process: 0, Kind: platform.MasterOnly},
		platform.FU{Process: 1, Kind: platform.SlaveOnly},
		platform.FU{Process: 2, Kind: platform.MasterSlave},
	)
	data, err := m2t.GeneratePSM(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePSM(data)
	if err != nil {
		t.Fatal(err)
	}
	seg := got.Segment(1)
	kinds := map[int]platform.FUKind{}
	for _, fu := range seg.FUs {
		kinds[int(fu.Process)] = fu.Kind
	}
	if kinds[0] != platform.MasterOnly || kinds[1] != platform.SlaveOnly || kinds[2] != platform.MasterSlave {
		t.Errorf("kinds lost: %v", kinds)
	}
}

func TestRandomModelRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		m := apps.RandomModel(rng, 4, 3, 36)
		p := apps.RandomPlatform(rng, m, 3, 36)
		p.HeaderTicks = rng.Intn(30)
		p.CAHopTicks = rng.Intn(30)

		pd, err := m2t.GeneratePSDF(m)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := ParsePSDF(pd)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, pd)
		}
		if gm.NumFlows() != m.NumFlows() || gm.TotalItems() != m.TotalItems() {
			t.Fatalf("trial %d: PSDF round trip lost flows", trial)
		}

		pm, err := m2t.GeneratePSM(p)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := ParsePSM(pm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gp.String() != p.String() {
			t.Fatalf("trial %d: PSM round trip changed allocation", trial)
		}
	}
}

func TestParsePSDFErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":     `<<<`,
		"no root":     `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"></xs:schema>`,
		"bad type":    `<xs:schema xmlns:xs="x"><xs:element name="a" type="App"/></xs:schema>`,
		"bad process": `<xs:schema xmlns:xs="x"><xs:element name="a" type="App"/><xs:complexType name="App"><xs:all><xs:element name="q0" type="Q0"/></xs:all></xs:complexType></xs:schema>`,
		"bad flow":    `<xs:schema xmlns:xs="x"><xs:element name="a" type="App"/><xs:complexType name="App"><xs:all><xs:element name="p0" type="P0"/></xs:all></xs:complexType><xs:complexType name="P0"><xs:all><xs:element name="garbage" type="Transfer"/></xs:all></xs:complexType></xs:schema>`,
		"invalid":     `<xs:schema xmlns:xs="x"><xs:element name="a" type="App"/><xs:complexType name="App"><xs:all><xs:element name="p0" type="P0"/></xs:all></xs:complexType><xs:complexType name="P0"></xs:complexType></xs:schema>`,
		"bad appinfo": `<xs:schema xmlns:xs="x"><xs:annotation><xs:appinfo>nominalPackageSize=abc</xs:appinfo></xs:annotation><xs:element name="a" type="App"/></xs:schema>`,
	}
	for name, doc := range cases {
		if _, err := ParsePSDF([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParsePSMErrors(t *testing.T) {
	valid, err := m2t.GeneratePSM(apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not xml":          `<<<`,
		"no root":          `<xs:schema xmlns:xs="x"></xs:schema>`,
		"missing caClock":  strings.Replace(string(valid), "caClockHz", "weirdKey", 1),
		"missing pkg":      strings.Replace(string(valid), "packageSize", "otherKey", 1),
		"missing segclock": strings.Replace(string(valid), "clockHz=91000000", "nothing=1", 1),
		"bad appinfo":      strings.Replace(string(valid), "caClockHz=111000000", "caClockHz=xyz", 1),
		"bad segment name": strings.Replace(string(valid), `name="segment1"`, `name="segmentX"`, 1),
		"gap in indices":   strings.Replace(string(valid), `name="segment2"`, `name="segment7"`, 1),
		"bad process":      strings.Replace(string(valid), `name="p4" type="P4"`, `name="p4" type="??"`, 1),
	}
	for name, doc := range cases {
		if _, err := ParsePSM([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParsePSMToleratesMissingFUTypes(t *testing.T) {
	// A document that omits process complexTypes defaults FU kinds to
	// master+slave.
	doc := `<xs:schema xmlns:xs="x">
<xs:element name="sbp" type="SBP"/>
<xs:complexType name="SBP">
  <xs:annotation><xs:appinfo>caClockHz=100000000</xs:appinfo><xs:appinfo>packageSize=36</xs:appinfo></xs:annotation>
  <xs:all><xs:element name="segment1" type="Segment1"/><xs:element name="ca" type="CA"/></xs:all>
</xs:complexType>
<xs:complexType name="Segment1">
  <xs:annotation><xs:appinfo>clockHz=90000000</xs:appinfo></xs:annotation>
  <xs:all><xs:element name="p0" type="P0"/><xs:element name="arbiter" type="SA1"/></xs:all>
</xs:complexType>
</xs:schema>`
	p, err := ParsePSM([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Segment(1).FUs[0].Kind != platform.MasterSlave {
		t.Errorf("default kind = %v", p.Segment(1).FUs[0].Kind)
	}
}

func TestParseToleratesDifferentNamespacePrefixes(t *testing.T) {
	// External tools may use "xsd:" (or any prefix) instead of "xs:";
	// parsing matches local names.
	valid, err := m2t.GeneratePSM(apps.MP3Platform1(36))
	if err != nil {
		t.Fatal(err)
	}
	doc := strings.ReplaceAll(string(valid), "xs:", "xsd:")
	doc = strings.ReplaceAll(doc, "xmlns:xsd=", "xmlns:xsd=")
	p, err := ParsePSM([]byte(doc))
	if err != nil {
		t.Fatalf("xsd-prefixed document rejected: %v", err)
	}
	if p.NumSegments() != 1 {
		t.Error("content lost")
	}

	pd, err := m2t.GeneratePSDF(apps.MP3Model())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParsePSDF([]byte(strings.ReplaceAll(string(pd), "xs:", "xsd:")))
	if err != nil {
		t.Fatalf("xsd-prefixed PSDF rejected: %v", err)
	}
	if m.NumFlows() != 20 {
		t.Error("flows lost")
	}
}
