package schema

import (
	"testing"

	"segbus/internal/apps"
	"segbus/internal/m2t"
)

// FuzzParsePSDF feeds arbitrary bytes to the scheme parser: it must
// never panic, and anything it accepts must be a valid model.
func FuzzParsePSDF(f *testing.F) {
	if data, err := m2t.GeneratePSDF(apps.MP3Model()); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`<xs:schema xmlns:xs="x"><xs:element name="a" type="App"/></xs:schema>`))
	f.Add([]byte(``))
	f.Add([]byte(`<<<>>>`))
	f.Add([]byte(`<xs:schema xmlns:xs="x"><xs:annotation><xs:appinfo>nominalPackageSize=36</xs:appinfo></xs:annotation></xs:schema>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParsePSDF(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted an invalid model: %v", err)
		}
	})
}

// FuzzParsePSM likewise for platform schemes.
func FuzzParsePSM(f *testing.F) {
	if data, err := m2t.GeneratePSM(apps.MP3Platform3(36)); err == nil {
		f.Add(data)
	}
	if data, err := m2t.GeneratePSM(apps.MP3Platform1(18)); err == nil {
		f.Add(data)
	}
	f.Add([]byte(``))
	f.Add([]byte(`<xs:schema xmlns:xs="x"><xs:element name="sbp" type="SBP"/></xs:schema>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePSM(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted an invalid platform: %v", err)
		}
	})
}
