package apps

import (
	"testing"

	"segbus/internal/emulator"
	"segbus/internal/place"
	"segbus/internal/psdf"
)

func TestJPEGModelValid(t *testing.T) {
	m := JPEGModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumProcesses() != 11 || m.NumFlows() != 12 {
		t.Errorf("shape = %d processes, %d flows", m.NumProcesses(), m.NumFlows())
	}
	src := m.Sources()
	if len(src) != 1 || src[0] != 0 {
		t.Errorf("sources = %v", src)
	}
	snk := m.Sinks()
	if len(snk) != 1 || snk[0] != 10 {
		t.Errorf("sinks = %v", snk)
	}
	for _, p := range m.Processes() {
		if JPEGProcessRoles[p] == "" {
			t.Errorf("%v lacks a role", p)
		}
	}
}

func TestJPEGDataConservation(t *testing.T) {
	m := JPEGModel()
	cm := m.CommunicationMatrix()
	// Luma carries 4x each chroma component at every stage before RLE.
	if cm.At(0, 1) != 4*cm.At(0, 4) {
		t.Error("4:2:0 subsampling ratio broken at the scatter")
	}
	if cm.At(1, 2) != 4*cm.At(4, 5) {
		t.Error("ratio broken after DCT")
	}
	// RLE compacts by 4x.
	if cm.At(3, 10)*4 != cm.At(2, 3) {
		t.Error("RLE compaction ratio broken")
	}
}

func TestJPEGPlatformsEmulate(t *testing.T) {
	m := JPEGModel()
	p1 := JPEGPlatform1(JPEGPackageSize)
	p3 := JPEGPlatform3(JPEGPackageSize)
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p3.ValidateMapping(m); err != nil {
		t.Fatal(err)
	}
	r1, err := emulator.Run(m, p1, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := emulator.Run(m, p3, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecutionTimePs <= 0 || r3.ExecutionTimePs <= 0 {
		t.Fatal("degenerate runs")
	}
	// The sink received the RLE-compacted volume.
	wantPkgs := (jpegLumaRLE + 2*jpegChromaRLE) / JPEGPackageSize
	if got := r3.Process(10).RecvPackages; got != wantPkgs {
		t.Errorf("P10 received %d packages, want %d", got, wantPkgs)
	}
}

func TestJPEGPlacementMatchesHandAllocation(t *testing.T) {
	// The optimizer's 3-segment score must at least match the
	// hand-built JPEGPlatform3 allocation.
	m := JPEGModel()
	cm := m.CommunicationMatrix()
	opt, err := place.Solve(cm, 3, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hand := place.Allocation{Segments: 3, Of: map[psdf.ProcessID]int{}}
	for _, pr := range []psdf.ProcessID{0, 1, 2, 3} {
		hand.Of[pr] = 0
	}
	for _, pr := range []psdf.ProcessID{4, 5, 6, 7, 8, 9} {
		hand.Of[pr] = 1
	}
	hand.Of[10] = 2
	if place.Score(cm, opt) > place.Score(cm, hand) {
		t.Errorf("optimizer (%d) worse than the hand allocation (%d)",
			place.Score(cm, opt), place.Score(cm, hand))
	}
}
