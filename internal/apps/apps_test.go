package apps

import (
	"math/rand"
	"testing"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func TestMP3ModelMatchesFigure8(t *testing.T) {
	m := MP3Model()
	if err := m.Validate(); err != nil {
		t.Fatalf("MP3 model invalid: %v", err)
	}
	if m.NumProcesses() != 15 {
		t.Errorf("processes = %d, want 15", m.NumProcesses())
	}
	if m.NumFlows() != 20 {
		t.Errorf("flows = %d, want 20", m.NumFlows())
	}
	if !m.CommunicationMatrix().Equal(MP3CommMatrixFigure8()) {
		t.Error("model matrix != Figure 8")
	}
	if m.NominalPackageSize() != 36 {
		t.Errorf("nominal = %d", m.NominalPackageSize())
	}
}

func TestMP3ModelDocumentedFlow(t *testing.T) {
	// The paper documents "P1_576_1_250" as P0's first transfer.
	m := MP3Model()
	f := m.FlowsFrom(0)[0]
	if f.Name() != "P1_576_1_250" {
		t.Errorf("P0's first flow = %q, want P1_576_1_250", f.Name())
	}
}

func TestMP3ModelStructure(t *testing.T) {
	m := MP3Model()
	src := m.Sources()
	if len(src) != 1 || src[0] != 0 {
		t.Errorf("sources = %v, want [P0] (frame decoding)", src)
	}
	snk := m.Sinks()
	if len(snk) != 1 || snk[0] != 14 {
		t.Errorf("sinks = %v, want [P14] (PCM output)", snk)
	}
	// 576 items decode into both channels.
	if m.CommunicationMatrix().At(0, 1) != 576 || m.CommunicationMatrix().At(0, 8) != 576 {
		t.Error("frame decoding outputs wrong")
	}
}

func TestMP3Platforms(t *testing.T) {
	m := MP3Model()
	cases := []struct {
		name  string
		build func(int) *platform.Platform
		segs  int
		alloc string
	}{
		{"1", MP3Platform1, 1, "0 1 2 3 4 5 6 7 8 9 10 11 12 13 14"},
		{"2", MP3Platform2, 2, "4 5 6 7 10 11 12 13 14 || 0 1 2 3 8 9"},
		{"3", MP3Platform3, 3, "0 1 2 3 8 9 10 || 5 6 7 11 12 13 14 || 4"},
	}
	for _, c := range cases {
		p := c.build(36)
		if err := p.Validate(); err != nil {
			t.Errorf("platform %s invalid: %v", c.name, err)
		}
		if err := p.ValidateMapping(m); err != nil {
			t.Errorf("platform %s mapping: %v", c.name, err)
		}
		if p.NumSegments() != c.segs {
			t.Errorf("platform %s segments = %d", c.name, p.NumSegments())
		}
		if p.String() != c.alloc {
			t.Errorf("platform %s allocation %q, want %q (Figure 9)", c.name, p.String(), c.alloc)
		}
	}
}

func TestMP3Platform3MovedP9(t *testing.T) {
	p := MP3Platform3MovedP9(36)
	if got := p.SegmentOf(9); got != 3 {
		t.Errorf("P9 on segment %d, want 3", got)
	}
	if err := p.ValidateMapping(MP3Model()); err != nil {
		t.Error(err)
	}
}

func TestMP3Clocks(t *testing.T) {
	p := MP3Platform3(36)
	if p.Segment(1).Clock != MP3Seg1Clock || p.Segment(2).Clock != MP3Seg2Clock ||
		p.Segment(3).Clock != MP3Seg3Clock || p.CAClock != MP3CAClock {
		t.Error("clock assignment does not match section 4 (91/98/89/111 MHz)")
	}
}

func TestPipeline(t *testing.T) {
	m := Pipeline(5, 72, 10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumProcesses() != 5 || m.NumFlows() != 4 {
		t.Errorf("pipeline shape %d/%d", m.NumProcesses(), m.NumFlows())
	}
	orders := m.Orders()
	if len(orders) != 4 {
		t.Errorf("pipeline orders = %v", orders)
	}
}

func TestPipelinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pipeline(1,...) did not panic")
		}
	}()
	Pipeline(1, 10, 10)
}

func TestForkJoin(t *testing.T) {
	m := ForkJoin(4, 36, 10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumProcesses() != 6 {
		t.Errorf("processes = %d, want 6", m.NumProcesses())
	}
	if got := len(m.FlowsFrom(0)); got != 4 {
		t.Errorf("scatter flows = %d", got)
	}
	if got := len(m.FlowsInto(5)); got != 4 {
		t.Errorf("gather flows = %d", got)
	}
	if len(m.Orders()) != 2 {
		t.Errorf("fork-join orders = %v (scatter and gather phases)", m.Orders())
	}
}

func TestForkJoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ForkJoin(0,...) did not panic")
		}
	}()
	ForkJoin(0, 10, 10)
}

func TestRandomModelAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		m := RandomModel(rng, 5, 4, 36)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomPlatformAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		m := RandomModel(rng, 5, 4, 36)
		p := RandomPlatform(rng, m, 4, 36)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.ValidateMapping(m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMP3ProcessRolesComplete(t *testing.T) {
	m := MP3Model()
	for _, p := range m.Processes() {
		if MP3ProcessRoles[p] == "" {
			t.Errorf("process %v has no documented role", p)
		}
	}
	if _, ok := MP3ProcessRoles[psdf.ProcessID(0)]; !ok {
		t.Error("P0 role missing")
	}
}
