// Package apps provides application models for the SegBus tool-chain:
// the simplified stereo MP3 decoder used by the paper's evaluation
// (section 4, Figures 7–9) and synthetic workload generators used by
// the examples, tests and benchmarks.
package apps

import (
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// MP3 process roles, for documentation and display purposes (the
// paper, section 4: P0 frame decoding, P1/P8 scaling left/right,
// P2/P9 dequantizing left/right, ...).
var MP3ProcessRoles = map[psdf.ProcessID]string{
	0:  "frame decoding",
	1:  "scaling (left)",
	2:  "dequantizing (left)",
	3:  "stereo processing",
	4:  "joint-stereo helper",
	5:  "antialias / IMDCT (left)",
	6:  "frequency inversion (left)",
	7:  "synthesis filterbank (left)",
	8:  "scaling (right)",
	9:  "dequantizing (right)",
	10: "joint-stereo helper (right)",
	11: "antialias / IMDCT (right)",
	12: "frequency inversion (right)",
	13: "synthesis filterbank (right)",
	14: "PCM output",
}

// MP3Model returns the PSDF model of the simplified stereo MP3
// decoder. The flow structure and data-item counts reproduce the
// communication matrix of the paper's Figure 8 exactly; the ordering
// numbers serialise the decode pipeline as in the Figure 10 timeline
// (P0 first, then the right-channel scaling, then the channel
// pipelines, with P14 receiving last); and the per-package tick counts
// include the value the paper documents (250 ticks for the P0→P1
// flow) with the remaining values chosen to land the stage timings in
// the neighbourhood of the published timeline.
func MP3Model() *psdf.Model {
	m := psdf.NewModel("mp3-decoder")
	m.SetNominalPackageSize(MP3PackageSize)
	flows := []psdf.Flow{
		{Source: 0, Target: 1, Items: 576, Order: 1, Ticks: 250},
		{Source: 0, Target: 8, Items: 576, Order: 2, Ticks: 30},
		{Source: 8, Target: 9, Items: 540, Order: 3, Ticks: 290},
		{Source: 8, Target: 3, Items: 36, Order: 3, Ticks: 290},
		{Source: 1, Target: 2, Items: 540, Order: 4, Ticks: 130},
		{Source: 1, Target: 3, Items: 36, Order: 4, Ticks: 130},
		{Source: 2, Target: 3, Items: 540, Order: 5, Ticks: 130},
		{Source: 9, Target: 3, Items: 540, Order: 5, Ticks: 130},
		{Source: 3, Target: 4, Items: 36, Order: 6, Ticks: 150},
		{Source: 3, Target: 10, Items: 36, Order: 6, Ticks: 150},
		{Source: 10, Target: 11, Items: 36, Order: 7, Ticks: 150},
		{Source: 4, Target: 5, Items: 36, Order: 8, Ticks: 150},
		{Source: 3, Target: 5, Items: 540, Order: 9, Ticks: 110},
		{Source: 3, Target: 11, Items: 540, Order: 10, Ticks: 110},
		{Source: 5, Target: 6, Items: 576, Order: 11, Ticks: 140},
		{Source: 11, Target: 12, Items: 576, Order: 12, Ticks: 140},
		{Source: 6, Target: 7, Items: 576, Order: 13, Ticks: 140},
		{Source: 12, Target: 13, Items: 576, Order: 14, Ticks: 140},
		{Source: 7, Target: 14, Items: 576, Order: 15, Ticks: 140},
		{Source: 13, Target: 14, Items: 576, Order: 16, Ticks: 140},
	}
	for _, f := range flows {
		m.AddFlow(f)
	}
	return m
}

// MP3HeaderTicks is the per-package protocol overhead (request,
// addressing and header phases around the data burst) of the paper's
// platform instances.
const MP3HeaderTicks = 25

// MP3CAHopTicks is the central arbiter's per-hop circuit set-up cost
// of the paper's platform instances.
const MP3CAHopTicks = 25

// Clock frequencies of the paper's three-segment configuration
// (section 4): segments 1–3 and the central arbiter.
const (
	MP3Seg1Clock = 91 * platform.MHz
	MP3Seg2Clock = 98 * platform.MHz
	MP3Seg3Clock = 89 * platform.MHz
	MP3CAClock   = 111 * platform.MHz
)

// MP3PackageSize is the package size of the main experiment (36 data
// items per package).
const MP3PackageSize = 36

// MP3Platform3 returns the paper's three-segment configuration
// (Figure 9): segment 1 hosts P0–P3, P8–P10; segment 2 hosts P5–P7,
// P11–P14; segment 3 hosts P4.
func MP3Platform3(packageSize int) *platform.Platform {
	p := platform.New("SBP-3seg", MP3CAClock, packageSize)
	p.HeaderTicks = MP3HeaderTicks
	p.CAHopTicks = MP3CAHopTicks
	p.AddSegment(MP3Seg1Clock, 0, 1, 2, 3, 8, 9, 10)
	p.AddSegment(MP3Seg2Clock, 5, 6, 7, 11, 12, 13, 14)
	p.AddSegment(MP3Seg3Clock, 4)
	return p
}

// MP3Platform3MovedP9 returns the modified three-segment configuration
// of the paper's third accuracy experiment: process P9 shifted from
// segment 1 to segment 3, everything else unchanged.
func MP3Platform3MovedP9(packageSize int) *platform.Platform {
	p := MP3Platform3(packageSize)
	if err := p.MoveProcess(9, 3); err != nil {
		panic(err) // static configuration; cannot fail
	}
	return p
}

// MP3Platform2 returns the paper's two-segment configuration
// (Figure 9): segment 1 hosts P4–P7 and P10–P14, segment 2 hosts
// P0–P3, P8 and P9.
func MP3Platform2(packageSize int) *platform.Platform {
	p := platform.New("SBP-2seg", MP3CAClock, packageSize)
	p.HeaderTicks = MP3HeaderTicks
	p.CAHopTicks = MP3CAHopTicks
	p.AddSegment(MP3Seg1Clock, 4, 5, 6, 7, 10, 11, 12, 13, 14)
	p.AddSegment(MP3Seg2Clock, 0, 1, 2, 3, 8, 9)
	return p
}

// MP3Platform1 returns the paper's single-segment configuration: all
// FUs on the same segment.
func MP3Platform1(packageSize int) *platform.Platform {
	p := platform.New("SBP-1seg", MP3CAClock, packageSize)
	p.HeaderTicks = MP3HeaderTicks
	p.CAHopTicks = MP3CAHopTicks
	p.AddSegment(MP3Seg1Clock, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14)
	return p
}

// MP3CommMatrixFigure8 returns the communication matrix printed as the
// paper's Figure 8, built independently of the PSDF model so tests can
// cross-check the model against the publication.
func MP3CommMatrixFigure8() *psdf.CommMatrix {
	cm := psdf.NewCommMatrix(15)
	entries := []struct {
		src, dst psdf.ProcessID
		items    int
	}{
		{0, 1, 576}, {0, 8, 576},
		{1, 2, 540}, {1, 3, 36},
		{2, 3, 540},
		{3, 4, 36}, {3, 5, 540}, {3, 10, 36}, {3, 11, 540},
		{4, 5, 36},
		{5, 6, 576},
		{6, 7, 576},
		{7, 14, 576},
		{8, 3, 36}, {8, 9, 540},
		{9, 3, 540},
		{10, 11, 36},
		{11, 12, 576},
		{12, 13, 576},
		{13, 14, 576},
	}
	for _, e := range entries {
		cm.Set(e.src, e.dst, e.items)
	}
	return cm
}
