package apps

import (
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// A second case study beyond the paper's MP3 decoder: a baseline JPEG
// encoder operating on one MCU row of a 640-pixel-wide 4:2:0 image.
// The luma path carries four 8x8 blocks per MCU, the two chroma paths
// one block each; data item counts reflect the 64-sample blocks
// flowing between the stages.
//
// Process roles:
//
//	P0  colour conversion + MCU assembly (source)
//	P1  luma DCT            P4 Cb DCT            P7 Cr DCT
//	P2  luma quantiser      P5 Cb quantiser      P8 Cr quantiser
//	P3  luma zigzag/RLE     P6 Cb zigzag/RLE     P9 Cr zigzag/RLE
//	P10 Huffman coder + bitstream assembly (sink)
//
// The three component pipelines share ordering numbers stage by
// stage, so they may execute concurrently when the platform allows.
var JPEGProcessRoles = map[psdf.ProcessID]string{
	0:  "colour conversion / MCU assembly",
	1:  "DCT (luma)",
	2:  "quantiser (luma)",
	3:  "zigzag + RLE (luma)",
	4:  "DCT (Cb)",
	5:  "quantiser (Cb)",
	6:  "zigzag + RLE (Cb)",
	7:  "DCT (Cr)",
	8:  "quantiser (Cr)",
	9:  "zigzag + RLE (Cr)",
	10: "Huffman coder / bitstream",
}

// JPEG data volumes for one MCU row of a 640-wide 4:2:0 frame:
// 40 MCUs x 4 luma blocks x 64 samples, and 40 x 1 block per chroma
// component. RLE compacts the quantised blocks to roughly a quarter.
const (
	jpegLumaItems   = 40 * 4 * 64 // 10240
	jpegChromaItems = 40 * 1 * 64 // 2560
	jpegLumaRLE     = jpegLumaItems / 4
	jpegChromaRLE   = jpegChromaItems / 4
)

// JPEGModel returns the PSDF model of the baseline JPEG encoder.
func JPEGModel() *psdf.Model {
	m := psdf.NewModel("jpeg-encoder")
	m.SetNominalPackageSize(64)
	flows := []psdf.Flow{
		// MCU scatter: luma first, chroma components next.
		{Source: 0, Target: 1, Items: jpegLumaItems, Order: 1, Ticks: 40},
		{Source: 0, Target: 4, Items: jpegChromaItems, Order: 2, Ticks: 40},
		{Source: 0, Target: 7, Items: jpegChromaItems, Order: 2, Ticks: 40},
		// Stage 1: DCT (2-D 8x8, the heavy stage).
		{Source: 1, Target: 2, Items: jpegLumaItems, Order: 3, Ticks: 300},
		{Source: 4, Target: 5, Items: jpegChromaItems, Order: 3, Ticks: 300},
		{Source: 7, Target: 8, Items: jpegChromaItems, Order: 3, Ticks: 300},
		// Stage 2: quantisation.
		{Source: 2, Target: 3, Items: jpegLumaItems, Order: 4, Ticks: 80},
		{Source: 5, Target: 6, Items: jpegChromaItems, Order: 4, Ticks: 80},
		{Source: 8, Target: 9, Items: jpegChromaItems, Order: 4, Ticks: 80},
		// Stage 3: zigzag + RLE compaction into the entropy coder.
		{Source: 3, Target: 10, Items: jpegLumaRLE, Order: 5, Ticks: 60},
		{Source: 6, Target: 10, Items: jpegChromaRLE, Order: 5, Ticks: 60},
		{Source: 9, Target: 10, Items: jpegChromaRLE, Order: 5, Ticks: 60},
	}
	for _, f := range flows {
		m.AddFlow(f)
	}
	return m
}

// JPEGPackageSize is the natural package size of the encoder: one
// 8x8 block per package.
const JPEGPackageSize = 64

// JPEGPlatform3 returns a three-segment configuration separating the
// luma pipeline, the two chroma pipelines and the entropy back end:
// the shape an exploration over this model converges to.
func JPEGPlatform3(packageSize int) *platform.Platform {
	p := platform.New("JPEG-3seg", 120*platform.MHz, packageSize)
	p.HeaderTicks = 20
	p.CAHopTicks = 20
	p.AddSegment(100*platform.MHz, 0, 1, 2, 3)
	p.AddSegment(95*platform.MHz, 4, 5, 6, 7, 8, 9)
	p.AddSegment(90*platform.MHz, 10)
	return p
}

// JPEGPlatform1 returns the single-segment baseline configuration.
func JPEGPlatform1(packageSize int) *platform.Platform {
	p := platform.New("JPEG-1seg", 120*platform.MHz, packageSize)
	p.HeaderTicks = 20
	p.CAHopTicks = 20
	p.AddSegment(100*platform.MHz, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	return p
}
