package apps

import (
	"fmt"
	"math/rand"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Pipeline returns a linear pipeline application: P0 -> P1 -> ... ->
// Pn-1, each hop carrying items data items with cost ticks per
// package, ordered sequentially.
func Pipeline(n, items, ticks int) *psdf.Model {
	if n < 2 {
		panic("apps: pipeline needs at least two processes")
	}
	m := psdf.NewModel(fmt.Sprintf("pipeline-%d", n))
	for i := 0; i < n-1; i++ {
		m.AddFlow(psdf.Flow{
			Source: psdf.ProcessID(i),
			Target: psdf.ProcessID(i + 1),
			Items:  items,
			Order:  i + 1,
			Ticks:  ticks,
		})
	}
	return m
}

// ForkJoin returns a fork/join application: a source P0 scatters to
// width workers (concurrently — all scatter flows share one ordering
// number, as do all gather flows), which reduce into a sink.
func ForkJoin(width, items, ticks int) *psdf.Model {
	if width < 1 {
		panic("apps: fork-join needs at least one worker")
	}
	m := psdf.NewModel(fmt.Sprintf("forkjoin-%d", width))
	sink := psdf.ProcessID(width + 1)
	for i := 1; i <= width; i++ {
		m.AddFlow(psdf.Flow{Source: 0, Target: psdf.ProcessID(i), Items: items, Order: 1, Ticks: ticks})
		m.AddFlow(psdf.Flow{Source: psdf.ProcessID(i), Target: sink, Items: items, Order: 2, Ticks: ticks})
	}
	return m
}

// RandomModel generates a valid random layered PSDF application from
// rng: between 2 and maxLayers layers of processes with flows only
// from earlier layers to later ones, ordering numbers consistent with
// the layering. Intended for property tests and fuzz-style coverage.
func RandomModel(rng *rand.Rand, maxLayers, maxPerLayer, packageSize int) *psdf.Model {
	if maxLayers < 2 {
		maxLayers = 2
	}
	if maxPerLayer < 1 {
		maxPerLayer = 1
	}
	layers := 2 + rng.Intn(maxLayers-1)
	m := psdf.NewModel("random")
	var layerProcs [][]psdf.ProcessID
	next := 0
	for l := 0; l < layers; l++ {
		count := 1 + rng.Intn(maxPerLayer)
		var procs []psdf.ProcessID
		for i := 0; i < count; i++ {
			procs = append(procs, psdf.ProcessID(next))
			next++
		}
		layerProcs = append(layerProcs, procs)
	}
	order := 1
	for l := 1; l < layers; l++ {
		for _, dst := range layerProcs[l] {
			// At least one input per non-source process keeps every
			// process reachable.
			srcLayer := layerProcs[rng.Intn(l)]
			src := srcLayer[rng.Intn(len(srcLayer))]
			m.AddFlow(psdf.Flow{
				Source: src,
				Target: dst,
				Items:  packageSize * (1 + rng.Intn(6)),
				Order:  order,
				Ticks:  rng.Intn(300),
			})
			order++
		}
	}
	return m
}

// RandomPlatform distributes the model's processes over 1..maxSegments
// segments with randomised (but valid) clock frequencies and returns
// the platform. Every segment is guaranteed at least one process.
func RandomPlatform(rng *rand.Rand, m *psdf.Model, maxSegments, packageSize int) *platform.Platform {
	procs := m.Processes()
	nseg := 1 + rng.Intn(maxSegments)
	if nseg > len(procs) {
		nseg = len(procs)
	}
	p := platform.New("random", platform.Hz(80+rng.Intn(60))*platform.MHz, packageSize)
	perm := rng.Perm(len(procs))
	segs := make([][]psdf.ProcessID, nseg)
	for i, pi := range perm {
		segs[i%nseg] = append(segs[i%nseg], procs[pi])
	}
	for _, sp := range segs {
		p.AddSegment(platform.Hz(70+rng.Intn(70))*platform.MHz, sp...)
	}
	return p
}
