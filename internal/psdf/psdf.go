// Package psdf implements the Packet Synchronous Data Flow (PSDF)
// application model of the SegBus design methodology.
//
// A PSDF model is a set of processes connected by packet flows. Data is
// organised in data items which are grouped into packages of a
// configurable size during execution. Each flow is a tuple (Pt, D, T, C):
//
//   - Pt — the target process of the flow's transactions;
//   - D  — the number of data items emitted by the source towards Pt;
//   - T  — a relative ordering number among the flows of the system;
//   - C  — the number of clock ticks the source consumes before sending
//     one package.
//
// Flows sharing the same ordering number may execute concurrently; a
// flow ordered after another may not start before the earlier one has
// completed. The model mirrors section 3.1 of the paper and is the
// single source of truth for the application schedule, the
// communication matrix and the emulator's functional-unit programs.
package psdf

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies an application process (P0, P1, ...). The zero
// value is a valid identifier (process P0).
type ProcessID int

// String returns the conventional process name, e.g. "P3".
func (p ProcessID) String() string { return fmt.Sprintf("P%d", int(p)) }

// SystemOutput is the pseudo-target used by flows that leave the
// system (towards the platform output) rather than feed another
// process. The paper's example does not use it, but the PSDF
// definition allows transactions "towards the system output".
const SystemOutput ProcessID = -1

// Flow is one packet flow of a PSDF model: Items data items sent by
// Source towards Target, with relative ordering number Order and
// per-package processing cost Ticks.
type Flow struct {
	Source ProcessID // emitting process
	Target ProcessID // Pt: receiving process (or SystemOutput)
	Items  int       // D: number of data items carried by the flow
	Order  int       // T: relative ordering number among all flows
	Ticks  int       // C: source clock ticks consumed per package sent
}

// Packages returns the number of packages the flow is split into for
// package size s (ceil(D/s)). The paper's definition uses D/s with D a
// multiple of s; ragged tails are rounded up so that every data item is
// carried.
func (f Flow) Packages(s int) int {
	if s <= 0 {
		panic("psdf: package size must be positive")
	}
	if f.Items <= 0 {
		return 0
	}
	return (f.Items + s - 1) / s
}

// Name renders the flow in the encoded form used by the generated XML
// schemas, e.g. "P1_576_1_250" for a flow targeting P1 with 576 data
// items, ordering number 1 and 250 ticks per package.
func (f Flow) Name() string {
	return fmt.Sprintf("%s_%d_%d_%d", f.Target, f.Items, f.Order, f.Ticks)
}

// String implements fmt.Stringer with a human-oriented rendering.
func (f Flow) String() string {
	return fmt.Sprintf("%s->%s{D=%d T=%d C=%d}", f.Source, f.Target, f.Items, f.Order, f.Ticks)
}

// ParseFlowName decodes the XML flow encoding produced by the M2T
// transformation ("P1_576_1_250") into a Flow. The source process is
// not part of the encoding (it is the enclosing XML element) and must
// be supplied by the caller.
func ParseFlowName(source ProcessID, name string) (Flow, error) {
	parts := strings.Split(name, "_")
	if len(parts) != 4 {
		return Flow{}, fmt.Errorf("psdf: flow name %q: want 4 '_'-separated fields, got %d", name, len(parts))
	}
	target, err := ParseProcessName(parts[0])
	if err != nil {
		return Flow{}, fmt.Errorf("psdf: flow name %q: %v", name, err)
	}
	var items, order, ticks int
	if _, err := fmt.Sscanf(parts[1], "%d", &items); err != nil || fmt.Sprintf("%d", items) != parts[1] {
		return Flow{}, fmt.Errorf("psdf: flow name %q: bad item count %q", name, parts[1])
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &order); err != nil || fmt.Sprintf("%d", order) != parts[2] {
		return Flow{}, fmt.Errorf("psdf: flow name %q: bad ordering number %q", name, parts[2])
	}
	if _, err := fmt.Sscanf(parts[3], "%d", &ticks); err != nil || fmt.Sprintf("%d", ticks) != parts[3] {
		return Flow{}, fmt.Errorf("psdf: flow name %q: bad tick count %q", name, parts[3])
	}
	return Flow{Source: source, Target: target, Items: items, Order: order, Ticks: ticks}, nil
}

// ParseProcessName decodes a conventional process name ("P0", "P13")
// into its ProcessID. Case is significant; only the canonical form is
// accepted.
func ParseProcessName(name string) (ProcessID, error) {
	if len(name) < 2 || name[0] != 'P' {
		return 0, fmt.Errorf("bad process name %q", name)
	}
	n := 0
	for i := 1; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad process name %q", name)
		}
		n = n*10 + int(c-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("process name %q out of range", name)
		}
	}
	if name[1] == '0' && len(name) > 2 {
		return 0, fmt.Errorf("bad process name %q (leading zero)", name)
	}
	return ProcessID(n), nil
}

// Model is a complete PSDF application model: a set of processes and
// the packet flows between them. Construct one with NewModel and
// AddFlow, or load one from a generated XML schema via package schema.
type Model struct {
	name      string
	processes map[ProcessID]bool
	flows     []Flow
	nominal   int // package size the flows' C values were calibrated at
}

// NewModel returns an empty PSDF model with the given application name.
func NewModel(name string) *Model {
	return &Model{name: name, processes: make(map[ProcessID]bool)}
}

// Name returns the application name the model was created with.
func (m *Model) Name() string { return m.name }

// SetNominalPackageSize declares the package size the flows' C values
// were calibrated at. When set (positive), an emulator running with a
// different platform package size scales each package's processing
// cost proportionally to the data items it carries (processing work is
// a property of the data, not of the packaging). Zero — the default —
// means C is charged per package as-is, whatever the package size.
func (m *Model) SetNominalPackageSize(s int) {
	if s < 0 {
		panic("psdf: negative nominal package size")
	}
	m.nominal = s
}

// NominalPackageSize returns the calibration package size, or zero
// when C values are per-package regardless of size.
func (m *Model) NominalPackageSize() int { return m.nominal }

// AddProcess declares a process. Processes referenced by flows are
// declared implicitly; explicit declaration is only needed for
// processes with no flows (rare, but legal for sinks declared before
// their inputs are modeled).
func (m *Model) AddProcess(p ProcessID) {
	if p != SystemOutput {
		m.processes[p] = true
	}
}

// AddFlow appends a flow to the model, implicitly declaring its source
// and target processes.
func (m *Model) AddFlow(f Flow) {
	m.AddProcess(f.Source)
	if f.Target != SystemOutput {
		m.AddProcess(f.Target)
	}
	m.flows = append(m.flows, f)
}

// Processes returns the declared process identifiers in ascending
// order.
func (m *Model) Processes() []ProcessID {
	out := make([]ProcessID, 0, len(m.processes))
	for p := range m.processes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumProcesses returns the number of declared processes.
func (m *Model) NumProcesses() int { return len(m.processes) }

// Flows returns the model's flows sorted by (Order, Source, Target).
// The slice is a copy; mutating it does not affect the model.
func (m *Model) Flows() []Flow {
	out := make([]Flow, len(m.flows))
	copy(out, m.flows)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Target < b.Target
	})
	return out
}

// NumFlows returns the number of flows in the model.
func (m *Model) NumFlows() int { return len(m.flows) }

// FlowsFrom returns the flows emitted by process p, sorted by ordering
// number.
func (m *Model) FlowsFrom(p ProcessID) []Flow {
	var out []Flow
	for _, f := range m.Flows() {
		if f.Source == p {
			out = append(out, f)
		}
	}
	return out
}

// FlowsInto returns the flows targeting process p, sorted by ordering
// number.
func (m *Model) FlowsInto(p ProcessID) []Flow {
	var out []Flow
	for _, f := range m.Flows() {
		if f.Target == p {
			out = append(out, f)
		}
	}
	return out
}

// Sources returns the processes with no incoming flows (the
// application's initial nodes), ascending.
func (m *Model) Sources() []ProcessID {
	hasInput := make(map[ProcessID]bool)
	for _, f := range m.flows {
		if f.Target != SystemOutput {
			hasInput[f.Target] = true
		}
	}
	var out []ProcessID
	for _, p := range m.Processes() {
		if !hasInput[p] {
			out = append(out, p)
		}
	}
	return out
}

// Sinks returns the processes with no outgoing flows (final nodes),
// ascending.
func (m *Model) Sinks() []ProcessID {
	hasOutput := make(map[ProcessID]bool)
	for _, f := range m.flows {
		hasOutput[f.Source] = true
	}
	var out []ProcessID
	for _, p := range m.Processes() {
		if !hasOutput[p] {
			out = append(out, p)
		}
	}
	return out
}

// TotalItems returns the total number of data items carried by all
// flows of the model.
func (m *Model) TotalItems() int {
	n := 0
	for _, f := range m.flows {
		n += f.Items
	}
	return n
}

// TotalPackages returns the total number of packages transferred for
// package size s.
func (m *Model) TotalPackages(s int) int {
	n := 0
	for _, f := range m.flows {
		n += f.Packages(s)
	}
	return n
}

// Orders returns the distinct flow ordering numbers of the model,
// ascending. The emulator's schedule releases flows order by order.
func (m *Model) Orders() []int {
	seen := make(map[int]bool)
	for _, f := range m.flows {
		seen[f.Order] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel(m.name)
	c.nominal = m.nominal
	for p := range m.processes {
		c.processes[p] = true
	}
	c.flows = append([]Flow(nil), m.flows...)
	return c
}
