package psdf

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCommMatrixBasics(t *testing.T) {
	cm := NewCommMatrix(3)
	if cm.Size() != 3 {
		t.Fatalf("Size() = %d", cm.Size())
	}
	cm.Set(0, 1, 10)
	cm.Add(0, 1, 5)
	cm.Add(1, 2, 7)
	if got := cm.At(0, 1); got != 15 {
		t.Errorf("At(0,1) = %d, want 15", got)
	}
	if got := cm.Total(); got != 22 {
		t.Errorf("Total() = %d, want 22", got)
	}
	if got := cm.RowSum(0); got != 15 {
		t.Errorf("RowSum(0) = %d, want 15", got)
	}
	if got := cm.ColSum(2); got != 7 {
		t.Errorf("ColSum(2) = %d, want 7", got)
	}
}

func TestCommMatrixOutOfRangePanics(t *testing.T) {
	cm := NewCommMatrix(2)
	for _, fn := range []func(){
		func() { cm.At(2, 0) },
		func() { cm.At(0, -1) },
		func() { cm.Set(5, 5, 1) },
		func() { cm.Add(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewCommMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCommMatrix(-1) did not panic")
		}
	}()
	NewCommMatrix(-1)
}

func TestCommunicationMatrixFromModel(t *testing.T) {
	m := NewModel("cm")
	m.AddFlow(Flow{Source: 0, Target: 1, Items: 100, Order: 1})
	m.AddFlow(Flow{Source: 0, Target: 1, Items: 44, Order: 2}) // second flow, same pair: accumulates
	m.AddFlow(Flow{Source: 1, Target: 2, Items: 50, Order: 3})
	m.AddFlow(Flow{Source: 2, Target: SystemOutput, Items: 9, Order: 4}) // excluded
	cm := m.CommunicationMatrix()
	if cm.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", cm.Size())
	}
	if got := cm.At(0, 1); got != 144 {
		t.Errorf("At(0,1) = %d, want 144 (accumulated)", got)
	}
	if got := cm.Total(); got != 194 {
		t.Errorf("Total() = %d, want 194 (system-output flow excluded)", got)
	}
}

func TestCommMatrixEqualClone(t *testing.T) {
	cm := NewCommMatrix(4)
	cm.Set(1, 2, 42)
	c := cm.Clone()
	if !cm.Equal(c) {
		t.Fatal("Clone() not Equal()")
	}
	c.Set(0, 0, 1)
	if cm.Equal(c) {
		t.Error("Equal() after divergent mutation")
	}
	if cm.Equal(NewCommMatrix(3)) {
		t.Error("Equal() across sizes")
	}
	if cm.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
}

func TestCrossTraffic(t *testing.T) {
	cm := NewCommMatrix(4)
	cm.Set(0, 1, 10) // same segment
	cm.Set(0, 2, 20) // crosses
	cm.Set(2, 3, 30) // same segment
	cm.Set(3, 0, 40) // crosses
	seg := func(p ProcessID) int {
		if p <= 1 {
			return 0
		}
		return 1
	}
	if got := cm.CrossTraffic(seg); got != 60 {
		t.Errorf("CrossTraffic = %d, want 60", got)
	}
}

func TestCrossTrafficSymmetricUnderPermutation(t *testing.T) {
	// Property: total cross traffic with a 1-segment mapping is zero,
	// and with an all-distinct mapping equals Total().
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		cm := NewCommMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(2) == 0 {
					cm.Set(ProcessID(i), ProcessID(j), rng.Intn(100))
				}
			}
		}
		if got := cm.CrossTraffic(func(ProcessID) int { return 0 }); got != 0 {
			t.Fatalf("single-segment cross traffic = %d, want 0", got)
		}
		if got, want := cm.CrossTraffic(func(p ProcessID) int { return int(p) }), cm.Total(); got != want {
			t.Fatalf("all-distinct cross traffic = %d, want %d", got, want)
		}
	}
}

func TestCommMatrixString(t *testing.T) {
	cm := NewCommMatrix(2)
	cm.Set(0, 1, 576)
	s := cm.String()
	if !strings.Contains(s, "P0") || !strings.Contains(s, "P1") || !strings.Contains(s, "576") {
		t.Errorf("String() missing headers or values:\n%s", s)
	}
	if got := len(strings.Split(strings.TrimRight(s, "\n"), "\n")); got != 3 {
		t.Errorf("String() has %d lines, want 3 (header + 2 rows)", got)
	}
}
