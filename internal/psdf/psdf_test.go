package psdf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestProcessIDString(t *testing.T) {
	cases := []struct {
		id   ProcessID
		want string
	}{
		{0, "P0"}, {1, "P1"}, {14, "P14"}, {137, "P137"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("ProcessID(%d).String() = %q, want %q", int(c.id), got, c.want)
		}
	}
}

func TestParseProcessName(t *testing.T) {
	good := map[string]ProcessID{
		"P0": 0, "P1": 1, "P14": 14, "P100": 100,
	}
	for name, want := range good {
		got, err := ParseProcessName(name)
		if err != nil {
			t.Errorf("ParseProcessName(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseProcessName(%q) = %v, want %v", name, got, want)
		}
	}
	bad := []string{"", "P", "p0", "Q1", "P-1", "P01", "P1x", "1", "P99999999"}
	for _, name := range bad {
		if _, err := ParseProcessName(name); err == nil {
			t.Errorf("ParseProcessName(%q) succeeded, want error", name)
		}
	}
}

func TestParseProcessNameRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		p := ProcessID(n)
		got, err := ParseProcessName(p.String())
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowName(t *testing.T) {
	f := Flow{Source: 0, Target: 1, Items: 576, Order: 1, Ticks: 250}
	if got, want := f.Name(), "P1_576_1_250"; got != want {
		t.Errorf("Name() = %q, want %q (the paper's documented encoding)", got, want)
	}
}

func TestParseFlowName(t *testing.T) {
	f, err := ParseFlowName(0, "P1_576_1_250")
	if err != nil {
		t.Fatal(err)
	}
	want := Flow{Source: 0, Target: 1, Items: 576, Order: 1, Ticks: 250}
	if f != want {
		t.Errorf("ParseFlowName = %+v, want %+v", f, want)
	}
}

func TestParseFlowNameErrors(t *testing.T) {
	bad := []string{
		"",
		"P1",
		"P1_576",
		"P1_576_1",
		"P1_576_1_250_9",
		"X1_576_1_250",
		"P1_abc_1_250",
		"P1_576_x_250",
		"P1_576_1_x",
		"P1_5 6_1_250",
		"P1_-576_1_250_",
	}
	for _, name := range bad {
		if _, err := ParseFlowName(0, name); err == nil {
			t.Errorf("ParseFlowName(%q) succeeded, want error", name)
		}
	}
}

func TestParseFlowNameRoundTrip(t *testing.T) {
	f := func(target uint8, items uint16, order uint8, ticks uint16) bool {
		in := Flow{
			Source: 99,
			Target: ProcessID(target),
			Items:  int(items) + 1,
			Order:  int(order),
			Ticks:  int(ticks),
		}
		out, err := ParseFlowName(99, in.Name())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackages(t *testing.T) {
	cases := []struct {
		items, s, want int
	}{
		{576, 36, 16},
		{540, 36, 15},
		{36, 36, 1},
		{576, 18, 32},
		{37, 36, 2},
		{1, 36, 1},
		{0, 36, 0},
		{576, 1, 576},
	}
	for _, c := range cases {
		f := Flow{Items: c.items}
		if got := f.Packages(c.s); got != c.want {
			t.Errorf("Flow{Items:%d}.Packages(%d) = %d, want %d", c.items, c.s, got, c.want)
		}
	}
}

func TestPackagesPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Packages(0) did not panic")
		}
	}()
	Flow{Items: 10}.Packages(0)
}

func TestPackagesCoversAllItems(t *testing.T) {
	f := func(items uint16, s uint8) bool {
		size := int(s)%100 + 1
		n := int(items)
		pk := Flow{Items: n}.Packages(size)
		if n <= 0 {
			return pk == 0
		}
		return pk*size >= n && (pk-1)*size < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildModel() *Model {
	m := NewModel("test")
	m.AddFlow(Flow{Source: 0, Target: 1, Items: 100, Order: 1, Ticks: 10})
	m.AddFlow(Flow{Source: 1, Target: 2, Items: 50, Order: 2, Ticks: 20})
	m.AddFlow(Flow{Source: 1, Target: 3, Items: 50, Order: 2, Ticks: 20})
	m.AddFlow(Flow{Source: 2, Target: 3, Items: 25, Order: 3, Ticks: 5})
	return m
}

func TestModelAccessors(t *testing.T) {
	m := buildModel()
	if got := m.Name(); got != "test" {
		t.Errorf("Name() = %q", got)
	}
	if got := m.NumProcesses(); got != 4 {
		t.Errorf("NumProcesses() = %d, want 4", got)
	}
	if got := m.NumFlows(); got != 4 {
		t.Errorf("NumFlows() = %d, want 4", got)
	}
	procs := m.Processes()
	for i, p := range procs {
		if int(p) != i {
			t.Errorf("Processes()[%d] = %v, want P%d", i, p, i)
		}
	}
	if got := m.TotalItems(); got != 225 {
		t.Errorf("TotalItems() = %d, want 225", got)
	}
	if got := m.TotalPackages(50); got != 2+1+1+1 {
		t.Errorf("TotalPackages(50) = %d, want 5", got)
	}
}

func TestModelFlowsSorted(t *testing.T) {
	m := NewModel("order")
	m.AddFlow(Flow{Source: 5, Target: 6, Items: 1, Order: 3})
	m.AddFlow(Flow{Source: 0, Target: 1, Items: 1, Order: 1})
	m.AddFlow(Flow{Source: 2, Target: 3, Items: 1, Order: 1})
	fs := m.Flows()
	if fs[0].Source != 0 || fs[1].Source != 2 || fs[2].Source != 5 {
		t.Errorf("Flows() not sorted by (order, source): %v", fs)
	}
}

func TestFlowsFromInto(t *testing.T) {
	m := buildModel()
	from1 := m.FlowsFrom(1)
	if len(from1) != 2 {
		t.Fatalf("FlowsFrom(1) = %d flows, want 2", len(from1))
	}
	into3 := m.FlowsInto(3)
	if len(into3) != 2 {
		t.Fatalf("FlowsInto(3) = %d flows, want 2", len(into3))
	}
	for _, f := range into3 {
		if f.Target != 3 {
			t.Errorf("FlowsInto(3) returned flow targeting %v", f.Target)
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	m := buildModel()
	src := m.Sources()
	if len(src) != 1 || src[0] != 0 {
		t.Errorf("Sources() = %v, want [P0]", src)
	}
	snk := m.Sinks()
	if len(snk) != 1 || snk[0] != 3 {
		t.Errorf("Sinks() = %v, want [P3]", snk)
	}
}

func TestSystemOutputFlows(t *testing.T) {
	m := NewModel("out")
	m.AddFlow(Flow{Source: 0, Target: SystemOutput, Items: 10, Order: 1})
	if m.NumProcesses() != 1 {
		t.Errorf("SystemOutput must not be counted as a process; got %d processes", m.NumProcesses())
	}
	// A process emitting only to the system output still emits, so it
	// is not a structural sink.
	if got := m.Sinks(); len(got) != 0 {
		t.Errorf("Sinks() = %v, want none", got)
	}
}

func TestOrders(t *testing.T) {
	m := buildModel()
	got := m.Orders()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Orders() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Orders() = %v, want %v", got, want)
		}
	}
}

func TestClone(t *testing.T) {
	m := buildModel()
	m.SetNominalPackageSize(36)
	c := m.Clone()
	if c.Name() != m.Name() || c.NumFlows() != m.NumFlows() || c.NominalPackageSize() != 36 {
		t.Fatal("Clone() lost data")
	}
	c.AddFlow(Flow{Source: 3, Target: 4, Items: 1, Order: 4})
	if m.NumFlows() == c.NumFlows() {
		t.Error("Clone() shares flow storage with the original")
	}
}

func TestSetNominalPackageSizePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetNominalPackageSize(-1) did not panic")
		}
	}()
	NewModel("x").SetNominalPackageSize(-1)
}

func TestValidateAcceptsGoodModel(t *testing.T) {
	if err := buildModel().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Model
		wantSub string
	}{
		{
			"empty model",
			func() *Model { return NewModel("empty") },
			"no processes",
		},
		{
			"no flows",
			func() *Model {
				m := NewModel("p-only")
				m.AddProcess(0)
				return m
			},
			"no flows",
		},
		{
			"non-positive items",
			func() *Model {
				m := NewModel("zero-items")
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 0, Order: 1})
				return m
			},
			"non-positive data item count",
		},
		{
			"negative order",
			func() *Model {
				m := NewModel("neg-order")
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 1, Order: -1})
				return m
			},
			"negative ordering number",
		},
		{
			"negative ticks",
			func() *Model {
				m := NewModel("neg-ticks")
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 1, Order: 1, Ticks: -2})
				return m
			},
			"negative per-package tick count",
		},
		{
			"self loop",
			func() *Model {
				m := NewModel("loop")
				m.AddFlow(Flow{Source: 0, Target: 0, Items: 1, Order: 1})
				return m
			},
			"self-loop",
		},
		{
			"duplicate flow",
			func() *Model {
				m := NewModel("dup")
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 1, Order: 1})
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 2, Order: 1})
				return m
			},
			"duplicate flow",
		},
		{
			"isolated process",
			func() *Model {
				m := NewModel("island")
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 1, Order: 1})
				m.AddProcess(9)
				return m
			},
			"isolated",
		},
		{
			"output ordered before all inputs",
			func() *Model {
				m := NewModel("early")
				m.AddFlow(Flow{Source: 0, Target: 1, Items: 1, Order: 5})
				m.AddFlow(Flow{Source: 1, Target: 2, Items: 1, Order: 1})
				return m
			},
			"ordered (1) before every flow feeding its source",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().Validate()
			if err == nil {
				t.Fatal("Validate() accepted an invalid model")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Validate() error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestValidationErrorsAggregates(t *testing.T) {
	m := NewModel("multi")
	m.AddFlow(Flow{Source: 0, Target: 0, Items: 0, Order: -1, Ticks: -1})
	err := m.Validate()
	verrs, ok := err.(ValidationErrors)
	if !ok {
		t.Fatalf("Validate() returned %T, want ValidationErrors", err)
	}
	if len(verrs) < 4 {
		t.Errorf("expected at least 4 violations for a maximally broken flow, got %d: %v", len(verrs), verrs)
	}
}

func TestValidateAllowsEqualOrderPipelines(t *testing.T) {
	// Two flows sharing an ordering number coexist (section 3.1).
	m := NewModel("concurrent")
	m.AddFlow(Flow{Source: 0, Target: 1, Items: 10, Order: 1})
	m.AddFlow(Flow{Source: 0, Target: 2, Items: 10, Order: 1})
	m.AddFlow(Flow{Source: 1, Target: 3, Items: 10, Order: 2})
	m.AddFlow(Flow{Source: 2, Target: 3, Items: 10, Order: 2})
	if err := m.Validate(); err != nil {
		t.Errorf("concurrent same-order flows rejected: %v", err)
	}
}

func TestValidateRandomLayeredModelsAlwaysPass(t *testing.T) {
	// Property: layered generation with per-layer orders is always a
	// valid model.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := NewModel(fmt.Sprintf("rand%d", trial))
		layers := 2 + rng.Intn(4)
		perLayer := 1 + rng.Intn(3)
		id := 0
		var prev []ProcessID
		order := 1
		for l := 0; l < layers; l++ {
			var cur []ProcessID
			for i := 0; i < perLayer; i++ {
				cur = append(cur, ProcessID(id))
				id++
			}
			if l > 0 {
				for _, dst := range cur {
					src := prev[rng.Intn(len(prev))]
					m.AddFlow(Flow{Source: src, Target: dst, Items: 1 + rng.Intn(100), Order: order, Ticks: rng.Intn(50)})
					order++
				}
			}
			prev = cur
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: layered model rejected: %v", trial, err)
		}
	}
}
