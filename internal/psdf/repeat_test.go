package psdf

import "testing"

func TestRepeatBasics(t *testing.T) {
	m := buildModel()
	r, err := Repeat(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFlows() != 3*m.NumFlows() {
		t.Errorf("flows = %d, want %d", r.NumFlows(), 3*m.NumFlows())
	}
	if r.NumProcesses() != m.NumProcesses() {
		t.Errorf("processes changed: %d", r.NumProcesses())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("repeated model invalid: %v", err)
	}
	if r.TotalItems() != 3*m.TotalItems() {
		t.Error("items not tripled")
	}
	if got, want := r.Name(), "test-x3"; got != want {
		t.Errorf("name = %q, want %q", got, want)
	}
}

func TestRepeatOrdersDoNotOverlap(t *testing.T) {
	m := buildModel() // orders 1..3
	r, err := Repeat(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First repetition: orders 1..3; second: 4..6.
	orders := r.Orders()
	if len(orders) != 6 {
		t.Fatalf("orders = %v", orders)
	}
	for i, want := range []int{1, 2, 3, 4, 5, 6} {
		if orders[i] != want {
			t.Fatalf("orders = %v", orders)
		}
	}
}

func TestRepeatOnce(t *testing.T) {
	m := buildModel()
	r, err := Repeat(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumFlows() != m.NumFlows() {
		t.Error("single repetition changed the flow count")
	}
}

func TestRepeatErrors(t *testing.T) {
	if _, err := Repeat(buildModel(), 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Repeat(NewModel("empty"), 2); err == nil {
		t.Error("empty model accepted")
	}
}

func TestRepeatPreservesNominal(t *testing.T) {
	m := buildModel()
	m.SetNominalPackageSize(36)
	r, err := Repeat(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NominalPackageSize() != 36 {
		t.Error("nominal lost")
	}
}
