package psdf

import (
	"fmt"
	"sort"
)

// ValidationError describes one well-formedness violation found in a
// PSDF model. Errors carry the offending flow (when applicable) so
// that a front end can highlight the model element, mirroring the DSL
// tool behaviour described in section 2.2 of the paper. Code is the
// stable SB0xx diagnostic code of the violated rule (see
// internal/analyze for the full table).
type ValidationError struct {
	Code    string // stable diagnostic code ("SB006")
	Flow    *Flow  // offending flow, nil for model-level violations
	Message string // human-readable description
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	prefix := "psdf: "
	if e.Flow != nil {
		prefix = fmt.Sprintf("psdf: flow %s: ", e.Flow)
	}
	if e.Code != "" {
		prefix += e.Code + ": "
	}
	return prefix + e.Message
}

// Stable diagnostic codes of the PSDF well-formedness rules.
const (
	CodeNoProcesses   = "SB001" // model has no processes
	CodeNoFlows       = "SB002" // model has no flows
	CodeBadItems      = "SB003" // non-positive data item count
	CodeBadOrder      = "SB004" // negative ordering number
	CodeBadTicks      = "SB005" // negative per-package tick count
	CodeSelfLoop      = "SB006" // flow is a self-loop
	CodeDuplicateFlow = "SB007" // duplicate (source, target, order)
	CodeIsolated      = "SB008" // process carries no flow at all
	CodeUnreachable   = "SB009" // not reachable from any initial node
	CodeOrderTooEarly = "SB010" // ordered before every feeding flow
)

// ValidationErrors aggregates every violation found in one validation
// pass so the designer can fix them all at once.
type ValidationErrors []*ValidationError

// Error implements the error interface by joining the individual
// messages.
func (es ValidationErrors) Error() string {
	switch len(es) {
	case 0:
		return "psdf: no validation errors"
	case 1:
		return es[0].Error()
	}
	s := es[0].Error()
	for _, e := range es[1:] {
		s += "; " + e.Error()
	}
	return s
}

// Validate checks the model against the PSDF well-formedness rules:
//
//   - the model has at least one process and at least one flow;
//   - every flow carries a positive number of data items;
//   - ordering numbers and per-package tick counts are non-negative;
//   - no flow is a self-loop;
//   - no two flows share the same (source, target, order) triple —
//     the paper's definition requires flows to be distinguishable;
//   - every non-source process is reachable from some initial node
//     (no orphan islands fed by nothing);
//   - the flow dependency structure is acyclic when ordering numbers
//     are taken into account: a flow must not be ordered before a
//     flow that produces its source's input data, unless they share
//     an ordering number (concurrent flows).
//
// A nil return means the model is valid. Otherwise the returned error
// is a ValidationErrors listing every violation.
func (m *Model) Validate() error {
	var errs ValidationErrors
	add := func(code string, f *Flow, format string, args ...interface{}) {
		errs = append(errs, &ValidationError{Code: code, Flow: f, Message: fmt.Sprintf(format, args...)})
	}

	if len(m.processes) == 0 {
		add(CodeNoProcesses, nil, "model %q has no processes", m.name)
	}
	if len(m.flows) == 0 {
		add(CodeNoFlows, nil, "model %q has no flows", m.name)
	}

	type key struct {
		src, dst ProcessID
		order    int
	}
	seen := make(map[key]bool)
	for i := range m.flows {
		f := m.flows[i]
		if f.Items <= 0 {
			add(CodeBadItems, &m.flows[i], "non-positive data item count %d", f.Items)
		}
		if f.Order < 0 {
			add(CodeBadOrder, &m.flows[i], "negative ordering number %d", f.Order)
		}
		if f.Ticks < 0 {
			add(CodeBadTicks, &m.flows[i], "negative per-package tick count %d", f.Ticks)
		}
		if f.Source == f.Target {
			add(CodeSelfLoop, &m.flows[i], "self-loop")
		}
		if f.Target == SystemOutput {
			continue
		}
		k := key{f.Source, f.Target, f.Order}
		if seen[k] {
			add(CodeDuplicateFlow, &m.flows[i], "duplicate flow (same source, target and ordering number)")
		}
		seen[k] = true
	}

	// Isolated processes: declared but carrying no flow at all.
	if len(m.flows) > 0 {
		touched := make(map[ProcessID]bool)
		for _, f := range m.flows {
			touched[f.Source] = true
			if f.Target != SystemOutput {
				touched[f.Target] = true
			}
		}
		for _, p := range m.Processes() {
			if !touched[p] {
				add(CodeIsolated, nil, "process %s is isolated (no incoming or outgoing flow)", p)
			}
		}
	}

	// Reachability from initial nodes.
	if len(m.flows) > 0 {
		reach := make(map[ProcessID]bool)
		var frontier []ProcessID
		for _, p := range m.Sources() {
			reach[p] = true
			frontier = append(frontier, p)
		}
		adj := make(map[ProcessID][]ProcessID)
		for _, f := range m.flows {
			if f.Target != SystemOutput {
				adj[f.Source] = append(adj[f.Source], f.Target)
			}
		}
		for len(frontier) > 0 {
			p := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, q := range adj[p] {
				if !reach[q] {
					reach[q] = true
					frontier = append(frontier, q)
				}
			}
		}
		var unreachable []ProcessID
		for _, p := range m.Processes() {
			if !reach[p] {
				unreachable = append(unreachable, p)
			}
		}
		sort.Slice(unreachable, func(i, j int) bool { return unreachable[i] < unreachable[j] })
		for _, p := range unreachable {
			add(CodeUnreachable, nil, "process %s is not reachable from any initial node", p)
		}
	}

	// Ordering consistency: a process's output flow must not be
	// strictly ordered before all flows feeding that process, because
	// then it could never have data to send. (Sources are exempt.)
	inOrders := make(map[ProcessID][]int)
	for _, f := range m.flows {
		if f.Target != SystemOutput {
			inOrders[f.Target] = append(inOrders[f.Target], f.Order)
		}
	}
	for i := range m.flows {
		f := m.flows[i]
		ins := inOrders[f.Source]
		if len(ins) == 0 {
			continue // source process: always has data
		}
		minIn := ins[0]
		for _, t := range ins[1:] {
			if t < minIn {
				minIn = t
			}
		}
		if f.Order < minIn {
			add(CodeOrderTooEarly, &m.flows[i], "ordered (%d) before every flow feeding its source (earliest input order %d)", f.Order, minIn)
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return errs
}
