package psdf

import "testing"

// FuzzParseFlowName checks that the flow-name decoder never panics and
// that accepted names round-trip exactly.
func FuzzParseFlowName(f *testing.F) {
	for _, seed := range []string{
		"P1_576_1_250",
		"P0_1_0_0",
		"P14_36_16_140",
		"",
		"P1",
		"P1_576",
		"garbage",
		"P1_576_1_250_extra",
		"P01_1_1_1",
		"P1_-5_1_1",
		"P999999999999_1_1_1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		flow, err := ParseFlowName(7, name)
		if err != nil {
			return
		}
		if flow.Source != 7 {
			t.Fatalf("source corrupted: %v", flow)
		}
		if flow.Name() != name {
			t.Fatalf("accepted %q but renders %q", name, flow.Name())
		}
	})
}

// FuzzParseProcessName checks the process-name decoder likewise.
func FuzzParseProcessName(f *testing.F) {
	for _, seed := range []string{"P0", "P15", "", "P", "p1", "P01", "P1x", "P4294967296"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		p, err := ParseProcessName(name)
		if err != nil {
			return
		}
		if p.String() != name {
			t.Fatalf("accepted %q but renders %q", name, p.String())
		}
	})
}
