package psdf

import (
	"fmt"
	"strings"
)

// CommMatrix is the communication matrix of an application: the
// specification of device-to-device transactions between application
// components (section 3.5). Entry (i, j) holds the number of data
// items process Pi sends to process Pj over the whole execution.
//
// The matrix is square over the process identifiers 0..N-1 where N is
// one past the largest process id appearing in the model; gaps in the
// id space appear as all-zero rows/columns.
type CommMatrix struct {
	n     int
	items []int // row-major n×n
}

// NewCommMatrix returns a zero matrix for n processes.
func NewCommMatrix(n int) *CommMatrix {
	if n < 0 {
		panic("psdf: negative communication matrix size")
	}
	return &CommMatrix{n: n, items: make([]int, n*n)}
}

// CommunicationMatrix builds the communication matrix of the model by
// accumulating the data items of every flow (the PlaceTool input of
// section 3.5). Flows towards the system output are not represented in
// the matrix, matching the paper's example.
func (m *Model) CommunicationMatrix() *CommMatrix {
	n := 0
	for p := range m.processes {
		if int(p)+1 > n {
			n = int(p) + 1
		}
	}
	cm := NewCommMatrix(n)
	for _, f := range m.flows {
		if f.Target == SystemOutput {
			continue
		}
		cm.Add(f.Source, f.Target, f.Items)
	}
	return cm
}

// Size returns the matrix dimension (number of process slots).
func (cm *CommMatrix) Size() int { return cm.n }

// At returns the number of data items sent from src to dst.
func (cm *CommMatrix) At(src, dst ProcessID) int {
	cm.check(src, dst)
	return cm.items[int(src)*cm.n+int(dst)]
}

// Set overwrites the (src, dst) entry.
func (cm *CommMatrix) Set(src, dst ProcessID, items int) {
	cm.check(src, dst)
	cm.items[int(src)*cm.n+int(dst)] = items
}

// Add accumulates items into the (src, dst) entry.
func (cm *CommMatrix) Add(src, dst ProcessID, items int) {
	cm.check(src, dst)
	cm.items[int(src)*cm.n+int(dst)] += items
}

func (cm *CommMatrix) check(src, dst ProcessID) {
	if int(src) < 0 || int(src) >= cm.n || int(dst) < 0 || int(dst) >= cm.n {
		panic(fmt.Sprintf("psdf: communication matrix index (%s,%s) out of range [0,%d)", src, dst, cm.n))
	}
}

// Total returns the sum of all entries (total data items exchanged).
func (cm *CommMatrix) Total() int {
	t := 0
	for _, v := range cm.items {
		t += v
	}
	return t
}

// RowSum returns the total items emitted by src.
func (cm *CommMatrix) RowSum(src ProcessID) int {
	cm.check(src, 0)
	t := 0
	for j := 0; j < cm.n; j++ {
		t += cm.items[int(src)*cm.n+j]
	}
	return t
}

// ColSum returns the total items received by dst.
func (cm *CommMatrix) ColSum(dst ProcessID) int {
	cm.check(0, dst)
	t := 0
	for i := 0; i < cm.n; i++ {
		t += cm.items[i*cm.n+int(dst)]
	}
	return t
}

// Equal reports whether two matrices have the same size and entries.
func (cm *CommMatrix) Equal(other *CommMatrix) bool {
	if other == nil || cm.n != other.n {
		return false
	}
	for i, v := range cm.items {
		if other.items[i] != v {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the matrix.
func (cm *CommMatrix) Clone() *CommMatrix {
	c := NewCommMatrix(cm.n)
	copy(c.items, cm.items)
	return c
}

// CrossTraffic returns the number of data items that cross between the
// two process sets defined by seg: seg(p) gives the segment index of
// process p. Entries where source and destination map to the same
// segment are excluded. Used by the placement optimizer to score
// allocations.
func (cm *CommMatrix) CrossTraffic(seg func(ProcessID) int) int {
	t := 0
	for i := 0; i < cm.n; i++ {
		for j := 0; j < cm.n; j++ {
			v := cm.items[i*cm.n+j]
			if v == 0 {
				continue
			}
			if seg(ProcessID(i)) != seg(ProcessID(j)) {
				t += v
			}
		}
	}
	return t
}

// String renders the matrix in the layout of the paper's Figure 8: a
// header row of process names and one row per source process.
func (cm *CommMatrix) String() string {
	var b strings.Builder
	width := 5
	fmt.Fprintf(&b, "%*s", width, "")
	for j := 0; j < cm.n; j++ {
		fmt.Fprintf(&b, "%*s", width, ProcessID(j))
	}
	b.WriteByte('\n')
	for i := 0; i < cm.n; i++ {
		fmt.Fprintf(&b, "%*s", width, ProcessID(i))
		for j := 0; j < cm.n; j++ {
			fmt.Fprintf(&b, "%*d", width, cm.items[i*cm.n+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
