package psdf

import "fmt"

// Repeat returns a model that executes m's schedule n times back to
// back — the steady-state view of a streaming application processing
// n frames. Each repetition's flows carry ordering numbers offset by
// the span of the original schedule, so repetition k+1 starts only
// after repetition k has drained (matching the frame-serial operation
// of the platform; the SegBus arbiters implement one application
// schedule at a time).
//
// The nominal package size and process set carry over unchanged.
func Repeat(m *Model, n int) (*Model, error) {
	if n < 1 {
		return nil, fmt.Errorf("psdf: repetition count %d < 1", n)
	}
	flows := m.Flows()
	if len(flows) == 0 {
		return nil, fmt.Errorf("psdf: cannot repeat a model with no flows")
	}
	minOrder, maxOrder := flows[0].Order, flows[0].Order
	for _, f := range flows {
		if f.Order < minOrder {
			minOrder = f.Order
		}
		if f.Order > maxOrder {
			maxOrder = f.Order
		}
	}
	span := maxOrder - minOrder + 1

	out := NewModel(fmt.Sprintf("%s-x%d", m.Name(), n))
	out.SetNominalPackageSize(m.NominalPackageSize())
	for _, p := range m.Processes() {
		out.AddProcess(p)
	}
	for rep := 0; rep < n; rep++ {
		for _, f := range flows {
			g := f
			g.Order = f.Order + rep*span
			out.AddFlow(g)
		}
	}
	return out, nil
}
