package serve

import "sync"

// flight is one in-flight estimation shared by every concurrent
// request carrying the same content key. The leader fills out and
// closes done; waiters block on done and then read out (the close is
// the happens-before edge).
type flight struct {
	done chan struct{}
	out  outcome
}

// flightGroup deduplicates concurrent work by content key: among K
// requests for the same key in flight at once, exactly one (the
// leader) runs the emulation, and the rest wait for its outcome. The
// group holds no memory of completed flights — that is the cache's
// job — so a key is forgotten the moment its outcome is published.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight

	// waiterHook, when non-nil, observes every request that joins an
	// existing flight instead of leading its own. Test seam: the
	// coalescing tests use it to block the leader until a known number
	// of waiters have attached.
	waiterHook func(key string)
}

// newFlightGroup returns an empty group.
func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating and leading it when none
// is in progress. leader reports whether the caller must run the work:
// a leader is obliged to publish the flight's outcome on every exit
// path — otherwise waiters would hang until their own deadlines.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		hook := g.waiterHook
		g.mu.Unlock()
		if hook != nil {
			hook(key)
		}
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	return f, true
}

// publish stores the leader's outcome, removes the flight so the next
// identical request starts fresh, and wakes every waiter. The removal
// happens before the wake-up on purpose: a request arriving after the
// close must never attach to a completed flight.
func (g *flightGroup) publish(key string, f *flight, out outcome) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.out = out
	close(f.done)
}
