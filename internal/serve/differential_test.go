package serve

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"segbus/internal/conform"
	"segbus/internal/core"
	"segbus/internal/schema"
)

// TestDifferentialServiceVsCLI is the service-vs-CLI differential
// oracle of the acceptance criteria: ≥200 generated cases (scenario-
// corpus seeded, like the segbus-conform smoke sweep) are POSTed to
// the service, and every 200 response must be byte-identical to the
// CLI pipeline's report JSON for the same schemes. Every tenth case
// is replayed to force cache hits, and hit bodies must not drift
// from their cold-run bytes either.
func TestDifferentialServiceVsCLI(t *testing.T) {
	corpus, err := conform.LoadCorpusDir(filepath.Join("..", "..", "testdata", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	g := conform.NewGenerator(1, corpus)

	s := New(Config{Workers: 4, Queue: 8, CacheEntries: 64})
	h := s.Handler()

	// ≥200 cases must actually serve; cases whose schemes the XML
	// round trip cannot express (external sinks) are asserted to fail
	// with the right code but do not count. The generator yields
	// roughly three servable cases in four, so the cap is generous.
	const wantServed = 200
	const maxCases = 600
	var served, hits, skipped int
	for i := 0; served < wantServed && i < maxCases; i++ {
		c := g.Next()
		psdfXML, psmXML, err := c.Schemes()
		if err != nil {
			t.Fatalf("case %d (%s): transform: %v", i, c.Origin, err)
		}
		req, err := json.Marshal(EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)})
		if err != nil {
			t.Fatal(err)
		}
		rec := post(h, req)

		// Constructs the scheme round trip cannot express (external
		// sinks inherited from the corpus) must be shed as coded
		// scheme rejections; everything else must serve.
		if _, perr := schema.ParsePSDF(psdfXML); perr != nil {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("case %d (%s): unparseable scheme got status %d", i, c.Origin, rec.Code)
			}
			if e := decodeError(t, rec); e.Code != CodeBadScheme {
				t.Fatalf("case %d (%s): code %s", i, c.Origin, e.Code)
			}
			skipped++
			continue
		}
		// Preflight can reject generated pairs the plain emulation
		// accepts; the CLI (segbus-emu) applies the same gate, so a
		// coded SB902 on both sides still agrees.
		if pre := core.Preflight(c.Doc.Model, c.Doc.Platform); pre.HasErrors() {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("case %d (%s): preflight-failing case got status %d", i, c.Origin, rec.Code)
			}
			if e := decodeError(t, rec); e.Code != CodeBadModel {
				t.Fatalf("case %d (%s): code %s", i, c.Origin, e.Code)
			}
			skipped++
			continue
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("case %d (%s): status %d: %s", i, c.Origin, rec.Code, rec.Body.String())
		}
		if err := c.CheckServed(rec.Body.Bytes()); err != nil {
			t.Fatalf("case %d (%s): %v", i, c.Origin, err)
		}
		served++

		if i%10 == 0 {
			rec2 := post(h, req)
			if rec2.Code != http.StatusOK {
				t.Fatalf("case %d replay: status %d", i, rec2.Code)
			}
			if rec2.Header().Get("X-Segbus-Cache") != "hit" {
				t.Fatalf("case %d replay was not a cache hit", i)
			}
			if err := c.CheckServed(rec2.Body.Bytes()); err != nil {
				t.Fatalf("case %d replay (cache hit): %v", i, err)
			}
			hits++
		}
	}
	if served < wantServed {
		t.Errorf("only %d/%d cases actually served (%d skipped)", served, wantServed, skipped)
	}
	if hits == 0 {
		t.Error("differential run exercised no cache hit")
	}
	t.Logf("differential: %d served, %d cache hits, %d skipped", served, hits, skipped)
}
