package serve

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segbus/internal/obs"
)

// TestSingleFlightCoalesces is the deterministic coalescing proof: K
// concurrent identical requests trigger exactly one core.Runner
// invocation (counted by the injected OnEmulate hook), and every
// waiter receives bytes identical to the leader's. The leader is held
// inside its emulation until every other request has attached to the
// flight, so the K-1 waiters provably take the coalesced path rather
// than racing the cache fill.
func TestSingleFlightCoalesces(t *testing.T) {
	const k = 6
	psdfXML, psmXML := goldenSchemes(t)
	reqBody := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	var emulations atomic.Int64
	release := make(chan struct{})
	var joined sync.WaitGroup
	joined.Add(k - 1)

	reg := obs.NewRegistry()
	s := New(Config{
		Workers: 4, Queue: 8, CacheEntries: 8, Registry: reg,
		OnEmulate: func() {
			emulations.Add(1)
			<-release // hold the leader until all waiters have joined
		},
	})
	s.flights.waiterHook = func(string) { joined.Done() }
	h := s.Handler()

	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make([]result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(h, reqBody)
			results[i] = result{rec.Code, rec.Header().Get("X-Segbus-Cache"), rec.Body.Bytes()}
		}(i)
	}
	// Release the leader only once every other request is provably
	// parked on the flight.
	joined.Wait()
	close(release)
	wg.Wait()

	if got := emulations.Load(); got != 1 {
		t.Fatalf("%d identical concurrent requests ran %d emulations, want exactly 1", k, got)
	}
	var miss, coalesced int
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Errorf("request %d returned different bytes than request 0", i)
		}
		switch r.cache {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d: cache marker %q", i, r.cache)
		}
	}
	if miss != 1 || coalesced != k-1 {
		t.Errorf("markers: %d miss, %d coalesced; want 1 and %d", miss, coalesced, k-1)
	}
	snap := reg.Snapshot(false)
	if got := snap[obs.MetricServedCoalesced]; got != k-1 {
		t.Errorf("coalesced counter %v, want %d", got, k-1)
	}
	if got := snap[obs.MetricServedCacheMisses]; got != 1 {
		t.Errorf("miss counter %v, want 1", got)
	}
}

// TestSingleFlightSequentialIsOneEmulation is the cache/flight
// interplay without forced overlap: however the schedule lands,
// identical requests against a warm-capable cache cost one emulation
// total — stragglers that miss the flight hit the cache instead
// (leaders re-probe after winning, closing the probe/join race).
func TestSingleFlightSequentialIsOneEmulation(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	reqBody := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})
	var emulations atomic.Int64
	s := New(Config{Workers: 2, Queue: 4, CacheEntries: 8,
		OnEmulate: func() { emulations.Add(1) }})
	h := s.Handler()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				rec := post(h, reqBody)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := emulations.Load(); got != 1 {
		t.Fatalf("40 identical requests ran %d emulations, want 1", got)
	}
}

// TestSingleFlightLeaderShedCompletesFlight is the deadlock guard: a
// leader rejected at pool admission must still publish its flight, so
// waiters coalesced onto it get the same coded 429 instead of hanging
// forever — and once capacity returns, a fresh request succeeds (no
// stale flight, no leaked token).
func TestSingleFlightLeaderShedCompletesFlight(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	reqBody := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})
	s := New(Config{Workers: 1, Queue: 0, CacheEntries: 8})
	h := s.Handler()

	// Saturate the only worker slot from outside the flight machinery.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.pool.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started

	const k = 4
	codes := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(h, reqBody)
			codes[i] = rec.Code
		}(i)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("coalesced requests deadlocked behind a shed leader")
	}
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Errorf("request %d: status %d, want 429", i, code)
		}
	}

	// Capacity back: the same request must now serve normally.
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := post(h, reqBody)
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request still failing after capacity returned: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// TestFlightGroupJoinPublish pins the group's contract directly:
// one leader per key at a time, waiters observe the published
// outcome, and a published key starts a fresh flight.
func TestFlightGroupJoinPublish(t *testing.T) {
	g := newFlightGroup()
	f1, leader := g.join("k")
	if !leader {
		t.Fatal("first join did not lead")
	}
	f2, leader2 := g.join("k")
	if leader2 || f2 != f1 {
		t.Fatal("second join did not attach to the in-flight leader")
	}
	if _, other := g.join("other"); !other {
		t.Fatal("distinct key did not lead its own flight")
	}
	g.publish("k", f1, outcome{status: http.StatusOK, body: []byte("r")})
	select {
	case <-f2.done:
	default:
		t.Fatal("publish did not wake the waiter")
	}
	if string(f2.out.body) != "r" {
		t.Fatalf("waiter outcome body %q", f2.out.body)
	}
	if _, fresh := g.join("k"); !fresh {
		t.Fatal("published key did not start a fresh flight")
	}
}
