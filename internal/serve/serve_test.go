package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"segbus/internal/conform"
	"segbus/internal/core"
	"segbus/internal/obs"
	"segbus/internal/schema"
)

// goldenSchemes reads the reviewed MP3 schemes from testdata/golden.
func goldenSchemes(t *testing.T) (psdfXML, psmXML string) {
	t.Helper()
	a, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "mp3-psdf.xsd"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "mp3-psm.xsd"))
	if err != nil {
		t.Fatal(err)
	}
	return string(a), string(b)
}

// body marshals an estimate request.
func body(t *testing.T, req EstimateRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// post runs one POST /estimate through the handler.
func post(h http.Handler, b []byte) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate", bytes.NewReader(b)))
	return rec
}

// decodeError asserts a non-200 response is a well-formed
// ErrorResponse and returns it.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("non-200 body is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if e.Code == "" {
		t.Fatalf("non-200 body has no diagnostic code:\n%s", rec.Body.String())
	}
	return e
}

func TestEstimateGolden(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 2, Queue: 2, CacheEntries: 8})
	h := s.Handler()

	rec := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Segbus-Cache"); got != "miss" {
		t.Errorf("first request cache state = %q, want miss", got)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}

	// The body must be byte-identical to the CLI pipeline's report
	// JSON for the same schemes.
	est, err := core.EstimateXML([]byte(psdfXML), []byte(psmXML), 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := est.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("served body differs from segbus-emu -report-json output:\n%s\nvs\n%s", rec.Body.Bytes(), want)
	}

	// The repeat is a cache hit with the identical payload.
	rec2 := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if rec2.Code != http.StatusOK || rec2.Header().Get("X-Segbus-Cache") != "hit" {
		t.Fatalf("repeat: status %d cache %q", rec2.Code, rec2.Header().Get("X-Segbus-Cache"))
	}
	if !bytes.Equal(rec2.Body.Bytes(), rec.Body.Bytes()) {
		t.Error("cache hit returned different bytes than the cold run")
	}
}

// TestEstimateScenarioGoldens serves every scenario in the corpus and
// checks each response against the canonical report JSON.
func TestEstimateScenarioGoldens(t *testing.T) {
	docs, err := conform.LoadCorpusDir(filepath.Join("..", "..", "testdata", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("scenario corpus is empty")
	}
	s := New(Config{Workers: 2, Queue: 4, CacheEntries: 16})
	h := s.Handler()
	served := 0
	for _, doc := range docs {
		c := conform.NewCase(doc)
		psdfXML, psmXML, err := c.Schemes()
		if err != nil {
			t.Fatalf("%s: %v", doc.Model.Name(), err)
		}
		rec := post(h, body(t, EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)}))
		if _, perr := schema.ParsePSDF(psdfXML); perr != nil {
			// Constructs the scheme round trip cannot express (the
			// roles scenario's external "out" sink) must come back as
			// a coded scheme rejection, not a 500 or a bogus report.
			if rec.Code != http.StatusBadRequest {
				t.Errorf("%s: unparseable scheme served status %d", doc.Model.Name(), rec.Code)
			}
			if e := decodeError(t, rec); e.Code != CodeBadScheme {
				t.Errorf("%s: code %s", doc.Model.Name(), e.Code)
			}
			continue
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", doc.Model.Name(), rec.Code, rec.Body.String())
		}
		if err := c.CheckServed(rec.Body.Bytes()); err != nil {
			t.Errorf("%s: %v", doc.Model.Name(), err)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no scenario was actually served")
	}
}

func TestEstimateOptionsChangeResult(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 2, Queue: 2, CacheEntries: 8})
	h := s.Handler()

	base := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	packaged := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML, PackageSize: 9}))
	overhead := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML,
		Overheads: &OverheadsSpec{GrantTicks: 1, SyncTicks: 2, CASetTicks: 1, CAResetTicks: 1}}))
	for name, rec := range map[string]*httptest.ResponseRecorder{"package": packaged, "overheads": overhead} {
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("X-Segbus-Cache") != "miss" {
			t.Errorf("%s: option variant served from cache", name)
		}
		if bytes.Equal(rec.Body.Bytes(), base.Body.Bytes()) {
			t.Errorf("%s: option variant produced the base report", name)
		}
	}
}

func TestEstimateBadRequests(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 1, CacheEntries: 2})
	h := s.Handler()

	t.Run("method", func(t *testing.T) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("bad json", func(t *testing.T) {
		rec := post(h, []byte("{not json"))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("missing schemes", func(t *testing.T) {
		rec := post(h, body(t, EstimateRequest{PSDF: psdfXML}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("unknown policy", func(t *testing.T) {
		rec := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML, Policy: "round-robin"}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("schema diagnostics", func(t *testing.T) {
		// Well-formed XML describing a broken model: a zero-item flow
		// must be rejected with the analyzer's SB003.
		broken := strings.ReplaceAll(psdfXML, "P1_576_1_250", "P1_0_1_250")
		rec := post(h, body(t, EstimateRequest{PSDF: broken, PSM: psmXML}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		e := decodeError(t, rec)
		if e.Code != CodeBadScheme {
			t.Fatalf("code %s: %+v", e.Code, e)
		}
		found := false
		for _, d := range e.Diagnostics {
			if d.Code == "SB003" {
				found = true
			}
		}
		if !found {
			t.Errorf("SB003 diagnostic missing: %+v", e.Diagnostics)
		}
	})
	t.Run("not xml", func(t *testing.T) {
		rec := post(h, body(t, EstimateRequest{PSDF: "hello", PSM: psmXML}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadScheme {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("body too large", func(t *testing.T) {
		small := New(Config{Workers: 1, Queue: 1, MaxBodyBytes: 64})
		rec := post(small.Handler(), body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
}

func TestEstimatePreflightRejects(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	// The schemes disagree once the model gains a process the
	// platform does not host: preflight must reject with SB0xx
	// mapping diagnostics rather than emulate.
	broken := strings.ReplaceAll(psdfXML,
		`<xs:element name="p14" type="P14"/>`,
		`<xs:element name="p14" type="P14"/><xs:element name="p15" type="P15"/>`)
	broken = strings.ReplaceAll(broken,
		`<xs:complexType name="P14">`,
		`<xs:complexType name="P15"><xs:all><xs:element name="P14_36_9_10" type="Transfer"/></xs:all></xs:complexType><xs:complexType name="P14">`)
	s := New(Config{Workers: 1, Queue: 1})
	rec := post(s.Handler(), body(t, EstimateRequest{PSDF: broken, PSM: psmXML}))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	e := decodeError(t, rec)
	if e.Code != CodeBadModel {
		t.Fatalf("code %s (%s)", e.Code, e.Error)
	}
	if len(e.Diagnostics) == 0 {
		t.Error("preflight rejection carries no diagnostics")
	}
}

func TestEstimateQueueFull(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 0, CacheEntries: 0})
	h := s.Handler()

	// Occupy the only worker slot directly through the pool.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.pool.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started
	defer close(block)

	rec := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != CodeQueueFull {
		t.Errorf("code %s", e.Code)
	}
}

func TestEstimateDeadline(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 1, RequestTimeout: 30 * time.Millisecond})
	h := s.Handler()

	// With the worker held, the request is admitted to the queue and
	// must give up when its deadline passes — freeing its slot.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.pool.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started
	defer close(block)

	rec := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != CodeDeadline {
		t.Errorf("code %s", e.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1, CacheEntries: 4})
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var b healthzBody
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Status != "ok" {
		t.Errorf("status %q", b.Status)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d", rec.Code)
	}
	decodeError(t, rec)
}

func TestMetricsEndpoint(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Queue: 1, CacheEntries: 4, Registry: reg})
	h := s.Handler()

	post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))        // miss
	post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))        // raw-index hit (verbatim repeat)
	post(h, body(t, EstimateRequest{PSDF: psdfXML + "\n", PSM: psmXML})) // canonical cache hit (new bytes, same model)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	exposition := rec.Body.String()
	for _, want := range []string{
		obs.MetricServedCacheHits + " 1",
		obs.MetricServedCacheMisses + " 1",
		obs.MetricServedRawHits + " 1",
		obs.MetricServedPoolMisses + " 1",
		obs.MetricServedRequests + `{code="200",endpoint="/estimate"} 3`,
		"# HELP " + obs.MetricServedLatency,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q:\n%s", want, exposition)
		}
	}
}

func TestDrain(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 1})
	h := s.Handler()

	// Hold the worker so the drain has something to wait for.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.pool.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started

	// A bounded drain cannot finish while the job runs.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if s.Drain(ctx) {
		t.Fatal("drain reported success with a job in flight")
	}
	cancel()

	// Draining: health flips to 503 and estimates are shed with the
	// draining code.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status %d", rec.Code)
	}
	rec = post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /estimate status %d", rec.Code)
	}
	if e := decodeError(t, rec); e.Code != CodeDraining {
		t.Errorf("code %s", e.Code)
	}

	// Once the in-flight job finishes the drain completes.
	close(block)
	if !s.Drain(context.Background()) {
		t.Fatal("drain did not complete after the job finished")
	}
}
