package serve

import (
	"segbus/internal/emulator/pool"
	"segbus/internal/obs"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// The per-platform-shape machine pool lives in internal/emulator/pool
// since PR 10 so the design-space explorer and the sweep harness share
// it; serve keeps these thin wrappers so the serving stack reads in
// its own vocabulary and the pool's server-metric wiring stays next to
// the code it measures.

// poolPerKey / poolMaxShapes are the serving stack's pool bounds —
// the package defaults were chosen for this workload originally.
const (
	poolPerKey    = pool.DefaultPerKey
	poolMaxShapes = pool.DefaultMaxShapes
)

// newMachinePool returns an empty pool reporting to the server
// metric handles (which are nil-safe, so m may carry a nil registry).
func newMachinePool(m *obs.ServerMetrics) *pool.Pool {
	return pool.New(pool.Options{
		PerKey:    poolPerKey,
		MaxShapes: poolMaxShapes,
		Hits:      m.PoolHits,
		Misses:    m.PoolMisses,
		Discards:  m.PoolDiscards,
	})
}

// shapeKey bins a request by the structural sizes that drive machine
// storage; see pool.ShapeKey.
func shapeKey(m *psdf.Model, plat *platform.Platform) string {
	return pool.ShapeKey(m, plat)
}
