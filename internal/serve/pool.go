package serve

import (
	"strconv"
	"sync"

	"segbus/internal/emulator"
	"segbus/internal/obs"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// machinePool keeps warm emulator machines between requests so the
// leader path of an emulation skips per-run machine construction: a
// checkout returns a machine whose flat element arrays, bound
// handlers, kernel slots and queues are already sized for a similar
// platform shape, and Machine.Run reconfigures it in place.
//
// Correctness never depends on the pool: prime() rebuilds every piece
// of run-affecting state from the request's own models, and the
// reuse battery (emulator reuse tests, the conform `pooled` oracle,
// the serve differential) pins warm output byte-identical to fresh.
// The pool therefore only decides how often storage is reused, which
// is why machines are binned by a cheap structural shape key — a
// checkout for a matching shape reuses allocations at their final
// size instead of re-growing them.
//
// Machines are Reset on the way in (put), not the way out, so a
// checkout is a slice pop and the pool never stores a dirty machine —
// a run that failed, deadlocked or hit its step limit returns through
// the same Reset as a clean one.
type machinePool struct {
	mu     sync.Mutex
	free   map[string][]*emulator.Machine
	shapes int // distinct keys currently binned

	perKey    int // free machines kept per shape
	maxShapes int // distinct shapes kept before discarding new ones

	hits, misses, discards *obs.Counter // nil-safe handles
}

// poolPerKey bounds the free list of one shape: enough to keep every
// worker of a typical pool warm on a hot shape without hoarding.
const poolPerKey = 4

// poolMaxShapes bounds the number of distinct shapes binned at once;
// a design-space sweep touches a handful of platform shapes, so 64
// covers real workloads while capping worst-case retained memory.
const poolMaxShapes = 64

// newMachinePool returns an empty pool reporting to the server
// metric handles (which are nil-safe, so m may carry a nil registry).
func newMachinePool(m *obs.ServerMetrics) *machinePool {
	return &machinePool{
		free:      make(map[string][]*emulator.Machine),
		perKey:    poolPerKey,
		maxShapes: poolMaxShapes,
		hits:      m.PoolHits,
		misses:    m.PoolMisses,
		discards:  m.PoolDiscards,
	}
}

// shapeKey bins a request by the structural sizes that drive the
// machine's storage: segment count, per-segment FU counts and flow
// count. Two requests with equal keys allocate identically-shaped
// arenas, so reusing across them is maximally effective; unequal keys
// still reuse correctly (prime regrows in place), they just share no
// bin.
func shapeKey(m *psdf.Model, plat *platform.Platform) string {
	b := make([]byte, 0, 48)
	b = strconv.AppendInt(b, int64(plat.NumSegments()), 10)
	for _, seg := range plat.Segments {
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(len(seg.FUs)), 10)
	}
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(m.NumFlows()), 10)
	return string(b)
}

// get checks out a machine for the given shape, reporting whether it
// was a pool hit (warm machine) or a miss (freshly constructed).
func (p *machinePool) get(key string) (*emulator.Machine, bool) {
	p.mu.Lock()
	if ms := p.free[key]; len(ms) > 0 {
		mc := ms[len(ms)-1]
		ms[len(ms)-1] = nil
		p.free[key] = ms[:len(ms)-1]
		p.mu.Unlock()
		p.hits.Inc()
		return mc, true
	}
	p.mu.Unlock()
	p.misses.Inc()
	return emulator.NewMachine(), false
}

// put returns a machine to its shape's free list, resetting it first
// so the pool only ever holds clean machines. A full free list or an
// exhausted shape budget discards the machine to the GC instead.
func (p *machinePool) put(key string, mc *emulator.Machine) {
	mc.Reset()
	p.mu.Lock()
	ms, ok := p.free[key]
	if !ok && p.shapes >= p.maxShapes {
		p.mu.Unlock()
		p.discards.Inc()
		return
	}
	if len(ms) >= p.perKey {
		p.mu.Unlock()
		p.discards.Inc()
		return
	}
	if !ok {
		p.shapes++
	}
	p.free[key] = append(ms, mc)
	p.mu.Unlock()
}

// stats returns the pool's current occupancy (shapes binned, machines
// free) for tests and /healthz.
func (p *machinePool) stats() (shapes, machines int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ms := range p.free {
		machines += len(ms)
	}
	return p.shapes, machines
}
