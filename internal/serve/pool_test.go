package serve

// Machine-pool and raw-index behavior at the serving layer: checkout
// accounting, capacity discards, byte-identity of pooled results
// under concurrency, and the zero-allocation guarantee of the raw
// fast path.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segbus/internal/apps"
	"segbus/internal/core"
	"segbus/internal/obs"
	"segbus/internal/platform"
)

func TestShapeKey(t *testing.T) {
	m1, p1 := apps.MP3Model(), apps.MP3Platform3(36)
	m2, p2 := apps.MP3Model(), apps.MP3Platform2(36)
	if shapeKey(m1, p1) == shapeKey(m2, p2) {
		t.Errorf("different platform shapes share key %q", shapeKey(m1, p1))
	}
	if shapeKey(m1, p1) != shapeKey(apps.MP3Model(), apps.MP3Platform3(48)) {
		t.Error("package size changed the shape key; it must not (storage shape is size-independent)")
	}
}

// TestMachinePoolCheckout pins the pool contract: a miss constructs,
// a put makes the next get of the same shape a hit, the per-shape cap
// discards the overflow, and every transition lands in its counter.
func TestMachinePoolCheckout(t *testing.T) {
	reg := obs.NewRegistry()
	p := newMachinePool(obs.NewServerMetrics(reg))
	key := "test-shape"

	mc, warm := p.Get(key)
	if warm {
		t.Fatal("empty pool reported a hit")
	}
	p.Put(key, mc)
	if _, warm = p.Get(key); !warm {
		t.Fatal("pooled machine not returned on the next checkout")
	}
	p.Put(key, mc)

	// Overflow the per-shape cap: poolPerKey stay pooled, extras drop.
	for i := 0; i < poolPerKey+2; i++ {
		fresh, _ := p.Get("other-shape")
		p.Put(key, fresh)
	}
	shapes, machines := p.Stats()
	if machines != poolPerKey {
		t.Errorf("pool holds %d machines for one hot shape, want %d", machines, poolPerKey)
	}
	if shapes < 1 {
		t.Errorf("pool shape count %d", shapes)
	}

	snap := reg.Snapshot(false)
	if d := snap[obs.MetricServedPoolDiscards]; d < 2 {
		t.Errorf("discard counter %v after overflowing the cap by 2+", d)
	}
	hits := snap[obs.MetricServedPoolHits]
	misses := snap[obs.MetricServedPoolMisses]
	if hits+misses == 0 || misses == 0 {
		t.Errorf("checkout counters hits=%v misses=%v", hits, misses)
	}
}

// TestMachinePoolStress hammers /estimate from many goroutines with a
// mix of platform shapes and package sizes, with a cache too small to
// absorb the key space — so pooled machines are checked out, reused
// across different shapes and returned concurrently. Every 200 must
// be byte-identical to the canonical single-shot report; afterwards
// the pool counters must reconcile exactly with the emulations
// executed. Run under -race by scripts/check.sh.
func TestMachinePoolStress(t *testing.T) {
	if testing.Short() {
		t.Skip("pool stress skipped in -short mode")
	}

	m := apps.Pipeline(5, 36, 8)
	plat2 := platform.New("pool-2seg", 100*platform.MHz, 36)
	plat2.AddSegment(100*platform.MHz, 0, 1, 2)
	plat2.AddSegment(100*platform.MHz, 3, 4)
	plat3 := platform.New("pool-3seg", 100*platform.MHz, 36)
	plat3.AddSegment(100*platform.MHz, 0, 1)
	plat3.AddSegment(100*platform.MHz, 2, 3)
	plat3.AddSegment(100*platform.MHz, 4)

	type variant struct {
		body []byte
		want []byte
	}
	var variants []variant
	for _, plat := range []*platform.Platform{plat2, plat3} {
		psdfXML, psmXML, err := core.Transform(m, plat)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{36, 18, 12, 9} {
			b, err := json.Marshal(EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML), PackageSize: size})
			if err != nil {
				t.Fatal(err)
			}
			p2 := plat.Clone()
			p2.PackageSize = size
			want, err := core.NewRunner(core.Options{}).ReportJSON(m, p2)
			if err != nil {
				t.Fatal(err)
			}
			variants = append(variants, variant{body: b, want: want})
		}
	}

	reg := obs.NewRegistry()
	var emulations atomic.Int64
	s := New(Config{
		Workers: 4, Queue: 64, CacheEntries: 4, RequestTimeout: 10 * time.Second,
		Registry:  reg,
		OnEmulate: func() { emulations.Add(1) },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 8
	const requests = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				v := variants[(g*3+i)%len(variants)]
				resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(v.body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("goroutine %d: read: %v", g, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d: %s", g, resp.StatusCode, got)
					return
				}
				if !bytes.Equal(got, v.want) {
					t.Errorf("goroutine %d request %d: pooled response differs from canonical report", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot(false)
	poolHits := snap[obs.MetricServedPoolHits]
	poolMisses := snap[obs.MetricServedPoolMisses]
	if got := poolHits + poolMisses; got != float64(emulations.Load()) {
		t.Errorf("pool checkouts %v != emulations executed %d", got, emulations.Load())
	}
	if emulations.Load() > int64(len(variants)) && poolHits == 0 {
		t.Error("repeated emulations never hit the machine pool")
	}
	if shapes, _ := s.machines.Stats(); shapes > poolMaxShapes {
		t.Errorf("pool binned %d shapes, cap is %d", shapes, poolMaxShapes)
	}
}

// TestRawProbeAllocs pins the raw fast path's steady-state allocation
// count at zero: hashing the request fields chunk-wise through the
// pooled scratch and probing the byte-keyed shard must not touch the
// heap. This is the serving half of the "cache hit copies one
// []byte" claim; the benchmark serve/cache_hit_bytes measures its
// latency.
func TestRawProbeAllocs(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 1, CacheEntries: 8})
	h := s.Handler()
	req := EstimateRequest{PSDF: psdfXML, PSM: psmXML}
	if rec := post(h, body(t, req)); rec.Code != http.StatusOK {
		t.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}
	if _, ok := s.RawProbe(&req); !ok {
		t.Fatal("raw index not populated by the 200 response")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := s.RawProbe(&req); !ok {
			t.Fatal("raw probe lost its entry")
		}
	})
	if allocs != 0 {
		t.Errorf("RawProbe allocates %v per call, want 0", allocs)
	}
}

// TestRawIndexByteIdentity pins the fast path's correctness and
// isolation: a verbatim repeat serves the cold run's exact bytes, a
// batch request never populates or consults the raw index, and a
// request differing in any option field misses it.
func TestRawIndexByteIdentity(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Queue: 2, CacheEntries: 8, Registry: reg})
	h := s.Handler()

	cold := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d", cold.Code)
	}
	warm := post(h, body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML}))
	if warm.Code != http.StatusOK || !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Error("raw hit served different bytes than the cold run")
	}
	if raw := reg.Snapshot(false)[obs.MetricServedRawHits]; raw != 1 {
		t.Errorf("raw hit counter %v after one verbatim repeat", raw)
	}

	// Any option change is a different raw key.
	if _, ok := s.RawProbe(&EstimateRequest{PSDF: psdfXML, PSM: psmXML, DetectTicks: 1}); ok {
		t.Error("option variant hit the raw index")
	}
	// Field-boundary injectivity: moving a byte between PSDF and PSM
	// must change the key even though the concatenation is identical.
	if _, ok := s.RawProbe(&EstimateRequest{PSDF: psdfXML + "x", PSM: psmXML}); ok {
		t.Error("suffixed scheme hit the raw index")
	}
}
