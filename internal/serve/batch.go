package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"segbus/internal/analyze"
	"segbus/internal/obs/reqtrace"
)

// BatchRequest is the /estimate/batch request body: up to
// Config.MaxBatchItems independent estimate requests.
type BatchRequest struct {
	Items []EstimateRequest `json:"items"`
}

// BatchItem is one per-item result of a batch response. Status, Code,
// Error and Diagnostics mirror exactly what a single /estimate of the
// same item would have produced; Report carries the report JSON bytes
// verbatim (byte-identical to the single endpoint's body, whitespace
// included), so a batch client can diff items against CLI output.
type BatchItem struct {
	Index       int                  `json:"index"`
	Status      int                  `json:"status"`
	Cache       string               `json:"cache,omitempty"`
	Code        string               `json:"code,omitempty"`
	Error       string               `json:"error,omitempty"`
	Diagnostics []analyze.Diagnostic `json:"diagnostics,omitempty"`
	Report      json.RawMessage      `json:"report,omitempty"`
}

// BatchResponse is the /estimate/batch response body. The envelope is
// 200 whenever it was well-formed — per-item failures ride in Items
// with their own SB9xx codes and never fail the batch.
type BatchResponse struct {
	Items        []BatchItem `json:"items"`
	Served       int         `json:"served"`
	Failed       int         `json:"failed"`
	Deduplicated int         `json:"deduplicated"`
}

// handleBatch is the batch endpoint: decode the envelope, parse every
// item on the request goroutine, deduplicate by content key, fan the
// unique keys out through the shared pipeline (cache → single-flight
// → pool) and reassemble per-item results in input order.
//
// Admission is per unique item: when the pool saturates mid-batch,
// the rejected items come back as per-item 429s while their admitted
// siblings run to completion — the batch itself never deadlocks and
// never fails wholesale on one bad or shed item.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		fail(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", nil)
		return
	}
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "POST required", nil)
		return
	}
	tr := reqtrace.FromContext(r.Context())
	sp := tr.Span("decode")
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		tr.Attr(sp, "code", CodeBadRequest)
		tr.End(sp)
		fail(w, http.StatusBadRequest, CodeBadRequest, "request body: "+err.Error(), nil)
		return
	}
	tr.End(sp)
	if len(req.Items) == 0 {
		fail(w, http.StatusBadRequest, CodeBadRequest, "batch needs at least one item", nil)
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch of %d items exceeds the limit of %d", len(req.Items), s.cfg.MaxBatchItems), nil)
		return
	}
	s.metrics.BatchItems.Add(int64(len(req.Items)))

	// Parse and gate every item inline (cheap, and rejects must not
	// cost worker slots), grouping the survivors by content key so a
	// batch full of duplicates costs one emulation.
	//
	// Tracing: every item opens its own "item" span carrying its index.
	// A rejected item's span terminates at parse time with the SB9xx
	// code attached; a duplicate's terminates pointing at the group
	// leader's index (the emulation spans live under the leader's item
	// span — the batch-level view of single-flight sharing); a leader's
	// stays open across the fan-out and closes when its estimate
	// resolves.
	outs := make([]outcome, len(req.Items))
	type group struct {
		pr   *parsed
		span reqtrace.SpanID // the leader item's span
		idxs []int
	}
	groups := make(map[string]*group)
	var order []string
	for i := range req.Items {
		item := tr.Span("item")
		tr.AttrInt(item, "index", int64(i))
		pr, out := s.parseRequest(tr, item, &req.Items[i])
		if out.status != 0 {
			tr.Attr(item, "code", out.code)
			tr.End(item)
			outs[i] = out
			continue
		}
		g, ok := groups[pr.key]
		if !ok {
			g = &group{pr: pr, span: item}
			groups[pr.key] = g
			order = append(order, pr.key)
		} else {
			tr.AttrInt(item, "deduplicated_into", int64(g.idxs[0]))
			tr.End(item)
		}
		g.idxs = append(g.idxs, i)
	}

	// Fan out one goroutine per unique key. The pool (not the fan-out)
	// bounds actual emulations; single-flight coalesces against other
	// requests in flight, batch or single. The goroutines share the
	// request's trace — its span table is mutex-guarded for exactly
	// this fan-out.
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var wg sync.WaitGroup
	dedup := 0
	for _, key := range order {
		g := groups[key]
		dedup += len(g.idxs) - 1
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			out := s.estimate(ctx, tr, g.span, g.pr)
			tr.End(g.span)
			for _, i := range g.idxs {
				outs[i] = out
			}
		}(g)
	}
	wg.Wait()

	sp = tr.Span("serialize")
	body, err := marshalBatchResponse(outs, dedup)
	if err != nil {
		fail(w, http.StatusInternalServerError, CodeInternal, "batch encoding: "+err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	tr.End(sp)
}

// marshalBatchResponse renders the batch response by hand so each
// item's report bytes are spliced in verbatim: the report JSON is
// indented, and routing it through json.Marshal as a RawMessage would
// compact and re-escape it, breaking the per-item byte-identity with
// the single endpoint (and with segbus-emu -report-json).
func marshalBatchResponse(outs []outcome, dedup int) ([]byte, error) {
	var buf bytes.Buffer
	served, failed := 0, 0
	buf.WriteString(`{"items":[`)
	for i, out := range outs {
		if i > 0 {
			buf.WriteByte(',')
		}
		head, err := json.Marshal(BatchItem{
			Index:       i,
			Status:      out.status,
			Cache:       out.cache,
			Code:        out.code,
			Error:       out.msg,
			Diagnostics: out.diags,
		})
		if err != nil {
			return nil, err
		}
		if out.status == http.StatusOK {
			served++
			// Splice the verbatim report in before the closing brace.
			buf.Write(head[:len(head)-1])
			buf.WriteString(`,"report":`)
			buf.Write(out.body)
			buf.WriteByte('}')
		} else {
			failed++
			buf.Write(head)
		}
	}
	fmt.Fprintf(&buf, `],"served":%d,"failed":%d,"deduplicated":%d}`, served, failed, dedup)
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}
