package serve

import (
	"container/list"
	"strconv"
	"sync"

	"segbus/internal/obs"
)

// defaultCacheShards is the shard count NewShardedCache selects when
// the caller passes 0: enough to keep eight concurrent request
// goroutines off each other's locks while staying small enough that a
// modest cache still fills every shard.
const defaultCacheShards = 8

// maxCacheShards caps the shard count: routing uses the first byte of
// the hex fingerprint, which distinguishes at most 256 shards.
const maxCacheShards = 256

// Cache is the content-addressed result cache: core.Key addresses map
// to serialized report JSON. Because equal keys promise byte-identical
// reports (the key covers the canonical schemes and every
// report-affecting option), a hit can be served verbatim — the cache
// stores the exact bytes a cold run would produce.
//
// The cache is sharded: a power-of-two number of independent LRU
// shards, each behind its own mutex, with a key routed by its
// fingerprint prefix (the first byte of the hex SHA-256, uniformly
// distributed by construction). Concurrent requests for different
// keys therefore contend only 1/shards of the time, and eviction
// stays exact per shard. Each shard keeps its own hit/miss/eviction
// tallies, optionally mirrored into an obs.Registry as
// shard-labelled counters.
//
// The cache is safe for concurrent use. Stored values are treated as
// immutable: Put keeps the slice it is given and Get returns it
// without copying, so callers must not mutate either.
type Cache struct {
	shards []*cacheShard
	mask   uint32
	max    int // total capacity; <= 0 disables
}

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions int64 // guarded by mu

	// Optional obs mirrors (nil-safe handles).
	mHits, mMisses, mEvictions *obs.Counter
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key string
	val []byte
}

// CacheShardStats is one shard's probe tally.
type CacheShardStats struct {
	Shard     int   `json:"shard"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// NewCache returns an unsharded cache holding at most max entries —
// one shard, exact global LRU. max <= 0 disables caching: every Get
// misses and Put discards.
func NewCache(max int) *Cache {
	return NewShardedCache(max, 1, nil)
}

// NewShardedCache returns a cache holding at most max entries spread
// over the given number of shards (rounded up to a power of two,
// capped at 256; <= 0 selects the default of 8). Every shard holds at
// least one entry, so the effective bound is max(entries, shards).
// reg, when non-nil, receives the per-shard hit/miss/eviction
// counters of the server catalogue; nil disables the mirroring but
// keeps the local tallies.
func NewShardedCache(max, shards int, reg *obs.Registry) *Cache {
	if max <= 0 {
		return &Cache{max: 0}
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	if shards > maxCacheShards {
		shards = maxCacheShards
	}
	n := 1
	for n < shards {
		n *= 2
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint32(n - 1), max: max}
	base, rem := max/n, max%n
	for i := range c.shards {
		per := base
		if i < rem {
			per++
		}
		if per < 1 {
			per = 1
		}
		label := strconv.Itoa(i)
		c.shards[i] = &cacheShard{
			max:        per,
			ll:         list.New(),
			items:      make(map[string]*list.Element),
			mHits:      reg.Counter(obs.MetricServedCacheShardHits, "shard", label),
			mMisses:    reg.Counter(obs.MetricServedCacheShardMisses, "shard", label),
			mEvictions: reg.Counter(obs.MetricServedCacheShardEvictions, "shard", label),
		}
	}
	return c
}

// hexNibble decodes one lowercase-hex digit.
func hexNibble(b byte) (uint32, bool) {
	switch {
	case b >= '0' && b <= '9':
		return uint32(b - '0'), true
	case b >= 'a' && b <= 'f':
		return uint32(b-'a') + 10, true
	case b >= 'A' && b <= 'F':
		return uint32(b-'A') + 10, true
	}
	return 0, false
}

// shardFor routes a key to its shard index. The key is normally a hex
// SHA-256 fingerprint, whose first two characters are a uniformly
// distributed byte — the prefix alone routes evenly. Shorter or
// non-hex keys fall back to an FNV-1a hash of the raw bytes, so any
// string routes deterministically.
func (c *Cache) shardFor(key string) uint32 {
	if len(key) >= 2 {
		if hi, ok := hexNibble(key[0]); ok {
			if lo, ok := hexNibble(key[1]); ok {
				return (hi<<4 | lo) & c.mask
			}
		}
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h & c.mask
}

// shardForBytes routes a raw binary key (a SHA-256 digest) to its
// shard: the first byte is uniformly distributed by construction, so
// it routes evenly on its own. Raw keys live in their own Cache
// instance (the raw-request index), so the two routing schemes never
// mix within one cache.
func (c *Cache) shardForBytes(key []byte) uint32 {
	if len(key) == 0 {
		return 0
	}
	return uint32(key[0]) & c.mask
}

// GetBytes is Get for a raw binary key. The lookup converts the key
// in place (the compiler elides the map-index string conversion), so
// a probe performs zero heap allocations — the property the raw
// fast path's latency depends on.
func (c *Cache) GetBytes(key []byte) ([]byte, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	s := c.shards[c.shardForBytes(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[string(key)]
	if !ok {
		s.misses++
		s.mMisses.Inc()
		return nil, false
	}
	s.hits++
	s.mHits.Inc()
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// PutBytes is Put for a raw binary key; the key is copied into an
// owned string only when a new entry is inserted.
func (c *Cache) PutBytes(key []byte, val []byte) (evicted bool) {
	if c == nil || c.max <= 0 {
		return false
	}
	s := c.shards[c.shardForBytes(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[string(key)]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return false
	}
	k := string(key)
	s.items[k] = s.ll.PushFront(&cacheEntry{key: k, val: val})
	if s.ll.Len() <= s.max {
		return false
	}
	oldest := s.ll.Back()
	s.ll.Remove(oldest)
	delete(s.items, oldest.Value.(*cacheEntry).key)
	s.evictions++
	s.mEvictions.Inc()
	return true
}

// ShardFor returns the shard index a key routes to, or -1 when
// caching is disabled — the value request traces attach to their
// cache-probe spans.
func (c *Cache) ShardFor(key string) int {
	if c == nil || c.max <= 0 {
		return -1
	}
	return int(c.shardFor(key))
}

// Get returns the cached value for key and promotes it to most
// recently used within its shard.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	s := c.shards[c.shardFor(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		s.mMisses.Inc()
		return nil, false
	}
	s.hits++
	s.mHits.Inc()
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry of
// the key's shard when that shard is full, and reports whether an
// eviction happened. Re-putting an existing key refreshes its value
// and recency instead of growing the cache.
func (c *Cache) Put(key string, val []byte) (evicted bool) {
	if c == nil || c.max <= 0 {
		return false
	}
	s := c.shards[c.shardFor(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return false
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() <= s.max {
		return false
	}
	oldest := s.ll.Back()
	s.ll.Remove(oldest)
	delete(s.items, oldest.Value.(*cacheEntry).key)
	s.evictions++
	s.mEvictions.Inc()
	return true
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	if c == nil || c.max <= 0 {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Shards returns the shard count (0 when caching is disabled).
func (c *Cache) Shards() int {
	if c == nil || c.max <= 0 {
		return 0
	}
	return len(c.shards)
}

// ShardStats returns a consistent-per-shard snapshot of every shard's
// occupancy and probe tallies, in shard order.
func (c *Cache) ShardStats() []CacheShardStats {
	if c == nil || c.max <= 0 {
		return nil
	}
	out := make([]CacheShardStats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = CacheShardStats{
			Shard:     i,
			Entries:   s.ll.Len(),
			Hits:      s.hits,
			Misses:    s.misses,
			Evictions: s.evictions,
		}
		s.mu.Unlock()
	}
	return out
}
