package serve

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed LRU result cache: core.Key addresses
// map to serialized report JSON. Because equal keys promise
// byte-identical reports (the key covers the canonical schemes and
// every report-affecting option), a hit can be served verbatim — the
// cache stores the exact bytes a cold run would produce.
//
// The cache is safe for concurrent use. Stored values are treated as
// immutable: Put keeps the slice it is given and Get returns it
// without copying, so callers must not mutate either.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache holding at most max entries. max <= 0
// disables caching: every Get misses and Put discards.
func NewCache(max int) *Cache {
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and promotes it to most
// recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry
// when full, and reports whether an eviction happened. Re-putting an
// existing key refreshes its value and recency instead of growing the
// cache.
func (c *Cache) Put(key string, val []byte) (evicted bool) {
	if c == nil || c.max <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return false
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() <= c.max {
		return false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	delete(c.items, oldest.Value.(*cacheEntry).key)
	return true
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil || c.max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
