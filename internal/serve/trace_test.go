package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"segbus/internal/obs"
	"segbus/internal/obs/reqtrace"
)

// forcedParent is a valid W3C traceparent with the sampled flag set:
// sending it forces tracing regardless of the head-sampling rate.
const forcedParent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// tracedServer returns a server with head sampling at every (plus its
// handler), tracing enabled.
func tracedServer(every int) (*Server, http.Handler) {
	s := New(Config{Workers: 2, Queue: 4, CacheEntries: 8, TraceSample: every, TraceSeed: 7})
	return s, s.Handler()
}

// postTraced posts one /estimate with a traceparent header.
func postTraced(h http.Handler, b []byte, traceparent string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/estimate", bytes.NewReader(b))
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	h.ServeHTTP(rec, req)
	return rec
}

// spanNames collects the span names of a snapshot in recording order.
func spanNames(s *reqtrace.Snapshot) []string {
	names := make([]string, len(s.Spans))
	for i, sp := range s.Spans {
		names[i] = sp.Name
	}
	return names
}

// findSpan returns the index of the first span with the given name, or
// -1.
func findSpan(s *reqtrace.Snapshot, name string) int {
	for i, sp := range s.Spans {
		if sp.Name == name {
			return i
		}
	}
	return -1
}

// TestTraceparentForcesServerTrace pins the whole forced-tracing path:
// the sampled-flag traceparent makes an otherwise-unsampled server
// trace the request, adopt the caller's trace id, announce it in
// X-Segbus-Trace, echo a well-formed traceparent, and record the full
// stage breakdown in the flight recorder.
func TestTraceparentForcesServerTrace(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s, h := tracedServer(0) // head sampling off: only the header forces
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	// Untraced request first: no trace headers, nothing recorded.
	rec := post(h, b)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Segbus-Trace"); got != "" {
		t.Errorf("unsampled request grew a trace header %q", got)
	}
	if n := s.Recorder().Recorded(); n != 0 {
		t.Fatalf("unsampled request recorded %d snapshots", n)
	}

	// Forced request: the identical body now lands on the raw-request
	// index, so the breakdown is the byte-level fast path — no
	// parsing, no canonical probe, no emulation.
	rec = postTraced(h, b, forcedParent)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	wantID := "0af7651916cd43dd8448eb211c80319c"
	if got := rec.Header().Get("X-Segbus-Trace"); got != wantID {
		t.Errorf("X-Segbus-Trace = %q, want %q", got, wantID)
	}
	echo := rec.Header().Get("Traceparent")
	id, sampled, ok := reqtrace.ParseTraceparent(echo)
	if !ok || !sampled || id != wantID {
		t.Errorf("echoed traceparent %q: id=%q sampled=%v ok=%v", echo, id, sampled, ok)
	}
	if echo == forcedParent {
		t.Error("echo reused the caller's span id instead of minting its own")
	}

	snap := s.Recorder().Find(wantID)
	if snap == nil {
		t.Fatal("forced trace not in the flight recorder")
	}
	if snap.Parent != forcedParent {
		t.Errorf("snapshot parent %q, want the verbatim request header", snap.Parent)
	}
	if snap.Endpoint != "/estimate" || snap.Status != http.StatusOK {
		t.Errorf("snapshot endpoint/status = %s/%d", snap.Endpoint, snap.Status)
	}
	for _, name := range []string{"request", "decode", "raw_probe", "serialize"} {
		if findSpan(snap, name) < 0 {
			t.Errorf("missing span %q in %v", name, spanNames(snap))
		}
	}
	if res := snap.Spans[findSpan(snap, "raw_probe")].Attr("result"); res != "hit" {
		t.Errorf("verbatim repeat raw probe result = %q, want hit", res)
	}
	for _, name := range []string{"parse", "cache_probe", "emulate"} {
		if findSpan(snap, name) >= 0 {
			t.Errorf("raw hit grew a %q span: %v", name, spanNames(snap))
		}
	}

	// A semantically identical request with different bytes (trailing
	// whitespace on the scheme) misses the raw index and travels the
	// canonical path to a content-addressed cache hit.
	b2 := body(t, EstimateRequest{PSDF: psdfXML + "\n", PSM: psmXML})
	canonID := "00000000000000000000000000000042"
	rec = postTraced(h, b2, "00-"+canonID+"-b7ad6b7169203331-01")
	if rec.Code != http.StatusOK {
		t.Fatalf("canonical-path status %d: %s", rec.Code, rec.Body.String())
	}
	snap = s.Recorder().Find(canonID)
	if snap == nil {
		t.Fatal("canonical-path trace not in the flight recorder")
	}
	for _, name := range []string{"request", "decode", "raw_probe", "parse", "fingerprint", "cache_probe", "serialize"} {
		if findSpan(snap, name) < 0 {
			t.Errorf("missing span %q in %v", name, spanNames(snap))
		}
	}
	if res := snap.Spans[findSpan(snap, "raw_probe")].Attr("result"); res != "miss" {
		t.Errorf("new-bytes raw probe result = %q, want miss", res)
	}
	probe := snap.Spans[findSpan(snap, "cache_probe")]
	if probe.Attr("result") != "hit" {
		t.Errorf("warm cache probe result = %q, want hit", probe.Attr("result"))
	}
	shard, err := strconv.Atoi(probe.Attr("shard"))
	if err != nil || shard < 0 || shard >= s.Cache().Shards() {
		t.Errorf("cache probe shard attr %q out of range [0,%d)", probe.Attr("shard"), s.Cache().Shards())
	}
	if i := findSpan(snap, "emulate"); i >= 0 {
		t.Errorf("cache hit grew an emulate span: %v", spanNames(snap))
	}
}

// TestColdTraceBreakdown checks a cold traced estimate decomposes into
// the full pipeline — flight leadership, pool admission wait and the
// emulation itself — and that the span tree nests inside the request's
// wall time (the differential check of the acceptance list: stage
// durations must be attributable to the measured handler latency, not
// invented).
func TestColdTraceBreakdown(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s, h := tracedServer(0)
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	start := time.Now()
	rec := postTraced(h, b, forcedParent)
	wall := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	snap := s.Recorder().Find("0af7651916cd43dd8448eb211c80319c")
	if snap == nil {
		t.Fatal("trace not recorded")
	}
	for _, name := range []string{"raw_probe", "cache_probe", "flight", "pool_wait", "pool_checkout", "emulate"} {
		if findSpan(snap, name) < 0 {
			t.Fatalf("missing span %q in %v", name, spanNames(snap))
		}
	}
	if role := snap.Spans[findSpan(snap, "flight")].Attr("role"); role != "leader" {
		t.Errorf("cold estimate flight role = %q, want leader", role)
	}
	if res := snap.Spans[findSpan(snap, "cache_probe")].Attr("result"); res != "miss" {
		t.Errorf("cold cache probe result = %q, want miss", res)
	}
	if res := snap.Spans[findSpan(snap, "pool_checkout")].Attr("result"); res != "miss" {
		t.Errorf("first-ever pool checkout result = %q, want miss", res)
	}

	// Differential containment: the trace and the test share no clock,
	// but both are monotonic — the root span lives strictly inside the
	// ServeHTTP call, every span lives inside the root, and the
	// sequential top-level stages cannot sum past the root.
	root := snap.Spans[0]
	if root.DurNs <= 0 || root.DurNs > wall.Nanoseconds() {
		t.Errorf("root span %dns outside handler wall time %dns", root.DurNs, wall.Nanoseconds())
	}
	var stageSum int64
	for i, sp := range snap.Spans {
		if i == 0 {
			continue
		}
		if sp.DurNs < 0 || sp.StartNs < 0 || sp.StartNs+sp.DurNs > root.DurNs {
			t.Errorf("span %s [%d,+%d] escapes the root span [0,%d]", sp.Name, sp.StartNs, sp.DurNs, root.DurNs)
		}
		if sp.Parent == 0 {
			stageSum += sp.DurNs
		}
	}
	if stageSum > root.DurNs {
		t.Errorf("sequential stage durations sum to %dns > root %dns", stageSum, root.DurNs)
	}
	if em := snap.Spans[findSpan(snap, "emulate")]; em.DurNs <= 0 {
		t.Errorf("emulate span has no duration: %+v", em)
	}
}

// TestHeadSampledEstimate checks head sampling without any traceparent
// header: every Nth request is traced with a deterministic seeded id.
func TestHeadSampledEstimate(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s, h := tracedServer(2) // every second request
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	ids := make([]string, 0, 2)
	for i := 0; i < 4; i++ {
		rec := post(h, b)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
		if id := rec.Header().Get("X-Segbus-Trace"); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) != 2 {
		t.Fatalf("sampled %d of 4 requests at 1-in-2: %v", len(ids), ids)
	}
	if s.Recorder().Recorded() != 2 {
		t.Fatalf("recorded %d snapshots, want 2", s.Recorder().Recorded())
	}

	// Same seed, same order ⇒ same ids on a fresh server.
	s2, h2 := tracedServer(2)
	ids2 := make([]string, 0, 2)
	for i := 0; i < 4; i++ {
		if id := post(h2, b).Header().Get("X-Segbus-Trace"); id != "" {
			ids2 = append(ids2, id)
		}
	}
	if len(ids2) != 2 || ids2[0] != ids[0] || ids2[1] != ids[1] {
		t.Errorf("seeded ids not reproducible: %v vs %v", ids, ids2)
	}
	_ = s2
}

// TestBatchItemSpans pins the batch span contract: every item gets its
// own child span carrying its index; a duplicate terminates pointing
// at its group leader and shares the leader's single emulation span;
// an invalid item terminates with its SB9xx code attached; and exactly
// one emulation span exists per unique valid key.
func TestBatchItemSpans(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s, h := tracedServer(0)
	items := []EstimateRequest{
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 6}, // 0: leader of key A
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 6}, // 1: duplicate of A
		{PSDF: psdfXML, PSM: "<broken"},              // 2: invalid scheme
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 9}, // 3: leader of key B
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/estimate/batch", bytes.NewReader(batchBody(t, BatchRequest{Items: items})))
	req.Header.Set("traceparent", forcedParent)
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	snap := s.Recorder().Find("0af7651916cd43dd8448eb211c80319c")
	if snap == nil {
		t.Fatal("batch trace not recorded")
	}
	if snap.Endpoint != "/estimate/batch" {
		t.Errorf("endpoint %q", snap.Endpoint)
	}

	// One item span per input index, in order.
	itemIdx := map[int]int{} // input index -> span index
	for i, sp := range snap.Spans {
		if sp.Name != "item" {
			continue
		}
		n, err := strconv.Atoi(sp.Attr("index"))
		if err != nil {
			t.Fatalf("item span without an index attr: %+v", sp)
		}
		if _, dup := itemIdx[n]; dup {
			t.Fatalf("two item spans for index %d", n)
		}
		itemIdx[n] = i
	}
	if len(itemIdx) != len(items) {
		t.Fatalf("%d item spans for %d items: %v", len(itemIdx), len(items), spanNames(snap))
	}

	// descendants[i] = true when span i is under the item span idx.
	under := func(idx int, i int) bool {
		for i > 0 {
			if i == idx {
				return true
			}
			i = snap.Spans[i].Parent
		}
		return false
	}
	countUnder := func(idx int, name string) int {
		n := 0
		for i, sp := range snap.Spans {
			if sp.Name == name && under(idx, i) {
				n++
			}
		}
		return n
	}

	// Leaders 0 and 3 each own exactly one emulation; the duplicate and
	// the invalid item own none — and those are all the emulate spans.
	for _, lead := range []int{0, 3} {
		if n := countUnder(itemIdx[lead], "emulate"); n != 1 {
			t.Errorf("item %d owns %d emulate spans, want 1", lead, n)
		}
	}
	for _, non := range []int{1, 2} {
		if n := countUnder(itemIdx[non], "emulate"); n != 0 {
			t.Errorf("item %d owns %d emulate spans, want 0", non, n)
		}
	}
	total := 0
	for _, sp := range snap.Spans {
		if sp.Name == "emulate" {
			total++
		}
	}
	if total != 2 {
		t.Errorf("%d emulate spans in the batch trace, want 2", total)
	}

	// The duplicate names its leader; the invalid item carries a code.
	if got := snap.Spans[itemIdx[1]].Attr("deduplicated_into"); got != "0" {
		t.Errorf("duplicate item deduplicated_into = %q, want 0", got)
	}
	code := snap.Spans[itemIdx[2]].Attr("code")
	if !strings.HasPrefix(code, "SB9") {
		t.Errorf("invalid item code attr %q, want an SB9xx code", code)
	}
	if sp := snap.Spans[itemIdx[2]]; sp.DurNs < 0 || sp.StartNs+sp.DurNs > snap.DurNs {
		t.Errorf("invalid item span not terminated inside the request: %+v", sp)
	}
}

// fakeTracerClock is a deterministic tracer clock for golden output:
// every reading advances by one step.
type fakeTracerClock struct {
	mu   sync.Mutex
	now  int64
	step int64
}

func (c *fakeTracerClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += c.step
	return c.now
}

// TestDebugRequestsEndpoint drives the flight-recorder endpoint end to
// end: the schema document, the n override, the single-trace view, the
// Perfetto rendering and the error paths.
func TestDebugRequestsEndpoint(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s, h := tracedServer(0)
	s.Tracer().SetClock((&fakeTracerClock{step: 1000}).Now)
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	// Two forced traces with distinct ids.
	second := "00-00000000000000000000000000000002-b7ad6b7169203331-01"
	for _, tp := range []string{forcedParent, second} {
		if rec := postTraced(h, b, tp); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}

	rec := get("/debug/requests")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var doc reqtrace.Document
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("document: %v", err)
	}
	if doc.Schema != reqtrace.DocumentSchema {
		t.Errorf("schema %q, want %q", doc.Schema, reqtrace.DocumentSchema)
	}
	if doc.Sampled != 2 || len(doc.Traces) != 2 {
		t.Fatalf("sampled=%d traces=%d, want 2/2", doc.Sampled, len(doc.Traces))
	}
	if doc.Traces[0].TraceID != "00000000000000000000000000000002" {
		t.Errorf("traces not newest-first: %s", doc.Traces[0].TraceID)
	}
	if len(doc.Slowest) == 0 {
		t.Error("slowest list empty after two traced requests")
	}

	// n=1 limits the ring view, not the slowest list.
	rec = get("/debug/requests?n=1")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil || len(doc.Traces) != 1 {
		t.Fatalf("n=1: err=%v traces=%d", err, len(doc.Traces))
	}

	// Single-trace view.
	rec = get("/debug/requests?trace=0af7651916cd43dd8448eb211c80319c")
	var snap reqtrace.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if snap.TraceID != "0af7651916cd43dd8448eb211c80319c" || len(snap.Spans) == 0 {
		t.Fatalf("snapshot %q with %d spans", snap.TraceID, len(snap.Spans))
	}

	// Perfetto rendering: chrome trace-event JSON with one complete
	// event per span.
	rec = get("/debug/requests?trace=0af7651916cd43dd8448eb211c80319c&format=perfetto")
	var events struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("perfetto: %v\n%s", err, rec.Body.String())
	}
	complete := 0
	for _, e := range events.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete != len(snap.Spans) {
		t.Errorf("%d complete events for %d spans", complete, len(snap.Spans))
	}

	// Error paths.
	if rec = get("/debug/requests?trace=ffffffffffffffffffffffffffffffff"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d", rec.Code)
	}
	if rec = get("/debug/requests?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad n: status %d", rec.Code)
	}

	// Tracing disabled: the endpoint exists but reports 404.
	off := New(Config{Workers: 1, Queue: 1, TraceSample: -1})
	rec = httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("disabled tracing: status %d", rec.Code)
	}
	if rec := postTraced(off.Handler(), b, forcedParent); rec.Header().Get("X-Segbus-Trace") != "" {
		t.Error("disabled tracing still traced a forced request")
	}
}

// TestTracedRequestExemplar checks a traced request pins its trace id
// to the endpoint latency histogram in the Prometheus exposition.
func TestTracedRequestExemplar(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Queue: 1, CacheEntries: 4, TraceSample: 0, Registry: reg})
	h := s.Handler()
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})
	if rec := postTraced(h, b, forcedParent); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `# {trace_id="0af7651916cd43dd8448eb211c80319c"}`) {
		t.Errorf("exposition has no exemplar for the traced request:\n%s", rec.Body.String())
	}
}
