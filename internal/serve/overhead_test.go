//go:build !race

package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestTracingOverheadSmoke is the overhead gate of the acceptance
// list, run as an in-process A/B so it measures this machine against
// itself instead of against numbers committed from another one: the
// unsampled hot path (tracing enabled, head sampling off — the
// production default) must serve cache hits within 5% of a server
// with tracing compiled out of the request path entirely, plus a
// small absolute floor for scheduler noise. Min-of-N isolates the
// fixed cost from interference; the race detector's instrumentation
// would drown the 5% signal, so the test only builds without -race.
func TestTracingOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke skipped in -short mode")
	}
	psdfXML, psmXML := goldenSchemes(t)
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	run := func(sample int) time.Duration {
		s := New(Config{Workers: 2, Queue: 4, CacheEntries: 8, TraceSample: sample})
		h := s.Handler()
		if rec := post(h, b); rec.Code != http.StatusOK {
			t.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 400; i++ {
			start := time.Now()
			if rec := post(h, b); rec.Code != http.StatusOK {
				t.Fatalf("status %d", rec.Code)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Interleave the arms so a load spike hits both; keep each arm's
	// best.
	off, on := run(-1), run(0)
	if off2 := run(-1); off2 < off {
		off = off2
	}
	if on2 := run(0); on2 < on {
		on = on2
	}
	limit := off + off/20 + 25*time.Microsecond
	if on > limit {
		t.Errorf("unsampled traced path min %v exceeds disabled-tracing min %v + 5%% + 25µs (%v)", on, off, limit)
	}
	t.Logf("cache-hit min: tracing disabled %v, unsampled %v", off, on)
}
