package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"segbus/internal/conform"
)

// FuzzEstimateHandler fuzzes the /estimate request body. The seed
// corpus comes from the same generator that feeds segbus-conform's
// go-fuzz corpus export (scenario-corpus seeded), plus hand-written
// malformed envelopes. Invariants: the handler never panics, and
// every non-200 response is well-formed JSON carrying a diagnostic
// code.
func FuzzEstimateHandler(f *testing.F) {
	corpus, err := conform.LoadCorpusDir(filepath.Join("..", "..", "testdata", "scenarios"))
	if err != nil {
		f.Fatal(err)
	}
	g := conform.NewGenerator(7, corpus)
	for i := 0; i < 8; i++ {
		c := g.Next()
		psdfXML, psmXML, err := c.Schemes()
		if err != nil {
			continue
		}
		body, err := json.Marshal(EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
		// A mutated sibling: valid envelope, damaged scheme.
		f.Add(bytes.Replace(body, []byte("xs:element"), []byte("xs:elemen"), 1))
		// Pool-stressing siblings: the same schemes under different
		// options churn the machine pool and the raw index with
		// distinct shape keys and raw keys while the canonical key
		// space stays small.
		if i < 3 {
			for _, req := range []EstimateRequest{
				{PSDF: string(psdfXML), PSM: string(psmXML), PackageSize: 6 + i},
				{PSDF: string(psdfXML), PSM: string(psmXML), Policy: "fifo"},
				{PSDF: string(psdfXML), PSM: string(psmXML), DetectTicks: int64(i + 1)},
			} {
				b, err := json.Marshal(req)
				if err != nil {
					f.Fatal(err)
				}
				f.Add(b)
			}
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"psdf":"x","psm":"y"}`))
	f.Add([]byte(`{"psdf":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"psdf":"<xs:schema/>","psm":"<xs:schema/>","policy":"warp-speed"}`))

	s := New(Config{Workers: 2, Queue: 2, CacheEntries: 16, RequestTimeout: 10 * time.Second})
	h := s.Handler()
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate", bytes.NewReader(body)))
		if rec.Code == http.StatusOK {
			return
		}
		var e ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("status %d body is not JSON: %v\n%s", rec.Code, err, rec.Body.String())
		}
		if e.Code == "" {
			t.Fatalf("status %d body has no diagnostic code:\n%s", rec.Code, rec.Body.String())
		}
	})
}
