// Package serve turns the one-shot estimation pipeline into a
// long-lived concurrent HTTP service: POST the PSDF and PSM XML
// schemes (the same documents segbus-emu reads) to /estimate — or a
// list of them to /estimate/batch — and get back the versioned report
// JSON, byte-identical to `segbus-emu -report-json` on the same
// schemes.
//
// The service introduces the repository's first shared mutable state,
// managed by four mechanisms:
//
//   - a sharded content-addressed LRU result cache (Cache) keyed by
//     core.Key's canonical hash of model + platform + options, so
//     repeated design-space probes are served without re-simulation
//     and concurrent probes for different keys rarely share a lock —
//     fronted by a raw-request index that recognises a verbatim
//     repeat of an already-served request before any parsing work,
//     and backed by a machine pool that reuses warm emulator arenas
//     across cold runs (see pool.go and rawkey.go);
//   - single-flight coalescing (flightGroup): K identical in-flight
//     requests — batch items included — trigger exactly one
//     emulation, with every waiter sharing the leader's
//     pre-serialized response bytes;
//   - a bounded worker pool (internal/parallel.Pool) with per-request
//     deadlines, queue-full backpressure (HTTP 429) and caller
//     cancellation — an abandoned request frees its admission slot;
//   - a graceful drain: Drain flips /healthz to 503, sheds new
//     estimates with SB905, and waits for in-flight emulations.
//
// Every non-200 response is a JSON ErrorResponse carrying a stable
// service code (SB9xx) and, for schema or preflight rejections, the
// SB0xx diagnostics of the static analyzers; batch requests carry the
// same codes per item without failing the envelope. Request, latency,
// cache, coalescing and saturation metrics flow into an obs.Registry
// exposed on /metrics in Prometheus text exposition.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"segbus/internal/analyze"
	"segbus/internal/core"
	"segbus/internal/emulator"
	"segbus/internal/emulator/pool"
	"segbus/internal/obs"
	"segbus/internal/obs/reqtrace"
	"segbus/internal/parallel"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/schema"
)

// Service diagnostic codes, in the SB9xx range so they can never
// collide with the analyzer codes (SB0xx–SB3xx) they may carry.
const (
	// CodeBadRequest marks a malformed request envelope: invalid
	// JSON, an unsupported method, an oversized body or an unknown
	// option value.
	CodeBadRequest = "SB900"

	// CodeBadScheme marks a PSDF or PSM scheme that failed parsing or
	// validation; Diagnostics carries the SB0xx findings when the
	// scheme was well-formed XML describing a broken model.
	CodeBadScheme = "SB901"

	// CodeBadModel marks a model pair rejected by the static
	// preflight analysis; Diagnostics carries the SB0xx findings.
	CodeBadModel = "SB902"

	// CodeQueueFull marks a request shed because the worker pool had
	// no admission capacity (HTTP 429).
	CodeQueueFull = "SB903"

	// CodeDeadline marks a request that hit its deadline or was
	// abandoned before a result was produced (HTTP 504).
	CodeDeadline = "SB904"

	// CodeDraining marks a request refused because the server is
	// shutting down (HTTP 503).
	CodeDraining = "SB905"

	// CodeInternal marks an emulation failure on a model pair that
	// passed validation and preflight (HTTP 500).
	CodeInternal = "SB906"
)

// EstimateRequest is the /estimate request body.
type EstimateRequest struct {
	// PSDF and PSM are the XML schemes, verbatim.
	PSDF string `json:"psdf"`
	PSM  string `json:"psm"`

	// PackageSize, when positive, overrides the scheme's package size
	// (the -s flag of segbus-emu).
	PackageSize int `json:"package_size,omitempty"`

	// Policy selects the arbitration policy: "" or "bu-first",
	// "fifo", "fixed-priority".
	Policy string `json:"policy,omitempty"`

	// DetectTicks overrides the monitor's end-detection latency.
	DetectTicks int64 `json:"detect_ticks,omitempty"`

	// Overheads selects a non-default timing model.
	Overheads *OverheadsSpec `json:"overheads,omitempty"`
}

// OverheadsSpec mirrors emulator.Overheads in the request JSON.
type OverheadsSpec struct {
	GrantTicks   int `json:"grant_ticks,omitempty"`
	SyncTicks    int `json:"sync_ticks,omitempty"`
	CASetTicks   int `json:"ca_set_ticks,omitempty"`
	CAResetTicks int `json:"ca_reset_ticks,omitempty"`
}

// ErrorResponse is the body of every non-200 response.
type ErrorResponse struct {
	Code        string               `json:"code"`
	Error       string               `json:"error"`
	Diagnostics []analyze.Diagnostic `json:"diagnostics,omitempty"`
}

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent emulations; <= 0 selects GOMAXPROCS.
	Workers int

	// Queue bounds requests admitted beyond the running ones before
	// 429s start; < 0 selects twice the worker count.
	Queue int

	// CacheEntries bounds the result cache; <= 0 disables caching.
	CacheEntries int

	// CacheShards selects the result cache's shard count (rounded up
	// to a power of two, capped at 256); 0 selects 8, 1 gives a
	// single exact global LRU.
	CacheShards int

	// MaxBatchItems bounds the items of one /estimate/batch request;
	// <= 0 selects 64.
	MaxBatchItems int

	// RequestTimeout is the per-request deadline (queue wait
	// included); 0 means no server-imposed deadline. A batch request
	// gets one deadline for the whole batch.
	RequestTimeout time.Duration

	// MaxBodyBytes bounds the request body; <= 0 selects 16 MiB.
	MaxBodyBytes int64

	// Registry receives the server metric catalogue; nil disables
	// metrics (the /metrics endpoint then serves an empty
	// exposition).
	Registry *obs.Registry

	// TraceSample head-samples one in N estimate requests for
	// request-scoped tracing (internal/obs/reqtrace): 0 — the default —
	// samples nothing by itself but still honours requests whose W3C
	// traceparent header carries the sampled flag; < 0 disables
	// tracing entirely (no tracer, no recorder, no /debug/requests
	// content).
	TraceSample int

	// TraceSeed seeds the deterministic trace-id generator; 0 selects
	// 1. Same seed + same request order = same ids.
	TraceSeed uint64

	// TraceRing bounds the flight recorder's ring of recent sampled
	// traces; 0 selects 256.
	TraceRing int

	// TraceSlowest bounds the flight recorder's slowest-trace list;
	// 0 selects 8.
	TraceSlowest int

	// OnEmulate, when non-nil, is called once per emulation actually
	// executed — after pool admission, immediately before the runner.
	// The coalescing tests and the segbus-load harness use it to
	// count runner invocations exactly.
	OnEmulate func()
}

// Server is the estimation service. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	cfg      Config
	cache    *Cache
	rawIndex *Cache     // raw-request byte index; nil when caching is disabled
	machines *pool.Pool // warm emulator machines for the leader path
	flights  *flightGroup
	pool     *parallel.Pool
	metrics  *obs.ServerMetrics
	tracer   *reqtrace.Tracer   // nil when TraceSample < 0
	recorder *reqtrace.Recorder // nil when TraceSample < 0
	draining atomic.Bool
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 64
	}
	metrics := obs.NewServerMetrics(cfg.Registry)
	s := &Server{
		cfg:      cfg,
		cache:    NewShardedCache(cfg.CacheEntries, cfg.CacheShards, cfg.Registry),
		machines: newMachinePool(metrics),
		flights:  newFlightGroup(),
		pool:     parallel.NewPool(cfg.Workers, cfg.Queue),
		metrics:  metrics,
	}
	if cfg.CacheEntries > 0 {
		// The raw index shares the result cache's sizing but not its
		// shard-labelled counters — its hits surface as RawHits.
		s.rawIndex = NewShardedCache(cfg.CacheEntries, cfg.CacheShards, nil)
	}
	if cfg.TraceSample >= 0 {
		s.tracer = reqtrace.New(cfg.TraceSample, cfg.TraceSeed)
		s.recorder = reqtrace.NewRecorder(cfg.TraceRing, cfg.TraceSlowest)
	}
	return s
}

// Cache returns the server's result cache (for tests and stats).
func (s *Server) Cache() *Cache { return s.cache }

// Recorder returns the server's trace flight recorder (nil when
// tracing is disabled) — the backing store of /debug/requests,
// exposed for tests and the load harness.
func (s *Server) Recorder() *reqtrace.Recorder { return s.recorder }

// Tracer returns the server's request tracer (nil when tracing is
// disabled); tests use it to pin the clock.
func (s *Server) Tracer() *reqtrace.Tracer { return s.tracer }

// Handler returns the service mux: POST /estimate, POST
// /estimate/batch, GET /healthz, GET /metrics, GET /debug/requests.
// Every endpoint is instrumented with the obs server catalogue; the
// two estimate endpoints additionally participate in request tracing.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/estimate", s.instrument("/estimate", true, http.HandlerFunc(s.handleEstimate)))
	mux.Handle("/estimate/batch", s.instrument("/estimate/batch", true, http.HandlerFunc(s.handleBatch)))
	mux.Handle("/healthz", s.instrument("/healthz", false, http.HandlerFunc(s.handleHealthz)))
	mux.Handle("/metrics", s.instrument("/metrics", false, obs.Handler(s.cfg.Registry)))
	mux.Handle("/debug/requests", s.instrument("/debug/requests", false, http.HandlerFunc(s.handleDebugRequests)))
	return mux
}

// Drain starts the graceful shutdown: /healthz turns 503, new
// estimates are refused with SB905, and the call blocks until
// in-flight emulations finish or ctx expires, reporting whether the
// drain completed. Idempotent.
func (s *Server) Drain(ctx context.Context) bool {
	s.draining.Store(true)
	s.metrics.Draining.Set(1)
	s.pool.Close()
	return s.pool.Drain(ctx)
}

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint with the in-flight gauge, the request
// counter and the latency histogram. On traced endpoints it also runs
// the trace lifecycle: sample the request (head-based, or forced by a
// W3C traceparent header with the sampled flag), announce the trace id
// up front in the X-Segbus-Trace and Traceparent response headers —
// before the handler writes — and, once the handler returns, snapshot
// the spans into the flight recorder, pin the trace id to the latency
// histogram bucket as an exemplar, and return the trace to its pool.
// An unsampled request pays one nil check and nothing else.
func (s *Server) instrument(endpoint string, traced bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var tr *reqtrace.Trace
		if traced {
			if tr = s.tracer.Start(r.Header.Get("traceparent")); tr != nil {
				w.Header().Set("X-Segbus-Trace", tr.ID())
				w.Header().Set("Traceparent", tr.Traceparent())
				r = r.WithContext(reqtrace.NewContext(r.Context(), tr))
			}
		}
		s.metrics.InFlight.Set(float64(s.pool.InFlight() + 1))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.metrics.InFlight.Set(float64(s.pool.InFlight()))
		status := strconv.Itoa(sw.status)
		lat := time.Since(start).Microseconds()
		if tr == nil {
			s.metrics.Request(endpoint, status, lat)
			return
		}
		snap := tr.Finish(endpoint, sw.status)
		s.recorder.Record(snap)
		s.tracer.Release(tr)
		s.metrics.RequestTraced(endpoint, status, lat, snap.TraceID)
	})
}

// handleDebugRequests serves the trace flight recorder. With no
// parameters it returns the segbus/reqtrace/v1 document: the last 16
// sampled traces (override with ?n=K) plus the current slowest list.
// ?trace=<id> returns that one snapshot — add &format=perfetto for the
// Chrome trace-event rendering of the same request, ready for
// ui.perfetto.dev.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "GET required", nil)
		return
	}
	if s.recorder == nil {
		fail(w, http.StatusNotFound, CodeBadRequest, "request tracing is disabled on this server", nil)
		return
	}
	q := r.URL.Query()
	if id := q.Get("trace"); id != "" {
		snap := s.recorder.Find(id)
		if snap == nil {
			fail(w, http.StatusNotFound, CodeBadRequest, "trace "+id+" is not in the flight recorder", nil)
			return
		}
		var body []byte
		var err error
		if q.Get("format") == "perfetto" {
			body, err = reqtrace.ToTrace(snap).Perfetto()
		} else {
			if body, err = json.MarshalIndent(snap, "", "  "); err == nil {
				body = append(body, '\n')
			}
		}
		if err != nil {
			fail(w, http.StatusInternalServerError, CodeInternal, "trace encoding: "+err.Error(), nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	n := 16
	if v := q.Get("n"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			fail(w, http.StatusBadRequest, CodeBadRequest, "n must be a non-negative integer", nil)
			return
		}
		n = k
	}
	body, err := s.recorder.Document(n).MarshalIndent()
	if err != nil {
		fail(w, http.StatusInternalServerError, CodeInternal, "document encoding: "+err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// fail writes an ErrorResponse.
func fail(w http.ResponseWriter, status int, code, msg string, ds []analyze.Diagnostic) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, err := json.Marshal(ErrorResponse{Code: code, Error: msg, Diagnostics: ds})
	if err != nil {
		// Diagnostics are plain data; this cannot happen. Keep the
		// contract anyway: non-200 bodies are always well-formed JSON.
		body = []byte(`{"code":"` + CodeInternal + `","error":"error encoding failure"}`)
	}
	w.Write(body)
}

// parsePolicy maps the request's policy name.
func parsePolicy(name string) (emulator.Policy, error) {
	switch name {
	case "", "bu-first":
		return emulator.PolicyBUFirst, nil
	case "fifo":
		return emulator.PolicyFIFO, nil
	case "fixed-priority":
		return emulator.PolicyFixedPriority, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want bu-first, fifo or fixed-priority)", name)
}

// outcome is the transport-independent result of one estimate: what
// the single endpoint writes as an HTTP response and the batch
// endpoint embeds as one item. The zero value (status 0) is the
// "no error" sentinel of parseRequest.
type outcome struct {
	status int    // HTTP status; 200 means body carries the report
	cache  string // "hit" | "miss" | "coalesced" on 200
	body   []byte // report JSON on 200
	code   string // SB9xx on non-200
	msg    string
	diags  []analyze.Diagnostic
}

// errOutcome builds a non-200 outcome.
func errOutcome(status int, code, msg string, ds []analyze.Diagnostic) outcome {
	return outcome{status: status, code: code, msg: msg, diags: ds}
}

// parsed is one decoded estimate: the model pair, the configured
// runner and the content key, ready for the cache → single-flight →
// pool pipeline.
type parsed struct {
	m      *psdf.Model
	plat   *platform.Platform
	runner *core.Runner
	key    string
}

// parseRequest decodes one estimate request into its parsed form:
// scheme parsing, option resolution, the preflight gate and key
// derivation, all on the request goroutine — rejecting a broken pair
// must not cost a worker slot. A non-zero outcome status reports the
// rejection. The work lands in two spans under parent: "parse"
// (schemes, options, preflight; a rejection terminates it with the
// SB9xx code attached) and "fingerprint" (canonical key derivation).
func (s *Server) parseRequest(tr *reqtrace.Trace, parent reqtrace.SpanID, req *EstimateRequest) (*parsed, outcome) {
	sp := tr.Child(parent, "parse")
	pr, out := s.decodeRequest(req)
	if out.status != 0 {
		tr.Attr(sp, "code", out.code)
		tr.End(sp)
		return nil, out
	}
	tr.End(sp)

	sp = tr.Child(parent, "fingerprint")
	key, err := pr.runner.Key(pr.m, pr.plat)
	if err != nil {
		tr.Attr(sp, "code", CodeInternal)
		tr.End(sp)
		return nil, errOutcome(http.StatusInternalServerError, CodeInternal, "canonicalize: "+err.Error(), nil)
	}
	tr.End(sp)
	pr.key = key
	return pr, outcome{}
}

// decodeRequest is parseRequest's untraced core: schemes, options and
// the preflight gate, everything except key derivation.
func (s *Server) decodeRequest(req *EstimateRequest) (*parsed, outcome) {
	if req.PSDF == "" || req.PSM == "" {
		return nil, errOutcome(http.StatusBadRequest, CodeBadRequest, "psdf and psm schemes are required", nil)
	}
	m, err := schema.ParsePSDF([]byte(req.PSDF))
	if err != nil {
		ds, _ := analyze.FromError(err)
		return nil, errOutcome(http.StatusBadRequest, CodeBadScheme, "psdf: "+err.Error(), ds)
	}
	plat, err := schema.ParsePSM([]byte(req.PSM))
	if err != nil {
		ds, _ := analyze.FromError(err)
		return nil, errOutcome(http.StatusBadRequest, CodeBadScheme, "psm: "+err.Error(), ds)
	}
	if req.PackageSize > 0 {
		plat.PackageSize = req.PackageSize
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return nil, errOutcome(http.StatusBadRequest, CodeBadRequest, err.Error(), nil)
	}
	opts := core.Options{Policy: policy, DetectTicks: req.DetectTicks}
	if req.Overheads != nil {
		opts.Overheads = emulator.Overheads{
			GrantTicks:   req.Overheads.GrantTicks,
			SyncTicks:    req.Overheads.SyncTicks,
			CASetTicks:   req.Overheads.CASetTicks,
			CAResetTicks: req.Overheads.CAResetTicks,
		}
	}
	if pre := core.Preflight(m, plat); pre.HasErrors() {
		e, warns, _ := pre.Counts()
		return nil, errOutcome(http.StatusBadRequest, CodeBadModel,
			fmt.Sprintf("preflight found %d error(s), %d warning(s)", e, warns),
			pre.Diagnostics)
	}
	return &parsed{m: m, plat: plat, runner: core.NewRunner(opts)}, outcome{}
}

// estimate serves one parsed request through the shared pipeline:
// cache probe → single-flight join → pooled emulation → cache fill.
// Identical concurrent requests — across /estimate, /estimate/batch
// and any mix of the two — resolve to one emulation: the first becomes
// the flight's leader, the rest wait and share its pre-serialized
// bytes.
//
// Tracing: "cache_probe" records the probed shard and its result; a
// flight join opens "flight" with a role attribute — a waiter's span
// covers the whole wait on the leader, a leader's closes immediately
// (its real work shows up as pool_wait/emulate spans instead).
func (s *Server) estimate(ctx context.Context, tr *reqtrace.Trace, parent reqtrace.SpanID, pr *parsed) outcome {
	sp := tr.Child(parent, "cache_probe")
	if tr != nil {
		tr.AttrInt(sp, "shard", int64(s.cache.ShardFor(pr.key)))
	}
	if body, ok := s.cache.Get(pr.key); ok {
		tr.Attr(sp, "result", "hit")
		tr.End(sp)
		s.metrics.CacheHits.Inc()
		return outcome{status: http.StatusOK, cache: "hit", body: body}
	}
	tr.Attr(sp, "result", "miss")
	tr.End(sp)

	fl := tr.Child(parent, "flight")
	f, leader := s.flights.join(pr.key)
	if !leader {
		tr.Attr(fl, "role", "waiter")
		defer tr.End(fl)
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-f.done:
		case <-done:
			// The waiter's own deadline wins over the shared flight;
			// the leader keeps running for everyone else.
			s.metrics.Deadline.Inc()
			return errOutcome(http.StatusGatewayTimeout, CodeDeadline,
				"request abandoned while waiting on a coalesced emulation: "+context.Cause(ctx).Error(), nil)
		}
		out := f.out
		if out.status == http.StatusOK {
			out.cache = "coalesced"
			s.metrics.Coalesced.Inc()
		}
		return out
	}
	tr.Attr(fl, "role", "leader")
	tr.End(fl)

	// Leader. Publish on every exit path — an unfinished flight would
	// hang its waiters until their own deadlines (or forever without
	// one), so even a panic in the emulation must complete it.
	out := errOutcome(http.StatusInternalServerError, CodeInternal, "emulation aborted", nil)
	defer func() { s.flights.publish(pr.key, f, out) }()

	// Re-probe the cache after winning leadership: this request may
	// have missed just before a previous leader filled the entry, and
	// re-running the emulation then would break the "K identical
	// requests, one emulation" guarantee.
	if body, ok := s.cache.Get(pr.key); ok {
		s.metrics.CacheHits.Inc()
		out = outcome{status: http.StatusOK, cache: "hit", body: body}
		return out
	}
	out = s.emulate(ctx, tr, parent, pr)
	return out
}

// emulate runs the leader's pooled emulation and classifies every
// admission and run failure into its service code. A traced request
// gets a "pool_wait" span for the admission wait (reported by the
// pool's observer hook, so it covers exactly the invisible queue time),
// a "pool_checkout" span recording whether the machine pool served a
// warm machine, and an "emulate" span around the runner; the observer
// closure is only built when the request is sampled, so the untraced
// path calls plain Submit semantics with a nil hook.
//
// The emulation runs on a checked-out pool machine through
// ReportJSONOn — byte-identical to a fresh run, minus the
// construction cost — and the machine goes back to the pool on every
// outcome, including failed runs (Reset is total).
func (s *Server) emulate(ctx context.Context, tr *reqtrace.Trace, parent reqtrace.SpanID, pr *parsed) outcome {
	var body []byte
	var runErr error
	var observe func(time.Duration)
	if tr != nil {
		observe = func(wait time.Duration) { tr.SpanPast(parent, "pool_wait", wait) }
	}
	err := s.pool.SubmitObserved(ctx, observe, func() {
		sp := tr.Child(parent, "pool_checkout")
		shape := shapeKey(pr.m, pr.plat)
		mc, warm := s.machines.Get(shape)
		if tr != nil {
			if warm {
				tr.Attr(sp, "result", "hit")
			} else {
				tr.Attr(sp, "result", "miss")
			}
		}
		tr.End(sp)
		sp = tr.Child(parent, "emulate")
		if s.cfg.OnEmulate != nil {
			s.cfg.OnEmulate()
		}
		body, runErr = pr.runner.ReportJSONOn(mc, pr.m, pr.plat)
		tr.End(sp)
		s.machines.Put(shape, mc)
	})
	switch {
	case errors.Is(err, parallel.ErrQueueFull):
		s.metrics.QueueFull.Inc()
		return errOutcome(http.StatusTooManyRequests, CodeQueueFull, "worker pool saturated, retry later", nil)
	case errors.Is(err, parallel.ErrPoolClosed):
		return errOutcome(http.StatusServiceUnavailable, CodeDraining, "server is draining", nil)
	case err != nil:
		// Deadline hit or caller gone while queued; either way no
		// worker slot was burnt.
		s.metrics.Deadline.Inc()
		return errOutcome(http.StatusGatewayTimeout, CodeDeadline, "request abandoned before a worker was free: "+err.Error(), nil)
	}
	if runErr != nil {
		var pf *core.PreflightError
		if errors.As(runErr, &pf) {
			return errOutcome(http.StatusBadRequest, CodeBadModel, runErr.Error(), pf.Result.Diagnostics)
		}
		return errOutcome(http.StatusInternalServerError, CodeInternal, "emulation: "+runErr.Error(), nil)
	}
	if evicted := s.cache.Put(pr.key, body); evicted {
		s.metrics.CacheEvictions.Inc()
	}
	s.metrics.CacheMisses.Inc()
	return outcome{status: http.StatusOK, cache: "miss", body: body}
}

// requestCtx applies the server's per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// handleEstimate is the single-estimate endpoint: decode → raw-index
// probe → shared pipeline → one report or one coded error. The raw
// probe ("raw_probe" span) short-circuits a verbatim repeat of an
// already-served request before any scheme parsing; everything else
// falls through to the canonical pipeline, whose 200s feed the raw
// index for next time. Batch items never consult the raw index — they
// deduplicate against each other by canonical key instead.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		fail(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", nil)
		return
	}
	if r.Method != http.MethodPost {
		fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "POST required", nil)
		return
	}
	tr := reqtrace.FromContext(r.Context())
	sp := tr.Span("decode")
	var req EstimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		tr.Attr(sp, "code", CodeBadRequest)
		tr.End(sp)
		fail(w, http.StatusBadRequest, CodeBadRequest, "request body: "+err.Error(), nil)
		return
	}
	tr.End(sp)
	if s.rawIndex != nil {
		sp = tr.Span("raw_probe")
		if body, ok := s.RawProbe(&req); ok {
			tr.Attr(sp, "result", "hit")
			tr.End(sp)
			s.metrics.RawHits.Inc()
			sp = tr.Span("serialize")
			writeReport(w, body, "hit")
			tr.End(sp)
			return
		}
		tr.Attr(sp, "result", "miss")
		tr.End(sp)
	}
	pr, out := s.parseRequest(tr, reqtrace.RootSpan, &req)
	if out.status != 0 {
		fail(w, out.status, out.code, out.msg, out.diags)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	out = s.estimate(ctx, tr, reqtrace.RootSpan, pr)
	if out.status != http.StatusOK {
		fail(w, out.status, out.code, out.msg, out.diags)
		return
	}
	s.rawStore(&req, out.body)
	sp = tr.Span("serialize")
	writeReport(w, out.body, out.cache)
	tr.End(sp)
}

// writeReport writes a 200 report-JSON response. The body bytes are
// exactly what `segbus-emu -report-json` writes for the same schemes;
// cache state travels in a header so it cannot perturb the payload.
func writeReport(w http.ResponseWriter, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Segbus-Cache", cacheState)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// healthzBody is the /healthz response shape.
type healthzBody struct {
	Status       string `json:"status"` // "ok" or "draining"
	Code         string `json:"code,omitempty"`
	InFlight     int64  `json:"in_flight"`
	CacheEntries int    `json:"cache_entries"`
}

// handleHealthz reports liveness: 200 while serving, 503 once the
// drain has begun (so load balancers stop routing here).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "GET required", nil)
		return
	}
	b := healthzBody{
		Status:       "ok",
		InFlight:     s.pool.InFlight(),
		CacheEntries: s.cache.Len(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		b.Status, b.Code, status = "draining", CodeDraining, http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(b)
}
