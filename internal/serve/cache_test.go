package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/core"
	"segbus/internal/obs"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get a = %q %v", v, ok)
	}
	// "a" was just used, so inserting "c" evicts "b".
	if evicted := c.Put("c", []byte("C")); !evicted {
		t.Fatal("full cache did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU evicted the wrong entry")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Re-putting refreshes, never grows or evicts.
	if evicted := c.Put("a", []byte("A2")); evicted {
		t.Fatal("refresh evicted")
	}
	if v, _ := c.Get("a"); string(v) != "A2" {
		t.Fatalf("refresh lost: %q", v)
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, c := range []*Cache{NewCache(0), nil} {
		c.Put("a", []byte("A"))
		if _, ok := c.Get("a"); ok {
			t.Fatal("disabled cache hit")
		}
		if c.Len() != 0 {
			t.Fatal("disabled cache has entries")
		}
	}
}

// TestCacheConcurrent hammers parallel Get/Put with eviction under
// the race detector: the run is only meaningful with -race, which the
// tier-1 loop applies.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8) // much smaller than the key space: constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%32)
				if v, ok := c.Get(key); ok && string(v) != "v-"+key {
					t.Errorf("cache returned foreign value %q for %s", v, key)
				}
				c.Put(key, []byte("v-"+key))
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("cache grew past its bound: %d", n)
	}
}

// TestCacheHitIsByteIdenticalToColdRun is the serving determinism
// guarantee: a hit returns exactly the bytes a fresh emulation would
// produce.
func TestCacheHitIsByteIdenticalToColdRun(t *testing.T) {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	key, err := r.Key(m, p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := r.ReportJSON(m, p)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	c.Put(key, cold)
	hit, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	again, err := r.ReportJSON(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hit, again) {
		t.Error("cache hit differs from a fresh cold run")
	}
}

// BenchmarkColdEstimate measures the full serving cost of a cache
// miss: canonical key derivation plus emulation plus report
// rendering. Compare with BenchmarkCacheHit (EXPERIMENTS.md records
// the ratio).
func BenchmarkColdEstimate(b *testing.B) {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Key(m, p); err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReportJSON(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures the same request served from the result
// cache: key derivation plus one LRU lookup.
func BenchmarkCacheHit(b *testing.B) {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	key, err := r.Key(m, p)
	if err != nil {
		b.Fatal(err)
	}
	body, err := r.ReportJSON(m, p)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCache(4)
	c.Put(key, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := r.Key(m, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Get(k); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// TestCacheShardRouting pins the routing properties: deterministic
// and stable across instances, in range, hex-prefix based for
// fingerprint-shaped keys, and uniform enough that real fingerprints
// populate every shard.
func TestCacheShardRouting(t *testing.T) {
	a := NewShardedCache(64, 8, nil)
	b := NewShardedCache(64, 8, nil)
	if a.Shards() != 8 || b.Shards() != 8 {
		t.Fatalf("shard counts %d/%d, want 8", a.Shards(), b.Shards())
	}
	keys := []string{
		"", "x", "zz", "deadbeef", "00ff", "ff00", "0a1b2c3d",
		"not-hex-at-all", "A1", "a1", "5", "(unprintable)\x00\x01",
	}
	for _, key := range keys {
		sa, sb := a.shardFor(key), b.shardFor(key)
		if sa != sb {
			t.Errorf("key %q routes to shard %d on one instance, %d on another", key, sa, sb)
		}
		if int(sa) >= a.Shards() {
			t.Errorf("key %q routed out of range: %d", key, sa)
		}
	}
	// Hex-prefixed keys route by their first byte, which is exactly
	// how core.Key fingerprints spread.
	if got := a.shardFor("00aaaa"); got != 0 {
		t.Errorf("hex key 00… routed to shard %d, want 0", got)
	}
	if got := a.shardFor("ffbbbb"); got != 0xff&a.mask {
		t.Errorf("hex key ff… routed to shard %d, want %d", got, 0xff&a.mask)
	}
	// Upper/lower hex prefixes agree.
	if a.shardFor("A1zz") != a.shardFor("a1zz") {
		t.Error("hex routing is case-sensitive")
	}
	// Synthetic fingerprints cover every shard.
	seen := make(map[uint32]bool)
	for i := 0; i < 256; i++ {
		seen[a.shardFor(fmt.Sprintf("%02x-rest-of-key", i))] = true
	}
	if len(seen) != a.Shards() {
		t.Errorf("256 distinct prefixes touched %d/%d shards", len(seen), a.Shards())
	}
}

// TestCacheShardSizing pins the constructor contract: power-of-two
// rounding, the 256-shard cap, defaulting, and capacity distribution
// with a per-shard minimum of one.
func TestCacheShardSizing(t *testing.T) {
	cases := []struct {
		max, shards, wantShards int
	}{
		{64, 0, 8},      // default
		{64, 1, 1},      // NewCache compatibility
		{64, 3, 4},      // round up to power of two
		{64, 8, 8},      //
		{64, 9, 16},     //
		{64, 1000, 256}, // cap
		{2, 8, 8},       // fewer entries than shards: minimum 1 each
	}
	for _, tc := range cases {
		c := NewShardedCache(tc.max, tc.shards, nil)
		if c.Shards() != tc.wantShards {
			t.Errorf("NewShardedCache(%d, %d): %d shards, want %d", tc.max, tc.shards, c.Shards(), tc.wantShards)
			continue
		}
		total, min := 0, 1<<30
		for _, s := range c.shards {
			total += s.max
			if s.max < min {
				min = s.max
			}
		}
		if min < 1 {
			t.Errorf("NewShardedCache(%d, %d): shard with capacity %d", tc.max, tc.shards, min)
		}
		if tc.max >= tc.wantShards && total != tc.max {
			t.Errorf("NewShardedCache(%d, %d): capacities sum to %d, want %d", tc.max, tc.shards, total, tc.max)
		}
	}
}

// lruModel is a deliberately naive per-shard LRU used as the oracle:
// a slice ordered most-recent-first, linear scans, no locking.
type lruModel struct {
	max  int
	keys []string
	vals map[string]string
}

func (m *lruModel) get(key string) (string, bool) {
	for i, k := range m.keys {
		if k == key {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			m.keys = append([]string{key}, m.keys...)
			return m.vals[key], true
		}
	}
	return "", false
}

func (m *lruModel) put(key, val string) (evicted bool) {
	if _, ok := m.vals[key]; ok {
		m.vals[key] = val
		m.get(key) // refresh recency
		return false
	}
	m.keys = append([]string{key}, m.keys...)
	m.vals[key] = val
	if len(m.keys) <= m.max {
		return false
	}
	last := m.keys[len(m.keys)-1]
	m.keys = m.keys[:len(m.keys)-1]
	delete(m.vals, last)
	return true
}

// TestCacheShardedMatchesReference is the randomized property test:
// thousands of seeded Get/Put operations against the sharded cache
// must agree, step by step, with an independent per-shard reference
// LRU — same hits, same values, same eviction decisions — and every
// counter axis must reconcile at the end: hits+misses == Gets,
// aggregate ShardStats == reference tallies == obs-mirrored counters.
func TestCacheShardedMatchesReference(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			reg := obs.NewRegistry()
			c := NewShardedCache(24, shards, reg)
			ref := make([]*lruModel, c.Shards())
			for i := range ref {
				ref[i] = &lruModel{max: c.shards[i].max, vals: make(map[string]string)}
			}

			// Hex-prefixed keys exercise the prefix router; a sprinkle
			// of non-hex keys exercises the FNV fallback.
			rng := rand.New(rand.NewSource(7))
			keyFor := func() string {
				if rng.Intn(10) == 0 {
					return fmt.Sprintf("zkey-%d", rng.Intn(40))
				}
				return fmt.Sprintf("%02x%06x", rng.Intn(256), rng.Intn(1<<24)%40)
			}
			var gets, hits, misses, evictions int64
			for op := 0; op < 6000; op++ {
				key := keyFor()
				m := ref[c.shardFor(key)]
				if rng.Intn(2) == 0 {
					gets++
					got, ok := c.Get(key)
					wantVal, want := m.get(key)
					if ok != want {
						t.Fatalf("op %d: Get(%q) = %v, reference says %v", op, key, ok, want)
					}
					if ok {
						hits++
						if string(got) != wantVal {
							t.Fatalf("op %d: Get(%q) = %q, reference %q", op, key, got, wantVal)
						}
					} else {
						misses++
					}
				} else {
					val := fmt.Sprintf("v%d", op)
					ev := c.Put(key, []byte(val))
					if want := m.put(key, val); ev != want {
						t.Fatalf("op %d: Put(%q) evicted=%v, reference says %v", op, key, ev, want)
					}
					if ev {
						evictions++
					}
				}
			}
			if hits == 0 || misses == 0 || evictions == 0 {
				t.Fatalf("degenerate run: %d hits, %d misses, %d evictions", hits, misses, evictions)
			}

			// Final state: every shard holds exactly the reference keys.
			refLen := 0
			for i, m := range ref {
				refLen += len(m.keys)
				if got := c.shards[i].ll.Len(); got != len(m.keys) {
					t.Errorf("shard %d holds %d entries, reference %d", i, got, len(m.keys))
				}
			}
			if c.Len() != refLen {
				t.Errorf("Len() = %d, reference %d", c.Len(), refLen)
			}

			// Counter reconciliation across all three axes.
			var sHits, sMisses, sEvictions int64
			snap := reg.Snapshot(false)
			for _, st := range c.ShardStats() {
				sHits += st.Hits
				sMisses += st.Misses
				sEvictions += st.Evictions
				label := fmt.Sprintf(`{shard="%d"}`, st.Shard)
				if got := snap[obs.MetricServedCacheShardHits+label]; got != float64(st.Hits) {
					t.Errorf("shard %d: obs hits %v, local %d", st.Shard, got, st.Hits)
				}
				if got := snap[obs.MetricServedCacheShardMisses+label]; got != float64(st.Misses) {
					t.Errorf("shard %d: obs misses %v, local %d", st.Shard, got, st.Misses)
				}
				if got := snap[obs.MetricServedCacheShardEvictions+label]; got != float64(st.Evictions) {
					t.Errorf("shard %d: obs evictions %v, local %d", st.Shard, got, st.Evictions)
				}
			}
			if sHits != hits || sMisses != misses || sEvictions != evictions {
				t.Errorf("aggregate shard tallies (%d/%d/%d) != observed (%d/%d/%d)",
					sHits, sMisses, sEvictions, hits, misses, evictions)
			}
			if sHits+sMisses != gets {
				t.Errorf("hits(%d)+misses(%d) != total Gets(%d)", sHits, sMisses, gets)
			}
		})
	}
}
