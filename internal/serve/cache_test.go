package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/core"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Fatalf("Get a = %q %v", v, ok)
	}
	// "a" was just used, so inserting "c" evicts "b".
	if evicted := c.Put("c", []byte("C")); !evicted {
		t.Fatal("full cache did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU evicted the wrong entry")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Re-putting refreshes, never grows or evicts.
	if evicted := c.Put("a", []byte("A2")); evicted {
		t.Fatal("refresh evicted")
	}
	if v, _ := c.Get("a"); string(v) != "A2" {
		t.Fatalf("refresh lost: %q", v)
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, c := range []*Cache{NewCache(0), nil} {
		c.Put("a", []byte("A"))
		if _, ok := c.Get("a"); ok {
			t.Fatal("disabled cache hit")
		}
		if c.Len() != 0 {
			t.Fatal("disabled cache has entries")
		}
	}
}

// TestCacheConcurrent hammers parallel Get/Put with eviction under
// the race detector: the run is only meaningful with -race, which the
// tier-1 loop applies.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8) // much smaller than the key space: constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%32)
				if v, ok := c.Get(key); ok && string(v) != "v-"+key {
					t.Errorf("cache returned foreign value %q for %s", v, key)
				}
				c.Put(key, []byte("v-"+key))
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("cache grew past its bound: %d", n)
	}
}

// TestCacheHitIsByteIdenticalToColdRun is the serving determinism
// guarantee: a hit returns exactly the bytes a fresh emulation would
// produce.
func TestCacheHitIsByteIdenticalToColdRun(t *testing.T) {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	key, err := r.Key(m, p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := r.ReportJSON(m, p)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	c.Put(key, cold)
	hit, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	again, err := r.ReportJSON(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hit, again) {
		t.Error("cache hit differs from a fresh cold run")
	}
}

// BenchmarkColdEstimate measures the full serving cost of a cache
// miss: canonical key derivation plus emulation plus report
// rendering. Compare with BenchmarkCacheHit (EXPERIMENTS.md records
// the ratio).
func BenchmarkColdEstimate(b *testing.B) {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Key(m, p); err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReportJSON(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures the same request served from the result
// cache: key derivation plus one LRU lookup.
func BenchmarkCacheHit(b *testing.B) {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	key, err := r.Key(m, p)
	if err != nil {
		b.Fatal(err)
	}
	body, err := r.ReportJSON(m, p)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCache(4)
	c.Put(key, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, err := r.Key(m, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Get(k); !ok {
			b.Fatal("unexpected miss")
		}
	}
}
