package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"segbus/internal/obs/reqtrace"
)

// TestDebugRequestsGolden pins the /debug/requests document against a
// reviewed golden: the schema string, the field names, the span tree
// (names, parent links, recording order) and every attribute key and
// value. Timings are the only nondeterministic part and are zeroed
// before the diff; everything else — trace ids included — is fixed by
// the forced traceparent headers and the request order (one cold miss
// with the full emulation breakdown, one verbatim repeat answered by
// the raw-request index, one whitespace-variant answered by the
// canonical cache). Regenerate after a deliberate schema change with
//
//	UPDATE_GOLDEN=1 go test -run TestDebugRequestsGolden ./internal/serve
func TestDebugRequestsGolden(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 2, CacheEntries: 8, TraceSample: 0, TraceSeed: 42})
	h := s.Handler()
	psdfXML, psmXML := goldenSchemes(t)
	b := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})
	bCanon := body(t, EstimateRequest{PSDF: psdfXML + "\n", PSM: psmXML})

	const (
		tpCold  = "00-000102030405060708090a0b0c0d0e0f-0102030405060708-01"
		tpRaw   = "00-0f0e0d0c0b0a09080706050403020100-0807060504030201-01"
		tpCanon = "00-00112233445566778899aabbccddeeff-1122334455667788-01"
	)
	if rec := postTraced(h, b, tpCold); rec.Code != http.StatusOK {
		t.Fatalf("cold status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := postTraced(h, b, tpRaw); rec.Code != http.StatusOK {
		t.Fatalf("raw-hit status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := postTraced(h, bCanon, tpCanon); rec.Code != http.StatusOK {
		t.Fatalf("canonical-hit status %d: %s", rec.Code, rec.Body.String())
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?n=8", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests status %d: %s", rec.Code, rec.Body.String())
	}
	var doc reqtrace.Document
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("document is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	for _, list := range [][]*reqtrace.Snapshot{doc.Traces, doc.Slowest} {
		for _, snap := range list {
			snap.StartNs, snap.DurNs = 0, 0
			for i := range snap.Spans {
				snap.Spans[i].StartNs, snap.Spans[i].DurNs = 0, 0
			}
		}
	}
	// The slowest list is ordered by the measured durations just
	// zeroed; canonicalise it so the golden does not depend on which
	// of the two requests happened to run longer.
	sort.Slice(doc.Slowest, func(i, j int) bool { return doc.Slowest[i].TraceID < doc.Slowest[j].TraceID })
	got, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("..", "..", "testdata", "golden", "debug-requests.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/debug/requests document drifted from golden %s\n-- got --\n%s-- want --\n%s", golden, got, want)
	}
}
