package serve

import (
	"crypto/sha256"
	"hash"
	"strconv"
	"sync"
)

// The raw-request index is the serving stack's byte-level fast path:
// a second result cache keyed by a SHA-256 over the *verbatim*
// request fields, populated whenever a single-estimate request earns
// a 200. A client replaying an identical request body — the common
// shape of design-space probing loops and dashboard refreshes — is
// answered before any XML parsing, canonicalisation or preflight
// work happens: one hash over bytes already in memory, one map
// lookup, one pre-serialized []byte.
//
// The index is sound because the whole pipeline is deterministic: a
// byte-identical request produced these exact response bytes once,
// so it produces them again. Requests differing in irrelevant bytes
// (scheme whitespace, attribute order) miss here and fall through to
// the canonical content-addressed cache, which recognises them by
// their m2t-canonicalised key; the raw index is strictly a cheaper
// front end, never a replacement.

// rawHasher is a pooled scratch for deriving raw keys with zero
// steady-state heap allocations: the SHA-256 state is reused across
// requests, strings are fed chunk-wise through the scratch buffer
// (avoiding []byte(s) conversions), and the digest lands in the
// embedded key array.
type rawHasher struct {
	h   hash.Hash
	key [sha256.Size]byte
	buf [96]byte
}

var rawHashers = sync.Pool{New: func() any { return &rawHasher{h: sha256.New()} }}

// writeString hashes s without converting it to a byte slice.
func (rh *rawHasher) writeString(s string) {
	for len(s) > 0 {
		n := copy(rh.buf[:], s)
		rh.h.Write(rh.buf[:n])
		s = s[n:]
	}
}

// frame hashes one integer in self-delimiting decimal-newline form;
// variable-length fields are preceded by a frame of their length, so
// the overall encoding is injective.
func (rh *rawHasher) frame(v int64) {
	b := strconv.AppendInt(rh.buf[:0], v, 10)
	b = append(b, '\n')
	rh.h.Write(b)
}

// requestKey derives the raw key of req: a SHA-256 over every
// request field verbatim, length-framed. The returned slice aliases
// the hasher's own array and is only valid until the next use.
func (rh *rawHasher) requestKey(req *EstimateRequest) []byte {
	rh.h.Reset()
	rh.writeString("segbus/rawreq/v1\n")
	rh.frame(int64(len(req.PSDF)))
	rh.writeString(req.PSDF)
	rh.frame(int64(len(req.PSM)))
	rh.writeString(req.PSM)
	rh.frame(int64(req.PackageSize))
	rh.frame(int64(len(req.Policy)))
	rh.writeString(req.Policy)
	rh.frame(req.DetectTicks)
	if o := req.Overheads; o != nil {
		rh.frame(1)
		rh.frame(int64(o.GrantTicks))
		rh.frame(int64(o.SyncTicks))
		rh.frame(int64(o.CASetTicks))
		rh.frame(int64(o.CAResetTicks))
	} else {
		rh.frame(0)
	}
	return rh.h.Sum(rh.key[:0])
}

// RawProbe answers an estimate request from the raw-request index
// when an identical request has been served before: the response
// bytes, ready to write verbatim. The probe allocates nothing in
// steady state — it is the first thing the /estimate handler tries
// after decoding, and the serving benchmark's cache_hit_bytes
// measurement. Exposed for tests and the load harness.
func (s *Server) RawProbe(req *EstimateRequest) ([]byte, bool) {
	if s.rawIndex == nil {
		return nil, false
	}
	rh := rawHashers.Get().(*rawHasher)
	body, ok := s.rawIndex.GetBytes(rh.requestKey(req))
	rawHashers.Put(rh)
	return body, ok
}

// rawStore records a 200 response under the request's raw key.
func (s *Server) rawStore(req *EstimateRequest, body []byte) {
	if s.rawIndex == nil {
		return
	}
	rh := rawHashers.Get().(*rawHasher)
	s.rawIndex.PutBytes(rh.requestKey(req), body)
	rawHashers.Put(rh)
}
