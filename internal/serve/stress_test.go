package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segbus/internal/apps"
	"segbus/internal/core"
	"segbus/internal/obs"
	"segbus/internal/platform"
)

// TestServeStress drives the real HTTP stack with N goroutines × M
// mixed cached/uncached requests against a deliberately small pool,
// so cache races, queue-full shedding and slot recycling all happen
// at once. Its value is the schedule churn under -race, so it is
// skipped in -short runs and given extra rounds by scripts/check.sh.
func TestServeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}

	// A small model keeps each cold emulation cheap; package-size
	// variants make distinct cache keys on demand.
	m := apps.Pipeline(4, 36, 10)
	plat := platform.New("stress-plat", 100*platform.MHz, 36)
	plat.AddSegment(100*platform.MHz, 0, 1)
	plat.AddSegment(100*platform.MHz, 2, 3)
	psdfXML, psmXML, err := core.Transform(m, plat)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s := New(Config{Workers: 2, Queue: 2, CacheEntries: 4, RequestTimeout: 5 * time.Second, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 8
	const requests = 25
	sizes := []int{36, 18, 12, 9, 6} // small key space: hits and misses mix

	bodies := make(map[int][]byte, len(sizes))
	for _, size := range sizes {
		b, err := json.Marshal(EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML), PackageSize: size})
		if err != nil {
			t.Fatal(err)
		}
		bodies[size] = b
	}
	// One canonical answer per size, to check every 200 against.
	want := make(map[int][]byte, len(sizes))
	for _, size := range sizes {
		p2 := plat.Clone()
		p2.PackageSize = size
		out, err := core.NewRunner(core.Options{}).ReportJSON(m, p2)
		if err != nil {
			t.Fatal(err)
		}
		want[size] = out
	}

	var ok200, shed429 atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				size := sizes[(g+i)%len(sizes)]
				resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(bodies[size]))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("goroutine %d: read: %v", g, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					if !bytes.Equal(body, want[size]) {
						t.Errorf("goroutine %d: size %d: response differs from canonical report", g, size)
						return
					}
				case http.StatusTooManyRequests:
					shed429.Add(1) // expected under saturation
					var e ErrorResponse
					if err := json.Unmarshal(body, &e); err != nil || e.Code != CodeQueueFull {
						t.Errorf("goroutine %d: malformed 429 body %q", g, body)
						return
					}
				default:
					t.Errorf("goroutine %d: status %d: %s", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("stress run produced no successful response")
	}
	t.Logf("stress: %d ok, %d shed (429), cache entries %d",
		ok200.Load(), shed429.Load(), s.Cache().Len())

	// The shared state must balance: every estimate request is
	// accounted as exactly one of raw-hit/hit/miss/coalesced/shed.
	snap := reg.Snapshot(false)
	raw := snap[obs.MetricServedRawHits]
	hits := snap[obs.MetricServedCacheHits]
	misses := snap[obs.MetricServedCacheMisses]
	coalesced := snap[obs.MetricServedCoalesced]
	if raw+hits+misses+coalesced != float64(ok200.Load()) {
		t.Errorf("raw(%v)+hits(%v)+misses(%v)+coalesced(%v) != 200s(%d)", raw, hits, misses, coalesced, ok200.Load())
	}

	// The machine pool reconciles on its own axis: every executed
	// emulation checked out exactly one machine (hit or miss), and
	// every successful emulation is a cache miss, so with no failing
	// runs the two tallies agree.
	poolHits := snap[obs.MetricServedPoolHits]
	poolMisses := snap[obs.MetricServedPoolMisses]
	if poolHits+poolMisses != misses {
		t.Errorf("pool checkouts hit(%v)+miss(%v) != emulations(%v)", poolHits, poolMisses, misses)
	}
	if shed := snap[obs.MetricServedQueueFull]; shed != float64(shed429.Load()) {
		t.Errorf("queue-full counter %v != observed 429s %d", shed, shed429.Load())
	}

	// The per-shard probe tallies reconcile on their own axis: every
	// probe is a shard hit or a shard miss, and the sums cover at
	// least one probe per handler-level hit/miss (leaders may probe
	// twice — once before and once after winning their flight).
	var shardHits, shardMisses float64
	for _, st := range s.Cache().ShardStats() {
		shardHits += float64(st.Hits)
		shardMisses += float64(st.Misses)
	}
	if shardHits < hits || shardMisses < misses {
		t.Errorf("shard probe tallies (%v hits, %v misses) below handler tallies (%v, %v)",
			shardHits, shardMisses, hits, misses)
	}
}
