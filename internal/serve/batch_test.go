package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"segbus/internal/conform"
	"segbus/internal/core"
	"segbus/internal/schema"
)

// postBatch runs one POST /estimate/batch through the handler.
func postBatch(h http.Handler, b []byte) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate/batch", bytes.NewReader(b)))
	return rec
}

// batchBody marshals a batch request.
func batchBody(t *testing.T, req BatchRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// decodeBatch asserts a 200 envelope and returns it. Report fields
// come back as raw spans of the response, so byte comparisons against
// the single endpoint are exact.
func decodeBatch(t *testing.T, rec *httptest.ResponseRecorder) BatchResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("batch envelope status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch envelope is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	return resp
}

// TestBatchGolden drives one mixed batch through every per-item path:
// a golden model, its exact duplicate, an option variant, a
// non-scheme payload and a half-missing request. The envelope is 200;
// per-item statuses, codes and report bytes mirror the single
// endpoint exactly.
func TestBatchGolden(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 2, Queue: 4, CacheEntries: 8})
	h := s.Handler()

	items := []EstimateRequest{
		{PSDF: psdfXML, PSM: psmXML},                 // 0: served
		{PSDF: psdfXML, PSM: psmXML},                 // 1: duplicate of 0
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 9}, // 2: distinct key
		{PSDF: "hello", PSM: psmXML},                 // 3: SB901 bad scheme
		{PSDF: psdfXML},                              // 4: SB900 missing psm
	}
	resp := decodeBatch(t, postBatch(h, batchBody(t, BatchRequest{Items: items})))
	if len(resp.Items) != len(items) {
		t.Fatalf("%d items back, want %d", len(resp.Items), len(items))
	}
	if resp.Served != 3 || resp.Failed != 2 || resp.Deduplicated != 1 {
		t.Errorf("tallies served=%d failed=%d dedup=%d, want 3/2/1",
			resp.Served, resp.Failed, resp.Deduplicated)
	}
	for i, it := range resp.Items {
		if it.Index != i {
			t.Errorf("item %d carries index %d", i, it.Index)
		}
	}
	for _, i := range []int{0, 1, 2} {
		it := resp.Items[i]
		if it.Status != http.StatusOK || len(it.Report) == 0 {
			t.Fatalf("item %d: status %d report %d bytes (%s %s)", i, it.Status, len(it.Report), it.Code, it.Error)
		}
	}
	if !bytes.Equal(resp.Items[0].Report, resp.Items[1].Report) {
		t.Error("duplicate items returned different report bytes")
	}
	if resp.Items[0].Cache != resp.Items[1].Cache {
		t.Errorf("duplicate items disagree on cache marker: %q vs %q", resp.Items[0].Cache, resp.Items[1].Cache)
	}
	if bytes.Equal(resp.Items[0].Report, resp.Items[2].Report) {
		t.Error("package-size variant produced the base report")
	}
	if it := resp.Items[3]; it.Status != http.StatusBadRequest || it.Code != CodeBadScheme {
		t.Errorf("item 3: status %d code %s, want 400 %s", it.Status, it.Code, CodeBadScheme)
	}
	if it := resp.Items[4]; it.Status != http.StatusBadRequest || it.Code != CodeBadRequest {
		t.Errorf("item 4: status %d code %s, want 400 %s", it.Status, it.Code, CodeBadRequest)
	}

	// Per-item bytes must match the single endpoint on a fresh server
	// (no cache sharing), which is itself pinned to CLI output.
	single := New(Config{Workers: 2, Queue: 4, CacheEntries: 8}).Handler()
	for _, i := range []int{0, 2} {
		rec := post(single, body(t, items[i]))
		if rec.Code != http.StatusOK {
			t.Fatalf("single item %d: status %d", i, rec.Code)
		}
		if !bytes.Equal(resp.Items[i].Report, rec.Body.Bytes()) {
			t.Errorf("item %d: batch report differs from single /estimate body", i)
		}
	}
}

// TestBatchDifferential is the batch acceptance oracle: ≥200 served
// generated cases cross-checked three ways — batch report bytes vs a
// sequential single /estimate of the same item, vs the CLI pipeline
// (Case.CheckServed), with invalid items deliberately mixed into
// every batch to prove one bad item never fails its siblings.
func TestBatchDifferential(t *testing.T) {
	corpus, err := conform.LoadCorpusDir(filepath.Join("..", "..", "testdata", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	g := conform.NewGenerator(2, corpus)

	s := New(Config{Workers: 4, Queue: 16, CacheEntries: 128})
	h := s.Handler()
	// The single-endpoint oracle runs on its own server so its cache
	// cannot feed the batch side (or vice versa).
	oracle := New(Config{Workers: 4, Queue: 16, CacheEntries: 128}).Handler()

	const wantServed = 200
	const batchSize = 8
	const maxBatches = 120
	var served, failedItems, batches int
	for b := 0; served < wantServed && b < maxBatches; b++ {
		type expect struct {
			c       *conform.Case
			invalid bool   // deliberately broken payload
			code    string // expected per-item SB9xx when not servable
		}
		var items []EstimateRequest
		var expects []expect
		for len(items) < batchSize {
			switch len(items) {
			case 2: // a non-scheme payload rides in every batch
				items = append(items, EstimateRequest{PSDF: "<not a scheme>", PSM: "x"})
				expects = append(expects, expect{invalid: true, code: CodeBadScheme})
				continue
			case 5: // as does a half-missing request
				items = append(items, EstimateRequest{PSM: "orphan"})
				expects = append(expects, expect{invalid: true, code: CodeBadRequest})
				continue
			}
			c := g.Next()
			psdfXML, psmXML, err := c.Schemes()
			if err != nil {
				t.Fatalf("batch %d (%s): transform: %v", b, c.Origin, err)
			}
			ex := expect{c: c}
			if _, perr := schema.ParsePSDF(psdfXML); perr != nil {
				ex.code = CodeBadScheme
			} else if pre := core.Preflight(c.Doc.Model, c.Doc.Platform); pre.HasErrors() {
				ex.code = CodeBadModel
			}
			items = append(items, EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)})
			expects = append(expects, ex)
		}

		resp := decodeBatch(t, postBatch(h, batchBody(t, BatchRequest{Items: items})))
		if len(resp.Items) != len(items) {
			t.Fatalf("batch %d: %d items back, want %d", b, len(resp.Items), len(items))
		}
		batches++
		for i, it := range resp.Items {
			ex := expects[i]
			if ex.code != "" {
				// Unservable (corrupt, inexpressible or preflight-
				// rejected) items fail alone, with the same code the
				// single endpoint uses — never the whole envelope.
				if it.Status != http.StatusBadRequest || it.Code != ex.code {
					t.Fatalf("batch %d item %d: status %d code %s, want 400 %s", b, i, it.Status, it.Code, ex.code)
				}
				failedItems++
				continue
			}
			if it.Status != http.StatusOK {
				t.Fatalf("batch %d item %d (%s): status %d code %s: %s", b, i, ex.c.Origin, it.Status, it.Code, it.Error)
			}
			// Oracle 1: CLI pipeline bytes for the same schemes.
			if err := ex.c.CheckServed(it.Report); err != nil {
				t.Fatalf("batch %d item %d (%s): vs CLI: %v", b, i, ex.c.Origin, err)
			}
			// Oracle 2: sequential single /estimate of the same item.
			rec := post(oracle, body(t, items[i]))
			if rec.Code != http.StatusOK {
				t.Fatalf("batch %d item %d: single oracle status %d", b, i, rec.Code)
			}
			if !bytes.Equal(it.Report, rec.Body.Bytes()) {
				t.Fatalf("batch %d item %d (%s): batch report differs from single /estimate", b, i, ex.c.Origin)
			}
			served++
		}
	}
	if served < wantServed {
		t.Errorf("only %d/%d batch items actually served", served, wantServed)
	}
	if failedItems == 0 {
		t.Error("differential run exercised no failing item")
	}
	t.Logf("batch differential: %d batches, %d served items, %d per-item failures", batches, served, failedItems)
}

// TestBatchEnvelopeErrors covers the whole-envelope rejections: only
// a malformed envelope (not a failing item) may produce a non-200.
func TestBatchEnvelopeErrors(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 1, CacheEntries: 2, MaxBatchItems: 4})
	h := s.Handler()

	t.Run("method", func(t *testing.T) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate/batch", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("bad json", func(t *testing.T) {
		rec := postBatch(h, []byte("{not json"))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("empty", func(t *testing.T) {
		rec := postBatch(h, batchBody(t, BatchRequest{}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeBadRequest {
			t.Errorf("code %s", e.Code)
		}
	})
	t.Run("too many items", func(t *testing.T) {
		items := make([]EstimateRequest, 5)
		for i := range items {
			items[i] = EstimateRequest{PSDF: psdfXML, PSM: psmXML}
		}
		rec := postBatch(h, batchBody(t, BatchRequest{Items: items}))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d", rec.Code)
		}
		e := decodeError(t, rec)
		if e.Code != CodeBadRequest || !strings.Contains(e.Error, "limit") {
			t.Errorf("code %s error %q", e.Code, e.Error)
		}
	})
	t.Run("draining", func(t *testing.T) {
		d := New(Config{Workers: 1, Queue: 1})
		ctx, cancel := context.WithTimeout(context.Background(), 0)
		cancel()
		d.Drain(ctx)
		rec := postBatch(d.Handler(), batchBody(t, BatchRequest{Items: []EstimateRequest{{PSDF: psdfXML, PSM: psmXML}}}))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d", rec.Code)
		}
		if e := decodeError(t, rec); e.Code != CodeDraining {
			t.Errorf("code %s", e.Code)
		}
	})
}

// TestBatchSaturatedPool is the fail-fast regression of the
// acceptance list: with the pool saturated from outside, a batch of
// distinct cold items must come back promptly with per-item 429s —
// no deadlock, no wholesale 500 — and the pool must be fully usable
// (no leaked admission token) once capacity returns.
//
// The pool runs with Queue: 0 so saturation is a single deterministic
// fact — the blocker holds the only admission token — instead of a
// race between a helper goroutine and the batch fan-out for the last
// queue slot (a race the fan-out can win under load, after which its
// item waits forever for the blocked worker and the batch deadlocks).
func TestBatchSaturatedPool(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	s := New(Config{Workers: 1, Queue: 0, CacheEntries: 16})
	h := s.Handler()

	// Occupy the worker slot — and with it the pool's only admission
	// token.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.pool.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started

	// Distinct package sizes defeat dedup and the cache: every item
	// needs its own admission.
	items := []EstimateRequest{
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 6},
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 9},
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 12},
	}
	resp := decodeBatch(t, postBatch(h, batchBody(t, BatchRequest{Items: items})))
	if resp.Served != 0 || resp.Failed != len(items) {
		t.Fatalf("saturated batch served=%d failed=%d, want 0/%d", resp.Served, resp.Failed, len(items))
	}
	for i, it := range resp.Items {
		if it.Status != http.StatusTooManyRequests || it.Code != CodeQueueFull {
			t.Errorf("item %d: status %d code %s, want 429 %s", i, it.Status, it.Code, CodeQueueFull)
		}
	}

	// Release the blocker and wait for its token to come all the way
	// back: Submit only returns nil after its own releases have run,
	// so one successful no-op submission proves the handoff finished
	// and nothing was leaked or double-released by the shed items.
	close(block)
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.Submit(context.Background(), func() {}) != nil {
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered after the blocker released")
		}
		time.Sleep(time.Millisecond)
	}

	// Identical items dedup into one group — exactly one admission on
	// the single-token pool — so the recovery batch is deterministic
	// where re-sending three distinct items would shed its own
	// siblings.
	same := []EstimateRequest{
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 6},
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 6},
		{PSDF: psdfXML, PSM: psmXML, PackageSize: 6},
	}
	resp = decodeBatch(t, postBatch(h, batchBody(t, BatchRequest{Items: same})))
	if resp.Served != len(same) || resp.Failed != 0 {
		t.Fatalf("post-release batch served=%d failed=%d: %+v", resp.Served, resp.Failed, resp.Items)
	}
	if resp.Deduplicated != len(same)-1 {
		t.Errorf("post-release batch deduplicated=%d, want %d", resp.Deduplicated, len(same)-1)
	}
}

// TestBatchSharesFlightWithSingle pins the cross-endpoint coalescing:
// a batch item identical to an in-flight single request must attach
// to that flight instead of emulating again.
func TestBatchSharesFlightWithSingle(t *testing.T) {
	psdfXML, psmXML := goldenSchemes(t)
	reqBody := body(t, EstimateRequest{PSDF: psdfXML, PSM: psmXML})

	release := make(chan struct{})
	entered := make(chan struct{})
	emulations := 0
	s := New(Config{Workers: 2, Queue: 4, CacheEntries: 8,
		OnEmulate: func() { emulations++; close(entered); <-release }})
	joined := make(chan struct{})
	s.flights.waiterHook = func(string) { close(joined) }
	h := s.Handler()

	singleDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { singleDone <- post(h, reqBody) }()
	<-entered // the single request leads and is held mid-emulation

	batchDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		batchDone <- postBatch(h, batchBody(t, BatchRequest{Items: []EstimateRequest{{PSDF: psdfXML, PSM: psmXML}}}))
	}()
	<-joined // the batch item is parked on the single request's flight
	close(release)

	single := <-singleDone
	resp := decodeBatch(t, <-batchDone)
	if emulations != 1 {
		t.Fatalf("%d emulations across endpoints, want 1", emulations)
	}
	it := resp.Items[0]
	if it.Status != http.StatusOK || it.Cache != "coalesced" {
		t.Fatalf("batch item status %d cache %q, want 200 coalesced", it.Status, it.Cache)
	}
	if !bytes.Equal(it.Report, single.Body.Bytes()) {
		t.Error("coalesced batch item differs from the single response body")
	}
}
