// Package sched extracts the application schedule from a PSDF model.
//
// The paper's emulator derives the sequencing of processing and
// transfers from the PSDF ordering numbers and implements it within
// the arbiters (section 3.3, first consideration). This package
// performs that extraction as a pure computation:
//
//   - flows are grouped into stages by ordering number T; stage T
//     becomes active only when every flow of every earlier stage has
//     completed, and all flows of an active stage may run
//     concurrently (section 3.1 on equal ordering numbers);
//   - within a process, output packages are gated on input
//     availability by proportional packet-SDF firing: a process that
//     consumes I packages and produces O packages may emit its k-th
//     package only after receiving ceil(k·I/O) packages.
//
// The emulator consumes the Schedule to drive FU masters and to decide
// end-of-stage barriers.
package sched

import (
	"fmt"
	"sort"

	"segbus/internal/psdf"
)

// FlowID indexes a flow within the schedule's canonical flow order
// (Model.Flows() order: sorted by ordering number, then source, then
// target). It is stable for a given model and the key used by the
// emulator's bookkeeping.
type FlowID int

// Stage is the set of flows sharing one ordering number. All flows of
// a stage may execute concurrently once the stage is active.
type Stage struct {
	Order int      // the shared ordering number T
	Flows []FlowID // member flows, in canonical order
}

// Schedule is the extracted application schedule: the canonical flow
// list, its partition into stages, per-flow package counts for the
// configured package size, and the per-process firing gates.
type Schedule struct {
	PackageSize int
	flows       []psdf.Flow
	packages    []int   // per FlowID
	stages      []Stage // ascending by Order
	inPkgs      map[psdf.ProcessID]int
	outPkgs     map[psdf.ProcessID]int
}

// Extract builds the schedule of model m for the given package size.
// The model should have been validated first; Extract itself only
// requires a positive package size.
func Extract(m *psdf.Model, packageSize int) (*Schedule, error) {
	if packageSize <= 0 {
		return nil, fmt.Errorf("sched: non-positive package size %d", packageSize)
	}
	n := m.NumProcesses()
	s := &Schedule{
		PackageSize: packageSize,
		flows:       m.Flows(),
		inPkgs:      make(map[psdf.ProcessID]int, n),
		outPkgs:     make(map[psdf.ProcessID]int, n),
	}
	s.packages = make([]int, len(s.flows))
	for i, f := range s.flows {
		pk := f.Packages(packageSize)
		s.packages[i] = pk
		s.outPkgs[f.Source] += pk
		if f.Target != psdf.SystemOutput {
			s.inPkgs[f.Target] += pk
		}
	}
	// Stage partition: one shared id array, stably sorted by order so
	// ids of equal order keep their flow-list position, then sliced
	// into per-stage windows — no per-order slice growth.
	ids := make([]FlowID, len(s.flows))
	for i := range ids {
		ids[i] = FlowID(i)
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return s.flows[ids[a]].Order < s.flows[ids[b]].Order
	})
	distinct := 0
	for i := range ids {
		if i == 0 || s.flows[ids[i]].Order != s.flows[ids[i-1]].Order {
			distinct++
		}
	}
	s.stages = make([]Stage, 0, distinct)
	for lo := 0; lo < len(ids); {
		hi := lo
		order := s.flows[ids[lo]].Order
		for hi < len(ids) && s.flows[ids[hi]].Order == order {
			hi++
		}
		s.stages = append(s.stages, Stage{Order: order, Flows: ids[lo:hi:hi]})
		lo = hi
	}
	return s, nil
}

// Flows returns the canonical flow list. The slice must not be
// mutated.
func (s *Schedule) Flows() []psdf.Flow { return s.flows }

// Flow returns the flow with the given id.
func (s *Schedule) Flow(id FlowID) psdf.Flow { return s.flows[id] }

// NumFlows returns the number of flows in the schedule.
func (s *Schedule) NumFlows() int { return len(s.flows) }

// Packages returns the number of packages flow id transfers.
func (s *Schedule) Packages(id FlowID) int { return s.packages[id] }

// TotalPackages returns the total number of package transfers in the
// schedule.
func (s *Schedule) TotalPackages() int {
	n := 0
	for _, p := range s.packages {
		n += p
	}
	return n
}

// Stages returns the ordered stage list. The slice must not be
// mutated.
func (s *Schedule) Stages() []Stage { return s.stages }

// NumStages returns the number of stages.
func (s *Schedule) NumStages() int { return len(s.stages) }

// InputPackages returns the total number of packages process p
// receives over the whole execution.
func (s *Schedule) InputPackages(p psdf.ProcessID) int { return s.inPkgs[p] }

// OutputPackages returns the total number of packages process p emits
// over the whole execution.
func (s *Schedule) OutputPackages(p psdf.ProcessID) int { return s.outPkgs[p] }

// InputsRequired returns how many input packages process p must have
// received before it may emit its k-th output package (1-based k),
// under proportional packet-SDF firing. Source processes (no inputs)
// require zero.
func (s *Schedule) InputsRequired(p psdf.ProcessID, k int) int {
	in := s.inPkgs[p]
	out := s.outPkgs[p]
	if in == 0 || out == 0 {
		return 0
	}
	if k >= out {
		return in
	}
	// ceil(k*in/out) without floating point.
	return (k*in + out - 1) / out
}

// StageOf returns the index (into Stages) of the stage containing flow
// id.
func (s *Schedule) StageOf(id FlowID) int {
	order := s.flows[id].Order
	for i, st := range s.stages {
		if st.Order == order {
			return i
		}
	}
	panic(fmt.Sprintf("sched: flow %d not in any stage", id))
}

// Validate cross-checks the schedule's internal consistency. It is
// used by property tests and returns a descriptive error on the first
// inconsistency found.
func (s *Schedule) Validate() error {
	seen := make(map[FlowID]bool)
	prevOrder := -1 << 62
	for _, st := range s.stages {
		if st.Order <= prevOrder {
			return fmt.Errorf("sched: stage orders not strictly increasing (%d after %d)", st.Order, prevOrder)
		}
		prevOrder = st.Order
		if len(st.Flows) == 0 {
			return fmt.Errorf("sched: empty stage with order %d", st.Order)
		}
		for _, id := range st.Flows {
			if int(id) < 0 || int(id) >= len(s.flows) {
				return fmt.Errorf("sched: stage %d references unknown flow %d", st.Order, id)
			}
			if s.flows[id].Order != st.Order {
				return fmt.Errorf("sched: flow %v filed under stage %d", s.flows[id], st.Order)
			}
			if seen[id] {
				return fmt.Errorf("sched: flow %d appears in two stages", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(s.flows) {
		return fmt.Errorf("sched: %d flows staged, model has %d", len(seen), len(s.flows))
	}
	return nil
}
