package sched

import (
	"math/rand"
	"testing"

	"segbus/internal/psdf"
)

func chain() *psdf.Model {
	m := psdf.NewModel("chain")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 10})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 20})
	return m
}

func TestExtractBasics(t *testing.T) {
	s, err := Extract(chain(), 36)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFlows() != 2 {
		t.Fatalf("NumFlows() = %d", s.NumFlows())
	}
	if s.NumStages() != 2 {
		t.Fatalf("NumStages() = %d", s.NumStages())
	}
	if got := s.Packages(0); got != 2 {
		t.Errorf("Packages(0) = %d, want 2", got)
	}
	if got := s.Packages(1); got != 1 {
		t.Errorf("Packages(1) = %d, want 1", got)
	}
	if got := s.TotalPackages(); got != 3 {
		t.Errorf("TotalPackages() = %d, want 3", got)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate(): %v", err)
	}
}

func TestExtractRejectsBadPackageSize(t *testing.T) {
	if _, err := Extract(chain(), 0); err == nil {
		t.Error("Extract with package size 0 succeeded")
	}
	if _, err := Extract(chain(), -5); err == nil {
		t.Error("Extract with negative package size succeeded")
	}
}

func TestStagesGroupByOrder(t *testing.T) {
	m := psdf.NewModel("grouped")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1})
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 36, Order: 1})
	m.AddFlow(psdf.Flow{Source: 1, Target: 3, Items: 36, Order: 5})
	m.AddFlow(psdf.Flow{Source: 2, Target: 3, Items: 36, Order: 5})
	s, err := Extract(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	stages := s.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %v", stages)
	}
	if stages[0].Order != 1 || len(stages[0].Flows) != 2 {
		t.Errorf("stage 0 = %+v", stages[0])
	}
	if stages[1].Order != 5 || len(stages[1].Flows) != 2 {
		t.Errorf("stage 1 = %+v", stages[1])
	}
	for _, st := range stages {
		for _, id := range st.Flows {
			if got := s.StageOf(id); stages[got].Order != st.Order {
				t.Errorf("StageOf(%d) inconsistent", id)
			}
		}
	}
}

func TestInputOutputPackages(t *testing.T) {
	m := psdf.NewModel("inout")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1})  // 2 pkgs
	m.AddFlow(psdf.Flow{Source: 0, Target: 2, Items: 36, Order: 1})  // 1 pkg
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 108, Order: 2}) // 3 pkgs
	s, err := Extract(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.OutputPackages(0); got != 3 {
		t.Errorf("OutputPackages(P0) = %d, want 3", got)
	}
	if got := s.InputPackages(1); got != 2 {
		t.Errorf("InputPackages(P1) = %d, want 2", got)
	}
	if got := s.InputPackages(2); got != 4 {
		t.Errorf("InputPackages(P2) = %d, want 4", got)
	}
	if got := s.OutputPackages(2); got != 0 {
		t.Errorf("OutputPackages(P2) = %d, want 0", got)
	}
}

func TestInputsRequiredProportional(t *testing.T) {
	// P1 consumes 4 packages and produces 2: emission k requires
	// ceil(k*4/2) inputs.
	m := psdf.NewModel("prop")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 144, Order: 1}) // 4 pkgs in
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 72, Order: 2})  // 2 pkgs out
	s, err := Extract(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InputsRequired(1, 1); got != 2 {
		t.Errorf("InputsRequired(P1, 1) = %d, want 2", got)
	}
	if got := s.InputsRequired(1, 2); got != 4 {
		t.Errorf("InputsRequired(P1, 2) = %d, want 4", got)
	}
	if got := s.InputsRequired(1, 99); got != 4 {
		t.Errorf("InputsRequired(P1, beyond) = %d, want capped at 4", got)
	}
}

func TestInputsRequiredSourceIsZero(t *testing.T) {
	s, err := Extract(chain(), 36)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if got := s.InputsRequired(0, k); got != 0 {
			t.Errorf("InputsRequired(source, %d) = %d, want 0", k, got)
		}
	}
}

func TestInputsRequiredMonotonic(t *testing.T) {
	// Property: the gate never decreases with k and never exceeds the
	// total input count.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := psdf.NewModel("mono")
		inPkgs := 1 + rng.Intn(20)
		outPkgs := 1 + rng.Intn(20)
		m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36 * inPkgs, Order: 1})
		m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36 * outPkgs, Order: 2})
		s, err := Extract(m, 36)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for k := 1; k <= outPkgs; k++ {
			got := s.InputsRequired(1, k)
			if got < prev {
				t.Fatalf("gate decreased: k=%d got=%d prev=%d", k, got, prev)
			}
			if got > inPkgs {
				t.Fatalf("gate exceeds inputs: k=%d got=%d in=%d", k, got, inPkgs)
			}
			prev = got
		}
		if got := s.InputsRequired(1, outPkgs); got != inPkgs {
			t.Fatalf("final emission must require all inputs: got %d want %d", got, inPkgs)
		}
	}
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	s, err := Extract(chain(), 36)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: swap the stage orders.
	s.stages[0].Order, s.stages[1].Order = s.stages[1].Order, s.stages[0].Order
	if err := s.Validate(); err == nil {
		t.Error("Validate() accepted corrupted stage order")
	}
}

func TestScheduleFlowsCanonicalOrder(t *testing.T) {
	m := psdf.NewModel("canon")
	m.AddFlow(psdf.Flow{Source: 3, Target: 4, Items: 36, Order: 2})
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1})
	m.AddFlow(psdf.Flow{Source: 1, Target: 3, Items: 36, Order: 1})
	s, err := Extract(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Flows()
	if fs[0].Source != 0 || fs[1].Source != 1 || fs[2].Source != 3 {
		t.Errorf("canonical order violated: %v", fs)
	}
	for i := range fs {
		if s.Flow(FlowID(i)) != fs[i] {
			t.Errorf("Flow(%d) mismatch", i)
		}
	}
}

func TestExtractPartialFinalPackage(t *testing.T) {
	m := psdf.NewModel("ragged")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 37, Order: 1})
	s, err := Extract(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Packages(0); got != 2 {
		t.Errorf("37 items in 36-item packages = %d, want 2", got)
	}
}
