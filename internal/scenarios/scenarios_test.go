// Package scenarios locks the emulator's end-to-end behaviour with a
// golden-file corpus: each testdata/scenarios/*.sbd model description
// is parsed, validated, emulated under both timing models, and the
// rendered reports are compared byte-for-byte with the checked-in
// golden outputs.
//
// Regenerate the goldens after a deliberate model change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/scenarios
package scenarios

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/realplat"
	"segbus/internal/stats"
)

const scenarioDir = "../../testdata/scenarios"

// render produces the scenario's locked output: the estimation report,
// the refined report and the border-unit analysis.
func render(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := dsl.Parse(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		t.Fatalf("%s: %v", path, ds)
	}
	est, err := emulator.Run(doc.Model, doc.Platform, emulator.Config{})
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	act, err := realplat.Run(doc.Model, doc.Platform, realplat.Config{})
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var b strings.Builder
	b.WriteString("== estimation model ==\n")
	b.WriteString(est.String())
	b.WriteString("\n== border units ==\n")
	b.WriteString(stats.BUTable(stats.AnalyzeBUs(est)))
	b.WriteString("\n== refined model ==\n")
	b.WriteString(act.String())
	b.WriteString("\n")
	b.WriteString(stats.Compare(filepath.Base(path), est, act).String())
	b.WriteString("\n")
	return b.String()
}

func TestScenarioGoldens(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.sbd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("only %d scenarios found", len(paths))
	}
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".sbd")
		t.Run(name, func(t *testing.T) {
			got := render(t, path)
			goldenPath := filepath.Join(scenarioDir, "golden", name+".txt")
			if update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("output diverged from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// TestGoldenFilesPresent guards against orphaned goldens (a scenario
// removed without its golden).
func TestGoldenFilesPresent(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join(scenarioDir, "golden", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		name := strings.TrimSuffix(filepath.Base(g), ".txt")
		if _, err := os.Stat(filepath.Join(scenarioDir, name+".sbd")); err != nil {
			t.Errorf("golden %s has no scenario: %v", g, err)
		}
	}
}
