package scenarios

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/trace"
)

// loadScenario parses and validates one scenario description.
func loadScenario(t *testing.T, path string) *dsl.Document {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := dsl.Parse(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		t.Fatalf("%s: %v", path, ds)
	}
	return doc
}

// emulateJSON runs the emulator once with tracing and renders both
// the report and the trace as JSON.
func emulateJSON(t *testing.T, doc *dsl.Document, ov emulator.Overheads) (report, tr []byte) {
	t.Helper()
	tc := &trace.Trace{}
	rep, err := emulator.Run(doc.Model, doc.Platform, emulator.Config{Overheads: ov, Trace: tc})
	if err != nil {
		t.Fatal(err)
	}
	report, err = rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	tr, err = tc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return report, tr
}

// TestEmulatorDeterminism locks run-to-run reproducibility: emulating
// the same scenario twice — under both the estimation model and the
// refined timing model — must produce byte-identical JSON reports and
// byte-identical traces. Any divergence means a nondeterministic data
// structure (map iteration, unstable sort) leaked into the scheduler
// or the renderers.
func TestEmulatorDeterminism(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.sbd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no scenarios under %s", scenarioDir)
	}
	models := map[string]emulator.Overheads{
		"estimation": {},
		"refined":    {GrantTicks: 8, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2},
	}
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".sbd")
		t.Run(name, func(t *testing.T) {
			doc := loadScenario(t, path)
			for model, ov := range models {
				r1, t1 := emulateJSON(t, doc, ov)
				r2, t2 := emulateJSON(t, doc, ov)
				if !bytes.Equal(r1, r2) {
					t.Errorf("%s model: report JSON differs between identical runs", model)
				}
				if !bytes.Equal(t1, t2) {
					t.Errorf("%s model: trace JSON differs between identical runs", model)
				}
			}
		})
	}
}
