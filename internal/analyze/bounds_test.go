package analyze

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// checkBounds asserts the bounds property the analyzer promises:
// the static lower bound never exceeds the emulator's estimate, which
// never exceeds the static upper bound.
func checkBounds(t *testing.T, label string, m *psdf.Model, plat *platform.Platform) {
	t.Helper()
	b, err := ComputeBounds(m, plat)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	est := int64(r.ExecutionTimePs)
	if b.LowerPs <= 0 {
		t.Errorf("%s: non-positive lower bound %d", label, b.LowerPs)
	}
	if b.LowerPs > est {
		t.Errorf("%s: lower bound %d above estimate %d", label, b.LowerPs, est)
	}
	if est > b.UpperPs {
		t.Errorf("%s: estimate %d above upper bound %d", label, est, b.UpperPs)
	}
}

func TestBoundsWithinEmulatorMP3(t *testing.T) {
	m := apps.MP3Model()
	for _, s := range []int{18, 36, 72} {
		for _, pc := range []struct {
			name string
			plat *platform.Platform
		}{
			{"1seg", apps.MP3Platform1(s)},
			{"2seg", apps.MP3Platform2(s)},
			{"3seg", apps.MP3Platform3(s)},
			{"3seg-p9moved", apps.MP3Platform3MovedP9(s)},
		} {
			checkBounds(t, fmt.Sprintf("mp3 %s s=%d", pc.name, s), m, pc.plat)
		}
	}
}

func TestBoundsScenarioCorpus(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/scenarios/*.sbd")
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, "../../testdata/mp3.sbd")
	if len(paths) < 2 {
		t.Fatal("scenario corpus missing")
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := dsl.Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if doc.Platform == nil {
			t.Fatalf("%s: scenario without platform", path)
		}
		checkBounds(t, filepath.Base(path), doc.Model, doc.Platform)
	}
}

// TestBoundsRandomSystems drives the property over random layered
// systems: ≥ 50 generated (model, platform) pairs with varying
// package sizes, segment counts and protocol tick costs.
func TestBoundsRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	const trials = 80
	for trial := 0; trial < trials; trial++ {
		pkg := []int{9, 18, 36, 72}[rng.Intn(4)]
		m := apps.RandomModel(rng, 5, 4, pkg)
		plat := apps.RandomPlatform(rng, m, 4, pkg)
		plat.HeaderTicks = rng.Intn(30)
		plat.CAHopTicks = rng.Intn(30)
		label := fmt.Sprintf("trial %d (s=%d, %d procs, %d segs)",
			trial, pkg, m.NumProcesses(), plat.NumSegments())
		checkBounds(t, label, m, plat)
	}
}

// TestBoundsTightOnSerialPipeline pins the bound quality where it can
// be reasoned about exactly: a single-process-per-stage pipeline on
// one segment is fully serial, so the critical-path lower bound must
// be within the alignment slack of the estimate.
func TestBoundsTightOnSerialPipeline(t *testing.T) {
	m := apps.Pipeline(6, 144, 50)
	plat := platform.New("serial", 100*platform.MHz, 36)
	plat.HeaderTicks = 10
	procs := m.Processes()
	seg := []psdf.ProcessID{}
	seg = append(seg, procs...)
	plat.AddSegment(100*platform.MHz, seg...)
	b, err := ComputeBounds(m, plat)
	if err != nil {
		t.Fatal(err)
	}
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	est := int64(r.ExecutionTimePs)
	if b.LowerPs > est || est > b.UpperPs {
		t.Fatalf("bounds [%d, %d] do not contain %d", b.LowerPs, b.UpperPs, est)
	}
	// Fully serial: the estimate exceeds the critical path only by
	// end-detection and per-package alignments.
	if est > 2*b.CriticalPathPs {
		t.Errorf("critical path %d too loose against serial estimate %d", b.CriticalPathPs, est)
	}
}

func TestComputeBoundsRejectsInvalidInputs(t *testing.T) {
	m := apps.MP3Model()
	bad := platform.New("bad", 0, 0)
	if _, err := ComputeBounds(m, bad); err == nil {
		t.Error("ComputeBounds accepted an invalid platform")
	}
	empty := psdf.NewModel("empty")
	if _, err := ComputeBounds(empty, apps.MP3Platform1(36)); err == nil {
		t.Error("ComputeBounds accepted an invalid model")
	}
	partial := platform.New("partial", 111*platform.MHz, 36)
	partial.AddSegment(100*platform.MHz, 0, 1)
	if _, err := ComputeBounds(m, partial); err == nil {
		t.Error("ComputeBounds accepted an incomplete mapping")
	}
}
