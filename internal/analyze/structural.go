package analyze

import (
	"segbus/internal/dsl"
)

// The structural analyzer surfaces the existing dsl/psdf/platform
// validators behind their stable codes: PSDF well-formedness
// (SB001–SB010), platform constraints and mapping/role checks
// (SB020–SB032), and DSL-level consistency (SB040/SB041). It is the
// exact validation set the emulator applies before a run, so an
// error here means the emulator would reject the model.
func init() {
	Register(&Analyzer{
		Name: "structural",
		Doc:  "PSDF, platform and DSL well-formedness (the emulator's admission checks)",
		Run:  runStructural,
	})
}

func runStructural(pass *Pass) {
	doc := pass.Doc
	if doc == nil {
		doc = &dsl.Document{Model: pass.Model, Platform: pass.Platform}
	}
	for _, d := range doc.Validate() {
		sev := SeverityError
		if d.Severity == dsl.SeverityWarning {
			sev = SeverityWarning
		}
		pass.Report(Diagnostic{
			Code:     d.Code,
			Severity: sev,
			Element:  d.Element,
			Message:  d.Message,
		})
	}
}
