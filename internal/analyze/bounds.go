package analyze

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// CodeBoundsInfo is the informational diagnostic summarising the
// static execution-time bounds (SB201).
const CodeBoundsInfo = "SB201"

// SegmentLoad is the statically computed bus occupancy of one segment:
// the clock ticks its bus spends on package transactions (header plus
// data phases of intra-segment transfers, border-unit fills and
// unloads), and that figure in picoseconds of the segment's clock.
type SegmentLoad struct {
	Segment  int   `json:"segment"`
	BusTicks int64 `json:"busTicks"`
	BusyPs   int64 `json:"busyPs"`
}

// BUCrossing counts the package transfers crossing one border unit in
// each direction over a whole execution.
type BUCrossing struct {
	Name      string `json:"name"`
	Rightward int    `json:"rightward"`
	Leftward  int    `json:"leftward"`
}

// Peak returns the larger directional count (the FIFO pair of a BU
// serves each direction independently).
func (c BUCrossing) Peak() int {
	if c.Leftward > c.Rightward {
		return c.Leftward
	}
	return c.Rightward
}

// Bounds holds the static performance figures of the bounds analyzer:
// provable lower and upper bounds on the estimation-model execution
// time, and the per-element load totals they derive from. The bounds
// are proven against the emulator by property test:
// LowerPs ≤ Report.ExecutionTimePs ≤ UpperPs.
type Bounds struct {
	PackageSize   int `json:"packageSize"`
	TotalPackages int `json:"totalPackages"`

	// CriticalPathPs sums, over the schedule's stages, the largest
	// serial emission chain of any one process in that stage: stages
	// are strict barriers and a functional unit is busy from compute
	// start to package delivery, so no schedule can beat it.
	CriticalPathPs int64 `json:"criticalPathPs"`

	// BusLoadPs is the busiest segment's total bus occupancy; the
	// segment bus serialises its transactions, so it too is a lower
	// bound.
	BusLoadPs int64 `json:"busLoadPs"`

	// LowerPs = max(CriticalPathPs, BusLoadPs).
	LowerPs int64 `json:"lowerPs"`

	// UpperPs assumes full serialisation: every package transfer runs
	// alone on the platform, with a clock-alignment allowance per
	// package and the monitor's end-detection latency on top.
	UpperPs int64 `json:"upperPs"`

	// CASetupTicks totals the CA-clock circuit set-up ticks charged
	// for inter-segment transfers (CAHopTicks per hop per package).
	CASetupTicks int64 `json:"caSetupTicks"`

	Segments  []SegmentLoad `json:"segments"`
	Crossings []BUCrossing  `json:"crossings,omitempty"`
}

// String renders the bounds block of the vet report.
func (b *Bounds) String() string {
	var sb strings.Builder
	sb.WriteString("-- static performance bounds --\n")
	fmt.Fprintf(&sb, "package size %d, %d package transfers\n", b.PackageSize, b.TotalPackages)
	fmt.Fprintf(&sb, "lower bound %d ps (critical path %d ps, peak segment load %d ps)\n",
		b.LowerPs, b.CriticalPathPs, b.BusLoadPs)
	fmt.Fprintf(&sb, "upper bound %d ps (full serialization)\n", b.UpperPs)
	for _, s := range b.Segments {
		fmt.Fprintf(&sb, "Segment %d: %d bus ticks (%d ps busy)\n", s.Segment, s.BusTicks, s.BusyPs)
	}
	fmt.Fprintf(&sb, "CA: %d circuit set-up ticks\n", b.CASetupTicks)
	for _, c := range b.Crossings {
		fmt.Fprintf(&sb, "%s: %d rightward / %d leftward crossing packages\n",
			c.Name, c.Rightward, c.Leftward)
	}
	return sb.String()
}

// The bounds analyzer publishes the static figures as Result.Bounds
// and reports the SB201 summary. It runs only on structurally valid
// (model, platform) pairs; on invalid inputs the structural analyzer
// carries the findings and bounds are meaningless.
func init() {
	Register(&Analyzer{
		Name:          "bounds",
		Doc:           "static bus/CA load totals and execution-time lower/upper bounds",
		NeedsPlatform: true,
		Run:           runBounds,
	})
}

func runBounds(pass *Pass) {
	b, err := ComputeBounds(pass.Model, pass.Platform)
	if err != nil {
		return // structural findings cover invalid inputs
	}
	pass.result.Bounds = b
	pass.Reportf(CodeBoundsInfo, SeverityInfo, "model",
		"static bounds: execution time between %d and %d ps (%d package transfers)",
		b.LowerPs, b.UpperPs, b.TotalPackages)
}

// ComputeBounds derives the static performance figures for model m on
// platform plat under the paper's estimation timing model (zero
// protocol overheads, default end-detection latency). It requires a
// structurally valid pair and returns an error otherwise.
func ComputeBounds(m *psdf.Model, plat *platform.Platform) (*Bounds, error) {
	q, err := NewBoundsQuery(m)
	if err != nil {
		return nil, err
	}
	return q.Bounds(plat)
}

// BoundsQuery answers repeated bounds queries over one model — the
// design-space explorer's seam. A space fixes the application and
// varies the platform, so the model-side validation is paid once here
// and each candidate pays only the platform-dependent work.
type BoundsQuery struct {
	m *psdf.Model
}

// NewBoundsQuery validates the model once and returns a query handle.
func NewBoundsQuery(m *psdf.Model) (*BoundsQuery, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: bounds need a valid model: %w", err)
	}
	return &BoundsQuery{m: m}, nil
}

// Bounds computes the static figures of the query's model on one
// candidate platform. Safe for concurrent use: the handle is
// read-only after construction, so explorer workers share one.
func (q *BoundsQuery) Bounds(plat *platform.Platform) (*Bounds, error) {
	m := q.m
	if err := plat.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: bounds need a valid platform: %w", err)
	}
	if err := plat.ValidateMapping(m); err != nil {
		return nil, fmt.Errorf("analyze: bounds need a complete mapping: %w", err)
	}

	s := plat.PackageSize
	nominal := m.NominalPackageSize()
	header := int64(plat.HeaderTicks)
	caPeriod := plat.CAClock.PeriodPs()

	periods := make(map[int]int64, len(plat.Segments))
	maxPeriod := caPeriod
	for _, seg := range plat.Segments {
		periods[seg.Index] = seg.Clock.PeriodPs()
		if periods[seg.Index] > maxPeriod {
			maxPeriod = periods[seg.Index]
		}
	}

	b := &Bounds{PackageSize: s}
	segTicks := make(map[int]int64, len(plat.Segments))
	// Every border unit gets an entry, so fully idle BUs still show
	// up as the cold side of an imbalance.
	crossing := make(map[string]*BUCrossing)
	var crossOrder []string
	for _, bu := range plat.BUs() {
		name := bu.Name()
		crossing[name] = &BUCrossing{Name: name}
		crossOrder = append(crossOrder, name)
	}

	// itemsIn mirrors the emulator's itemsInPackage: full packages
	// with a possibly partial tail.
	itemsIn := func(f psdf.Flow, pkg int) int64 {
		rest := f.Items - (pkg-1)*s
		if rest > s {
			rest = s
		}
		if rest < 0 {
			rest = 0
		}
		return int64(rest)
	}
	// compute mirrors the emulator's computeTicks: C, rescaled by the
	// package's item share of the nominal package size.
	compute := func(f psdf.Flow, pkg int) int64 {
		c := int64(f.Ticks)
		if nominal <= 0 {
			return c
		}
		return (c*itemsIn(f, pkg) + int64(nominal) - 1) / int64(nominal)
	}

	// Serial per-process emission chains, per stage.
	var orders []int
	seenOrder := make(map[int]bool)
	chains := make(map[int]map[psdf.ProcessID]int64)

	var upperWork int64
	for _, f := range m.Flows() {
		if !seenOrder[f.Order] {
			seenOrder[f.Order] = true
			orders = append(orders, f.Order)
			chains[f.Order] = make(map[psdf.ProcessID]int64)
		}
		srcSeg := plat.SegmentOf(f.Source)
		dstSeg := srcSeg
		if f.Target != psdf.SystemOutput {
			dstSeg = plat.SegmentOf(f.Target)
		}
		route, rightward := plat.Route(srcSeg, dstSeg)
		hops := int64(len(route))
		pk := f.Packages(s)
		b.TotalPackages += pk

		for _, bu := range route {
			c := crossing[bu.Name()]
			if rightward {
				c.Rightward += pk
			} else {
				c.Leftward += pk
			}
		}

		for pkg := 1; pkg <= pk; pkg++ {
			items := itemsIn(f, pkg)
			srcPeriod := periods[srcSeg]
			// FU processing plus the source-segment transaction (an
			// intra-segment transfer or the fill into the first BU).
			latency := compute(f, pkg)*srcPeriod + (header+items)*srcPeriod
			segTicks[srcSeg] += header + items
			// CA circuit set-up, charged per hop on the CA clock.
			latency += hops * int64(plat.CAHopTicks) * caPeriod
			b.CASetupTicks += hops * int64(plat.CAHopTicks)
			// One unload transaction per crossed BU, charged on the
			// entered segment's bus and clock.
			for _, bu := range route {
				entered := bu.Right
				if !rightward {
					entered = bu.Left
				}
				segTicks[entered] += header + items
				latency += (header + items) * periods[entered]
			}
			chains[f.Order][f.Source] += latency
			// Full-serialisation allowance: the package's isolated
			// latency plus a clock-edge alignment per scheduling step
			// (compute start, grant, per-hop CA grant and unload
			// grant, delivery), each at most one period of the
			// slowest clock.
			upperWork += latency + (4+3*hops)*maxPeriod
		}
	}

	sort.Ints(orders)
	for _, t := range orders {
		var stageMax int64
		for _, total := range chains[t] {
			if total > stageMax {
				stageMax = total
			}
		}
		b.CriticalPathPs += stageMax
	}

	for _, seg := range plat.Segments {
		ticks := segTicks[seg.Index]
		busy := ticks * periods[seg.Index]
		b.Segments = append(b.Segments, SegmentLoad{Segment: seg.Index, BusTicks: ticks, BusyPs: busy})
		if busy > b.BusLoadPs {
			b.BusLoadPs = busy
		}
	}
	b.LowerPs = b.CriticalPathPs
	if b.BusLoadPs > b.LowerPs {
		b.LowerPs = b.BusLoadPs
	}
	// End detection: the monitor adds DetectTicks CA ticks after the
	// last activity, and every arbiter's tick total is rounded up to
	// a full period.
	b.UpperPs = upperWork + (emulator.DefaultDetectTicks+1)*caPeriod + maxPeriod

	for _, name := range crossOrder {
		b.Crossings = append(b.Crossings, *crossing[name])
	}
	return b, nil
}
