package analyze

import (
	"sort"
	"strings"

	"segbus/internal/psdf"
)

// Stable diagnostic codes of the liveness analyzer.
const (
	// CodeStageCycle flags a dependency cycle among flows sharing one
	// ordering number. Severity is graded: when every cycle member's
	// entire input set originates inside the cycle the schedule
	// provably deadlocks (error); otherwise packages arriving from
	// outside the cycle may satisfy the proportional firing gates and
	// break the wait, so the cycle is only suspicious (warning).
	CodeStageCycle = "SB101"

	// CodeLateInput flags an input flow ordered after every emission
	// of its target: the data arrives too late to influence anything
	// downstream (warning).
	CodeLateInput = "SB102"

	// CodeNoPathToFinal flags a process none of whose flow paths
	// reaches a final node, so its results are unobservable (warning).
	CodeNoPathToFinal = "SB103"
)

// The liveness analyzer inspects the flow dependency structure that
// the schedule extraction (package sched) and the emulator's firing
// gates enforce: same-stage dependency cycles that deadlock or stall,
// T-order contradictions, and processes whose results can never reach
// a FinalNode. It runs on a bare PSDF model; no platform is needed.
// On valid models it additionally delegates to the exact reachability
// checker (internal/automata), which decides deadlock-versus-
// termination by exhaustive product exploration (SB050–SB052) where
// the structural heuristics can only grade suspicion.
func init() {
	Register(&Analyzer{
		Name: "liveness",
		Doc:  "same-stage dependency cycles, T-order contradictions, unobservable processes, exact deadlock reachability",
		Run:  runLiveness,
	})
}

func runLiveness(pass *Pass) {
	m := pass.Model
	checkStageCycles(pass, m)
	checkLateInputs(pass, m)
	checkFeedsFinal(pass, m)
	checkExactReachability(pass)
}

// checkStageCycles finds dependency cycles among the flows of one
// stage. All flows of a stage may run concurrently, but a process's
// emissions are gated on its received input packages; processes
// feeding each other within the same stage can therefore wait on one
// another.
func checkStageCycles(pass *Pass, m *psdf.Model) {
	byOrder := make(map[int]map[psdf.ProcessID][]psdf.ProcessID)
	for _, f := range m.Flows() {
		if f.Target == psdf.SystemOutput || f.Source == f.Target {
			continue // self-loops are SB006
		}
		adj := byOrder[f.Order]
		if adj == nil {
			adj = make(map[psdf.ProcessID][]psdf.ProcessID)
			byOrder[f.Order] = adj
		}
		adj[f.Source] = append(adj[f.Source], f.Target)
	}

	// Input orders per process, to grade cycle severity.
	inOrders := make(map[psdf.ProcessID]map[int][]psdf.ProcessID)
	for _, f := range m.Flows() {
		if f.Target == psdf.SystemOutput {
			continue
		}
		if inOrders[f.Target] == nil {
			inOrders[f.Target] = make(map[int][]psdf.ProcessID)
		}
		inOrders[f.Target][f.Order] = append(inOrders[f.Target][f.Order], f.Source)
	}

	orders := make([]int, 0, len(byOrder))
	for t := range byOrder {
		orders = append(orders, t)
	}
	sort.Ints(orders)

	for _, t := range orders {
		for _, cycle := range stronglyConnected(byOrder[t]) {
			if len(cycle) < 2 {
				continue
			}
			members := make(map[psdf.ProcessID]bool, len(cycle))
			for _, p := range cycle {
				members[p] = true
			}
			// The cycle provably deadlocks when every member's entire
			// input set comes from inside the cycle at this order:
			// each member then needs at least one input package before
			// its first emission, and all of them wait on each other.
			closed := true
			for _, p := range cycle {
				for order, srcs := range inOrders[p] {
					for _, src := range srcs {
						if order != t || !members[src] {
							closed = false
						}
					}
				}
			}
			names := make([]string, len(cycle))
			for i, p := range cycle {
				names[i] = p.String()
			}
			sev, verdict := SeverityWarning,
				"packages arriving from outside the cycle may break the wait, but the stage can stall"
			if closed {
				sev, verdict = SeverityError,
					"every member's inputs originate inside the cycle, so the schedule deadlocks"
			}
			pass.Reportf(CodeStageCycle, sev, names[0],
				"flows of order %d form a dependency cycle (%s): %s",
				t, strings.Join(names, " -> "), verdict)
		}
	}
}

// stronglyConnected returns the strongly connected components of the
// adjacency map with two or more members, each sorted by process id,
// components ordered by their smallest member (Tarjan's algorithm,
// iterative to keep fuzzed inputs from exhausting the stack).
func stronglyConnected(adj map[psdf.ProcessID][]psdf.ProcessID) [][]psdf.ProcessID {
	nodes := make([]psdf.ProcessID, 0, len(adj))
	seen := make(map[psdf.ProcessID]bool)
	addNode := func(p psdf.ProcessID) {
		if !seen[p] {
			seen[p] = true
			nodes = append(nodes, p)
		}
	}
	for src, dsts := range adj {
		addNode(src)
		for _, d := range dsts {
			addNode(d)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	index := make(map[psdf.ProcessID]int, len(nodes))
	low := make(map[psdf.ProcessID]int, len(nodes))
	onStack := make(map[psdf.ProcessID]bool, len(nodes))
	var stack []psdf.ProcessID
	next := 0
	var sccs [][]psdf.ProcessID

	type frame struct {
		node psdf.ProcessID
		edge int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.node
			if fr.edge == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.edge < len(adj[v]) {
				w := adj[v][fr.edge]
				fr.edge++
				if _, ok := index[w]; !ok {
					work = append(work, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []psdf.ProcessID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
					sccs = append(sccs, comp)
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// checkLateInputs flags T-order contradictions: an input flow ordered
// strictly after every emission of its target delivers data that can
// influence nothing downstream.
func checkLateInputs(pass *Pass, m *psdf.Model) {
	lastOut := make(map[psdf.ProcessID]int)
	hasOut := make(map[psdf.ProcessID]bool)
	for _, f := range m.Flows() {
		if !hasOut[f.Source] || f.Order > lastOut[f.Source] {
			lastOut[f.Source] = f.Order
		}
		hasOut[f.Source] = true
	}
	for _, f := range m.Flows() {
		if f.Target == psdf.SystemOutput || !hasOut[f.Target] {
			continue
		}
		if f.Order > lastOut[f.Target] {
			pass.Reportf(CodeLateInput, SeverityWarning, f.Target.String(),
				"input flow %s (order %d) arrives after %s's last emission (order %d): the data can influence nothing downstream",
				f, f.Order, f.Target, lastOut[f.Target])
		}
	}
}

// checkFeedsFinal flags processes from which no flow path reaches a
// final node (a process with no outputs, or one emitting to the
// system output): their results are unobservable. The complement of
// the validator's InitialNode reachability check (SB009).
func checkFeedsFinal(pass *Pass, m *psdf.Model) {
	radj := make(map[psdf.ProcessID][]psdf.ProcessID)
	coReach := make(map[psdf.ProcessID]bool)
	var frontier []psdf.ProcessID
	mark := func(p psdf.ProcessID) {
		if !coReach[p] {
			coReach[p] = true
			frontier = append(frontier, p)
		}
	}
	for _, f := range m.Flows() {
		if f.Target == psdf.SystemOutput {
			mark(f.Source)
			continue
		}
		radj[f.Target] = append(radj[f.Target], f.Source)
	}
	for _, p := range m.Sinks() {
		mark(p)
	}
	for len(frontier) > 0 {
		p := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, q := range radj[p] {
			mark(q)
		}
	}
	for _, p := range m.Processes() {
		if !coReach[p] {
			pass.Reportf(CodeNoPathToFinal, SeverityWarning, p.String(),
				"no flow path from %s reaches a final node: its results are unobservable", p)
		}
	}
}
