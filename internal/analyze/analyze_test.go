package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/dsl"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func findAll(res *Result, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range res.Diagnostics {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestRegistryHasBuiltins(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	for _, want := range []string{"structural", "liveness", "bounds", "congestion"} {
		if !names[want] {
			t.Errorf("analyzer %s not registered", want)
		}
	}
	if len(PreflightAnalyzers()) != 2 {
		t.Errorf("preflight set = %d analyzers, want 2", len(PreflightAnalyzers()))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("structural", "nonesuch"); err == nil {
		t.Error("ByName accepted an unknown analyzer")
	}
	as, err := ByName("bounds")
	if err != nil || len(as) != 1 || as[0].Name != "bounds" {
		t.Errorf("ByName(bounds) = %v, %v", as, err)
	}
}

func TestCleanModelHasNoFindings(t *testing.T) {
	res := RunModels(apps.MP3Model(), apps.MP3Platform1(36), Options{})
	if res.HasErrors() {
		t.Fatalf("MP3 on one segment reported errors:\n%s", res)
	}
	if res.Bounds == nil {
		t.Fatal("bounds analyzer produced no figures")
	}
	if len(findAll(res, CodeBoundsInfo)) != 1 {
		t.Errorf("want exactly one SB201 info, got:\n%s", res)
	}
}

func TestStructuralFindingsCarryCodes(t *testing.T) {
	m := psdf.NewModel("broken")
	m.AddFlow(psdf.Flow{Source: 0, Target: 0, Items: 10, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: -3, Order: 1, Ticks: 5})
	res := RunModels(m, nil, Options{})
	if !res.HasErrors() {
		t.Fatal("broken model reported clean")
	}
	if len(findAll(res, psdf.CodeSelfLoop)) == 0 {
		t.Errorf("missing SB006 self-loop:\n%s", res)
	}
	if len(findAll(res, psdf.CodeBadItems)) == 0 {
		t.Errorf("missing SB003 bad items:\n%s", res)
	}
	for _, d := range res.Diagnostics {
		if d.Code == "" {
			t.Errorf("uncoded diagnostic %v", d)
		}
		if d.Analyzer == "" {
			t.Errorf("diagnostic without analyzer attribution %v", d)
		}
	}
}

func TestPlatformAnalyzersSkippedWithoutPlatform(t *testing.T) {
	res := RunModels(apps.MP3Model(), nil, Options{})
	skipped := strings.Join(res.Skipped, ",")
	if !strings.Contains(skipped, "bounds") || !strings.Contains(skipped, "congestion") {
		t.Errorf("Skipped = %q, want bounds and congestion", skipped)
	}
	if res.Bounds != nil {
		t.Error("bounds computed without a platform")
	}
}

func TestLivenessClosedCycleIsError(t *testing.T) {
	m := psdf.NewModel("closed-cycle")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 36, Order: 1, Ticks: 5})
	res := RunModels(m, nil, Options{})
	cycles := findAll(res, CodeStageCycle)
	if len(cycles) != 1 {
		t.Fatalf("want one SB101, got:\n%s", res)
	}
	if cycles[0].Severity != SeverityError {
		t.Errorf("closed cycle severity = %v, want error", cycles[0].Severity)
	}
	if !strings.Contains(cycles[0].Message, "P0 -> P1") {
		t.Errorf("cycle members missing from %q", cycles[0].Message)
	}
}

func TestLivenessEscapableCycleIsWarning(t *testing.T) {
	m := psdf.NewModel("escapable-cycle")
	m.AddFlow(psdf.Flow{Source: 2, Target: 0, Items: 36, Order: 0, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 36, Order: 1, Ticks: 5})
	res := RunModels(m, nil, Options{})
	cycles := findAll(res, CodeStageCycle)
	if len(cycles) != 1 {
		t.Fatalf("want one SB101, got:\n%s", res)
	}
	if cycles[0].Severity != SeverityWarning {
		t.Errorf("escapable cycle severity = %v, want warning", cycles[0].Severity)
	}
}

func TestLivenessLateInput(t *testing.T) {
	m := psdf.NewModel("late-input")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 5, Ticks: 5})
	res := RunModels(m, nil, Options{})
	late := findAll(res, CodeLateInput)
	if len(late) != 1 || late[0].Element != "P1" {
		t.Fatalf("want one SB102 on P1, got:\n%s", res)
	}
}

func TestLivenessNoPathToFinal(t *testing.T) {
	// P3 branches off the pipeline into a dead two-process loop that
	// never reaches the sink P2.
	m := psdf.NewModel("dead-branch")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 0, Target: 3, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 2, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 3, Target: 4, Items: 36, Order: 2, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 4, Target: 3, Items: 36, Order: 3, Ticks: 5})
	res := RunModels(m, nil, Options{})
	flagged := make(map[string]bool)
	for _, d := range findAll(res, CodeNoPathToFinal) {
		flagged[d.Element] = true
	}
	if !flagged["P3"] || !flagged["P4"] {
		t.Errorf("want SB103 on P3 and P4, got:\n%s", res)
	}
	if flagged["P0"] || flagged["P1"] || flagged["P2"] {
		t.Errorf("pipeline processes wrongly flagged:\n%s", res)
	}
}

func TestMP3ThreeSegmentCongestionWarning(t *testing.T) {
	res := RunModels(apps.MP3Model(), apps.MP3Platform3(apps.MP3PackageSize), Options{})
	if res.HasErrors() {
		t.Fatalf("MP3 3-seg reported errors:\n%s", res)
	}
	ws := findAll(res, CodeBUImbalance)
	if len(ws) != 1 {
		t.Fatalf("want one SB301, got:\n%s", res)
	}
	w := ws[0]
	if w.Severity != SeverityWarning || w.Element != "BU12" {
		t.Errorf("SB301 = %v, want warning on BU12", w)
	}
	// The paper's figure: 32 packages cross BU12, one crosses BU23.
	if !strings.Contains(w.Message, "BU12 carries 32 packages") ||
		!strings.Contains(w.Message, "BU23 carries 1") {
		t.Errorf("SB301 message lacks the 32-vs-1 figure: %q", w.Message)
	}
	if !strings.Contains(w.Message, "P3 (31)") {
		t.Errorf("SB301 does not name P3 as heaviest contributor: %q", w.Message)
	}
}

func TestMP3SingleSegmentQuiet(t *testing.T) {
	res := RunModels(apps.MP3Model(), apps.MP3Platform1(apps.MP3PackageSize), Options{})
	if len(findAll(res, CodeBUImbalance)) != 0 || len(findAll(res, CodeSegmentImbalance)) != 0 {
		t.Errorf("single-segment platform reported congestion:\n%s", res)
	}
}

func TestUnusedSegmentationInfo(t *testing.T) {
	m := psdf.NewModel("local")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 2, Target: 3, Items: 36, Order: 1, Ticks: 5})
	p := platform.New("split", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	p.AddSegment(100*platform.MHz, 2, 3)
	res := RunModels(m, p, Options{})
	if len(findAll(res, CodeUnusedSegmentation)) != 1 {
		t.Errorf("want SB303 for intra-only traffic, got:\n%s", res)
	}
}

func TestResultJSONRoundTrips(t *testing.T) {
	res := RunModels(apps.MP3Model(), apps.MP3Platform3(36), Options{})
	raw, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Version     int          `json:"version"`
		Model       string       `json:"model"`
		Platform    string       `json:"platform"`
		Diagnostics []Diagnostic `json:"diagnostics"`
		Bounds      *Bounds      `json:"bounds"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if decoded.Version != 1 || decoded.Model != "mp3-decoder" || decoded.Bounds == nil {
		t.Errorf("decoded = %+v", decoded)
	}
	if len(decoded.Diagnostics) != len(res.Diagnostics) {
		t.Errorf("diagnostics lost in JSON round trip")
	}
	if !strings.Contains(string(raw), `"severity": "warning"`) {
		t.Errorf("severity not rendered as a string:\n%s", raw)
	}
}

func TestDiagnosticsSortedBySeverity(t *testing.T) {
	m := psdf.NewModel("mixed")
	m.AddFlow(psdf.Flow{Source: 0, Target: 0, Items: 10, Order: 1, Ticks: 5}) // error SB006
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 36, Order: 1, Ticks: 5})
	res := RunModels(m, nil, Options{})
	if !sort.SliceIsSorted(res.Diagnostics, func(i, j int) bool {
		return res.Diagnostics[i].Severity < res.Diagnostics[j].Severity
	}) {
		t.Errorf("diagnostics not sorted most-severe first:\n%s", res)
	}
}

func TestFromErrorUnwrapsSchemaStyleErrors(t *testing.T) {
	m := psdf.NewModel("broken")
	m.AddFlow(psdf.Flow{Source: 0, Target: 0, Items: 10, Order: 1, Ticks: 5})
	err := m.Validate()
	if err == nil {
		t.Fatal("model unexpectedly valid")
	}
	wrapped := fmt.Errorf("schema: parsed PSDF model is invalid: %w", err)
	ds, ok := FromError(wrapped)
	if !ok || len(ds) == 0 {
		t.Fatalf("FromError failed on wrapped validation errors: %v", wrapped)
	}
	if ds[0].Code != psdf.CodeSelfLoop {
		t.Errorf("FromError code = %q, want SB006", ds[0].Code)
	}

	p := platform.New("empty", 0, 0)
	perr := p.Validate()
	pds, ok := FromError(perr)
	if !ok || len(pds) == 0 {
		t.Fatalf("FromError failed on constraint violations: %v", perr)
	}
	if _, ok := FromError(fmt.Errorf("plain")); ok {
		t.Error("FromError matched a plain error")
	}
}

func TestCodeTableIsSortedUniqueAndCoversEmissions(t *testing.T) {
	table := CodeTable()
	seen := make(map[string]bool)
	prev := ""
	for _, ci := range table {
		if ci.Code <= prev {
			t.Errorf("code table not strictly ascending at %s", ci.Code)
		}
		prev = ci.Code
		if seen[ci.Code] {
			t.Errorf("duplicate code %s", ci.Code)
		}
		seen[ci.Code] = true
	}

	// Drive the analyzers over deliberately broken inputs and verify
	// every emitted code is documented.
	var emitted []Diagnostic
	collect := func(res *Result) { emitted = append(emitted, res.Diagnostics...) }

	bad := psdf.NewModel("bad")
	bad.AddProcess(9)
	bad.AddFlow(psdf.Flow{Source: 0, Target: 0, Items: -1, Order: -1, Ticks: -1})
	bad.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 2, Ticks: 5})
	bad.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 2, Ticks: 5})
	bad.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 1, Ticks: 5})
	bad.AddFlow(psdf.Flow{Source: 3, Target: 4, Items: 36, Order: 3, Ticks: 5})
	bad.AddFlow(psdf.Flow{Source: 4, Target: 3, Items: 36, Order: 3, Ticks: 5})
	bad.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 36, Order: 9, Ticks: 5})
	collect(RunModels(bad, nil, Options{}))

	badPlat := platform.New("badplat", 0, -1)
	badPlat.HeaderTicks = -1
	badPlat.CAHopTicks = -1
	seg := badPlat.AddSegment(-1)
	seg.Index = 7
	collect(RunModels(apps.MP3Model(), badPlat, Options{}))

	collect(RunModels(apps.MP3Model(), apps.MP3Platform3(36), Options{}))
	collect(RunModels(apps.MP3Model(), apps.MP3Platform3(18), Options{})) // SB041

	for _, d := range emitted {
		if !seen[d.Code] {
			t.Errorf("emitted code %s (%s) missing from CodeTable", d.Code, d.Message)
		}
	}
}

func TestRunOnDSLDocument(t *testing.T) {
	src := `application demo
flow P0 -> P1 items=36 order=1 ticks=5
flow P1 -> out items=36 order=2 ticks=5
platform demo-plat
ca-clock 100MHz
package-size 36
segment 1 clock=100MHz processes=P0,P1
`
	doc, err := dsl.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(doc, Options{})
	if res.HasErrors() {
		t.Fatalf("demo document reported errors:\n%s", res)
	}
	if res.Model != "demo" || res.Platform != "demo-plat" {
		t.Errorf("header = %q on %q", res.Model, res.Platform)
	}
	if res.Bounds == nil {
		t.Error("no bounds for a platformed document")
	}
}
