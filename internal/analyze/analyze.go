// Package analyze implements segbus-vet's static model-analysis
// framework: a registry of analyzers — in the style of go/analysis —
// that inspect a (PSDF, PSM) model pair without running the emulator
// and report diagnostics with stable SB0xx codes.
//
// Four analyzer families ship with the package:
//
//   - structural: the dsl/psdf/platform well-formedness validators,
//     surfaced behind their stable codes (SB001–SB041);
//   - liveness: flow-dependency cycles within one schedule stage,
//     T-order contradictions, and processes that can never feed a
//     final node (SB101–SB103);
//   - bounds: static per-segment bus loads, CA circuit set-up load,
//     and a critical-path lower / full-serialization upper bound on
//     the execution time, proven against the emulator by property
//     test (SB201);
//   - congestion: border-unit traffic-imbalance and segment-load
//     lints reproducing the paper's conclusion about rebalancing the
//     BU12 hot spot, naming migration candidates (SB301–SB303).
//
// The framework is exposed on the command line as cmd/segbus-vet and
// as an optional pre-flight pass of internal/core's estimation entry
// points.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Severity classifies a diagnostic. Errors mark models the emulator
// would reject or that provably cannot complete; warnings mark risky
// but runnable constructions; infos report derived figures.
type Severity int

// Diagnostic severities, ordered most severe first so that sorting
// diagnostics lists errors before warnings before infos.
const (
	SeverityError Severity = iota
	SeverityWarning
	SeverityInfo
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	case SeverityInfo:
		return "info"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name, so consumers of the vet JSON
// can decode reports back into the package's types.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SeverityError
	case "warning":
		*s = SeverityWarning
	case "info":
		*s = SeverityInfo
	default:
		return fmt.Errorf("analyze: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Code     string   `json:"code"`     // stable SB0xx code
	Severity Severity `json:"severity"` // error, warning or info
	Analyzer string   `json:"analyzer"` // reporting analyzer name
	Element  string   `json:"element"`  // model element to highlight
	Message  string   `json:"message"`  // human-readable description

	// Trace is a minimal counterexample for reachability findings
	// (SB050): the action sequence driving the schedule into the
	// reported state, one action per line. Empty for other codes; the
	// one-line String rendering omits it (segbus-vet prints it behind
	// -why, and the JSON report carries it verbatim).
	Trace []string `json:"trace,omitempty"`
}

// String renders the diagnostic on one line:
// "warning SB301 BU12: crossing traffic imbalance ...".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s %s %s: %s", d.Severity, d.Code, d.Element, d.Message)
}

// Pass carries one analysis run's inputs to an analyzer and collects
// its findings. Model is always set; Platform may be nil for
// analyzers that do not require one; Doc is set when the input came
// from the DSL (carrying stereotype declarations).
type Pass struct {
	Model    *psdf.Model
	Platform *platform.Platform
	Doc      *dsl.Document

	analyzer string
	result   *Result
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.analyzer
	if d.Code == "" {
		d.Code = "SB000"
	}
	p.result.Diagnostics = append(p.result.Diagnostics, d)
}

// Reportf records one finding with a formatted message.
func (p *Pass) Reportf(code string, sev Severity, element, format string, args ...interface{}) {
	p.Report(Diagnostic{
		Code:     code,
		Severity: sev,
		Element:  element,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Analyzer is one registered analysis. Run inspects the pass inputs
// and reports diagnostics; it must not mutate the model or platform.
type Analyzer struct {
	// Name identifies the analyzer ("structural", "liveness", ...).
	Name string

	// Doc is a one-line description for -codes style listings.
	Doc string

	// NeedsPlatform marks analyzers that cannot run on a bare PSDF
	// model; they are skipped (and recorded in Result.Skipped) when
	// the input has no platform.
	NeedsPlatform bool

	// Run performs the analysis.
	Run func(*Pass)
}

// The built-in registry. Analyzers run in registration order, but
// diagnostics are sorted afterwards, so order only affects Skipped.
var registry []*Analyzer

// Register adds an analyzer to the registry. It panics on a duplicate
// name, mirroring go/analysis semantics of unique analyzer identity.
func Register(a *Analyzer) {
	for _, r := range registry {
		if r.Name == a.Name {
			panic("analyze: duplicate analyzer " + a.Name)
		}
	}
	registry = append(registry, a)
}

// Analyzers returns the registered analyzers in registration order.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	return out
}

// ByName resolves analyzer names to registered analyzers, preserving
// registration order and rejecting unknown names.
func ByName(names ...string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range registry {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("analyze: unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// PreflightAnalyzers returns the subset suitable as a cheap gate
// before estimation: the structural and liveness families, whose
// error-severity findings mark models the emulator would reject or
// deadlock on. The bounds and congestion families are advisory and
// excluded.
func PreflightAnalyzers() []*Analyzer {
	as, err := ByName("structural", "liveness")
	if err != nil {
		panic(err) // built-ins are always registered
	}
	return as
}

// Options tunes an analysis run.
type Options struct {
	// Analyzers selects a subset; nil runs every registered analyzer.
	Analyzers []*Analyzer
}

// Result aggregates one analysis run.
type Result struct {
	Model       string       `json:"model"`
	Platform    string       `json:"platform,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Skipped     []string     `json:"skipped,omitempty"` // analyzers skipped (no platform)
	Bounds      *Bounds      `json:"bounds,omitempty"`  // set by the bounds analyzer
}

// Counts returns the number of error, warning and info diagnostics.
func (r *Result) Counts() (errors, warnings, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case SeverityError:
			errors++
		case SeverityWarning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any diagnostic has error severity.
func (r *Result) HasErrors() bool {
	e, _, _ := r.Counts()
	return e > 0
}

// HasWarnings reports whether any diagnostic has warning severity.
func (r *Result) HasWarnings() bool {
	_, w, _ := r.Counts()
	return w > 0
}

// JSON renders the result as indented, machine-readable JSON with a
// format version for downstream tooling.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Version int `json:"version"`
		*Result
	}{Version: 1, Result: r}, "", "  ")
}

// String renders the full report: header, one line per diagnostic,
// the static-bounds block when available, and a severity tally.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s", r.Model)
	if r.Platform != "" {
		fmt.Fprintf(&b, " on %s", r.Platform)
	}
	b.WriteByte('\n')
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&b, "%s\n", d)
	}
	for _, name := range r.Skipped {
		fmt.Fprintf(&b, "note: analyzer %s skipped (requires a platform)\n", name)
	}
	if r.Bounds != nil {
		b.WriteString(r.Bounds.String())
	}
	e, w, i := r.Counts()
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d info(s)\n", e, w, i)
	return b.String()
}

// Run analyzes a DSL document: the parsed model, its optional platform
// and its stereotype declarations.
func Run(doc *dsl.Document, opts Options) *Result {
	res := &Result{Model: doc.Model.Name()}
	if doc.Platform != nil {
		res.Platform = doc.Platform.Name
	}
	as := opts.Analyzers
	if as == nil {
		as = registry
	}
	for _, a := range as {
		if a.NeedsPlatform && doc.Platform == nil {
			res.Skipped = append(res.Skipped, a.Name)
			continue
		}
		pass := &Pass{
			Model:    doc.Model,
			Platform: doc.Platform,
			Doc:      doc,
			analyzer: a.Name,
			result:   res,
		}
		a.Run(pass)
	}
	sortDiagnostics(res.Diagnostics)
	return res
}

// RunModels analyzes a bare (model, platform) pair; plat may be nil.
func RunModels(m *psdf.Model, plat *platform.Platform, opts Options) *Result {
	return Run(&dsl.Document{Model: m, Platform: plat}, opts)
}

// sortDiagnostics orders findings for deterministic output: most
// severe first, then by code, element and message.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Element != b.Element {
			return a.Element < b.Element
		}
		return a.Message < b.Message
	})
}

// FromError extracts coded diagnostics from validation errors raised
// by the psdf, platform or dsl layers — including wrapped ones, as
// returned by the XML schema importers. It reports ok=false when err
// carries no recognised aggregate, in which case the caller should
// fall back to plain error printing.
func FromError(err error) (ds []Diagnostic, ok bool) {
	for e := err; e != nil; e = unwrap(e) {
		switch v := e.(type) {
		case psdf.ValidationErrors:
			for _, ve := range v {
				el := "model"
				if ve.Flow != nil {
					el = ve.Flow.String()
				}
				ds = append(ds, Diagnostic{
					Code: ve.Code, Severity: SeverityError, Analyzer: "structural",
					Element: el, Message: ve.Message,
				})
			}
			return ds, true
		case platform.ConstraintViolations:
			for _, cv := range v {
				ds = append(ds, Diagnostic{
					Code: cv.Code, Severity: SeverityError, Analyzer: "structural",
					Element: cv.Element, Message: cv.Message,
				})
			}
			return ds, true
		case *emulator.DeadlockError:
			el := "model"
			if len(v.Blocked) > 0 {
				el = v.Blocked[0].Proc.String()
			}
			ds = append(ds, Diagnostic{
				Code: CodeDeadlockState, Severity: SeverityError, Analyzer: "liveness",
				Element: el, Message: strings.TrimPrefix(v.Error(), "emulator: "),
			})
			return ds, true
		}
	}
	return nil, false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
