package analyze

import (
	"strings"
	"testing"

	"segbus/internal/dsl"
)

// FuzzAnalyze feeds arbitrary text through the DSL parser and, for
// every document that parses, runs the full analyzer registry plus
// both renderings. The property: analysis never panics, whatever the
// model looks like — broken platforms, cycles, isolated processes.
func FuzzAnalyze(f *testing.F) {
	f.Add("application empty\n")
	// A cyclic same-stage flow pair (provable deadlock, SB101).
	f.Add(`application cyclic
flow P0 -> P1 items=36 order=1 ticks=5
flow P1 -> P0 items=36 order=1 ticks=5
`)
	// An isolated process next to a working pipeline (SB008).
	f.Add(`application isolated
process P9
flow P0 -> P1 items=36 order=1 ticks=5
flow P1 -> out items=36 order=2 ticks=5
`)
	// A platformed document exercising bounds and congestion.
	f.Add(`application demo
flow P0 -> P1 items=144 order=1 ticks=50
flow P1 -> P2 items=144 order=2 ticks=50
platform demo-plat
ca-clock 100MHz
package-size 36
segment 1 clock=90MHz processes=P0,P1
segment 2 clock=95MHz processes=P2
`)
	// Degenerate platform numbers must be reported, not crash.
	f.Add(`application broken
flow P0 -> P1 items=1 order=0 ticks=0
platform broken-plat
ca-clock 0Hz
package-size -3
segment 1 clock=0Hz processes=P0
`)

	f.Fuzz(func(t *testing.T, src string) {
		doc, err := dsl.Parse(strings.NewReader(src))
		if err != nil {
			return // only parsed documents are analyzed
		}
		res := Run(doc, Options{})
		if res == nil {
			t.Fatal("Run returned nil result")
		}
		_ = res.String()
		if _, err := res.JSON(); err != nil {
			t.Fatalf("JSON rendering failed: %v", err)
		}
	})
}
