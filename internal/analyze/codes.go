package analyze

// CodeInfo documents one stable diagnostic code for -codes listings
// and the DESIGN.md table.
type CodeInfo struct {
	Code     string
	Severity Severity
	Summary  string
}

// CodeTable returns every stable diagnostic code the tool chain can
// emit, in code order. Codes are append-only: a code is never reused
// or renumbered once released, so CI suppressions stay valid.
func CodeTable() []CodeInfo {
	return []CodeInfo{
		// Structural: PSDF well-formedness (internal/psdf).
		{"SB001", SeverityError, "model has no processes"},
		{"SB002", SeverityError, "model has no flows"},
		{"SB003", SeverityError, "flow carries a non-positive data item count"},
		{"SB004", SeverityError, "flow has a negative ordering number"},
		{"SB005", SeverityError, "flow has a negative per-package tick count"},
		{"SB006", SeverityError, "flow is a self-loop"},
		{"SB007", SeverityError, "duplicate flow (same source, target and ordering number)"},
		{"SB008", SeverityError, "process is isolated (no incoming or outgoing flow)"},
		{"SB009", SeverityError, "process is not reachable from any initial node"},
		{"SB010", SeverityError, "flow is ordered before every flow feeding its source"},
		// Structural: platform constraints (internal/platform).
		{"SB020", SeverityError, "platform has no segments"},
		{"SB021", SeverityError, "non-positive package size"},
		{"SB022", SeverityError, "non-positive CA clock frequency"},
		{"SB023", SeverityError, "negative header tick count"},
		{"SB024", SeverityError, "negative CA hop tick count"},
		{"SB025", SeverityError, "segment index out of sequence"},
		{"SB026", SeverityError, "non-positive segment clock frequency"},
		{"SB027", SeverityError, "segment hosts no functional unit"},
		{"SB028", SeverityError, "process hosted by more than one segment"},
		{"SB029", SeverityError, "application process not mapped to any segment"},
		{"SB030", SeverityError, "platform hosts a process that is not part of the application"},
		{"SB031", SeverityError, "flow source's FU has no master interface"},
		{"SB032", SeverityError, "flow target's FU has no slave interface"},
		// Structural: DSL-level consistency (internal/dsl).
		{"SB040", SeverityError, "declared stereotype contradicts the flow structure"},
		{"SB041", SeverityWarning, "platform package size differs from the model's nominal"},
		// Exact reachability (communicating-automata product).
		{"SB050", SeverityError, "schedule reaches a deadlock state (minimal counterexample attached; see -why SB050)"},
		{"SB051", SeverityError, "process can never fire: its first emission's gate is unsatisfiable in every run"},
		{"SB052", SeverityInfo, "exact reachability analysis exhausted its state budget; verdict inconclusive, heuristics apply"},
		// Liveness.
		{"SB101", SeverityError, "flows of one ordering number form a dependency cycle (error when it provably deadlocks, warning otherwise)"},
		{"SB102", SeverityWarning, "input flow arrives after its target's last emission"},
		{"SB103", SeverityWarning, "no flow path from the process reaches a final node"},
		// Static performance bounds.
		{"SB201", SeverityInfo, "static execution-time bounds summary"},
		// Congestion / placement.
		{"SB301", SeverityWarning, "border-unit crossing-traffic imbalance"},
		{"SB302", SeverityWarning, "segment bus-load imbalance"},
		{"SB303", SeverityInfo, "multi-segment platform with no inter-segment traffic"},
	}
}
