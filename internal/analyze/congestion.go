package analyze

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/psdf"
)

// Stable diagnostic codes of the congestion analyzer.
const (
	// CodeBUImbalance flags a border unit carrying disproportionate
	// crossing traffic compared to the quietest one, reproducing the
	// paper's conclusion that the allocation around the hot BU should
	// be rebalanced (warning).
	CodeBUImbalance = "SB301"

	// CodeSegmentImbalance flags a segment bus whose static load
	// dwarfs the quietest segment's (warning).
	CodeSegmentImbalance = "SB302"

	// CodeUnusedSegmentation notes a multi-segment platform with no
	// inter-segment traffic at all: the segmentation buys nothing for
	// this application (info).
	CodeUnusedSegmentation = "SB303"
)

// Imbalance thresholds: a hot element must carry at least minHotLoad
// units and hotColdRatio times the quietest element's load (or any
// load when the quietest is fully idle) before the lint fires, so
// small or naturally skewed systems stay quiet.
const (
	minHotCrossings = 8
	hotColdRatio    = 4
)

// The congestion analyzer statically reproduces the placement
// discussion of the paper's conclusion: the 3-segment MP3 allocation
// funnels 32 crossing packages through BU12 against a single package
// through BU23, so migrating border processes or splitting their
// traffic would level the load. It needs only the static figures of
// ComputeBounds, not an emulation run (package stats performs the
// dynamic, post-run counterpart).
func init() {
	Register(&Analyzer{
		Name:          "congestion",
		Doc:           "border-unit and segment load imbalance, placement hints",
		NeedsPlatform: true,
		Run:           runCongestion,
	})
}

func runCongestion(pass *Pass) {
	b, err := ComputeBounds(pass.Model, pass.Platform)
	if err != nil {
		return // structural findings cover invalid inputs
	}
	checkBUImbalance(pass, b)
	checkSegmentImbalance(pass, b)
	checkUnusedSegmentation(pass, b)
}

func checkBUImbalance(pass *Pass, b *Bounds) {
	if len(b.Crossings) < 2 {
		return // a single BU has nothing to be imbalanced against
	}
	hot, cold := b.Crossings[0], b.Crossings[0]
	for _, c := range b.Crossings[1:] {
		if c.Peak() > hot.Peak() {
			hot = c
		}
		if c.Peak() < cold.Peak() {
			cold = c
		}
	}
	if hot.Peak() < minHotCrossings {
		return
	}
	if cold.Peak() > 0 && hot.Peak() < hotColdRatio*cold.Peak() {
		return
	}
	contributors := hotContributors(pass, hot.Name)
	msg := fmt.Sprintf(
		"crossing traffic imbalance: %s carries %d packages (%d rightward, %d leftward) while %s carries %d",
		hot.Name, hot.Peak(), hot.Rightward, hot.Leftward, cold.Name, cold.Peak())
	if len(contributors) > 0 {
		msg += "; heaviest contributors: " + strings.Join(contributors, ", ") +
			" — candidates for migration or granularity rebalancing"
	}
	pass.Reportf(CodeBUImbalance, SeverityWarning, hot.Name, "%s", msg)
}

// hotContributors names the processes responsible for the most
// crossing packages through the named border unit, heaviest first
// ("P3 (31)"), capped at three.
func hotContributors(pass *Pass, buName string) []string {
	m, plat := pass.Model, pass.Platform
	s := plat.PackageSize
	contrib := make(map[psdf.ProcessID]int)
	for _, f := range m.Flows() {
		srcSeg := plat.SegmentOf(f.Source)
		dstSeg := srcSeg
		if f.Target != psdf.SystemOutput {
			dstSeg = plat.SegmentOf(f.Target)
		}
		route, _ := plat.Route(srcSeg, dstSeg)
		for _, bu := range route {
			if bu.Name() != buName {
				continue
			}
			pk := f.Packages(s)
			contrib[f.Source] += pk
			if f.Target != psdf.SystemOutput {
				contrib[f.Target] += pk
			}
		}
	}
	procs := make([]psdf.ProcessID, 0, len(contrib))
	for p := range contrib {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		if contrib[procs[i]] != contrib[procs[j]] {
			return contrib[procs[i]] > contrib[procs[j]]
		}
		return procs[i] < procs[j]
	})
	if len(procs) > 3 {
		procs = procs[:3]
	}
	out := make([]string, len(procs))
	for i, p := range procs {
		out[i] = fmt.Sprintf("%s (%d)", p, contrib[p])
	}
	return out
}

func checkSegmentImbalance(pass *Pass, b *Bounds) {
	if len(b.Segments) < 2 {
		return
	}
	hot, cold := b.Segments[0], b.Segments[0]
	for _, s := range b.Segments[1:] {
		if s.BusyPs > hot.BusyPs {
			hot = s
		}
		if s.BusyPs < cold.BusyPs {
			cold = s
		}
	}
	if hot.BusyPs == 0 || hot.BusyPs < hotColdRatio*cold.BusyPs {
		return
	}
	pass.Reportf(CodeSegmentImbalance, SeverityWarning, fmt.Sprintf("Segment %d", hot.Segment),
		"static bus load imbalance: Segment %d is busy %d ps while Segment %d is busy %d ps — the allocation leaves most of the platform idle",
		hot.Segment, hot.BusyPs, cold.Segment, cold.BusyPs)
}

func checkUnusedSegmentation(pass *Pass, b *Bounds) {
	if len(pass.Platform.Segments) < 2 {
		return
	}
	for _, c := range b.Crossings {
		if c.Rightward > 0 || c.Leftward > 0 {
			return
		}
	}
	pass.Reportf(CodeUnusedSegmentation, SeverityInfo, "CA",
		"no inter-segment traffic: every flow stays inside its segment, the %d-segment partition is unused",
		len(pass.Platform.Segments))
}
