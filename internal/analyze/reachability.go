package analyze

import (
	"errors"
	"fmt"
	"strings"

	"segbus/internal/automata"
)

// Stable diagnostic codes of the exact reachability check.
const (
	// CodeDeadlockState flags a model whose schedule reaches a state
	// where no process can fire while packages remain undelivered,
	// proven by exhaustive exploration of the communicating-automata
	// product (error). The diagnostic carries a minimal counterexample
	// trace, printable with segbus-vet -why SB050.
	CodeDeadlockState = "SB050"

	// CodeNeverFires flags a process whose first emission's firing
	// gate is unsatisfiable in every run of the schedule: the process
	// can never fire (error). Reported alongside SB050 for each
	// permanently starved process.
	CodeNeverFires = "SB051"

	// CodeBudgetExhausted reports that the exact reachability
	// exploration ran out of its state budget before reaching a
	// verdict (info). The heuristic cycle analysis (SB101) remains the
	// authority for such models.
	CodeBudgetExhausted = "SB052"
)

// checkExactReachability compiles the model and platform into the
// communicating-automata product (internal/automata) and decides
// deadlock-versus-termination exactly. It complements the SB101
// heuristic: cycles the heuristic can only grade as suspicious are
// either proven to deadlock here (SB050/SB051, with a counterexample)
// or exonerated by the Terminates verdict. Models the validators
// reject are skipped silently — the structural analyzer already owns
// those findings — and a budget-exhausted exploration degrades to an
// SB052 note, leaving the heuristics in charge.
func checkExactReachability(pass *Pass) {
	sys, err := automata.Compile(pass.Model, pass.Platform)
	if err != nil {
		if errors.Is(err, automata.ErrTooLarge) {
			pass.Reportf(CodeBudgetExhausted, SeverityInfo, "model",
				"exact reachability analysis skipped: %v", err)
		}
		return
	}
	res := sys.Check(automata.Options{})
	switch res.Verdict {
	case automata.Inconclusive:
		pass.Reportf(CodeBudgetExhausted, SeverityInfo, "model",
			"exact reachability analysis inconclusive: state budget (%d) exhausted after %d state(s); heuristic cycle analysis applies",
			res.Budget, res.States)
	case automata.Deadlocks:
		pass.Report(Diagnostic{
			Code:     CodeDeadlockState,
			Severity: SeverityError,
			Element:  deadlockElement(res),
			Message:  deadlockMessage(res),
			Trace:    res.TraceStrings(),
		})
		for _, nf := range res.NeverFired {
			pass.Reportf(CodeNeverFires, SeverityError, nf.Proc.String(),
				"%s can never fire: package %d of %s needs %d input package(s) before emission, but at most %d ever arrive",
				nf.Proc, nf.Pkg, nf.Flow, nf.Need, nf.Have)
		}
	}
}

// deadlockElement picks the model element an SB050 finding highlights:
// the first blocked process, or the whole model if none was singled
// out.
func deadlockElement(res *automata.Result) string {
	if len(res.Blocked) > 0 {
		return res.Blocked[0].Proc.String()
	}
	return "model"
}

// deadlockMessage renders the SB050 one-liner, mirroring the
// emulator's deadlock report so vet and emulation diagnose alike.
func deadlockMessage(res *automata.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule reaches a deadlock state: stuck at stage %d (order %d) with %d package(s) undelivered",
		res.StuckStage, res.StuckOrder, res.Undelivered)
	for _, bl := range res.Blocked {
		fmt.Fprintf(&b, "; %s blocked (needs %d input packages, has %d)", bl.Proc, bl.Need, bl.Have)
	}
	kind := "counterexample"
	if res.Minimal {
		kind = "minimal counterexample"
	}
	fmt.Fprintf(&b, "; %s of %d action(s) attached", kind, len(res.Trace))
	return b.String()
}
