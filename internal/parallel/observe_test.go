package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitObservedExactlyOncePerAdmission hammers a small pool from
// many goroutines and checks the admission observer fires exactly
// once per admitted submission: fires == successful Submits, and shed
// (queue-full) submissions contribute nothing.
func TestSubmitObservedExactlyOncePerAdmission(t *testing.T) {
	p := NewPool(2, 2)
	var admitted, shed, fires, ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			perCall := int32(0)
			err := p.SubmitObserved(context.Background(), func(wait time.Duration) {
				if atomic.AddInt32(&perCall, 1) != 1 {
					t.Error("observer fired twice for one submission")
				}
				if wait < 0 {
					t.Errorf("negative queue wait %v", wait)
				}
				fires.Add(1)
			}, func() {
				ran.Add(1)
				time.Sleep(200 * time.Microsecond)
			})
			switch err {
			case nil:
				admitted.Add(1)
				if atomic.LoadInt32(&perCall) != 1 {
					t.Error("admitted submission without an observer fire")
				}
			case ErrQueueFull:
				shed.Add(1)
				if atomic.LoadInt32(&perCall) != 0 {
					t.Error("shed submission fired the observer")
				}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if fires.Load() != admitted.Load() {
		t.Fatalf("%d observer fires for %d admitted submissions", fires.Load(), admitted.Load())
	}
	if ran.Load() != admitted.Load() {
		t.Fatalf("%d fn runs for %d admitted submissions", ran.Load(), admitted.Load())
	}
	if admitted.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("degenerate schedule: %d admitted, %d shed — the test needs both", admitted.Load(), shed.Load())
	}
}

// TestSubmitObservedCancelledNeverFires parks the pool's slots and
// cancels a queued submission: the observer must not fire, matching
// the fn-never-ran contract.
func TestSubmitObservedCancelledNeverFires(t *testing.T) {
	p := NewPool(1, 4)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(nil, func() { close(started); <-block })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- p.SubmitObserved(ctx, func(time.Duration) { fired.Add(1) }, func() {
			t.Error("fn ran for a cancelled submission")
		})
	}()
	time.Sleep(5 * time.Millisecond) // let it park in the slot wait
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled submission reported success")
	}
	if fired.Load() != 0 {
		t.Fatalf("observer fired %d times for a cancelled submission", fired.Load())
	}
	close(block)

	// Pre-cancelled: rejected before any stage, observer silent.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if err := p.SubmitObserved(pre, func(time.Duration) { fired.Add(1) }, func() {}); err == nil {
		t.Fatal("pre-cancelled submission reported success")
	}
	if fired.Load() != 0 {
		t.Fatal("observer fired for a pre-cancelled submission")
	}
}

// TestSubmitObservedMeasuresQueueWait holds the only slot for a known
// time and checks the observed wait covers it.
func TestSubmitObservedMeasuresQueueWait(t *testing.T) {
	p := NewPool(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(nil, func() { close(started); <-block })
	<-started

	const hold = 20 * time.Millisecond
	var wait atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- p.SubmitObserved(nil, func(d time.Duration) { wait.Store(int64(d)) }, func() {})
	}()
	time.Sleep(hold)
	close(block)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(wait.Load()); got < hold/2 {
		t.Fatalf("observed queue wait %v, want at least ~%v", got, hold)
	}
}
