package parallel

import (
	"context"
	"fmt"
	"runtime"

	"segbus/internal/emulator/pool"
)

// RunPooled executes the jobs like Run, but on the work-stealing
// scheduler (StealRun) with every emulation checked out of a machine
// pool — the combination a design-space batch wants: stragglers
// rebalance instead of serialising the tail, and candidates sharing a
// platform shape reuse warm arenas instead of constructing machines.
//
// machines may be nil, in which case a private pool sized to the
// worker count is used for the call. Results are identical to Run's
// on the same jobs (order preserved, per-job errors, panic recovery);
// only the schedule and the construction cost differ.
func RunPooled(jobs []Job, opts Options, steal StealOptions, machines *pool.Pool) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if machines == nil {
		w := steal.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		machines = pool.New(pool.Options{PerKey: w})
	}
	StealRun(len(jobs), steal, func(i int) {
		results[i] = runOnePooled(i, jobs[i], opts, machines)
		if opts.Progress != nil {
			opts.Progress(results[i])
		}
	})
	return results
}

// runOnePooled mirrors runOne on a pooled machine. A panicking run
// does not return its machine — Reset is total, but a machine whose
// run tore a hole in the stack is not worth salvaging.
func runOnePooled(i int, j Job, opts Options, machines *pool.Pool) (r Result) {
	r = Result{Index: i, Label: j.Label}
	if opts.Stop != nil {
		select {
		case <-opts.Stop:
			r.Err = ErrStopped
			return r
		default:
		}
	}
	if opts.Context != nil {
		select {
		case <-opts.Context.Done():
			r.Err = context.Cause(opts.Context)
			return r
		default:
		}
	}
	defer func() {
		if p := recover(); p != nil {
			r.Err = fmt.Errorf("parallel: job %q panicked: %v", j.Label, p)
			r.Report = nil
		}
	}()
	key := pool.ShapeKey(j.Model, j.Platform)
	mc, _ := machines.Get(key)
	r.Report, r.Err = mc.Run(j.Model, j.Platform, j.Config)
	machines.Put(key, mc)
	return r
}
