// Package parallel runs many emulations concurrently.
//
// The paper's Java emulator used one thread per platform element to
// mimic hardware concurrency inside a single run. This Go
// implementation makes the opposite trade: one emulation run is a
// deterministic sequential discrete-event simulation (bit-identical
// results on every run — something the thread-pool design could not
// guarantee), and the hardware-scale concurrency budget is spent where
// the estimation technique profits from it: evaluating many candidate
// platform configurations at once during design-space exploration.
//
// The worker pool preserves job order in its results regardless of
// completion order, keeps going after individual job failures (each
// result carries its own error), and honours context-free cancellation
// through an explicit Stop channel so a caller can abandon a sweep
// early (e.g. once a good-enough configuration is found).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Job is one emulation to run: an application model, a platform
// configuration and the emulator tuning. Label identifies the job in
// results and progress callbacks.
type Job struct {
	Label    string
	Model    *psdf.Model
	Platform *platform.Platform
	Config   emulator.Config
}

// Result pairs a job with its report or error. Index is the job's
// position in the submitted slice.
type Result struct {
	Index  int
	Label  string
	Report *emulator.Report
	Err    error
}

// Options tunes a pool run.
type Options struct {
	// Workers is the number of concurrent emulations; zero selects
	// GOMAXPROCS.
	Workers int

	// Progress, when non-nil, is invoked after each completed job
	// (from worker goroutines; the callback must be safe for
	// concurrent use).
	Progress func(Result)

	// Stop, when non-nil and closed, prevents un-started jobs from
	// running; their results carry ErrStopped.
	Stop <-chan struct{}

	// Context, when non-nil, cancels the run the same way Stop does,
	// but with the caller's cancellation cause: jobs not yet started
	// when the context is done are skipped and their results carry
	// context.Cause. A worker slot occupied by a cancelled batch is
	// therefore freed as soon as its current job finishes instead of
	// grinding through the remaining queue.
	Context context.Context
}

// ErrStopped marks jobs skipped because the pool was stopped early.
var ErrStopped = fmt.Errorf("parallel: pool stopped before the job ran")

// Run executes the jobs on a worker pool and returns one result per
// job, in submission order. Individual failures do not abort the run.
func Run(jobs []Job, opts Options) []Result {
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(i, jobs[i], opts.Stop, opts.Context)
				if opts.Progress != nil {
					opts.Progress(results[i])
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func runOne(i int, j Job, stop <-chan struct{}, ctx context.Context) (r Result) {
	r = Result{Index: i, Label: j.Label}
	if stop != nil {
		select {
		case <-stop:
			r.Err = ErrStopped
			return r
		default:
		}
	}
	if ctx != nil {
		select {
		case <-ctx.Done():
			r.Err = context.Cause(ctx)
			return r
		default:
		}
	}
	// The named result lets the recovery overwrite what the panicking
	// call left behind.
	defer func() {
		if p := recover(); p != nil {
			r.Err = fmt.Errorf("parallel: job %q panicked: %v", j.Label, p)
			r.Report = nil
		}
	}()
	r.Report, r.Err = emulator.Run(j.Model, j.Platform, j.Config)
	return r
}

// SweepPackageSizes builds one job per package size for the same
// model and base platform (the platform is cloned per job with the
// package size substituted).
func SweepPackageSizes(label string, m *psdf.Model, base *platform.Platform, sizes []int, cfg emulator.Config) []Job {
	jobs := make([]Job, 0, len(sizes))
	for _, s := range sizes {
		p := base.Clone()
		p.PackageSize = s
		jobs = append(jobs, Job{
			Label:    fmt.Sprintf("%s/s=%d", label, s),
			Model:    m,
			Platform: p,
			Config:   cfg,
		})
	}
	return jobs
}

// SweepPlatforms builds one job per candidate platform.
func SweepPlatforms(m *psdf.Model, candidates []*platform.Platform, cfg emulator.Config) []Job {
	jobs := make([]Job, 0, len(candidates))
	for _, p := range candidates {
		jobs = append(jobs, Job{Label: p.Name, Model: m, Platform: p, Config: cfg})
	}
	return jobs
}
