package parallel

import (
	"runtime"
	"testing"
)

// BenchmarkPoolSerial is the single-worker baseline for the sweep.
func BenchmarkPoolSerial(b *testing.B) {
	js := jobsBench()
	for i := 0; i < b.N; i++ {
		for _, r := range Run(js, Options{Workers: 1}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkPoolParallel uses every core; the ns/op ratio against the
// serial bench is the exploration speed-up.
func BenchmarkPoolParallel(b *testing.B) {
	js := jobsBench()
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	for i := 0; i < b.N; i++ {
		for _, r := range Run(js, Options{}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func jobsBench() []Job { return jobs(16) }
