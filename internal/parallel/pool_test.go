package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmissions(t *testing.T) {
	p := NewPool(4, 4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Saturation rejections are legal here; count runs only.
			if err := p.Submit(context.Background(), func() { ran.Add(1) }); err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Fatal("no submission ran")
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after quiesce = %d", got)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 0) // one slot, no queue
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Submit = %v, want ErrQueueFull", err)
	}
	close(block)
}

// TestPoolCancelledWaiterFreesSlot is the regression test for the
// latent bug this PR fixes: a caller that abandons its request while
// queued must release its position so the next request can run.
func TestPoolCancelledWaiterFreesSlot(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started

	// Admitted to the queue, then abandoned before a slot freed up.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Submit(ctx, func() { t.Error("cancelled submission ran") })
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Submit = %v, want context.Canceled", err)
	}

	// The abandoned waiter's queue position must be free again: with
	// the worker still busy, a fresh submission must be admitted (and
	// run once the worker frees up) rather than rejected.
	ran := make(chan struct{})
	errc2 := make(chan error, 1)
	go func() {
		errc2 <- p.Submit(context.Background(), func() { close(ran) })
	}()
	// Give the fresh submission time to fail fast if the slot leaked.
	select {
	case err := <-errc2:
		t.Fatalf("fresh submission rejected after cancellation: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-errc2; err != nil {
		t.Fatalf("fresh submission after cancellation: %v", err)
	}
	<-ran
}

func TestPoolCloseRejectsAndDrains(t *testing.T) {
	p := NewPool(2, 2)
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			done <- p.Submit(context.Background(), func() {
				started <- struct{}{}
				<-block
			})
		}()
	}
	<-started
	<-started
	p.Close()
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if p.Drain(ctx) {
		t.Fatal("Drain reported success with work still in flight")
	}
	cancel()

	close(block)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("in-flight submission failed: %v", err)
		}
	}
	if !p.Drain(context.Background()) {
		t.Fatal("Drain failed on an idle closed pool")
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, -1)
	if err := p.Submit(context.Background(), func() {}); err != nil {
		t.Fatal(err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(jobs(5), Options{Workers: 2, Context: ctx})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d ran despite cancelled context: %v", i, r.Err)
		}
	}
}

func TestRunContextMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	js := jobs(8)
	var cancelled atomic.Bool
	results := Run(js, Options{
		Workers: 1,
		Context: ctx,
		Progress: func(r Result) {
			// Cancel after the first completed job; with one worker the
			// remaining queue must be skipped.
			if !cancelled.Swap(true) {
				cancel()
			}
		},
	})
	var ran, skipped int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		} else if r.Err == nil {
			ran++
		}
	}
	if ran == 0 || skipped == 0 {
		t.Fatalf("ran=%d skipped=%d; want both non-zero", ran, skipped)
	}
}
