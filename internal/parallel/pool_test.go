package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmissions(t *testing.T) {
	p := NewPool(4, 4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Saturation rejections are legal here; count runs only.
			if err := p.Submit(context.Background(), func() { ran.Add(1) }); err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Fatal("no submission ran")
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after quiesce = %d", got)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 0) // one slot, no queue
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Submit = %v, want ErrQueueFull", err)
	}
	close(block)
}

// TestPoolCancelledWaiterFreesSlot is the regression test for the
// latent bug this PR fixes: a caller that abandons its request while
// queued must release its position so the next request can run.
func TestPoolCancelledWaiterFreesSlot(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func() {
		close(started)
		<-block
	})
	<-started

	// Admitted to the queue, then abandoned before a slot freed up.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Submit(ctx, func() { t.Error("cancelled submission ran") })
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Submit = %v, want context.Canceled", err)
	}

	// The abandoned waiter's queue position must be free again: with
	// the worker still busy, a fresh submission must be admitted (and
	// run once the worker frees up) rather than rejected.
	ran := make(chan struct{})
	errc2 := make(chan error, 1)
	go func() {
		errc2 <- p.Submit(context.Background(), func() { close(ran) })
	}()
	// Give the fresh submission time to fail fast if the slot leaked.
	select {
	case err := <-errc2:
		t.Fatalf("fresh submission rejected after cancellation: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-errc2; err != nil {
		t.Fatalf("fresh submission after cancellation: %v", err)
	}
	<-ran
}

func TestPoolCloseRejectsAndDrains(t *testing.T) {
	p := NewPool(2, 2)
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			done <- p.Submit(context.Background(), func() {
				started <- struct{}{}
				<-block
			})
		}()
	}
	<-started
	<-started
	p.Close()
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	if p.Drain(ctx) {
		t.Fatal("Drain reported success with work still in flight")
	}
	cancel()

	close(block)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("in-flight submission failed: %v", err)
		}
	}
	if !p.Drain(context.Background()) {
		t.Fatal("Drain failed on an idle closed pool")
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, -1)
	if err := p.Submit(context.Background(), func() {}); err != nil {
		t.Fatal(err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(jobs(5), Options{Workers: 2, Context: ctx})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d ran despite cancelled context: %v", i, r.Err)
		}
	}
}

func TestRunContextMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	js := jobs(8)
	var cancelled atomic.Bool
	results := Run(js, Options{
		Workers: 1,
		Context: ctx,
		Progress: func(r Result) {
			// Cancel after the first completed job; with one worker the
			// remaining queue must be skipped.
			if !cancelled.Swap(true) {
				cancel()
			}
		},
	})
	var ran, skipped int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		} else if r.Err == nil {
			ran++
		}
	}
	if ran == 0 || skipped == 0 {
		t.Fatalf("ran=%d skipped=%d; want both non-zero", ran, skipped)
	}
}

// TestPoolBatchFanOutSaturation is the batch fan-out regression: a
// concurrent burst of exactly workers+queue blocking submissions must
// all be admitted (no admission token lost to a racing rejection),
// one more must shed with ErrQueueFull without disturbing its
// siblings, and after the burst drains the pool's full capacity is
// back — no token leaked, none double-released.
func TestPoolBatchFanOutSaturation(t *testing.T) {
	const workers, queue = 2, 3
	p := NewPool(workers, queue)
	block := make(chan struct{})
	running := make(chan struct{}, workers)
	admitted := make(chan error, workers+queue)
	for i := 0; i < workers+queue; i++ {
		go func() {
			admitted <- p.Submit(context.Background(), func() {
				running <- struct{}{}
				<-block
			})
		}()
	}
	// The burst fills every slot and every queue position.
	for i := 0; i < workers; i++ {
		<-running
	}
	// Wait until the queued three hold their admission tokens too —
	// probing with Submit before then could claim the straggler's
	// token and hang on the slot stage instead of shedding.
	deadline := time.After(2 * time.Second)
	for len(p.tokens) < workers+queue {
		select {
		case <-deadline:
			t.Fatalf("burst never claimed all tokens: %d/%d", len(p.tokens), workers+queue)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// With every token held the shed attempt must fail fast.
	if err := p.Submit(context.Background(), func() { t.Error("overflow submission ran") }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Submit = %v, want ErrQueueFull", err)
	}

	// Release: every admitted submission completes without error (the
	// queued three run and signal too — drain their signals as well).
	close(block)
	for i := 0; i < queue; i++ {
		<-running
	}
	for i := 0; i < workers+queue; i++ {
		if err := <-admitted; err != nil {
			t.Fatalf("admitted submission failed: %v", err)
		}
	}

	// Full capacity is back: workers+queue concurrent holds must all
	// be admitted again. A leaked token from the first burst would
	// turn exactly one of them into ErrQueueFull.
	block2 := make(chan struct{})
	errs2 := make(chan error, workers+queue)
	for i := 0; i < workers+queue; i++ {
		go func() { errs2 <- p.Submit(context.Background(), func() { <-block2 }) }()
	}
	deadline2 := time.After(2 * time.Second)
	for len(p.tokens) < workers+queue {
		select {
		case <-deadline2:
			t.Fatalf("capacity not restored: %d/%d tokens claimed", len(p.tokens), workers+queue)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(block2)
	for i := 0; i < workers+queue; i++ {
		if err := <-errs2; err != nil {
			t.Fatalf("re-admitted submission failed: a token leaked: %v", err)
		}
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight after quiesce = %d", got)
	}
}

// TestPoolPreCancelledNeverRuns pins the fail-fast fix: a submission
// whose context is already dead must return its cause without running
// fn and without consuming an admission token — deterministically,
// not just when the race happens to land that way.
func TestPoolPreCancelledNeverRuns(t *testing.T) {
	p := NewPool(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ {
		if err := p.Submit(ctx, func() { t.Fatal("cancelled submission ran") }); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: Submit = %v, want context.Canceled", i, err)
		}
	}
	// The dead submissions consumed nothing: the pool still admits
	// workers+queue concurrent holds.
	block := make(chan struct{})
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- p.Submit(context.Background(), func() { <-block }) }()
	}
	// Wait until both holds have their admission tokens before probing:
	// an early probe could claim the straggler's token and hang on the
	// slot stage instead of shedding.
	deadline := time.After(2 * time.Second)
	for len(p.tokens) < 2 {
		select {
		case <-deadline:
			t.Fatal("pool lost capacity to pre-cancelled submissions")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Submit = %v, want ErrQueueFull", err)
	}
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("live submission failed: %v", err)
		}
	}
}
