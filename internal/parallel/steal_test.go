package parallel

// Work-stealing scheduler contract: every index runs exactly once for
// any worker count, results merged by index are identical across
// worker counts, stealing actually happens under a skewed cost
// distribution, and RunPooled's results are byte-equivalent to Run's.

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"segbus/internal/apps"
	"segbus/internal/emulator"
)

func TestStealRunExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			counts := make([]atomic.Int32, n)
			StealRun(n, StealOptions{Workers: workers, Seed: 42}, func(i int) {
				counts[i].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestStealRunMergedOutputStable pins the determinism contract: tasks
// writing pure functions of their index produce identical merged
// output for every (workers, seed) combination.
func TestStealRunMergedOutputStable(t *testing.T) {
	const n = 500
	want := make([]int, n)
	StealRun(n, StealOptions{Workers: 1}, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 3, 8} {
		for _, seed := range []int64{1, 7, 99} {
			got := make([]int, n)
			StealRun(n, StealOptions{Workers: workers, Seed: seed}, func(i int) { got[i] = i * i })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d seed=%d: slot %d = %d, want %d", workers, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStealRebalances proves an idle worker really does take over a
// busy worker's backlog. With workers=2 and n=4 the deal is
// w0={0,2}, w1={1,3}; the tail pop makes worker 0 start with task 2,
// which blocks until task 0 — the one remaining in worker 0's deque —
// runs. Worker 1's own tasks are instant, so task 0 can only run if
// worker 1 steals it; without stealing, task 2 would sit blocked
// until its escape timeout fires.
func TestStealRebalances(t *testing.T) {
	release := make(chan struct{})
	var rebalanced atomic.Bool
	StealRun(4, StealOptions{Workers: 2, Seed: 3}, func(i int) {
		switch i {
		case 2:
			select {
			case <-release:
				rebalanced.Store(true)
			case <-time.After(5 * time.Second):
			}
		case 0:
			close(release)
		}
	})
	if !rebalanced.Load() {
		t.Fatal("blocked worker's backlog was never stolen")
	}
}

// TestStealDeque pins the deque primitives: owner pops newest-first,
// thief takes the oldest half in order.
func TestStealDeque(t *testing.T) {
	d := &stealDeque{items: []int{1, 2, 3, 4, 5}}
	if i, ok := d.popTail(); !ok || i != 5 {
		t.Fatalf("popTail = %d,%v want 5,true", i, ok)
	}
	got := d.stealHead()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("stealHead = %v, want [1 2] (oldest half of [1 2 3 4])", got)
	}
	if i, ok := d.popTail(); !ok || i != 4 {
		t.Fatalf("popTail after steal = %d,%v want 4,true", i, ok)
	}
	d2 := &stealDeque{}
	if got := d2.stealHead(); got != nil {
		t.Fatalf("stealHead of empty deque = %v, want nil", got)
	}
}

// TestRunPooledMatchesRun pins RunPooled's results byte-identical to
// the fresh-machine pool on a mixed-shape job list, including an
// invalid job whose error must survive in place.
func TestRunPooledMatchesRun(t *testing.T) {
	m := apps.MP3Model()
	var jobs []Job
	for _, size := range []int{36, 18, 12} {
		jobs = append(jobs, SweepPackageSizes("mp3", m, apps.MP3Platform3(36), []int{size}, emulator.Config{})...)
		jobs = append(jobs, SweepPackageSizes("mp3-2seg", m, apps.MP3Platform2(36), []int{size}, emulator.Config{})...)
	}
	// An infeasible job: package size rejected by validation.
	bad := apps.MP3Platform3(36)
	bad.PackageSize = -5
	jobs = append(jobs, Job{Label: "bad", Model: m, Platform: bad})

	want := Run(jobs, Options{Workers: 2})
	got := RunPooled(jobs, Options{}, StealOptions{Workers: 3, Seed: 9}, nil)
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("job %d (%s): err %v vs %v", i, want[i].Label, want[i].Err, got[i].Err)
		}
		if want[i].Err != nil {
			if want[i].Err.Error() != got[i].Err.Error() {
				t.Errorf("job %d error drifted: %v vs %v", i, want[i].Err, got[i].Err)
			}
			continue
		}
		wj, err := json.Marshal(want[i].Report)
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got[i].Report)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wj, gj) {
			t.Errorf("job %d (%s): pooled report differs from fresh", i, want[i].Label)
		}
	}
}
