package parallel

// Deterministic work stealing.
//
// The channel-fed pool in Run hands jobs to whichever worker asks
// first — fine when every job costs about the same, wasteful when a
// design-space wave mixes 50 µs candidates with 5 ms ones: the cheap
// jobs drain early and their workers idle behind one straggler's
// backlog. StealRun instead deals the index range into per-worker
// deques up front and lets an idle worker steal the *back half* of a
// victim's deque, so load balances to the actual cost distribution
// without a shared queue in the hot path.
//
// Determinism contract: the schedule (who runs what, in what order)
// varies with the worker count and the steal seed, but every task
// writes only to its own index's slot, so the merged result is a pure
// function of the task function alone. Callers that need byte-stable
// output across -workers values (the explorer's Pareto front, the
// sweep curves) get it by keeping each task's work independent of its
// siblings — which the emulator guarantees, one run being a sealed
// deterministic simulation. The seed exists so the *schedule* itself
// is reproducible for profiling, not to protect the results.

import (
	"math/rand"
	"runtime"
	"sync"
)

// StealOptions tunes a StealRun.
type StealOptions struct {
	// Workers is the number of concurrent workers; zero selects
	// GOMAXPROCS. More workers than tasks is clamped.
	Workers int

	// Seed drives each worker's victim-selection order; zero selects
	// seed 1. Runs with equal seeds replay the same steal schedule
	// given the same worker count and task timings.
	Seed int64
}

// stealDeque is one worker's job stack: the owner pops newest-first
// from the tail (locality: neighbouring indices share platform
// shapes), thieves take the oldest half from the head. A plain mutex
// is fine here — the lock is only contended when a thief probes, and
// one emulation dwarfs a lock round trip by orders of magnitude.
type stealDeque struct {
	mu    sync.Mutex
	items []int
}

func (d *stealDeque) popTail() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	i := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return i, true
}

// stealHead moves the oldest half (at least one) of d's items to the
// thief. Returns nil when d is empty.
func (d *stealDeque) stealHead() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	got := make([]int, take)
	copy(got, d.items[:take])
	d.items = append(d.items[:0], d.items[take:]...)
	return got
}

func (d *stealDeque) push(items []int) {
	d.mu.Lock()
	d.items = append(d.items, items...)
	d.mu.Unlock()
}

// StealRun executes task(i) for every i in [0, n) on a work-stealing
// worker pool and returns when all tasks have finished. Indices are
// dealt round-robin across the workers' deques; an idle worker steals
// from victims in a seeded random order and exits once a full sweep
// finds every deque empty (tasks never spawn tasks, so an empty
// sweep is final).
func StealRun(n int, opts StealOptions, task func(i int)) {
	if n <= 0 {
		return
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	deques := make([]*stealDeque, w)
	for i := range deques {
		deques[i] = &stealDeque{items: make([]int, 0, n/w+1)}
	}
	// Round-robin deal: worker k starts with indices k, k+w, k+2w, …
	// in ascending order, so its tail pop runs them newest-first but
	// each worker's share spans the whole range — a cost gradient
	// across the space (small package sizes are slower) is spread
	// evenly instead of handing one worker the expensive prefix.
	for i := 0; i < n; i++ {
		d := deques[i%w]
		d.items = append(d.items, i)
	}

	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Per-worker rng: distinct streams per worker, stable per
			// (seed, worker) pair.
			rng := rand.New(rand.NewSource(seed + int64(k)*0x9e3779b9))
			own := deques[k]
			for {
				if i, ok := own.popTail(); ok {
					task(i)
					continue
				}
				// Own deque dry: sweep victims in a fresh random order.
				stole := false
				for _, v := range rng.Perm(w) {
					if v == k {
						continue
					}
					if got := deques[v].stealHead(); len(got) > 0 {
						own.push(got)
						stole = true
						break
					}
				}
				if !stole {
					return
				}
			}
		}(k)
	}
	wg.Wait()
}
