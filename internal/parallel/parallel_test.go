package parallel

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func jobs(n int) []Job {
	m := apps.MP3Model()
	out := make([]Job, 0, n)
	sizes := []int{9, 12, 18, 24, 36, 48, 72}
	for i := 0; i < n; i++ {
		p := apps.MP3Platform3(sizes[i%len(sizes)])
		out = append(out, Job{Label: p.Name, Model: m, Platform: p})
	}
	return out
}

func TestRunPreservesOrder(t *testing.T) {
	js := jobs(12)
	results := Run(js, Options{Workers: 4})
	if len(results) != len(js) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("job %d: %v", i, r.Err)
		}
		if r.Report == nil {
			t.Errorf("job %d: nil report", i)
		}
	}
}

func TestRunMatchesSequential(t *testing.T) {
	js := jobs(8)
	seq := Run(js, Options{Workers: 1})
	par := Run(js, Options{Workers: 8})
	for i := range js {
		if !reflect.DeepEqual(seq[i].Report, par[i].Report) {
			t.Errorf("job %d: parallel result differs from sequential", i)
		}
	}
}

func TestRunContinuesAfterFailure(t *testing.T) {
	js := jobs(3)
	js[1].Model = psdf.NewModel("broken") // fails validation
	results := Run(js, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy jobs infected by a failing one")
	}
	if results[1].Err == nil {
		t.Error("broken job reported success")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	js := jobs(2)
	js[0].Platform = nil // Run will panic dereferencing it
	results := Run(js, Options{Workers: 2})
	if results[0].Err == nil || results[0].Report != nil {
		t.Errorf("panicking job result = %+v", results[0])
	}
	if results[1].Err != nil {
		t.Error("sibling job failed")
	}
}

func TestRunProgressCallback(t *testing.T) {
	var count int32
	var mu sync.Mutex
	seen := map[int]bool{}
	Run(jobs(6), Options{
		Workers: 3,
		Progress: func(r Result) {
			atomic.AddInt32(&count, 1)
			mu.Lock()
			seen[r.Index] = true
			mu.Unlock()
		},
	})
	if count != 6 || len(seen) != 6 {
		t.Errorf("progress fired %d times for %d distinct jobs", count, len(seen))
	}
}

func TestRunStop(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	results := Run(jobs(5), Options{Workers: 2, Stop: stop})
	for i, r := range results {
		if !errors.Is(r.Err, ErrStopped) {
			t.Errorf("job %d ran despite stop: %v", i, r.Err)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(nil, Options{}); len(got) != 0 {
		t.Errorf("empty run = %v", got)
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	results := Run(jobs(2), Options{}) // Workers: 0 selects GOMAXPROCS
	for _, r := range results {
		if r.Err != nil {
			t.Error(r.Err)
		}
	}
}

func TestSweepPackageSizes(t *testing.T) {
	m := apps.MP3Model()
	base := apps.MP3Platform3(36)
	js := SweepPackageSizes("mp3", m, base, []int{18, 36, 72}, emulator.Config{})
	if len(js) != 3 {
		t.Fatalf("%d jobs", len(js))
	}
	if js[0].Platform.PackageSize != 18 || js[2].Platform.PackageSize != 72 {
		t.Error("package sizes not applied")
	}
	if base.PackageSize != 36 {
		t.Error("base platform mutated")
	}
	if js[0].Label != "mp3/s=18" {
		t.Errorf("label = %q", js[0].Label)
	}
	results := Run(js, Options{Workers: 3})
	for _, r := range results {
		if r.Err != nil {
			t.Error(r.Err)
		}
	}
}

func TestSweepPlatforms(t *testing.T) {
	m := apps.MP3Model()
	if got := SweepPlatforms(m, nil, emulator.Config{}); len(got) != 0 {
		t.Error("nil candidates produced jobs")
	}
	cands := []*platform.Platform{apps.MP3Platform1(36), apps.MP3Platform2(36), apps.MP3Platform3(36)}
	js := SweepPlatforms(m, cands, emulator.Config{})
	if len(js) != 3 {
		t.Fatalf("%d jobs", len(js))
	}
	if js[1].Label != "SBP-2seg" {
		t.Errorf("label = %q", js[1].Label)
	}
	for _, r := range Run(js, Options{Workers: 3}) {
		if r.Err != nil {
			t.Error(r.Err)
		}
	}
}
