package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// poolToken is what occupies admission and worker slots; only the
// channel capacities matter.
type poolToken = struct{}

// Pool is the long-lived counterpart of Run: a bounded set of worker
// slots plus a bounded admission queue, built for serving workloads
// where requests arrive over time instead of as one batch.
//
// Admission is two-staged. Submit first claims an admission token
// (workers + queue depth of them exist); when none is free the pool is
// saturated and Submit fails fast with ErrQueueFull so the caller can
// shed load (HTTP 429) instead of stacking unbounded goroutines. With
// a token held, Submit waits for a worker slot — honouring the
// caller's context, so an abandoned request stops waiting, releases
// its token immediately and never occupies a slot.
//
// The work function runs on the caller's goroutine (net/http already
// provides one per request); the pool only rations concurrency. Close
// starts a graceful drain: new submissions are rejected with
// ErrPoolClosed while admitted work runs to completion, and Drain
// blocks until the last slot is back.
type Pool struct {
	tokens chan struct{} // admission tokens: workers + queue depth
	slots  chan struct{} // concurrent execution slots: workers

	closed   chan struct{}
	closeOne sync.Once
	inflight atomic.Int64
}

// ErrQueueFull reports that the pool had no admission capacity left;
// the caller should shed the request.
var ErrQueueFull = fmt.Errorf("parallel: pool queue is full")

// ErrPoolClosed reports a submission to a pool that has begun its
// graceful drain.
var ErrPoolClosed = fmt.Errorf("parallel: pool is closed")

// NewPool returns a pool with the given number of worker slots and
// queued (admitted but not yet running) submissions. workers <= 0
// selects GOMAXPROCS; queue < 0 selects twice the worker count.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 2 * workers
	}
	return &Pool{
		tokens: make(chan struct{}, workers+queue),
		slots:  make(chan struct{}, workers),
		closed: make(chan struct{}),
	}
}

// Submit runs fn on a worker slot. It returns ErrQueueFull when the
// pool is saturated, ErrPoolClosed after Close, or the context's cause
// when ctx is cancelled before fn starts — in which case fn never
// runs and the queued position is released immediately. A nil ctx
// waits indefinitely.
//
// Cancellation is checked at every stage, not just while waiting for
// a slot: an already-abandoned submission neither claims an admission
// token its siblings could use (a batch fan-out whose client is gone
// must fail fast, not crowd out live requests) nor runs fn after
// winning a slot in the same instant its context expired (the
// slot-acquire select picks randomly among ready cases).
func (p *Pool) Submit(ctx context.Context, fn func()) error {
	return p.SubmitObserved(ctx, nil, fn)
}

// SubmitObserved is Submit with an admission observer: when the
// submission is admitted — fn is definitely about to run — observe is
// called exactly once with the time spent waiting between submission
// and the worker slot, i.e. the queue wait a served request cannot see
// from outside the pool. Rejected, shed and cancelled submissions
// never invoke it, so observers can attribute admission wait without
// reaching into pool internals. A nil observe makes this identical to
// Submit (the clock is not even read).
func (p *Pool) SubmitObserved(ctx context.Context, observe func(queueWait time.Duration), fn func()) error {
	var submitted time.Time
	if observe != nil {
		submitted = time.Now()
	}
	select {
	case <-p.closed:
		return ErrPoolClosed
	default:
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
		select {
		case <-done:
			return context.Cause(ctx)
		default:
		}
	}
	select {
	case p.tokens <- struct{}{}:
	default:
		return ErrQueueFull
	}
	defer func() { <-p.tokens }()

	select {
	case p.slots <- struct{}{}:
	case <-done:
		return context.Cause(ctx)
	case <-p.closed:
		return ErrPoolClosed
	}
	defer func() { <-p.slots }()
	if done != nil {
		select {
		case <-done:
			return context.Cause(ctx)
		default:
		}
	}
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	if observe != nil {
		observe(time.Since(submitted))
	}
	fn()
	return nil
}

// InFlight returns the number of submissions currently executing.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Close starts the graceful drain: subsequent and slot-waiting
// submissions fail with ErrPoolClosed; running work is unaffected.
// Safe to call more than once.
func (p *Pool) Close() {
	p.closeOne.Do(func() { close(p.closed) })
}

// Drain blocks until every in-flight submission has finished or ctx
// is done, whichever comes first, and reports whether the pool fully
// drained. It works by parking a token in every worker slot, so it
// must only be called after Close (otherwise it would compete with
// live submissions for slots).
func (p *Pool) Drain(ctx context.Context) bool {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for i := 0; i < cap(p.slots); i++ {
		select {
		case p.slots <- poolToken{}:
		case <-done:
			return false
		}
	}
	return true
}
