package engine

import "testing"

// TestSteadyStateAllocs pins the kernel's zero-allocation guarantee:
// once the heap and the slot pool have grown to the workload's
// high-water mark, a self-rescheduling event chain runs without a
// single heap allocation per dispatched event.
func TestSteadyStateAllocs(t *testing.T) {
	s := NewSim()
	var h Handler
	h = func(now Time) { s.After(7, 0, h) }
	s.At(0, 0, h)
	if _, err := s.RunUntil(1_000); err != nil {
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(100, func() {
		_, err = s.RunUntil(s.Now() + 700)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("steady-state After+dispatch allocates %v per window, want 0", allocs)
	}
}

// TestCancelHeavyAllocs: cancellation is a generation bump, not an
// allocation — a workload that schedules a burst, cancels half of it
// and dispatches the rest stays allocation-free once warm.
func TestCancelHeavyAllocs(t *testing.T) {
	s := NewSim()
	noop := Handler(func(Time) {})
	ids := make([]EventID, 0, 64)
	var err error
	step := func() {
		now := s.Now()
		for i := 0; i < 64; i++ {
			ids = append(ids, s.At(now+Time(1+i%17), i%3, noop))
		}
		for i, id := range ids {
			if i%2 == 0 {
				s.Cancel(id)
			}
		}
		ids = ids[:0]
		_, err = s.RunUntil(now + 20)
	}
	step() // warm the pool, the heap and the ids buffer
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, step)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("cancel-heavy workload allocates %v per round, want 0", allocs)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after drain", s.Pending())
	}
}

// TestStaleCancelDoesNotHitReusedSlot: an EventID kept across its
// event's firing must not cancel the unrelated event that later
// reuses the same pool slot — the generation check makes the stale
// cancel a no-op.
func TestStaleCancelDoesNotHitReusedSlot(t *testing.T) {
	s := NewSim()
	stale := s.At(10, 0, func(Time) {})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	fresh := s.At(20, 0, func(Time) { fired = true }) // reuses the freed slot
	s.Cancel(stale)
	if s.Pending() != 1 {
		t.Fatalf("stale cancel removed a live event (pending = %d)", s.Pending())
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event on a reused slot did not fire after a stale cancel")
	}
	s.Cancel(fresh) // fired already: no-op
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}
