package engine

import "testing"

// BenchmarkEventThroughput measures raw kernel throughput: schedule
// and dispatch chained events.
func BenchmarkEventThroughput(b *testing.B) {
	s := NewSim()
	count := 0
	var next Handler
	next = func(now Time) {
		count++
		if count < b.N {
			s.After(10, 0, next)
		}
	}
	b.ResetTimer()
	s.At(0, 0, next)
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueChurn measures heap behaviour with many pending
// events.
func BenchmarkQueueChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSim()
		for j := 0; j < 1024; j++ {
			s.At(Time((j*37)%1024), j%3, func(Time) {})
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNextEdge measures clock-edge quantisation.
func BenchmarkNextEdge(b *testing.B) {
	c := NewClock(10989)
	var acc Time
	for i := 0; i < b.N; i++ {
		acc += c.NextEdge(Time(i * 977))
	}
	_ = acc
}
