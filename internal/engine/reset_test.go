package engine

import "testing"

// record drives a deterministic little workload — staggered schedules
// across three priorities, a couple of cancellations, one in-handler
// reschedule — and returns the dispatch trace as (time, tag) pairs.
func record(s *Sim) ([]Time, []int, error) {
	var times []Time
	var tags []int
	note := func(tag int) Handler {
		return func(now Time) {
			times = append(times, now)
			tags = append(tags, tag)
		}
	}
	s.At(5, 1, note(1))
	s.At(5, 0, note(2))
	dead := s.At(7, 0, note(3))
	s.At(9, 2, func(now Time) {
		note(4)(now)
		s.After(3, 0, note(5))
	})
	s.Cancel(dead)
	_, err := s.Run()
	return times, tags, err
}

// TestResetReplaysFresh: the same schedule dispatched on a fresh Sim
// and on a Reset one produces the identical trace — Reset restores
// time zero and restarts the sequence counter, so the (time, priority,
// sequence) order key replays exactly.
func TestResetReplaysFresh(t *testing.T) {
	fresh := NewSim()
	wantTimes, wantTags, err := record(fresh)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSim()
	if _, _, err := record(s); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		s.Reset()
		if s.Now() != 0 || s.Pending() != 0 || s.Steps() != 0 {
			t.Fatalf("round %d: Reset left now=%v pending=%d steps=%d",
				round, s.Now(), s.Pending(), s.Steps())
		}
		times, tags, err := record(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(times) != len(wantTimes) {
			t.Fatalf("round %d: %d events, want %d", round, len(times), len(wantTimes))
		}
		for i := range times {
			if times[i] != wantTimes[i] || tags[i] != wantTags[i] {
				t.Fatalf("round %d event %d: (%v,%d), want (%v,%d)",
					round, i, times[i], tags[i], wantTimes[i], wantTags[i])
			}
		}
	}
}

// TestResetInvalidatesStaleIDs: an EventID issued before a Reset must
// not cancel the event that lands on the same slot afterwards.
func TestResetInvalidatesStaleIDs(t *testing.T) {
	s := NewSim()
	var stale []EventID
	for i := 0; i < 8; i++ {
		stale = append(stale, s.At(Time(10+i), 0, func(Time) {}))
	}
	s.Reset()
	fired := 0
	for i := 0; i < 8; i++ {
		s.At(Time(10+i), 0, func(Time) { fired++ })
	}
	for _, id := range stale {
		s.Cancel(id)
	}
	if s.Pending() != 8 {
		t.Fatalf("stale cancels removed live events (pending = %d)", s.Pending())
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 8 {
		t.Errorf("fired %d of 8 events scheduled after Reset", fired)
	}
}

// TestResetMidQueue: Reset while events are still queued drops them —
// the queue empties without firing anything.
func TestResetMidQueue(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(100, 0, func(Time) { fired = true })
	s.Reset()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event scheduled before Reset fired after it")
	}
	if s.Now() != 0 {
		t.Errorf("now = %v after draining an emptied queue", s.Now())
	}
}

// TestResetAllocs pins the arena-reuse guarantee: once the heap and the
// slot pool have grown to the workload's high-water mark, a
// Reset-schedule-drain cycle performs zero heap allocations.
func TestResetAllocs(t *testing.T) {
	s := NewSim()
	noop := Handler(func(Time) {})
	var err error
	cycle := func() {
		s.Reset()
		for i := 0; i < 64; i++ {
			s.At(Time(1+i%17), i%3, noop)
		}
		_, err = s.Run()
	}
	cycle() // warm the heap and the pool
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("Reset cycle allocates %v per round, want 0", allocs)
	}
}
