// Package engine provides the deterministic discrete-event simulation
// kernel underneath the SegBus emulator.
//
// The kernel models wall-clock time in integer picoseconds (the unit
// the paper reports) and supports multiple clock domains: every
// platform element acts on edges of its own clock. Events scheduled
// for the same picosecond are delivered in a deterministic order —
// (time, priority, sequence number) — so a simulation is exactly
// reproducible across runs and across drivers.
package engine

import (
	"container/heap"
	"fmt"
	"math"

	"segbus/internal/obs"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// String renders the time the way the paper's reports do, e.g.
// "75307617ps".
func (t Time) String() string { return fmt.Sprintf("%dps", int64(t)) }

// Micros returns the time in microseconds as a float, convenient for
// comparisons against the paper's µs figures.
func (t Time) Micros() float64 { return float64(t) / 1e6 }

// Clock is a clock domain: a period in picoseconds. Elements quantise
// their actions to edges of their clock.
type Clock struct {
	periodPs int64
}

// NewClock returns a clock domain with the given period in
// picoseconds. The period must be positive.
func NewClock(periodPs int64) Clock {
	if periodPs <= 0 {
		panic("engine: non-positive clock period")
	}
	return Clock{periodPs: periodPs}
}

// PeriodPs returns the clock period in picoseconds.
func (c Clock) PeriodPs() int64 { return c.periodPs }

// Ticks converts a number of clock ticks into a duration in
// picoseconds.
func (c Clock) Ticks(n int64) Time { return Time(n * c.periodPs) }

// NextEdge returns the earliest clock edge at or after t. Edges sit at
// integer multiples of the period, with an edge at time zero.
func (c Clock) NextEdge(t Time) Time {
	if t <= 0 {
		return 0
	}
	rem := int64(t) % c.periodPs
	if rem == 0 {
		return t
	}
	return t + Time(c.periodPs-rem)
}

// TicksElapsed returns how many full clock ticks fit in the interval
// [0, t]: the tick count an element of this domain has accumulated by
// absolute time t if it counted continuously from the start of the
// emulation. This is the conversion the paper uses between TCT values
// and execution times (t_SAx = TCT × period).
func (c Clock) TicksElapsed(t Time) int64 {
	if t <= 0 {
		return 0
	}
	return (int64(t) + c.periodPs - 1) / c.periodPs
}

// Handler is the callback attached to a scheduled event.
type Handler func(now Time)

// event is one queue entry.
type event struct {
	at       Time
	priority int
	seq      uint64
	fn       Handler
	index    int // heap bookkeeping
	canceled bool
}

// EventID allows a scheduled event to be canceled before it fires.
type EventID struct{ e *event }

// eventQueue is a min-heap over (at, priority, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x interface{}) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with NewSim.
type Sim struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	steps   uint64
	limit   uint64       // safety valve against runaway models; 0 = unlimited
	events  *obs.Counter // optional per-event metric; nil no-ops
}

// NewSim returns an empty simulation positioned at time zero.
func NewSim() *Sim {
	return &Sim{}
}

// SetStepLimit installs a safety limit on the number of events the
// simulation will process; Run returns an error once exceeded. A limit
// of zero (the default) disables the check.
func (s *Sim) SetStepLimit(n uint64) { s.limit = n }

// SetEventCounter streams every processed event into an obs counter,
// so a live scrape sees simulation progress while Run is still
// inside its loop. A nil counter (the default) keeps the dispatch
// loop free of metric work beyond one pointer test.
func (s *Sim) SetEventCounter(c *obs.Counter) { s.events = c }

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute time at with the given priority
// (lower priorities run first among simultaneous events). Scheduling
// in the past panics: that is always a model bug.
func (s *Sim) At(at Time, priority int, fn Handler) EventID {
	if at < s.now {
		panic(fmt.Sprintf("engine: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("engine: nil event handler")
	}
	e := &event{at: at, priority: priority, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return EventID{e: e}
}

// After schedules fn to run delay picoseconds from now.
func (s *Sim) After(delay Time, priority int, fn Handler) EventID {
	if delay < 0 {
		panic("engine: negative delay")
	}
	return s.At(s.now+delay, priority, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an already
// fired or already canceled event is a no-op.
func (s *Sim) Cancel(id EventID) {
	if id.e != nil {
		id.e.canceled = true
	}
}

// Stop makes Run return after the current event completes. Handlers
// call it when the simulated system has reached its termination
// condition ahead of queue exhaustion.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of live (non-canceled) events in the
// queue.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Run processes events in order until the queue is empty, Stop is
// called, or the step limit is exceeded. It returns the final
// simulation time.
func (s *Sim) Run() (Time, error) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			continue
		}
		if e.at < s.now {
			return s.now, fmt.Errorf("engine: time went backwards (%v -> %v)", s.now, e.at)
		}
		s.now = e.at
		s.steps++
		s.events.Inc()
		if s.limit > 0 && s.steps > s.limit {
			return s.now, fmt.Errorf("engine: step limit %d exceeded at %v (livelock?)", s.limit, s.now)
		}
		e.fn(s.now)
	}
	return s.now, nil
}

// RunUntil processes events with timestamps <= deadline, leaving later
// events queued. It returns the simulation time after the last
// processed event (or the deadline when nothing remains to do before
// it). Used by the barrier-synchronised parallel driver to advance the
// model one virtual-clock window at a time.
func (s *Sim) RunUntil(deadline Time) (Time, error) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.at > deadline {
			break
		}
		heap.Pop(&s.queue)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.steps++
		s.events.Inc()
		if s.limit > 0 && s.steps > s.limit {
			return s.now, fmt.Errorf("engine: step limit %d exceeded at %v (livelock?)", s.limit, s.now)
		}
		e.fn(s.now)
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now, nil
}

// NextEventTime returns the timestamp of the earliest live queued
// event and true, or zero and false when the queue holds no live
// events.
func (s *Sim) NextEventTime() (Time, bool) {
	for len(s.queue) > 0 && s.queue[0].canceled {
		heap.Pop(&s.queue)
	}
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}
