// Package engine provides the deterministic discrete-event simulation
// kernel underneath the SegBus emulator.
//
// The kernel models wall-clock time in integer picoseconds (the unit
// the paper reports) and supports multiple clock domains: every
// platform element acts on edges of its own clock. Events scheduled
// for the same picosecond are delivered in a deterministic order —
// (time, priority, sequence number) — so a simulation is exactly
// reproducible across runs and across drivers.
//
// The event queue is a value-typed 4-ary min-heap over a slice of
// 32-byte entries backed by a pooled slot array with an intrusive
// free list: scheduling reuses slots, firing and cancellation bump a
// per-slot generation, and an EventID is a (slot, generation) pair
// rather than a retained pointer. Steady-state operation — events
// fired at the rate they are scheduled — performs zero heap
// allocations (pinned by TestSteadyStateAllocs), and the dispatch
// order is byte-identical to the original container/heap kernel
// (pinned by TestDispatchOrderGolden).
package engine

import (
	"fmt"
	"math"

	"segbus/internal/obs"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// String renders the time the way the paper's reports do, e.g.
// "75307617ps".
func (t Time) String() string { return fmt.Sprintf("%dps", int64(t)) }

// Micros returns the time in microseconds as a float, convenient for
// comparisons against the paper's µs figures.
func (t Time) Micros() float64 { return float64(t) / 1e6 }

// Clock is a clock domain: a period in picoseconds. Elements quantise
// their actions to edges of their clock.
type Clock struct {
	periodPs int64
}

// NewClock returns a clock domain with the given period in
// picoseconds. The period must be positive.
func NewClock(periodPs int64) Clock {
	if periodPs <= 0 {
		panic("engine: non-positive clock period")
	}
	return Clock{periodPs: periodPs}
}

// PeriodPs returns the clock period in picoseconds.
func (c Clock) PeriodPs() int64 { return c.periodPs }

// Ticks converts a number of clock ticks into a duration in
// picoseconds.
func (c Clock) Ticks(n int64) Time { return Time(n * c.periodPs) }

// NextEdge returns the earliest clock edge at or after t. Edges sit at
// integer multiples of the period, with an edge at time zero.
func (c Clock) NextEdge(t Time) Time {
	if t <= 0 {
		return 0
	}
	rem := int64(t) % c.periodPs
	if rem == 0 {
		return t
	}
	return t + Time(c.periodPs-rem)
}

// TicksElapsed returns how many full clock ticks fit in the interval
// [0, t]: the tick count an element of this domain has accumulated by
// absolute time t if it counted continuously from the start of the
// emulation. This is the conversion the paper uses between TCT values
// and execution times (t_SAx = TCT × period).
func (c Clock) TicksElapsed(t Time) int64 {
	if t <= 0 {
		return 0
	}
	return (int64(t) + c.periodPs - 1) / c.periodPs
}

// Handler is the callback attached to a scheduled event.
type Handler func(now Time)

// heapEnt is one entry of the 4-ary min-heap: the full ordering key
// plus the pooled slot holding the handler. Entries are values — heap
// comparisons and swaps never chase a pointer — and the field layout
// packs one entry into 32 bytes.
type heapEnt struct {
	at   Time
	seq  uint64
	prio int
	slot int32
	gen  uint32
}

// entLess is the deterministic total order: time, then priority, then
// scheduling sequence.
func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// evSlot is one pooled handler slot. gen distinguishes incarnations:
// it starts at 1 and is bumped every time the slot is released (fire
// or cancel), so a stale EventID or heap entry can never match a
// reused slot. next links free slots intrusively; -1 terminates.
type evSlot struct {
	fn   Handler
	gen  uint32
	next int32
}

// EventID allows a scheduled event to be canceled before it fires. It
// is a (slot, generation) pair, not a pointer: the zero value is
// inert, cancellation is a generation comparison, and nothing keeps
// the event alive after it fired. Generations are per-slot uint32
// counters; an ID only aliases a later event after 2^32 reuses of its
// slot.
type EventID struct {
	slot int32 // pool index + 1, so the zero EventID matches nothing
	gen  uint32
}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with NewSim.
type Sim struct {
	now      Time
	heap     []heapEnt
	pool     []evSlot
	freeHead int32
	live     int // scheduled and neither fired nor canceled
	seq      uint64
	stopped  bool
	steps    uint64
	limit    uint64       // safety valve against runaway models; 0 = unlimited
	events   *obs.Counter // optional per-event metric; nil no-ops
}

// NewSim returns an empty simulation positioned at time zero.
func NewSim() *Sim {
	return &Sim{freeHead: -1}
}

// SetStepLimit installs a safety limit on the number of events the
// simulation will process; Run returns an error once exceeded. A limit
// of zero (the default) disables the check.
func (s *Sim) SetStepLimit(n uint64) { s.limit = n }

// SetEventCounter streams every processed event into an obs counter,
// so a live scrape sees simulation progress while Run is still
// inside its loop. A nil counter (the default) keeps the dispatch
// loop free of metric work beyond one pointer test.
func (s *Sim) SetEventCounter(c *obs.Counter) { s.events = c }

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events processed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// allocSlot takes a slot off the free list (or grows the pool) and
// installs fn, returning the slot index and its current generation.
func (s *Sim) allocSlot(fn Handler) (int32, uint32) {
	if i := s.freeHead; i >= 0 {
		sl := &s.pool[i]
		s.freeHead = sl.next
		sl.fn = fn
		return i, sl.gen
	}
	s.pool = append(s.pool, evSlot{fn: fn, gen: 1, next: -1})
	return int32(len(s.pool) - 1), 1
}

// freeSlot releases a slot back to the pool, invalidating every
// outstanding EventID and heap entry that refers to its current
// incarnation.
func (s *Sim) freeSlot(i int32) {
	sl := &s.pool[i]
	sl.fn = nil // drop the handler reference eagerly
	sl.gen++
	if sl.gen == 0 {
		sl.gen = 1 // keep the zero EventID inert across wrap-around
	}
	sl.next = s.freeHead
	s.freeHead = i
}

// pushHeap appends e and restores the heap order (sift-up).
func (s *Sim) pushHeap(e heapEnt) {
	s.heap = append(s.heap, e)
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// siftDown re-inserts e — the entry displaced from the tail when the
// root was removed — into the first n heap entries, starting at the
// root.
func (s *Sim) siftDown(e heapEnt, n int) {
	h := s.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if !entLess(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// popHeap removes and returns the minimum entry.
func (s *Sim) popHeap() heapEnt {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(h[n], n)
	}
	return top
}

// At schedules fn to run at absolute time at with the given priority
// (lower priorities run first among simultaneous events). Scheduling
// in the past panics: that is always a model bug.
func (s *Sim) At(at Time, priority int, fn Handler) EventID {
	if at < s.now {
		panic(fmt.Sprintf("engine: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("engine: nil event handler")
	}
	slot, gen := s.allocSlot(fn)
	s.pushHeap(heapEnt{at: at, prio: priority, seq: s.seq, slot: slot, gen: gen})
	s.seq++
	s.live++
	return EventID{slot: slot + 1, gen: gen}
}

// After schedules fn to run delay picoseconds from now.
func (s *Sim) After(delay Time, priority int, fn Handler) EventID {
	if delay < 0 {
		panic("engine: negative delay")
	}
	return s.At(s.now+delay, priority, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an already
// fired or already canceled event is a no-op: its generation no longer
// matches. The event's heap entry stays queued and is discarded when
// it surfaces.
func (s *Sim) Cancel(id EventID) {
	i := id.slot - 1
	if i < 0 || int(i) >= len(s.pool) || s.pool[i].gen != id.gen {
		return
	}
	s.freeSlot(i)
	s.live--
}

// Stop makes Run return after the current event completes. Handlers
// call it when the simulated system has reached its termination
// condition ahead of queue exhaustion.
func (s *Sim) Stop() { s.stopped = true }

// Reset returns the simulation to time zero with an empty queue while
// keeping the heap and slot arrays for reuse: a Reset-then-reschedule
// cycle performs no allocations once the arrays have grown to their
// working size. Every pooled slot is relinked into the free list with
// its generation bumped, so EventIDs issued before the Reset can never
// cancel an event scheduled after it. The step limit and event counter
// are deliberately kept — callers that reconfigure per run overwrite
// them anyway, and callers that don't expect them to persist.
//
// The sequence counter restarts at zero, so two identical schedules —
// one on a fresh Sim, one after Reset — dispatch in byte-identical
// order: the order key is (time, priority, sequence) and slot indices
// never influence it.
func (s *Sim) Reset() {
	s.heap = s.heap[:0]
	s.freeHead = -1
	for i := range s.pool {
		sl := &s.pool[i]
		sl.fn = nil
		sl.gen++
		if sl.gen == 0 {
			sl.gen = 1
		}
		sl.next = s.freeHead
		s.freeHead = int32(i)
	}
	s.now = 0
	s.live = 0
	s.seq = 0
	s.steps = 0
	s.stopped = false
}

// Pending returns the number of live (non-canceled) events in the
// queue. The count is maintained incrementally on schedule, fire and
// cancel — O(1), not a queue scan.
func (s *Sim) Pending() int { return s.live }

// Run processes events in order until the queue is empty, Stop is
// called, or the step limit is exceeded. It returns the final
// simulation time.
func (s *Sim) Run() (Time, error) {
	return s.dispatch(MaxTime, false)
}

// RunUntil processes events with timestamps <= deadline, leaving later
// events queued. It returns the simulation time after the last
// processed event (or the deadline when nothing remains to do before
// it). Used by the barrier-synchronised parallel driver to advance the
// model one virtual-clock window at a time.
func (s *Sim) RunUntil(deadline Time) (Time, error) {
	return s.dispatch(deadline, true)
}

// dispatch is the shared core of Run and RunUntil: pop, skip stale
// (canceled) entries, advance time, count the step against the safety
// limit, fire. bounded selects the RunUntil semantics — stop at the
// first entry past deadline and clamp the clock forward to it.
//
// The pop is inlined rather than calling popHeap: the common case of
// a shallow queue (the emulator's steady state keeps a handful of
// events pending) then runs without a call or a 32-byte struct copy,
// which is worth ~15% of kernel throughput.
func (s *Sim) dispatch(deadline Time, bounded bool) (Time, error) {
	s.stopped = false
	for !s.stopped {
		h := s.heap
		if len(h) == 0 {
			break
		}
		top := h[0]
		if bounded && top.at > deadline {
			break
		}
		if n := len(h) - 1; n == 0 {
			s.heap = h[:0]
		} else {
			s.heap = h[:n]
			s.siftDown(h[n], n)
		}
		sl := &s.pool[top.slot]
		if sl.gen != top.gen {
			continue // canceled: the slot moved to a newer generation
		}
		fn := sl.fn
		sl.fn = nil
		sl.gen++
		if sl.gen == 0 {
			sl.gen = 1
		}
		sl.next = s.freeHead
		s.freeHead = top.slot
		s.live--
		if !bounded && top.at < s.now {
			// Run refuses to move time backwards (only reachable after
			// a RunUntil deadline clamped the clock past queued work).
			// The event is consumed, matching the original kernel,
			// which had already popped it when it reported the error.
			// RunUntil itself carries no such check: a clamped clock
			// rewinds to the event's timestamp, as it always has.
			return s.now, fmt.Errorf("engine: time went backwards (%v -> %v)", s.now, top.at)
		}
		s.now = top.at
		s.steps++
		s.events.Inc()
		if s.limit > 0 && s.steps > s.limit {
			return s.now, fmt.Errorf("engine: step limit %d exceeded at %v (livelock?)", s.limit, s.now)
		}
		fn(s.now)
	}
	if bounded && s.now < deadline {
		s.now = deadline
	}
	return s.now, nil
}

// NextEventTime returns the timestamp of the earliest live queued
// event and true, or zero and false when the queue holds no live
// events.
func (s *Sim) NextEventTime() (Time, bool) {
	for len(s.heap) > 0 && s.pool[s.heap[0].slot].gen != s.heap[0].gen {
		s.popHeap()
	}
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}
