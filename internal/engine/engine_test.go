package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	if got := Time(75307617).String(); got != "75307617ps" {
		t.Errorf("String() = %q", got)
	}
	if got := Time(489792303).Micros(); got < 489.79 || got > 489.80 {
		t.Errorf("Micros() = %v", got)
	}
}

func TestNewClockPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock(100)
	cases := []struct{ in, want Time }{
		{-5, 0}, {0, 0}, {1, 100}, {99, 100}, {100, 100}, {101, 200}, {250, 300},
	}
	for _, cse := range cases {
		if got := c.NextEdge(cse.in); got != cse.want {
			t.Errorf("NextEdge(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestClockTicks(t *testing.T) {
	c := NewClock(10989) // 91 MHz
	if got := c.Ticks(250); got != 2747250 {
		t.Errorf("Ticks(250) = %d", got)
	}
}

func TestClockTicksElapsed(t *testing.T) {
	c := NewClock(100)
	cases := []struct {
		at   Time
		want int64
	}{
		{0, 0}, {-1, 0}, {1, 1}, {100, 1}, {101, 2}, {1000, 10}, {1001, 11},
	}
	for _, cse := range cases {
		if got := c.TicksElapsed(cse.at); got != cse.want {
			t.Errorf("TicksElapsed(%d) = %d, want %d", cse.at, got, cse.want)
		}
	}
}

func TestClockEdgeProperties(t *testing.T) {
	f := func(period uint16, at uint32) bool {
		p := int64(period) + 1
		c := NewClock(p)
		tm := Time(at)
		edge := c.NextEdge(tm)
		return edge >= tm && int64(edge)%p == 0 && edge-tm < Time(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimRunsInTimeOrder(t *testing.T) {
	s := NewSim()
	var seen []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		s.At(at, 0, func(now Time) { seen = append(seen, now) })
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 500 {
		t.Errorf("final time = %v", end)
	}
	if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
		t.Errorf("events out of order: %v", seen)
	}
	if len(seen) != 5 {
		t.Errorf("processed %d events", len(seen))
	}
}

func TestSimPriorityOrder(t *testing.T) {
	s := NewSim()
	var seen []int
	s.At(100, 2, func(Time) { seen = append(seen, 2) })
	s.At(100, 0, func(Time) { seen = append(seen, 0) })
	s.At(100, 1, func(Time) { seen = append(seen, 1) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Errorf("priority order violated: %v", seen)
	}
}

func TestSimSeqBreaksTies(t *testing.T) {
	s := NewSim()
	var seen []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, 0, func(Time) { seen = append(seen, i) })
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("insertion order not preserved among ties: %v", seen)
		}
	}
}

func TestSimSchedulingDuringRun(t *testing.T) {
	s := NewSim()
	count := 0
	var ping func(now Time)
	ping = func(now Time) {
		count++
		if count < 5 {
			s.After(10, 0, ping)
		}
	}
	s.At(0, 0, ping)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 || end != 40 {
		t.Errorf("count=%d end=%v", count, end)
	}
}

func TestSimPastSchedulingPanics(t *testing.T) {
	s := NewSim()
	s.At(100, 0, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, 0, func(Time) {})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSimNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	NewSim().At(0, 0, nil)
}

func TestSimNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewSim().After(-1, 0, func(Time) {})
}

func TestSimCancel(t *testing.T) {
	s := NewSim()
	fired := false
	id := s.At(100, 0, func(Time) { fired = true })
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending() = %d", got)
	}
	s.Cancel(id)
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() after cancel = %d", got)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	s.Cancel(id) // double-cancel is a no-op
	s.Cancel(EventID{})
}

func TestSimStop(t *testing.T) {
	s := NewSim()
	count := 0
	s.At(10, 0, func(Time) { count++; s.Stop() })
	s.At(20, 0, func(Time) { count++ })
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 || end != 10 {
		t.Errorf("count=%d end=%v after Stop", count, end)
	}
	// Run resumes after Stop.
	end, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 || end != 20 {
		t.Errorf("count=%d end=%v after resume", count, end)
	}
}

func TestSimStepLimit(t *testing.T) {
	s := NewSim()
	s.SetStepLimit(10)
	var loop func(now Time)
	loop = func(now Time) { s.After(1, 0, loop) }
	s.At(0, 0, loop)
	if _, err := s.Run(); err == nil {
		t.Error("runaway simulation not stopped by step limit")
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	var seen []Time
	for _, at := range []Time{10, 20, 30, 40} {
		s.At(at, 0, func(now Time) { seen = append(seen, now) })
	}
	now, err := s.RunUntil(25)
	if err != nil {
		t.Fatal(err)
	}
	if now != 25 {
		t.Errorf("RunUntil returned %v, want 25", now)
	}
	if len(seen) != 2 {
		t.Errorf("processed %d events before deadline, want 2", len(seen))
	}
	if next, ok := s.NextEventTime(); !ok || next != 30 {
		t.Errorf("NextEventTime() = %v,%v", next, ok)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("processed %d events total", len(seen))
	}
}

func TestNextEventTimeSkipsCanceled(t *testing.T) {
	s := NewSim()
	id := s.At(10, 0, func(Time) {})
	s.At(20, 0, func(Time) {})
	s.Cancel(id)
	if next, ok := s.NextEventTime(); !ok || next != 20 {
		t.Errorf("NextEventTime() = %v,%v, want 20,true", next, ok)
	}
}

func TestSimDeterminism(t *testing.T) {
	// Property: a randomly generated event program yields the same
	// execution sequence on every run.
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		var seen []Time
		var spawn func(now Time)
		depth := 0
		spawn = func(now Time) {
			seen = append(seen, now)
			depth++
			if depth < 200 {
				s.After(Time(rng.Intn(50)), rng.Intn(3), spawn)
			}
		}
		for i := 0; i < 20; i++ {
			s.At(Time(rng.Intn(100)), rng.Intn(3), spawn)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	for seed := int64(0); seed < 10; seed++ {
		a := run(seed)
		b := run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: divergence at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}
