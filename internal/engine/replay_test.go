package engine

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateReplay = flag.Bool("update", false, "rewrite the kernel dispatch-order golden")

// dispatchTrace drives one seeded random workload — a mix of
// scheduling, cancellation, Stop and RunUntil windows — and records
// the complete observable behaviour of the kernel: every dispatched
// event (serial, time), every driver-level return value, and the
// Pending/NextEventTime views between phases.
//
// The trace for each seed is pinned in testdata/dispatch_order.golden.
// The golden was recorded against the original container/heap kernel
// (pointer events, lazy cancellation flags); the current kernel must
// replay it byte-for-byte, which pins the (time, priority, seq) total
// order, the Stop/RunUntil resume semantics and the cancellation
// behaviour across the rewrite to the pooled 4-ary heap.
func dispatchTrace(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	s := NewSim()
	var b strings.Builder

	type slot struct {
		id     EventID
		serial int
	}
	var ids []slot // every schedule ever made, fired or not
	serial := 0
	budget := 200 // total events any one workload may schedule

	var schedule func(at Time, prio int)
	mkHandler := func(sn int) Handler {
		return func(now Time) {
			fmt.Fprintf(&b, "fire %d at=%d\n", sn, now)
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				if budget > 0 {
					schedule(now+Time(rng.Intn(60)), rng.Intn(3))
				}
			case 4:
				if budget > 0 && rng.Intn(2) == 0 {
					schedule(now+Time(rng.Intn(60)), rng.Intn(3))
					schedule(now+Time(rng.Intn(60)), rng.Intn(3))
				}
			case 5:
				if len(ids) > 0 {
					pick := ids[rng.Intn(len(ids))]
					s.Cancel(pick.id)
					fmt.Fprintf(&b, "cancel %d\n", pick.serial)
				}
			case 6:
				if rng.Intn(4) == 0 {
					s.Stop()
					fmt.Fprintf(&b, "stop\n")
				}
			}
		}
	}
	schedule = func(at Time, prio int) {
		budget--
		sn := serial
		serial++
		id := s.At(at, prio, mkHandler(sn))
		ids = append(ids, slot{id, sn})
		fmt.Fprintf(&b, "sched %d at=%d prio=%d\n", sn, at, prio)
	}

	checkpoint := func() {
		next, ok := s.NextEventTime()
		fmt.Fprintf(&b, "state now=%d pending=%d next=%d,%v steps=%d\n",
			s.Now(), s.Pending(), next, ok, s.Steps())
	}

	for phase := 0; phase < 6; phase++ {
		fmt.Fprintf(&b, "phase %d\n", phase)
		for i, n := 0, 2+rng.Intn(5); i < n && budget > 0; i++ {
			schedule(s.Now()+Time(rng.Intn(120)), rng.Intn(3))
		}
		// Cancel a few arbitrary ids (possibly already fired or
		// already canceled — both must be no-ops).
		for i, n := 0, rng.Intn(3); i < n && len(ids) > 0; i++ {
			pick := ids[rng.Intn(len(ids))]
			s.Cancel(pick.id)
			fmt.Fprintf(&b, "cancel %d\n", pick.serial)
		}
		if phase%2 == 0 {
			deadline := s.Now() + Time(rng.Intn(150))
			now, err := s.RunUntil(deadline)
			fmt.Fprintf(&b, "rununtil deadline=%d now=%d err=%v\n", deadline, now, err)
		} else {
			now, err := s.Run()
			fmt.Fprintf(&b, "run now=%d err=%v\n", now, err)
		}
		checkpoint()
	}
	now, err := s.Run()
	fmt.Fprintf(&b, "final now=%d err=%v\n", now, err)
	checkpoint()
	return b.String()
}

const replaySeeds = 12

func replayGolden() string {
	var b strings.Builder
	for seed := int64(1); seed <= replaySeeds; seed++ {
		fmt.Fprintf(&b, "==== seed %d ====\n", seed)
		b.WriteString(dispatchTrace(seed))
	}
	return b.String()
}

// TestDispatchOrderGolden asserts the kernel replays the recorded
// dispatch order of the original container/heap implementation on
// every seeded workload, byte for byte.
func TestDispatchOrderGolden(t *testing.T) {
	got := replayGolden()
	path := filepath.Join("testdata", "dispatch_order.golden")
	if *updateReplay {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		n := len(gl)
		if len(wl) < n {
			n = len(wl)
		}
		for i := 0; i < n; i++ {
			if gl[i] != wl[i] {
				t.Fatalf("dispatch order diverges from the recorded kernel at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("dispatch trace length differs: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestDispatchTraceSelfDeterministic: the harness itself is
// deterministic — two in-process runs of the same seed agree. This
// guards the golden against accidental nondeterminism in the harness
// rather than the kernel.
func TestDispatchTraceSelfDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		if a, b := dispatchTrace(seed), dispatchTrace(seed); a != b {
			t.Fatalf("seed %d: harness trace not deterministic", seed)
		}
	}
}
