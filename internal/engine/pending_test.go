package engine

import (
	"math/rand"
	"testing"
)

// TestPendingMatchesBruteForce drives random schedule/cancel/dispatch
// interleavings and checks the O(1) live-event counter against a
// shadow bookkeeping of every event's lifecycle maintained by the
// test itself: scheduled minus fired minus effectively-canceled.
func TestPendingMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		type st struct {
			id       EventID
			fired    bool
			canceled bool
		}
		var events []*st
		liveCount := func() int {
			n := 0
			for _, e := range events {
				if !e.fired && !e.canceled {
					n++
				}
			}
			return n
		}
		check := func(op string) {
			if got, want := s.Pending(), liveCount(); got != want {
				t.Fatalf("seed %d after %s: Pending() = %d, brute force = %d", seed, op, got, want)
			}
		}
		for round := 0; round < 40; round++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule a burst
				for i, n := 0, 1+rng.Intn(6); i < n; i++ {
					e := &st{}
					e.id = s.At(s.Now()+Time(rng.Intn(50)), rng.Intn(3), func(Time) { e.fired = true })
					events = append(events, e)
				}
				check("schedule")
			case 2: // cancel something, possibly dead already
				if len(events) > 0 {
					e := events[rng.Intn(len(events))]
					s.Cancel(e.id)
					if !e.fired && !e.canceled {
						e.canceled = true
					}
					// double cancel must stay a no-op
					s.Cancel(e.id)
					check("cancel")
				}
			case 3: // dispatch a window
				if _, err := s.RunUntil(s.Now() + Time(rng.Intn(40))); err != nil {
					t.Fatal(err)
				}
				check("rununtil")
			}
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		check("final run")
		if s.Pending() != 0 {
			t.Fatalf("seed %d: %d events left after Run", seed, s.Pending())
		}
	}
}
