package trace

import (
	"fmt"
	"sort"
	"strings"
)

// SVG rendering of the two evaluation figures: the per-process
// progress timeline (Figure 10) and the per-element activity graph
// (Figure 11). The output is self-contained SVG 1.1 built with the
// standard library only, suitable for embedding in reports.

// kindFill returns the fill colour of an interval kind.
func kindFill(k Kind) string {
	switch k {
	case Compute:
		return "#4878a8"
	case Transfer:
		return "#58a066"
	case BULoad:
		return "#c8a838"
	case BUUnload:
		return "#c87838"
	case BUWait:
		return "#c84848"
	case Overhead:
		return "#888888"
	}
	return "#444444"
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

const (
	svgRowH    = 22
	svgBarH    = 14
	svgLabelW  = 90
	svgAxisH   = 28
	svgPadding = 8
)

// axisTicks picks a round microsecond step for about six axis labels.
func axisTicks(endPs int64) []int64 {
	if endPs <= 0 {
		return nil
	}
	endUs := float64(endPs) / 1e6
	step := 1.0
	for _, s := range []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
		1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000} {
		if endUs/s <= 7 {
			step = s
			break
		}
		step = s
	}
	var ticks []int64
	for v := 0.0; v <= endUs+1e-9; v += step {
		ticks = append(ticks, int64(v*1e6))
	}
	return ticks
}

// renderSVG lays out one row per element with its intervals as bars.
// rows selects and orders the elements; mark labels are drawn for
// point events.
func (t *Trace) renderSVG(title string, rows []string, width int) string {
	end := t.End()
	if end == 0 || width <= svgLabelW+2*svgPadding {
		return ""
	}
	plotW := width - svgLabelW - 2*svgPadding
	height := svgAxisH + len(rows)*svgRowH + 2*svgPadding + 18
	x := func(ps int64) float64 {
		return float64(svgLabelW+svgPadding) + float64(ps)/float64(end)*float64(plotW)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="14" font-size="13">%s</text>`+"\n", svgPadding, svgEscape(title))

	// Axis.
	axisY := height - svgAxisH + 4
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
		x(0), axisY, x(end), axisY)
	for _, tick := range axisTicks(end) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			x(tick), axisY, x(tick), axisY+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%.6g</text>`+"\n",
			x(tick), axisY+16, float64(tick)/1e6)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">us</text>`+"\n", width-28, axisY+16)

	for i, el := range rows {
		rowY := 22 + i*svgRowH
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", svgPadding, rowY+svgBarH-3, svgEscape(el))
		// Faint row guide.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee"/>`+"\n",
			x(0), rowY+svgBarH/2, x(end), rowY+svgBarH/2)
		for _, iv := range t.ElementIntervals(el) {
			w := x(iv.End) - x(iv.Start)
			if w < 0.5 {
				w = 0.5
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s">`,
				x(iv.Start), rowY, w, svgBarH, kindFill(iv.Kind))
			fmt.Fprintf(&b, `<title>%s %s %d..%dps %s</title></rect>`+"\n",
				svgEscape(el), iv.Kind, iv.Start, iv.End, svgEscape(iv.Detail))
		}
		for _, m := range t.Marks {
			if m.Element != el {
				continue
			}
			cx := x(m.At)
			cy := float64(rowY + svgBarH/2)
			fmt.Fprintf(&b, `<path d="M%.1f %.1f l4 4 l-4 4 l-4 -4 z" fill="#222"><title>%s %s at %dps</title></path>`+"\n",
				cx, cy-4, svgEscape(m.Element), svgEscape(m.Label), m.At)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// TimelineSVG renders the Figure 10 view: one row per process.
func (t *Trace) TimelineSVG(width int) string {
	if t == nil {
		return ""
	}
	var rows []string
	for _, el := range t.Elements() {
		if strings.HasPrefix(el, "P") && len(el) > 1 && el[1] >= '0' && el[1] <= '9' {
			rows = append(rows, el)
		}
	}
	return t.renderSVG("Process progress over time", rows, width)
}

// ActivitySVG renders the Figure 11 view: every platform element.
func (t *Trace) ActivitySVG(width int) string {
	if t == nil {
		return ""
	}
	return t.renderSVG("Platform element activity", t.Elements(), width)
}

// LegendSVG renders a small legend of the interval colours.
func LegendSVG() string {
	kinds := []Kind{Compute, Transfer, BULoad, BUUnload, BUWait, Overhead}
	var b strings.Builder
	w := 140
	h := len(kinds)*18 + 10
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", w, h)
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for i, k := range kinds {
		y := 6 + i*18
		fmt.Fprintf(&b, `<rect x="6" y="%d" width="14" height="12" fill="%s"/>`+"\n", y, kindFill(k))
		fmt.Fprintf(&b, `<text x="26" y="%d">%s</text>`+"\n", y+10, k)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
