package trace

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Trace {
	t := &Trace{}
	t.AddInterval("P0", Compute, 0, 100, "pkg 1")
	t.AddInterval("P0", Compute, 150, 250, "pkg 2")
	t.AddInterval("P1", Compute, 300, 400, "")
	t.AddInterval("Segment 1", Transfer, 100, 150, "P0->P1")
	t.AddInterval("BU12", BULoad, 100, 150, "")
	t.AddInterval("BU12", BUWait, 150, 160, "")
	t.AddInterval("BU12", BUUnload, 160, 210, "")
	t.AddInterval("CA", Overhead, 90, 100, "grant")
	t.AddMark("P1", "received last package", 400)
	return t
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.AddInterval("x", Compute, 0, 1, "")
	tr.AddMark("x", "y", 0)
	if tr.End() != 0 || tr.Elements() != nil || tr.BusyTime("x") != 0 {
		t.Error("nil trace misbehaves")
	}
	if tr.Timeline() != "" || tr.Gantt(10) != "" || tr.MarksReport() != "" {
		t.Error("nil trace renders content")
	}
	if !strings.HasPrefix(tr.CSV(), "element,") {
		t.Error("nil trace CSV lacks header")
	}
}

func TestEnd(t *testing.T) {
	tr := sample()
	if got := tr.End(); got != 400 {
		t.Errorf("End() = %d", got)
	}
	late := &Trace{}
	late.AddMark("X", "m", 999)
	if got := late.End(); got != 999 {
		t.Errorf("mark-only End() = %d", got)
	}
}

func TestElementsOrdering(t *testing.T) {
	tr := sample()
	els := tr.Elements()
	want := []string{"P0", "P1", "Segment 1", "BU12", "CA"}
	if len(els) != len(want) {
		t.Fatalf("Elements() = %v", els)
	}
	for i := range want {
		if els[i] != want[i] {
			t.Fatalf("Elements() = %v, want %v", els, want)
		}
	}
}

func TestElementsNumericOrder(t *testing.T) {
	tr := &Trace{}
	tr.AddInterval("P10", Compute, 0, 1, "")
	tr.AddInterval("P2", Compute, 0, 1, "")
	tr.AddInterval("P1", Compute, 0, 1, "")
	els := tr.Elements()
	if els[0] != "P1" || els[1] != "P2" || els[2] != "P10" {
		t.Errorf("numeric ordering broken: %v", els)
	}
}

func TestElementIntervalsSorted(t *testing.T) {
	tr := sample()
	ivs := tr.ElementIntervals("P0")
	if len(ivs) != 2 || ivs[0].Start != 0 || ivs[1].Start != 150 {
		t.Errorf("ElementIntervals = %v", ivs)
	}
	if got := tr.ElementIntervals("nope"); got != nil {
		t.Errorf("unknown element intervals = %v", got)
	}
}

func TestBusyTimeMergesOverlaps(t *testing.T) {
	tr := &Trace{}
	tr.AddInterval("X", Compute, 0, 100, "")
	tr.AddInterval("X", Transfer, 50, 150, "") // overlaps
	tr.AddInterval("X", Compute, 200, 300, "")
	if got := tr.BusyTime("X"); got != 250 {
		t.Errorf("BusyTime = %d, want 250", got)
	}
}

func TestTimeline(t *testing.T) {
	s := sample().Timeline()
	if !strings.Contains(s, "P0") || !strings.Contains(s, "start") || !strings.Contains(s, "end") {
		t.Errorf("Timeline:\n%s", s)
	}
	// Only processes appear.
	if strings.Contains(s, "BU12") || strings.Contains(s, "Segment") {
		t.Errorf("Timeline includes non-process rows:\n%s", s)
	}
}

func TestTimelineMarkOnlyProcess(t *testing.T) {
	tr := &Trace{}
	tr.AddMark("P5", "received last package", 12_000_000)
	s := tr.Timeline()
	if !strings.Contains(s, "P5") || !strings.Contains(s, "received last package") {
		t.Errorf("mark-only process missing:\n%s", s)
	}
}

func TestGantt(t *testing.T) {
	s := sample().Gantt(40)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // header + 5 elements
		t.Fatalf("Gantt rows = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "#") || !strings.Contains(s, ".") {
		t.Errorf("Gantt lacks marks:\n%s", s)
	}
	// A P0 row must start busy (interval from 0).
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "P0") {
			if !strings.Contains(l, "#") {
				t.Errorf("P0 row has no busy cells: %q", l)
			}
		}
	}
	if sample().Gantt(0) != "" {
		t.Error("Gantt(0) should be empty")
	}
	if (&Trace{}).Gantt(10) != "" {
		t.Error("empty trace Gantt should be empty")
	}
}

func TestCSV(t *testing.T) {
	s := sample().CSV()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "element,kind,start_ps,end_ps,detail" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 9 { // 8 intervals + header
		t.Errorf("CSV rows = %d", len(lines))
	}
	// Sorted by start time.
	if !strings.HasPrefix(lines[1], "P0,compute,0,") {
		t.Errorf("first row = %q", lines[1])
	}
	// Commas in detail are RFC 4180 quoted and round-trip intact.
	tr := &Trace{}
	tr.AddInterval("X", Compute, 0, 1, "P3->P5 pkg 7/15, retry")
	tr.AddInterval("Y", Transfer, 2, 3, `say "hi"`)
	out := tr.CSV()
	if !strings.Contains(out, `"P3->P5 pkg 7/15, retry"`) {
		t.Errorf("comma detail not quoted:\n%s", out)
	}
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV output unreadable: %v", err)
	}
	if got := recs[1][4]; got != "P3->P5 pkg 7/15, retry" {
		t.Errorf("detail round-trip = %q", got)
	}
	if got := recs[2][4]; got != `say "hi"` {
		t.Errorf("quoted detail round-trip = %q", got)
	}
}

func TestMarksReport(t *testing.T) {
	s := sample().MarksReport()
	if !strings.Contains(s, "P1 received last package at 400ps") {
		t.Errorf("MarksReport:\n%s", s)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Compute: "compute", Transfer: "transfer", BULoad: "bu-load",
		BUUnload: "bu-unload", BUWait: "bu-wait", Overhead: "overhead",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind rendering")
	}
}

func TestJSON(t *testing.T) {
	data, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version   int   `json:"version"`
		EndPs     int64 `json:"end_ps"`
		Intervals []struct {
			Element string `json:"element"`
			Kind    string `json:"kind"`
			StartPs int64  `json:"start_ps"`
			EndPs   int64  `json:"end_ps"`
		} `json:"intervals"`
		Marks []Mark `json:"marks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Version != 1 || doc.EndPs != 400 {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Intervals) != 8 || len(doc.Marks) != 1 {
		t.Errorf("contents = %d intervals, %d marks", len(doc.Intervals), len(doc.Marks))
	}
	for i := 1; i < len(doc.Intervals); i++ {
		if doc.Intervals[i].StartPs < doc.Intervals[i-1].StartPs {
			t.Error("intervals not sorted")
		}
	}
	// Nil trace still produces a valid document.
	var nilTrace *Trace
	data, err = nilTrace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
}

func TestJSONMarksSorted(t *testing.T) {
	tr := &Trace{}
	tr.AddMark("P9", "late", 500)
	tr.AddMark("P2", "early", 100)
	tr.AddMark("P1", "tie-b", 300)
	tr.AddMark("P1", "tie-a", 300)
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Marks []Mark `json:"marks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	want := []Mark{
		{Element: "P2", Label: "early", At: 100},
		{Element: "P1", Label: "tie-a", At: 300},
		{Element: "P1", Label: "tie-b", At: 300},
		{Element: "P9", Label: "late", At: 500},
	}
	for i, m := range want {
		if doc.Marks[i] != m {
			t.Fatalf("marks[%d] = %+v, want %+v (all: %+v)", i, doc.Marks[i], m, doc.Marks)
		}
	}
	// Recording order is untouched — only the export sorts.
	if tr.Marks[0].Label != "late" {
		t.Error("JSON() mutated the trace's mark order")
	}
}
