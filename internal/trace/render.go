package trace

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Timeline renders the progress-on-time view of Figure 10: one line
// per process with its first activity, last activity and any marks,
// expressed in microseconds.
func (t *Trace) Timeline() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, el := range t.Elements() {
		if !strings.HasPrefix(el, "P") {
			continue
		}
		ivs := t.ElementIntervals(el)
		if len(ivs) == 0 {
			for _, m := range t.Marks {
				if m.Element == el {
					fmt.Fprintf(&b, "%-4s %s at %.2fus\n", el, m.Label, float64(m.At)/1e6)
				}
			}
			continue
		}
		start := ivs[0].Start
		end := ivs[0].End
		for _, iv := range ivs[1:] {
			if iv.End > end {
				end = iv.End
			}
		}
		fmt.Fprintf(&b, "%-4s start %10.2fus  end %10.2fus\n", el, float64(start)/1e6, float64(end)/1e6)
	}
	return b.String()
}

// Gantt renders a fixed-width text activity graph (the Figure 11
// view): one row per element, time bucketed into width columns, a '#'
// where the element was busy during the bucket and '.' where idle.
func (t *Trace) Gantt(width int) string {
	if t == nil || width <= 0 {
		return ""
	}
	end := t.End()
	if end == 0 {
		return ""
	}
	bucket := (end + int64(width) - 1) / int64(width)
	if bucket == 0 {
		bucket = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s 0%s%.2fus\n", "", strings.Repeat(" ", width-len(fmt.Sprintf("%.2fus", float64(end)/1e6))), float64(end)/1e6)
	for _, el := range t.Elements() {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range t.ElementIntervals(el) {
			lo := int(iv.Start / bucket)
			hi := int((iv.End - 1) / bucket)
			if iv.End <= iv.Start {
				hi = lo
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-10s %s\n", el, row)
	}
	return b.String()
}

// CSV renders all intervals as RFC 4180 comma-separated records
// (element,kind,start_ps,end_ps,detail), sorted by start time, with a
// header row — suitable for external plotting of Figures 10 and 11.
// Fields containing commas or quotes are quoted, not mangled, so the
// detail strings round-trip through any conformant CSV reader.
func (t *Trace) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write([]string{"element", "kind", "start_ps", "end_ps", "detail"})
	if t != nil {
		ivs := make([]Interval, len(t.Intervals))
		copy(ivs, t.Intervals)
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].Start != ivs[j].Start {
				return ivs[i].Start < ivs[j].Start
			}
			if ivs[i].Element != ivs[j].Element {
				return ivs[i].Element < ivs[j].Element
			}
			return ivs[i].End < ivs[j].End
		})
		for _, iv := range ivs {
			w.Write([]string{
				iv.Element,
				iv.Kind.String(),
				strconv.FormatInt(iv.Start, 10),
				strconv.FormatInt(iv.End, 10),
				iv.Detail,
			})
		}
	}
	w.Flush()
	return b.String()
}

// MarksReport renders the point events, sorted by time, in the style
// of the paper's report lines ("P14 received last package at
// 460435092ps").
func (t *Trace) MarksReport() string {
	if t == nil {
		return ""
	}
	ms := make([]Mark, len(t.Marks))
	copy(ms, t.Marks)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].At != ms[j].At {
			return ms[i].At < ms[j].At
		}
		return ms[i].Element < ms[j].Element
	})
	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "%s %s at %dps\n", m.Element, m.Label, m.At)
	}
	return b.String()
}
