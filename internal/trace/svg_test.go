package trace

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("malformed SVG: %v\n%s", err, svg)
		}
	}
}

func TestTimelineSVG(t *testing.T) {
	tr := sample()
	svg := tr.TimelineSVG(600)
	wellFormed(t, svg)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Only process rows.
	if !strings.Contains(svg, ">P0<") || strings.Contains(svg, ">BU12<") {
		t.Errorf("row selection wrong:\n%s", svg)
	}
	// The mark renders as a diamond with a tooltip.
	if !strings.Contains(svg, "received last package") {
		t.Error("mark missing")
	}
}

func TestActivitySVG(t *testing.T) {
	tr := sample()
	svg := tr.ActivitySVG(800)
	wellFormed(t, svg)
	for _, el := range []string{">P0<", ">BU12<", ">Segment 1<", ">CA<"} {
		if !strings.Contains(svg, el) {
			t.Errorf("activity SVG missing row %s", el)
		}
	}
	// One rect per interval plus background and row guides; at least
	// the 8 interval rects must be present.
	if got := strings.Count(svg, "<rect"); got < 9 {
		t.Errorf("only %d rects", got)
	}
}

func TestSVGEdgeCases(t *testing.T) {
	var nilTrace *Trace
	if nilTrace.TimelineSVG(600) != "" || nilTrace.ActivitySVG(600) != "" {
		t.Error("nil trace rendered")
	}
	empty := &Trace{}
	if empty.TimelineSVG(600) != "" {
		t.Error("empty trace rendered")
	}
	tr := sample()
	if tr.TimelineSVG(10) != "" {
		t.Error("degenerate width rendered")
	}
}

func TestSVGEscapesNames(t *testing.T) {
	tr := &Trace{}
	tr.AddInterval(`P1`, Compute, 0, 10, `a<b>&"c"`)
	svg := tr.ActivitySVG(400)
	wellFormed(t, svg)
	if strings.Contains(svg, `a<b>`) {
		t.Error("detail not escaped")
	}
}

func TestLegendSVG(t *testing.T) {
	svg := LegendSVG()
	wellFormed(t, svg)
	for _, k := range []string{"compute", "transfer", "bu-wait"} {
		if !strings.Contains(svg, k) {
			t.Errorf("legend missing %s", k)
		}
	}
}

func TestAxisTicks(t *testing.T) {
	ticks := axisTicks(490_000_000) // 490 us
	if len(ticks) < 3 || len(ticks) > 10 {
		t.Errorf("tick count = %d: %v", len(ticks), ticks)
	}
	if ticks[0] != 0 {
		t.Error("axis must start at zero")
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Error("ticks not increasing")
		}
	}
	if axisTicks(0) != nil {
		t.Error("zero-length axis has ticks")
	}
}
