package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// chromeEvent mirrors the trace-event fields every Chrome/Perfetto
// loader requires; the schema test below validates each emitted event
// against the format's rules for its phase.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    *int64         `json:"ts"`
	Dur   *int64         `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

func decodePerfetto(t *testing.T, data []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents key missing")
	}
	return doc.TraceEvents
}

// TestPerfettoSchema validates every emitted event against the
// Chrome trace-event format rules.
func TestPerfettoSchema(t *testing.T) {
	data, err := sample().Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	evs := decodePerfetto(t, data)
	var meta, complete, instant int
	for _, ev := range evs {
		if ev.Pid != 1 || ev.Tid < 1 {
			t.Errorf("event %q has bad pid/tid %d/%d", ev.Name, ev.Pid, ev.Tid)
		}
		switch ev.Phase {
		case "M":
			meta++
			if ev.Name != "thread_name" && ev.Name != "thread_sort_index" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
			if ev.Args == nil {
				t.Errorf("metadata event %q lacks args", ev.Name)
			}
		case "X":
			complete++
			if ev.Ts == nil || ev.Dur == nil {
				t.Errorf("complete event %q lacks ts/dur", ev.Name)
			} else if *ev.Dur < 0 {
				t.Errorf("complete event %q has negative dur", ev.Name)
			}
		case "i":
			instant++
			if ev.Ts == nil {
				t.Errorf("instant event %q lacks ts", ev.Name)
			}
			if ev.Scope != "t" {
				t.Errorf("instant event %q scope = %q", ev.Name, ev.Scope)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	// sample(): 5 elements × 2 metadata, 8 intervals, 1 mark.
	if meta != 10 || complete != 8 || instant != 1 {
		t.Errorf("event counts = %d meta, %d complete, %d instant", meta, complete, instant)
	}
	// Thread names cover all elements of the trace.
	names := map[string]bool{}
	for _, ev := range evs {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			names[ev.Args["name"].(string)] = true
		}
	}
	for _, el := range sample().Elements() {
		if !names[el] {
			t.Errorf("element %s has no thread_name metadata", el)
		}
	}
}

// TestPerfettoGolden pins the export byte for byte. Regenerate after a
// deliberate format change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/trace -run TestPerfettoGolden
func TestPerfettoGolden(t *testing.T) {
	const golden = "testdata/sample-perfetto.json"
	got, err := sample().Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("%s is stale: rerun with UPDATE_GOLDEN=1", golden)
	}
}

func TestPerfettoNilAndEmpty(t *testing.T) {
	var nilTrace *Trace
	for _, tr := range []*Trace{nilTrace, {}} {
		data, err := tr.Perfetto()
		if err != nil {
			t.Fatal(err)
		}
		if evs := decodePerfetto(t, data); len(evs) != 0 {
			t.Errorf("empty trace produced %d events", len(evs))
		}
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	a, err := sample().Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sample().Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("Perfetto output differs across identical traces")
	}
}
