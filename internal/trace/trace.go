// Package trace records and renders execution traces of an emulation
// run: per-process start/end marks (the paper's Figure 10 progress
// timeline) and per-element busy intervals (the Figure 11 activity
// graph).
//
// The emulator appends to a Trace while it runs; renderers turn the
// collected data into text timelines, text activity graphs and CSV for
// external plotting. Recording is optional — a nil *Trace is a valid
// no-op sink — so benchmark runs pay nothing for it.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a recorded interval.
type Kind int

// Interval kinds.
const (
	Compute  Kind = iota // FU processing (C ticks per package)
	Transfer             // bus occupancy on a segment
	BULoad               // package streaming into a border unit
	BUUnload             // package streaming out of a border unit
	BUWait               // loaded package waiting for the next segment's grant
	Overhead             // refined-model overhead (sync, grant, CA set/reset)
	Stage                // serving-stack request stage (internal/obs/reqtrace)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Transfer:
		return "transfer"
	case BULoad:
		return "bu-load"
	case BUUnload:
		return "bu-unload"
	case BUWait:
		return "bu-wait"
	case Overhead:
		return "overhead"
	case Stage:
		return "stage"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Interval is one busy period of one platform element. Times are
// picoseconds from the start of the emulation.
type Interval struct {
	Element string // "P3", "Segment 2", "BU12", "CA"
	Kind    Kind
	Start   int64
	End     int64
	Detail  string // free-form, e.g. "P3->P5 pkg 7/15"
}

// Mark is a point event, e.g. "P14 received last package".
type Mark struct {
	Element string
	Label   string
	At      int64
}

// Trace accumulates intervals and marks. The zero value is ready to
// use. A nil *Trace discards everything, so call sites never need to
// branch on whether tracing is enabled.
type Trace struct {
	Intervals []Interval
	Marks     []Mark
}

// Enabled reports whether this trace records anything. Hot paths with
// costly label construction (fmt.Sprintf per interval) branch on it
// so a disabled trace skips the formatting work entirely — the nil
// receiver already discards the append, but the arguments would still
// be evaluated at the call site.
func (t *Trace) Enabled() bool { return t != nil }

// AddInterval records a busy interval. No-op on a nil receiver.
func (t *Trace) AddInterval(element string, kind Kind, start, end int64, detail string) {
	if t == nil {
		return
	}
	t.Intervals = append(t.Intervals, Interval{Element: element, Kind: kind, Start: start, End: end, Detail: detail})
}

// AddMark records a point event. No-op on a nil receiver.
func (t *Trace) AddMark(element, label string, at int64) {
	if t == nil {
		return
	}
	t.Marks = append(t.Marks, Mark{Element: element, Label: label, At: at})
}

// End returns the latest end time across intervals and marks (zero for
// an empty trace).
func (t *Trace) End() int64 {
	if t == nil {
		return 0
	}
	var end int64
	for _, iv := range t.Intervals {
		if iv.End > end {
			end = iv.End
		}
	}
	for _, m := range t.Marks {
		if m.At > end {
			end = m.At
		}
	}
	return end
}

// Elements returns the distinct element names appearing in the trace,
// sorted with processes first (numerically), then segments, then BUs,
// then everything else alphabetically.
func (t *Trace) Elements() []string {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, iv := range t.Intervals {
		if !seen[iv.Element] {
			seen[iv.Element] = true
			out = append(out, iv.Element)
		}
	}
	for _, m := range t.Marks {
		if !seen[m.Element] {
			seen[m.Element] = true
			out = append(out, m.Element)
		}
	}
	sort.Slice(out, func(i, j int) bool { return elementLess(out[i], out[j]) })
	return out
}

// elementLess orders element names for display: P* numerically, then
// Segment *, then BU*, then the rest.
func elementLess(a, b string) bool {
	ra, rb := elementRank(a), elementRank(b)
	if ra != rb {
		return ra < rb
	}
	na, oka := trailingNumber(a)
	nb, okb := trailingNumber(b)
	if oka && okb && na != nb {
		return na < nb
	}
	return a < b
}

func elementRank(s string) int {
	switch {
	case strings.HasPrefix(s, "P") && len(s) > 1 && s[1] >= '0' && s[1] <= '9':
		return 0
	case strings.HasPrefix(s, "Segment"):
		return 1
	case strings.HasPrefix(s, "SA"):
		return 2
	case strings.HasPrefix(s, "BU"):
		return 3
	case s == "CA":
		return 4
	}
	return 5
}

func trailingNumber(s string) (int, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return 0, false
	}
	n := 0
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ElementIntervals returns the intervals of one element, sorted by
// start time.
func (t *Trace) ElementIntervals(element string) []Interval {
	if t == nil {
		return nil
	}
	var out []Interval
	for _, iv := range t.Intervals {
		if iv.Element == element {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// BusyTime returns the total busy picoseconds of one element
// (overlapping intervals are merged before summing).
func (t *Trace) BusyTime(element string) int64 {
	ivs := t.ElementIntervals(element)
	var busy int64
	var curStart, curEnd int64 = -1, -1
	for _, iv := range ivs {
		if curStart < 0 {
			curStart, curEnd = iv.Start, iv.End
			continue
		}
		if iv.Start <= curEnd {
			if iv.End > curEnd {
				curEnd = iv.End
			}
			continue
		}
		busy += curEnd - curStart
		curStart, curEnd = iv.Start, iv.End
	}
	if curStart >= 0 {
		busy += curEnd - curStart
	}
	return busy
}
