package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Perfetto export: the trace rendered as Chrome trace-event JSON
// (the "JSON Array Format" with an object wrapper), loadable in
// ui.perfetto.dev or chrome://tracing.
//
// Mapping:
//
//   - every platform element ("P3", "Segment 2", "BU12", "CA") becomes
//     a thread of one process, named via ph:"M" thread_name metadata
//     events, ordered like the text renderings (processes first, then
//     segments, SAs, BUs, CA);
//   - every Interval becomes a ph:"X" complete event whose name is the
//     interval Kind, with the Detail string under args;
//   - every Mark becomes a ph:"i" thread-scoped instant event.
//
// Trace-event timestamps are microseconds; the emulator's picosecond
// times are exported at a 1 ps = 1 µs scale so sub-microsecond
// platform activity stays visible (the viewer's absolute units are
// then meaningless, but proportions and labels are exact). The real
// picosecond figures ride along in args.

// perfettoDoc is the JSON Object Format wrapper.
type perfettoDoc struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// perfettoEvent is one trace event. Fields cover the three phases we
// emit (X, M, i); encoding/json drops the unused ones per event.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    *int64         `json:"ts,omitempty"`
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// emulationPid is the single trace-event process all elements live in.
const emulationPid = 1

// Perfetto renders the trace as Chrome trace-event JSON. The output is
// deterministic: elements get stable thread ids in display order, and
// events are sorted by (time, element, end).
func (t *Trace) Perfetto() ([]byte, error) {
	doc := perfettoDoc{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ms"}

	if t != nil {
		tids := make(map[string]int)
		for i, el := range t.Elements() {
			tid := i + 1
			tids[el] = tid
			doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
				Name:  "thread_name",
				Phase: "M",
				Pid:   emulationPid,
				Tid:   tid,
				Args:  map[string]any{"name": el},
			})
			doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
				Name:  "thread_sort_index",
				Phase: "M",
				Pid:   emulationPid,
				Tid:   tid,
				Args:  map[string]any{"sort_index": tid},
			})
		}

		ivs := make([]Interval, len(t.Intervals))
		copy(ivs, t.Intervals)
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].Start != ivs[j].Start {
				return ivs[i].Start < ivs[j].Start
			}
			if ivs[i].Element != ivs[j].Element {
				return ivs[i].Element < ivs[j].Element
			}
			return ivs[i].End < ivs[j].End
		})
		for _, iv := range ivs {
			ts, dur := iv.Start, iv.End-iv.Start
			ev := perfettoEvent{
				Name:  iv.Kind.String(),
				Phase: "X",
				Ts:    &ts,
				Dur:   &dur,
				Pid:   emulationPid,
				Tid:   tids[iv.Element],
				Args: map[string]any{
					"start_ps": iv.Start,
					"end_ps":   iv.End,
				},
			}
			if iv.Detail != "" {
				ev.Args["detail"] = iv.Detail
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}

		marks := make([]Mark, len(t.Marks))
		copy(marks, t.Marks)
		sort.Slice(marks, func(i, j int) bool {
			if marks[i].At != marks[j].At {
				return marks[i].At < marks[j].At
			}
			if marks[i].Element != marks[j].Element {
				return marks[i].Element < marks[j].Element
			}
			return marks[i].Label < marks[j].Label
		})
		for _, m := range marks {
			at := m.At
			doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
				Name:  m.Label,
				Phase: "i",
				Ts:    &at,
				Pid:   emulationPid,
				Tid:   tids[m.Element],
				Scope: "t",
				Args:  map[string]any{"at_ps": m.At},
			})
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: encoding Perfetto JSON: %w", err)
	}
	return data, nil
}
