package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// jsonDoc is the JSON export shape: a stable, versioned structure for
// external tooling.
type jsonDoc struct {
	Version   int            `json:"version"`
	EndPs     int64          `json:"end_ps"`
	Intervals []jsonInterval `json:"intervals"`
	Marks     []Mark         `json:"marks"`
}

type jsonInterval struct {
	Element string `json:"element"`
	Kind    string `json:"kind"`
	StartPs int64  `json:"start_ps"`
	EndPs   int64  `json:"end_ps"`
	Detail  string `json:"detail,omitempty"`
}

// JSON renders the trace as a versioned JSON document, intervals
// sorted by start time, for consumption by external plotting or
// analysis tools.
func (t *Trace) JSON() ([]byte, error) {
	doc := jsonDoc{Version: 1}
	if t != nil {
		doc.EndPs = t.End()
		ivs := make([]Interval, len(t.Intervals))
		copy(ivs, t.Intervals)
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].Start != ivs[j].Start {
				return ivs[i].Start < ivs[j].Start
			}
			if ivs[i].Element != ivs[j].Element {
				return ivs[i].Element < ivs[j].Element
			}
			return ivs[i].End < ivs[j].End
		})
		doc.Intervals = make([]jsonInterval, 0, len(ivs))
		for _, iv := range ivs {
			doc.Intervals = append(doc.Intervals, jsonInterval{
				Element: iv.Element,
				Kind:    iv.Kind.String(),
				StartPs: iv.Start,
				EndPs:   iv.End,
				Detail:  iv.Detail,
			})
		}
		doc.Marks = append(doc.Marks, t.Marks...)
		sort.Slice(doc.Marks, func(i, j int) bool {
			if doc.Marks[i].At != doc.Marks[j].At {
				return doc.Marks[i].At < doc.Marks[j].At
			}
			if doc.Marks[i].Element != doc.Marks[j].Element {
				return doc.Marks[i].Element < doc.Marks[j].Element
			}
			return doc.Marks[i].Label < doc.Marks[j].Label
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: encoding JSON: %w", err)
	}
	return data, nil
}
