package report

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/power"
	"segbus/internal/trace"
)

func render(t *testing.T, withEnergy bool) string {
	t.Helper()
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	tr := &trace.Trace{}
	r, err := emulator.Run(m, p, emulator.Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Title: "MP3 on 3 segments", Model: m, Platform: p, Report: r, Trace: tr}
	if withEnergy {
		en, err := power.Estimate(m, p, r, power.Params{})
		if err != nil {
			t.Fatal(err)
		}
		in.Energy = en
	}
	html, err := Render(in)
	if err != nil {
		t.Fatal(err)
	}
	return html
}

func TestRenderComplete(t *testing.T) {
	html := render(t, true)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"MP3 on 3 segments",
		"mp3-decoder",
		"estimated execution time",
		"CA TCT = 54433",
		"Border-unit analysis",
		"Element utilisation",
		"Schedule stages",
		"Energy breakdown",
		"Process progress timeline",
		"<svg",
		"</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Both figures plus the legend.
	if got := strings.Count(html, "<svg"); got != 3 {
		t.Errorf("embedded SVGs = %d, want 3", got)
	}
}

func TestRenderWithoutEnergy(t *testing.T) {
	html := render(t, false)
	if strings.Contains(html, "Energy breakdown") {
		t.Error("energy section rendered without data")
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Input{}); err == nil {
		t.Error("empty input accepted")
	}
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	r, err := emulator.Run(m, p, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Render(Input{Model: m, Platform: p, Report: r}); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestRenderEscapesModelName(t *testing.T) {
	m := apps.MP3Model() // name without special chars; build one with
	tr := &trace.Trace{}
	p := apps.MP3Platform3(36)
	r, err := emulator.Run(m, p, emulator.Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	html, err := Render(Input{
		Title:    `<script>alert("x")</script>`,
		Model:    m,
		Platform: p,
		Report:   r,
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, `<script>alert`) {
		t.Error("title not escaped")
	}
}
