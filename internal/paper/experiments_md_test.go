package paper

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// renderMarkdownBody mirrors cmd/segbus-bench -markdown.
func renderMarkdownBody(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, e := range All() {
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(&b, "### %s — %s\n\n", res.ID, res.Title)
		fmt.Fprintln(&b, "| Metric | Paper | Measured | OK |")
		fmt.Fprintln(&b, "|---|---|---|---|")
		for _, row := range res.Rows {
			ok := "yes"
			if !row.OK {
				ok = "**NO**"
			}
			metric := row.Metric
			if row.Note != "" {
				metric += " (" + row.Note + ")"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n",
				strings.ReplaceAll(metric, "|", "\\|"),
				strings.ReplaceAll(row.Paper, "|", "\\|"),
				strings.ReplaceAll(row.Measured, "|", "\\|"), ok)
		}
		if res.Text != "" {
			text := res.Text
			if !strings.HasSuffix(text, "\n") {
				text += "\n"
			}
			fmt.Fprintf(&b, "\n```\n%s```\n", text)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// TestExperimentsMDCurrent keeps the checked-in EXPERIMENTS.md in sync
// with what the experiments actually produce. Regenerate with:
//
//	go run ./cmd/segbus-bench -markdown
//
// (keeping the hand-written preamble above the first "### E1").
func TestExperimentsMDCurrent(t *testing.T) {
	data, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	idx := strings.Index(doc, "### E1")
	if idx < 0 {
		t.Fatal("EXPERIMENTS.md has no experiment sections")
	}
	checked := doc[idx:]
	want := renderMarkdownBody(t)
	if strings.TrimRight(checked, "\n") != strings.TrimRight(want, "\n") {
		t.Error("EXPERIMENTS.md is stale; regenerate its body with `go run ./cmd/segbus-bench -markdown`")
	}
}
