package paper

import (
	"fmt"
	"strings"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/place"
	"segbus/internal/psdf"
	"segbus/internal/realplat"
	"segbus/internal/stats"
	"segbus/internal/trace"
)

// RunE1 regenerates the Figure 8 communication matrix from the PSDF
// model and checks it entry-for-entry against the published matrix.
func RunE1() (*Result, error) {
	m := apps.MP3Model()
	got := m.CommunicationMatrix()
	want := apps.MP3CommMatrixFigure8()
	res := &Result{ID: "E1", Title: "Figure 8: communication matrix"}
	res.Rows = append(res.Rows,
		intRow("matrix dimension", want.Size(), got.Size()),
		intRow("total data items", want.Total(), got.Total()),
		boolRow("all 225 entries equal Figure 8", "exact", fmt.Sprintf("equal=%v", got.Equal(want)), got.Equal(want)),
	)
	res.Text = got.String()
	return res, nil
}

// RunE2 solves the placement for two and three segments and compares
// the optimizer's hop-weighted inter-segment traffic against the
// paper's Figure 9 allocations.
func RunE2() (*Result, error) {
	m := apps.MP3Model()
	cm := m.CommunicationMatrix()
	res := &Result{ID: "E2", Title: "Figure 9: process allocations"}

	p2 := figure9TwoSeg()
	p3 := figure9ThreeSeg()

	opt2, err := place.Solve(cm, 2, place.Options{})
	if err != nil {
		return nil, err
	}
	opt3, err := place.Solve(cm, 3, place.Options{})
	if err != nil {
		return nil, err
	}

	score2paper, score3paper := place.Score(cm, p2), place.Score(cm, p3)
	score2opt, score3opt := place.Score(cm, opt2), place.Score(cm, opt3)
	res.Rows = append(res.Rows,
		boolRow("2-seg optimizer score <= Figure 9 score",
			fmt.Sprintf("<= %d", score2paper), fmt.Sprintf("%d", score2opt), score2opt <= score2paper),
		boolRow("3-seg optimizer score <= Figure 9 score",
			fmt.Sprintf("<= %d", score3paper), fmt.Sprintf("%d", score3opt), score3opt <= score3paper),
		boolRow("3-seg Figure 9 hop-weighted crossing items",
			"1224 (540+540+36+72+36)", fmt.Sprintf("%d", place.Cost(cm, p3)), place.Cost(cm, p3) == 1224),
		boolRow("optimizer allocations valid", "yes",
			fmt.Sprintf("%v/%v", opt2.Valid(), opt3.Valid()), opt2.Valid() && opt3.Valid()),
	)
	res.Text = fmt.Sprintf("paper 2-seg: %s (score %d, cross %d)\noptimizer:   %s (score %d, cross %d)\npaper 3-seg: %s (score %d, cross %d)\noptimizer:   %s (score %d, cross %d)\n",
		p2, score2paper, place.Cost(cm, p2), opt2, score2opt, place.Cost(cm, opt2),
		p3, score3paper, place.Cost(cm, p3), opt3, score3opt, place.Cost(cm, opt3))
	return res, nil
}

// figure9TwoSeg returns the two-segment allocation of Figure 9:
// {4,5,6,7,10,11,12,13,14} || {0,1,2,3,8,9}.
func figure9TwoSeg() place.Allocation {
	a := place.Allocation{Segments: 2, Of: make(map[psdf.ProcessID]int)}
	for _, p := range []psdf.ProcessID{4, 5, 6, 7, 10, 11, 12, 13, 14} {
		a.Of[p] = 0
	}
	for _, p := range []psdf.ProcessID{0, 1, 2, 3, 8, 9} {
		a.Of[p] = 1
	}
	return a
}

// figure9ThreeSeg returns the three-segment allocation of Figure 9:
// {0,1,2,3,8,9,10} || {5,6,7,11,12,13,14} || {4}.
func figure9ThreeSeg() place.Allocation {
	a := place.Allocation{Segments: 3, Of: make(map[psdf.ProcessID]int)}
	for _, p := range []psdf.ProcessID{0, 1, 2, 3, 8, 9, 10} {
		a.Of[p] = 0
	}
	for _, p := range []psdf.ProcessID{5, 6, 7, 11, 12, 13, 14} {
		a.Of[p] = 1
	}
	a.Of[4] = 2
	return a
}

// RunE3 reproduces the published three-segment emulation report.
func RunE3() (*Result, error) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(apps.MP3PackageSize)
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "E3", Title: "Section 4 results block: 3-segment emulation"}
	bu12, bu23 := r.BU("BU12"), r.BU("BU23")
	res.Rows = append(res.Rows,
		usRow("estimated execution time", PaperEstimatedUs36, float64(r.ExecutionTimePs)/1e6, PaperTimingBandRatio),
		usRow("CA TCT (ticks, scaled as us @111MHz)", float64(PaperCATCT36)*0.009009, float64(r.CA.TCT)*0.009009, PaperTimingBandRatio),
		intRow("BU12 input packages", PaperBU12Packages, bu12.InPackages),
		intRow("BU12 output packages", PaperBU12Packages, bu12.OutPackages),
		intRow("BU12 received from segment 1", PaperBU12Packages, bu12.RecvFromLeft),
		intRow("BU12 transfered to segment 2", PaperBU12Packages, bu12.SentToRight),
		int64Row("BU12 TCT", PaperTCT12, bu12.TCT),
		intRow("BU23 received from segment 2", PaperBU23PerSide, bu23.RecvFromLeft),
		intRow("BU23 transfered to segment 3", PaperBU23PerSide, bu23.SentToRight),
		intRow("BU23 received from segment 3", PaperBU23PerSide, bu23.RecvFromRight),
		intRow("BU23 transfered to segment 2", PaperBU23PerSide, bu23.SentToLeft),
		int64Row("BU23 TCT", PaperTCT23, bu23.TCT),
		intRow("segment 1 packets to right", PaperSeg1ToRight, r.Segments[0].ToRight),
		intRow("segment 2 packets to left/right", 0, r.Segments[1].ToLeft+r.Segments[1].ToRight),
		intRow("segment 3 packets to left", PaperSeg3ToLeft, r.Segments[2].ToLeft),
		intRow("SA1 inter-segment requests", PaperSA1InterReq, r.SA(1).InterRequests),
		intRow("SA2 inter-segment requests", PaperSA2InterReq, r.SA(2).InterRequests),
		intRow("SA3 inter-segment requests", PaperSA3InterReq, r.SA(3).InterRequests),
	)
	res.Text = r.String()
	return res, nil
}

// RunE4 regenerates the Figure 10 per-process progress timeline and
// checks its qualitative shape: P0 finishes first (around 75 us), the
// two channel pipelines follow, and P14 receives the final package
// last.
func RunE4() (*Result, error) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(apps.MP3PackageSize)
	tr := &trace.Trace{}
	r, err := emulator.Run(m, plat, emulator.Config{Trace: tr})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "E4", Title: "Figure 10: process progress timeline"}

	p0 := r.Process(0)
	p14 := r.Process(14)
	firstEnd := p0.EndPs
	for _, ps := range r.Processes {
		if ps.SentPackages > 0 && ps.EndPs < firstEnd {
			firstEnd = ps.EndPs
		}
	}
	lastEvent := r.EndPs
	res.Rows = append(res.Rows,
		usRow("P0 end time", PaperP0EndUs, float64(p0.EndPs)/1e6, PaperTimingBandRatio),
		usRow("P14 received last package", PaperP14LastRecvUs, float64(p14.LastReceivePs)/1e6, PaperTimingBandRatio),
		boolRow("P0 is the first process to finish", "yes",
			fmt.Sprintf("first end = %v, P0 end = %v", firstEnd, p0.EndPs), firstEnd == p0.EndPs),
		boolRow("P14's last receive ends the run", "yes",
			fmt.Sprintf("last event = %v", lastEvent), p14.LastReceivePs == lastEvent),
		boolRow("P8 starts when P0's flows complete", "~75us",
			fmt.Sprintf("%.2fus", float64(r.Process(8).StartPs)/1e6),
			int64(r.Process(8).StartPs) >= int64(p0.EndPs)-2e6 && int64(r.Process(8).StartPs) <= int64(p0.EndPs)+8e6),
	)
	res.Text = tr.Timeline()
	return res, nil
}

// RunE5 regenerates the Figure 11 activity graphs for package sizes 18
// and 36 and checks the headline relation: the 18-item run is longer.
func RunE5() (*Result, error) {
	m := apps.MP3Model()
	res := &Result{ID: "E5", Title: "Figure 11: activity graph, package sizes 18 and 36"}

	tr36 := &trace.Trace{}
	r36, err := emulator.Run(m, apps.MP3Platform3(36), emulator.Config{Trace: tr36})
	if err != nil {
		return nil, err
	}
	tr18 := &trace.Trace{}
	r18, err := emulator.Run(m, apps.MP3Platform3(18), emulator.Config{Trace: tr18})
	if err != nil {
		return nil, err
	}
	ratio := float64(r18.ExecutionTimePs) / float64(r36.ExecutionTimePs)
	res.Rows = append(res.Rows,
		usRow("execution time, s=36", PaperEstimatedUs36, float64(r36.ExecutionTimePs)/1e6, PaperTimingBandRatio),
		usRow("execution time, s=18", PaperEstimatedUs18, float64(r18.ExecutionTimePs)/1e6, PaperTimingBandRatio),
		boolRow("smaller packages run longer", "560.16/489.79 = 1.14x",
			fmt.Sprintf("%.2fx", ratio), ratio > 1.0 && ratio < 1.35),
	)
	var b strings.Builder
	b.WriteString("activity, s=36:\n")
	b.WriteString(tr36.Gantt(96))
	b.WriteString("\nactivity, s=18:\n")
	b.WriteString(tr18.Gantt(96))
	res.Text = b.String()
	return res, nil
}

// runAccuracy executes one estimation-versus-refined comparison.
func runAccuracy(id, title, label string, packageSize int, moveP9 bool,
	paperEst, paperAct, paperAcc float64) (*Result, error) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(packageSize)
	if moveP9 {
		plat = apps.MP3Platform3MovedP9(packageSize)
	}
	est, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		return nil, err
	}
	act, err := realplat.Run(m, plat, realplat.Config{})
	if err != nil {
		return nil, err
	}
	acc := stats.Compare(label, est, act)
	res := &Result{ID: id, Title: title}
	res.Rows = append(res.Rows,
		usRow("estimated execution time", paperEst, float64(acc.EstimatedPs)/1e6, PaperTimingBandRatio),
		usRow("actual (refined model) execution time", paperAct, float64(acc.ActualPs)/1e6, PaperTimingBandRatio),
		boolRow("estimate below actual", "yes",
			fmt.Sprintf("%v", acc.EstimatedPs < acc.ActualPs), acc.EstimatedPs < acc.ActualPs),
		boolRow("accuracy", fmt.Sprintf("~%.0f%%", paperAcc),
			fmt.Sprintf("%.1f%%", acc.Percent()), acc.Percent() >= paperAcc-3 && acc.Percent() <= paperAcc+4),
	)
	res.Text = acc.String() + "\n"
	return res, nil
}

// RunE6 reproduces the package-size-36 accuracy experiment.
func RunE6() (*Result, error) {
	return runAccuracy("E6", "Accuracy, 3 segments, package size 36",
		"3seg/s36", 36, false, PaperEstimatedUs36, PaperActualUs36, PaperAccuracyRef36)
}

// RunE7 reproduces the package-size-18 accuracy experiment and the
// paper's claim that smaller packages lower the accuracy.
func RunE7() (*Result, error) {
	res, err := runAccuracy("E7", "Accuracy, 3 segments, package size 18",
		"3seg/s18", 18, false, PaperEstimatedUs18, PaperActualUs18, PaperAccuracyRef18)
	if err != nil {
		return nil, err
	}
	acc36, err := accuracyOf(36, false)
	if err != nil {
		return nil, err
	}
	acc18, err := accuracyOf(18, false)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, boolRow("error grows as packages shrink", "93% < 95%",
		fmt.Sprintf("%.1f%% < %.1f%%", acc18.Percent(), acc36.Percent()),
		acc18.Percent() < acc36.Percent()))
	return res, nil
}

// RunE8 reproduces the moved-P9 accuracy experiment: the worse
// placement is slower, and the accuracy returns to the ~95% band.
func RunE8() (*Result, error) {
	res, err := runAccuracy("E8", "Accuracy, P9 moved to segment 3",
		"3seg/s36/p9@3", 36, true, PaperEstimatedUsP9, PaperActualUsP9, PaperAccuracyRefP9)
	if err != nil {
		return nil, err
	}
	base, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		return nil, err
	}
	moved, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3MovedP9(36), emulator.Config{})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, boolRow("moving P9 off its traffic slows the run", "540.4 > 489.79",
		fmt.Sprintf("%.2fus > %.2fus", float64(moved.ExecutionTimePs)/1e6, float64(base.ExecutionTimePs)/1e6),
		moved.ExecutionTimePs > base.ExecutionTimePs))
	return res, nil
}

func accuracyOf(packageSize int, moveP9 bool) (stats.Accuracy, error) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(packageSize)
	if moveP9 {
		plat = apps.MP3Platform3MovedP9(packageSize)
	}
	est, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		return stats.Accuracy{}, err
	}
	act, err := realplat.Run(m, plat, realplat.Config{})
	if err != nil {
		return stats.Accuracy{}, err
	}
	return stats.Compare("", est, act), nil
}

// RunE9 reproduces the border-unit useful-period / waiting-period
// analysis of section 4 (UP12=2304, TCT12=2336, mean WP 1; UP23=144,
// TCT23=146, mean WP 1).
func RunE9() (*Result, error) {
	m := apps.MP3Model()
	r, err := emulator.Run(m, apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		return nil, err
	}
	as := stats.AnalyzeBUs(r)
	res := &Result{ID: "E9", Title: "Border-unit UP/WP analysis"}
	var a12, a23 *stats.BUAnalysis
	for i := range as {
		switch as[i].Name {
		case "BU12":
			a12 = &as[i]
		case "BU23":
			a23 = &as[i]
		}
	}
	if a12 == nil || a23 == nil {
		return nil, fmt.Errorf("paper: missing BU analyses")
	}
	res.Rows = append(res.Rows,
		int64Row("UP12", PaperUP12, a12.UP),
		int64Row("TCT12", PaperTCT12, a12.TCT),
		boolRow("mean WP12", "1", fmt.Sprintf("%.1f", a12.MeanWP), a12.MeanWP >= 0 && a12.MeanWP <= 3),
		int64Row("UP23", PaperUP23, a23.UP),
		int64Row("TCT23", PaperTCT23, a23.TCT),
		boolRow("mean WP23", "1", fmt.Sprintf("%.1f", a23.MeanWP), a23.MeanWP >= 0 && a23.MeanWP <= 3),
	)
	res.Text = stats.BUTable(as)
	return res, nil
}

// RunE10 emulates the one-, two- and three-segment configurations (the
// paper mentions all three but prints only the third) and produces the
// designer-facing ranking.
func RunE10() (*Result, error) {
	m := apps.MP3Model()
	res := &Result{ID: "E10", Title: "One/two/three segment configuration sweep"}
	var rows []stats.ConfigResult
	r1, err := emulator.Run(m, apps.MP3Platform1(36), emulator.Config{})
	if err != nil {
		return nil, err
	}
	r2, err := emulator.Run(m, apps.MP3Platform2(36), emulator.Config{})
	if err != nil {
		return nil, err
	}
	r3, err := emulator.Run(m, apps.MP3Platform3(36), emulator.Config{})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		stats.RowFromReport("1-segment", r1),
		stats.RowFromReport("2-segment", r2),
		stats.RowFromReport("3-segment", r3),
	)
	res.Rows = append(res.Rows,
		intRow("1-segment inter-segment packages", 0, interPkgs(r1)),
		boolRow("every configuration completes", "yes", "yes", true),
		boolRow("3-segment run produced", "489.79us",
			fmt.Sprintf("%.2fus", float64(r3.ExecutionTimePs)/1e6), true),
	)
	res.Text = stats.RankTable(rows)
	return res, nil
}

func interPkgs(r *emulator.Report) int {
	n := 0
	for _, s := range r.Segments {
		n += s.ToLeft + s.ToRight
	}
	return n
}
