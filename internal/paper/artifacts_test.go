package paper

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	written, err := WriteArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 10 experiment reports + 6 figure files.
	if len(written) != 16 {
		t.Errorf("wrote %d files, want 16: %v", len(written), written)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BU12 TCT") {
		t.Error("E3 report content wrong")
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig11_s36.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Error("figure is not SVG")
	}
}

func TestWriteArtifactsBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "a-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteArtifacts(filepath.Join(file, "sub")); err == nil {
		t.Error("unwritable directory accepted")
	}
}
