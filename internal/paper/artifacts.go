package paper

import (
	"fmt"
	"os"
	"path/filepath"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/trace"
)

// WriteArtifacts regenerates the paper's figures as files in dir:
//
//	E<n>.txt        the comparison table and detail of each experiment
//	fig10.svg/.csv  the process progress timeline (3 segments, s=36)
//	fig11_s36.svg   the activity graph at package size 36
//	fig11_s18.svg   the activity graph at package size 18
//	legend.svg      the interval colour legend
//
// It returns the list of written paths.
func WriteArtifacts(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, data []byte) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	for _, e := range All() {
		res, err := e.Run()
		if err != nil {
			return written, fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := write(e.ID+".txt", []byte(res.String())); err != nil {
			return written, err
		}
	}

	m := apps.MP3Model()
	tr36 := &trace.Trace{}
	if _, err := emulator.Run(m, apps.MP3Platform3(36), emulator.Config{Trace: tr36}); err != nil {
		return written, err
	}
	tr18 := &trace.Trace{}
	if _, err := emulator.Run(m, apps.MP3Platform3(18), emulator.Config{Trace: tr18}); err != nil {
		return written, err
	}
	files := map[string][]byte{
		"fig10.svg":     []byte(tr36.TimelineSVG(900)),
		"fig10.csv":     []byte(tr36.CSV()),
		"fig11_s36.svg": []byte(tr36.ActivitySVG(900)),
		"fig11_s18.svg": []byte(tr18.ActivitySVG(900)),
		"fig11_s18.csv": []byte(tr18.CSV()),
		"legend.svg":    []byte(trace.LegendSVG()),
	}
	for _, name := range []string{"fig10.svg", "fig10.csv", "fig11_s36.svg", "fig11_s18.svg", "fig11_s18.csv", "legend.svg"} {
		if err := write(name, files[name]); err != nil {
			return written, err
		}
	}
	return written, nil
}
