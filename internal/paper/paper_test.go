package paper

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every paper experiment and requires all
// comparison rows to check out — this is the repository's reproduction
// gate.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if !res.Pass() {
				t.Errorf("%s failed:\n%s", e.ID, res)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Error("ByID(E3) not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found")
	}
}

func TestResultString(t *testing.T) {
	res, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"E1", "metric", "paper", "measured"} {
		if !strings.Contains(s, want) {
			t.Errorf("result rendering missing %q", want)
		}
	}
}

func TestResultPassDetectsFailure(t *testing.T) {
	r := &Result{Rows: []Row{{OK: true}, {OK: false}}}
	if r.Pass() {
		t.Error("Pass() with a failing row")
	}
}
