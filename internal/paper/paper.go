// Package paper encodes the published evaluation of "A Performance
// Estimation Technique for the SegBus Distributed Architecture"
// (section 4) as executable experiments: every table and figure has an
// experiment that regenerates it from this repository's implementation
// and compares the measured values against the published ones.
//
// Exact-match criteria apply where the paper publishes structural
// results (the Figure 8 communication matrix, the package counts and
// border-unit tick totals of the three-segment run). Timing results
// depend on the original Java emulator's internal constants, which are
// not published; for those the experiments check the paper's
// qualitative claims — who is slower, by roughly what factor, how the
// accuracy moves with the package size — and report the side-by-side
// numbers for EXPERIMENTS.md.
package paper

import (
	"fmt"
	"strings"
)

// Published values of the paper's section 4.
const (
	// Three-segment configuration, package size 36 (the main run).
	PaperEstimatedUs36 = 489.79
	PaperActualUs36    = 515.2
	PaperCATCT36       = 54367

	// Package size 18 on the same configuration.
	PaperEstimatedUs18 = 560.16
	PaperActualUs18    = 600.02

	// P9 moved from segment 1 to segment 3, package size 36.
	PaperEstimatedUsP9 = 540.4
	PaperActualUsP9    = 570.12

	// Border-unit analysis (clock ticks).
	PaperUP12  = 2304
	PaperTCT12 = 2336
	PaperWP12  = 1.0
	PaperUP23  = 144
	PaperTCT23 = 146
	PaperWP23  = 1.0

	// Package counts of the three-segment run.
	PaperBU12Packages    = 32
	PaperBU23PerSide     = 1
	PaperSA1InterReq     = 32
	PaperSA2InterReq     = 0
	PaperSA3InterReq     = 1
	PaperSeg1ToRight     = 32
	PaperSeg3ToLeft      = 1
	PaperAccuracyRef36   = 95.0 // "around 95%"
	PaperAccuracyRef18   = 93.0 // "around 93%"
	PaperAccuracyRefP9   = 95.0 // "just below 95%"
	PaperP0EndUs         = 75.3
	PaperP14LastRecvUs   = 460.4
	PaperTimingBandRatio = 0.10 // our timing constants may differ by this much
)

// Row is one paper-versus-measured comparison line.
type Row struct {
	Metric   string
	Paper    string
	Measured string
	OK       bool
	Note     string
}

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	Text  string // free-form detail (tables, reports, timelines)
}

// Pass reports whether every row of the result checked out.
func (r *Result) Pass() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// String renders the result as a fixed-width comparison table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "%-44s %16s %16s %6s\n", "metric", "paper", "measured", "ok")
	for _, row := range r.Rows {
		ok := "yes"
		if !row.OK {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%-44s %16s %16s %6s", row.Metric, row.Paper, row.Measured, ok)
		if row.Note != "" {
			fmt.Fprintf(&b, "  (%s)", row.Note)
		}
		b.WriteByte('\n')
	}
	if r.Text != "" {
		b.WriteByte('\n')
		b.WriteString(r.Text)
	}
	return b.String()
}

// Experiment names one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 8: communication matrix", RunE1},
		{"E2", "Figure 9: process allocations", RunE2},
		{"E3", "Section 4 results block: 3-segment emulation", RunE3},
		{"E4", "Figure 10: process progress timeline", RunE4},
		{"E5", "Figure 11: activity graph, package sizes 18 and 36", RunE5},
		{"E6", "Accuracy, 3 segments, package size 36", RunE6},
		{"E7", "Accuracy, 3 segments, package size 18", RunE7},
		{"E8", "Accuracy, P9 moved to segment 3", RunE8},
		{"E9", "Border-unit UP/WP analysis", RunE9},
		{"E10", "One/two/three segment configuration sweep", RunE10},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// helpers

func usRow(metric string, paperUs, measuredUs float64, band float64) Row {
	lo, hi := paperUs*(1-band), paperUs*(1+band)
	return Row{
		Metric:   metric,
		Paper:    fmt.Sprintf("%.2fus", paperUs),
		Measured: fmt.Sprintf("%.2fus", measuredUs),
		OK:       measuredUs >= lo && measuredUs <= hi,
		Note:     fmt.Sprintf("band ±%.0f%%", band*100),
	}
}

func intRow(metric string, paperV, measured int) Row {
	return Row{
		Metric:   metric,
		Paper:    fmt.Sprintf("%d", paperV),
		Measured: fmt.Sprintf("%d", measured),
		OK:       paperV == measured,
	}
}

func int64Row(metric string, paperV, measured int64) Row {
	return Row{
		Metric:   metric,
		Paper:    fmt.Sprintf("%d", paperV),
		Measured: fmt.Sprintf("%d", measured),
		OK:       paperV == measured,
	}
}

func boolRow(metric, paperClaim, measured string, ok bool) Row {
	return Row{Metric: metric, Paper: paperClaim, Measured: measured, OK: ok}
}
