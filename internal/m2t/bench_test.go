package m2t

import (
	"testing"

	"segbus/internal/apps"
)

// BenchmarkGeneratePSDF measures the model-to-text transformation of
// the MP3 model.
func BenchmarkGeneratePSDF(b *testing.B) {
	m := apps.MP3Model()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePSDF(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratePSM measures the platform transformation.
func BenchmarkGeneratePSM(b *testing.B) {
	p := apps.MP3Platform3(36)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GeneratePSM(p); err != nil {
			b.Fatal(err)
		}
	}
}
