package m2t

import (
	"os"
	"testing"

	"segbus/internal/apps"
)

// The generated XML Schema text is a contract with the emulator (and
// with any external tool consuming the schemes): these goldens pin it
// byte for byte. Regenerate after a deliberate format change with:
//
//	go run ./cmd/segbus-m2t -model testdata/mp3.sbd -out testdata/golden -name mp3
func TestGeneratedXMLMatchesGolden(t *testing.T) {
	cases := []struct {
		golden   string
		generate func() ([]byte, error)
	}{
		{"../../testdata/golden/mp3-psdf.xsd", func() ([]byte, error) { return GeneratePSDF(apps.MP3Model()) }},
		{"../../testdata/golden/mp3-psm.xsd", func() ([]byte, error) { return GeneratePSM(apps.MP3Platform3(36)) }},
	}
	for _, c := range cases {
		want, err := os.ReadFile(c.golden)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.generate()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale: regenerate with segbus-m2t (see comment)", c.golden)
		}
	}
}
