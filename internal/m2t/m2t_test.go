package m2t

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func TestGeneratePSDFShape(t *testing.T) {
	m := apps.MP3Model()
	data, err := GeneratePSDF(m)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`<?xml version="1.0" encoding="UTF-8"?>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`,
		`<xs:appinfo>nominalPackageSize=36</xs:appinfo>`,
		`<xs:complexType name="P0">`,
		// The paper's documented flow encoding for P0 -> P1.
		`<xs:element name="P1_576_1_250" type="Transfer"/>`,
		`<xs:complexType name="P14">`,
		`<xs:complexType name="Transfer">`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("PSDF XML missing %q", want)
		}
	}
}

func TestGeneratePSDFRejectsInvalidModel(t *testing.T) {
	if _, err := GeneratePSDF(psdf.NewModel("broken")); err == nil {
		t.Error("invalid model transformed")
	}
}

func TestGeneratePSMShape(t *testing.T) {
	p := apps.MP3Platform3(36)
	data, err := GeneratePSM(p)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`<xs:element name="sbp" type="SBP"/>`,
		`<xs:complexType name="SBP">`,
		`<xs:element name="segment1" type="Segment1"/>`,
		`<xs:element name="segment3" type="Segment3"/>`,
		`<xs:element name="ca" type="CA"/>`,
		`<xs:element name="bu12" type="BU12"/>`,
		`<xs:element name="bu23" type="BU23"/>`,
		`<xs:complexType name="Segment1">`,
		`<xs:element name="buRight" type="BU12"/>`,
		`<xs:element name="buLeft" type="BU12"/>`,
		`<xs:element name="arbiter" type="SA1"/>`,
		`<xs:appinfo>caClockHz=111000000</xs:appinfo>`,
		`<xs:appinfo>clockHz=91000000</xs:appinfo>`,
		`<xs:appinfo>packageSize=36</xs:appinfo>`,
		`<xs:element name="master" type="Master"/>`,
		`<xs:element name="slave" type="Slave"/>`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("PSM XML missing %q", want)
		}
	}
	// The middle segment has both BU neighbours.
	seg2 := s[strings.Index(s, `<xs:complexType name="Segment2">`):]
	seg2 = seg2[:strings.Index(seg2, "</xs:complexType>")]
	if !strings.Contains(seg2, `name="buLeft" type="BU12"`) || !strings.Contains(seg2, `name="buRight" type="BU23"`) {
		t.Errorf("segment 2 misses a BU neighbour:\n%s", seg2)
	}
}

func TestGeneratePSMRejectsInvalidPlatform(t *testing.T) {
	if _, err := GeneratePSM(platform.New("empty", 100*platform.MHz, 36)); err == nil {
		t.Error("invalid platform transformed")
	}
}

func TestGeneratePSMFUKinds(t *testing.T) {
	p := platform.New("kinds", 100*platform.MHz, 36)
	s := p.AddSegment(90 * platform.MHz)
	s.FUs = append(s.FUs,
		platform.FU{Process: 0, Kind: platform.MasterOnly},
		platform.FU{Process: 1, Kind: platform.SlaveOnly},
	)
	data, err := GeneratePSM(p)
	if err != nil {
		t.Fatal(err)
	}
	str := string(data)
	p0 := section(str, `<xs:complexType name="P0">`)
	if !strings.Contains(p0, "master") || strings.Contains(p0, "slave") {
		t.Errorf("P0 master-only rendering wrong:\n%s", p0)
	}
	p1 := section(str, `<xs:complexType name="P1">`)
	if strings.Contains(p1, "master") || !strings.Contains(p1, "slave") {
		t.Errorf("P1 slave-only rendering wrong:\n%s", p1)
	}
}

func section(s, start string) string {
	i := strings.Index(s, start)
	if i < 0 {
		return ""
	}
	rest := s[i:]
	j := strings.Index(rest, "</xs:complexType>")
	if j < 0 {
		return rest
	}
	return rest[:j]
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Errorf("xmlEscape = %q", got)
	}
}

func TestTypeName(t *testing.T) {
	cases := map[string]string{
		"mp3-decoder": "Mp3Decoder",
		"my_app":      "MyApp",
		"simple":      "Simple",
		"":            "Application",
		"a b.c":       "ABC",
	}
	for in, want := range cases {
		if got := typeName(in); got != want {
			t.Errorf("typeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEngineeringSetTransform(t *testing.T) {
	dir := t.TempDir()
	m := apps.MP3Model()
	set := NewPSDFSet("mp3-psdf", m, dir)
	path, err := set.Transform()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "mp3-psdf.xsd" {
		t.Errorf("path = %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "P1_576_1_250") {
		t.Error("written file lacks flow encoding")
	}

	pset := NewPSMSet("mp3-psm", apps.MP3Platform3(36), dir)
	if _, err := pset.Transform(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mp3-psm.xsd")); err != nil {
		t.Errorf("PSM file missing: %v", err)
	}
}

func TestEngineeringSetErrors(t *testing.T) {
	s := &EngineeringSet{Name: "x", Kind: PSDFSet}
	if _, err := s.Generate(); err == nil {
		t.Error("PSDF set without model generated")
	}
	s = &EngineeringSet{Name: "x", Kind: PSMSet}
	if _, err := s.Generate(); err == nil {
		t.Error("PSM set without platform generated")
	}
	s = &EngineeringSet{Name: "x", Kind: SetKind(9)}
	if _, err := s.Generate(); err == nil {
		t.Error("unknown kind generated")
	}
}

func TestSetKindString(t *testing.T) {
	if PSDFSet.String() != "PSDF" || PSMSet.String() != "PSM" {
		t.Error("SetKind.String() mismatch")
	}
}
