package m2t

import (
	"fmt"
	"os"
	"path/filepath"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// SetKind selects the transformation a code engineering set performs.
type SetKind int

// Engineering-set kinds: one set per model kind, as in the paper's
// flow ("we make two separate code engineering sets, one for PSDF and
// other for PSM").
const (
	PSDFSet SetKind = iota
	PSMSet
)

// String implements fmt.Stringer.
func (k SetKind) String() string {
	switch k {
	case PSDFSet:
		return "PSDF"
	case PSMSet:
		return "PSM"
	}
	return fmt.Sprintf("SetKind(%d)", int(k))
}

// EngineeringSet mirrors the tool concept of section 3.4: a named set
// of model elements to transform, the transformation type
// (model-to-text) and the directory the generated XML schemes are
// saved into.
type EngineeringSet struct {
	Name string
	Kind SetKind
	Dir  string // output directory; created on demand

	model *psdf.Model
	plat  *platform.Platform
}

// NewPSDFSet returns a code engineering set that transforms the given
// PSDF model into dir.
func NewPSDFSet(name string, m *psdf.Model, dir string) *EngineeringSet {
	return &EngineeringSet{Name: name, Kind: PSDFSet, Dir: dir, model: m}
}

// NewPSMSet returns a code engineering set that transforms the given
// platform (PSM) model into dir.
func NewPSMSet(name string, p *platform.Platform, dir string) *EngineeringSet {
	return &EngineeringSet{Name: name, Kind: PSMSet, Dir: dir, plat: p}
}

// FileName returns the name of the XML document the set generates.
func (s *EngineeringSet) FileName() string {
	return fmt.Sprintf("%s.xsd", s.Name)
}

// Generate renders the set's model without touching the filesystem.
func (s *EngineeringSet) Generate() ([]byte, error) {
	switch s.Kind {
	case PSDFSet:
		if s.model == nil {
			return nil, fmt.Errorf("m2t: engineering set %q has no PSDF model", s.Name)
		}
		return GeneratePSDF(s.model)
	case PSMSet:
		if s.plat == nil {
			return nil, fmt.Errorf("m2t: engineering set %q has no platform model", s.Name)
		}
		return GeneratePSM(s.plat)
	}
	return nil, fmt.Errorf("m2t: engineering set %q has unknown kind %d", s.Name, int(s.Kind))
}

// Transform applies the model-to-text transformation and writes the
// generated XML scheme into the set's directory, returning the file
// path.
func (s *EngineeringSet) Transform() (string, error) {
	data, err := s.Generate()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", fmt.Errorf("m2t: creating output directory: %w", err)
	}
	path := filepath.Join(s.Dir, s.FileName())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("m2t: writing %s scheme: %w", s.Kind, err)
	}
	return path, nil
}
