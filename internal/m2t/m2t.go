// Package m2t implements the model-to-text transformation of the
// design flow (section 3.4 of the paper): it renders PSDF application
// models and PSM platform models as XML Schema documents with the
// exact element shapes the paper's MagicDraw code-generation engine
// produces — one xs:complexType per platform element or application
// process, flows encoded in element names like "P1_576_1_250", and
// segments composed of buLeft/buRight, process and arbiter elements.
//
// Values the original tool keeps in the modeling environment (clock
// frequencies, protocol tick counts, the nominal package size) are
// embedded as xs:appinfo annotations so that a generated document
// round-trips losslessly through package schema.
package m2t

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// xmlEscape escapes the five XML special characters in text content
// and attribute values.
func xmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&apos;",
	)
	return r.Replace(s)
}

// builder assembles an indented XML document.
type builder struct {
	b      strings.Builder
	indent int
}

func (w *builder) line(format string, args ...interface{}) {
	for i := 0; i < w.indent; i++ {
		w.b.WriteString("  ")
	}
	fmt.Fprintf(&w.b, format, args...)
	w.b.WriteByte('\n')
}

func (w *builder) open(format string, args ...interface{}) {
	w.line(format, args...)
	w.indent++
}

func (w *builder) close(tag string) {
	w.indent--
	w.line("</%s>", tag)
}

// typeName derives the complexType name of the whole model from its
// application name: "mp3-decoder" becomes "MP3Decoder"-style camel
// case ("Mp3Decoder"); empty names fall back to "Application".
func typeName(name string) string {
	if name == "" {
		return "Application"
	}
	var out strings.Builder
	up := true
	for _, c := range name {
		switch {
		case c == '-' || c == '_' || c == ' ' || c == '.':
			up = true
		case up:
			out.WriteRune(toUpper(c))
			up = false
		default:
			out.WriteRune(c)
		}
	}
	return out.String()
}

func toUpper(c rune) rune {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// GeneratePSDF renders the PSDF model as an XML Schema document: a
// root element referencing the application complexType, which is
// composed of one element per process; each process complexType lists
// its outgoing transfers as elements whose names encode the flow
// tuples ("P1_576_1_250" — target, data items, ordering, ticks).
func GeneratePSDF(m *psdf.Model) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("m2t: refusing to transform an invalid PSDF model: %w", err)
	}
	w := &builder{}
	w.line(`<?xml version="1.0" encoding="UTF-8"?>`)
	w.open(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`)
	if m.NominalPackageSize() > 0 {
		w.open(`<xs:annotation>`)
		w.line(`<xs:appinfo>nominalPackageSize=%d</xs:appinfo>`, m.NominalPackageSize())
		w.close("xs:annotation")
	}
	app := typeName(m.Name())
	w.line(`<xs:element name="%s" type="%s"/>`, xmlEscape(strings.ToLower(app)), xmlEscape(app))
	w.open(`<xs:complexType name="%s">`, xmlEscape(app))
	w.open(`<xs:all>`)
	procs := m.Processes()
	for _, p := range procs {
		w.line(`<xs:element name="%s" type="%s"/>`, strings.ToLower(p.String()), p)
	}
	w.close("xs:all")
	w.close("xs:complexType")
	for _, p := range procs {
		w.open(`<xs:complexType name="%s">`, p)
		flows := m.FlowsFrom(p)
		if len(flows) > 0 {
			w.open(`<xs:all>`)
			for _, f := range flows {
				w.line(`<xs:element name="%s" type="Transfer"/>`, xmlEscape(f.Name()))
			}
			w.close("xs:all")
		}
		w.close("xs:complexType")
	}
	w.open(`<xs:complexType name="Transfer">`)
	w.close("xs:complexType")
	w.close("xs:schema")
	return []byte(w.b.String()), nil
}

// GeneratePSM renders the platform model (with its application
// mapping) as an XML Schema document following the paper's PSM
// snippet: an "SBP" complexType composed of the segments, the CA and
// the BUs; each segment composed of its buLeft/buRight neighbours,
// its hosted processes and its arbiter; and each process complexType
// carrying its master/slave interface elements (Figure 5 hierarchy).
func GeneratePSM(p *platform.Platform) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("m2t: refusing to transform an invalid platform: %w", err)
	}
	w := &builder{}
	w.line(`<?xml version="1.0" encoding="UTF-8"?>`)
	w.open(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`)
	w.line(`<xs:element name="sbp" type="SBP"/>`)
	w.open(`<xs:complexType name="SBP">`)
	w.open(`<xs:annotation>`)
	w.line(`<xs:appinfo>caClockHz=%d</xs:appinfo>`, int64(p.CAClock))
	w.line(`<xs:appinfo>packageSize=%d</xs:appinfo>`, p.PackageSize)
	w.line(`<xs:appinfo>headerTicks=%d</xs:appinfo>`, p.HeaderTicks)
	w.line(`<xs:appinfo>caHopTicks=%d</xs:appinfo>`, p.CAHopTicks)
	w.close("xs:annotation")
	w.open(`<xs:all>`)
	for _, s := range p.Segments {
		w.line(`<xs:element name="segment%d" type="Segment%d"/>`, s.Index, s.Index)
	}
	w.line(`<xs:element name="ca" type="CA"/>`)
	for _, bu := range p.BUs() {
		w.line(`<xs:element name="bu%d%d" type="%s"/>`, bu.Left, bu.Right, bu.Name())
	}
	w.close("xs:all")
	w.close("xs:complexType")

	for _, s := range p.Segments {
		w.open(`<xs:complexType name="Segment%d">`, s.Index)
		w.open(`<xs:annotation>`)
		w.line(`<xs:appinfo>clockHz=%d</xs:appinfo>`, int64(s.Clock))
		w.close("xs:annotation")
		w.open(`<xs:all>`)
		if s.Index > 1 {
			w.line(`<xs:element name="buLeft" type="BU%d%d"/>`, s.Index-1, s.Index)
		}
		if s.Index < len(p.Segments) {
			w.line(`<xs:element name="buRight" type="BU%d%d"/>`, s.Index, s.Index+1)
		}
		for _, fu := range s.FUs {
			w.line(`<xs:element name="%s" type="%s"/>`, strings.ToLower(fu.Process.String()), fu.Process)
		}
		w.line(`<xs:element name="arbiter" type="SA%d"/>`, s.Index)
		w.close("xs:all")
		w.close("xs:complexType")
	}

	// Per-process FU interface declarations (Figure 5: an FU contains
	// at least one master or one slave).
	type fuDecl struct {
		proc psdf.ProcessID
		kind platform.FUKind
	}
	var fus []fuDecl
	for _, s := range p.Segments {
		for _, fu := range s.FUs {
			fus = append(fus, fuDecl{fu.Process, fu.Kind})
		}
	}
	sort.Slice(fus, func(i, j int) bool { return fus[i].proc < fus[j].proc })
	for _, fu := range fus {
		w.open(`<xs:complexType name="%s">`, fu.proc)
		w.open(`<xs:all>`)
		if fu.kind != platform.SlaveOnly {
			w.line(`<xs:element name="master" type="Master"/>`)
		}
		if fu.kind != platform.MasterOnly {
			w.line(`<xs:element name="slave" type="Slave"/>`)
		}
		w.close("xs:all")
		w.close("xs:complexType")
	}

	w.open(`<xs:complexType name="CA">`)
	w.close("xs:complexType")
	for _, s := range p.Segments {
		w.open(`<xs:complexType name="SA%d">`, s.Index)
		w.close("xs:complexType")
	}
	for _, bu := range p.BUs() {
		w.open(`<xs:complexType name="%s">`, bu.Name())
		w.close("xs:complexType")
	}
	w.open(`<xs:complexType name="Master">`)
	w.close("xs:complexType")
	w.open(`<xs:complexType name="Slave">`)
	w.close("xs:complexType")
	w.close("xs:schema")
	return []byte(w.b.String()), nil
}
