// Package sweep runs one-parameter sensitivity analyses over a
// (model, configuration) pair: how does the estimated execution time
// react to the package size, the protocol's per-package header cost,
// the CA's chain set-up cost, or one clock frequency?
//
// The paper's discussion reasons qualitatively about exactly these
// levers ("the higher the data package, the less impact of these
// figures"); this package turns the reasoning into measured curves a
// designer can read off, each point produced by a full emulation,
// evaluated concurrently.
package sweep

import (
	"fmt"
	"strings"
	"sync/atomic"

	"segbus/internal/obs"
	"segbus/internal/parallel"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Point is one sample of a sensitivity curve.
type Point struct {
	Value  int64 // the parameter value of this sample
	ExecPs int64 // estimated execution time
	Err    error // non-nil if this sample failed (others still run)
}

// Curve is a named series of points.
type Curve struct {
	Param  string
	Points []Point
}

// Options tunes a sweep evaluation. The sweep functions take it
// variadically so existing call sites stay unchanged.
type Options struct {
	// Heartbeat, when non-nil, receives a progress tick after every
	// completed sample (from worker goroutines — Heartbeat.Tick is
	// concurrency-safe) and the unconditional final line.
	Heartbeat *obs.Heartbeat

	// Workers is the number of concurrent samples; zero selects
	// GOMAXPROCS.
	Workers int

	// Seed drives the work-stealing schedule (see
	// parallel.StealOptions.Seed); the curve itself is schedule
	// independent.
	Seed int64
}

// first collapses the variadic options to one value.
func first(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// run evaluates the variants concurrently in submission order, on the
// work-stealing scheduler with pooled machines: every variant of one
// curve shares a platform shape, so after the first sample each
// worker's emulations run on a warm arena, and a straggler (small
// package sizes cost the most) no longer serialises the tail.
func run(m *psdf.Model, variants []*platform.Platform, values []int64, param string, o Options) Curve {
	jobs := make([]parallel.Job, len(variants))
	for i, p := range variants {
		jobs[i] = parallel.Job{Label: fmt.Sprintf("%s=%d", param, values[i]), Model: m, Platform: p}
	}
	popts := parallel.Options{}
	if o.Heartbeat != nil {
		var done, failed atomic.Int64
		popts.Progress = func(r parallel.Result) {
			if r.Err != nil {
				failed.Add(1)
			}
			o.Heartbeat.Tick(int(done.Add(1)), int(failed.Load()))
		}
	}
	results := parallel.RunPooled(jobs, popts, parallel.StealOptions{Workers: o.Workers, Seed: o.Seed}, nil)
	c := Curve{Param: param, Points: make([]Point, len(values))}
	failures := 0
	for i, r := range results {
		c.Points[i] = Point{Value: values[i], Err: r.Err}
		if r.Err == nil {
			c.Points[i].ExecPs = int64(r.Report.ExecutionTimePs)
		} else {
			failures++
		}
	}
	o.Heartbeat.Final(len(results), failures)
	return c
}

// PackageSizes sweeps the platform package size.
func PackageSizes(m *psdf.Model, base *platform.Platform, sizes []int, opts ...Options) Curve {
	variants := make([]*platform.Platform, len(sizes))
	values := make([]int64, len(sizes))
	for i, s := range sizes {
		p := base.Clone()
		p.PackageSize = s
		variants[i] = p
		values[i] = int64(s)
	}
	return run(m, variants, values, "packageSize", first(opts))
}

// HeaderTicks sweeps the per-package protocol overhead.
func HeaderTicks(m *psdf.Model, base *platform.Platform, ticks []int, opts ...Options) Curve {
	variants := make([]*platform.Platform, len(ticks))
	values := make([]int64, len(ticks))
	for i, h := range ticks {
		p := base.Clone()
		p.HeaderTicks = h
		variants[i] = p
		values[i] = int64(h)
	}
	return run(m, variants, values, "headerTicks", first(opts))
}

// CAHopTicks sweeps the central arbiter's chain set-up cost.
func CAHopTicks(m *psdf.Model, base *platform.Platform, ticks []int, opts ...Options) Curve {
	variants := make([]*platform.Platform, len(ticks))
	values := make([]int64, len(ticks))
	for i, h := range ticks {
		p := base.Clone()
		p.CAHopTicks = h
		variants[i] = p
		values[i] = int64(h)
	}
	return run(m, variants, values, "caHopTicks", first(opts))
}

// SegmentClock sweeps one segment's clock frequency (1-based index).
func SegmentClock(m *psdf.Model, base *platform.Platform, segment int, clocks []platform.Hz, opts ...Options) (Curve, error) {
	if base.Segment(segment) == nil {
		return Curve{}, fmt.Errorf("sweep: no segment %d", segment)
	}
	variants := make([]*platform.Platform, len(clocks))
	values := make([]int64, len(clocks))
	for i, hz := range clocks {
		p := base.Clone()
		p.Segment(segment).Clock = hz
		variants[i] = p
		values[i] = int64(hz)
	}
	return run(m, variants, values, fmt.Sprintf("segment%dClockHz", segment), first(opts)), nil
}

// CSV renders the curve as two-column CSV (value, exec_us); failed
// points render an empty second column.
func (c Curve) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,exec_us\n", c.Param)
	for _, pt := range c.Points {
		if pt.Err != nil {
			fmt.Fprintf(&b, "%d,\n", pt.Value)
			continue
		}
		fmt.Fprintf(&b, "%d,%.3f\n", pt.Value, float64(pt.ExecPs)/1e6)
	}
	return b.String()
}

// Table renders the curve as fixed-width text.
func (c Curve) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s\n", c.Param, "exec (us)")
	for _, pt := range c.Points {
		if pt.Err != nil {
			fmt.Fprintf(&b, "%-18d %12s\n", pt.Value, "error")
			continue
		}
		fmt.Fprintf(&b, "%-18d %12.2f\n", pt.Value, float64(pt.ExecPs)/1e6)
	}
	return b.String()
}
