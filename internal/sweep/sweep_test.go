package sweep

import (
	"strings"
	"sync"
	"testing"
	"time"

	"segbus/internal/apps"
	"segbus/internal/obs"
	"segbus/internal/platform"
)

func TestPackageSizesCurve(t *testing.T) {
	m := apps.MP3Model()
	base := apps.MP3Platform3(36)
	c := PackageSizes(m, base, []int{9, 18, 36, 72, 144})
	if len(c.Points) != 5 {
		t.Fatalf("points = %d", len(c.Points))
	}
	for _, pt := range c.Points {
		if pt.Err != nil {
			t.Fatalf("s=%d: %v", pt.Value, pt.Err)
		}
		if pt.ExecPs <= 0 {
			t.Fatalf("s=%d: no exec time", pt.Value)
		}
	}
	// The MP3 model's compute work is packaging-independent (nominal
	// size set), so execution time must fall monotonically as the
	// package grows: fewer per-package overheads.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].ExecPs >= c.Points[i-1].ExecPs {
			t.Errorf("exec not decreasing at s=%d: %d vs %d",
				c.Points[i].Value, c.Points[i].ExecPs, c.Points[i-1].ExecPs)
		}
	}
	// The base platform must be untouched.
	if base.PackageSize != 36 {
		t.Error("base platform mutated")
	}
}

func TestHeaderTicksMonotone(t *testing.T) {
	m := apps.MP3Model()
	c := HeaderTicks(m, apps.MP3Platform3(36), []int{0, 10, 25, 50})
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Err != nil {
			t.Fatal(c.Points[i].Err)
		}
		if c.Points[i].ExecPs <= c.Points[i-1].ExecPs {
			t.Errorf("header %d not slower than %d", c.Points[i].Value, c.Points[i-1].Value)
		}
	}
}

func TestCAHopTicksMonotone(t *testing.T) {
	m := apps.MP3Model()
	c := CAHopTicks(m, apps.MP3Platform3(36), []int{0, 25, 100})
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Err != nil {
			t.Fatal(c.Points[i].Err)
		}
		if c.Points[i].ExecPs <= c.Points[i-1].ExecPs {
			t.Errorf("hop cost %d not slower than %d", c.Points[i].Value, c.Points[i-1].Value)
		}
	}
}

func TestSegmentClockFasterIsFaster(t *testing.T) {
	m := apps.MP3Model()
	// Segment 2 hosts the long output chain: speeding it up must help.
	c, err := SegmentClock(m, apps.MP3Platform3(36), 2,
		[]platform.Hz{60 * platform.MHz, 98 * platform.MHz, 200 * platform.MHz})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Err != nil {
			t.Fatal(c.Points[i].Err)
		}
		if c.Points[i].ExecPs >= c.Points[i-1].ExecPs {
			t.Errorf("clock %d not faster than %d", c.Points[i].Value, c.Points[i-1].Value)
		}
	}
	if _, err := SegmentClock(m, apps.MP3Platform3(36), 9, nil); err == nil {
		t.Error("bad segment accepted")
	}
}

func TestCurveRenderings(t *testing.T) {
	m := apps.MP3Model()
	c := PackageSizes(m, apps.MP3Platform3(36), []int{18, 36})
	csv := c.CSV()
	if !strings.HasPrefix(csv, "packageSize,exec_us\n") || !strings.Contains(csv, "36,") {
		t.Errorf("CSV:\n%s", csv)
	}
	table := c.Table()
	if !strings.Contains(table, "exec (us)") {
		t.Errorf("table:\n%s", table)
	}
	// Failed points render gracefully.
	bad := PackageSizes(m, apps.MP3Platform3(36), []int{0})
	if bad.Points[0].Err == nil {
		t.Fatal("package size 0 accepted")
	}
	if !strings.Contains(bad.CSV(), "0,\n") || !strings.Contains(bad.Table(), "error") {
		t.Error("failed point rendering wrong")
	}
}

func TestSweepHeartbeat(t *testing.T) {
	var buf syncBuffer
	hb := obs.NewHeartbeat(&buf, "sample", time.Nanosecond, 3)
	c := PackageSizes(apps.MP3Model(), apps.MP3Platform3(36), []int{18, 36, 72},
		Options{Heartbeat: hb})
	if len(c.Points) != 3 {
		t.Fatalf("points = %d", len(c.Points))
	}
	out := buf.String()
	if !strings.Contains(out, "(done)") {
		t.Errorf("no final heartbeat line:\n%s", out)
	}
	if !strings.Contains(out, "3/3 samples") {
		t.Errorf("final line lacks totals:\n%s", out)
	}
	// Without options nothing is printed and nothing panics.
	PackageSizes(apps.MP3Model(), apps.MP3Platform3(36), []int{36})
}

// syncBuffer is a strings.Builder safe for the concurrent Progress
// callbacks of the worker pool.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
