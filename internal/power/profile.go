package power

import (
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/sched"
)

// Profile is the run-independent activity of a (model, platform)
// pair: the traffic and compute figures that are fully determined by
// the extracted schedule and the bus topology before any emulation
// happens. Estimate derives its bus and compute energies from exactly
// these figures; the design-space explorer uses them, together with
// analyze's latency lower bound, to lower-bound a candidate's energy
// without emulating it.
type Profile struct {
	params    Params
	segments  int
	busItems  map[int]int64 // segment -> items moved on its bus
	compTicks map[int]int64 // segment -> FU compute ticks
	buItems   map[int]int64 // BU (keyed by Left segment) -> items crossing

	segOrder []int         // plat.Segments order, for float-stable summation
	buOrder  []platform.BU // plat.BUs() order, matching the report's grouping
}

// NewProfile extracts the activity profile. The Params fix the
// coefficients the bounds will be priced with (zero selects
// DefaultParams, like Estimate).
func NewProfile(m *psdf.Model, plat *platform.Platform, params Params) (*Profile, error) {
	if params.zero() {
		params = DefaultParams
	}
	s, err := sched.Extract(m, plat.PackageSize)
	if err != nil {
		return nil, err
	}
	pf := &Profile{
		params:    params,
		segments:  plat.NumSegments(),
		busItems:  make(map[int]int64),
		compTicks: make(map[int]int64),
		buItems:   make(map[int]int64),
	}
	nominal := m.NominalPackageSize()
	for i := range s.Flows() {
		f := s.Flow(sched.FlowID(i))
		src := plat.SegmentOf(f.Source)
		dst := src
		if f.Target != psdf.SystemOutput {
			dst = plat.SegmentOf(f.Target)
		}
		// Identical attribution to Estimate: every item occupies the
		// bus of every segment on its route, and crosses every BU on
		// the route once (the emulator's BU load ticks count exactly
		// one tick per item loaded, which TestProfileMatchesRun pins).
		route, _ := plat.Route(src, dst)
		pf.busItems[src] += int64(f.Items)
		for _, bu := range route {
			next := bu.Left
			if src < dst {
				next = bu.Right
			}
			pf.busItems[next] += int64(f.Items)
			pf.buItems[bu.Left] += int64(f.Items)
		}
		pkgs := s.Packages(sched.FlowID(i))
		var ticks int64
		if nominal > 0 {
			ticks = (int64(f.Ticks)*int64(f.Items) + int64(nominal) - 1) / int64(nominal)
		} else {
			ticks = int64(f.Ticks) * int64(pkgs)
		}
		pf.compTicks[src] += ticks
	}
	for _, seg := range plat.Segments {
		pf.segOrder = append(pf.segOrder, seg.Index)
	}
	pf.buOrder = plat.BUs()
	return pf, nil
}

// TotalBusItems returns the summed per-segment bus traffic — a cheap
// run-independent congestion figure for reports.
func (pf *Profile) TotalBusItems() int64 {
	var n int64
	for _, v := range pf.busItems {
		n += v
	}
	return n
}

// TotalBUItems returns the summed border-unit crossings.
func (pf *Profile) TotalBUItems() int64 {
	var n int64
	for _, bu := range pf.buOrder {
		n += pf.buItems[bu.Left]
	}
	return n
}

// LowerBoundPJ returns a provable lower bound on the TotalPJ of any
// run of this pair that executes in at least latencyLBPs picoseconds
// (analyze's Bounds.LowerPs supplies that figure):
//
//   - bus, BU and compute energies are run-independent and counted
//     exactly as Estimate counts them;
//   - arbiter activity (SA, CA) is bounded below by zero;
//   - static leakage is monotone in the run time, so pricing it at
//     the latency lower bound bounds it below.
//
// Soundness down to the last ULP: the terms are accumulated in the
// same order as Estimate's with the SA/CA terms replaced by zero, and
// IEEE-754 round-to-nearest is monotone, so the float result can
// never exceed Estimate's TotalPJ for the same pair. The prune
// soundness property test exercises this across generated spaces.
func (pf *Profile) LowerBoundPJ(latencyLBPs int64) float64 {
	var dynamic float64
	for _, seg := range pf.segOrder {
		busPJ := float64(pf.busItems[seg]) * pf.params.BusPJPerItem
		computePJ := float64(pf.compTicks[seg]) * pf.params.FUPJPerTick
		dynamic += busPJ + 0 + computePJ
	}
	for _, bu := range pf.buOrder {
		dynamic += float64(pf.buItems[bu.Left]) * pf.params.BUPJPerItem
	}
	dynamic += 0 // CA activity ≥ 0

	runSeconds := float64(latencyLBPs) * 1e-12
	staticPJ := pf.params.StaticUWPerSeg * 1e-6 * float64(pf.segments) * runSeconds * 1e12
	return dynamic + staticPJ
}
