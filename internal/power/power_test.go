package power

import (
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func estimate(t *testing.T, m *psdf.Model, plat *platform.Platform) *Report {
	t.Helper()
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Estimate(m, plat, r, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimateMP3(t *testing.T) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(36)
	p := estimate(t, m, plat)
	if p.TotalPJ <= 0 || p.DynamicPJ <= 0 || p.StaticPJ <= 0 {
		t.Fatalf("degenerate energy: %+v", p)
	}
	if p.TotalPJ != p.DynamicPJ+p.StaticPJ {
		t.Error("total != dynamic + static")
	}
	if len(p.Segments) != 3 || len(p.BUs) != 2 {
		t.Fatalf("breakdown shape wrong: %d segments, %d BUs", len(p.Segments), len(p.BUs))
	}
	// BU12 carried 32 packages x 36 items.
	if p.BUs[0].Items != 32*36 {
		t.Errorf("BU12 items = %d, want 1152", p.BUs[0].Items)
	}
	if p.AvgPowerM <= 0 {
		t.Error("no average power")
	}
}

func TestBusItemsAccounting(t *testing.T) {
	// One 72-item flow crossing one BU: both segments move 72 items.
	m := psdf.NewModel("x")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 72, Order: 1, Ticks: 5})
	plat := platform.New("two", 100*platform.MHz, 36)
	plat.AddSegment(100*platform.MHz, 0)
	plat.AddSegment(100*platform.MHz, 1)
	p := estimate(t, m, plat)
	if p.Segments[0].BusItems != 72 || p.Segments[1].BusItems != 72 {
		t.Errorf("bus items = %d/%d, want 72/72", p.Segments[0].BusItems, p.Segments[1].BusItems)
	}
	if p.BUs[0].Items != 72 {
		t.Errorf("BU items = %d", p.BUs[0].Items)
	}
}

func TestLocalisedPlacementUsesLessEnergy(t *testing.T) {
	// The paper's conclusion claim: configuration choices affect
	// power. Moving P9 away from its traffic adds two 540-item
	// double-crossings, so the moved configuration must consume more.
	m := apps.MP3Model()
	base := estimate(t, m, apps.MP3Platform3(36))
	moved := estimate(t, m, apps.MP3Platform3MovedP9(36))
	if moved.DynamicPJ <= base.DynamicPJ {
		t.Errorf("moved P9 dynamic %.0fpJ not above base %.0fpJ", moved.DynamicPJ, base.DynamicPJ)
	}
	if moved.TotalPJ <= base.TotalPJ {
		t.Errorf("moved P9 total %.0fpJ not above base %.0fpJ", moved.TotalPJ, base.TotalPJ)
	}
}

func TestSingleSegmentHasNoBUEnergy(t *testing.T) {
	m := apps.MP3Model()
	p := estimate(t, m, apps.MP3Platform1(36))
	if len(p.BUs) != 0 {
		t.Error("single segment has BU energy")
	}
}

func TestCustomParams(t *testing.T) {
	m := apps.MP3Model()
	plat := apps.MP3Platform3(36)
	r, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Estimate(m, plat, r, Params{BusPJPerItem: 1, BUPJPerItem: 1, SAPJPerTick: 0.01, CAPJPerTick: 0.01, FUPJPerTick: 0.1, StaticUWPerSeg: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(m, plat, r, Params{BusPJPerItem: 10, BUPJPerItem: 10, SAPJPerTick: 0.1, CAPJPerTick: 0.1, FUPJPerTick: 1, StaticUWPerSeg: 10})
	if err != nil {
		t.Fatal(err)
	}
	if big.TotalPJ <= small.TotalPJ {
		t.Error("coefficients have no effect")
	}
}

func TestComputeEnergyIndependentOfPackaging(t *testing.T) {
	// With a nominal package size, processing work is a property of
	// the data: the compute energy must not change across package
	// sizes.
	m := apps.MP3Model()
	a := estimate(t, m, apps.MP3Platform3(36))
	b := estimate(t, m, apps.MP3Platform3(18))
	var ca, cb float64
	for i := range a.Segments {
		ca += a.Segments[i].ComputePJ
		cb += b.Segments[i].ComputePJ
	}
	if ca != cb {
		t.Errorf("compute energy varies with packaging: %.0f vs %.0f", ca, cb)
	}
}

func TestReportString(t *testing.T) {
	p := estimate(t, apps.MP3Model(), apps.MP3Platform3(36))
	s := p.String()
	for _, want := range []string{"Segment 1", "BU12", "CA:", "dynamic", "mW"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
