// Package power estimates the energy consumption of an emulated run.
//
// The paper's conclusion notes that early configuration decisions
// "not only improve the quality of the eventual system in terms of
// performance, but also improve power consumption up to some extent"
// (citing the application-development-flow work of its reference [9]).
// This package makes that observable: from an emulation report and the
// (model, platform) pair it derives an activity-based energy estimate —
// data movement on segment buses, border-unit FIFO crossings, arbiter
// activity and functional-unit processing — so configurations can be
// ranked by energy next to execution time.
//
// The coefficients are deliberately simple per-event energies (the
// platform's RTL would calibrate them); what the estimate preserves is
// the *structure*: inter-segment transfers cost extra (every crossing
// writes and reads a FIFO and occupies an additional bus), so
// placements that localise traffic rank better, which is the claim the
// extension exists to support.
package power

import (
	"fmt"
	"sort"
	"strings"

	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Params are the per-event energy coefficients in picojoules and the
// static power in microwatts. DefaultParams provides plausible
// relative magnitudes for a ~90 nm bus platform; absolute values are
// placeholders to be calibrated against the RTL.
type Params struct {
	BusPJPerItem   float64 // moving one data item across one segment bus
	BUPJPerItem    float64 // one FIFO write+read pair per item crossing a BU
	SAPJPerTick    float64 // segment arbiter activity per counted tick
	CAPJPerTick    float64 // central arbiter activity per counted tick
	FUPJPerTick    float64 // functional unit processing per compute tick
	StaticUWPerSeg float64 // per-segment static power (leakage), microwatts
}

// DefaultParams are the coefficients used when Estimate receives the
// zero value.
var DefaultParams = Params{
	BusPJPerItem:   1.8,
	BUPJPerItem:    2.6,
	SAPJPerTick:    0.05,
	CAPJPerTick:    0.08,
	FUPJPerTick:    0.4,
	StaticUWPerSeg: 120,
}

func (p Params) zero() bool { return p == Params{} }

// SegmentEnergy is the per-segment breakdown.
type SegmentEnergy struct {
	Segment   int
	BusItems  int64   // data items moved on this segment's bus
	BusPJ     float64 // bus transfer energy
	SAPJ      float64 // arbiter activity energy
	ComputePJ float64 // FU processing energy of hosted processes
}

// BUEnergy is the per-border-unit breakdown.
type BUEnergy struct {
	Name  string
	Items int64
	PJ    float64
}

// Report is the energy estimate of one emulated run.
type Report struct {
	Params    Params
	Segments  []SegmentEnergy
	BUs       []BUEnergy
	CAPJ      float64
	StaticPJ  float64 // static energy over the run duration
	DynamicPJ float64
	TotalPJ   float64
	AvgPowerM float64 // average power in milliwatts over the run
}

// Estimate derives the energy report for an emulation result. The
// model and platform must be the ones the emulation ran with; the
// schedule is re-derived to attribute per-flow traffic and compute
// work.
func Estimate(m *psdf.Model, plat *platform.Platform, r *emulator.Report, params Params) (*Report, error) {
	// The traffic and compute attribution (bus items per segment,
	// compute ticks rescaled exactly as the emulator charges them) is
	// run-independent and shared with the explorer's pruning bounds —
	// see Profile, which also documents why its LowerBoundPJ can never
	// exceed the total computed here.
	pf, err := NewProfile(m, plat, params)
	if err != nil {
		return nil, err
	}
	params = pf.params

	out := &Report{Params: params}
	var dynamic float64
	for _, seg := range plat.Segments {
		se := SegmentEnergy{Segment: seg.Index, BusItems: pf.busItems[seg.Index]}
		se.BusPJ = float64(se.BusItems) * params.BusPJPerItem
		if sa := r.SA(seg.Index); sa != nil {
			se.SAPJ = float64(sa.TCT) * params.SAPJPerTick
		}
		se.ComputePJ = float64(pf.compTicks[seg.Index]) * params.FUPJPerTick
		dynamic += se.BusPJ + se.SAPJ + se.ComputePJ
		out.Segments = append(out.Segments, se)
	}
	for _, bu := range r.BUs {
		be := BUEnergy{Name: bu.Name, Items: bu.LoadTicks} // one load tick per item
		be.PJ = float64(be.Items) * params.BUPJPerItem
		dynamic += be.PJ
		out.BUs = append(out.BUs, be)
	}
	out.CAPJ = float64(r.CA.TCT) * params.CAPJPerTick
	dynamic += out.CAPJ

	runSeconds := float64(r.ExecutionTimePs) * 1e-12
	out.StaticPJ = params.StaticUWPerSeg * 1e-6 * float64(plat.NumSegments()) * runSeconds * 1e12
	out.DynamicPJ = dynamic
	out.TotalPJ = dynamic + out.StaticPJ
	if runSeconds > 0 {
		out.AvgPowerM = out.TotalPJ * 1e-12 / runSeconds * 1e3
	}
	return out, nil
}

// String renders the energy breakdown.
func (r *Report) String() string {
	var b strings.Builder
	segs := make([]SegmentEnergy, len(r.Segments))
	copy(segs, r.Segments)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Segment < segs[j].Segment })
	for _, se := range segs {
		fmt.Fprintf(&b, "Segment %d: bus %.0fpJ (%d items), SA %.0fpJ, compute %.0fpJ\n",
			se.Segment, se.BusPJ, se.BusItems, se.SAPJ, se.ComputePJ)
	}
	for _, be := range r.BUs {
		fmt.Fprintf(&b, "%s: %.0fpJ (%d items crossed)\n", be.Name, be.PJ, be.Items)
	}
	fmt.Fprintf(&b, "CA: %.0fpJ\n", r.CAPJ)
	fmt.Fprintf(&b, "dynamic %.0fpJ + static %.0fpJ = total %.0fpJ (avg %.2fmW)\n",
		r.DynamicPJ, r.StaticPJ, r.TotalPJ, r.AvgPowerM)
	return b.String()
}
