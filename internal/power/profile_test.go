package power

// The profile is the pruning side of the energy model: these tests
// pin its two load-bearing claims — the static BU-crossing count
// equals what the emulator actually loads (so the "exact dynamic
// components" of the lower bound really are exact), and the lower
// bound never exceeds the estimate of a real run, whether priced at
// analyze's latency LB or at the actual execution time.

import (
	"testing"

	"segbus/internal/analyze"
	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func profilePairs() []struct {
	name string
	m    *psdf.Model
	plat *platform.Platform
} {
	return []struct {
		name string
		m    *psdf.Model
		plat *platform.Platform
	}{
		{"mp3-3seg", apps.MP3Model(), apps.MP3Platform3(36)},
		{"mp3-2seg", apps.MP3Model(), apps.MP3Platform2(36)},
		{"mp3-1seg", apps.MP3Model(), apps.MP3Platform1(36)},
		{"mp3-3seg-s12", apps.MP3Model(), apps.MP3Platform3(12)},
		{"pipeline", apps.Pipeline(6, 36, 16), func() *platform.Platform {
			p := platform.New("pipe-3", 100*platform.MHz, 36)
			p.AddSegment(100*platform.MHz, 0, 1)
			p.AddSegment(100*platform.MHz, 2, 3)
			p.AddSegment(100*platform.MHz, 4, 5)
			return p
		}()},
	}
}

func TestProfileMatchesRun(t *testing.T) {
	for _, tc := range profilePairs() {
		pf, err := NewProfile(tc.m, tc.plat, Params{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		r, err := emulator.Run(tc.m, tc.plat, emulator.Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var loaded int64
		for _, bu := range r.BUs {
			loaded += bu.LoadTicks
		}
		if got := pf.TotalBUItems(); got != loaded {
			t.Errorf("%s: static BU crossings %d != emulated load ticks %d", tc.name, got, loaded)
		}
		est, err := Estimate(tc.m, tc.plat, r, Params{})
		if err != nil {
			t.Fatal(err)
		}
		var estBusItems int64
		for _, se := range est.Segments {
			estBusItems += se.BusItems
		}
		if got := pf.TotalBusItems(); got != estBusItems {
			t.Errorf("%s: profile bus items %d != estimate's %d", tc.name, got, estBusItems)
		}
	}
}

func TestLowerBoundNeverExceedsEstimate(t *testing.T) {
	for _, tc := range profilePairs() {
		pf, err := NewProfile(tc.m, tc.plat, Params{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		r, err := emulator.Run(tc.m, tc.plat, emulator.Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		est, err := Estimate(tc.m, tc.plat, r, Params{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := analyze.ComputeBounds(tc.m, tc.plat)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if b.LowerPs > int64(r.ExecutionTimePs) {
			t.Fatalf("%s: latency LB %d above actual %d — bounds chain broken", tc.name, b.LowerPs, int64(r.ExecutionTimePs))
		}
		if lb := pf.LowerBoundPJ(b.LowerPs); lb > est.TotalPJ {
			t.Errorf("%s: energy LB %.6f pJ exceeds estimate %.6f pJ", tc.name, lb, est.TotalPJ)
		}
		// Even priced at the actual execution time the bound must hold:
		// the dynamic components are exact and SA/CA are nonnegative.
		if lb := pf.LowerBoundPJ(int64(r.ExecutionTimePs)); lb > est.TotalPJ {
			t.Errorf("%s: energy LB at actual latency %.6f pJ exceeds estimate %.6f pJ", tc.name, lb, est.TotalPJ)
		}
	}
}
