package benchrec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunQuick exercises the whole battery in quick mode and checks
// the produced record is self-consistent and passes its own gate.
func TestRunQuick(t *testing.T) {
	rec, err := Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Quick {
		t.Error("quick flag not recorded")
	}
	if len(rec.Results) != len(RequiredNames()) {
		t.Fatalf("results = %d, want %d", len(rec.Results), len(RequiredNames()))
	}
	for _, want := range []string{"serve/batch_estimate", "serve/coalesced_hit"} {
		found := false
		for _, name := range RequiredNames() {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("battery does not require %q", want)
		}
	}
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Errorf("quick record fails its own gate: %v", err)
	}
	// The kernel battery must confirm the zero-allocation property the
	// engine tests assert: steady-state event dispatch allocates only
	// when the heap or pool grows, which the warm-up run already did.
	for _, res := range rec.Results {
		if res.Name == "kernel/event_throughput" && res.AllocsPerOp > 0.01 {
			t.Errorf("event throughput allocates: %v allocs/op", res.AllocsPerOp)
		}
	}
	if rec.SimPsPerWallSecond <= 0 || rec.EventsPerWallSecond <= 0 {
		t.Errorf("rate gauges = %v, %v", rec.SimPsPerWallSecond, rec.EventsPerWallSecond)
	}
}

// TestValidateRejects enumerates the corruption cases the CI gate must
// catch on a committed BENCH_<n>.json.
func TestValidateRejects(t *testing.T) {
	rec, err := Run(true)
	if err != nil {
		t.Fatal(err)
	}
	good, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"garbage", []byte("{"), "not a record"},
		{"wrong schema", mutate(func(m map[string]any) { m["schema"] = "other/v9" }), "schema"},
		{"v1 record missing its own battery", mutate(func(m map[string]any) {
			m["schema"] = "segbus/bench-record/v1"
			var kept []any
			for _, r := range m["results"].([]any) {
				if r.(map[string]any)["name"].(string) != "serve/cache_hit" {
					kept = append(kept, r)
				}
			}
			m["results"] = kept
		}), "missing benchmark"},
		{"missing serve benchmarks", mutate(func(m map[string]any) {
			var kept []any
			for _, r := range m["results"].([]any) {
				name := r.(map[string]any)["name"].(string)
				if name != "serve/batch_estimate" && name != "serve/coalesced_hit" {
					kept = append(kept, r)
				}
			}
			m["results"] = kept
		}), "missing benchmark"},
		{"missing env", mutate(func(m map[string]any) { m["go"] = "" }), "environment"},
		{"missing benchmark", mutate(func(m map[string]any) {
			m["results"] = m["results"].([]any)[1:]
		}), "missing benchmark"},
		{"duplicate benchmark", mutate(func(m map[string]any) {
			rs := m["results"].([]any)
			m["results"] = append(rs, rs[0])
		}), "duplicate"},
		{"zero timing", mutate(func(m map[string]any) {
			m["results"].([]any)[0].(map[string]any)["ns_per_op"] = 0.0
		}), "timing"},
		{"negative allocs", mutate(func(m map[string]any) {
			m["results"].([]any)[0].(map[string]any)["allocs_per_op"] = -1.0
		}), "negative"},
		{"no rates", mutate(func(m map[string]any) { m["sim_ps_per_wall_second"] = 0.0 }), "rate"},
	}
	for _, tc := range cases {
		err := Validate(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := Validate(good); err != nil {
		t.Errorf("unmutated record rejected: %v", err)
	}

	// Older schemas validate against the battery of their day; a
	// record carrying more than its schema's minimum is fine (BENCH_6
	// is a v1 record with an extra benchmark).
	if err := Validate(mutate(func(m map[string]any) { m["schema"] = "segbus/bench-record/v1" })); err != nil {
		t.Errorf("v1 record with a superset battery rejected: %v", err)
	}
}

// TestValidateHistoricalRecords runs the gate over every committed
// BENCH_<n>.json at the repository root: the whole trajectory must
// stay valid as schemas evolve, not just the newest point.
func TestValidateHistoricalRecords(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found %d BENCH_*.json records, expected the committed trajectory (4+)", len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(data); err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
		}
	}
}
