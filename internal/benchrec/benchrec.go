// Package benchrec records the repository's performance trajectory as
// machine-readable JSON: a fixed battery of kernel, emulator and
// serving benchmarks plus the emulator's wall-clock rate gauges,
// written once per PR (BENCH_<n>.json at the repository root) so
// future changes have a baseline to compare against and CI can check
// the file's schema without re-measuring.
//
// The harness is self-contained rather than delegating to
// testing.Benchmark: quick mode (CI smoke) runs a small fixed
// iteration count, full mode calibrates until a minimum wall time is
// reached, and allocation figures come from runtime.MemStats deltas —
// the same numbers `go test -benchmem` reports, without depending on
// the testing package's flag machinery from a non-test binary.
package benchrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"segbus/internal/apps"
	"segbus/internal/automata"
	"segbus/internal/core"
	"segbus/internal/emulator"
	"segbus/internal/engine"
	"segbus/internal/explore"
	"segbus/internal/obs"
	"segbus/internal/serve"
)

// Schema identifies the record layout. Bump on incompatible change —
// v2 extended the required battery with the serving-cluster
// benchmarks (batch estimation and single-flight coalescing); v3 adds
// the traced request path (span recording, flight-recorder snapshot)
// so the observability overhead stays on the trajectory; v4 adds the
// machine-pool serving benchmarks — the raw-index byte fast path
// (cache_hit_bytes) and the pooled cold estimate; v5 adds the
// design-space explorer — the bounds-pruned reference run (parallel
// and single-worker, so the record carries the scheduling overhead on
// this box) and a small exhaustive space as the unpruned baseline.
const Schema = "segbus/bench-record/v5"

// requiredBySchema is the minimum benchmark set of every record
// layout ever committed, so Validate can check the whole trajectory
// (BENCH_5 onward), not just records of the current schema. A record
// may carry more than its schema's minimum — BENCH_6 is a v1 record
// with an extra benchmark — but never less.
var requiredBySchema = map[string][]string{
	"segbus/bench-record/v1": {
		"kernel/event_throughput", "kernel/queue_churn", "kernel/cancel_heavy",
		"emulator/mp3_estimate", "serve/cold_estimate", "serve/cache_hit",
	},
	"segbus/bench-record/v2": {
		"kernel/event_throughput", "kernel/queue_churn", "kernel/cancel_heavy",
		"emulator/mp3_estimate", "analyze/exact_reachability",
		"serve/cold_estimate", "serve/cache_hit",
		"serve/batch_estimate", "serve/coalesced_hit",
	},
	"segbus/bench-record/v3": {
		"kernel/event_throughput", "kernel/queue_churn", "kernel/cancel_heavy",
		"emulator/mp3_estimate", "analyze/exact_reachability",
		"serve/cold_estimate", "serve/cache_hit",
		"serve/batch_estimate", "serve/coalesced_hit", "serve/traced_estimate",
	},
	"segbus/bench-record/v4": {
		"kernel/event_throughput", "kernel/queue_churn", "kernel/cancel_heavy",
		"emulator/mp3_estimate", "analyze/exact_reachability",
		"serve/cold_estimate", "serve/cache_hit",
		"serve/batch_estimate", "serve/coalesced_hit", "serve/traced_estimate",
		"serve/cache_hit_bytes", "serve/pooled_cold_estimate",
	},
	// v5 (the current schema) requires the live battery; see Validate.
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Record is one point of the performance trajectory.
type Record struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	Quick   bool     `json:"quick"`
	Results []Result `json:"results"`

	// Emulator wall-clock rates from one instrumented MP3 run (the
	// obs volatile gauges, exported here because the deterministic
	// metrics JSON deliberately omits them).
	SimPsPerWallSecond  float64 `json:"sim_ps_per_wall_second"`
	EventsPerWallSecond float64 `json:"events_per_wall_second"`
}

// battery is the fixed benchmark list. Names are stable identifiers:
// Validate rejects a record that misses one, so a future PR cannot
// silently drop a tracked surface.
var battery = []struct {
	name  string
	quick int // iterations in quick mode
	body  func(n int) error
}{
	{"kernel/event_throughput", 20_000, benchEventThroughput},
	{"kernel/queue_churn", 50, benchQueueChurn},
	{"kernel/cancel_heavy", 200, benchCancelHeavy},
	{"emulator/mp3_estimate", 20, benchMP3Estimate},
	{"analyze/exact_reachability", 50, benchExactReachability},
	{"serve/cold_estimate", 10, benchColdEstimate},
	{"serve/cache_hit", 200, benchCacheHit},
	{"serve/batch_estimate", 100, benchBatchEstimate},
	{"serve/coalesced_hit", 50, benchCoalescedHit},
	{"serve/traced_estimate", 150, benchTracedEstimate},
	{"serve/cache_hit_bytes", 20_000, benchCacheHitBytes},
	{"serve/pooled_cold_estimate", 20, benchPooledColdEstimate},
	{"explore/pruned_space", 1, benchExplorePrunedSpace},
	{"explore/pruned_space_1w", 1, benchExplorePrunedSpaceSerial},
	{"explore/exhaustive_small", 1, benchExploreExhaustiveSmall},
}

// RequiredNames returns the stable benchmark identifiers every record
// must carry.
func RequiredNames() []string {
	names := make([]string, len(battery))
	for i, b := range battery {
		names[i] = b.name
	}
	return names
}

func benchEventThroughput(n int) error {
	s := engine.NewSim()
	count := 0
	var next engine.Handler
	next = func(now engine.Time) {
		count++
		if count < n {
			s.After(10, 0, next)
		}
	}
	s.At(0, 0, next)
	_, err := s.Run()
	return err
}

func benchQueueChurn(n int) error {
	for i := 0; i < n; i++ {
		s := engine.NewSim()
		for j := 0; j < 1024; j++ {
			s.At(engine.Time((j*37)%1024), j%3, func(engine.Time) {})
		}
		if _, err := s.Run(); err != nil {
			return err
		}
	}
	return nil
}

func benchCancelHeavy(n int) error {
	s := engine.NewSim()
	noop := engine.Handler(func(engine.Time) {})
	ids := make([]engine.EventID, 0, 64)
	for i := 0; i < n; i++ {
		now := s.Now()
		for j := 0; j < 64; j++ {
			ids = append(ids, s.At(now+engine.Time(1+j%17), j%3, noop))
		}
		for j, id := range ids {
			if j%2 == 0 {
				s.Cancel(id)
			}
		}
		ids = ids[:0]
		if _, err := s.RunUntil(now + 20); err != nil {
			return err
		}
	}
	return nil
}

func benchMP3Estimate(n int) error {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	for i := 0; i < n; i++ {
		if _, err := emulator.Run(m, p, emulator.Config{}); err != nil {
			return err
		}
	}
	return nil
}

func benchExactReachability(n int) error {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	sys, err := automata.Compile(m, p)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		res := sys.Check(automata.Options{})
		if res.Verdict != automata.Terminates {
			return fmt.Errorf("benchrec: MP3 schedule verdict %v, want terminates", res.Verdict)
		}
	}
	return nil
}

func benchColdEstimate(n int) error {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	for i := 0; i < n; i++ {
		if _, err := r.Key(m, p); err != nil {
			return err
		}
		if _, err := r.ReportJSON(m, p); err != nil {
			return err
		}
	}
	return nil
}

func benchCacheHit(n int) error {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	key, err := r.Key(m, p)
	if err != nil {
		return err
	}
	body, err := r.ReportJSON(m, p)
	if err != nil {
		return err
	}
	c := serve.NewCache(4)
	c.Put(key, body)
	for i := 0; i < n; i++ {
		k, err := r.Key(m, p)
		if err != nil {
			return err
		}
		if _, ok := c.Get(k); !ok {
			return fmt.Errorf("benchrec: unexpected cache miss")
		}
	}
	return nil
}

// benchBatchEstimate measures the warm batch path end to end: one
// POST /estimate/batch of eight items (four package-size variants,
// each twice) through the real handler — envelope decode, per-item
// parse and key derivation, dedup, sharded-cache hits and the
// verbatim report splice.
func benchBatchEstimate(n int) error {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := core.Transform(m, p)
	if err != nil {
		return err
	}
	sizes := []int{36, 18, 12, 9}
	var req serve.BatchRequest
	for i := 0; i < 8; i++ {
		req.Items = append(req.Items, serve.EstimateRequest{
			PSDF: string(psdfXML), PSM: string(psmXML), PackageSize: sizes[i%len(sizes)],
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	s := serve.New(serve.Config{Workers: 4, Queue: 8, CacheEntries: 64})
	h := s.Handler()
	for i := 0; i <= n; i++ { // iteration 0 warms the cache, uncounted
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate/batch", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("benchrec: batch status %d", rec.Code)
		}
	}
	return nil
}

// benchCoalescedHit measures the single-flight fast path under
// contention: per op, a fresh server (cold cache) takes four
// concurrent identical requests — one emulation, three waiters served
// from the published flight.
func benchCoalescedHit(n int) error {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := core.Transform(m, p)
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{Workers: 2, Queue: 8, CacheEntries: 8})
		h := s.Handler()
		var wg sync.WaitGroup
		errc := make(chan error, 4)
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("benchrec: coalesced status %d", rec.Code)
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errc:
			return err
		default:
		}
	}
	return nil
}

// benchTracedEstimate measures the fully traced cache-hit path: every
// request carries a sampled W3C traceparent, so each op pays for span
// recording across the whole stage breakdown (decode, parse,
// fingerprint, cache probe, serialize), the snapshot assembly at
// Finish and the flight-recorder publish — the cost the unsampled
// path avoids and TestTracingOverheadSmoke bounds.
func benchTracedEstimate(n int) error {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := core.Transform(m, p)
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)})
	if err != nil {
		return err
	}
	s := serve.New(serve.Config{Workers: 2, Queue: 8, CacheEntries: 8, TraceSample: 0})
	h := s.Handler()
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	for i := 0; i <= n; i++ { // iteration 0 warms the cache, uncounted
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/estimate", bytes.NewReader(body))
		req.Header.Set("traceparent", parent)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("benchrec: traced status %d", rec.Code)
		}
		if rec.Header().Get("X-Segbus-Trace") == "" {
			return fmt.Errorf("benchrec: traced request missing X-Segbus-Trace")
		}
	}
	return nil
}

// benchCacheHitBytes measures the raw-index fast path in isolation:
// one warm server, one repeated request struct, and per op exactly
// what a verbatim repeat pays before the response write — hash the
// raw request fields and copy out the pre-serialized bytes. This is
// the "cache hit copies one []byte" number; the HTTP envelope around
// it is measured by serve/traced_estimate and the load harness.
func benchCacheHitBytes(n int) error {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := core.Transform(m, p)
	if err != nil {
		return err
	}
	req := serve.EstimateRequest{PSDF: string(psdfXML), PSM: string(psmXML)}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	s := serve.New(serve.Config{Workers: 1, Queue: 2, CacheEntries: 8})
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/estimate", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return fmt.Errorf("benchrec: warmup status %d", rec.Code)
	}
	for i := 0; i < n; i++ {
		if _, ok := s.RawProbe(&req); !ok {
			return fmt.Errorf("benchrec: raw index miss on a warm server")
		}
	}
	return nil
}

// benchPooledColdEstimate measures the pooled leader path after the
// fingerprint: a cache-missing request's emulation on a reused warm
// machine (ReportJSONOn), which is the whole per-request cost the
// machine pool leaves standing — validation, schedule extraction,
// in-place reconfiguration and the run itself, with no arena
// construction. Compare against emulator/mp3_estimate (the raw fresh
// run) for the construction overhead the pool removes.
func benchPooledColdEstimate(n int) error {
	r := core.NewRunner(core.Options{})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	mc := emulator.NewMachine()
	if _, err := r.ReportJSONOn(mc, m, p); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := r.ReportJSONOn(mc, m, p); err != nil {
			return err
		}
	}
	return nil
}

// benchExplorePrunedSpace measures one bounds-pruned run of the
// 10240-candidate MP3 reference space at the default worker count —
// the explorer's headline number. Compare with explore/
// exhaustive_small (per-candidate cost without pruning) and explore/
// pruned_space_1w (the scheduler's parallel benefit on this box; on a
// single-CPU runner the two are expected to coincide — wall-clock
// speedup needs real cores, see the BENCH notes in EXPERIMENTS.md).
func benchExplorePrunedSpace(n int) error {
	return runExplore(n, explore.Options{})
}

func benchExplorePrunedSpaceSerial(n int) error {
	return runExplore(n, explore.Options{Workers: 1})
}

func runExplore(n int, opts explore.Options) error {
	m := apps.MP3Model()
	space := explore.ReferenceMP3Space()
	for i := 0; i < n; i++ {
		res, err := explore.Run(m, space, opts)
		if err != nil {
			return err
		}
		if res.Errors > 0 {
			return fmt.Errorf("benchrec: %d explorer candidate errors", res.Errors)
		}
		if !opts.NoPrune && res.PruningRatio < 0.5 {
			return fmt.Errorf("benchrec: pruning ratio %.3f below the 0.5 floor", res.PruningRatio)
		}
	}
	return nil
}

// benchExploreExhaustiveSmall measures a 54-candidate space emulated
// exhaustively (pruning off): the per-candidate cost baseline the
// pruned run's savings are judged against.
func benchExploreExhaustiveSmall(n int) error {
	m := apps.MP3Model()
	space := &explore.Space{
		Name:         "bench-small",
		Segments:     []int{1, 2, 3},
		PackageSizes: []int{9, 18, 36},
		HeaderTicks:  []int{0, 25, 100},
		CAHopTicks:   []int{0, 100},
	}
	for i := 0; i < n; i++ {
		res, err := explore.Run(m, space, explore.Options{NoPrune: true})
		if err != nil {
			return err
		}
		if res.Emulated != space.Size() {
			return fmt.Errorf("benchrec: exhaustive run emulated %d of %d", res.Emulated, space.Size())
		}
	}
	return nil
}

// minFullDuration is the per-benchmark wall-time target of a full
// (non-quick) run; iteration counts double until it is reached.
const minFullDuration = 300 * time.Millisecond

// measure times body(n): ns/op, allocs/op and bytes/op over n
// iterations from MemStats deltas (the counters are monotonic, so a
// concurrent GC does not disturb them).
func measure(body func(n int) error, n int) (Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := body(n); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ns := float64(elapsed.Nanoseconds()) / float64(n)
	res := Result{
		Iterations:  n,
		NsPerOp:     ns,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}
	if ns > 0 {
		res.OpsPerSec = 1e9 / ns
	}
	return res, nil
}

// Run executes the battery and assembles the trajectory record. quick
// uses fixed small iteration counts (a CI smoke that finishes in
// ~a second); the full mode calibrates each benchmark to a stable
// wall-time window.
func Run(quick bool) (*Record, error) {
	rec := &Record{
		Schema: Schema,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Quick:  quick,
	}
	for _, b := range battery {
		// Warm caches, pools and lazy initialisation outside the
		// measurement window.
		if err := b.body(1); err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		n := b.quick
		if !quick {
			for {
				probe, err := measure(b.body, n)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", b.name, err)
				}
				if time.Duration(probe.NsPerOp*float64(n)) >= minFullDuration {
					break
				}
				n *= 2
			}
		}
		res, err := measure(b.body, n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		res.Name = b.name
		rec.Results = append(rec.Results, res)
	}

	// One instrumented emulation for the wall-clock rate gauges.
	reg := obs.NewRegistry()
	if _, err := emulator.Run(apps.MP3Model(), apps.MP3Platform3(36), emulator.Config{Metrics: reg}); err != nil {
		return nil, err
	}
	all := reg.Snapshot(true)
	rec.SimPsPerWallSecond = all["segbus_emu_sim_ps_per_wall_second"]
	rec.EventsPerWallSecond = all["segbus_emu_events_per_wall_second"]
	return rec, nil
}

// Marshal renders the record as indented JSON with a trailing
// newline.
func (r *Record) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Validate checks that data is a structurally sound trajectory
// record: a known schema, that schema's minimum benchmark set present
// (each at most once, with positive timings), and non-negative rates.
// Records of the current schema must carry the full live battery;
// records of older schemas are validated against the battery of their
// day, so the CI gate can cover every committed BENCH_<n>.json, not
// just the newest.
func Validate(data []byte) error {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("benchrec: not a record: %w", err)
	}
	required, ok := requiredBySchema[rec.Schema]
	if rec.Schema == Schema {
		required, ok = RequiredNames(), true
	}
	if !ok {
		return fmt.Errorf("benchrec: unknown schema %q (current is %q)", rec.Schema, Schema)
	}
	if rec.Go == "" || rec.GOOS == "" || rec.GOARCH == "" {
		return fmt.Errorf("benchrec: missing environment fields")
	}
	seen := make(map[string]bool, len(rec.Results))
	for _, res := range rec.Results {
		if seen[res.Name] {
			return fmt.Errorf("benchrec: duplicate result %q", res.Name)
		}
		seen[res.Name] = true
		if res.Iterations <= 0 {
			return fmt.Errorf("benchrec: %s: non-positive iterations %d", res.Name, res.Iterations)
		}
		if res.NsPerOp <= 0 || res.OpsPerSec <= 0 {
			return fmt.Errorf("benchrec: %s: non-positive timing", res.Name)
		}
		if res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
			return fmt.Errorf("benchrec: %s: negative allocation figure", res.Name)
		}
	}
	for _, name := range required {
		if !seen[name] {
			return fmt.Errorf("benchrec: missing benchmark %q", name)
		}
	}
	if rec.SimPsPerWallSecond <= 0 || rec.EventsPerWallSecond <= 0 {
		return fmt.Errorf("benchrec: missing emulator rate gauges")
	}
	return nil
}
