// Package core implements the paper's primary contribution as an API:
// the performance-estimation technique for the SegBus distributed
// architecture.
//
// The technique (Figure 3 of the paper) takes a partitioned
// application modeled as PSDF, a candidate platform configuration
// modeled as PSM, transforms both into XML schemes, feeds the schemes
// to the emulator, and returns execution-time and utilisation
// estimates the designer uses to pick a configuration before moving to
// lower abstraction levels. This package drives the whole pipeline —
// including the design-space exploration loop across many candidate
// configurations, run concurrently — and the accuracy experiment that
// compares the estimate with the refined (ground-truth) model.
package core

import (
	"fmt"

	"segbus/internal/analyze"
	"segbus/internal/emulator"
	"segbus/internal/m2t"
	"segbus/internal/obs"
	"segbus/internal/parallel"
	"segbus/internal/place"
	"segbus/internal/platform"
	"segbus/internal/psdf"
	"segbus/internal/realplat"
	"segbus/internal/schema"
	"segbus/internal/stats"
	"segbus/internal/trace"
)

// Options tunes an estimation.
type Options struct {
	// Trace enables interval/mark recording (Figure 10/11 views).
	Trace bool

	// DetectTicks overrides the monitor's end-detection latency.
	DetectTicks int64

	// Overheads selects a non-default timing model; leave zero for
	// the paper's estimation model.
	Overheads emulator.Overheads

	// Policy selects the segment arbiters' selection rule; the zero
	// value is the default border-units-first policy.
	Policy emulator.Policy

	// Observer, when non-nil, receives emulation events as they
	// happen (stages, grants, deliveries).
	Observer emulator.Observer

	// Metrics, when non-nil, receives the run's monitoring counters
	// (see emulator.Config.Metrics).
	Metrics *obs.Registry

	// Preflight runs the static structural and liveness analyzers
	// before spending emulation time; error-severity findings abort
	// the estimation with a PreflightError carrying every coded
	// diagnostic.
	Preflight bool
}

// PreflightError reports that the static pre-flight analysis rejected
// the model pair before emulation. Result carries the full coded
// diagnostics for display or JSON output.
type PreflightError struct {
	Result *analyze.Result
}

// Error implements the error interface with the aggregated findings.
func (e *PreflightError) Error() string {
	errs, _, _ := e.Result.Counts()
	s := fmt.Sprintf("core: preflight found %d error(s)", errs)
	for _, d := range e.Result.Diagnostics {
		if d.Severity == analyze.SeverityError {
			s += "; " + d.String()
		}
	}
	return s
}

// Preflight runs the static structural and liveness analyzers on a
// model pair — the cheap gate every tool can apply before an
// emulation or exploration run. plat may be nil to check a bare
// application model.
func Preflight(m *psdf.Model, plat *platform.Platform) *analyze.Result {
	return analyze.RunModels(m, plat, analyze.Options{
		Analyzers: analyze.PreflightAnalyzers(),
	})
}

// Estimation is the result of estimating one (application,
// configuration) pair.
type Estimation struct {
	Report *emulator.Report
	Trace  *trace.Trace // nil unless Options.Trace was set
	BUs    []stats.BUAnalysis
}

// ExecutionTimePs returns the estimated total execution time in
// picoseconds.
func (e *Estimation) ExecutionTimePs() int64 { return int64(e.Report.ExecutionTimePs) }

// emulatorConfig translates the estimation options into the emulator
// configuration, attaching the given trace sink.
func (o Options) emulatorConfig(tr *trace.Trace) emulator.Config {
	return emulator.Config{
		Overheads:   o.Overheads,
		DetectTicks: o.DetectTicks,
		Policy:      o.Policy,
		Observer:    o.Observer,
		Trace:       tr,
		Metrics:     o.Metrics,
	}
}

// Estimate runs the estimation technique on in-memory models.
func Estimate(m *psdf.Model, plat *platform.Platform, opts Options) (*Estimation, error) {
	return estimate(nil, m, plat, opts)
}

// EstimateOn runs the estimation technique on a caller-provided
// reusable emulator machine — the pooling seam a long-lived service
// uses to skip per-request machine construction. Results are
// byte-identical to Estimate for the same inputs; only the arena
// storage is reused. The machine must not be in use by another
// goroutine.
func EstimateOn(mc *emulator.Machine, m *psdf.Model, plat *platform.Platform, opts Options) (*Estimation, error) {
	return estimate(mc, m, plat, opts)
}

// estimate is the shared body of Estimate and EstimateOn: mc == nil
// runs on a fresh machine.
func estimate(mc *emulator.Machine, m *psdf.Model, plat *platform.Platform, opts Options) (*Estimation, error) {
	if opts.Preflight {
		if res := Preflight(m, plat); res.HasErrors() {
			return nil, &PreflightError{Result: res}
		}
	}
	var tr *trace.Trace
	if opts.Trace {
		tr = &trace.Trace{}
	}
	cfg := opts.emulatorConfig(tr)
	var r *emulator.Report
	var err error
	if mc != nil {
		r, err = mc.Run(m, plat, cfg)
	} else {
		r, err = emulator.Run(m, plat, cfg)
	}
	if err != nil {
		return nil, err
	}
	return &Estimation{Report: r, Trace: tr, BUs: stats.AnalyzeBUs(r)}, nil
}

// EstimateXML runs the paper's exact flow: the PSDF and PSM XML
// schemes produced by the model-to-text transformation are parsed,
// the platform structure is rebuilt, and the emulation is executed.
// packageSize overrides the scheme's package size when positive (the
// paper supplies the package size to the emulator alongside the
// schemes).
func EstimateXML(psdfXML, psmXML []byte, packageSize int, opts Options) (*Estimation, error) {
	m, err := schema.ParsePSDF(psdfXML)
	if err != nil {
		return nil, err
	}
	plat, err := schema.ParsePSM(psmXML)
	if err != nil {
		return nil, err
	}
	if packageSize > 0 {
		plat.PackageSize = packageSize
	}
	return Estimate(m, plat, opts)
}

// Transform applies the model-to-text transformation to both models
// and returns the generated XML schemes (PSDF first, PSM second) —
// the handoff artifact between the modeling tool and the emulator.
func Transform(m *psdf.Model, plat *platform.Platform) (psdfXML, psmXML []byte, err error) {
	psdfXML, err = m2t.GeneratePSDF(m)
	if err != nil {
		return nil, nil, err
	}
	psmXML, err = m2t.GeneratePSM(plat)
	if err != nil {
		return nil, nil, err
	}
	return psdfXML, psmXML, nil
}

// RoundTrip performs Transform followed by EstimateXML, exercising
// the full methodology pipeline end to end.
func RoundTrip(m *psdf.Model, plat *platform.Platform, opts Options) (*Estimation, error) {
	psdfXML, psmXML, err := Transform(m, plat)
	if err != nil {
		return nil, err
	}
	return EstimateXML(psdfXML, psmXML, 0, opts)
}

// AccuracyExperiment estimates the configuration with the estimation
// model, runs the refined (ground-truth) model on the same
// configuration, and returns the comparison — the procedure behind
// the paper's 95%/93% accuracy figures.
func AccuracyExperiment(label string, m *psdf.Model, plat *platform.Platform) (stats.Accuracy, error) {
	est, err := emulator.Run(m, plat, emulator.Config{})
	if err != nil {
		return stats.Accuracy{}, fmt.Errorf("core: estimation run: %w", err)
	}
	act, err := realplat.Run(m, plat, realplat.Config{})
	if err != nil {
		return stats.Accuracy{}, fmt.Errorf("core: refined run: %w", err)
	}
	return stats.Compare(label, est, act), nil
}

// Candidate is one configuration entering design-space exploration.
type Candidate struct {
	Label    string
	Platform *platform.Platform
}

// Ranked is one exploration outcome.
type Ranked struct {
	Candidate Candidate
	Report    *emulator.Report
	Err       error
}

// Explore estimates every candidate configuration concurrently and
// returns the outcomes in candidate order together with a rendered
// ranking table of the successful ones (fastest first). workers <= 0
// selects one worker per CPU.
func Explore(m *psdf.Model, candidates []Candidate, workers int) ([]Ranked, string) {
	jobs := make([]parallel.Job, len(candidates))
	for i, c := range candidates {
		jobs[i] = parallel.Job{Label: c.Label, Model: m, Platform: c.Platform}
	}
	results := parallel.Run(jobs, parallel.Options{Workers: workers})
	out := make([]Ranked, len(candidates))
	var rows []stats.ConfigResult
	for i, r := range results {
		out[i] = Ranked{Candidate: candidates[i], Report: r.Report, Err: r.Err}
		if r.Err == nil {
			rows = append(rows, stats.RowFromReport(r.Label, r.Report))
		}
	}
	return out, stats.RankTable(rows)
}

// Best returns the fastest successful outcome of an exploration, or
// an error when every candidate failed.
func Best(ranked []Ranked) (Ranked, error) {
	best := -1
	for i, r := range ranked {
		if r.Err != nil {
			continue
		}
		if best < 0 || r.Report.ExecutionTimePs < ranked[best].Report.ExecutionTimePs {
			best = i
		}
	}
	if best < 0 {
		return Ranked{}, fmt.Errorf("core: no candidate configuration could be estimated")
	}
	return ranked[best], nil
}

// PlatformFromAllocation builds a platform from a placement result:
// segment i (zero-based) receives clock clocks[i]. The allocation's
// segment count must match len(clocks).
func PlatformFromAllocation(name string, a place.Allocation, clocks []platform.Hz, caClock platform.Hz, packageSize, headerTicks, caHopTicks int) (*platform.Platform, error) {
	if len(clocks) != a.Segments {
		return nil, fmt.Errorf("core: %d clocks for %d segments", len(clocks), a.Segments)
	}
	if !a.Valid() {
		return nil, fmt.Errorf("core: invalid allocation %v", a)
	}
	p := platform.New(name, caClock, packageSize)
	p.HeaderTicks = headerTicks
	p.CAHopTicks = caHopTicks
	for s := 0; s < a.Segments; s++ {
		p.AddSegment(clocks[s], a.ProcessesOn(s)...)
	}
	return p, nil
}

// AutoPlace derives the communication matrix from the model, solves
// the placement for the given segment count and returns the resulting
// platform — the PlaceTool step of the paper's flow (section 3.5).
func AutoPlace(name string, m *psdf.Model, clocks []platform.Hz, caClock platform.Hz, packageSize, headerTicks, caHopTicks int) (*platform.Platform, error) {
	cm := m.CommunicationMatrix()
	alloc, err := place.Solve(cm, len(clocks), place.Options{})
	if err != nil {
		return nil, err
	}
	return PlatformFromAllocation(name, alloc, clocks, caClock, packageSize, headerTicks, caHopTicks)
}
