package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Fingerprint renders the report-affecting option fields in a stable
// textual form. Side-channel fields (Trace, Observer, Metrics) are
// excluded on purpose: they record how a run is watched, not what it
// computes, so two runs differing only in them produce byte-identical
// reports. Preflight is likewise excluded — it can only veto a run,
// never change its result.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("detect=%d;policy=%d;grant=%d;sync=%d;caset=%d;careset=%d",
		o.DetectTicks, o.Policy,
		o.Overheads.GrantTicks, o.Overheads.SyncTicks,
		o.Overheads.CASetTicks, o.Overheads.CAResetTicks)
}

// Key returns the content address of an estimation: a hex SHA-256
// over the canonical XML schemes of the model pair (the deterministic
// m2t rendering, so semantically identical documents collide
// regardless of their textual source) and the option fingerprint.
// Equal keys therefore promise byte-identical report JSON, which is
// what makes the key safe to use as a result-cache address.
func Key(m *psdf.Model, plat *platform.Platform, opts Options) (string, error) {
	psdfXML, psmXML, err := Transform(m, plat)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	// Length-framed fields keep the encoding injective.
	fmt.Fprintf(h, "segbus/estimate/v1\n%d\n", len(psdfXML))
	h.Write(psdfXML)
	fmt.Fprintf(h, "\n%d\n", len(psmXML))
	h.Write(psmXML)
	fmt.Fprintf(h, "\n%s\n", opts.Fingerprint())
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Runner is a reusable estimation front end: one fixed option set
// applied to many model pairs, as a long-lived service does. The zero
// value runs the paper's estimation model with no preflight; a Runner
// is safe for concurrent use when its Options are (the shared Metrics
// registry and Observer, if any, must tolerate concurrent runs —
// *obs.Registry does).
type Runner struct {
	Opts Options
}

// NewRunner returns a Runner with the given fixed options.
func NewRunner(opts Options) *Runner { return &Runner{Opts: opts} }

// Key returns the content address of running m on plat under the
// runner's options (see Key).
func (r *Runner) Key(m *psdf.Model, plat *platform.Platform) (string, error) {
	return Key(m, plat, r.Opts)
}

// Estimate runs one estimation under the runner's options.
func (r *Runner) Estimate(m *psdf.Model, plat *platform.Platform) (*Estimation, error) {
	return Estimate(m, plat, r.Opts)
}

// EstimateOn runs one estimation under the runner's options on a
// caller-provided reusable machine (see EstimateOn).
func (r *Runner) EstimateOn(mc *emulator.Machine, m *psdf.Model, plat *platform.Platform) (*Estimation, error) {
	return EstimateOn(mc, m, plat, r.Opts)
}

// ReportJSON runs one estimation and renders the versioned report
// JSON — the serving payload, byte-identical for equal Keys.
func (r *Runner) ReportJSON(m *psdf.Model, plat *platform.Platform) ([]byte, error) {
	est, err := r.Estimate(m, plat)
	if err != nil {
		return nil, err
	}
	return est.Report.JSON()
}

// ReportJSONOn is ReportJSON on a caller-provided reusable machine:
// the serving pool's leader path, producing bytes identical to
// ReportJSON for the same inputs.
func (r *Runner) ReportJSONOn(mc *emulator.Machine, m *psdf.Model, plat *platform.Platform) ([]byte, error) {
	est, err := r.EstimateOn(mc, m, plat)
	if err != nil {
		return nil, err
	}
	return est.Report.JSON()
}
