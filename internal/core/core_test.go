package core

import (
	"reflect"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/place"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func TestEstimate(t *testing.T) {
	est, err := Estimate(apps.MP3Model(), apps.MP3Platform3(36), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Report == nil || est.Trace != nil {
		t.Error("unexpected estimation contents")
	}
	if len(est.BUs) != 2 {
		t.Errorf("BU analyses = %d", len(est.BUs))
	}
	if est.ExecutionTimePs() <= 0 {
		t.Error("no execution time")
	}
}

func TestEstimateWithTrace(t *testing.T) {
	est, err := Estimate(apps.MP3Model(), apps.MP3Platform3(36), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trace == nil || len(est.Trace.Intervals) == 0 {
		t.Error("trace not recorded")
	}
}

func TestEstimatePropagatesValidation(t *testing.T) {
	if _, err := Estimate(psdf.NewModel("bad"), apps.MP3Platform3(36), Options{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestPreflightGatesEstimate(t *testing.T) {
	// A same-stage cycle with all inputs inside the cycle: preflight
	// must reject it and carry the liveness SB101 deadlock finding
	// alongside the structural ones.
	m := psdf.NewModel("deadlock")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	m.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 36, Order: 1, Ticks: 5})
	plat := platform.New("p", 100*platform.MHz, 36)
	plat.AddSegment(100*platform.MHz, 0, 1)

	_, err := Estimate(m, plat, Options{Preflight: true})
	perr, ok := err.(*PreflightError)
	if !ok {
		t.Fatalf("err = %v, want *PreflightError", err)
	}
	if !strings.Contains(perr.Error(), "SB101") {
		t.Errorf("preflight error lacks the cycle code: %v", perr)
	}
	found := false
	for _, d := range perr.Result.Diagnostics {
		if d.Code == "SB101" {
			found = true
		}
	}
	if !found {
		t.Error("PreflightError.Result does not carry the SB101 finding")
	}
}

func TestPreflightPassesCleanModel(t *testing.T) {
	est, err := Estimate(apps.MP3Model(), apps.MP3Platform3(36), Options{Preflight: true})
	if err != nil || est == nil {
		t.Fatalf("clean model rejected by preflight: %v", err)
	}
	res := Preflight(apps.MP3Model(), nil)
	if res.HasErrors() {
		t.Errorf("bare MP3 model fails preflight:\n%s", res)
	}
}

func TestTransformAndEstimateXML(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := Transform(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(psdfXML), "P1_576_1_250") {
		t.Error("PSDF XML malformed")
	}
	est, err := EstimateXML(psdfXML, psmXML, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Estimate(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(est.Report, direct.Report) {
		t.Error("XML path and direct path disagree")
	}
}

func TestEstimateXMLPackageSizeOverride(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := Transform(m, p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateXML(psdfXML, psmXML, 18, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Report.PackageSize != 18 {
		t.Errorf("package size = %d, want override 18", est.Report.PackageSize)
	}
}

func TestEstimateXMLErrors(t *testing.T) {
	if _, err := EstimateXML([]byte("junk"), []byte("junk"), 0, Options{}); err == nil {
		t.Error("junk XML accepted")
	}
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	psdfXML, psmXML, err := Transform(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateXML(psdfXML, []byte("junk"), 0, Options{}); err == nil {
		t.Error("junk PSM accepted")
	}
	if _, err := EstimateXML([]byte("junk"), psmXML, 0, Options{}); err == nil {
		t.Error("junk PSDF accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	est, err := RoundTrip(apps.MP3Model(), apps.MP3Platform3(36), Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Estimate(apps.MP3Model(), apps.MP3Platform3(36), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.ExecutionTimePs() != direct.ExecutionTimePs() {
		t.Error("round trip changed the estimate")
	}
}

func TestAccuracyExperiment(t *testing.T) {
	acc, err := AccuracyExperiment("3seg/s36", apps.MP3Model(), apps.MP3Platform3(36))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Percent() < 90 || acc.Percent() > 99.5 {
		t.Errorf("accuracy = %v%%", acc.Percent())
	}
	if acc.EstimatedPs >= acc.ActualPs {
		t.Error("estimation model should under-estimate the refined model")
	}
}

func TestExploreAndBest(t *testing.T) {
	m := apps.MP3Model()
	cands := []Candidate{
		{Label: "1seg", Platform: apps.MP3Platform1(36)},
		{Label: "2seg", Platform: apps.MP3Platform2(36)},
		{Label: "3seg", Platform: apps.MP3Platform3(36)},
		{Label: "3seg-p9", Platform: apps.MP3Platform3MovedP9(36)},
	}
	ranked, table := Explore(m, cands, 4)
	if len(ranked) != 4 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	for _, r := range ranked {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Candidate.Label, r.Err)
		}
	}
	if !strings.Contains(table, "configuration") || !strings.Contains(table, "3seg") {
		t.Errorf("table:\n%s", table)
	}
	best, err := Best(ranked)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		if r.Err == nil && r.Report.ExecutionTimePs < best.Report.ExecutionTimePs {
			t.Error("Best did not pick the fastest")
		}
	}
}

func TestBestAllFailed(t *testing.T) {
	if _, err := Best([]Ranked{{Err: errFake}}); err == nil {
		t.Error("Best with only failures succeeded")
	}
	if _, err := Best(nil); err == nil {
		t.Error("Best(nil) succeeded")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestPlatformFromAllocation(t *testing.T) {
	a := place.Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0, 1: 0, 2: 1}}
	clocks := []platform.Hz{90 * platform.MHz, 95 * platform.MHz}
	p, err := PlatformFromAllocation("auto", a, clocks, 100*platform.MHz, 36, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 2 || p.SegmentOf(2) != 2 || p.HeaderTicks != 25 {
		t.Errorf("platform = %v", p)
	}
	if _, err := PlatformFromAllocation("bad", a, clocks[:1], 100*platform.MHz, 36, 0, 0); err == nil {
		t.Error("clock count mismatch accepted")
	}
	invalid := place.Allocation{Segments: 2, Of: map[psdf.ProcessID]int{0: 0}}
	if _, err := PlatformFromAllocation("bad", invalid, clocks, 100*platform.MHz, 36, 0, 0); err == nil {
		t.Error("invalid allocation accepted")
	}
}

func TestAutoPlace(t *testing.T) {
	m := apps.MP3Model()
	clocks := []platform.Hz{91 * platform.MHz, 98 * platform.MHz, 89 * platform.MHz}
	p, err := AutoPlace("auto3", m, clocks, 111*platform.MHz, 36, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateMapping(m); err != nil {
		t.Fatal(err)
	}
	// The auto-placed platform must be emulatable.
	if _, err := Estimate(m, p, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestExploreIsolatesFailures(t *testing.T) {
	m := apps.MP3Model()
	broken := platform.New("broken", 100*platform.MHz, 36)
	broken.AddSegment(100*platform.MHz, 0) // incomplete mapping
	ranked, table := Explore(m, []Candidate{
		{Label: "bad", Platform: broken},
		{Label: "good", Platform: apps.MP3Platform3(36)},
	}, 2)
	if ranked[0].Err == nil {
		t.Error("broken candidate reported success")
	}
	if ranked[1].Err != nil {
		t.Errorf("healthy candidate failed: %v", ranked[1].Err)
	}
	if !strings.Contains(table, "good") || strings.Contains(table, "bad ") {
		t.Errorf("table should rank only successes:\n%s", table)
	}
	best, err := Best(ranked)
	if err != nil || best.Candidate.Label != "good" {
		t.Errorf("Best = %v, %v", best.Candidate.Label, err)
	}
}
