package core

// The pooling seam: EstimateOn / ReportJSONOn on a reused machine must
// produce bytes identical to the fresh-machine entry points.

import (
	"bytes"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

func pooledPairs() []struct {
	m    *psdf.Model
	plat *platform.Platform
} {
	return []struct {
		m    *psdf.Model
		plat *platform.Platform
	}{
		{apps.MP3Model(), apps.MP3Platform3(36)},
		{apps.JPEGModel(), apps.JPEGPlatform3(64)},
		{apps.MP3Model(), apps.MP3Platform2(36)},
	}
}

func TestReportJSONOnMatchesFresh(t *testing.T) {
	r := NewRunner(Options{})
	mc := emulator.NewMachine()
	for pass := 0; pass < 2; pass++ {
		for i, p := range pooledPairs() {
			fresh, err := r.ReportJSON(p.m, p.plat)
			if err != nil {
				t.Fatalf("pass %d pair %d: fresh: %v", pass, i, err)
			}
			pooled, err := r.ReportJSONOn(mc, p.m, p.plat)
			if err != nil {
				t.Fatalf("pass %d pair %d: pooled: %v", pass, i, err)
			}
			if !bytes.Equal(pooled, fresh) {
				t.Errorf("pass %d pair %d: pooled report differs from fresh", pass, i)
			}
		}
	}
}

func TestEstimateOnHonoursOptions(t *testing.T) {
	mc := emulator.NewMachine()
	m, plat := apps.MP3Model(), apps.MP3Platform3(36)
	est, err := EstimateOn(mc, m, plat, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trace == nil || len(est.Trace.Intervals) == 0 {
		t.Error("EstimateOn with Trace produced no trace rows")
	}
	if len(est.BUs) == 0 {
		t.Error("EstimateOn produced no BU analysis")
	}

	// Preflight still gates the pooled path: the same-stage cycle
	// Estimate rejects (SB101) must be rejected before the machine is
	// touched.
	bad := psdf.NewModel("deadlock")
	bad.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 5})
	bad.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 36, Order: 1, Ticks: 5})
	pb := platform.New("p", 100*platform.MHz, 36)
	pb.AddSegment(100*platform.MHz, 0, 1)
	if _, err := EstimateOn(mc, bad, pb, Options{Preflight: true}); err == nil {
		t.Error("EstimateOn with Preflight accepted a model Estimate rejects")
	} else if _, ok := err.(*PreflightError); !ok {
		t.Errorf("EstimateOn preflight error has type %T, want *PreflightError", err)
	}
}
