package core

import (
	"bytes"
	"strings"
	"testing"

	"segbus/internal/apps"
	"segbus/internal/emulator"
)

func TestKeyDeterministic(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	k1, err := Key(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same inputs hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Fatalf("key is not lowercase hex SHA-256: %q", k1)
	}
}

func TestKeySensitivity(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	base, err := Key(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	p36b := apps.MP3Platform3(36)
	p36b.PackageSize = 48
	variants := map[string]func() (string, error){
		"package size": func() (string, error) { return Key(m, p36b, Options{}) },
		"detect ticks": func() (string, error) { return Key(m, p, Options{DetectTicks: 7}) },
		"policy":       func() (string, error) { return Key(m, p, Options{Policy: emulator.PolicyFIFO}) },
		"overheads": func() (string, error) {
			return Key(m, p, Options{Overheads: emulator.Overheads{GrantTicks: 1, SyncTicks: 2}})
		},
		"model": func() (string, error) { return Key(apps.JPEGModel(), apps.JPEGPlatform3(36), Options{}) },
	}
	for what, mk := range variants {
		k, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if k == base {
			t.Errorf("changing %s did not change the key", what)
		}
	}
}

func TestKeyIgnoresSideChannels(t *testing.T) {
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	base, err := Key(m, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withSide, err := Key(m, p, Options{Trace: true, Preflight: true})
	if err != nil {
		t.Fatal(err)
	}
	if base != withSide {
		t.Error("trace/preflight side channels leaked into the cache key")
	}
}

func TestRunnerReportJSONDeterministic(t *testing.T) {
	r := NewRunner(Options{Preflight: true})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	a, err := r.ReportJSON(m, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReportJSON(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two runs of the same pair produced different report JSON")
	}
	if !bytes.Contains(a, []byte(`"execution_time_ps"`)) {
		t.Errorf("report JSON missing execution time: %s", a)
	}
}

func TestRunnerPreflightRejects(t *testing.T) {
	r := NewRunner(Options{Preflight: true})
	m := apps.MP3Model()
	p := apps.MP3Platform3(36)
	p.Segments[0].FUs = nil // empty segment: SB027
	if _, err := r.ReportJSON(m, p); err == nil {
		t.Fatal("preflight accepted an empty segment")
	}
}
