package explore

// ReferenceMP3Space is the benchmark configuration space for the
// paper's MP3 decoder: 10240 candidates spanning every axis the
// explorer prunes on. It is the space BENCH's explore battery, the
// check.sh determinism smoke and the ISSUE acceptance numbers all
// refer to; don't reshape it casually — the recorded pruning ratios
// are only comparable across runs of the same space.
//
// 4 segment counts × 2 mappings × 10 package sizes × 16 header costs
// × 8 CA hop costs = 10240.
func ReferenceMP3Space() *Space {
	return &Space{
		Name:         "mp3-ref",
		Segments:     []int{1, 2, 3, 4},
		Mappings:     []string{MappingSolve, MappingRoundRobin},
		PackageSizes: []int{4, 6, 9, 12, 18, 24, 36, 48, 72, 96},
		HeaderTicks:  []int{0, 2, 5, 10, 15, 25, 40, 60, 80, 100, 125, 150, 175, 200, 250, 300},
		CAHopTicks:   []int{0, 10, 25, 50, 100, 150, 200, 300},
	}
}
