package explore

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"segbus/internal/apps"
	"segbus/internal/obs"
	"segbus/internal/psdf"
)

func TestSpaceValidation(t *testing.T) {
	cases := []struct {
		name string
		s    Space
	}{
		{"no segments", Space{PackageSizes: []int{36}}},
		{"no package sizes", Space{Segments: []int{2}}},
		{"zero segment", Space{Segments: []int{0}, PackageSizes: []int{36}}},
		{"zero package", Space{Segments: []int{2}, PackageSizes: []int{0}}},
		{"bad mapping", Space{Segments: []int{2}, PackageSizes: []int{36}, Mappings: []string{"magic"}}},
		{"negative header", Space{Segments: []int{2}, PackageSizes: []int{36}, HeaderTicks: []int{-1}}},
		{"negative hop", Space{Segments: []int{2}, PackageSizes: []int{36}, CAHopTicks: []int{-1}}},
		{"zero clock", Space{Segments: []int{2}, PackageSizes: []int{36}, SegmentClocksMHz: []int{0}}},
		{"negative CA clock", Space{Segments: []int{2}, PackageSizes: []int{36}, CAClockMHz: -4}},
	}
	for _, tc := range cases {
		if _, err := tc.s.withDefaults(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
		if got := tc.s.Size(); got != 0 {
			t.Errorf("%s: Size() = %d on invalid space", tc.name, got)
		}
	}

	s := Space{Segments: []int{2, 3}, PackageSizes: []int{18, 36}}
	sp, err := s.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if len(sp.Mappings) != 1 || sp.Mappings[0] != MappingSolve {
		t.Errorf("default mappings = %v", sp.Mappings)
	}
	if len(sp.HeaderTicks) != 1 || sp.HeaderTicks[0] != 25 {
		t.Errorf("default header ticks = %v", sp.HeaderTicks)
	}
	if len(sp.CAHopTicks) != 1 || sp.CAHopTicks[0] != 25 {
		t.Errorf("default CA hop ticks = %v", sp.CAHopTicks)
	}
	if sp.CAClockMHz != 111 {
		t.Errorf("default CA clock = %d", sp.CAClockMHz)
	}
	if got := s.Size(); got != 4 {
		t.Errorf("Size() = %d, want 4", got)
	}
}

func TestEnumerateCanonicalOrder(t *testing.T) {
	m := apps.MP3Model()
	s := &Space{
		Segments:     []int{3, 2},
		Mappings:     []string{MappingSolve, MappingRoundRobin},
		PackageSizes: []int{36, 18},
		HeaderTicks:  []int{25, 0},
		CAHopTicks:   []int{25},
	}
	cands, err := s.Enumerate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != s.Size() || len(cands) != 16 {
		t.Fatalf("got %d candidates, want 16", len(cands))
	}
	// Axes iterate in listed order, innermost last; Index mirrors the
	// slice position.
	want0 := Candidate{Index: 0, Segments: 3, Mapping: MappingSolve, PackageSize: 36, HeaderTicks: 25, CAHopTicks: 25}
	got0 := cands[0]
	got0.Platform, got0.Label = nil, ""
	want0.Label = ""
	if got0 != want0 {
		t.Errorf("candidate 0 = %+v, want %+v", got0, want0)
	}
	for i, c := range cands {
		if c.Index != i {
			t.Fatalf("candidate %d carries Index %d", i, c.Index)
		}
		if c.Platform == nil {
			t.Fatalf("candidate %d has no platform", i)
		}
		if c.Platform.PackageSize != c.PackageSize || c.Platform.HeaderTicks != c.HeaderTicks {
			t.Fatalf("candidate %d platform disagrees with axes", i)
		}
		if got := len(c.Platform.Segments); got != c.Segments {
			t.Fatalf("candidate %d: %d platform segments, want %d", i, got, c.Segments)
		}
	}
	// Header ticks vary before package size rolls over.
	if cands[0].HeaderTicks != 25 || cands[1].HeaderTicks != 0 {
		t.Errorf("inner axis order wrong: %+v %+v", cands[0], cands[1])
	}
	if cands[0].PackageSize != 36 || cands[2].PackageSize != 18 {
		t.Errorf("package axis order wrong")
	}
	// Each segments block spans mappings × sizes × headers = 8
	// candidates; the mapping axis rolls over halfway through.
	if cands[4].Mapping != MappingRoundRobin || cands[8].Segments != 2 {
		t.Errorf("axis order wrong: cands[4]=%+v cands[8]=%+v", cands[4], cands[8])
	}
}

// randomSpace builds a small conform space over the model's process
// count: every axis gets 1-2 random values, so spaces span 2..16
// candidates.
func randomSpace(rng *rand.Rand, nprocs int) *Space {
	pick := func(vals []int) []int {
		n := 1 + rng.Intn(2)
		out := make([]int, 0, n)
		perm := rng.Perm(len(vals))
		for _, i := range perm[:n] {
			out = append(out, vals[i])
		}
		return out
	}
	maxSeg := nprocs
	if maxSeg > 3 {
		maxSeg = 3
	}
	segs := pick([]int{1, 2, 3}[:maxSeg])
	mappings := []string{MappingSolve}
	if rng.Intn(2) == 0 {
		mappings = append(mappings, MappingRoundRobin)
	}
	return &Space{
		Name:         "prop",
		Segments:     segs,
		Mappings:     mappings,
		PackageSizes: pick([]int{4, 9, 18, 36}),
		HeaderTicks:  pick([]int{0, 10, 25, 80}),
		CAHopTicks:   pick([]int{0, 25, 100}),
	}
}

func frontKey(r *Result) string {
	var b bytes.Buffer
	for _, i := range r.Front {
		p := &r.Points[i]
		fmt.Fprintf(&b, "%s exec=%d pj=%.9g\n", p.Label, p.ExecPs, p.TotalPJ)
	}
	return b.String()
}

// TestPruneSoundnessProperty is the explorer's core guarantee: over
// hundreds of generated (model, space) pairs, the bounds-pruned run
// produces exactly the Pareto front of the exhaustive run — pruning
// changes cost, never results. It also spot-checks the pruning
// premise directly: every emulated point respects its own bounds.
func TestPruneSoundnessProperty(t *testing.T) {
	const seeds = 200
	prunedSomething := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := apps.RandomModel(rng, 3, 3, 4)
		space := randomSpace(rng, len(m.Processes()))

		exact, err := Run(m, space, Options{NoPrune: true, WaveSize: 4})
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		pruned, err := Run(m, space, Options{WaveSize: 4})
		if err != nil {
			t.Fatalf("seed %d: pruned: %v", seed, err)
		}
		if exact.Errors != 0 || pruned.Errors != 0 {
			t.Fatalf("seed %d: unexpected candidate errors (%d, %d)", seed, exact.Errors, pruned.Errors)
		}
		if got, want := frontKey(pruned), frontKey(exact); got != want {
			t.Fatalf("seed %d: pruned front diverged from exhaustive\npruned:\n%swant:\n%s", seed, got, want)
		}
		if pruned.Pruned+pruned.Emulated+pruned.Errors != pruned.Generated {
			t.Fatalf("seed %d: counters don't add up: %+v", seed, pruned)
		}
		if pruned.Pruned > 0 {
			prunedSomething++
		}
		for i := range exact.Points {
			p := &exact.Points[i]
			if !p.Emulated {
				continue
			}
			if p.ExecPs < p.LowerPs || p.ExecPs > p.UpperPs {
				t.Fatalf("seed %d: %s exec %d outside bounds [%d, %d]", seed, p.Label, p.ExecPs, p.LowerPs, p.UpperPs)
			}
			if p.TotalPJ < p.EnergyLBPJ {
				t.Fatalf("seed %d: %s energy %.6f below its lower bound %.6f", seed, p.Label, p.TotalPJ, p.EnergyLBPJ)
			}
		}
	}
	// The property is vacuous if nothing ever gets pruned.
	if prunedSomething < seeds/4 {
		t.Fatalf("only %d/%d spaces exercised pruning", prunedSomething, seeds)
	}
}

// TestReferenceSpaceDeterminism runs the 10240-candidate reference
// space at 1, 4 and 8 workers: the full JSON report must be
// byte-identical, the pruning ratio must clear the 50%% the ISSUE
// demands (it is well above), and the pruned front must equal the
// exhaustive front.
func TestReferenceSpaceDeterminism(t *testing.T) {
	m := apps.MP3Model()
	space := ReferenceMP3Space()
	if space.Size() < 10000 {
		t.Fatalf("reference space shrank to %d candidates", space.Size())
	}

	var baseline []byte
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		res, err := Run(m, space, Options{Workers: workers, Seed: int64(workers)})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatalf("workers=%d: JSON: %v", workers, err)
		}
		if baseline == nil {
			baseline, base = js, res
			continue
		}
		if !bytes.Equal(js, baseline) {
			t.Fatalf("workers=%d: JSON report differs from workers=1", workers)
		}
		if res.Pruned != base.Pruned || res.Waves != base.Waves {
			t.Fatalf("workers=%d: counters differ: %d/%d vs %d/%d", workers, res.Pruned, res.Waves, base.Pruned, base.Waves)
		}
	}
	if base.PruningRatio < 0.5 {
		t.Fatalf("pruning ratio %.3f below the 0.5 floor", base.PruningRatio)
	}
	if base.Errors != 0 {
		t.Fatalf("%d candidate errors on the reference space", base.Errors)
	}
	if len(base.Front) == 0 {
		t.Fatal("empty Pareto front")
	}

	if testing.Short() {
		return
	}
	exact, err := Run(m, space, Options{NoPrune: true})
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	if got, want := frontKey(base), frontKey(exact); got != want {
		t.Fatalf("pruned reference front differs from exhaustive\npruned:\n%sexhaustive:\n%s", got, want)
	}
}

func TestFrontIsPareto(t *testing.T) {
	m := apps.MP3Model()
	space := &Space{
		Segments:     []int{1, 2, 3},
		PackageSizes: []int{9, 18, 36},
		HeaderTicks:  []int{0, 100},
	}
	res, err := Run(m, space, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	onFront := make(map[int]bool, len(res.Front))
	for _, i := range res.Front {
		onFront[i] = true
	}
	dominates := func(a, b *Point) bool {
		return a.ExecPs <= b.ExecPs && a.TotalPJ <= b.TotalPJ &&
			(a.ExecPs < b.ExecPs || a.TotalPJ < b.TotalPJ)
	}
	for i := range res.Points {
		p := &res.Points[i]
		if !p.Emulated {
			continue
		}
		dominated := false
		for j := range res.Points {
			if j != i && res.Points[j].Emulated && dominates(&res.Points[j], p) {
				dominated = true
				break
			}
		}
		// Front membership: non-dominated AND the lowest-index member
		// of its exact-tie class (the front collapses duplicates).
		firstOfTies := true
		for j := 0; j < i; j++ {
			q := &res.Points[j]
			if q.Emulated && q.ExecPs == p.ExecPs && q.TotalPJ == p.TotalPJ {
				firstOfTies = false
				break
			}
		}
		if want := !dominated && firstOfTies; want != onFront[i] {
			t.Errorf("%s: dominated=%v firstOfTies=%v but onFront=%v", p.Label, dominated, firstOfTies, onFront[i])
		}
	}
	// Front is sorted by latency ascending, energy descending (a
	// proper trade-off curve).
	for k := 1; k < len(res.Front); k++ {
		a, b := &res.Points[res.Front[k-1]], &res.Points[res.Front[k]]
		if b.ExecPs < a.ExecPs {
			t.Errorf("front not sorted by latency: %d before %d", a.ExecPs, b.ExecPs)
		}
	}
}

func TestExploreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := apps.MP3Model()
	space := &Space{Segments: []int{2, 3}, PackageSizes: []int{9, 36}, HeaderTicks: []int{0, 150}, CAHopTicks: []int{0, 200}}
	res, err := Run(m, space, Options{Registry: reg, WaveSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(false)
	get := func(name string) float64 {
		v, ok := snap[name]
		if !ok {
			t.Fatalf("metric %s missing from snapshot", name)
		}
		return v
	}
	if got := get(obs.MetricExploreGenerated); got != float64(res.Generated) {
		t.Errorf("generated counter = %v, want %d", got, res.Generated)
	}
	if got := get(obs.MetricExplorePruned); got != float64(res.Pruned) {
		t.Errorf("pruned counter = %v, want %d", got, res.Pruned)
	}
	if got := get(obs.MetricExploreEmulated); got != float64(res.Emulated) {
		t.Errorf("emulated counter = %v, want %d", got, res.Emulated)
	}
	if got := get(obs.MetricExploreWaves); got != float64(res.Waves) {
		t.Errorf("waves counter = %v, want %d", got, res.Waves)
	}
	if got := get(obs.MetricExploreFrontSize); got != float64(len(res.Front)) {
		t.Errorf("front size gauge = %v, want %d", got, len(res.Front))
	}
	if got := get(obs.MetricExplorePruningRatio); got != res.PruningRatio {
		t.Errorf("pruning ratio gauge = %v, want %v", got, res.PruningRatio)
	}
	if res.Generated != res.Pruned+res.Emulated+res.Errors {
		t.Errorf("counters don't add up: %+v", res)
	}
	if res.Timing.Bounds <= 0 || res.Timing.Emulate <= 0 {
		t.Errorf("stage timings not recorded: %+v", res.Timing)
	}
}

func TestHeartbeatTicksPerEmulation(t *testing.T) {
	var buf bytes.Buffer
	hb := obs.NewHeartbeat(&buf, "explore", 0, 3)
	m := apps.Pipeline(4, 36, 16)
	space := &Space{Segments: []int{2}, PackageSizes: []int{36, 18, 9}}
	res, err := Run(m, space, Options{Heartbeat: hb, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emulated != 3 {
		t.Fatalf("emulated %d, want 3", res.Emulated)
	}
	if buf.Len() == 0 {
		t.Error("heartbeat produced no output")
	}
}

// TestWorkerSpeedup measures the parallel scaling the ISSUE's bench
// battery records. It needs real cores to mean anything, so it skips
// on the 1-2 CPU boxes the unit suite usually runs on.
func TestWorkerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short")
	}
	cpus := runtime.NumCPU()
	if cpus < 4 {
		t.Skipf("only %d CPUs: wall-clock speedup is not measurable here (see BENCH notes)", cpus)
	}
	m := apps.MP3Model()
	space := ReferenceMP3Space()
	measure := func(workers int) time.Duration {
		start := time.Now()
		if _, err := Run(m, space, Options{Workers: workers, NoPrune: true}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := measure(1)
	wide := measure(8)
	if speedup := float64(serial) / float64(wide); speedup < 3 {
		t.Errorf("8-worker speedup %.2fx below the 3x floor (serial %s, 8w %s)", speedup, serial, wide)
	}
}

// pairsModel is three independent producer/consumer pairs streaming
// concurrently — the workload with a real latency-vs-energy
// trade-off: separate segments stream the pairs in parallel (lower
// latency) but each segment pays its static power. Mirrors
// testdata/pairs.sbd.
func pairsModel() *psdf.Model {
	m := psdf.NewModel("pairs")
	for i := 0; i < 3; i++ {
		m.AddFlow(psdf.Flow{
			Source: psdf.ProcessID(2 * i), Target: psdf.ProcessID(2*i + 1),
			Items: 288, Order: 1, Ticks: 40,
		})
	}
	return m
}

// TestTradeoffFront pins a genuinely multi-point Pareto front: on the
// pairs workload, more segments buy latency with energy, so no single
// configuration dominates, and the front must be sorted as a proper
// trade-off curve (latency ascending, energy strictly descending).
func TestTradeoffFront(t *testing.T) {
	space := &Space{Segments: []int{1, 2, 3}, PackageSizes: []int{36, 72}, HeaderTicks: []int{0, 25}}
	res, err := Run(pairsModel(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) < 3 {
		t.Fatalf("front has %d points, want one per segment count:\n%s", len(res.Front), res.FrontTable())
	}
	first, last := res.Points[res.Front[0]], res.Points[res.Front[len(res.Front)-1]]
	if first.Segments <= last.Segments {
		t.Errorf("expected the fast end to use more segments: %d ... %d", first.Segments, last.Segments)
	}
	for k := 1; k < len(res.Front); k++ {
		a, b := &res.Points[res.Front[k-1]], &res.Points[res.Front[k]]
		if b.ExecPs <= a.ExecPs || b.TotalPJ >= a.TotalPJ {
			t.Errorf("front not a strict trade-off curve at %d: (%d, %.3f) -> (%d, %.3f)",
				k, a.ExecPs, a.TotalPJ, b.ExecPs, b.TotalPJ)
		}
	}
}
