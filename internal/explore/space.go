// Package explore is the design-space explorer: it enumerates a
// declarative configuration space (segment counts × mappings ×
// package sizes × protocol overheads) over one application model,
// prunes candidates whose analytic lower bounds are already dominated
// by an emulated point — without emulating them — and emits the
// latency-vs-energy Pareto front of the survivors.
//
// This is the ROADMAP's "estimate the speedup before you build it"
// workflow at production scale: analyze's proven LB ≤ estimate ≤ UB
// latency bounds and power.Profile's run-independent energy bound
// turn most of a 10k-candidate space into arithmetic, and the
// remainder runs on the work-stealing scheduler with pooled emulator
// machines. The output is byte-identical for every worker count; see
// Run for the scheduling and soundness argument.
package explore

import (
	"fmt"
	"strings"

	"segbus/internal/core"
	"segbus/internal/place"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Mapping names accepted in Space.Mappings.
const (
	// MappingSolve places processes with place.Solve (the PlaceTool
	// optimizer: exhaustive for small models, seeded local search
	// above that, deterministic tie-breaking throughout).
	MappingSolve = "solve"

	// MappingRoundRobin deals processes to segments in id order — the
	// paper's naive baseline, kept in spaces as the control arm.
	MappingRoundRobin = "round-robin"
)

// Space is the declarative spec of a configuration space: the
// cartesian product of its axes. The zero value of an axis selects
// the documented default, so a spec file only names what it varies.
// Consumed by both the library (Enumerate, Run) and segbus-explore's
// -spec flag.
type Space struct {
	// Name labels the space in reports and platform names.
	Name string `json:"name,omitempty"`

	// Segments lists the segment counts to explore. Required.
	Segments []int `json:"segments"`

	// Mappings lists the placement strategies per segment count:
	// MappingSolve and/or MappingRoundRobin. Default: ["solve"].
	Mappings []string `json:"mappings,omitempty"`

	// PackageSizes lists the platform package sizes. Required.
	PackageSizes []int `json:"package_sizes"`

	// HeaderTicks lists the per-package protocol header costs.
	// Default: [25] (the paper's MP3 figure).
	HeaderTicks []int `json:"header_ticks,omitempty"`

	// CAHopTicks lists the CA circuit set-up costs per hop.
	// Default: [25].
	CAHopTicks []int `json:"ca_hop_ticks,omitempty"`

	// SegmentClocksMHz assigns segment clocks: segment i (1-based)
	// runs at SegmentClocksMHz[(i-1) % len]. Default: [100].
	SegmentClocksMHz []int `json:"segment_clocks_mhz,omitempty"`

	// CAClockMHz is the central arbiter clock. Default: 111 (paper).
	CAClockMHz int `json:"ca_clock_mhz,omitempty"`
}

// Candidate is one enumerated configuration: the axis values plus the
// concrete platform they produce. Index is the candidate's position
// in enumeration order — the identity every deterministic merge keys
// on.
type Candidate struct {
	Index       int    `json:"index"`
	Label       string `json:"label"`
	Segments    int    `json:"segments"`
	Mapping     string `json:"mapping"`
	PackageSize int    `json:"packageSize"`
	HeaderTicks int    `json:"headerTicks"`
	CAHopTicks  int    `json:"caHopTicks"`

	Platform *platform.Platform `json:"-"`
}

// withDefaults returns a copy with the documented axis defaults
// filled in, or an error for a spec that can never enumerate.
func (s *Space) withDefaults() (Space, error) {
	out := *s
	if len(out.Segments) == 0 {
		return out, fmt.Errorf("explore: space needs at least one segment count")
	}
	for _, n := range out.Segments {
		if n < 1 {
			return out, fmt.Errorf("explore: segment count %d out of range", n)
		}
	}
	if len(out.PackageSizes) == 0 {
		return out, fmt.Errorf("explore: space needs at least one package size")
	}
	for _, ps := range out.PackageSizes {
		if ps < 1 {
			return out, fmt.Errorf("explore: package size %d out of range", ps)
		}
	}
	if len(out.Mappings) == 0 {
		out.Mappings = []string{MappingSolve}
	}
	for _, mp := range out.Mappings {
		if mp != MappingSolve && mp != MappingRoundRobin {
			return out, fmt.Errorf("explore: unknown mapping %q (want %q or %q)", mp, MappingSolve, MappingRoundRobin)
		}
	}
	if len(out.HeaderTicks) == 0 {
		out.HeaderTicks = []int{25}
	}
	if len(out.CAHopTicks) == 0 {
		out.CAHopTicks = []int{25}
	}
	for _, t := range append(append([]int{}, out.HeaderTicks...), out.CAHopTicks...) {
		if t < 0 {
			return out, fmt.Errorf("explore: negative tick value %d", t)
		}
	}
	if len(out.SegmentClocksMHz) == 0 {
		out.SegmentClocksMHz = []int{100}
	}
	for _, c := range out.SegmentClocksMHz {
		if c < 1 {
			return out, fmt.Errorf("explore: segment clock %d MHz out of range", c)
		}
	}
	if out.CAClockMHz == 0 {
		out.CAClockMHz = 111
	}
	if out.CAClockMHz < 1 {
		return out, fmt.Errorf("explore: CA clock %d MHz out of range", out.CAClockMHz)
	}
	if out.Name == "" {
		out.Name = "space"
	}
	return out, nil
}

// Size returns the number of candidates the space enumerates (after
// defaults).
func (s *Space) Size() int {
	sp, err := s.withDefaults()
	if err != nil {
		return 0
	}
	return len(sp.Segments) * len(sp.Mappings) * len(sp.PackageSizes) * len(sp.HeaderTicks) * len(sp.CAHopTicks)
}

// Enumerate expands the space over the model into the full candidate
// list, in the canonical order the explorer's determinism guarantees
// key on: segments (as listed) ≫ mapping ≫ package size ≫ header
// ticks ≫ CA hop ticks. Each (segments, mapping) pair solves its
// placement exactly once; the per-candidate platforms are clones with
// the remaining axes substituted.
//
// The whole space must be feasible: a segment count the model cannot
// populate fails enumeration rather than silently shrinking the
// space.
func (s *Space) Enumerate(m *psdf.Model) ([]Candidate, error) {
	sp, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	cm := m.CommunicationMatrix()

	clocksFor := func(n int) []platform.Hz {
		clocks := make([]platform.Hz, n)
		for i := range clocks {
			clocks[i] = platform.Hz(sp.SegmentClocksMHz[i%len(sp.SegmentClocksMHz)]) * platform.MHz
		}
		return clocks
	}
	caClock := platform.Hz(sp.CAClockMHz) * platform.MHz

	var out []Candidate
	for _, segs := range sp.Segments {
		for _, mapping := range sp.Mappings {
			var alloc place.Allocation
			var err error
			switch mapping {
			case MappingSolve:
				alloc, err = place.Solve(cm, segs, place.Options{})
			case MappingRoundRobin:
				alloc, err = place.RoundRobin(cm, segs)
			}
			if err != nil {
				return nil, fmt.Errorf("explore: %s mapping onto %d segments: %w", mapping, segs, err)
			}
			for _, size := range sp.PackageSizes {
				for _, header := range sp.HeaderTicks {
					for _, hop := range sp.CAHopTicks {
						label := fmt.Sprintf("%s/seg=%d/%s/s=%d/h=%d/ca=%d",
							sp.Name, segs, mapping, size, header, hop)
						plat, err := core.PlatformFromAllocation(label, alloc, clocksFor(segs), caClock, size, header, hop)
						if err != nil {
							return nil, fmt.Errorf("explore: %s: %w", label, err)
						}
						out = append(out, Candidate{
							Index:       len(out),
							Label:       label,
							Segments:    segs,
							Mapping:     mapping,
							PackageSize: size,
							HeaderTicks: header,
							CAHopTicks:  hop,
							Platform:    plat,
						})
					}
				}
			}
		}
	}
	return out, nil
}

// String renders the space one axis per line, for report headers.
func (s *Space) String() string {
	sp, err := s.withDefaults()
	if err != nil {
		return fmt.Sprintf("invalid space: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "space %s: %d candidates\n", sp.Name, s.Size())
	fmt.Fprintf(&b, "  segments      %v\n", sp.Segments)
	fmt.Fprintf(&b, "  mappings      %v\n", sp.Mappings)
	fmt.Fprintf(&b, "  package sizes %v\n", sp.PackageSizes)
	fmt.Fprintf(&b, "  header ticks  %v\n", sp.HeaderTicks)
	fmt.Fprintf(&b, "  CA hop ticks  %v\n", sp.CAHopTicks)
	fmt.Fprintf(&b, "  clocks        %v MHz (CA %d MHz)\n", sp.SegmentClocksMHz, sp.CAClockMHz)
	return b.String()
}
