package explore

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ReportSchema versions the JSON report layout.
const ReportSchema = "segbus/explore-report/v1"

// jsonReport is the deterministic JSON shape: counters, the front,
// and per-candidate outcomes. No wall-clock fields — the report is
// byte-identical across worker counts and machines.
type jsonReport struct {
	Schema string `json:"schema"`
	Result
	FrontPoints []Point `json:"front"`
}

// JSON renders the result as indented deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	rep := jsonReport{Schema: ReportSchema, Result: *r, FrontPoints: r.FrontPoints()}
	return json.MarshalIndent(rep, "", "  ")
}

// Summary renders the run's headline numbers as fixed-width text.
func (r *Result) Summary() string {
	var b strings.Builder
	b.WriteString(r.Space.String())
	fmt.Fprintf(&b, "  generated %d  pruned %d (%.1f%%)  emulated %d",
		r.Generated, r.Pruned, 100*r.PruningRatio, r.Emulated)
	if r.Errors > 0 {
		fmt.Fprintf(&b, "  errors %d", r.Errors)
	}
	fmt.Fprintf(&b, "  waves %d\n", r.Waves)
	fmt.Fprintf(&b, "  Pareto front: %d points\n", len(r.Front))
	return b.String()
}

// FrontTable renders the Pareto front as fixed-width text, one point
// per line in (ExecPs, TotalPJ) order.
func (r *Result) FrontTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-12s %-8s %-6s %-6s %14s %14s %12s\n",
		"seg", "mapping", "pkg", "hdr", "cahop", "exec (us)", "energy (nJ)", "power (mW)")
	for _, i := range r.Front {
		p := &r.Points[i]
		fmt.Fprintf(&b, "%-4d %-12s %-8d %-6d %-6d %14.3f %14.3f %12.3f\n",
			p.Segments, p.Mapping, p.PackageSize, p.HeaderTicks, p.CAHopTicks,
			float64(p.ExecPs)/1e6, p.TotalPJ/1e3, p.AvgPowerMW)
	}
	return b.String()
}

// CSV renders the Pareto front as CSV.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("segments,mapping,package_size,header_ticks,ca_hop_ticks,exec_us,energy_nj,avg_power_mw\n")
	for _, i := range r.Front {
		p := &r.Points[i]
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%.3f,%.3f,%.3f\n",
			p.Segments, p.Mapping, p.PackageSize, p.HeaderTicks, p.CAHopTicks,
			float64(p.ExecPs)/1e6, p.TotalPJ/1e3, p.AvgPowerMW)
	}
	return b.String()
}

// TimingSummary renders the run's per-stage wall-clock totals. This
// is the nondeterministic half of a run's story and belongs on
// stderr, never in the deterministic report.
func (r *Result) TimingSummary() string {
	return fmt.Sprintf("stage wall time: bounds %.1fms, emulate %.1fms, power %.1fms\n",
		float64(r.Timing.Bounds)/1e6, float64(r.Timing.Emulate)/1e6, float64(r.Timing.Power)/1e6)
}
