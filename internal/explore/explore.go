package explore

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"segbus/internal/analyze"
	"segbus/internal/emulator"
	"segbus/internal/emulator/pool"
	"segbus/internal/obs"
	"segbus/internal/parallel"
	"segbus/internal/power"
	"segbus/internal/psdf"
)

// DefaultWaveSize is the number of candidates emulated between prune
// passes. It is a fixed constant — deliberately NOT derived from the
// worker count — so the prune/emulate split of a run is a pure
// function of the space, and the obs counters (and with them the
// whole report) stay byte-identical across -workers values.
const DefaultWaveSize = 32

// Options tunes an explorer run.
type Options struct {
	// Workers is the number of concurrent bounds/emulation tasks;
	// zero selects GOMAXPROCS. Changes wall-clock only, never output.
	Workers int

	// Seed drives the work-stealing victim order (schedule
	// reproducibility for profiling; results are schedule
	// independent). Zero selects 1.
	Seed int64

	// WaveSize overrides DefaultWaveSize; <= 0 selects the default.
	WaveSize int

	// NoPrune disables bounds pruning: every candidate is emulated.
	// The soundness tests diff pruned runs against this mode.
	NoPrune bool

	// Params are the energy coefficients (zero selects
	// power.DefaultParams). Pruning and estimation use the same set.
	Params power.Params

	// Registry, when non-nil, receives the obs.ExploreMetrics
	// catalogue.
	Registry *obs.Registry

	// Heartbeat, when non-nil, ticks after every emulated candidate.
	Heartbeat *obs.Heartbeat
}

// StageNs is the wall-clock nanoseconds a candidate (or a whole run)
// spent per pipeline stage. Wall-clock is inherently nondeterministic,
// so stage timings are excluded from every deterministic output path
// (JSON report, tables); they surface through volatile gauges and the
// CLI's -timings stderr dump.
type StageNs struct {
	Bounds  int64 `json:"-"`
	Emulate int64 `json:"-"`
	Power   int64 `json:"-"`
}

// Point is one candidate's full record: analytic bounds (always
// computed), and either a prune verdict or emulation results.
type Point struct {
	Candidate

	// Analytic bounds.
	LowerPs    int64   `json:"lowerPs"`
	UpperPs    int64   `json:"upperPs"`
	EnergyLBPJ float64 `json:"energyLbPj"`

	// Outcome. Exactly one of Pruned / Emulated / Error holds.
	Pruned   bool `json:"pruned,omitempty"`
	Emulated bool `json:"emulated,omitempty"`

	// Emulation results (Emulated only).
	ExecPs     int64   `json:"execPs,omitempty"`
	TotalPJ    float64 `json:"totalPj,omitempty"`
	AvgPowerMW float64 `json:"avgPowerMw,omitempty"`

	Err   error   `json:"-"`
	Error string  `json:"error,omitempty"`
	Stage StageNs `json:"-"`
}

// Result is one explorer run. Points holds every candidate in
// enumeration order; Front holds the indices of the Pareto-optimal
// emulated points, sorted by (ExecPs, TotalPJ, Index).
type Result struct {
	Space  Space   `json:"space"`
	Points []Point `json:"-"`
	Front  []int   `json:"-"`

	Generated int `json:"generated"`
	Pruned    int `json:"pruned"`
	Emulated  int `json:"emulated"`
	Errors    int `json:"errors,omitempty"`
	Waves     int `json:"waves"`

	// PruningRatio = Pruned/Generated.
	PruningRatio float64 `json:"pruningRatio"`

	Timing StageNs `json:"-"`
}

// FrontPoints returns copies of the front's points in front order.
func (r *Result) FrontPoints() []Point {
	out := make([]Point, len(r.Front))
	for i, idx := range r.Front {
		out[i] = r.Points[idx]
	}
	return out
}

// archive is the prune oracle: the Pareto front of the emulated
// points so far, sorted by ExecPs ascending with a running prefix
// minimum of TotalPJ. dominatedLB answers "does any emulated point
// strictly beat these lower bounds on BOTH objectives" in O(log n).
type archive struct {
	execPs []int64
	minPJ  []float64 // minPJ[i] = min TotalPJ over execPs[0..i]
}

func (a *archive) rebuild(points []Point, emulated []int) {
	a.execPs = a.execPs[:0]
	a.minPJ = a.minPJ[:0]
	idx := append([]int(nil), emulated...)
	sort.Slice(idx, func(i, j int) bool { return points[idx[i]].ExecPs < points[idx[j]].ExecPs })
	for _, i := range idx {
		a.execPs = append(a.execPs, points[i].ExecPs)
		pj := points[i].TotalPJ
		if n := len(a.minPJ); n > 0 && a.minPJ[n-1] < pj {
			pj = a.minPJ[n-1]
		}
		a.minPJ = append(a.minPJ, pj)
	}
}

// dominatedLB reports whether some emulated point has ExecPs < lbPs
// AND TotalPJ < lbPJ. Strict on both: a candidate that could tie the
// front on either objective is never pruned, which is what makes the
// pruned front provably identical to the exhaustive one.
func (a *archive) dominatedLB(lbPs int64, lbPJ float64) bool {
	// First index with execPs >= lbPs; everything before is strictly
	// faster than the candidate can ever be.
	i := sort.Search(len(a.execPs), func(k int) bool { return a.execPs[k] >= lbPs })
	if i == 0 {
		return false
	}
	return a.minPJ[i-1] < lbPJ
}

// Run explores the space over the model.
//
// Pipeline: enumerate → bounds (parallel, pure) → waves of
// prune-then-emulate. Candidates are ordered by ascending latency
// lower bound (ties: energy bound, then index) so the points most
// likely to dominate others are emulated first; between waves, every
// not-yet-emulated candidate whose (latency LB, energy LB) pair is
// strictly dominated by an emulated point on both objectives is
// discarded unemulated.
//
// Soundness: analyze guarantees LowerPs ≤ actual ExecPs (the bounds
// chain the conform oracles pin — the documented scheduling anomaly
// concerns the refined model beating the *estimate*, not the bound),
// and power.Profile.LowerBoundPJ ≤ actual TotalPJ down to the last
// ULP. So if an emulated point e is strictly better than a
// candidate's bounds on both objectives, it is strictly better than
// the candidate's true values too, and the candidate can neither
// enter the Pareto front nor displace anything from it. Pruning
// therefore never changes the front — the property test diffs pruned
// vs exhaustive fronts across hundreds of generated spaces.
//
// Determinism: prune decisions happen only at wave boundaries against
// the archive of completed emulations, wave composition follows the
// fixed candidate order with a fixed WaveSize, and every emulation is
// a sealed deterministic simulation merged by candidate index. The
// worker count and steal seed change only the schedule inside a wave,
// so Points, Front and all counters are byte-identical across
// -workers values.
func Run(m *psdf.Model, space *Space, opts Options) (*Result, error) {
	sp, err := space.withDefaults()
	if err != nil {
		return nil, err
	}
	cands, err := sp.Enumerate(m)
	if err != nil {
		return nil, err
	}
	waveSize := opts.WaveSize
	if waveSize <= 0 {
		waveSize = DefaultWaveSize
	}
	metrics := obs.NewExploreMetrics(opts.Registry)
	metrics.Generated.Add(int64(len(cands)))

	q, err := analyze.NewBoundsQuery(m)
	if err != nil {
		return nil, err
	}

	res := &Result{Space: sp, Generated: len(cands), Points: make([]Point, len(cands))}
	steal := parallel.StealOptions{Workers: opts.Workers, Seed: opts.Seed}

	// Stage 1: analytic bounds, embarrassingly parallel and pure.
	var boundsNs atomic.Int64
	parallel.StealRun(len(cands), steal, func(i int) {
		start := time.Now()
		pt := &res.Points[i]
		pt.Candidate = cands[i]
		b, err := q.Bounds(cands[i].Platform)
		if err != nil {
			pt.Err = fmt.Errorf("bounds: %w", err)
			return
		}
		pf, err := power.NewProfile(m, cands[i].Platform, opts.Params)
		if err != nil {
			pt.Err = fmt.Errorf("power profile: %w", err)
			return
		}
		pt.LowerPs = b.LowerPs
		pt.UpperPs = b.UpperPs
		pt.EnergyLBPJ = pf.LowerBoundPJ(b.LowerPs)
		pt.Stage.Bounds = time.Since(start).Nanoseconds()
		boundsNs.Add(pt.Stage.Bounds)
	})

	// Candidate order: most-likely-dominators first.
	order := make([]int, 0, len(cands))
	for i := range res.Points {
		if res.Points[i].Err != nil {
			continue
		}
		order = append(order, i)
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := &res.Points[order[x]], &res.Points[order[y]]
		if a.LowerPs != b.LowerPs {
			return a.LowerPs < b.LowerPs
		}
		if a.EnergyLBPJ != b.EnergyLBPJ {
			return a.EnergyLBPJ < b.EnergyLBPJ
		}
		return a.Index < b.Index
	})

	// Stage 2: waves of prune-then-emulate on pooled machines.
	machines := pool.New(pool.Options{PerKey: poolSizeFor(opts.Workers)})
	var emulateNs, powerNs atomic.Int64
	var emulatedIdx []int
	var arch archive
	remaining := order
	var done, failed atomic.Int64
	for len(remaining) > 0 {
		res.Waves++
		if !opts.NoPrune {
			keep := remaining[:0]
			for _, i := range remaining {
				pt := &res.Points[i]
				if arch.dominatedLB(pt.LowerPs, pt.EnergyLBPJ) {
					pt.Pruned = true
					continue
				}
				keep = append(keep, i)
			}
			remaining = keep
			if len(remaining) == 0 {
				break
			}
		}
		wave := remaining
		if len(wave) > waveSize {
			wave = wave[:waveSize]
		}
		remaining = remaining[len(wave):]

		parallel.StealRun(len(wave), steal, func(k int) {
			i := wave[k]
			pt := &res.Points[i]
			start := time.Now()
			key := pool.ShapeKey(m, pt.Platform)
			mc, _ := machines.Get(key)
			report, err := mc.Run(m, pt.Platform, emulator.Config{})
			machines.Put(key, mc)
			pt.Stage.Emulate = time.Since(start).Nanoseconds()
			emulateNs.Add(pt.Stage.Emulate)
			if err != nil {
				pt.Err = fmt.Errorf("emulate: %w", err)
				failed.Add(1)
				opts.Heartbeat.Tick(int(done.Add(1)), int(failed.Load()))
				return
			}
			start = time.Now()
			est, err := power.Estimate(m, pt.Platform, report, opts.Params)
			pt.Stage.Power = time.Since(start).Nanoseconds()
			powerNs.Add(pt.Stage.Power)
			if err != nil {
				pt.Err = fmt.Errorf("power: %w", err)
				failed.Add(1)
				opts.Heartbeat.Tick(int(done.Add(1)), int(failed.Load()))
				return
			}
			pt.Emulated = true
			pt.ExecPs = int64(report.ExecutionTimePs)
			pt.TotalPJ = est.TotalPJ
			pt.AvgPowerMW = est.AvgPowerM
			opts.Heartbeat.Tick(int(done.Add(1)), int(failed.Load()))
		})
		// Merge in candidate order (wave is index-sorted within its
		// LB ordering, and each slot was written once), then refresh
		// the prune oracle.
		for _, i := range wave {
			if res.Points[i].Emulated {
				emulatedIdx = append(emulatedIdx, i)
			}
		}
		arch.rebuild(res.Points, emulatedIdx)
	}

	// Final tallies and the Pareto front of the emulated points.
	for i := range res.Points {
		pt := &res.Points[i]
		switch {
		case pt.Err != nil:
			pt.Error = pt.Err.Error()
			res.Errors++
		case pt.Pruned:
			res.Pruned++
		case pt.Emulated:
			res.Emulated++
		}
	}
	res.Front = paretoFront(res.Points, emulatedIdx)
	if res.Generated > 0 {
		res.PruningRatio = float64(res.Pruned) / float64(res.Generated)
	}
	res.Timing = StageNs{Bounds: boundsNs.Load(), Emulate: emulateNs.Load(), Power: powerNs.Load()}

	metrics.Pruned.Add(int64(res.Pruned))
	metrics.Emulated.Add(int64(res.Emulated))
	metrics.Errors.Add(int64(res.Errors))
	metrics.Waves.Add(int64(res.Waves))
	metrics.FrontSize.Set(float64(len(res.Front)))
	metrics.PruningRatio.Set(res.PruningRatio)
	metrics.StageBounds.Set(float64(res.Timing.Bounds))
	metrics.StageEmulate.Set(float64(res.Timing.Emulate))
	metrics.StagePower.Set(float64(res.Timing.Power))
	opts.Heartbeat.Final(int(done.Load()), int(failed.Load()))
	return res, nil
}

// poolSizeFor sizes the machine pool's per-shape free list to the
// effective worker count.
func poolSizeFor(workers int) int {
	if workers > 0 {
		return workers
	}
	return 0 // pool default
}

// paretoFront returns the indices of the non-dominated emulated
// points under weak dominance (q dominates p when q is no worse on
// both objectives and strictly better on at least one), sorted by
// (ExecPs, TotalPJ, Index). One front entry per distinct objective
// vector: exact ties collapse to their lowest-index member — the
// equivalent configurations stay visible in Points, the front is the
// trade-off curve. The choice is deterministic across pruned and
// exhaustive runs because an exact tie is never strictly dominated,
// so every tie member survives pruning and the sort sees all of them.
func paretoFront(points []Point, emulated []int) []int {
	idx := append([]int(nil), emulated...)
	sort.Slice(idx, func(i, j int) bool {
		a, b := &points[idx[i]], &points[idx[j]]
		if a.ExecPs != b.ExecPs {
			return a.ExecPs < b.ExecPs
		}
		if a.TotalPJ != b.TotalPJ {
			return a.TotalPJ < b.TotalPJ
		}
		return a.Index < b.Index
	})
	var front []int
	bestPJ := 0.0
	for k, i := range idx {
		// Sorted by (ExecPs, TotalPJ) asc: p joins the front iff it
		// strictly improves the running energy minimum (ties and
		// dominated points both fail the test).
		if p := &points[i]; k == 0 || p.TotalPJ < bestPJ {
			front = append(front, i)
			bestPJ = p.TotalPJ
		}
	}
	return front
}
