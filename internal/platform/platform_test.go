package platform

import (
	"strings"
	"testing"
	"testing/quick"

	"segbus/internal/psdf"
)

func TestHzString(t *testing.T) {
	cases := []struct {
		f    Hz
		want string
	}{
		{91 * MHz, "91.00MHz"},
		{111 * MHz, "111.00MHz"},
		{2 * GHz, "2.00GHz"},
		{500 * KHz, "500.00kHz"},
		{250, "250.00Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Hz(%v).String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestHzPeriodPs(t *testing.T) {
	cases := []struct {
		f    Hz
		want int64
	}{
		{91 * MHz, 10989},
		{98 * MHz, 10204},
		{89 * MHz, 11236},
		{111 * MHz, 9009},
		{1 * GHz, 1000},
	}
	for _, c := range cases {
		if got := c.f.PeriodPs(); got != c.want {
			t.Errorf("Hz(%v).PeriodPs() = %d, want %d", float64(c.f), got, c.want)
		}
	}
}

func TestHzPeriodPsPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PeriodPs() on zero frequency did not panic")
		}
	}()
	Hz(0).PeriodPs()
}

func buildPlatform() *Platform {
	p := New("test", 111*MHz, 36)
	p.AddSegment(91*MHz, 0, 1, 2)
	p.AddSegment(98*MHz, 3, 4)
	p.AddSegment(89*MHz, 5)
	return p
}

func TestPlatformStructure(t *testing.T) {
	p := buildPlatform()
	if got := p.NumSegments(); got != 3 {
		t.Fatalf("NumSegments() = %d", got)
	}
	if s := p.Segment(2); s == nil || s.Index != 2 || len(s.FUs) != 2 {
		t.Errorf("Segment(2) = %+v", s)
	}
	if p.Segment(0) != nil || p.Segment(4) != nil {
		t.Error("Segment() out of range should return nil")
	}
	bus := p.BUs()
	if len(bus) != 2 {
		t.Fatalf("BUs() = %v, want 2 units", bus)
	}
	if bus[0].Name() != "BU12" || bus[1].Name() != "BU23" {
		t.Errorf("BUs() = %v, want [BU12 BU23]", bus)
	}
	if got := len(New("empty", MHz, 1).BUs()); got != 0 {
		t.Errorf("single/zero-segment platform has %d BUs, want 0", got)
	}
}

func TestSegmentNames(t *testing.T) {
	p := buildPlatform()
	s := p.Segment(2)
	if s.Name() != "Segment 2" || s.SAName() != "SA2" {
		t.Errorf("names = %q, %q", s.Name(), s.SAName())
	}
}

func TestSegmentOf(t *testing.T) {
	p := buildPlatform()
	cases := map[psdf.ProcessID]int{0: 1, 2: 1, 3: 2, 5: 3}
	for proc, want := range cases {
		if got := p.SegmentOf(proc); got != want {
			t.Errorf("SegmentOf(%v) = %d, want %d", proc, got, want)
		}
	}
	if got := p.SegmentOf(99); got != 0 {
		t.Errorf("SegmentOf(unhosted) = %d, want 0", got)
	}
}

func TestProcesses(t *testing.T) {
	p := buildPlatform()
	procs := p.Processes()
	if len(procs) != 6 {
		t.Fatalf("Processes() = %v", procs)
	}
	for i := 1; i < len(procs); i++ {
		if procs[i-1] >= procs[i] {
			t.Fatalf("Processes() not ascending: %v", procs)
		}
	}
}

func TestRoute(t *testing.T) {
	p := buildPlatform()
	bus, right := p.Route(1, 3)
	if !right || len(bus) != 2 || bus[0].Name() != "BU12" || bus[1].Name() != "BU23" {
		t.Errorf("Route(1,3) = %v rightward=%v", bus, right)
	}
	bus, right = p.Route(3, 1)
	if right || len(bus) != 2 || bus[0].Name() != "BU23" || bus[1].Name() != "BU12" {
		t.Errorf("Route(3,1) = %v rightward=%v", bus, right)
	}
	bus, _ = p.Route(2, 2)
	if bus != nil {
		t.Errorf("Route(2,2) = %v, want nil", bus)
	}
	if got := p.Hops(1, 3); got != 2 {
		t.Errorf("Hops(1,3) = %d", got)
	}
	if got := p.Hops(3, 1); got != 2 {
		t.Errorf("Hops(3,1) = %d", got)
	}
	if got := p.Hops(2, 2); got != 0 {
		t.Errorf("Hops(2,2) = %d", got)
	}
}

func TestRoutePanicsOutOfRange(t *testing.T) {
	p := buildPlatform()
	defer func() {
		if recover() == nil {
			t.Error("Route(0, 1) did not panic")
		}
	}()
	p.Route(0, 1)
}

func TestRouteLengthMatchesHops(t *testing.T) {
	p := New("big", 100*MHz, 8)
	for i := 0; i < 6; i++ {
		p.AddSegment(90*MHz, psdf.ProcessID(i))
	}
	f := func(a, b uint8) bool {
		src := int(a)%6 + 1
		dst := int(b)%6 + 1
		bus, right := p.Route(src, dst)
		if len(bus) != p.Hops(src, dst) {
			return false
		}
		if src != dst && right != (src < dst) {
			return false
		}
		// Crossing order must be contiguous.
		for i := 1; i < len(bus); i++ {
			if right && bus[i].Left != bus[i-1].Left+1 {
				return false
			}
			if !right && bus[i].Left != bus[i-1].Left-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoveProcess(t *testing.T) {
	p := buildPlatform()
	if err := p.MoveProcess(0, 3); err != nil {
		t.Fatal(err)
	}
	if got := p.SegmentOf(0); got != 3 {
		t.Errorf("after move, SegmentOf(0) = %d", got)
	}
	if got := len(p.Segment(1).FUs); got != 2 {
		t.Errorf("segment 1 has %d FUs after move, want 2", got)
	}
	// Moving to the current segment is a no-op.
	if err := p.MoveProcess(0, 3); err != nil {
		t.Errorf("no-op move failed: %v", err)
	}
	if err := p.MoveProcess(99, 1); err == nil {
		t.Error("moving an unhosted process succeeded")
	}
	if err := p.MoveProcess(0, 9); err == nil {
		t.Error("moving to a nonexistent segment succeeded")
	}
}

func TestMoveProcessPreservesKind(t *testing.T) {
	p := New("kinds", 100*MHz, 4)
	s1 := p.AddSegment(90 * MHz)
	s1.FUs = append(s1.FUs, FU{Process: 0, Kind: MasterOnly})
	p.AddSegment(95*MHz, 1)
	if err := p.MoveProcess(0, 2); err != nil {
		t.Fatal(err)
	}
	seg2 := p.Segment(2)
	for _, fu := range seg2.FUs {
		if fu.Process == 0 && fu.Kind != MasterOnly {
			t.Errorf("kind lost in move: %v", fu.Kind)
		}
	}
}

func TestPlatformString(t *testing.T) {
	p := buildPlatform()
	if got, want := p.String(), "0 1 2 || 3 4 || 5"; got != want {
		t.Errorf("String() = %q, want %q (Figure 9 style)", got, want)
	}
}

func TestClonePlatform(t *testing.T) {
	p := buildPlatform()
	p.HeaderTicks = 25
	p.CAHopTicks = 10
	c := p.Clone()
	if c.String() != p.String() || c.HeaderTicks != 25 || c.CAHopTicks != 10 || c.CAClock != p.CAClock {
		t.Fatal("Clone() lost data")
	}
	if err := c.MoveProcess(0, 2); err != nil {
		t.Fatal(err)
	}
	if p.SegmentOf(0) != 1 {
		t.Error("Clone() shares segment storage with the original")
	}
}

func TestFUKindString(t *testing.T) {
	if MasterSlave.String() != "master+slave" || MasterOnly.String() != "master" || SlaveOnly.String() != "slave" {
		t.Error("FUKind.String() mismatch")
	}
	if got := FUKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind renders %q", got)
	}
}
