package platform

import (
	"fmt"

	"segbus/internal/psdf"
)

// ConstraintViolation reports one breach of the platform's structural
// constraints. Element names the offending platform element in the
// paper's naming convention ("Segment 2", "CA", "BU12", "P9"), so a
// front end can highlight it, as the DSL tool does on OCL violations.
// Code is the stable SB0xx diagnostic code of the violated constraint
// (see internal/analyze for the full table).
type ConstraintViolation struct {
	Code    string
	Element string
	Message string
}

// Error implements the error interface.
func (v *ConstraintViolation) Error() string {
	if v.Code != "" {
		return fmt.Sprintf("platform: %s: %s: %s", v.Element, v.Code, v.Message)
	}
	return fmt.Sprintf("platform: %s: %s", v.Element, v.Message)
}

// Stable diagnostic codes of the platform structural constraints.
const (
	CodeNoSegments      = "SB020" // platform has no segments
	CodeBadPackageSize  = "SB021" // non-positive package size
	CodeBadCAClock      = "SB022" // non-positive CA clock frequency
	CodeBadHeaderTicks  = "SB023" // negative header tick count
	CodeBadCAHopTicks   = "SB024" // negative CA hop tick count
	CodeBadSegmentIndex = "SB025" // segment index out of sequence
	CodeBadSegmentClock = "SB026" // non-positive segment clock
	CodeEmptySegment    = "SB027" // segment hosts no functional unit
	CodeDoubleHosted    = "SB028" // process hosted by two segments
	CodeUnmapped        = "SB029" // application process not mapped
	CodeStrayProcess    = "SB030" // platform hosts a stray process
	CodeNoMaster        = "SB031" // flow source FU lacks master side
	CodeNoSlave         = "SB032" // flow target FU lacks slave side
)

// ConstraintViolations aggregates every violation from a validation
// pass.
type ConstraintViolations []*ConstraintViolation

// Error implements the error interface.
func (vs ConstraintViolations) Error() string {
	switch len(vs) {
	case 0:
		return "platform: no constraint violations"
	case 1:
		return vs[0].Error()
	}
	s := vs[0].Error()
	for _, v := range vs[1:] {
		s += "; " + v.Error()
	}
	return s
}

// Validate checks the platform against the structural constraints of
// the SegBus DSL (section 2.2 and Figure 5):
//
//   - the platform has at least one segment;
//   - the package size is positive;
//   - the CA and every segment have a positive clock frequency;
//   - every segment hosts at least one FU;
//   - segment indices are consecutive, starting at 1 (linear
//     topology);
//   - no process is hosted by more than one FU.
//
// A nil return means the platform is structurally valid.
func (p *Platform) Validate() error {
	var vs ConstraintViolations
	add := func(code, element, format string, args ...interface{}) {
		vs = append(vs, &ConstraintViolation{Code: code, Element: element, Message: fmt.Sprintf(format, args...)})
	}

	if len(p.Segments) == 0 {
		add(CodeNoSegments, p.Name, "platform has no segments")
	}
	if p.PackageSize <= 0 {
		add(CodeBadPackageSize, p.Name, "non-positive package size %d", p.PackageSize)
	}
	if p.CAClock <= 0 {
		add(CodeBadCAClock, "CA", "non-positive clock frequency %v", float64(p.CAClock))
	}
	if p.HeaderTicks < 0 {
		add(CodeBadHeaderTicks, p.Name, "negative header tick count %d", p.HeaderTicks)
	}
	if p.CAHopTicks < 0 {
		add(CodeBadCAHopTicks, p.Name, "negative CA hop tick count %d", p.CAHopTicks)
	}

	hostedBy := make(map[psdf.ProcessID]string)
	for i, s := range p.Segments {
		if s.Index != i+1 {
			add(CodeBadSegmentIndex, s.Name(), "segment index %d out of sequence (want %d)", s.Index, i+1)
		}
		if s.Clock <= 0 {
			add(CodeBadSegmentClock, s.Name(), "non-positive clock frequency %v", float64(s.Clock))
		}
		if len(s.FUs) == 0 {
			add(CodeEmptySegment, s.Name(), "segment hosts no functional unit (at least one FU required)")
		}
		for _, fu := range s.FUs {
			if prev, ok := hostedBy[fu.Process]; ok {
				add(CodeDoubleHosted, fu.Process.String(), "hosted by both %s and %s", prev, s.Name())
				continue
			}
			hostedBy[fu.Process] = s.Name()
		}
	}

	if len(vs) == 0 {
		return nil
	}
	return vs
}

// ValidateMapping checks that the platform hosts exactly the processes
// of the application model: every model process is placed on exactly
// one segment and the platform hosts no stray processes. It returns a
// ConstraintViolations error listing every mismatch, or nil.
func (p *Platform) ValidateMapping(m *psdf.Model) error {
	var vs ConstraintViolations
	hosted := make(map[psdf.ProcessID]bool)
	for _, proc := range p.Processes() {
		hosted[proc] = true
	}
	want := make(map[psdf.ProcessID]bool)
	for _, proc := range m.Processes() {
		want[proc] = true
		if !hosted[proc] {
			vs = append(vs, &ConstraintViolation{
				Code:    CodeUnmapped,
				Element: proc.String(),
				Message: "application process is not mapped to any segment",
			})
		}
	}
	for _, proc := range p.Processes() {
		if !want[proc] {
			vs = append(vs, &ConstraintViolation{
				Code:    CodeStrayProcess,
				Element: proc.String(),
				Message: "platform hosts a process that is not part of the application",
			})
		}
	}
	if len(vs) == 0 {
		return nil
	}
	return vs
}

// MasterCapable reports whether the FU hosting proc may initiate
// transfers. Unknown processes report false.
func (p *Platform) MasterCapable(proc psdf.ProcessID) bool {
	for _, s := range p.Segments {
		for _, fu := range s.FUs {
			if fu.Process == proc {
				return fu.Kind != SlaveOnly
			}
		}
	}
	return false
}

// SlaveCapable reports whether the FU hosting proc may receive
// transfers. Unknown processes report false.
func (p *Platform) SlaveCapable(proc psdf.ProcessID) bool {
	for _, s := range p.Segments {
		for _, fu := range s.FUs {
			if fu.Process == proc {
				return fu.Kind != MasterOnly
			}
		}
	}
	return false
}

// ValidateRoles checks that FU interface kinds are compatible with the
// application's flows: every flow source must be master-capable and
// every flow target slave-capable.
func (p *Platform) ValidateRoles(m *psdf.Model) error {
	var vs ConstraintViolations
	for _, f := range m.Flows() {
		if !p.MasterCapable(f.Source) {
			vs = append(vs, &ConstraintViolation{
				Code:    CodeNoMaster,
				Element: f.Source.String(),
				Message: fmt.Sprintf("emits flow %s but its FU has no master interface", f),
			})
		}
		if f.Target != psdf.SystemOutput && !p.SlaveCapable(f.Target) {
			vs = append(vs, &ConstraintViolation{
				Code:    CodeNoSlave,
				Element: f.Target.String(),
				Message: fmt.Sprintf("receives flow %s but its FU has no slave interface", f),
			})
		}
	}
	if len(vs) == 0 {
		return nil
	}
	return vs
}
