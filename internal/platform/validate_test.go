package platform

import (
	"strings"
	"testing"

	"segbus/internal/psdf"
)

func TestValidateAcceptsGoodPlatform(t *testing.T) {
	if err := buildPlatform().Validate(); err != nil {
		t.Errorf("valid platform rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Platform
		wantSub string
	}{
		{
			"no segments",
			func() *Platform { return New("empty", 100*MHz, 36) },
			"no segments",
		},
		{
			"bad package size",
			func() *Platform {
				p := New("pkg", 100*MHz, 0)
				p.AddSegment(90*MHz, 0)
				return p
			},
			"non-positive package size",
		},
		{
			"bad CA clock",
			func() *Platform {
				p := New("ca", 0, 36)
				p.AddSegment(90*MHz, 0)
				return p
			},
			"non-positive clock frequency",
		},
		{
			"bad segment clock",
			func() *Platform {
				p := New("seg", 100*MHz, 36)
				p.AddSegment(0, 0)
				return p
			},
			"non-positive clock frequency",
		},
		{
			"empty segment",
			func() *Platform {
				p := New("nofu", 100*MHz, 36)
				p.AddSegment(90 * MHz)
				return p
			},
			"no functional unit",
		},
		{
			"duplicate process",
			func() *Platform {
				p := New("dup", 100*MHz, 36)
				p.AddSegment(90*MHz, 0, 1)
				p.AddSegment(95*MHz, 1)
				return p
			},
			"hosted by both",
		},
		{
			"negative header ticks",
			func() *Platform {
				p := New("hdr", 100*MHz, 36)
				p.HeaderTicks = -1
				p.AddSegment(90*MHz, 0)
				return p
			},
			"negative header tick count",
		},
		{
			"negative CA hop ticks",
			func() *Platform {
				p := New("hop", 100*MHz, 36)
				p.CAHopTicks = -3
				p.AddSegment(90*MHz, 0)
				return p
			},
			"negative CA hop tick count",
		},
		{
			"index out of sequence",
			func() *Platform {
				p := New("idx", 100*MHz, 36)
				p.AddSegment(90*MHz, 0)
				p.Segments[0].Index = 7
				return p
			},
			"out of sequence",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().Validate()
			if err == nil {
				t.Fatal("Validate() accepted an invalid platform")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestConstraintViolationsAggregate(t *testing.T) {
	p := New("multi", 0, -1)
	err := p.Validate()
	vs, ok := err.(ConstraintViolations)
	if !ok {
		t.Fatalf("Validate() returned %T", err)
	}
	if len(vs) < 3 {
		t.Errorf("expected >=3 violations, got %d: %v", len(vs), vs)
	}
}

func appModel() *psdf.Model {
	m := psdf.NewModel("app")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 10, Order: 1})
	m.AddFlow(psdf.Flow{Source: 1, Target: 2, Items: 10, Order: 2})
	return m
}

func TestValidateMapping(t *testing.T) {
	m := appModel()
	good := New("good", 100*MHz, 36)
	good.AddSegment(90*MHz, 0, 1)
	good.AddSegment(95*MHz, 2)
	if err := good.ValidateMapping(m); err != nil {
		t.Errorf("good mapping rejected: %v", err)
	}

	missing := New("missing", 100*MHz, 36)
	missing.AddSegment(90*MHz, 0, 1)
	err := missing.ValidateMapping(m)
	if err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Errorf("missing process not reported: %v", err)
	}

	stray := New("stray", 100*MHz, 36)
	stray.AddSegment(90*MHz, 0, 1, 2, 7)
	err = stray.ValidateMapping(m)
	if err == nil || !strings.Contains(err.Error(), "not part of the application") {
		t.Errorf("stray process not reported: %v", err)
	}
}

func TestValidateRoles(t *testing.T) {
	m := appModel()
	p := New("roles", 100*MHz, 36)
	s1 := p.AddSegment(90 * MHz)
	s1.FUs = append(s1.FUs,
		FU{Process: 0, Kind: MasterOnly},
		FU{Process: 1, Kind: MasterSlave},
	)
	s2 := p.AddSegment(95 * MHz)
	s2.FUs = append(s2.FUs, FU{Process: 2, Kind: SlaveOnly})
	if err := p.ValidateRoles(m); err != nil {
		t.Errorf("compatible roles rejected: %v", err)
	}

	// P2 as the source of a flow while slave-only must fail.
	m2 := appModel()
	m2.AddFlow(psdf.Flow{Source: 2, Target: 0, Items: 5, Order: 3})
	err := p.ValidateRoles(m2)
	if err == nil || !strings.Contains(err.Error(), "no master interface") {
		t.Errorf("slave-only source not reported: %v", err)
	}

	// P0 as a target while master-only must fail.
	m3 := psdf.NewModel("rev")
	m3.AddFlow(psdf.Flow{Source: 1, Target: 0, Items: 5, Order: 1})
	err = p.ValidateRoles(m3)
	if err == nil || !strings.Contains(err.Error(), "no slave interface") {
		t.Errorf("master-only target not reported: %v", err)
	}
}

func TestMasterSlaveCapable(t *testing.T) {
	p := New("cap", 100*MHz, 36)
	s := p.AddSegment(90 * MHz)
	s.FUs = append(s.FUs,
		FU{Process: 0, Kind: MasterOnly},
		FU{Process: 1, Kind: SlaveOnly},
		FU{Process: 2, Kind: MasterSlave},
	)
	if !p.MasterCapable(0) || p.SlaveCapable(0) {
		t.Error("P0 capabilities wrong")
	}
	if p.MasterCapable(1) || !p.SlaveCapable(1) {
		t.Error("P1 capabilities wrong")
	}
	if !p.MasterCapable(2) || !p.SlaveCapable(2) {
		t.Error("P2 capabilities wrong")
	}
	if p.MasterCapable(9) || p.SlaveCapable(9) {
		t.Error("unhosted process reported capable")
	}
}
