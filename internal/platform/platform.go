// Package platform implements the structural model of the SegBus
// segmented-bus architecture: segments, functional units (FU), segment
// arbiters (SA), the central arbiter (CA) and the border units (BU)
// that connect neighbouring segments (section 2.1 of the paper and the
// element hierarchy of Figure 5).
//
// A Platform value is a pure description: it carries no behaviour.
// Behaviour lives in the emulator packages, which interpret a Platform
// together with a PSDF application model and an Allocation.
package platform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"segbus/internal/psdf"
)

// Hz expresses a clock frequency in hertz.
type Hz float64

// Common frequency units.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// String renders the frequency the way the paper's reports do,
// e.g. "91.00MHz".
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.2fGHz", float64(f)/1e9)
	case f >= MHz:
		return fmt.Sprintf("%.2fMHz", float64(f)/1e6)
	case f >= KHz:
		return fmt.Sprintf("%.2fkHz", float64(f)/1e3)
	}
	return fmt.Sprintf("%.2fHz", float64(f))
}

// PeriodPs returns the clock period in picoseconds, rounded to the
// nearest integer picosecond. All simulation time in this repository
// is integer picoseconds, following the paper's reports.
func (f Hz) PeriodPs() int64 {
	if f <= 0 {
		panic("platform: non-positive clock frequency")
	}
	return int64(1e12/float64(f) + 0.5)
}

// FUKind distinguishes the interface roles a functional unit exposes on
// its segment bus. A master initiates transfers; a slave only receives.
// One FU contains at least one master or one slave (Figure 5).
type FUKind int

// Functional-unit kinds.
const (
	MasterSlave FUKind = iota // both initiates and receives (default)
	MasterOnly
	SlaveOnly
)

// String implements fmt.Stringer.
func (k FUKind) String() string {
	switch k {
	case MasterSlave:
		return "master+slave"
	case MasterOnly:
		return "master"
	case SlaveOnly:
		return "slave"
	}
	return fmt.Sprintf("FUKind(%d)", int(k))
}

// FU is a functional unit: the platform-side device an application
// process is realised on. In this methodology the mapping is
// one-to-one, so the FU carries the process identifier it hosts.
type FU struct {
	Process psdf.ProcessID // hosted application process
	Kind    FUKind         // bus interface role
}

// Segment is one bus segment: a set of FUs arbitrated by a single
// segment arbiter, clocked in its own clock domain.
type Segment struct {
	Index int  // 1-based segment id, as in the paper ("Segment 1")
	Clock Hz   // segment clock domain frequency
	FUs   []FU // devices attached to the segment, in attachment order
}

// Name returns the conventional segment name, e.g. "Segment 2".
func (s *Segment) Name() string { return "Segment " + strconv.Itoa(s.Index) }

// SAName returns the conventional name of the segment's arbiter,
// e.g. "SA2".
func (s *Segment) SAName() string { return "SA" + strconv.Itoa(s.Index) }

// Hosts reports whether the segment hosts the given process.
func (s *Segment) Hosts(p psdf.ProcessID) bool {
	for _, fu := range s.FUs {
		if fu.Process == p {
			return true
		}
	}
	return false
}

// BU identifies a border unit between two adjacent segments of a
// linear topology. Left and Right are the 1-based indices of the
// segments it bridges, with Left+1 == Right.
type BU struct {
	Left, Right int
}

// Name returns the conventional border unit name, e.g. "BU12" for the
// unit between segments 1 and 2.
func (b BU) Name() string { return fmt.Sprintf("BU%d%d", b.Left, b.Right) }

// Platform is a complete SegBus platform instance: an ordered list of
// segments in a linear topology, one central arbiter, and one border
// unit between each pair of adjacent segments. PackageSize is the
// number of data items per package (s in the paper).
type Platform struct {
	Name        string
	Segments    []*Segment
	CAClock     Hz  // central arbiter clock domain
	PackageSize int // s: data items per package

	// HeaderTicks is the per-package bus protocol overhead charged on
	// every package transfer in the granting segment's clock domain:
	// the request/address/header phases that precede the data burst.
	// It is part of the platform protocol (charged by estimation and
	// refined models alike), unlike the Overheads the estimation
	// model skips.
	HeaderTicks int

	// CAHopTicks is the central arbiter's circuit set-up cost per
	// segment hop of an inter-segment transfer (CA clock domain): the
	// CA identifies the target segment and connects each bridge of
	// the chain before granting the initiating master (section 2.1).
	// Charged per package by estimation and refined models alike.
	CAHopTicks int
}

// New returns a platform with the given name, CA clock and package
// size and no segments yet. Add segments with AddSegment.
func New(name string, caClock Hz, packageSize int) *Platform {
	return &Platform{Name: name, CAClock: caClock, PackageSize: packageSize}
}

// AddSegment appends a segment clocked at clock hosting the given
// processes (each realised as a default master+slave FU) and returns
// it. Segments are indexed 1..n in insertion order, forming the linear
// topology left to right.
func (p *Platform) AddSegment(clock Hz, processes ...psdf.ProcessID) *Segment {
	s := &Segment{Index: len(p.Segments) + 1, Clock: clock}
	for _, proc := range processes {
		s.FUs = append(s.FUs, FU{Process: proc, Kind: MasterSlave})
	}
	p.Segments = append(p.Segments, s)
	return s
}

// NumSegments returns the number of segments.
func (p *Platform) NumSegments() int { return len(p.Segments) }

// Segment returns the 1-based segment with the given index, or nil if
// it does not exist.
func (p *Platform) Segment(index int) *Segment {
	if index < 1 || index > len(p.Segments) {
		return nil
	}
	return p.Segments[index-1]
}

// BUs returns the border units of the linear topology, left to right:
// BU12, BU23, ... An n-segment platform has n-1 border units.
func (p *Platform) BUs() []BU {
	if len(p.Segments) < 2 {
		return nil
	}
	out := make([]BU, 0, len(p.Segments)-1)
	for i := 1; i < len(p.Segments); i++ {
		out = append(out, BU{Left: i, Right: i + 1})
	}
	return out
}

// SegmentOf returns the 1-based index of the segment hosting process
// proc, or 0 if no segment hosts it.
func (p *Platform) SegmentOf(proc psdf.ProcessID) int {
	for _, s := range p.Segments {
		if s.Hosts(proc) {
			return s.Index
		}
	}
	return 0
}

// Processes returns all hosted processes in ascending order.
func (p *Platform) Processes() []psdf.ProcessID {
	var out []psdf.ProcessID
	for _, s := range p.Segments {
		for _, fu := range s.FUs {
			out = append(out, fu.Process)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Route returns the border units a package crosses travelling from
// segment src to segment dst (1-based), in crossing order, together
// with direction: rightward is true when src < dst. An intra-segment
// transfer returns a nil slice.
func (p *Platform) Route(src, dst int) (bus []BU, rightward bool) {
	if src < 1 || src > len(p.Segments) || dst < 1 || dst > len(p.Segments) {
		panic(fmt.Sprintf("platform: route %d->%d out of range [1,%d]", src, dst, len(p.Segments)))
	}
	if src == dst {
		return nil, false
	}
	if src < dst {
		for i := src; i < dst; i++ {
			bus = append(bus, BU{Left: i, Right: i + 1})
		}
		return bus, true
	}
	for i := src; i > dst; i-- {
		bus = append(bus, BU{Left: i - 1, Right: i})
	}
	return bus, false
}

// Hops returns the number of border-unit crossings between segments
// src and dst (zero for intra-segment transfers).
func (p *Platform) Hops(src, dst int) int {
	if src < dst {
		return dst - src
	}
	return src - dst
}

// Clone returns a deep copy of the platform.
func (p *Platform) Clone() *Platform {
	c := New(p.Name, p.CAClock, p.PackageSize)
	c.HeaderTicks = p.HeaderTicks
	c.CAHopTicks = p.CAHopTicks
	for _, s := range p.Segments {
		cs := &Segment{Index: s.Index, Clock: s.Clock, FUs: append([]FU(nil), s.FUs...)}
		c.Segments = append(c.Segments, cs)
	}
	return c
}

// MoveProcess relocates process proc to the segment with the given
// 1-based index, preserving its FU kind. It returns an error if the
// process is not hosted or the segment does not exist. Used by the
// design-space exploration experiments (e.g. moving P9 from segment 1
// to segment 3 in section 4).
func (p *Platform) MoveProcess(proc psdf.ProcessID, toSegment int) error {
	dst := p.Segment(toSegment)
	if dst == nil {
		return fmt.Errorf("platform: no segment %d", toSegment)
	}
	for _, s := range p.Segments {
		for i, fu := range s.FUs {
			if fu.Process == proc {
				if s == dst {
					return nil
				}
				s.FUs = append(s.FUs[:i], s.FUs[i+1:]...)
				dst.FUs = append(dst.FUs, fu)
				return nil
			}
		}
	}
	return fmt.Errorf("platform: process %s is not hosted", proc)
}

// String renders the allocation in the paper's Figure 9 style, with
// segment borders marked as "||": "0 1 2 3 8 9 10 || 5 6 7 ... || 4".
func (p *Platform) String() string {
	nfu := 0
	for _, seg := range p.Segments {
		nfu += len(seg.FUs)
	}
	var b strings.Builder
	b.Grow(4*nfu + 4*len(p.Segments))
	for i, seg := range p.Segments {
		if i > 0 {
			b.WriteString(" || ")
		}
		for j, fu := range seg.FUs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.Itoa(int(fu.Process)))
		}
	}
	return b.String()
}
