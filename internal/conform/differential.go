package conform

import (
	"bytes"
	"fmt"

	"segbus/internal/core"
)

// This file is the service-vs-CLI differential oracle: the hooks a
// serving stack (cmd/segbus-served) uses to prove that its HTTP
// responses are byte-identical to what the one-shot CLI pipeline
// produces for the same generated case. The serve test harness feeds
// Schemes() to the service and compares the response body against
// ReportJSON() with CheckServed.

// Schemes returns the canonical XML schemes of the case's model pair
// — the same m2t rendering segbus-m2t writes and segbus-emu reads —
// so a case can be replayed through any transport that accepts the
// schemes (the HTTP estimation service, the CLI, ...).
func (c *Case) Schemes() (psdfXML, psmXML []byte, err error) {
	return core.Transform(c.Doc.Model, c.Doc.Platform)
}

// ReportJSON returns the canonical versioned report JSON of the
// case's estimation run — byte-for-byte what `segbus-emu
// -report-json` emits for the case's schemes.
func (c *Case) ReportJSON() ([]byte, error) {
	est, err := c.Est()
	if err != nil {
		return nil, err
	}
	return est.Report.JSON()
}

// CheckServed compares a served response body against the case's
// canonical report JSON. A mismatch is returned in the oracle
// violation style (what differs, with both renderings), nil means
// byte-identical.
func (c *Case) CheckServed(body []byte) error {
	want, err := c.ReportJSON()
	if err != nil {
		return fmt.Errorf("canonical run failed: %w", err)
	}
	if !bytes.Equal(body, want) {
		return fmt.Errorf("served response differs from the CLI report JSON\nserved: %s\ncli:    %s", body, want)
	}
	return nil
}
