package conform

import (
	"fmt"
	"math/rand"

	"segbus/internal/dsl"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// Generator produces a deterministic stream of valid (PSDF, PSM)
// documents from a root seed: layered random application graphs on
// random platforms, interleaved with mutations of the corpus documents
// it was seeded with (the scenario corpus, typically).
type Generator struct {
	rng    *rand.Rand
	corpus []*dsl.Document
	next   int
}

// NewGenerator returns a generator rooted at seed. corpus may be nil.
func NewGenerator(seed int64, corpus []*dsl.Document) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), corpus: corpus}
}

// Next produces the next case. Documents are always structurally valid
// (model, platform, mapping and roles); advisory warnings such as a
// nominal/platform package-size mismatch are allowed and exercised on
// purpose.
func (g *Generator) Next() *Case {
	idx := g.next
	g.next++
	if len(g.corpus) > 0 && g.rng.Intn(10) < 3 {
		if doc := g.mutateCorpus(); doc != nil {
			return &Case{Index: idx, Origin: "corpus:" + doc.Model.Name(), Doc: doc}
		}
	}
	return &Case{Index: idx, Origin: "generated", Doc: g.random()}
}

// random builds a fresh random document, retrying the rare draw that
// fails validation.
func (g *Generator) random() *dsl.Document {
	for attempt := 0; attempt < 10; attempt++ {
		doc := g.randomOnce()
		if !doc.Validate().HasErrors() {
			return doc
		}
	}
	// Deterministic minimal fallback; cannot fail validation.
	m := psdf.NewModel("fallback")
	m.AddFlow(psdf.Flow{Source: 0, Target: 1, Items: 36, Order: 1, Ticks: 10})
	p := platform.New("fallback-plat", 100*platform.MHz, 36)
	p.AddSegment(100*platform.MHz, 0, 1)
	return &dsl.Document{Model: m, Platform: p, Stereotype: map[psdf.ProcessID]dsl.Stereotype{}}
}

func (g *Generator) randomOnce() *dsl.Document {
	rng := g.rng

	// Layered application graph: every layer-i process is fed from
	// layer i-1, so reachability and ordering consistency hold by
	// construction.
	layers := 2 + rng.Intn(3) // 2..4
	var layout [][]int
	total := 0
	for i := 0; i < layers; i++ {
		n := 1 + rng.Intn(3) // 1..3 per layer
		row := make([]int, n)
		for j := range row {
			row[j] = total
			total++
		}
		layout = append(layout, row)
	}
	// Shuffled id assignment decorrelates process numbers from the
	// topology (exercises the permute-ids oracle's tie-breaking).
	ids := make([]psdf.ProcessID, total)
	for i := range ids {
		ids[i] = psdf.ProcessID(i)
	}
	rng.Shuffle(total, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

	m := psdf.NewModel(fmt.Sprintf("gen%d", g.next))
	randItems := func() int { return 1 + rng.Intn(200) }
	randTicks := func() int { return rng.Intn(120) }

	type flowKey struct {
		src, dst psdf.ProcessID
		order    int
	}
	seen := make(map[flowKey]bool)
	addFlow := func(src, dst psdf.ProcessID, order int) {
		k := flowKey{src, dst, order}
		if seen[k] || src == dst {
			return
		}
		seen[k] = true
		m.AddFlow(psdf.Flow{Source: src, Target: dst, Items: randItems(), Order: order, Ticks: randTicks()})
	}

	for i := 1; i < layers; i++ {
		for _, dst := range layout[i] {
			src := layout[i-1][rng.Intn(len(layout[i-1]))]
			order := i
			if rng.Intn(5) == 0 {
				order = i + 1
			}
			addFlow(ids[src], ids[dst], order)
		}
	}
	for extra := rng.Intn(4); extra > 0; extra-- {
		i := 1 + rng.Intn(layers-1)
		src := layout[i-1][rng.Intn(len(layout[i-1]))]
		dst := layout[i][rng.Intn(len(layout[i]))]
		addFlow(ids[src], ids[dst], i)
	}
	if rng.Intn(3) == 0 {
		last := layout[layers-1]
		src := last[rng.Intn(len(last))]
		m.AddFlow(psdf.Flow{Source: ids[src], Target: psdf.SystemOutput,
			Items: randItems(), Order: layers, Ticks: randTicks()})
	}

	s := 1 + rng.Intn(64)
	switch rng.Intn(5) {
	case 0, 1: // calibrated at the platform size
		m.SetNominalPackageSize(s)
	case 2: // calibrated elsewhere: exercises C rescaling
		m.SetNominalPackageSize(1 + rng.Intn(64))
	}

	// Platform: split the processes over 1..4 non-empty segments.
	procs := m.Processes()
	rng.Shuffle(len(procs), func(i, j int) { procs[i], procs[j] = procs[j], procs[i] })
	nSeg := 1 + rng.Intn(4)
	if nSeg > len(procs) {
		nSeg = len(procs)
	}
	p := platform.New(m.Name()+"-plat", g.randClock(), s)
	p.HeaderTicks = rng.Intn(13)
	p.CAHopTicks = rng.Intn(21)
	per := len(procs) / nSeg
	start := 0
	for i := 0; i < nSeg; i++ {
		end := start + per
		if i == nSeg-1 {
			end = len(procs)
		}
		p.AddSegment(g.randClock(), procs[start:end]...)
		start = end
	}

	// Occasionally constrain FU roles to what the flows require.
	if rng.Intn(4) == 0 {
		doc := &dsl.Document{Model: m, Platform: p}
		for _, seg := range p.Segments {
			for i := range seg.FUs {
				proc := seg.FUs[i].Process
				if len(m.FlowsInto(proc)) == 0 && rng.Intn(2) == 0 {
					seg.FUs[i].Kind = platform.MasterOnly
				} else if len(m.FlowsFrom(proc)) == 0 && rng.Intn(2) == 0 {
					seg.FUs[i].Kind = platform.SlaveOnly
				}
			}
		}
		return doc
	}
	return &dsl.Document{Model: m, Platform: p, Stereotype: map[psdf.ProcessID]dsl.Stereotype{}}
}

// randClock draws an exact integer-megahertz clock, so documents
// round-trip through the DSL printer losslessly.
func (g *Generator) randClock() platform.Hz {
	return platform.Hz(40+g.rng.Intn(211)) * platform.MHz
}

// mutateCorpus clones a random corpus document and perturbs one knob:
// the package size, a segment clock, the protocol tick counts, or a
// process placement. Returns nil when the mutation broke validity (the
// caller falls back to a generated case).
func (g *Generator) mutateCorpus() *dsl.Document {
	rng := g.rng
	doc := cloneDoc(g.corpus[rng.Intn(len(g.corpus))])
	if doc.Platform == nil {
		return nil
	}
	p := doc.Platform
	switch rng.Intn(4) {
	case 0:
		p.PackageSize = 1 + rng.Intn(64)
	case 1:
		p.Segments[rng.Intn(len(p.Segments))].Clock = g.randClock()
	case 2:
		p.HeaderTicks = rng.Intn(13)
		p.CAHopTicks = rng.Intn(21)
	case 3:
		// Move a random process to another segment, keeping every
		// segment populated.
		from := p.Segments[rng.Intn(len(p.Segments))]
		if len(from.FUs) < 2 || len(p.Segments) < 2 {
			return nil
		}
		proc := from.FUs[rng.Intn(len(from.FUs))].Process
		to := 1 + rng.Intn(len(p.Segments))
		if err := p.MoveProcess(proc, to); err != nil {
			return nil
		}
	}
	if doc.Validate().HasErrors() {
		return nil
	}
	return doc
}
