package conform

// The pooled-reuse differential battery: hundreds of generated cases
// flow twice through ONE reused machine, and every single run must be
// byte-identical to a fresh-machine run of the same case. The second
// pass additionally pins the pass-1 bytes, so a case whose earlier
// neighbours differ between passes cannot leak state across the
// battery unnoticed.

import (
	"bytes"
	"path/filepath"
	"testing"

	"segbus/internal/emulator"
)

func TestPooledReuseBattery(t *testing.T) {
	corpus, err := LoadCorpusDir(filepath.Join("..", "..", "testdata", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(11, corpus)
	const nCases = 160 // ×2 passes ≥ 300 differential runs
	cases := make([]*Case, nCases)
	for i := range cases {
		cases[i] = g.Next()
	}

	run := func(c *Case, mc *emulator.Machine) ([]byte, string) {
		var r *emulator.Report
		var err error
		if mc != nil {
			r, err = mc.Run(c.Doc.Model, c.Doc.Platform, emulator.Config{})
		} else {
			r, err = emulator.Run(c.Doc.Model, c.Doc.Platform, emulator.Config{})
		}
		if err != nil {
			return nil, err.Error()
		}
		b, jerr := r.JSON()
		if jerr != nil {
			t.Fatalf("marshal: %v", jerr)
		}
		return b, ""
	}

	mc := emulator.NewMachine()
	firstPass := make([][]byte, nCases)
	firstErr := make([]string, nCases)
	checked := 0
	for pass := 0; pass < 2; pass++ {
		for i, c := range cases {
			if c.Doc.Platform == nil {
				continue
			}
			fresh, freshErr := run(c, nil)
			warm, warmErr := run(c, mc)
			if warmErr != freshErr {
				t.Fatalf("pass %d case %d (%s): warm err %q, fresh err %q",
					pass, i, c.Doc.Model.Name(), warmErr, freshErr)
			}
			if !bytes.Equal(warm, fresh) {
				t.Fatalf("pass %d case %d (%s): warm report differs from fresh",
					pass, i, c.Doc.Model.Name())
			}
			if pass == 0 {
				firstPass[i], firstErr[i] = warm, warmErr
			} else {
				if warmErr != firstErr[i] || !bytes.Equal(warm, firstPass[i]) {
					t.Fatalf("case %d (%s): pass 2 output differs from pass 1 on the same machine",
						i, c.Doc.Model.Name())
				}
			}
			checked++
		}
	}
	if checked < 300 {
		t.Fatalf("battery performed %d differential runs, want >= 300", checked)
	}
}
