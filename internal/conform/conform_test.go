package conform

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/obs"
)

const scenarioDir = "../../testdata/scenarios"

// TestSmokeSweep is the bounded conformance sweep that rides along
// with every `go test` run: a deterministic mixed generated/corpus
// sweep over the full oracle battery must pass cleanly.
func TestSmokeSweep(t *testing.T) {
	corpus, err := LoadCorpusDir(scenarioDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatalf("no corpus documents under %s", scenarioDir)
	}
	sum, err := Run(Config{Seed: 1, N: 60, Corpus: corpus, ReproDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.OK() {
		t.Fatalf("smoke sweep failed:\n%s", sum)
	}
	if sum.Cases != 60 {
		t.Errorf("Cases = %d, want 60", sum.Cases)
	}
	if sum.CorpusCases == 0 {
		t.Error("no corpus-seeded cases in a mixed sweep")
	}
	if want := 60 * len(Oracles()); sum.Checks != want {
		t.Errorf("Checks = %d, want %d", sum.Checks, want)
	}
	for _, name := range []string{"bounds", "envelope", "determinism"} {
		if tally := sum.Oracles[name]; tally.Pass != 60 {
			t.Errorf("oracle %s: %d/60 passes (%d skipped)", name, tally.Pass, tally.Skip)
		}
	}
}

// TestCorruptedOverheadsCaught is the harness's own acceptance check:
// simulating a corrupted refined model (GrantTicks inflated two orders
// of magnitude past the paper's figure) must break the bounds oracle
// and shrink the failure to a tiny reproducer.
func TestCorruptedOverheadsCaught(t *testing.T) {
	dir := t.TempDir()
	corrupted := emulator.Overheads{GrantTicks: 800, SyncTicks: 2, CASetTicks: 2, CAResetTicks: 2}
	sum, err := Run(Config{
		Seed:             1,
		N:                25,
		Oracles:          []string{"bounds"},
		RefinedOverheads: corrupted,
		ReproDir:         dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK() {
		t.Fatal("corrupted refined overheads passed the bounds oracle")
	}
	best := -1
	for _, f := range sum.Failures {
		if f.Oracle != "bounds" {
			t.Errorf("unexpected failing oracle %s", f.Oracle)
		}
		if best == -1 || f.Processes < best {
			best = f.Processes
		}
		if f.ReproPath == "" {
			t.Errorf("case %d: no reproducer persisted", f.Case)
			continue
		}
		// The reproducer must replay: parse, validate, and still fail
		// the same oracle under the corrupted overheads.
		rf, err := os.Open(f.ReproPath)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := dsl.Parse(rf)
		rf.Close()
		if err != nil {
			t.Fatalf("reproducer %s does not parse: %v", f.ReproPath, err)
		}
		if ds := doc.Validate(); ds.HasErrors() {
			t.Fatalf("reproducer %s does not validate:\n%s", f.ReproPath, ds)
		}
		sc := &Case{Doc: doc, refined: corrupted}
		if res := checkBounds(sc); res == nil || IsSkip(res) {
			t.Errorf("reproducer %s does not reproduce the bounds failure", f.ReproPath)
		}
	}
	if best > 3 {
		t.Errorf("smallest shrunk reproducer has %d processes, want <= 3", best)
	}
}

// TestGeneratorDeterministic pins the sweep's reproducibility story:
// the case stream is a pure function of the seed (and corpus).
func TestGeneratorDeterministic(t *testing.T) {
	corpus, err := LoadCorpusDir(scenarioDir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewGenerator(7, corpus)
	g2 := NewGenerator(7, corpus)
	for i := 0; i < 40; i++ {
		c1, c2 := g1.Next(), g2.Next()
		if c1.Origin != c2.Origin {
			t.Fatalf("case %d: origin %q vs %q", i, c1.Origin, c2.Origin)
		}
		if p1, p2 := c1.Doc.Print(), c2.Doc.Print(); p1 != p2 {
			t.Fatalf("case %d: same seed produced different documents:\n%s\nvs\n%s", i, p1, p2)
		}
	}
}

// TestGeneratorValid ensures every generated document is structurally
// valid — the oracles can only judge models the emulator accepts.
func TestGeneratorValid(t *testing.T) {
	g := NewGenerator(99, nil)
	for i := 0; i < 100; i++ {
		c := g.Next()
		if ds := c.Doc.Validate(); ds.HasErrors() {
			t.Fatalf("case %d invalid:\n%s\n%s", i, ds, c.Doc.Print())
		}
	}
}

// TestShrink checks the reducer on a synthetic predicate: it must
// return a smaller, still-failing, still-valid document.
func TestShrink(t *testing.T) {
	g := NewGenerator(3, nil)
	var doc *dsl.Document
	for {
		c := g.Next()
		if c.Doc.Model.NumProcesses() >= 5 && c.Doc.Model.NumFlows() >= 5 {
			doc = c.Doc
			break
		}
	}
	// "Fails" whenever any flow carries at least two items.
	fails := func(d *dsl.Document) bool {
		for _, f := range d.Model.Flows() {
			if f.Items >= 2 {
				return true
			}
		}
		return false
	}
	if !fails(doc) {
		t.Skip("starting document does not fail the synthetic predicate")
	}
	shrunk, changed := Shrink(doc, fails, 0)
	if !changed {
		t.Fatal("shrink adopted no reduction")
	}
	if !fails(shrunk) {
		t.Fatal("shrunk document no longer fails")
	}
	if ds := shrunk.Validate(); ds.HasErrors() {
		t.Fatalf("shrunk document invalid:\n%s", ds)
	}
	if weight(shrunk) >= weight(doc) {
		t.Fatalf("shrink did not reduce weight: %d -> %d", weight(doc), weight(shrunk))
	}
	if shrunk.Model.NumProcesses() > 2 {
		t.Errorf("synthetic predicate shrunk to %d processes, want <= 2", shrunk.Model.NumProcesses())
	}
}

// TestSelectOracles covers subset selection and unknown names.
func TestSelectOracles(t *testing.T) {
	all, err := SelectOracles(nil)
	if err != nil || len(all) != len(oracleList) {
		t.Fatalf("SelectOracles(nil) = %d oracles, err %v", len(all), err)
	}
	sub, err := SelectOracles([]string{"determinism", "bounds"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "bounds" || sub[1].Name != "determinism" {
		t.Errorf("subset selection broke battery order: %v", []string{sub[0].Name, sub[1].Name})
	}
	if _, err := SelectOracles([]string{"bounds", "nope"}); err == nil {
		t.Error("unknown oracle name accepted")
	}
}

func parseDoc(t *testing.T, src string) *dsl.Document {
	t.Helper()
	doc, err := dsl.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ds := doc.Validate(); ds.HasErrors() {
		t.Fatalf("test document invalid:\n%s", ds)
	}
	return doc
}

// TestPermutablePair pins the safe-swap domain of the permute-ids
// oracle: eligible when one of the pair is a pure sink with no shared
// same-order fan-in, rejected when a common source emits same-order
// flows to both (the emulator's canonical emission order would flip).
func TestPermutablePair(t *testing.T) {
	eligible := parseDoc(t, `application t1
process P0
process P1
process P2
flow P0 -> P1 items=4 order=1 ticks=2
flow P0 -> P2 items=4 order=2 ticks=2
platform t1-plat
ca-clock 100MHz
package-size 4
segment 1 clock=100MHz processes=P0,P1,P2
`)
	if _, _, ok := permutablePair(eligible); !ok {
		t.Error("no permutable pair found in an eligible document")
	}

	fanout := parseDoc(t, `application t2
process P0
process P1
process P2
flow P0 -> P1 items=4 order=1 ticks=2
flow P0 -> P2 items=4 order=1 ticks=2
platform t2-plat
ca-clock 100MHz
package-size 4
segment 1 clock=100MHz processes=P1,P2
segment 2 clock=100MHz processes=P0
`)
	if a, b, ok := permutablePair(fanout); ok {
		t.Errorf("same-order fan-out pair %s/%s accepted", a, b)
	}
}

// TestWriteRepro ensures reproducers parse back as regular model
// descriptions (the replay/triage contract).
func TestWriteRepro(t *testing.T) {
	g := NewGenerator(5, nil)
	c := g.Next()
	dir := t.TempDir()
	f := &Failure{Case: c.Index, Origin: c.Origin, Oracle: "bounds", Detail: "synthetic\nfailure"}
	path, err := WriteRepro(dir, f, c.Doc, 5)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	doc, err := dsl.Parse(rf)
	if err != nil {
		t.Fatalf("reproducer does not parse: %v", err)
	}
	if got, want := doc.Print(), c.Doc.Print(); got != want {
		t.Errorf("reproducer round-trip changed the document:\n%s\nvs\n%s", got, want)
	}
}

// TestWriteFuzzSeed checks the Go fuzzing seed-corpus encoding and the
// content-hash idempotence.
func TestWriteFuzzSeed(t *testing.T) {
	g := NewGenerator(5, nil)
	c := g.Next()
	dir := t.TempDir()
	p1, err := WriteFuzzSeed(dir, c.Doc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := WriteFuzzSeed(dir, c.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("same document hashed to different seeds: %s vs %s", p1, p2)
	}
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "go test fuzz v1\nstring(") {
		t.Errorf("seed file is not in go-fuzz v1 encoding:\n%s", data)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "conform-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("expected 1 idempotent seed file, found %d", len(entries))
	}
}

// TestSummaryMetricsAndHeartbeat: the sweep's metric snapshot in the
// summary agrees with its scalar counters, and the heartbeat receives
// the final line.
func TestSummaryMetricsAndHeartbeat(t *testing.T) {
	var hb bytes.Buffer
	sum, err := Run(Config{
		Seed:      7,
		N:         10,
		ReproDir:  t.TempDir(),
		Heartbeat: obs.NewHeartbeat(&hb, "case", time.Nanosecond, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Metrics == nil {
		t.Fatal("Summary.Metrics is nil")
	}
	if got := sum.Metrics["segbus_conform_cases_total"]; got != float64(sum.Cases) {
		t.Errorf("cases metric = %v, summary = %d", got, sum.Cases)
	}
	if got := sum.Metrics["segbus_conform_checks_total"]; got != float64(sum.Checks) {
		t.Errorf("checks metric = %v, summary = %d", got, sum.Checks)
	}
	for name, tally := range sum.Oracles {
		if got := sum.Metrics[`segbus_conform_oracle_pass_total{oracle="`+name+`"}`]; got != float64(tally.Pass) {
			t.Errorf("oracle %s pass metric = %v, tally = %d", name, got, tally.Pass)
		}
		if got := sum.Metrics[`segbus_conform_oracle_fail_total{oracle="`+name+`"}`]; got != float64(tally.Fail) {
			t.Errorf("oracle %s fail metric = %v, tally = %d", name, got, tally.Fail)
		}
	}
	out := hb.String()
	if !strings.Contains(out, "10/10 cases") || !strings.Contains(out, "(done)") {
		t.Errorf("heartbeat final line missing:\n%s", out)
	}
	// The snapshot must survive a JSON round-trip inside the summary.
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"segbus_conform_cases_total"`) {
		t.Error("metrics absent from the JSON summary")
	}
}
