package conform

import (
	"segbus/internal/dsl"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// defaultShrinkEvals caps the oracle evaluations one shrink may spend.
const defaultShrinkEvals = 400

// Shrink greedily reduces a failing document to a smaller one that
// still fails, trying the big reductions first: dropping a process
// (with every flow touching it), merging away a segment, dropping a
// flow, growing the package size (fewer packages), and halving the
// numeric parameters. Every candidate must stay structurally valid —
// the oracles can only judge models the emulator accepts. fails
// re-runs the failing oracle; maxEvals bounds its invocations (zero
// selects the default). The second result reports whether any
// reduction was adopted.
func Shrink(doc *dsl.Document, fails func(*dsl.Document) bool, maxEvals int) (*dsl.Document, bool) {
	if maxEvals <= 0 {
		maxEvals = defaultShrinkEvals
	}
	evals := 0
	try := func(cand *dsl.Document) bool {
		if cand == nil || evals >= maxEvals {
			return false
		}
		if weight(cand) >= weight(doc) {
			return false
		}
		if cand.Validate().HasErrors() {
			return false
		}
		evals++
		return fails(cand)
	}

	changed := false
	for {
		adopted := false
		for _, cand := range candidates(doc) {
			if try(cand) {
				doc = cand
				adopted = true
				changed = true
				break
			}
		}
		if !adopted || evals >= maxEvals {
			return doc, changed
		}
	}
}

// weight orders documents by reduction progress: processes dominate,
// then segments, flows, package count and the numeric tail. Every
// candidate transform strictly decreases it, so the greedy loop
// terminates.
func weight(doc *dsl.Document) int64 {
	m, p := doc.Model, doc.Platform
	w := int64(m.NumProcesses())*1e10 + int64(p.NumSegments())*1e8 + int64(m.NumFlows())*1e6
	w += int64(m.TotalPackages(p.PackageSize)) * 100
	tail := int64(p.HeaderTicks + p.CAHopTicks)
	for _, f := range m.Flows() {
		tail += int64(f.Items) + int64(f.Ticks)
	}
	return w + tail
}

// candidates enumerates the reduction attempts for one round, largest
// reductions first.
func candidates(doc *dsl.Document) []*dsl.Document {
	var out []*dsl.Document
	for _, p := range doc.Model.Processes() {
		out = append(out, withoutProcess(doc, p))
	}
	for i := 1; i <= doc.Platform.NumSegments(); i++ {
		out = append(out, mergeSegment(doc, i))
	}
	for i := 0; i < doc.Model.NumFlows(); i++ {
		out = append(out, withoutFlow(doc, i))
	}
	out = append(out, growPackage(doc))
	out = append(out, halveNumbers(doc))
	return out
}

// rebuild assembles a document keeping only the flows keepFlow admits,
// cascading away processes left with no flow at all and segments left
// with no FU.
func rebuild(doc *dsl.Document, keepFlow func(i int, f psdf.Flow) bool) *dsl.Document {
	var flows []psdf.Flow
	touched := make(map[psdf.ProcessID]bool)
	for i, f := range doc.Model.Flows() {
		if !keepFlow(i, f) {
			continue
		}
		flows = append(flows, f)
		touched[f.Source] = true
		if f.Target != psdf.SystemOutput {
			touched[f.Target] = true
		}
	}
	m := psdf.NewModel(doc.Model.Name())
	m.SetNominalPackageSize(doc.Model.NominalPackageSize())
	for _, f := range flows {
		m.AddFlow(f)
	}

	old := doc.Platform
	p := platform.New(old.Name, old.CAClock, old.PackageSize)
	p.HeaderTicks = old.HeaderTicks
	p.CAHopTicks = old.CAHopTicks
	for _, seg := range old.Segments {
		var fus []platform.FU
		for _, fu := range seg.FUs {
			if touched[fu.Process] {
				fus = append(fus, fu)
			}
		}
		if len(fus) == 0 {
			continue
		}
		ns := p.AddSegment(seg.Clock)
		ns.FUs = fus
	}

	st := make(map[psdf.ProcessID]dsl.Stereotype)
	for proc, s := range doc.Stereotype {
		if touched[proc] {
			st[proc] = s
		}
	}
	return &dsl.Document{Model: m, Platform: p, Stereotype: st}
}

// withoutProcess drops a process and every flow touching it.
func withoutProcess(doc *dsl.Document, p psdf.ProcessID) *dsl.Document {
	return rebuild(doc, func(_ int, f psdf.Flow) bool {
		return f.Source != p && f.Target != p
	})
}

// withoutFlow drops the i-th flow in canonical order.
func withoutFlow(doc *dsl.Document, i int) *dsl.Document {
	return rebuild(doc, func(j int, _ psdf.Flow) bool { return j != i })
}

// mergeSegment folds segment k's FUs into its left neighbour (or the
// right one for the leftmost segment), shortening the topology.
func mergeSegment(doc *dsl.Document, k int) *dsl.Document {
	old := doc.Platform
	if old.NumSegments() < 2 {
		return nil
	}
	into := k - 1
	if into < 1 {
		into = k + 1
	}
	out := rebuild(doc, func(int, psdf.Flow) bool { return true })
	p := platform.New(old.Name, old.CAClock, old.PackageSize)
	p.HeaderTicks = old.HeaderTicks
	p.CAHopTicks = old.CAHopTicks
	for _, seg := range old.Segments {
		if seg.Index == k {
			continue
		}
		ns := p.AddSegment(seg.Clock)
		ns.FUs = append(ns.FUs, seg.FUs...)
		if seg.Index == into {
			ns.FUs = append(ns.FUs, old.Segment(k).FUs...)
		}
	}
	out.Platform = p
	return out
}

// growPackage doubles the package size (capped at the largest flow's
// item count), cutting the package count.
func growPackage(doc *dsl.Document) *dsl.Document {
	maxItems := 0
	for _, f := range doc.Model.Flows() {
		if f.Items > maxItems {
			maxItems = f.Items
		}
	}
	s := doc.Platform.PackageSize
	if s >= maxItems {
		return nil
	}
	grown := s * 2
	if grown > maxItems {
		grown = maxItems
	}
	out := cloneDoc(doc)
	out.Platform.PackageSize = grown
	return out
}

// halveNumbers halves every numeric parameter of the pair: item and
// tick counts, protocol overhead ticks.
func halveNumbers(doc *dsl.Document) *dsl.Document {
	changedAny := false
	out := rebuild(doc, func(int, psdf.Flow) bool { return true })
	m := psdf.NewModel(out.Model.Name())
	m.SetNominalPackageSize(out.Model.NominalPackageSize())
	for _, f := range out.Model.Flows() {
		items := f.Items / 2
		if items < 1 {
			items = 1
		}
		ticks := f.Ticks / 2
		if items != f.Items || ticks != f.Ticks {
			changedAny = true
		}
		f.Items, f.Ticks = items, ticks
		m.AddFlow(f)
	}
	out.Model = m
	if out.Platform.HeaderTicks > 0 || out.Platform.CAHopTicks > 0 {
		out.Platform.HeaderTicks /= 2
		out.Platform.CAHopTicks /= 2
		changedAny = true
	}
	if !changedAny {
		return nil
	}
	return out
}
