package conform

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"segbus/internal/automata"
	"segbus/internal/core"
	"segbus/internal/dsl"
	"segbus/internal/emulator"
	"segbus/internal/platform"
	"segbus/internal/psdf"
)

// errSkip is the sentinel an oracle returns when it does not apply to
// a case (e.g. package size already 1 for shrink-package). Skips are
// tallied separately from passes.
var errSkip = errors.New("conform: oracle not applicable")

// Oracle is one conformance property. Check returns nil on pass,
// errSkip when the case is out of the oracle's domain, and a
// descriptive error on a violation.
type Oracle struct {
	Name  string
	Doc   string
	Check func(*Case) error
}

// oracleList is the built-in battery, in execution order: cheap and
// load-bearing properties first.
var oracleList = []*Oracle{
	{
		Name:  "bounds",
		Doc:   "LB ≤ estimate ≤ UB (SB201) and LB ≤ refined ≤ UB + overhead allowance",
		Check: checkBounds,
	},
	{
		Name:  "envelope",
		Doc:   "|refined - estimate| stays inside the per-package overhead envelope",
		Check: checkEnvelope,
	},
	{
		Name:  "determinism",
		Doc:   "identical inputs yield byte-identical reports and traces",
		Check: checkDeterminism,
	},
	{
		Name:  "pooled",
		Doc:   "a reused (pooled) emulator machine reproduces the fresh-machine report byte for byte",
		Check: checkPooled,
	},
	{
		Name:  "grow-segment",
		Doc:   "appending a platform segment never decreases the estimated time",
		Check: checkGrowSegment,
	},
	{
		Name:  "shrink-package",
		Doc:   "shrinking the package size never decreases border-unit crossings",
		Check: checkShrinkPackage,
	},
	{
		Name:  "permute-ids",
		Doc:   "relabeling a tie-free same-segment process pair preserves the estimate",
		Check: checkPermuteIDs,
	},
	{
		Name:  "reachability",
		Doc:   "exact checker verdict (deadlock vs terminates) matches the emulator outcome",
		Check: checkReachability,
	},
}

// checkReachability cross-validates the exact reachability checker
// (internal/automata) against the emulator: the checker's
// deadlock-versus-terminates verdict must match whether the
// estimation run actually gets stuck, and a deadlock verdict's
// counterexample must replay into a stuck product state. Models the
// compiler rejects (the validators own those) and budget-exhausted
// explorations are out of the oracle's domain.
func checkReachability(c *Case) error {
	sys, err := automata.Compile(c.Doc.Model, c.Doc.Platform)
	if err != nil {
		return errSkip
	}
	res := sys.Check(automata.Options{})
	if res.Verdict == automata.Inconclusive {
		return errSkip
	}

	_, estErr := c.Est()
	var dl *emulator.DeadlockError
	emuDeadlock := errors.As(estErr, &dl)
	if estErr != nil && !emuDeadlock {
		return fmt.Errorf("emulator failed for a non-deadlock reason on a compilable model: %w", estErr)
	}
	if emuDeadlock != (res.Verdict == automata.Deadlocks) {
		return fmt.Errorf("checker verdict %v disagrees with the emulator (deadlock=%v, err=%v)",
			res.Verdict, emuDeadlock, estErr)
	}
	if res.Verdict == automata.Deadlocks {
		stuck, rerr := sys.Replay(res.Trace)
		if rerr != nil {
			return fmt.Errorf("counterexample does not replay: %w", rerr)
		}
		if !stuck {
			return fmt.Errorf("counterexample replays to a live state")
		}
	}
	return nil
}

// pooledShared is the one machine the pooled oracle reuses across
// every case of a battery run — deliberately shared, so each check
// runs on a machine dirtied by arbitrary earlier cases (including
// ones whose runs failed), exactly the state a serving pool recycles.
var pooledShared = struct {
	mu sync.Mutex
	mc *emulator.Machine
}{mc: emulator.NewMachine()}

// checkPooled runs the case on the shared reused machine and on a
// fresh machine and requires indistinguishable outcomes: equal error
// strings, byte-identical report JSON. This is the conformance-level
// half of the machine-reuse battery (the emulator reuse tests own the
// op-sequence fuzzing; the serve pool stress owns the HTTP layer).
func checkPooled(c *Case) error {
	if c.Doc.Platform == nil {
		return errSkip
	}
	fresh, freshErr := emulator.Run(c.Doc.Model, c.Doc.Platform, emulator.Config{})
	pooledShared.mu.Lock()
	warm, warmErr := pooledShared.mc.Run(c.Doc.Model, c.Doc.Platform, emulator.Config{})
	pooledShared.mu.Unlock()
	if (freshErr == nil) != (warmErr == nil) {
		return fmt.Errorf("pooled machine error %v, fresh machine error %v", warmErr, freshErr)
	}
	if freshErr != nil {
		if freshErr.Error() != warmErr.Error() {
			return fmt.Errorf("pooled machine error %q, fresh machine error %q", warmErr, freshErr)
		}
		return nil
	}
	fb, err := fresh.JSON()
	if err != nil {
		return err
	}
	wb, err := warm.JSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(fb, wb) {
		return fmt.Errorf("pooled machine report differs from fresh machine report")
	}
	return nil
}

// Oracles returns the built-in oracle battery in execution order.
func Oracles() []*Oracle {
	out := make([]*Oracle, len(oracleList))
	copy(out, oracleList)
	return out
}

// SelectOracles resolves oracle names (nil or empty selects all),
// preserving battery order and rejecting unknown names.
func SelectOracles(names []string) ([]*Oracle, error) {
	if len(names) == 0 {
		return Oracles(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Oracle
	for _, o := range oracleList {
		if want[o.Name] {
			out = append(out, o)
			delete(want, o.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("conform: unknown oracle(s): %v (see -list)", unknown)
	}
	return out, nil
}

// paperOverheads are the timing factors the paper quotes for the
// skipped protocol work (section 3.6: about two ticks per clock-domain
// crossing, 2-3 ticks of arbiter work, the grant/response bundle).
// The overhead allowance of the bounds and envelope oracles is
// anchored to these figures rather than to realplat's live constants,
// so a corrupted refined model is caught instead of silently trusted.
var paperOverheads = emulator.Overheads{
	GrantTicks:   8,
	SyncTicks:    2,
	CASetTicks:   2,
	CAResetTicks: 2,
}

// overheadAllowancePs bounds, from the model pair alone, how much
// slower than the estimation model the refined model may legitimately
// run: every package transfer is charged its full serialised overhead
// (grant work on each of its 1+hops bus transactions, two
// clock-domain synchronisations per crossing, CA set/reset work) plus
// a clock-edge alignment allowance for the extra scheduling points the
// overheads introduce. Like the SB201 upper bound it over-approximates
// on purpose: it must never be exceeded by a faithful refined model,
// whatever the schedule does.
func overheadAllowancePs(m *psdf.Model, plat *platform.Platform, ov emulator.Overheads) int64 {
	caPeriod := plat.CAClock.PeriodPs()
	maxPeriod := caPeriod
	for _, seg := range plat.Segments {
		if p := seg.Clock.PeriodPs(); p > maxPeriod {
			maxPeriod = p
		}
	}
	s := plat.PackageSize
	var total int64
	for _, f := range m.Flows() {
		srcSeg := plat.SegmentOf(f.Source)
		dstSeg := srcSeg
		if f.Target != psdf.SystemOutput {
			dstSeg = plat.SegmentOf(f.Target)
		}
		h := int64(plat.Hops(srcSeg, dstSeg))
		per := int64(ov.GrantTicks)*(1+h)*maxPeriod +
			int64(ov.SyncTicks)*2*h*maxPeriod +
			int64(ov.CASetTicks+ov.CAResetTicks)*(1+h)*caPeriod +
			(4+3*h)*maxPeriod // alignment slack for the added scheduling points
		total += int64(f.Packages(s)) * per
	}
	return total
}

// checkBounds verifies the bound chain across both timing models. For
// the estimation model the SB201 property is exact:
// LowerPs ≤ estimate ≤ UpperPs. The refined model must stay inside
// [LowerPs, UpperPs + allowance] — the static bounds count work that
// any faithful execution pays, and it may exceed the estimation-model
// upper bound only by the serialised overhead work. The stronger
// estimate ≤ refined holds only without bus contention: overheads
// shift arbitration request times, and under contention the arbiter
// may pick a different — equally valid — winner order whose
// interleaving finishes earlier (a classic scheduling anomaly). With
// at most one flow-sourcing process there is no arbitration anywhere
// and overheads are provably monotone, so there the chain is enforced
// in full.
func checkBounds(c *Case) error {
	b, err := c.Bounds()
	if err != nil {
		return fmt.Errorf("bounds computation: %w", err)
	}
	est, err := c.Est()
	if err != nil {
		return fmt.Errorf("estimation run: %w", err)
	}
	act, err := c.Act()
	if err != nil {
		return fmt.Errorf("refined run: %w", err)
	}
	e := est.ExecutionTimePs()
	a := int64(act.ExecutionTimePs)
	if e < b.LowerPs {
		return fmt.Errorf("estimate %d ps below static lower bound %d ps", e, b.LowerPs)
	}
	if e > b.UpperPs {
		return fmt.Errorf("estimate %d ps above static upper bound %d ps", e, b.UpperPs)
	}
	if a < b.LowerPs {
		return fmt.Errorf("refined run %d ps below static lower bound %d ps", a, b.LowerPs)
	}
	if contentionFree(c.Doc.Model) && a < e {
		return fmt.Errorf("refined run %d ps faster than estimate %d ps on a contention-free model (overheads can only add time without arbitration)", a, e)
	}
	allow := overheadAllowancePs(c.Doc.Model, c.Doc.Platform, paperOverheads)
	if a > b.UpperPs+allow {
		return fmt.Errorf("refined run %d ps exceeds upper bound %d ps + overhead allowance %d ps (refined overheads inconsistent with the paper's figures?)",
			a, b.UpperPs, allow)
	}
	return nil
}

// contentionFree reports whether the model has at most one
// flow-sourcing process. A single master never competes for a segment
// bus or the central arbiter, so no overhead-induced request shift can
// reorder grants — the refined model is then provably no faster than
// the estimation model.
func contentionFree(m *psdf.Model) bool {
	sources := make(map[psdf.ProcessID]bool)
	for _, f := range m.Flows() {
		sources[f.Source] = true
	}
	return len(sources) <= 1
}

// checkEnvelope verifies the paper's relative-error claim: the gap
// between the estimation model and the refined model stays inside an
// envelope proportional to the per-package overhead work — which grows
// as packages shrink, exactly the Discussion-of-section-4 prediction.
// The envelope is two-sided: the estimate usually under-estimates
// (positive error, skipped overheads), but under contention an
// overhead-shifted arbitration order can also finish earlier than the
// zero-overhead schedule (see checkBounds); either way the deviation
// is driven by, and bounded by, the overhead work per package.
func checkEnvelope(c *Case) error {
	est, err := c.Est()
	if err != nil {
		return fmt.Errorf("estimation run: %w", err)
	}
	act, err := c.Act()
	if err != nil {
		return fmt.Errorf("refined run: %w", err)
	}
	e := est.ExecutionTimePs()
	a := int64(act.ExecutionTimePs)
	if a == 0 {
		return errSkip
	}
	errPs := a - e
	if errPs < 0 {
		errPs = -errPs
	}
	allow := overheadAllowancePs(c.Doc.Model, c.Doc.Platform, paperOverheads)
	if errPs > allow {
		frac := float64(errPs) / float64(a)
		return fmt.Errorf("estimation error %d ps (%.1f%%) outside the overhead envelope %d ps for package size %d (estimate %d ps, refined %d ps)",
			errPs, 100*frac, allow, c.Doc.Platform.PackageSize, e, a)
	}
	return nil
}

// checkDeterminism runs the estimation model twice on the same inputs
// and compares the rendered report and trace byte for byte.
func checkDeterminism(c *Case) error {
	first, err := c.Est()
	if err != nil {
		return fmt.Errorf("estimation run: %w", err)
	}
	second, err := core.Estimate(c.Doc.Model, c.Doc.Platform, core.Options{Trace: true})
	if err != nil {
		return fmt.Errorf("repeat estimation run: %w", err)
	}
	r1, err := first.Report.JSON()
	if err != nil {
		return err
	}
	r2, err := second.Report.JSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(r1, r2) {
		return fmt.Errorf("report JSON differs between identical runs")
	}
	t1, err := first.Trace.JSON()
	if err != nil {
		return err
	}
	t2, err := second.Trace.JSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(t1, t2) {
		return fmt.Errorf("trace JSON differs between identical runs")
	}
	return nil
}

// cloneDoc deep-copies a document (model, platform, stereotypes).
func cloneDoc(doc *dsl.Document) *dsl.Document {
	out := &dsl.Document{
		Model:      doc.Model.Clone(),
		Stereotype: make(map[psdf.ProcessID]dsl.Stereotype, len(doc.Stereotype)),
	}
	if doc.Platform != nil {
		out.Platform = doc.Platform.Clone()
	}
	for p, st := range doc.Stereotype {
		out.Stereotype[p] = st
	}
	return out
}
