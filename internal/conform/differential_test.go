package conform

import (
	"strings"
	"testing"

	"segbus/internal/core"
)

func TestSchemesRoundTripMatchesDirectRun(t *testing.T) {
	g := NewGenerator(11, nil)
	c := g.Next()
	psdfXML, psmXML, err := c.Schemes()
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.EstimateXML(psdfXML, psmXML, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Est()
	if err != nil {
		t.Fatal(err)
	}
	if est.Report.ExecutionTimePs != direct.Report.ExecutionTimePs {
		t.Errorf("scheme round trip changed the estimate: %d vs %d",
			est.Report.ExecutionTimePs, direct.Report.ExecutionTimePs)
	}
}

func TestCheckServed(t *testing.T) {
	g := NewGenerator(12, nil)
	c := g.Next()
	want, err := c.ReportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckServed(want); err != nil {
		t.Errorf("identical body rejected: %v", err)
	}
	err = c.CheckServed([]byte(`{"version":1}`))
	if err == nil || !strings.Contains(err.Error(), "differs") {
		t.Errorf("mismatching body accepted: %v", err)
	}
}
